(* substring test shared by CLI commands *)
let contains s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then false
    else if String.sub s i lsub = sub then true
    else go (i + 1)
  in
  go 0
