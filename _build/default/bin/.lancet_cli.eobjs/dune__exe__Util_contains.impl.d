bin/util_contains.ml: String
