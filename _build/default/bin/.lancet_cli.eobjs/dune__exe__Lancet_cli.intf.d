bin/lancet_cli.mli:
