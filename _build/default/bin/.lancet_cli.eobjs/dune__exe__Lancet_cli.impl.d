bin/lancet_cli.ml: Arg Array Cmd Cmdliner Format Hashtbl Jsdom Lancet List Lms Mini Term Util_contains Vm
