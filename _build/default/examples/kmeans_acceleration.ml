(* Active libraries via accelerator macros (paper Sec. 3.4): the same Mini
   OptiML program, with and without Delite macros. *)

module H = Optiml.Harness
module Exec = Delite.Exec

let () =
  let sz = { H.default_sizes with H.km_rows = 600; km_iters = 2 } in
  let expect = H.reference H.Kmeans sz in
  Printf.printf "k-means: %d points, %d dims, k=%d, %d iterations\n"
    sz.H.km_rows sz.H.km_cols sz.H.km_k sz.H.km_iters;
  List.iter
    (fun cfg ->
      let r, t = H.run H.Kmeans cfg sz in
      Printf.printf "  %-34s %8.2f ms %s\n" (H.config_name cfg) (t *. 1000.0)
        (if Float.abs (r -. expect) < 1e-6 *. (1. +. Float.abs expect) then "ok"
         else "WRONG"))
    [
      H.Library;
      H.Lancet_delite Exec.Seq;
      H.Lancet_delite (Exec.Sim 8);
      H.Lancet_delite (Exec.Gpu Exec.default_gpu);
      H.Delite_standalone (Exec.Sim 8);
      H.Cpp Exec.Seq;
    ];
  print_endline "\n(parallel rows use the measured-chunk scaling model; see EXPERIMENTS.md)"
