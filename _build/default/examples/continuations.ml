(* Delimited continuations (paper Sec. 3.2): shift/reset as JIT macros over
   the linked interpreter frames — "all kinds of advanced control structures
   like coroutines, generators or asynchronous callbacks". *)

let src =
  {|
// early exit from a compiled search loop: shift aborts to the reset
def find_sqrt(limit: int, target: int): int =
  Lancet.reset(fun () => {
    for (i <- 0 until limit) {
      if (i * i == target) { Lancet.shift(fun (k: (int) -> int) => i); 0 }
      else 0
    };
    0 - 1
  })

// multi-shot: the captured continuation is invoked twice
def double_world(x: int): int =
  Lancet.reset(fun () =>
    Lancet.shift(fun (k: (int) -> int) => k(1) + k(2)) * x)
|}

let () =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt src in
  let compile name =
    let m = Mini.Front.find_function p name in
    Lancet.Compiler.compile_method rt m [| Lancet.Compiler.Dyn; Lancet.Compiler.Dyn |]
  in
  let find = compile "find_sqrt" in
  Printf.printf "find_sqrt(100, 49)  = %s   (early exit via shift)\n"
    (Vm.Value.to_string (find [| Int 100; Int 49 |]));
  Printf.printf "find_sqrt(100, 50)  = %s   (not found)\n"
    (Vm.Value.to_string (find [| Int 100; Int 50 |]));
  let m = Mini.Front.find_function p "double_world" in
  let dw = Lancet.Compiler.compile_method rt m [| Lancet.Compiler.Dyn |] in
  Printf.printf "double_world(7)     = %s   (k(1) + k(2) = 1*7 + 2*7)\n"
    (Vm.Value.to_string (dw [| Int 7 |]))
