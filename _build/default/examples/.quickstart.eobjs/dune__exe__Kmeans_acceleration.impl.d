examples/kmeans_acceleration.ml: Delite Float List Optiml Printf
