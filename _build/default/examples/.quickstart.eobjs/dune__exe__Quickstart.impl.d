examples/quickstart.ml: Lancet Lms Mini Printf Vm
