examples/js_crosscompile.mli:
