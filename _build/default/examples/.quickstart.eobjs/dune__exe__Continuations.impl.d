examples/continuations.ml: Lancet Mini Printf Vm
