examples/safeint_speculation.mli:
