examples/csv_specialize.ml: Csvlib Lancet List Mini Printf String Vm
