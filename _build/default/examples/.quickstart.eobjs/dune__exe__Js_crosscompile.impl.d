examples/js_crosscompile.ml: Jsdom Lancet Mini Vm
