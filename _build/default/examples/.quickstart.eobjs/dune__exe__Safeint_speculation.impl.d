examples/safeint_speculation.ml: Lancet Lms Mini Printf Safeint String Vm
