examples/sql_queries.ml: List Printf Query
