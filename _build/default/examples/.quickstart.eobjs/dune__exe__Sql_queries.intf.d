examples/sql_queries.mli:
