examples/continuations.mli:
