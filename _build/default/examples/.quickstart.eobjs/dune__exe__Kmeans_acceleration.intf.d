examples/kmeans_acceleration.mli:
