examples/csv_specialize.mli:
