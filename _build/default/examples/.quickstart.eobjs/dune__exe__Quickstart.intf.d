examples/quickstart.mli:
