(* The paper's motivating example (Figs. 1-3): CSV processing, generic vs
   explicitly specialized.  Prints per-configuration timings for a small
   input; bench/main.exe table1 runs the full Table 1 sweep. *)

let () =
  let text = Csvlib.Gen.generate ~seed:7 ~bytes:300_000 in
  let expect = Csvlib.Harness.reference text in
  Printf.printf "input: %d bytes of CSV (20 columns, 10 accessed by name)\n"
    (String.length text);
  List.iter
    (fun cfg ->
      let r, t = Csvlib.Harness.run cfg text in
      Printf.printf "  %-52s %8.1f ms %s\n"
        (Csvlib.Harness.config_name cfg)
        (t *. 1000.0)
        (if r = expect then "ok" else "WRONG RESULT"))
    Csvlib.Harness.
      [ Native; Interpreted; Generic_compiled; Specialized ];
  (* the (key, value) iteration of Fig. 1, specialized by unrolling over the
     frozen schema *)
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt Csvlib.Mini_src.specialized in
  let out =
    Mini.Front.call p "concat_fields" [| Str "Name,Value,Flag\nA,7,no\n" |]
  in
  Printf.printf "\nrecord.foreach over the frozen schema: %s\n"
    (Vm.Value.to_string out)
