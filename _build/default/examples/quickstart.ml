(* Quickstart: the two core ideas in one file.
   1. Interpreter + staging = compiler (paper Sec. 2.1): the toy
      While-language interpreter, staged, turns into a compiler.
   2. Explicit JIT compilation with compile-time execution (Sec. 1):
      a Mini program invokes Lancet.compile / Lancet.freeze and gets
      guaranteed specialization. *)

let () =
  print_endline "== 1. Interpreter + staging = compiler (toy While-language)";
  let open Lms.Toy in
  let pow =
    Seq
      [
        Assign ("res", Const 1);
        Assign ("i", Const 0);
        While
          ( Lt (Var "i", Var "n"),
            Seq
              [
                Assign ("res", Times (Var "res", Var "base"));
                Assign ("i", Plus (Var "i", Const 1));
              ] );
      ]
  in
  Printf.printf "interpreted pow(2, 10)  = %d\n"
    (run_interp ~inputs:[ "base"; "n" ] ~result:"res" pow [ 2; 10 ]);
  let rt = Vm.Natives.boot () in
  let compiled = compile rt ~inputs:[ "base"; "n" ] ~result:"res" pow in
  Printf.printf "compiled    pow(2, 10)  = %d\n" (compiled [ 2; 10 ]);
  (* specialize the base: the multiplications remain, bookkeeping folds *)
  let g =
    stage ~inputs:[ "n" ] ~result:"res" (Seq [ Assign ("base", Const 2); pow ])
  in
  Printf.printf "\nresidual IR for pow specialized to base=2:\n%s\n"
    (Lms.Pretty.graph_to_string g);

  print_endline "\n== 2. Explicit JIT compilation from a running Mini program";
  let rt = Lancet.Api.boot () in
  let p =
    Mini.Front.load rt
      {|
def main(): int = {
  val table = new array[int](3);
  table[0] = 100; table[1] = 200; table[2] = 300;
  // freeze evaluates at JIT-compile time; the compiled function is
  // guaranteed to contain no table lookup at all
  val f = Lancet.compile(fun (i: int) => Lancet.freeze(fun () => table[1]) + i);
  f(5)
}
|}
  in
  Printf.printf "main() = %s\n"
    (Vm.Value.to_string (Mini.Front.call p "main" [||]));
  match !Lancet.Compiler.last_graph with
  | Some g ->
    Printf.printf "\ncompiled graph (one residual add):\n%s\n"
      (Lms.Pretty.graph_to_string g)
  | None -> ()
