(* Language-embedded queries (paper Sec. 3.5): SQL generation, shared
   aggregates, and query-avalanche avoidance. *)

open Query

let () =
  let items =
    make_table ~name:"t_item" ~cols:[ "id"; "price" ]
      ~rows:(List.init 5 (fun i -> [| S_int i; S_int (i * 10) |]))
  in
  let orders =
    make_table ~name:"t_order" ~cols:[ "oid"; "item" ]
      ~rows:(List.init 12 (fun i -> [| S_int (100 + i); S_int (i mod 5) |]))
  in
  let q = Filter (Scan items, P_cmp ("price", Cgt, S_int 0)) in
  Printf.printf "query:      %s\n" (to_sql q);
  Printf.printf "as count:   %s\n" (agg_sql (Count q));
  Printf.printf "as sum:     %s\n\n" (agg_sql (Sum (q, "price")));

  reset_scans q;
  ignore (count q);
  ignore (sum q "price");
  Printf.printf "naive count+sum executed the query %d times\n" (scans_of q);
  reset_scans q;
  let s = share q in
  Printf.printf "shared count=%d sum=%g with %d execution(s)\n\n"
    (shared_count s) (shared_sum s "price")
    (scans_of q + 1 - 1 |> fun _ -> ignore (shared_count s); scans_of q);

  let inner = Scan orders in
  reset_scans inner;
  ignore (nested_naive ~outer:(Scan items) ~inner ~inner_key:"item" ~outer_key:"id");
  Printf.printf "query avalanche: nested loop issued %d order queries\n"
    (scans_of inner);
  reset_scans inner;
  let joined =
    nested_indexed ~outer:(Scan items) ~inner ~inner_key:"item" ~outer_key:"id"
  in
  Printf.printf "with groupBy index: %d order scan(s), same %d result groups\n"
    (scans_of inner) (List.length joined)
