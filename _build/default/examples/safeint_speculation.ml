(* Speculative optimization (paper Sec. 3.2): overflow-safe integers whose
   compiled fast path contains machine ints only; overflow deoptimizes into
   the interpreter where the BigInteger slow path runs. *)

let () =
  let rt, p = Safeint.boot () in
  let compiled_product n =
    let thunk = Mini.Front.call p "make_safe_product" [| Int n |] in
    let f = Lancet.Compiler.compile_value rt thunk in
    Vm.Value.to_str (Vm.Interp.call_closure rt f [||])
  in
  let d0 = !Lancet.Compiler.count_deopts in
  Printf.printf "12! (no overflow, stays compiled)   = %s\n" (compiled_product 12);
  Printf.printf "deopts so far: %d\n" (!Lancet.Compiler.count_deopts - d0);
  Printf.printf "25! (overflows, deoptimizes to Big) = %s\n" (compiled_product 25);
  Printf.printf "deopts so far: %d\n" (!Lancet.Compiler.count_deopts - d0);
  match !Lancet.Compiler.last_graph with
  | Some g ->
    let s = Lms.Pretty.graph_to_string g in
    Printf.printf "\ncompiled code mentions Big arithmetic: %b (the slow path lives in the interpreter)\n"
      (let rec has i =
         i + 10 <= String.length s && (String.sub s i 10 = "Big.of_int" || has (i + 1))
       in
       has 0)
  | None -> ()
