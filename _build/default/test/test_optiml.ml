(* Tests for Delite and the OptiML stack: op correctness, fusion, SoA, the
   scaling model, and agreement of every Table 2 configuration with the
   native reference. *)

module Exec = Delite.Exec
module Scalar = Delite.Scalar
module Vec = Delite.Vec

let check_float = Alcotest.(check (float 1e-6))
let close ?(eps = 1e-6) name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.9g vs %.9g" name a b)
    true
    (Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a))

(* ---- scalar kernels ---- *)

let test_scalar_eval_fixed () =
  let e = Scalar.(Bin (Add, Elem 0, Bin (Mul, Idx, Konst 2.0))) in
  let k = Scalar.compile e in
  check_float "elem+idx*2" 12.0 (k [| [| 0.; 10. |] |] 1)

let test_scalar_simplify () =
  let e = Scalar.(Bin (Mul, Konst 3.0, Konst 4.0)) in
  (match Scalar.simplify e with
  | Scalar.Konst 12.0 -> ()
  | _ -> Alcotest.fail "constant folding failed");
  match Scalar.(simplify (Bin (Add, Elem 0, Konst 0.0))) with
  | Scalar.Elem 0 -> ()
  | _ -> Alcotest.fail "identity elimination failed"

(* ---- fusion ---- *)

let test_fusion_matches_unfused () =
  let a = Array.init 100 (fun i -> float_of_int i) in
  let b = Array.init 100 (fun i -> float_of_int (i * 2)) in
  let pipe =
    Vec.map
      (Vec.zip (Vec.input a) (Vec.input b)
         Scalar.(Bin (Add, Elem 0, Elem 1)))
      Scalar.(Bin (Mul, Elem 0, Konst 0.5))
  in
  let fused, _ = Vec.collect ~dev:Exec.Seq pipe in
  let unfused = Vec.eval_unfused pipe in
  Alcotest.(check bool) "same results" true (fused = unfused);
  let stats = Vec.fusion_stats pipe in
  Alcotest.(check int) "map+zip stages fused" 2 stats.Vec.stages;
  Alcotest.(check int) "into one loop" 1 stats.Vec.fused_loops

let test_fused_reduce () =
  let a = Array.init 1000 (fun i -> float_of_int i) in
  let r = Vec.sum (Vec.map (Vec.input a) Scalar.(Bin (Mul, Elem 0, Konst 2.0))) in
  let fused, _ = Vec.reduce ~dev:Exec.Seq r in
  close "sum of 2i" (2.0 *. 999.0 *. 1000.0 /. 2.0) fused;
  close "unfused agrees" fused (Vec.eval_unfused_reduce r)

(* ---- devices ---- *)

let test_devices_agree () =
  let a = Array.init 5000 (fun i -> float_of_int (i mod 17)) in
  let r = Vec.sum (Vec.map (Vec.input a) Scalar.(Bin (Add, Elem 0, Konst 1.0))) in
  let seq, _ = Vec.reduce ~dev:Exec.Seq r in
  let sim, t_sim = Vec.reduce ~dev:(Exec.Sim 4) r in
  let dom, _ = Vec.reduce ~dev:(Exec.Domains 2) r in
  let gpu, t_gpu = Vec.reduce ~dev:(Exec.Gpu Exec.default_gpu) r in
  close "sim" seq sim;
  close "domains" seq dom;
  close "gpu" seq gpu;
  Alcotest.(check bool) "sim produced chunks" true (t_sim.Exec.chunks > 1);
  Alcotest.(check bool) "gpu modeled faster than wall" true
    (t_gpu.Exec.modeled < t_gpu.Exec.wall +. 1.0)

let test_lpt () =
  (* 4 equal chunks over 2 workers: makespan = 2 chunks *)
  close "balanced" 2.0 (Exec.lpt_makespan [ 1.0; 1.0; 1.0; 1.0 ] 2);
  close "single worker" 4.0 (Exec.lpt_makespan [ 1.0; 1.0; 1.0; 1.0 ] 1);
  close "dominated by big chunk" 3.0 (Exec.lpt_makespan [ 3.0; 1.0; 1.0; 1.0 ] 2)

let test_ranges () =
  let rs = Exec.ranges 10 3 in
  Alcotest.(check int) "3 ranges" 3 (List.length rs);
  let total = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 rs in
  Alcotest.(check int) "cover all" 10 total;
  (match rs with
  | (0, _) :: _ -> ()
  | _ -> Alcotest.fail "ranges must start at 0");
  Alcotest.(check int) "n < chunks" 2 (List.length (Exec.ranges 2 5))

let test_soa_roundtrip () =
  let aos = Array.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) in
  let soa = Delite.Soa.of_aos aos in
  Alcotest.(check bool) "roundtrip" true (Delite.Soa.to_aos soa = aos);
  Alcotest.(check int) "length" 10 (Delite.Soa.length soa)

(* ---- rows ops ---- *)

let test_sum_rows () =
  (* sum of rows of a 4x3 matrix *)
  let data = Array.init 12 float_of_int in
  let out, _ =
    Delite.Rows.sum_rows ~dev:(Exec.Sim 2) ~start:0 ~stop:4 ~size:3
      ~block:(fun i tmp ->
        for j = 0 to 2 do
          tmp.(j) <- data.((i * 3) + j)
        done)
  in
  Alcotest.(check bool) "column sums" true (out = [| 18.0; 22.0; 26.0 |])

let test_group_sum () =
  let sums, counts, _ =
    Delite.Rows.group_sum ~dev:Exec.Seq ~start:0 ~stop:10 ~groups:2 ~size:1
      ~key:(fun i -> i mod 2)
      ~block:(fun i acc _ -> acc.(0) <- acc.(0) +. float_of_int i)
  in
  close "even sum" 20.0 sums.(0).(0);
  close "odd sum" 25.0 sums.(1).(0);
  Alcotest.(check int) "even count" 5 counts.(0);
  Alcotest.(check int) "odd count" 5 counts.(1)

(* ---- Table 2 configurations agree ---- *)

let small_sizes =
  {
    Optiml.Harness.km_rows = 120;
    km_cols = 4;
    km_k = 3;
    km_iters = 2;
    lr_rows = 150;
    lr_cols = 5;
    lr_iters = 2;
    ns_n = 500;
  }

let check_app app configs eps () =
  let expect = Optiml.Harness.reference app small_sizes in
  List.iter
    (fun cfg ->
      let r, _ = Optiml.Harness.run app cfg small_sizes in
      close ~eps (Optiml.Harness.config_name cfg) expect r)
    configs

let test_kmeans_configs =
  check_app Optiml.Harness.Kmeans
    Optiml.Harness.
      [
        Library;
        Lancet_delite (Exec.Sim 2);
        Delite_standalone (Exec.Sim 2);
        Cpp Exec.Seq;
        Cpp (Exec.Sim 4);
      ]
    1e-9

let test_logreg_configs =
  check_app Optiml.Harness.Logreg
    Optiml.Harness.
      [
        Library;
        Lancet_delite (Exec.Sim 2);
        Delite_standalone (Exec.Sim 2);
        Manual_opt (Exec.Sim 2);
        Cpp Exec.Seq;
      ]
    1e-6

let test_namescore_configs =
  check_app Optiml.Harness.Namescore
    Optiml.Harness.
      [ Library; Lancet_delite (Exec.Sim 2); Delite_standalone (Exec.Sim 2); Cpp Exec.Seq ]
    1e-9

(* the macro really rewired the call: the compiled graph contains a Delite op *)
let test_macro_in_graph () =
  let rt = Lancet.Api.boot () in
  Optiml.Macros.install rt;
  let p = Mini.Front.load rt Optiml.Mini_lib.all in
  let names = [| Vm.Types.Str "ABC"; Vm.Types.Str "D" |] in
  let thunk = Mini.Front.call p "make_namescore" [| Arr names |] in
  let compiled = Lancet.Compiler.compile_value rt thunk in
  (match !Lancet.Compiler.last_graph with
  | Some g ->
    let s = Lms.Pretty.graph_to_string g in
    Alcotest.(check bool) "delite op present" true
      (Util.contains_sub s "delite.total_score");
    Alcotest.(check bool) "no Pair allocation" false (Util.contains_sub s "new Pair")
  | None -> Alcotest.fail "no graph");
  (* and it computes the right thing: 1*score(ABC) + 2*score(D) *)
  let expect = (1.0 *. (1. +. 2. +. 3.)) +. (2.0 *. 4.0) in
  match Vm.Interp.call_closure rt compiled [||] with
  | Float f -> close "macro result" expect f
  | _ -> Alcotest.fail "expected float"

(* property: fused == unfused on random pipelines *)
let gen_pipeline =
  QCheck.Gen.(
    let arr = array_size (return 50) (float_range (-10.) 10.) in
    let rec build k src =
      if k <= 0 then return src
      else
        oneof
          [
            (let* body =
               oneofl
                 Scalar.
                   [
                     Bin (Add, Elem 0, Konst 1.5);
                     Bin (Mul, Elem 0, Konst 0.5);
                     Bin (Max, Elem 0, Konst 0.0);
                     Un (Abs, Elem 0);
                     Bin (Add, Elem 0, Idx);
                   ]
             in
             build (k - 1) (Vec.map src body));
            (let* b = arr in
             let* body =
               oneofl
                 Scalar.
                   [ Bin (Add, Elem 0, Elem 1); Bin (Mul, Elem 0, Elem 1) ]
             in
             build (k - 1) (Vec.zip src (Vec.input b) body));
          ]
    in
    let* a = arr in
    let* k = int_range 1 5 in
    build k (Vec.input a))

let prop_fusion =
  QCheck.Test.make ~name:"fused pipeline == unfused" ~count:100
    (QCheck.make ~print:(fun _ -> "<pipeline>") gen_pipeline)
    (fun pipe ->
      let fused, _ = Vec.collect ~dev:Exec.Seq pipe in
      let unfused = Vec.eval_unfused pipe in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) fused unfused)

let suite =
  [
    Alcotest.test_case "scalar-eval" `Quick test_scalar_eval_fixed;
    Alcotest.test_case "scalar-simplify" `Quick test_scalar_simplify;
    Alcotest.test_case "fusion" `Quick test_fusion_matches_unfused;
    Alcotest.test_case "fused-reduce" `Quick test_fused_reduce;
    Alcotest.test_case "devices-agree" `Quick test_devices_agree;
    Alcotest.test_case "lpt" `Quick test_lpt;
    Alcotest.test_case "ranges" `Quick test_ranges;
    Alcotest.test_case "soa" `Quick test_soa_roundtrip;
    Alcotest.test_case "sum-rows" `Quick test_sum_rows;
    Alcotest.test_case "group-sum" `Quick test_group_sum;
    Alcotest.test_case "kmeans-configs" `Slow test_kmeans_configs;
    Alcotest.test_case "logreg-configs" `Slow test_logreg_configs;
    Alcotest.test_case "namescore-configs" `Slow test_namescore_configs;
    Alcotest.test_case "macro-in-graph" `Quick test_macro_in_graph;
    QCheck_alcotest.to_alcotest prop_fusion;
  ]

(* properties of the scheduling model *)
let prop_lpt =
  QCheck.Test.make ~name:"LPT makespan bounds" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (float_range 0.001 10.0))
        (int_range 1 16))
    (fun (chunks, workers) ->
      let ms = Exec.lpt_makespan chunks workers in
      let total = List.fold_left ( +. ) 0.0 chunks in
      let biggest = List.fold_left Float.max 0.0 chunks in
      (* lower bounds: max chunk and perfect split; upper: serial *)
      ms +. 1e-9 >= biggest
      && ms +. 1e-9 >= total /. float_of_int workers
      && ms <= total +. 1e-9
      && Exec.lpt_makespan chunks 1 >= ms -. 1e-9)

let prop_ranges =
  QCheck.Test.make ~name:"ranges partition [0,n)" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 1 64))
    (fun (n, chunks) ->
      let rs = Exec.ranges n chunks in
      let covered = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 rs in
      let contiguous =
        let rec go last = function
          | [] -> true
          | (lo, hi) :: rest -> lo = last && hi >= lo && go hi rest
        in
        go 0 rs
      in
      covered = n && contiguous)

let suite =
  suite
  @ [ QCheck_alcotest.to_alcotest prop_lpt; QCheck_alcotest.to_alcotest prop_ranges ]
