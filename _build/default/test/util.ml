(* Shared helpers for the test suites. *)

let contains_sub s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then false
    else if String.sub s i lsub = sub then true
    else go (i + 1)
  in
  go 0

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
