(* Bigint substrate + SafeInt speculation (paper Sec. 3.2). *)

open Vm.Types

let check_str = Alcotest.(check string)

(* ---- bigint ---- *)

let test_bigint_basics () =
  let b = Bigint.of_int in
  check_str "of_int/to_string" "123456789" (Bigint.to_string (b 123456789));
  check_str "negative" "-42" (Bigint.to_string (b (-42)));
  check_str "zero" "0" (Bigint.to_string Bigint.zero);
  check_str "add" "300" (Bigint.to_string (Bigint.add (b 100) (b 200)));
  check_str "sub to negative" "-50" (Bigint.to_string (Bigint.sub (b 100) (b 150)));
  check_str "mul" "-600" (Bigint.to_string (Bigint.mul (b (-20)) (b 30)));
  Alcotest.(check (option int)) "to_int roundtrip" (Some (-98765))
    (Bigint.to_int_opt (b (-98765)))

let test_bigint_large () =
  (* 2^100 by repeated multiplication *)
  let two = Bigint.of_int 2 in
  let r = ref (Bigint.of_int 1) in
  for _ = 1 to 100 do
    r := Bigint.mul !r two
  done;
  check_str "2^100" "1267650600228229401496703205376" (Bigint.to_string !r);
  Alcotest.(check (option int)) "too large for int" None (Bigint.to_int_opt !r)

let test_bigint_factorial () =
  let r = ref (Bigint.of_int 1) in
  for i = 1 to 25 do
    r := Bigint.mul !r (Bigint.of_int i)
  done;
  check_str "25!" "15511210043330985984000000" (Bigint.to_string !r)

let test_bigint_of_string () =
  let s = "123456789012345678901234567890" in
  check_str "of_string roundtrip" s (Bigint.to_string (Bigint.of_string s));
  check_str "negative roundtrip" ("-" ^ s)
    (Bigint.to_string (Bigint.of_string ("-" ^ s)))

let prop_bigint_matches_int =
  QCheck.Test.make ~name:"bigint arithmetic matches native ints" ~count:300
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let ba = Bigint.of_int a and bb = Bigint.of_int b in
      Bigint.to_int_opt (Bigint.add ba bb) = Some (a + b)
      && Bigint.to_int_opt (Bigint.sub ba bb) = Some (a - b)
      && Bigint.to_int_opt (Bigint.mul ba bb) = Some (a * b)
      && compare (Bigint.compare_big ba bb) 0 = compare (compare a b) 0)

let prop_bigint_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let canonical = Bigint.to_string (Bigint.of_string s) in
      (* canonical strips leading zeros *)
      canonical = Bigint.to_string (Bigint.of_string canonical))

(* ---- SafeInt ---- *)

let test_safeint_interpreted () =
  let _, p = Safeint.boot () in
  check_str "sum without overflow" "5050"
    (Vm.Value.to_str (Mini.Front.call p "safe_sum" [| Int 100 |]));
  check_str "20! overflows into Big" "2432902008176640000"
    (Vm.Value.to_str (Mini.Front.call p "safe_product" [| Int 20 |]))

let test_safeint_compiled_no_overflow () =
  let rt, p = Safeint.boot () in
  let thunk = Mini.Front.call p "make_safe_sum" [| Int 100 |] in
  let compiled = Lancet.Compiler.compile_value rt thunk in
  let d0 = !Lancet.Compiler.count_deopts in
  check_str "compiled sum" "5050"
    (Vm.Value.to_str (Vm.Interp.call_closure rt compiled [||]));
  Alcotest.(check int) "no deopt" d0 !Lancet.Compiler.count_deopts;
  (* compiled code never contains Big operations *)
  match !Lancet.Compiler.last_graph with
  | Some g ->
    let s = Lms.Pretty.graph_to_string g in
    (* Big.add_fits (the overflow check) remains; the Big arithmetic and
       promotion calls must not *)
    Alcotest.(check bool) "overflow check present" true
      (Util.contains_sub s "Big.add_fits");
    Alcotest.(check bool) "no Big promotion in compiled code" false
      (Util.contains_sub s "Big.of_int")
  | None -> Alcotest.fail "no graph"

let test_safeint_compiled_overflow_deopts () =
  let rt, p = Safeint.boot () in
  (* 25! overflows 32-bit early; compiled code deopts into the interpreter
     and the Big slow path computes the exact result *)
  let thunk = Mini.Front.call p "make_safe_product" [| Int 25 |] in
  let compiled = Lancet.Compiler.compile_value rt thunk in
  let d0 = !Lancet.Compiler.count_deopts in
  check_str "exact 25!" "15511210043330985984000000"
    (Vm.Value.to_str (Vm.Interp.call_closure rt compiled [||]));
  Alcotest.(check bool) "deoptimized at overflow" true
    (!Lancet.Compiler.count_deopts > d0)

let test_safeint_compiled_matches_interp () =
  let rt, p = Safeint.boot () in
  let thunk = Mini.Front.call p "make_safe_product" [| Int 12 |] in
  let compiled = Lancet.Compiler.compile_value rt thunk in
  let a = Vm.Interp.call_closure rt compiled [||] in
  let b = Mini.Front.call p "safe_product" [| Int 12 |] in
  Alcotest.check Util.value "same result" b a

let suite =
  [
    Alcotest.test_case "bigint-basics" `Quick test_bigint_basics;
    Alcotest.test_case "bigint-large" `Quick test_bigint_large;
    Alcotest.test_case "bigint-factorial" `Quick test_bigint_factorial;
    Alcotest.test_case "bigint-of-string" `Quick test_bigint_of_string;
    QCheck_alcotest.to_alcotest prop_bigint_matches_int;
    QCheck_alcotest.to_alcotest prop_bigint_string_roundtrip;
    Alcotest.test_case "safeint-interp" `Quick test_safeint_interpreted;
    Alcotest.test_case "safeint-compiled" `Quick test_safeint_compiled_no_overflow;
    Alcotest.test_case "safeint-overflow-deopt" `Quick test_safeint_compiled_overflow_deopts;
    Alcotest.test_case "safeint-consistency" `Quick test_safeint_compiled_matches_interp;
  ]
