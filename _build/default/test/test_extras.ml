(* Query/SQL substrate (Sec. 3.5), the JS cross-compiler, code caching
   (Sec. 3.1) and stable search trees (Sec. 3.2). *)

open Vm.Types

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---- query / SQL ---- *)

let items () =
  Query.make_table ~name:"t_item" ~cols:[ "id"; "price"; "name" ]
    ~rows:
      [
        [| Query.S_int 1; Query.S_int 10; Query.S_str "apple" |];
        [| Query.S_int 2; Query.S_int 0; Query.S_str "free" |];
        [| Query.S_int 3; Query.S_int 25; Query.S_str "pear" |];
        [| Query.S_int 4; Query.S_int 5; Query.S_str "o'brien" |];
      ]

let orders () =
  Query.make_table ~name:"t_order" ~cols:[ "oid"; "item" ]
    ~rows:
      [
        [| Query.S_int 100; Query.S_int 1 |];
        [| Query.S_int 101; Query.S_int 1 |];
        [| Query.S_int 102; Query.S_int 3 |];
      ]

let test_sql_generation () =
  let t = items () in
  let q = Query.(Filter (Scan t, P_cmp ("price", Cgt, S_int 0))) in
  check_str "where clause" "SELECT * FROM t_item WHERE price > 0"
    (Query.to_sql q);
  let q2 = Query.(Project (Filter (Scan t, P_cmp ("name", Ceq, S_str "o'brien")), [ "id" ])) in
  check_str "projection + escaping"
    "SELECT id FROM t_item WHERE name = 'o''brien'" (Query.to_sql q2);
  check_str "count" "SELECT COUNT(*) FROM t_item WHERE price > 0"
    (Query.agg_sql (Query.Count q));
  check_str "sum" "SELECT SUM(price) FROM t_item"
    (Query.agg_sql (Query.Sum (Query.Scan t, "price")))

let test_query_eval () =
  let t = items () in
  let q = Query.(Filter (Scan t, P_cmp ("price", Cgt, S_int 0))) in
  check_int "3 priced items" 3 (Query.count q);
  Alcotest.(check (float 1e-9)) "sum" 40.0 (Query.sum q "price")

let test_shared_aggregate () =
  (* paper: count + sum on the same result normally run the query twice *)
  let t = items () in
  let q = Query.(Filter (Scan t, P_cmp ("price", Cgt, S_int 0))) in
  Query.reset_scans q;
  ignore (Query.count q);
  ignore (Query.sum q "price");
  check_int "naive: two scans" 2 (Query.scans_of q);
  Query.reset_scans q;
  let s = Query.share q in
  ignore (Query.shared_count s);
  Alcotest.(check (float 1e-9)) "shared sum" 40.0 (Query.shared_sum s "price");
  check_int "shared: one scan" 1 (Query.scans_of q)

let test_avalanche () =
  let it = items () and od = orders () in
  let outer = Query.Scan it and inner = Query.Scan od in
  Query.reset_scans inner;
  let naive =
    Query.nested_naive ~outer ~inner ~inner_key:"item" ~outer_key:"id"
  in
  check_int "avalanche: one inner query per outer row" 4
    (Query.scans_of inner);
  Query.reset_scans inner;
  let indexed =
    Query.nested_indexed ~outer ~inner ~inner_key:"item" ~outer_key:"id"
  in
  check_int "indexed: a single inner scan" 1 (Query.scans_of inner);
  (* results agree *)
  check_int "same outer count" (List.length naive) (List.length indexed);
  List.iter2
    (fun (r1, l1) (r2, l2) ->
      check_bool "same outer row" true (r1 = r2);
      check_bool "same inner rows" true (l1 = l2))
    naive indexed;
  (* item 1 has two orders *)
  let _, orders_for_1 = List.nth indexed 0 in
  check_int "orders for item 1" 2 (List.length orders_for_1)

(* ---- JS cross-compilation ---- *)

let koch_source =
  {|
def leg(c: Context, n: int, len: float): unit = {
  if (n == 0) { c.lineTo(len, 0.0) }
  else {
    leg(c, n - 1, len / 3.0);
    c.rotate(0.0 - 1.0471975512);
    leg(c, n - 1, len / 3.0);
    c.rotate(2.0943951024);
    leg(c, n - 1, len / 3.0);
    c.rotate(0.0 - 1.0471975512);
    leg(c, n - 1, len / 3.0)
  }
}

def make_snowflake(doc: Document): (float) -> unit = fun (len: float) =>
  Lancet.inline_always(fun () => {
    val canvas = doc.getCanvas("canvas");
    val c = canvas.getContext("2d");
    c.save();
    c.beginPath();
    c.moveTo(0.0, 0.0);
    leg(c, 2, len);
    c.rotate(0.0 - 2.0943951024);
    leg(c, 2, len);
    c.rotate(0.0 - 2.0943951024);
    leg(c, 2, len);
    c.closePath();
    c.stroke();
    c.restore()
  })

def snowflake_for(doc: Document): (float) -> unit = make_snowflake(doc)
|}

let test_js_crosscompile () =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt (Jsdom.dom_source ^ koch_source) in
  Jsdom.install rt;
  let doc_cls = Vm.Classfile.find_class rt "Document" in
  let doc = Obj (Vm.Runtime.alloc rt doc_cls) in
  let clo = Mini.Front.call p "snowflake_for" [| doc |] in
  let js = Jsdom.cross_compile rt ~name:"snowflake" clo ~nargs:1 in
  check_bool "has function header" true
    (Util.contains_sub js "function snowflake(p0)");
  check_bool "getContext call" true (Util.contains_sub js ".getContext(\"2d\")");
  check_bool "lineTo calls" true (Util.contains_sub js ".lineTo(");
  check_bool "rotate calls" true (Util.contains_sub js ".rotate(");
  (* recursion with constant depth unfolds: n==0 tests are gone *)
  check_bool "no residual depth tests" false (Util.contains_sub js "=== 0 ?");
  (* rough sanity: 2-level Koch has 3*16 lineTo segments + moveTo *)
  let count_sub s sub =
    let n = ref 0 in
    let ls = String.length sub in
    for i = 0 to String.length s - ls do
      if String.sub s i ls = sub then incr n
    done;
    !n
  in
  check_int "48 segments" 48 (count_sub js ".lineTo(")

(* ---- code cache: calcJIT / calcHOT (Sec. 3.1) ---- *)

let test_calc_jit () =
  let rt, p = Extras.boot_code_cache () in
  let jit = Mini.Front.call p "make_calc_jit" [||] in
  let call x y =
    Vm.Value.to_int (Vm.Interp.call_closure rt jit [| Int x; Int y |])
  in
  let reference x y =
    Vm.Value.to_int (Mini.Front.call p "calc" [| Int x; Int y |])
  in
  let c0 = !Lms.Closure_backend.count_compiled in
  check_int "calcJIT(3, 5)" (reference 3 5) (call 3 5);
  let c1 = !Lms.Closure_backend.count_compiled in
  check_bool "first call compiled" true (c1 > c0);
  check_int "calcJIT(3, 9) cache hit" (reference 3 9) (call 3 9);
  check_int "no recompilation on hit" c1 !Lms.Closure_backend.count_compiled;
  check_int "calcJIT(7, 2) new entry" (reference 7 2) (call 7 2);
  check_bool "second x compiled" true (!Lms.Closure_backend.count_compiled > c1)

let test_calc_hot () =
  let rt, p = Extras.boot_code_cache () in
  let hot = Mini.Front.call p "make_calc_hot" [| Int 3 |] in
  let call x y =
    Vm.Value.to_int (Vm.Interp.call_closure rt hot [| Int x; Int y |])
  in
  let reference x y =
    Vm.Value.to_int (Mini.Front.call p "calc" [| Int x; Int y |])
  in
  let c0 = !Lms.Closure_backend.count_compiled in
  check_int "cold 1" (reference 5 1) (call 5 1);
  check_int "cold 2" (reference 5 2) (call 5 2);
  check_int "below threshold: no compilation" c0
    !Lms.Closure_backend.count_compiled;
  check_int "hot 3" (reference 5 3) (call 5 3);
  check_bool "compiled at threshold" true
    (!Lms.Closure_backend.count_compiled > c0);
  check_int "hot 4" (reference 5 4) (call 5 4)

(* ---- stable search tree (Sec. 3.2) ---- *)

let test_tree_lookup_compiles_away () =
  let rt, p = Extras.boot_tree () in
  let keys = Arr (Array.map (fun i -> Int i) [| 50; 30; 70; 20; 40; 60; 80 |]) in
  let values = Arr (Array.map (fun i -> Int (i * 10)) [| 50; 30; 70; 20; 40; 60; 80 |]) in
  let tree = Mini.Front.call p "build_tree" [| keys; values |] in
  let lookup = Mini.Front.call p "make_lookup" [| tree |] in
  let call k = Vm.Value.to_int (Vm.Interp.call_closure rt lookup [| Int k |]) in
  check_int "hit 40" 400 (call 40);
  check_int "hit 80" 800 (call 80);
  check_int "miss" (-1) (call 55);
  (* the compiled lookup is pure decision code: no heap reads at all *)
  match !Lancet.Compiler.last_graph with
  | Some g ->
    let s = Lms.Pretty.graph_to_string g in
    check_bool "no getfield in compiled lookup" false
      (Util.contains_sub s "getfield");
    check_bool "no residual calls" false (Util.contains_sub s "tree_lookup")
  | None -> Alcotest.fail "no graph"

let test_tree_update_recompile () =
  let rt, p = Extras.boot_tree () in
  let keys = Arr [| Int 10; Int 5 |] in
  let values = Arr [| Int 1; Int 2 |] in
  let tree = Mini.Front.call p "build_tree" [| keys; values |] in
  let lookup = Mini.Front.call p "make_lookup" [| tree |] in
  let call l k = Vm.Value.to_int (Vm.Interp.call_closure rt l [| Int k |]) in
  check_int "before update: 20 missing" (-1) (call lookup 20);
  (* structural update produces a new tree; recompile the lookup *)
  let tree2 = Mini.Front.call p "tree_insert" [| tree; Int 20; Int 3 |] in
  let lookup2 = Mini.Front.call p "make_lookup" [| tree2 |] in
  check_int "after update: 20 found" 3 (call lookup2 20);
  check_int "old keys still found" 1 (call lookup2 10);
  check_int "old compiled lookup unchanged" (-1) (call lookup 20)

let suite =
  [
    Alcotest.test_case "sql-generation" `Quick test_sql_generation;
    Alcotest.test_case "query-eval" `Quick test_query_eval;
    Alcotest.test_case "shared-aggregate" `Quick test_shared_aggregate;
    Alcotest.test_case "avalanche" `Quick test_avalanche;
    Alcotest.test_case "js-crosscompile" `Quick test_js_crosscompile;
    Alcotest.test_case "calc-jit" `Quick test_calc_jit;
    Alcotest.test_case "calc-hot" `Quick test_calc_hot;
    Alcotest.test_case "tree-lookup" `Quick test_tree_lookup_compiles_away;
    Alcotest.test_case "tree-update" `Quick test_tree_update_recompile;
  ]
