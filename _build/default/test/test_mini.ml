(* End-to-end tests for the Mini front-end: lexer, parser, typechecker and
   code generator, validated by running compiled programs on the VM
   interpreter. *)

open Mini

let check_value = Alcotest.check Util.value
let check_str = Alcotest.(check string)

let run ?(args = [||]) src fname = snd (Front.run_function ~args src fname)
let run_out ?(args = [||]) src fname = fst (Front.run_capture ~args src fname)

let expect_type_error src =
  match Front.typecheck src with
  | exception Ast.Type_error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

let expect_syntax_error src =
  match Parser.parse_program src with
  | exception Ast.Syntax_error _ -> ()
  | _ -> Alcotest.fail "expected a syntax error"

(* --- lexer ---------------------------------------------------------- *)

let test_lexer_basic () =
  let toks = Lexer.tokens_of_string "def f(x: int): int = x + 1 // c" in
  Alcotest.(check int) "token count" 14 (List.length toks);
  (match toks with
  | Lexer.KW "def" :: Lexer.IDENT "f" :: _ -> ()
  | _ -> Alcotest.fail "bad prefix");
  let toks = Lexer.tokens_of_string "\"a\\nb\" 1.5 1e3 42" in
  (match toks with
  | [ Lexer.STRING "a\nb"; Lexer.FLOAT 1.5; Lexer.FLOAT 1000.0; Lexer.INT 42; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "bad literals")

let test_lexer_comments () =
  let toks = Lexer.tokens_of_string "1 /* multi \n line */ 2 // eol\n3" in
  match toks with
  | [ Lexer.INT 1; Lexer.INT 2; Lexer.INT 3; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_two_char () =
  let toks = Lexer.tokens_of_string "== != <= >= && || => <- ->" in
  Alcotest.(check int) "9 puncts + eof" 10 (List.length toks)

(* --- basic programs ------------------------------------------------- *)

let test_arith () =
  check_value "arith" (Vm.Types.Int 17)
    (run "def main(): int = { 2 + 3 * 5 }" "main");
  check_value "precedence" (Vm.Types.Int 1)
    (run "def main(): int = { 7 % 2 * 3 - 2 }" "main");
  check_value "neg" (Vm.Types.Int (-5)) (run "def main(): int = { -5 }" "main");
  check_value "float" (Vm.Types.Float 7.5)
    (run "def main(): float = { 2.5 * 3.0 }" "main")

let test_mixed_arith () =
  (* implicit int->float coercion *)
  check_value "int + float" (Vm.Types.Float 3.5)
    (run "def main(): float = { 1 + 2.5 }" "main")

let test_locals () =
  check_value "let" (Vm.Types.Int 30)
    (run "def main(): int = { val x = 10; var y = x * 2; y = y + x; y }" "main")

let test_while () =
  check_value "while loop" (Vm.Types.Int 4950)
    (run
       "def main(): int = { var i = 0; var acc = 0; while (i < 100) { acc = \
        acc + i; i = i + 1 }; acc }"
       "main")

let test_for () =
  check_value "for loop" (Vm.Types.Int 45)
    (run "def main(): int = { var acc = 0; for (i <- 0 until 10) { acc = acc + i }; acc }"
       "main")

let test_if () =
  check_value "if value" (Vm.Types.Int 1)
    (run "def main(): int = { if (3 < 5) 1 else 2 }" "main");
  check_value "if unit" (Vm.Types.Int 7)
    (run "def main(): int = { var x = 0; if (true) { x = 7 }; x }" "main")

let test_bools () =
  (* && must not evaluate its right operand (1/n would trap) *)
  check_value "short-circuit and" (Vm.Types.Int 0)
    (run "def main(): int = { var n = 0; if (false && (1 / n) == 1) 1 else 0 }"
       "main");
  check_value "or" (Vm.Types.Int 1)
    (run "def main(): int = { if (true || false) 1 else 0 }" "main");
  check_value "not" (Vm.Types.Int 1)
    (run "def main(): int = { if (!false) 1 else 0 }" "main")

let test_strings () =
  check_value "concat" (Vm.Types.Str "ab3")
    (run {|def main(): string = { "a" + "b" + 3 }|} "main");
  check_value "eq" (Vm.Types.Int 1)
    (run {|def main(): bool = { "xy" == "x" + "y" }|} "main");
  check_value "cmp" (Vm.Types.Int 1)
    (run {|def main(): bool = { "abc" < "abd" }|} "main");
  check_value "builtin len" (Vm.Types.Int 5)
    (run {|def main(): int = { Str.len("hello") }|} "main")

let test_arrays () =
  check_value "array ops" (Vm.Types.Int 30)
    (run
       "def main(): int = { val a = new array[int](3); a[0] = 10; a[1] = 20; \
        a[0] + a[1] + a[2] * 100 }"
       "main");
  check_value "length" (Vm.Types.Int 7)
    (run "def main(): int = { val a = new array[string](7); a.length }" "main");
  check_value "farray" (Vm.Types.Float 6.0)
    (run
       "def main(): float = { val a = new farray(2); a[0] = 2.0; a[1] = 3.0; \
        a[0] * a[1] }"
       "main")

let test_functions () =
  check_value "calls" (Vm.Types.Int 21)
    (run "def twice(x: int): int = x * 2\ndef main(): int = twice(10) + 1" "main");
  check_value "recursion" (Vm.Types.Int 120)
    (run
       "def fact(n: int): int = if (n <= 1) 1 else n * fact(n - 1)\n\
        def main(): int = fact(5)"
       "main")

let test_args () =
  check_value "args" (Vm.Types.Int 30)
    (run ~args:[| Vm.Types.Int 10; Vm.Types.Int 20 |]
       "def main(a: int, b: int): int = a + b" "main")

let test_classes () =
  let src =
    {|
class Point {
  var x: int
  var y: int
  def init(x: int, y: int): unit = { this.x = x; this.y = y }
  def norm1(): int = Math.iabs(this.x) + Math.iabs(this.y)
  def move(dx: int, dy: int): unit = { this.x = this.x + dx; this.y = this.y + dy }
}
def main(): int = {
  val p = new Point(3, -4);
  p.move(1, 1);
  p.norm1() + p.x * 100
}
|}
  in
  check_value "classes" (Vm.Types.Int 407) (run src "main")

let test_inheritance () =
  let src =
    {|
class Animal {
  var name: string
  def init(n: string): unit = { this.name = n }
  def sound(): string = "..."
  def describe(): string = this.name + " says " + this.sound()
}
class Dog extends Animal {
  def sound(): string = "woof"
}
class Cat extends Animal {
  def sound(): string = "meow"
}
def main(): string = {
  val d = new Dog("rex");
  val c = new Cat("tom");
  d.describe() + "/" + c.describe()
}
|}
  in
  check_value "inheritance+dispatch" (Vm.Types.Str "rex says woof/tom says meow")
    (run src "main")

let test_final_fields () =
  let src =
    {|
class C {
  val k: int
  def init(k: int): unit = { this.k = k }
  def get(): int = this.k
}
def main(): int = new C(9).get()
|}
  in
  check_value "final set in init" (Vm.Types.Int 9) (run src "main");
  expect_type_error
    {|
class C {
  val k: int
  def init(k: int): unit = { this.k = k }
  def bad(): unit = { this.k = 3 }
}
|}

let test_closures () =
  check_value "closure" (Vm.Types.Int 15)
    (run
       "def main(): int = { val add = fun (a: int, b: int) => a + b; add(7, 8) }"
       "main");
  check_value "capture val" (Vm.Types.Int 30)
    (run
       "def main(): int = { val k = 10; val f = fun (x: int) => x * k; f(3) }"
       "main");
  check_value "higher order" (Vm.Types.Int 9)
    (run
       "def apply2(f: (int) -> int, x: int): int = f(f(x))\n\
        def main(): int = apply2(fun (x: int) => x + 3, 3)"
       "main")

let test_mutable_capture () =
  (* a captured var is shared: writes inside the closure are seen outside *)
  let src =
    {|
def main(): int = {
  var count = 0;
  val inc = fun (n: int) => { count = count + n; 0 };
  inc(5);
  inc(7);
  count
}
|}
  in
  check_value "boxed capture" (Vm.Types.Int 12) (run src "main")

let test_nested_closures () =
  let src =
    {|
def main(): int = {
  var acc = 1;
  val outer = fun (x: int) => {
    val inner = fun (y: int) => { acc = acc + x * y; 0 };
    inner(2);
    inner(3);
    0
  };
  outer(10);
  acc
}
|}
  in
  check_value "nested capture through two levels" (Vm.Types.Int 51) (run src "main")

let test_closure_returning_closure () =
  let src =
    {|
def adder(n: int): (int) -> int = fun (x: int) => x + n
def main(): int = {
  val add5 = adder(5);
  val add7 = adder(7);
  add5(10) + add7(100)
}
|}
  in
  check_value "closure factory" (Vm.Types.Int 122) (run src "main")

let test_this_capture () =
  let src =
    {|
class Counter {
  var n: int
  def init(): unit = { this.n = 0 }
  def incrementer(): (int) -> int = fun (k: int) => { this.n = this.n + k; this.n }
}
def main(): int = {
  val c = new Counter();
  val inc = c.incrementer();
  inc(3);
  inc(4)
}
|}
  in
  check_value "this captured" (Vm.Types.Int 7) (run src "main")

let test_globals () =
  let src =
    {|
var total: int = 0
val greeting = "hi"
def bump(n: int): unit = { total = total + n }
def main(): string = {
  bump(3); bump(4);
  greeting + total
}
|}
  in
  check_value "globals" (Vm.Types.Str "hi7") (run src "main")

let test_closure_fields () =
  let src =
    {|
class Handler {
  var f: (int) -> int
  def init(f: (int) -> int): unit = { this.f = f }
  def run(x: int): int = this.f(x)
}
def main(): int = {
  val h = new Handler(fun (x: int) => x * 3);
  h.run(5) + h.f(1)
}
|}
  in
  check_value "closure-valued field" (Vm.Types.Int 18) (run src "main")

let test_print_output () =
  let out =
    run_out
      {|def main(): unit = { Sys.println("hello"); Sys.print(1 + 2); Sys.println("") }|}
      "main"
  in
  check_str "printed" "hello\n3\n" out

let test_for_each_pattern () =
  (* foreach via closures over arrays, the paper's higher-order pattern *)
  let src =
    {|
def foreach(a: array[int], f: (int) -> unit): unit = {
  for (i <- 0 until a.length) { f(a[i]) }
}
def main(): int = {
  val a = new array[int](5);
  for (i <- 0 until 5) { a[i] = i * i };
  var sum = 0;
  foreach(a, fun (x: int) => { sum = sum + x });
  sum
}
|}
  in
  check_value "foreach" (Vm.Types.Int 30) (run src "main")

let test_null () =
  let src =
    {|
class Node {
  var next: Node
  var v: int
}
def main(): int = {
  val n = new Node();
  if (n.next == null) 1 else 0
}
|}
  in
  check_value "null field" (Vm.Types.Int 1) (run src "main")

let test_lancet_fallback_freeze () =
  (* Lancet API runs in plain interpreter mode with identity semantics *)
  let src =
    {|
def main(): int = {
  val schema = "a,b,c";
  val n = Lancet.freeze(fun () => Str.len(schema));
  Lancet.ntimes(2, fun (i: int) => Sys.print(i));
  if (Lancet.likely(n == 5)) n else 0
}
|}
  in
  check_value "lancet natives" (Vm.Types.Int 5) (run src "main")

let test_string_escape_roundtrip () =
  check_value "escapes" (Vm.Types.Str "a\tb\nc")
    (run {|def main(): string = "a\tb\nc"|} "main")

(* --- error cases ---------------------------------------------------- *)

let test_type_errors () =
  expect_type_error "def main(): int = { 1 + \"x\" - 2 }";
  expect_type_error "def main(): int = { true + 1 }";
  expect_type_error "def main(): int = { val x = 1; x = 2; x }";
  expect_type_error "def main(): int = { y }";
  expect_type_error "def main(): int = { if (1) 2 else 3 }";
  expect_type_error "def main(): unit = { val f = fun (x: int) => x; f(true) }";
  expect_type_error "class A { def m(): int = 1 }\nclass B extends A { def m(): string = \"x\" }";
  expect_type_error "def main(): int = new Nope()";
  expect_type_error "def main(): int = { val a = new array[int](2); a[0.5] }";
  expect_type_error "def f(x: int): int = x\ndef main(): int = f(1, 2)"

let test_syntax_errors () =
  expect_syntax_error "def main(: int = 1";
  expect_syntax_error "def main(): int = { 1 + }";
  expect_syntax_error "class { }";
  expect_syntax_error "def main(): int = \"unterminated"

let test_shadowing () =
  check_value "inner shadows outer" (Vm.Types.Int 12)
    (run
       "def main(): int = { val x = 2; val y = { val x = 10; x }; x + y }"
       "main")

(* property: random arithmetic expressions evaluate like OCaml ints (wrap32) *)
let prop_arith =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self k ->
          if k <= 0 then map (fun i -> string_of_int i) (int_range 0 50)
          else
            frequency
              [
                (1, map (fun i -> string_of_int i) (int_range 0 50));
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s + %s)" a b)
                    (self (k / 2)) (self (k / 2)) );
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s - %s)" a b)
                    (self (k / 2)) (self (k / 2)) );
                ( 1,
                  map2
                    (fun a b -> Printf.sprintf "(%s * %s)" a b)
                    (self (k / 2)) (self (k / 2)) );
              ]))
  in
  QCheck.Test.make ~name:"mini arithmetic matches reference" ~count:60
    (QCheck.make ~print:(fun s -> s) gen)
    (fun src_expr ->
      (* reference evaluation by OCaml on the same grammar *)
      let rec eval s =
        let s = String.trim s in
        if s.[0] <> '(' then int_of_string s
        else
          (* strip parens, split at top-level operator *)
          let inner = String.sub s 1 (String.length s - 2) in
          let depth = ref 0 in
          let split = ref (-1) in
          let op = ref ' ' in
          String.iteri
            (fun i c ->
              match c with
              | '(' -> incr depth
              | ')' -> decr depth
              | ('+' | '-' | '*') when !depth = 0 && !split < 0 ->
                split := i;
                op := c
              | _ -> ())
            inner;
          let a = eval (String.sub inner 0 !split) in
          let b =
            eval (String.sub inner (!split + 1) (String.length inner - !split - 1))
          in
          match !op with
          | '+' -> Vm.Value.wrap32 (a + b)
          | '-' -> Vm.Value.wrap32 (a - b)
          | '*' -> Vm.Value.wrap32 (a * b)
          | _ -> assert false
      in
      let expected = eval src_expr in
      run (Printf.sprintf "def main(): int = { %s }" src_expr) "main"
      = Vm.Types.Int expected)

let suite =
  [
    Alcotest.test_case "lexer-basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer-comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer-two-char" `Quick test_lexer_two_char;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "mixed-arith" `Quick test_mixed_arith;
    Alcotest.test_case "locals" `Quick test_locals;
    Alcotest.test_case "while" `Quick test_while;
    Alcotest.test_case "for" `Quick test_for;
    Alcotest.test_case "if" `Quick test_if;
    Alcotest.test_case "bools" `Quick test_bools;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "args" `Quick test_args;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "inheritance" `Quick test_inheritance;
    Alcotest.test_case "final-fields" `Quick test_final_fields;
    Alcotest.test_case "closures" `Quick test_closures;
    Alcotest.test_case "mutable-capture" `Quick test_mutable_capture;
    Alcotest.test_case "nested-closures" `Quick test_nested_closures;
    Alcotest.test_case "closure-factory" `Quick test_closure_returning_closure;
    Alcotest.test_case "this-capture" `Quick test_this_capture;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "closure-fields" `Quick test_closure_fields;
    Alcotest.test_case "print-output" `Quick test_print_output;
    Alcotest.test_case "foreach-pattern" `Quick test_for_each_pattern;
    Alcotest.test_case "null" `Quick test_null;
    Alcotest.test_case "lancet-fallbacks" `Quick test_lancet_fallback_freeze;
    Alcotest.test_case "string-escapes" `Quick test_string_escape_roundtrip;
    Alcotest.test_case "type-errors" `Quick test_type_errors;
    Alcotest.test_case "syntax-errors" `Quick test_syntax_errors;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    QCheck_alcotest.to_alcotest prop_arith;
  ]
