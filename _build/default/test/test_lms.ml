(* Tests for the LMS-style IR layer: builder, CSE, DCE, the closure backend,
   and the toy staged interpreter (paper Sec. 2.1-2.2, Fig. 5). *)

open Lms

let rt = Vm.Natives.boot ()

let check_int = Alcotest.(check int)

(* --- builder / backend basics ------------------------------------- *)

let test_straightline () =
  let b = Builder.create ~name:"add" ~nparams:2 () in
  let x = Builder.param b 0 Ir.Tint and y = Builder.param b 1 Ir.Tint in
  let s = Builder.iop b Vm.Types.Add x y in
  let s2 = Builder.iop b Vm.Types.Mul s (Builder.int b 3) in
  Builder.ret b s2;
  let fn =
    Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt)
      (Builder.graph b)
  in
  check_int "((4+5)*3)" 27 (Vm.Value.to_int (fn [| Int 4; Int 5 |]))

let test_cse () =
  let b = Builder.create ~name:"cse" ~nparams:2 () in
  let x = Builder.param b 0 Ir.Tint and y = Builder.param b 1 Ir.Tint in
  let s1 = Builder.iop b Vm.Types.Add x y in
  let s2 = Builder.iop b Vm.Types.Add x y in
  Alcotest.(check bool) "x+y hash-consed" true (s1 = s2);
  let s3 = Builder.iop b Vm.Types.Add y x in
  Alcotest.(check bool) "y+x is distinct" true (s1 <> s3);
  Builder.ret b s1

let test_dce () =
  let b = Builder.create ~name:"dce" ~nparams:1 () in
  let x = Builder.param b 0 Ir.Tint in
  let _dead = Builder.iop b Vm.Types.Mul x (Builder.int b 100) in
  let live = Builder.iop b Vm.Types.Add x (Builder.int b 1) in
  Builder.ret b live;
  let g = Builder.graph b in
  Ir.dead_code_elim g;
  check_int "only live node remains" 1 (Ir.node_count g);
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "x+1" 8 (Vm.Value.to_int (fn [| Int 7 |]))

let test_branch_join () =
  (* abs(x) via branch with a join param *)
  let b = Builder.create ~name:"abs" ~nparams:1 () in
  let g = Builder.graph b in
  let x = Builder.param b 0 Ir.Tint in
  let c = Builder.icmp b Vm.Types.Lt x (Builder.int b 0) in
  let bneg = Builder.new_block b and bjoin = Builder.new_block b in
  Builder.br b c (bneg, [||]) (bjoin, [| x |]);
  Builder.switch_to b bneg;
  let nx = Builder.emit b Ir.Ineg [| x |] Ir.Tint in
  Builder.jump b bjoin [| nx |];
  let p = Ir.add_block_param g bjoin Ir.Tint in
  Builder.switch_to b bjoin;
  Builder.ret b p;
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "abs -5" 5 (Vm.Value.to_int (fn [| Int (-5) |]));
  check_int "abs 9" 9 (Vm.Value.to_int (fn [| Int 9 |]))

let test_loop () =
  (* sum 0..n-1 with a loop header carrying (i, acc) *)
  let b = Builder.create ~name:"sum" ~nparams:1 () in
  let g = Builder.graph b in
  let n = Builder.param b 0 Ir.Tint in
  let zero = Builder.int b 0 in
  let head = Builder.new_block b in
  Builder.jump b head [| zero; zero |];
  let i = Ir.add_block_param g head Ir.Tint in
  let acc = Ir.add_block_param g head Ir.Tint in
  Builder.switch_to b head;
  let c = Builder.icmp b Vm.Types.Lt i n in
  let body = Builder.new_block b and exit = Builder.new_block b in
  Builder.br b c (body, [||]) (exit, [||]);
  Builder.switch_to b body;
  let acc' = Builder.iop b Vm.Types.Add acc i in
  let i' = Builder.iop b Vm.Types.Add i (Builder.int b 1) in
  Builder.jump b head [| i'; acc' |];
  Builder.switch_to b exit;
  Builder.ret b acc;
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "sum 10" 45 (Vm.Value.to_int (fn [| Int 10 |]));
  check_int "sum 0" 0 (Vm.Value.to_int (fn [| Int 0 |]))

let test_loop_swap () =
  (* rotating loop params exercises the parallel-copy path: fib-ish *)
  let b = Builder.create ~name:"swap" ~nparams:1 () in
  let g = Builder.graph b in
  let n = Builder.param b 0 Ir.Tint in
  let head = Builder.new_block b in
  Builder.jump b head [| Builder.int b 0; Builder.int b 1; Builder.int b 0 |];
  let a = Ir.add_block_param g head Ir.Tint in
  let bb = Ir.add_block_param g head Ir.Tint in
  let i = Ir.add_block_param g head Ir.Tint in
  Builder.switch_to b head;
  let c = Builder.icmp b Vm.Types.Lt i n in
  let body = Builder.new_block b and exit = Builder.new_block b in
  Builder.br b c (body, [||]) (exit, [||]);
  Builder.switch_to b body;
  let s = Builder.iop b Vm.Types.Add a bb in
  let i' = Builder.iop b Vm.Types.Add i (Builder.int b 1) in
  (* pass (b, a+b): b becomes a — a swap-like rotation *)
  Builder.jump b head [| bb; s; i' |];
  Builder.switch_to b exit;
  Builder.ret b a;
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "fib 10" 55 (Vm.Value.to_int (fn [| Int 10 |]))

let test_heap_ops () =
  let cls =
    Vm.Classfile.declare_class rt ~name:"PointLms"
      ~fields:[ ("x", false); ("y", false) ] ()
  in
  let fx = Vm.Classfile.field cls "x" and fy = Vm.Classfile.field cls "y" in
  let b = Builder.create ~name:"pt" ~nparams:2 () in
  let p0 = Builder.param b 0 Ir.Tint and p1 = Builder.param b 1 Ir.Tint in
  let o = Builder.emit b (Ir.NewObj cls) [||] Ir.Tobj in
  let _ = Builder.emit b (Ir.Putfield fx) [| o; p0 |] Ir.Tunit in
  let _ = Builder.emit b (Ir.Putfield fy) [| o; p1 |] Ir.Tunit in
  let rx = Builder.emit b (Ir.Getfield fx) [| o |] Ir.Tint in
  let ry = Builder.emit b (Ir.Getfield fy) [| o |] Ir.Tint in
  Builder.ret b (Builder.iop b Vm.Types.Add rx ry);
  let fn =
    Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt)
      (Builder.graph b)
  in
  check_int "field roundtrip" 30 (Vm.Value.to_int (fn [| Int 10; Int 20 |]))

let test_pretty () =
  let b = Builder.create ~name:"pp" ~nparams:1 () in
  let x = Builder.param b 0 Ir.Tint in
  Builder.ret b (Builder.iop b Vm.Types.Add x (Builder.int b 2));
  let s = Pretty.graph_to_string (Builder.graph b) in
  Alcotest.(check bool) "mentions iadd" true (Util.contains_sub s "iadd")

(* --- toy staged interpreter ---------------------------------------- *)

open Toy

let toy_pow =
  (* res = 1; while (i < n) { res = res * base; i = i + 1 } *)
  Seq
    [
      Assign ("res", Const 1);
      Assign ("i", Const 0);
      While
        ( Lt (Var "i", Var "n"),
          Seq
            [
              Assign ("res", Times (Var "res", Var "base"));
              Assign ("i", Plus (Var "i", Const 1));
            ] );
    ]

let test_toy_interp () =
  check_int "interp pow 2^10" 1024
    (run_interp ~inputs:[ "base"; "n" ] ~result:"res" toy_pow [ 2; 10 ])

let test_toy_compile () =
  let fn = compile rt ~inputs:[ "base"; "n" ] ~result:"res" toy_pow in
  check_int "compiled pow 2^10" 1024 (fn [ 2; 10 ]);
  check_int "compiled pow 3^4" 81 (fn [ 3; 4 ])

let test_toy_const_fold () =
  (* with constant inputs the whole loop folds away *)
  let prog =
    Seq [ Assign ("n", Const 5); Assign ("base", Const 2); toy_pow ]
  in
  let g = stage ~inputs:[] ~result:"res" prog in
  check_int "fully static program residualizes to nothing" 0 (Ir.node_count g);
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "result" 32 (Vm.Value.to_int (fn [||]))

let test_toy_partially_static () =
  (* base static, n dynamic: multiplications stay, bookkeeping folds *)
  let prog = Seq [ Assign ("base", Const 2); toy_pow ] in
  let g = stage ~inputs:[ "n" ] ~result:"res" prog in
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "2^8" 256 (Vm.Value.to_int (fn [| Int 8 |]))

let test_toy_if_join () =
  let prog =
    Seq
      [
        Assign ("r", Const 0);
        If (Lt (Var "x", Const 10), Assign ("r", Const 1), Assign ("r", Const 2));
      ]
  in
  let fn = compile rt ~inputs:[ "x" ] ~result:"r" prog in
  check_int "then" 1 (fn [ 3 ]);
  check_int "else" 2 (fn [ 30 ])

let test_toy_static_if () =
  let prog =
    Seq
      [
        Assign ("x", Const 3);
        If (Lt (Var "x", Const 10), Assign ("r", Const 1), Assign ("r", Const 2));
      ]
  in
  let g = stage ~inputs:[] ~result:"r" prog in
  check_int "static if residualizes to nothing" 0 (Ir.node_count g)

(* qcheck property: staged-then-compiled == interpreted, over random progs *)
let gen_exp =
  QCheck.Gen.(
    sized @@ fix (fun self k ->
        let leaf =
          oneof
            [
              map (fun i -> Toy.Const i) (int_range (-20) 20);
              oneofl [ Toy.Var "a"; Toy.Var "b"; Toy.Var "c" ];
            ]
        in
        if k <= 0 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 3,
                map2
                  (fun a b -> Toy.Plus (a, b))
                  (self (k / 2)) (self (k / 2)) );
              ( 2,
                map2
                  (fun a b -> Toy.Minus (a, b))
                  (self (k / 2)) (self (k / 2)) );
              ( 2,
                map2
                  (fun a b -> Toy.Times (a, b))
                  (self (k / 2)) (self (k / 2)) );
              (1, map2 (fun a b -> Toy.Lt (a, b)) (self (k / 2)) (self (k / 2)));
            ]))

(* Loop counters get fresh names never assigned by loop bodies, so every
   generated program terminates. *)
let loop_counter = ref 0

let gen_stm =
  QCheck.Gen.(
    sized @@ fix (fun self k ->
        let assign =
          map2
            (fun x e -> Toy.Assign (x, e))
            (oneofl [ "a"; "b"; "c"; "r" ])
            (gen_exp >|= fun e -> e)
        in
        if k <= 0 then assign
        else
          frequency
            [
              (3, assign);
              ( 2,
                map2 (fun a b -> Toy.Seq [ a; b ]) (self (k / 2)) (self (k / 2))
              );
              ( 2,
                map3
                  (fun c t f -> Toy.If (c, t, f))
                  gen_exp (self (k / 2)) (self (k / 2)) );
              ( 1,
                (* bounded loop: while (v < const) { body; v = v + 1 } with a
                   fresh counter v that the body cannot mention *)
                map2
                  (fun bound body ->
                    incr loop_counter;
                    let v = Printf.sprintf "loop%d" !loop_counter in
                    Toy.Seq
                      [
                        Toy.Assign (v, Toy.Const 0);
                        Toy.While
                          ( Toy.Lt (Toy.Var v, Toy.Const bound),
                            Toy.Seq
                              [
                                body;
                                Toy.Assign (v, Toy.Plus (Toy.Var v, Toy.Const 1));
                              ] );
                      ])
                  (int_range 0 8) (self (k / 3)) );
            ]))

(* avoid division in random programs (Div by zero raises in both, but the
   interpreter raises OCaml Division_by_zero while staged code may fold) *)
let prop_staged_equals_interp =
  QCheck.Test.make ~name:"staged interpreter == direct interpreter" ~count:200
    (QCheck.make ~print:Lms.Toy.stm_to_string gen_stm)
    (fun prog ->
      let inputs = [ "a"; "b" ] in
      let args = [ 3; -7 ] in
      let expected = run_interp ~inputs ~result:"r" prog args in
      let fn = compile rt ~inputs ~result:"r" prog in
      fn args = expected)

let suite =
  [
    Alcotest.test_case "straightline" `Quick test_straightline;
    Alcotest.test_case "cse" `Quick test_cse;
    Alcotest.test_case "dce" `Quick test_dce;
    Alcotest.test_case "branch-join" `Quick test_branch_join;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "loop-param-rotation" `Quick test_loop_swap;
    Alcotest.test_case "heap-ops" `Quick test_heap_ops;
    Alcotest.test_case "pretty" `Quick test_pretty;
    Alcotest.test_case "toy-interp" `Quick test_toy_interp;
    Alcotest.test_case "toy-compile" `Quick test_toy_compile;
    Alcotest.test_case "toy-const-fold" `Quick test_toy_const_fold;
    Alcotest.test_case "toy-partially-static" `Quick test_toy_partially_static;
    Alcotest.test_case "toy-if-join" `Quick test_toy_if_join;
    Alcotest.test_case "toy-static-if" `Quick test_toy_static_if;
    QCheck_alcotest.to_alcotest prop_staged_equals_interp;
  ]

let test_dce_cross_block () =
  (* regression: a value defined in one block and consumed only by a later
     block's terminator must survive DCE (needs a second marking pass) *)
  let b = Builder.create ~name:"dce2" ~nparams:2 () in
  let a = Builder.param b 0 Ir.Tint and bb = Builder.param b 1 Ir.Tint in
  let x = Builder.iop b Vm.Types.Sub bb (Builder.int b 0) in
  let y = Builder.iop b Vm.Types.Sub a bb in
  let z = Builder.iop b Vm.Types.Add x y in
  let next = Builder.new_block b in
  Builder.jump b next [||];
  Builder.switch_to b next;
  Builder.ret b z;
  let g = Builder.graph b in
  Ir.dead_code_elim g;
  check_int "all three ops survive" 3 (Ir.node_count g);
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  check_int "(b-0)+(a-b) = a" 3 (Vm.Value.to_int (fn [| Int 3; Int 9 |]))

let suite = suite @ [ Alcotest.test_case "dce-cross-block" `Quick test_dce_cross_block ]
