(* Tests for the Lancet core: explicit compilation, specialization through
   abstract interpretation, partial escape analysis, JIT macros, controlled
   inlining, speculation/deoptimization and JIT analyses. *)

open Vm.Types
module C = Lancet.Compiler

let check_value = Alcotest.check Util.value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* boot a runtime with the JIT installed and a Mini program loaded *)
let load src =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt src in
  (rt, p)

(* fetch a closure produced by Mini function [fname], compile it, and return
   both the compiled entry and a plain-interpretation entry *)
let compile_closure_of (rt, p) fname =
  let clo = Mini.Front.call p fname [||] in
  let compiled = C.compile_value rt clo in
  let call_compiled args = Vm.Interp.call_closure rt compiled args in
  let call_interp args = Vm.Interp.call_closure rt clo args in
  (call_compiled, call_interp)

let graph_nodes () =
  match !C.last_graph with
  | Some g -> Lms.Ir.node_count g
  | None -> Alcotest.fail "no graph recorded"

(* ---------- basic compilation ---------- *)

let test_compile_identity () =
  let h = load "def make(): (int) -> int = fun (x: int) => x + 1" in
  let compiled, interp = compile_closure_of h "make" in
  check_value "compiled x+1" (Int 42) (compiled [| Int 41 |]);
  check_value "interp matches" (interp [| Int 41 |]) (compiled [| Int 41 |])

let test_compile_capture_const () =
  (* captured val becomes a compile-time constant: residual code is tiny *)
  let h =
    load
      "def make(): (int) -> int = { val k = 10; val c = k * 10; fun (x: int) \
       => x * c + k }"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "x*100+10" (Int 510) (compiled [| Int 5 |]);
  (* one multiply + one add survive; the captures folded *)
  check_int "residual node count" 2 (graph_nodes ())

let test_compile_loop () =
  let h =
    load
      "def make(): (int) -> int = fun (n: int) => { var i = 0; var acc = 0; \
       while (i < n) { acc = acc + i; i = i + 1 }; acc }"
  in
  let compiled, interp = compile_closure_of h "make" in
  check_value "sum 100" (Int 4950) (compiled [| Int 100 |]);
  check_value "sum 0" (Int 0) (compiled [| Int 0 |]);
  check_value "consistent" (interp [| Int 17 |]) (compiled [| Int 17 |])

let test_compile_branch () =
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => if (x < 0) -x else x"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "abs -7" (Int 7) (compiled [| Int (-7) |]);
  check_value "abs 7" (Int 7) (compiled [| Int 7 |])

let test_constant_folding_through_branch () =
  (* statically-true condition folds the whole branch away *)
  let h =
    load
      "def make(): (int) -> int = { val flag = true; fun (x: int) => if \
       (flag) x + 1 else x - 1 }"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "took then branch" (Int 6) (compiled [| Int 5 |]);
  check_int "branch eliminated" 1 (graph_nodes ())

let test_inlined_helper () =
  (* calls are inlined by default; the helper disappears *)
  let h =
    load
      "def double(x: int): int = x * 2\n\
       def make(): (int) -> int = fun (x: int) => double(x) + double(x)"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "2x+2x" (Int 20) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "no residual calls" false (Util.contains_sub s "call Main")

let test_virtual_object_elided () =
  (* the paper's headline: object allocation compiled away entirely *)
  let h =
    load
      {|
class Pair {
  val a: int
  val b: int
  def init(a: int, b: int): unit = { this.a = a; this.b = b }
  def sum(): int = this.a + this.b
}
def make(): (int) -> int = fun (x: int) => {
  val p = new Pair(x, x * 2);
  p.sum()
}
|}
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "pair sum" (Int 15) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "no allocation in residual code" false (Util.contains_sub s "new Pair");
  check_bool "no field reads either" false (Util.contains_sub s "getfield")

let test_virtual_across_branch () =
  (* virtual object flows through a join without materializing *)
  let h =
    load
      {|
class Box2 {
  var v: int
  def init(v: int): unit = { this.v = v }
}
def make(): (int) -> int = fun (x: int) => {
  val b = new Box2(1);
  if (x > 0) { b.v = x } else { b.v = -x };
  b.v + 100
}
|}
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "pos" (Int 105) (compiled [| Int 5 |]);
  check_value "neg" (Int 103) (compiled [| Int (-3) |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "Box2 never allocated" false (Util.contains_sub s "new Box2")

let test_escape_materializes () =
  (* storing the object into an array forces materialization *)
  let h =
    load
      {|
class Cell { var v: int; def init(v: int): unit = { this.v = v } }
def make(): (array[Cell]) -> int = fun (out: array[Cell]) => {
  val c = new Cell(7);
  out[0] = c;
  c.v
}
|}
  in
  let rt, _ = h in
  let compiled, _ = compile_closure_of h "make" in
  let arr = Arr [| Null |] in
  check_value "returns field" (Int 7) (compiled [| arr |]);
  (match (Vm.Value.to_arr arr).(0) with
  | Obj o -> check_value "escaped object holds 7" (Int 7) o.ofields.(0)
  | _ -> Alcotest.fail "object did not escape");
  ignore rt

(* ---------- macros ---------- *)

let test_freeze () =
  let h =
    load
      {|
def make(): (int) -> int = {
  val table = new array[int](4);
  table[0] = 100; table[1] = 200; table[2] = 300; table[3] = 400;
  fun (i: int) => Lancet.freeze(fun () => table[2]) + i
}
|}
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "frozen read" (Int 301) (compiled [| Int 1 |]);
  (* residual: just one add — the array read happened at compile time *)
  check_int "array read folded" 1 (graph_nodes ())

let test_freeze_dynamic_fails () =
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => Lancet.freeze(fun () => x + 1)"
  in
  let rt, p = h in
  let clo = Mini.Front.call p "make" [||] in
  (match C.compile_value rt clo with
  | exception Lancet.Errors.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected Compile_error for dynamic freeze")

let test_ntimes_unrolls () =
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => { var acc = 0; Lancet.ntimes(4, \
       fun (i: int) => { acc = acc + x + i }); acc }"
  in
  let compiled, interp = compile_closure_of h "make" in
  check_value "unrolled sum" (Int 26) (compiled [| Int 5 |]);
  check_value "same as interp" (interp [| Int 5 |]) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "loop gone (no blocks with params)" false (Util.contains_sub s "jump")

let test_speculate () =
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => if (Lancet.speculate(x < 100)) \
       x + 1 else x * 1000"
  in
  let compiled, _ = compile_closure_of h "make" in
  let d0 = !C.count_deopts in
  check_value "fast path" (Int 6) (compiled [| Int 5 |]);
  check_int "no deopt on fast path" d0 !C.count_deopts;
  (* speculation fails: deoptimize into the interpreter, still correct *)
  check_value "slow path via interpreter" (Int 500000) (compiled [| Int 500 |]);
  check_int "one deopt" (d0 + 1) !C.count_deopts

let test_slowpath_diverges_branch () =
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => if (x < 100) x + 1 else { \
       Lancet.slowpath(); x * 1000 }"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "fast" (Int 2) (compiled [| Int 1 |]);
  check_value "deopt path result" (Int 7000000) (compiled [| Int 7000 |]);
  (* the slow-path multiply must NOT be in compiled code *)
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "multiply eliminated from compiled code" false
    (Util.contains_sub s "imul")

let test_stable_recompiles () =
  let h =
    load
      {|
var mode: int = 1
def make(): (int) -> int = fun (x: int) =>
  if (Lancet.stable(fun () => mode == 1)) x + 1 else x - 1
|}
  in
  let rt, p = h in
  let clo = Mini.Front.call p "make" [||] in
  let compiled = C.compile_value rt clo in
  let call args = Vm.Interp.call_closure rt compiled args in
  check_value "stable true" (Int 11) (call [| Int 10 |]);
  let r0 = !C.count_recompiles in
  (* flip the mode: guard fails once, recompilation kicks in *)
  Vm.Runtime.set_global rt 0 (Int 2);
  check_value "after flip, correct result" (Int 9) (call [| Int 10 |]);
  check_int "one recompile" (r0 + 1) !C.count_recompiles;
  (* subsequent calls run the recompiled fast path, no further deopts *)
  let d = !C.count_deopts in
  check_value "recompiled result" (Int 9) (call [| Int 10 |]);
  check_int "no new deopt" d !C.count_deopts

let test_inline_never_directive () =
  let h =
    load
      "def helper(x: int): int = x * 3\n\
       def make(): (int) -> int = fun (x: int) => Lancet.inline_never(fun () \
       => helper(x) + 1)"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "correct result" (Int 16) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "helper remains a call" true (Util.contains_sub s ".helper")

let test_at_scope () =
  let h =
    load
      "def io_write(x: int): int = x + 1\n\
       def work(x: int): int = io_write(x) * 2\n\
       def make(): (int) -> int = fun (x: int) => Lancet.at_scope(\"io_\", \
       \"inline_never\", fun () => work(x))"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "correct" (Int 12) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  check_bool "io_write not inlined" true (Util.contains_sub s ".io_write");
  check_bool "work was inlined" false (Util.contains_sub s ".work")

let test_check_no_alloc_pass () =
  let h =
    load
      {|
class P2 { val a: int; def init(a: int): unit = { this.a = a } }
def make(): (int) -> int = fun (x: int) =>
  Lancet.check_no_alloc(fun () => { val p = new P2(x); p.a + 1 })
|}
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "no-alloc region runs" (Int 8) (compiled [| Int 7 |])

let test_check_no_alloc_fail () =
  let h =
    load
      "def make(): (int) -> array[int] = fun (x: int) => \
       Lancet.check_no_alloc(fun () => new array[int](x))"
  in
  let rt, p = h in
  let clo = Mini.Front.call p "make" [||] in
  (match C.compile_value rt clo with
  | exception Lancet.Errors.Compile_error msg ->
    check_bool "mentions allocation" true (Util.contains_sub msg "alloc")
  | _ -> Alcotest.fail "expected checkNoAlloc to fail")

let test_taint_leak () =
  let h =
    load
      "def make(): (int) -> unit = fun (x: int) => Lancet.check_no_leak(fun \
       () => { val secret = Lancet.taint(x); Sys.println(secret) })"
  in
  let rt, p = h in
  let clo = Mini.Front.call p "make" [||] in
  (match C.compile_value rt clo with
  | exception Lancet.Errors.Compile_error msg ->
    check_bool "mentions sink" true (Util.contains_sub msg "sink")
  | _ -> Alcotest.fail "expected checkNoLeak to fail")

let test_taint_untaint_ok () =
  let h =
    load
      "def make(): (int) -> unit = fun (x: int) => Lancet.check_no_leak(fun \
       () => { val secret = Lancet.taint(x); Sys.println(Lancet.untaint(secret)) })"
  in
  let compiled, _ = compile_closure_of h "make" in
  let out, _ =
    Vm.Runtime.capture_output (fst h) (fun () -> compiled [| Int 5 |])
  in
  Alcotest.(check string) "prints" "5\n" out

let test_compiled_string_ops_fold () =
  (* pure natives on constants fold at compile time *)
  let h =
    load
      {|
def make(): (int) -> int = {
  val s = "hello,world";
  fun (x: int) => Str.index_of(s, ",") + x
}
|}
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "5 + 1" (Int 6) (compiled [| Int 1 |]);
  check_int "index_of folded away" 1 (graph_nodes ())

(* the two-way integration: bytecode invoking Lancet.compile at runtime *)
let test_compile_from_bytecode () =
  let h =
    load
      {|
def main(): int = {
  val k = 10;
  val f = Lancet.compile(fun (x: int) => x * k);
  f(5) + f(6)
}
|}
  in
  let rt, p = h in
  ignore rt;
  check_value "compiled within program" (Int 110) (Mini.Front.call p "main" [||])

let suite =
  [
    Alcotest.test_case "compile-identity" `Quick test_compile_identity;
    Alcotest.test_case "capture-const" `Quick test_compile_capture_const;
    Alcotest.test_case "compile-loop" `Quick test_compile_loop;
    Alcotest.test_case "compile-branch" `Quick test_compile_branch;
    Alcotest.test_case "fold-static-branch" `Quick test_constant_folding_through_branch;
    Alcotest.test_case "inline-helper" `Quick test_inlined_helper;
    Alcotest.test_case "virtual-object-elided" `Quick test_virtual_object_elided;
    Alcotest.test_case "virtual-across-branch" `Quick test_virtual_across_branch;
    Alcotest.test_case "escape-materializes" `Quick test_escape_materializes;
    Alcotest.test_case "freeze" `Quick test_freeze;
    Alcotest.test_case "freeze-dynamic-fails" `Quick test_freeze_dynamic_fails;
    Alcotest.test_case "ntimes-unrolls" `Quick test_ntimes_unrolls;
    Alcotest.test_case "speculate-deopt" `Quick test_speculate;
    Alcotest.test_case "slowpath" `Quick test_slowpath_diverges_branch;
    Alcotest.test_case "stable-recompile" `Quick test_stable_recompiles;
    Alcotest.test_case "inline-never" `Quick test_inline_never_directive;
    Alcotest.test_case "at-scope" `Quick test_at_scope;
    Alcotest.test_case "check-no-alloc-pass" `Quick test_check_no_alloc_pass;
    Alcotest.test_case "check-no-alloc-fail" `Quick test_check_no_alloc_fail;
    Alcotest.test_case "taint-leak" `Quick test_taint_leak;
    Alcotest.test_case "taint-untaint" `Quick test_taint_untaint_ok;
    Alcotest.test_case "fold-pure-natives" `Quick test_compiled_string_ops_fold;
    Alcotest.test_case "compile-from-bytecode" `Quick test_compile_from_bytecode;
  ]

(* ---------- property: compiled == interpreted on random programs ------- *)

let fresh_loop = ref 100

let gen_mini_stmts =
  QCheck.Gen.(
    let var = oneofl [ "c"; "r" ] in
    let rec gen_exp k =
      if k <= 0 then
        oneof [ map string_of_int (int_range (-9) 9); oneofl [ "a"; "b"; "c"; "r" ] ]
      else
        frequency
          [
            (2, gen_exp 0);
            ( 3,
              map2
                (fun x y -> Printf.sprintf "(%s + %s)" x y)
                (gen_exp (k / 2)) (gen_exp (k / 2)) );
            ( 2,
              map2
                (fun x y -> Printf.sprintf "(%s - %s)" x y)
                (gen_exp (k / 2)) (gen_exp (k / 2)) );
            ( 1,
              map2
                (fun x y -> Printf.sprintf "(%s * %s)" x y)
                (gen_exp (k / 2)) (gen_exp (k / 2)) );
          ]
    in
    let rec gen_stm k =
      let assign = map2 (Printf.sprintf "%s = %s") var (gen_exp 2) in
      if k <= 0 then assign
      else
        frequency
          [
            (3, assign);
            (2, map2 (Printf.sprintf "%s; %s") (gen_stm (k / 2)) (gen_stm (k / 2)));
            ( 2,
              map3
                (fun c t f ->
                  Printf.sprintf "if (%s < 3) { %s } else { %s }" c t f)
                (gen_exp 1) (gen_stm (k / 2)) (gen_stm (k / 2)) );
            ( 1,
              map2
                (fun bound body ->
                  incr fresh_loop;
                  let v = Printf.sprintf "l%d" !fresh_loop in
                  Printf.sprintf
                    "var %s = 0; while (%s < %d) { %s; %s = %s + 1 }" v v bound
                    body v v)
                (int_range 0 6) (gen_stm (k / 3)) );
          ]
    in
    sized (fun k -> gen_stm (min k 12)))

let prop_compiled_equals_interpreted =
  QCheck.Test.make ~name:"Lancet-compiled == interpreted" ~count:120
    (QCheck.make ~print:(fun s -> s) gen_mini_stmts)
    (fun stmts ->
      let src =
        Printf.sprintf
          "def make(): (int, int) -> int = fun (a: int, b: int) => { var c = \
           0; var r = 0; %s; r }"
          stmts
      in
      let rt = Lancet.Api.boot () in
      let p = Mini.Front.load rt src in
      let clo = Mini.Front.call p "make" [||] in
      let compiled = C.compile_value rt clo in
      List.for_all
        (fun (a, b) ->
          Vm.Value.equal
            (Vm.Interp.call_closure rt clo [| Int a; Int b |])
            (Vm.Interp.call_closure rt compiled [| Int a; Int b |]))
        [ (0, 0); (3, -7); (11, 5); (-2, 9) ])

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_compiled_equals_interpreted ]

(* ---------- delimited continuations (paper Sec. 3.2 shift/reset) ------- *)

let test_reset_no_shift () =
  let h =
    load "def make(): (int) -> int = fun (x: int) => Lancet.reset(fun () => x + 1)"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "plain reset" (Int 6) (compiled [| Int 5 |])

let test_shift_abort () =
  (* shift that never invokes k: aborts to the reset with the body's value *)
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => Lancet.reset(fun () => \
       Lancet.shift(fun (k: (int) -> int) => 42) + x)"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "abort discards continuation" (Int 42) (compiled [| Int 5 |])

let test_shift_invoke () =
  (* k(10) resumes the continuation: (10 + x) is computed in the interpreter *)
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => Lancet.reset(fun () => \
       Lancet.shift(fun (k: (int) -> int) => k(10) + 1) + x)"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "k(10) + 1 = (10 + 5) + 1" (Int 16) (compiled [| Int 5 |])

let test_shift_multishot () =
  (* invoking k twice: continuations are multi-shot *)
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => Lancet.reset(fun () => \
       Lancet.shift(fun (k: (int) -> int) => k(1) + k(2)) * x)"
  in
  let compiled, _ = compile_closure_of h "make" in
  (* k(v) = v * x; so k(1) + k(2) = x + 2x = 3x *)
  check_value "multi-shot" (Int 21) (compiled [| Int 7 |])

let test_shift_through_call () =
  (* the continuation crosses an inlined call boundary *)
  let h =
    load
      "def wrap(x: int): int = Lancet.shift(fun (k: (int) -> int) => k(x) + \
       1000)\n\
       def make(): (int) -> int = fun (x: int) => Lancet.reset(fun () => \
       wrap(x) * 2)"
  in
  let compiled, _ = compile_closure_of h "make" in
  (* k(v) = v * 2; result = x*2 + 1000 *)
  check_value "continuation across inlining" (Int 1010) (compiled [| Int 5 |])

let test_in_scope_directive () =
  (* inScope applies the directive inside the matched method *)
  let h =
    load
      "def inner(x: int): int = x * 3\n\
       def work(x: int): int = inner(x) + 1\n\
       def make(): (int) -> int = fun (x: int) => Lancet.in_scope(\"work\", \
       \"inline_never\", fun () => work(x))"
  in
  let compiled, _ = compile_closure_of h "make" in
  check_value "correct" (Int 16) (compiled [| Int 5 |]);
  let g = match !C.last_graph with Some g -> g | None -> assert false in
  let s = Lms.Pretty.graph_to_string g in
  (* work itself is inlined, but inner (inside work) is not *)
  check_bool "work inlined" false (Util.contains_sub s ".work");
  check_bool "inner residual" true (Util.contains_sub s ".inner")

let test_taint_branch () =
  (* branching on tainted data is flagged (timing side channels, Sec. 3.3) *)
  let h =
    load
      "def make(): (int) -> int = fun (x: int) => Lancet.check_no_leak(fun \
       () => { val secret = Lancet.taint(x); if (secret > 0) 1 else 0 })"
  in
  let rt, p = h in
  let clo = Mini.Front.call p "make" [||] in
  (match C.compile_value rt clo with
  | exception Lancet.Errors.Compile_error msg ->
    check_bool "mentions branch" true (Util.contains_sub msg "branch")
  | _ -> Alcotest.fail "expected branch-on-taint to be rejected");
  ignore rt

let test_ntimes_gated_unroll () =
  (* large trip counts stay loops unless unrollTopLevel is in scope *)
  let src k wrap =
    Printf.sprintf
      "def loopy(x: int): int = { var acc = 0; Lancet.ntimes(%d, fun (i: \
       int) => { acc = acc + i }); acc + x }\n\
       def make(): (int) -> int = fun (x: int) => %s"
      k wrap
  in
  let h = load (src 200 "loopy(x)") in
  let compiled, _ = compile_closure_of h "make" in
  check_value "big loop result" (Int (19900 + 5)) (compiled [| Int 5 |]);
  let s = Lms.Pretty.graph_to_string (Option.get !C.last_graph) in
  check_bool "stays a residual loop or call" true
    (Util.contains_sub s "jump" || Util.contains_sub s "ntimes");
  (* now under the directive (the paper's atScope("loopy")(unrollTopLevel)) *)
  let h2 =
    load
      (src 200
         "Lancet.at_scope(\"loopy\", \"unroll_top_level\", fun () => loopy(x))")
  in
  let compiled2, _ = compile_closure_of h2 "make" in
  check_value "unrolled result" (Int (19900 + 5)) (compiled2 [| Int 5 |]);
  let s2 = Lms.Pretty.graph_to_string (Option.get !C.last_graph) in
  check_bool "fully unrolled" false
    (Util.contains_sub s2 "jump" || Util.contains_sub s2 "ntimes")

(* typed backend == boxed backend on random programs *)
let prop_typed_equals_boxed =
  QCheck.Test.make ~name:"typed backend == boxed backend" ~count:80
    (QCheck.make ~print:(fun s -> s) gen_mini_stmts)
    (fun stmts ->
      let src =
        Printf.sprintf
          "def f(a: int, b: int): int = { var c = 0; var r = 0; %s; r }" stmts
      in
      let rt = Lancet.Api.boot () in
      let p = Mini.Front.load rt src in
      let m = Mini.Front.find_function p "f" in
      let spec = [| C.Dyn; C.Dyn |] in
      let boxed = C.compile_method ~typed:false rt m spec in
      let typed = C.compile_method ~typed:true rt m spec in
      List.for_all
        (fun (a, b) ->
          Vm.Value.equal (boxed [| Int a; Int b |]) (typed [| Int a; Int b |]))
        [ (0, 0); (3, -7); (11, 5) ])

let suite =
  suite
  @ [
      Alcotest.test_case "reset-plain" `Quick test_reset_no_shift;
      Alcotest.test_case "shift-abort" `Quick test_shift_abort;
      Alcotest.test_case "shift-invoke" `Quick test_shift_invoke;
      Alcotest.test_case "shift-multishot" `Quick test_shift_multishot;
      Alcotest.test_case "shift-across-call" `Quick test_shift_through_call;
      Alcotest.test_case "in-scope" `Quick test_in_scope_directive;
      Alcotest.test_case "taint-branch" `Quick test_taint_branch;
      Alcotest.test_case "ntimes-gated-unroll" `Quick test_ntimes_gated_unroll;
      QCheck_alcotest.to_alcotest prop_typed_equals_boxed;
    ]

(* deoptimization stress: random programs with speculation guards that fail
   on some inputs; compiled execution (including OSR-out frame
   reconstruction) must match plain interpretation everywhere *)
let prop_deopt_stress =
  QCheck.Test.make ~name:"speculation deopt == interpretation" ~count:60
    (QCheck.make ~print:(fun s -> s) gen_mini_stmts)
    (fun stmts ->
      let src =
        Printf.sprintf
          "def helper(c: int, r: int): int = if (Lancet.speculate(c < 5)) r \
           + c else r * 2 - c\n\
           def make(): (int, int) -> int = fun (a: int, b: int) => { var c = \
           0; var r = 0; %s; helper(c, r) }"
          stmts
      in
      let rt = Lancet.Api.boot () in
      let p = Mini.Front.load rt src in
      let clo = Mini.Front.call p "make" [||] in
      let compiled = C.compile_value rt clo in
      List.for_all
        (fun (a, b) ->
          Vm.Value.equal
            (Vm.Interp.call_closure rt clo [| Int a; Int b |])
            (Vm.Interp.call_closure rt compiled [| Int a; Int b |]))
        [ (0, 0); (9, 9); (3, -7); (100, 4); (-2, 63) ])

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_deopt_stress ]
