(* CSV workload tests: all four Table 1 configurations agree on the result;
   the specialized version actually specializes (record + schema lookups
   compiled away). *)

let text = Csvlib.Gen.generate ~seed:42 ~bytes:20_000

let reference = Csvlib.Harness.reference text

let check_config name cfg () =
  let r, _ = Csvlib.Harness.run cfg text in
  Alcotest.(check int) name reference r

let test_specialized_graph () =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt Csvlib.Mini_src.specialized in
  ignore (Mini.Front.call p "run_specialized" [| Str text |]);
  match !Lancet.Compiler.last_graph with
  | None -> Alcotest.fail "no compilation happened"
  | Some g ->
    let s = Lms.Pretty.graph_to_string g in
    (* the record abstraction is gone: no RecordS allocation, and the
       name-to-column scan (index_of) left no residual call *)
    Alcotest.(check bool) "no RecordS allocation" false
      (Util.contains_sub s "new RecordS");
    Alcotest.(check bool) "no residual index_of" false
      (Util.contains_sub s "index_of")

let test_generic_keeps_lookup () =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt Csvlib.Mini_src.generic in
  let clo = Mini.Front.call p "make_generic" [||] in
  ignore (Lancet.Compiler.compile_value rt clo);
  match !Lancet.Compiler.last_graph with
  | None -> Alcotest.fail "no graph"
  | Some g ->
    (* generic code must still perform dynamic schema scans: the residual
       graph contains array loads inside a loop (blocks with params) *)
    let s = Lms.Pretty.graph_to_string g in
    Alcotest.(check bool) "still scans at runtime" true
      (Util.contains_sub s "aload")

let test_foreach_unrolls () =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt Csvlib.Mini_src.specialized in
  let small = "A,B,C\n1,2,3\n" in
  let out = Mini.Front.call p "concat_fields" [| Str small |] in
  Alcotest.check Util.value "foreach over schema" (Str "A=1;B=2;C=3;") out

let test_generator_shape () =
  let t = Csvlib.Gen.generate ~seed:1 ~bytes:5_000 in
  let lines = String.split_on_char '\n' t in
  (match lines with
  | header :: _ ->
    Alcotest.(check int) "20 columns" 20
      (List.length (String.split_on_char ',' header))
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check bool) "size close to request" true
    (String.length t >= 5_000 && String.length t < 6_000)

let test_sizes_agree () =
  (* different sizes, same checksum across native and specialized *)
  List.iter
    (fun bytes ->
      let t = Csvlib.Gen.generate ~seed:7 ~bytes in
      let expect = Csvlib.Harness.reference t in
      let r, _ = Csvlib.Harness.run Csvlib.Harness.Specialized t in
      Alcotest.(check int) (Printf.sprintf "bytes=%d" bytes) expect r)
    [ 2_000; 50_000 ]

let suite =
  [
    Alcotest.test_case "native" `Quick (check_config "native" Csvlib.Harness.Native);
    Alcotest.test_case "interpreted" `Quick
      (check_config "interpreted" Csvlib.Harness.Interpreted);
    Alcotest.test_case "generic-compiled" `Quick
      (check_config "generic" Csvlib.Harness.Generic_compiled);
    Alcotest.test_case "specialized" `Quick
      (check_config "specialized" Csvlib.Harness.Specialized);
    Alcotest.test_case "specialized-graph" `Quick test_specialized_graph;
    Alcotest.test_case "generic-keeps-lookup" `Quick test_generic_keeps_lookup;
    Alcotest.test_case "foreach-unrolls" `Quick test_foreach_unrolls;
    Alcotest.test_case "generator-shape" `Quick test_generator_shape;
    Alcotest.test_case "sizes-agree" `Quick test_sizes_agree;
  ]
