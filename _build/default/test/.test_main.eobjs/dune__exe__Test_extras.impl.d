test/test_extras.ml: Alcotest Array Extras Jsdom Lancet List Lms Mini Query String Util Vm
