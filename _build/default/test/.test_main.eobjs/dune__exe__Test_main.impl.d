test/test_main.ml: Alcotest Test_csv Test_extras Test_lancet Test_lms Test_mini Test_optiml Test_safeint Test_vm
