test/test_vm.ml: Alcotest Array Assembler Classfile Disasm Gen Interp List Mini Natives Printf QCheck QCheck_alcotest Runtime Util Value Verifier Vm
