test/test_lms.ml: Alcotest Builder Closure_backend Ir Lms Pretty Printf QCheck QCheck_alcotest Toy Util Vm
