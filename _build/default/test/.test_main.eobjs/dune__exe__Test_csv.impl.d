test/test_csv.ml: Alcotest Csvlib Lancet List Lms Mini Printf String Util
