test/test_optiml.ml: Alcotest Array Delite Float Gen Lancet List Lms Mini Optiml Printf QCheck QCheck_alcotest Util Vm
