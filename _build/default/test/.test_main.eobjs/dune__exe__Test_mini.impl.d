test/test_mini.ml: Alcotest Ast Front Lexer List Mini Parser Printf QCheck QCheck_alcotest String Util Vm
