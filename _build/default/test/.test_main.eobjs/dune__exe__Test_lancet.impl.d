test/test_lancet.ml: Alcotest Array Lancet List Lms Mini Option Printf QCheck QCheck_alcotest Util Vm
