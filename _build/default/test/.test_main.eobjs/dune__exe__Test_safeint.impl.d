test/test_safeint.ml: Alcotest Bigint Gen Lancet List Lms Mini QCheck QCheck_alcotest Safeint String Util Vm
