test/util.ml: Alcotest String Vm
