(* Language-embedded queries (paper Sec. 3.5, SQL/LINQ): an in-memory
   relational substrate, a query IR, SQL text generation, and the two
   context-aware optimizations the paper describes — reuse of repeated
   scalar aggregates (no duplicate execution) and query-avalanche avoidance
   (a nested per-row query becomes one grouped query plus an index). *)

type scalar = S_int of int | S_str of string | S_float of float

let scalar_to_string = function
  | S_int i -> string_of_int i
  | S_str s -> s
  | S_float f -> Printf.sprintf "%g" f

type row = scalar array

type table = {
  t_name : string;
  t_cols : string list;
  t_rows : row list;
  mutable t_scans : int; (* instrumentation: how often this table was read *)
}

let make_table ~name ~cols ~rows = { t_name = name; t_cols = cols; t_rows = rows; t_scans = 0 }

let col_index t c =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "table %s has no column %s" t.t_name c)
    | x :: _ when String.equal x c -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.t_cols

(* ---------------- predicates and queries ---------------- *)

type pred =
  | P_true
  | P_and of pred * pred
  | P_cmp of string * cmp * scalar (* column op constant *)
  | P_eq_col of string * string (* column = column (for joins) *)
  | P_eq_param of string (* column = ? — a query parameterized per row *)

and cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type query =
  | Scan of table
  | Filter of query * pred
  | Project of query * string list

type agg = Count of query | Sum of query * string

(* ---------------- SQL generation ---------------- *)

let cmp_sql = function
  | Ceq -> "=" | Cne -> "<>" | Clt -> "<" | Cle -> "<=" | Cgt -> ">" | Cge -> ">="

let scalar_sql = function
  | S_int i -> string_of_int i
  | S_float f -> Printf.sprintf "%g" f
  | S_str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let rec pred_sql = function
  | P_true -> "1=1"
  | P_and (a, b) -> Printf.sprintf "(%s AND %s)" (pred_sql a) (pred_sql b)
  | P_cmp (c, op, v) -> Printf.sprintf "%s %s %s" c (cmp_sql op) (scalar_sql v)
  | P_eq_col (a, b) -> Printf.sprintf "%s = %s" a b
  | P_eq_param c -> Printf.sprintf "%s = ?" c

(* flatten a query into SELECT cols FROM t WHERE preds *)
let rec flatten (q : query) : string list option * table * pred =
  match q with
  | Scan t -> (None, t, P_true)
  | Filter (q, p) ->
    let cols, t, p0 = flatten q in
    (cols, t, if p0 = P_true then p else P_and (p0, p))
  | Project (q, cs) ->
    let _, t, p = flatten q in
    (Some cs, t, p)

let to_sql (q : query) : string =
  let cols, t, p = flatten q in
  let sel = match cols with None -> "*" | Some cs -> String.concat ", " cs in
  let where = match p with P_true -> "" | p -> " WHERE " ^ pred_sql p in
  Printf.sprintf "SELECT %s FROM %s%s" sel t.t_name where

let agg_sql = function
  | Count q ->
    let _, t, p = flatten q in
    let where = match p with P_true -> "" | p -> " WHERE " ^ pred_sql p in
    Printf.sprintf "SELECT COUNT(*) FROM %s%s" t.t_name where
  | Sum (q, c) ->
    let _, t, p = flatten q in
    let where = match p with P_true -> "" | p -> " WHERE " ^ pred_sql p in
    Printf.sprintf "SELECT SUM(%s) FROM %s%s" c t.t_name where

(* ---------------- in-memory evaluation ---------------- *)

let rec eval_pred t (p : pred) ~(param : scalar option) (r : row) : bool =
  match p with
  | P_true -> true
  | P_and (a, b) -> eval_pred t a ~param r && eval_pred t b ~param r
  | P_cmp (c, op, v) ->
    let x = r.(col_index t c) in
    let d = compare x v in
    (match op with
    | Ceq -> d = 0 | Cne -> d <> 0 | Clt -> d < 0
    | Cle -> d <= 0 | Cgt -> d > 0 | Cge -> d >= 0)
  | P_eq_col (a, b) -> r.(col_index t a) = r.(col_index t b)
  | P_eq_param c -> (
    match param with
    | Some v -> r.(col_index t c) = v
    | None -> invalid_arg "unbound query parameter")

let run ?param (q : query) : row list =
  let cols, t, p = flatten q in
  t.t_scans <- t.t_scans + 1;
  let rows = List.filter (eval_pred t p ~param) t.t_rows in
  match cols with
  | None -> rows
  | Some cs ->
    let idx = List.map (col_index t) cs in
    List.map (fun r -> Array.of_list (List.map (fun i -> r.(i)) idx)) rows

let count ?param (q : query) : int = List.length (run ?param q)

let sum ?param (q : query) (c : string) : float =
  let _, t, _ = flatten q in
  let i = col_index t c in
  List.fold_left
    (fun acc r ->
      acc
      +.
      match r.(i) with
      | S_int v -> float_of_int v
      | S_float v -> v
      | S_str _ -> 0.0)
    0.0 (run ?param q)

(* ---------------- context-aware optimizations ---------------- *)

(* 1. Duplicate-execution avoidance: [res.count] and [res.sum] on the same
   query normally execute it twice; sharing materializes once. *)
type shared = { sh_rows : row list Lazy.t; sh_query : query }

let share (q : query) : shared = { sh_rows = lazy (run q); sh_query = q }

let shared_count (s : shared) = List.length (Lazy.force s.sh_rows)

let shared_sum (s : shared) (c : string) =
  let _, t, _ = flatten s.sh_query in
  let i = col_index t c in
  List.fold_left
    (fun acc r ->
      acc
      +.
      match r.(i) with
      | S_int v -> float_of_int v
      | S_float v -> v
      | S_str _ -> 0.0)
    0.0 (Lazy.force s.sh_rows)

(* 2. Query-avalanche avoidance: for every row of the outer query, the inner
   parameterized query [Filter (inner, P_eq_param key)] would issue one
   query.  Building a group index replaces N inner queries with one scan. *)
type 'k index = ('k, row list) Hashtbl.t

let group_by (q : query) (key_col : string) : scalar index =
  let _, t, _ = flatten q in
  let i = col_index t key_col in
  let h = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = r.(i) in
      Hashtbl.replace h k (r :: (Option.value (Hashtbl.find_opt h k) ~default:[])))
    (run q);
  h

let index_lookup (h : scalar index) (k : scalar) : row list =
  List.rev (Option.value (Hashtbl.find_opt h k) ~default:[])

(* The naive nested loop (one inner query per outer row)... *)
let nested_naive ~(outer : query) ~(inner : query) ~(inner_key : string)
    ~(outer_key : string) : (row * row list) list =
  let ocols, ot, _ = flatten outer in
  ignore ocols;
  let oi = col_index ot outer_key in
  List.map
    (fun r -> (r, run ~param:r.(oi) (Filter (inner, P_eq_param inner_key))))
    (run outer)

(* ...and the avalanche-safe version: exactly two scans total. *)
let nested_indexed ~(outer : query) ~(inner : query) ~(inner_key : string)
    ~(outer_key : string) : (row * row list) list =
  let _, ot, _ = flatten outer in
  let oi = col_index ot outer_key in
  let idx = group_by inner inner_key in
  List.map (fun r -> (r, index_lookup idx r.(oi))) (run outer)

(* scan counters for tests/benches *)
let scans_of (q : query) =
  let _, t, _ = flatten q in
  t.t_scans

let reset_scans (q : query) =
  let _, t, _ = flatten q in
  t.t_scans <- 0
