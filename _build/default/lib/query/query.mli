(** Language-embedded queries (paper Sec. 3.5): an in-memory relational
    substrate, a query IR, SQL text generation, and the two context-aware
    optimizations the paper describes — shared scalar aggregates (no
    duplicate execution) and query-avalanche avoidance via group indexes. *)

(** {1 Relations} *)

type scalar = S_int of int | S_str of string | S_float of float

val scalar_to_string : scalar -> string

type row = scalar array

type table = {
  t_name : string;
  t_cols : string list;
  t_rows : row list;
  mutable t_scans : int;  (** instrumentation: number of scans executed *)
}

val make_table : name:string -> cols:string list -> rows:row list -> table

val col_index : table -> string -> int
(** @raise Invalid_argument for an unknown column. *)

(** {1 Queries} *)

type pred =
  | P_true
  | P_and of pred * pred
  | P_cmp of string * cmp * scalar  (** column ⋈ constant *)
  | P_eq_col of string * string
  | P_eq_param of string  (** column = ? (bound per execution) *)

and cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type query =
  | Scan of table
  | Filter of query * pred
  | Project of query * string list

type agg = Count of query | Sum of query * string

(** {1 SQL generation} *)

val to_sql : query -> string
(** e.g. [SELECT id FROM t_item WHERE price > 0]. String constants are
    quoted with [''] escaping. *)

val agg_sql : agg -> string

(** {1 In-memory evaluation} *)

val run : ?param:scalar -> query -> row list
(** Executes the query (one table scan, recorded in [t_scans]);
    [param] binds [P_eq_param] predicates. *)

val count : ?param:scalar -> query -> int
val sum : ?param:scalar -> query -> string -> float

(** {1 Context-aware optimizations} *)

type shared
(** A query whose result is materialized at most once, so that [count] and
    [sum] on the same result do not re-execute it (the paper's duplicate
    execution problem). *)

val share : query -> shared
val shared_count : shared -> int
val shared_sum : shared -> string -> float

type 'k index

val group_by : query -> string -> scalar index
(** One scan building a key → rows index. *)

val index_lookup : scalar index -> scalar -> row list

val nested_naive :
  outer:query -> inner:query -> inner_key:string -> outer_key:string ->
  (row * row list) list
(** The query avalanche: issues one parameterized inner query per outer
    row. *)

val nested_indexed :
  outer:query -> inner:query -> inner_key:string -> outer_key:string ->
  (row * row list) list
(** Avalanche-safe equivalent: exactly one inner scan via [group_by]. *)

(** {1 Instrumentation} *)

val scans_of : query -> int
val reset_scans : query -> unit
