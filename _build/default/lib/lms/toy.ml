(* The paper's Section 2.1/2.2 in miniature (Fig. 5): a toy While-language,
   its definitional interpreter, and the staged interpreter obtained by
   switching the value domain from [int] to [sym] — which *is* a compiler.
   The staged version also carries the abstract store (Const/Dyn) and
   iterates loop bodies to a fixpoint, exactly the pseudocode of Sec. 2.2. *)

module StringMap = Map.Make (String)

type exp =
  | Const of int
  | Var of string
  | Plus of exp * exp
  | Minus of exp * exp
  | Times of exp * exp
  | Div of exp * exp
  | Lt of exp * exp
  | Eq of exp * exp

type stm =
  | Assign of string * exp
  | Seq of stm list
  | If of exp * stm * stm
  | While of exp * stm
  | Skip

type store = int StringMap.t

(* ------------------------------------------------------------------ *)
(* The interpreter, read off the denotational semantics.               *)

(* Arithmetic wraps to 32 bits, the semantics of the VM's integer ops; the
   staged interpreter's constant folding must agree exactly. *)
let w32 = Vm.Value.wrap32

let rec eval (e : exp) (st : store) : int =
  match e with
  | Const c -> c
  | Var x -> (try StringMap.find x st with Not_found -> 0)
  | Plus (a, b) -> w32 (eval a st + eval b st)
  | Minus (a, b) -> w32 (eval a st - eval b st)
  | Times (a, b) -> w32 (eval a st * eval b st)
  | Div (a, b) -> w32 (eval a st / eval b st)
  | Lt (a, b) -> if eval a st < eval b st then 1 else 0
  | Eq (a, b) -> if eval a st = eval b st then 1 else 0

let rec exec (s : stm) (st : store) : store =
  match s with
  | Assign (x, e) -> StringMap.add x (eval e st) st
  | Seq ss -> List.fold_left (fun st s -> exec s st) st ss
  | If (c, t, f) -> if eval c st <> 0 then exec t st else exec f st
  | While (c, body) ->
    let st = ref st in
    while eval c !st <> 0 do
      st := exec body !st
    done;
    !st
  | Skip -> st

(* ------------------------------------------------------------------ *)
(* The staged interpreter: values become IR symbols.  The abstract      *)
(* store tracks which variables are compile-time constants.             *)

type aval = AConst of int | ADyn

let lub a b =
  match a, b with
  | AConst x, AConst y when x = y -> AConst x
  | _, _ -> ADyn

type astate = { syms : Ir.sym StringMap.t; abs : aval StringMap.t }

let avar st x = try StringMap.find x st.abs with Not_found -> AConst 0

let aget abs x = try StringMap.find x abs with Not_found -> AConst 0

(* join over the union of keys; a variable absent on one side reads as the
   unassigned default (AConst 0), matching the interpreter. *)
let join_abs a b =
  StringMap.merge
    (fun _ x y ->
      Some (lub (Option.value x ~default:(AConst 0))
              (Option.value y ~default:(AConst 0))))
    a b

module StringSet = Set.Make (String)

let rec assigned_vars = function
  | Assign (x, _) -> StringSet.singleton x
  | Seq ss ->
    List.fold_left
      (fun acc s -> StringSet.union acc (assigned_vars s))
      StringSet.empty ss
  | If (_, t, f) -> StringSet.union (assigned_vars t) (assigned_vars f)
  | While (_, body) -> assigned_vars body
  | Skip -> StringSet.empty

(* Staged evaluation: fold when the abstract store proves constancy. *)
let rec eval_s bld (e : exp) (st : astate) : Ir.sym * aval =
  let binop op fold a b =
    let sa, aa = eval_s bld a st and sb, ab = eval_s bld b st in
    match aa, ab with
    | AConst x, AConst y ->
      let v = fold x y in
      (Builder.int bld v, AConst v)
    | _ -> (Builder.emit bld op [| sa; sb |] Ir.Tint, ADyn)
  in
  match e with
  | Const c -> (Builder.int bld c, AConst c)
  | Var x -> (
    match StringMap.find_opt x st.syms with
    | Some s -> (s, avar st x)
    | None -> (Builder.int bld 0, AConst 0))
  | Plus (a, b) -> binop (Ir.Iop Vm.Types.Add) (fun x y -> w32 (x + y)) a b
  | Minus (a, b) -> binop (Ir.Iop Vm.Types.Sub) (fun x y -> w32 (x - y)) a b
  | Times (a, b) -> binop (Ir.Iop Vm.Types.Mul) (fun x y -> w32 (x * y)) a b
  | Div (a, b) -> binop (Ir.Iop Vm.Types.Div) (fun x y -> w32 (x / y)) a b
  | Lt (a, b) -> binop (Ir.Icmp Vm.Types.Lt) (fun x y -> if x < y then 1 else 0) a b
  | Eq (a, b) -> binop (Ir.Icmp Vm.Types.Eq) (fun x y -> if x = y then 1 else 0) a b

(* Purely abstract execution, used to find the loop fixpoint (Sec. 2.2:
   "iterate until the abstract store at loop entry has converged"). *)
let rec exec_a (s : stm) (abs : aval StringMap.t) : aval StringMap.t =
  match s with
  | Assign (x, e) -> StringMap.add x (abs_eval e abs) abs
  | Seq ss -> List.fold_left (fun a s -> exec_a s a) abs ss
  | If (_, t, f) -> join_abs (exec_a t abs) (exec_a f abs)
  | While (_, body) ->
    let rec fix a =
      let a' = join_abs a (exec_a body a) in
      if StringMap.equal ( = ) a a' then a else fix a'
    in
    fix abs
  | Skip -> abs

and abs_eval (e : exp) abs : aval =
  match e with
  | Const c -> AConst c
  | Var x -> (try StringMap.find x abs with Not_found -> AConst 0)
  | Plus (a, b) -> abs_binop (fun x y -> w32 (x + y)) a b abs
  | Minus (a, b) -> abs_binop (fun x y -> w32 (x - y)) a b abs
  | Times (a, b) -> abs_binop (fun x y -> w32 (x * y)) a b abs
  | Div (a, b) -> (
    match abs_eval a abs, abs_eval b abs with
    | AConst x, AConst y when y <> 0 -> AConst (w32 (x / y))
    | _ -> ADyn)
  | Lt (a, b) -> abs_binop (fun x y -> if x < y then 1 else 0) a b abs
  | Eq (a, b) -> abs_binop (fun x y -> if x = y then 1 else 0) a b abs

and abs_binop f a b abs =
  match abs_eval a abs, abs_eval b abs with
  | AConst x, AConst y -> AConst (f x y)
  | _ -> ADyn

let rec exec_s bld (s : stm) (st : astate) : astate =
  match s with
  | Assign (x, e) ->
    let sym, a = eval_s bld e st in
    { syms = StringMap.add x sym st.syms; abs = StringMap.add x a st.abs }
  | Seq ss -> List.fold_left (fun st s -> exec_s bld s st) st ss
  | Skip -> st
  | If (c, t, f) -> (
    let csym, ca = eval_s bld c st in
    match ca with
    | AConst v -> exec_s bld (if v <> 0 then t else f) st
    | ADyn ->
      let bt = Builder.new_block bld and bf = Builder.new_block bld in
      Builder.br bld csym (bt, [||]) (bf, [||]);
      (* variables live after the if: anything bound before it, or assigned
         on either branch (unassigned reads default to 0) *)
      let vars =
        StringSet.union
          (StringSet.of_list (List.map fst (StringMap.bindings st.syms)))
          (StringSet.union (assigned_vars t) (assigned_vars f))
        |> StringSet.elements
      in
      let sym_of stx x =
        match StringMap.find_opt x stx.syms with
        | Some s -> s
        | None -> Builder.int bld 0
      in
      let join = Builder.new_block bld in
      Builder.switch_to bld bt;
      let st_t = exec_s bld t st in
      Builder.jump bld join
        (Array.of_list (List.map (sym_of st_t) vars));
      Builder.switch_to bld bf;
      let st_f = exec_s bld f st in
      Builder.jump bld join
        (Array.of_list (List.map (sym_of st_f) vars));
      let params =
        List.map (fun _ -> Ir.add_block_param (Builder.graph bld) join Ir.Tint) vars
      in
      Builder.switch_to bld join;
      let syms =
        List.fold_left2
          (fun m x p -> StringMap.add x p m)
          st.syms vars params
      in
      let abs =
        List.fold_left
          (fun m x -> StringMap.add x (lub (avar st_t x) (avar st_f x)) m)
          st.abs vars
      in
      { syms; abs })
  | While (c, body) ->
    (* While the condition is a compile-time constant the loop unrolls at
       staging time (classic partial evaluation); fuel bounds runaway static
       loops and falls back to residual code. *)
    let rec unroll st fuel =
      match abs_eval c st.abs with
      | AConst 0 -> st
      | AConst _ when fuel > 0 -> unroll (exec_s bld body st) (fuel - 1)
      | _ -> emit_loop st
    and emit_loop st =
      (* abstract fixpoint: which vars stay constant through the loop? *)
      let abs_fix =
        let rec fix a =
          let a' = join_abs a (exec_a body a) in
          if StringMap.equal ( = ) a a' then a else fix a'
        in
        fix st.abs
      in
      let g = Builder.graph bld in
      let vars =
        StringSet.union
          (StringSet.of_list (List.map fst (StringMap.bindings st.syms)))
          (assigned_vars body)
        |> StringSet.elements
      in
      let dyn_vars = List.filter (fun x -> aget abs_fix x = ADyn) vars in
      let sym_of stx x =
        match StringMap.find_opt x stx.syms with
        | Some s -> s
        | None -> Builder.int bld 0
      in
      let head = Builder.new_block bld in
      Builder.jump bld head
        (Array.of_list (List.map (sym_of st) dyn_vars));
      let params = List.map (fun _ -> Ir.add_block_param g head Ir.Tint) dyn_vars in
      Builder.switch_to bld head;
      let st_head =
        {
          syms =
            List.fold_left2
              (fun m x p -> StringMap.add x p m)
              st.syms dyn_vars params;
          abs = abs_fix;
        }
      in
      let csym, _ = eval_s bld c st_head in
      let bbody = Builder.new_block bld and bexit = Builder.new_block bld in
      Builder.br bld csym (bbody, [||]) (bexit, [||]);
      Builder.switch_to bld bbody;
      let st_body = exec_s bld body st_head in
      Builder.jump bld head
        (Array.of_list (List.map (sym_of st_body) dyn_vars));
      Builder.switch_to bld bexit;
      st_head
    in
    unroll st 10_000

(* Stage [prog] with respect to input variables [inputs] (dynamic function
   parameters); returns a graph computing the final value of [result]. *)
let stage ?(name = "toy") ~inputs ~result prog =
  let bld = Builder.create ~name ~nparams:(List.length inputs) () in
  let st =
    List.fold_left
      (fun (st, i) x ->
        ( {
            syms = StringMap.add x (Builder.param bld i Ir.Tint) st.syms;
            abs = StringMap.add x ADyn st.abs;
          },
          i + 1 ))
      ({ syms = StringMap.empty; abs = StringMap.empty }, 0)
      inputs
    |> fst
  in
  let st' = exec_s bld prog st in
  let rsym, _ =
    eval_s bld (Var result) st'
  in
  Builder.ret bld rsym;
  let g = Builder.graph bld in
  Ir.dead_code_elim g;
  g

(* Interpreter + staging = compiler: produce a runnable function. *)
let compile rt ?name ~inputs ~result prog : int list -> int =
  let g = stage ?name ~inputs ~result prog in
  let fn = Closure_backend.compile ~hooks:(Closure_backend.default_hooks rt) g in
  fun args ->
    let vs = Array.of_list (List.map (fun i -> Vm.Types.Int i) args) in
    Vm.Value.to_int (fn vs)

let rec pp_exp ppf = function
  | Const c -> Format.fprintf ppf "%d" c
  | Var x -> Format.fprintf ppf "%s" x
  | Plus (a, b) -> Format.fprintf ppf "(%a + %a)" pp_exp a pp_exp b
  | Minus (a, b) -> Format.fprintf ppf "(%a - %a)" pp_exp a pp_exp b
  | Times (a, b) -> Format.fprintf ppf "(%a * %a)" pp_exp a pp_exp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_exp a pp_exp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp_exp a pp_exp b
  | Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp_exp a pp_exp b

let rec pp_stm ppf = function
  | Assign (x, e) -> Format.fprintf ppf "%s = %a" x pp_exp e
  | Seq ss ->
    Format.fprintf ppf "{ %a }"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_stm)
      ss
  | If (c, t, f) ->
    Format.fprintf ppf "if (%a) %a else %a" pp_exp c pp_stm t pp_stm f
  | While (c, b) -> Format.fprintf ppf "while (%a) %a" pp_exp c pp_stm b
  | Skip -> Format.fprintf ppf "skip"

let stm_to_string s = Format.asprintf "%a" pp_stm s

(* Reference semantics for tests: run the interpreter on the same inputs. *)
let run_interp ~inputs ~result prog args =
  let st =
    List.fold_left2
      (fun st x v -> StringMap.add x v st)
      StringMap.empty inputs args
  in
  let st' = exec prog st in
  try StringMap.find result st' with Not_found -> 0
