lib/lms/js_backend.ml: Array Buffer Closure_backend Float Format Hashtbl Ir List Pretty Printf String Vm
