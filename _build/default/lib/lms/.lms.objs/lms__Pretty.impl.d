lib/lms/pretty.ml: Array Format Ir List Printf String Vm
