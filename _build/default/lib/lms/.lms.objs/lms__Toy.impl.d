lib/lms/toy.ml: Array Builder Closure_backend Format Ir List Map Option Set String Vm
