lib/lms/closure_backend.ml: Array Atomic Fun Hashtbl Ir List Printf Vm
