lib/lms/builder.ml: Hashtbl Ir Vm
