lib/lms/ir.ml: Array Buffer Hashtbl List Printf Vm
