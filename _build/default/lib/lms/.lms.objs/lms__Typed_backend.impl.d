lib/lms/typed_backend.ml: Array Atomic Closure_backend Fun Hashtbl Ir List Printf Vm
