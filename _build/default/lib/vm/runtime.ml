(* Runtime state: the heap (OCaml objects double as the VM heap, as the JVM
   heap does in the paper's Fig. 6 [Runtime] interface), globals, output
   capture, and the registry of compiled function bodies. *)

open Types

let create () =
  {
    classes = Hashtbl.create 64;
    next_oid = 0;
    next_cid = 0;
    next_mid = 0;
    globals = Array.make 16 Null;
    next_global = 0;
    out = None;
    compiled = Hashtbl.create 16;
    next_compiled = 0;
    compile_hook = None;
    interp_steps = 0;
  }

let alloc rt cls =
  let o = { oid = rt.next_oid; ocls = cls; ofields = Array.make (Array.length cls.cfields) Null } in
  rt.next_oid <- rt.next_oid + 1;
  o

let get_field o (f : field) = o.ofields.(f.fidx)

let set_field o (f : field) v = o.ofields.(f.fidx) <- v

let ensure_global rt i =
  let n = Array.length rt.globals in
  if i >= n then begin
    let g = Array.make (max (i + 1) (2 * n)) Null in
    Array.blit rt.globals 0 g 0 n;
    rt.globals <- g
  end

let get_global rt i =
  ensure_global rt i;
  rt.globals.(i)

let set_global rt i v =
  ensure_global rt i;
  rt.globals.(i) <- v

let alloc_global rt =
  let g = rt.next_global in
  rt.next_global <- g + 1;
  ensure_global rt g;
  g

let output rt s =
  match rt.out with
  | Some b -> Buffer.add_string b s
  | None -> print_string s

(* Redirect printed output into a buffer for the duration of [f]. *)
let capture_output rt f =
  let saved = rt.out in
  let b = Buffer.create 256 in
  rt.out <- Some b;
  Fun.protect ~finally:(fun () -> rt.out <- saved) (fun () ->
      let v = f () in
      (Buffer.contents b, v))

(* Compiled functions are exposed to bytecode as objects of the builtin class
   CompiledFn, whose single field holds an index into [rt.compiled]. *)
let register_compiled rt fn =
  let id = rt.next_compiled in
  rt.next_compiled <- id + 1;
  Hashtbl.replace rt.compiled id fn;
  id

let compiled_body rt id =
  match Hashtbl.find_opt rt.compiled id with
  | Some f -> f
  | None -> vm_error "no compiled function with id %d" id
