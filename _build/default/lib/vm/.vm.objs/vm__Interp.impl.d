lib/vm/interp.ml: Array Classfile Runtime Types Value
