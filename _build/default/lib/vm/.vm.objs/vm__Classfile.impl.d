lib/vm/classfile.ml: Array Hashtbl List Option String Types
