lib/vm/runtime.ml: Array Buffer Fun Hashtbl Types
