lib/vm/verifier.ml: Array Format Hashtbl List Printexc Printf Queue Types
