lib/vm/natives.ml: Array Char Classfile Float Format Interp List Runtime String Types Unix Value
