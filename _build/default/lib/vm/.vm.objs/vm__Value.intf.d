lib/vm/value.mli: Format Types
