lib/vm/verifier.mli: Types
