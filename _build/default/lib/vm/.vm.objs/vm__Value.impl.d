lib/vm/value.ml: Array Format Int32 String Types
