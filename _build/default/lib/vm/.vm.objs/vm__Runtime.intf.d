lib/vm/runtime.mli: Types
