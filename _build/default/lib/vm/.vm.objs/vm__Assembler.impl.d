lib/vm/assembler.ml: Array Classfile List Queue Types
