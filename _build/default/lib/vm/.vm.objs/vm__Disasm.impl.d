lib/vm/disasm.ml: Array Format List String Types Value
