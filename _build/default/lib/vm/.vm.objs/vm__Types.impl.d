lib/vm/types.ml: Buffer Format Hashtbl
