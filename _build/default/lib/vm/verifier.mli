(** Bytecode verifier: checks the structural properties the interpreter and
    the Lancet compiler rely on — no stack underflow/overflow, consistent
    stack depth at joins, in-range locals and branch targets, no
    fall-through off the end. *)

open Types

type error = { v_pc : int; v_msg : string }

exception Verify_error of meth * error

val verify : meth -> unit
(** @raise Verify_error on the first violation; natives verify trivially. *)

val verify_class : cls -> unit

val verify_all : runtime -> int
(** Verify every bytecode method; returns how many were checked. *)
