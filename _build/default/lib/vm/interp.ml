(* The bytecode interpreter.  Mirrors the Graal-derived interpreter of the
   paper's Fig. 6: linked [frame] records (control, environment and
   continuation of a CESK machine), an operand stack mapped onto each frame,
   and a [loop] that executes instructions of the current frame and performs
   control transfers by swapping the current frame. *)

open Types

type frame = {
  fmeth : meth;
  mutable pc : int;
  locals : value array;
  ostack : value array;
  mutable sp : int; (* next free stack slot *)
  mutable parent : frame option;
}

let make_frame ?parent meth args =
  let locals = Array.make (max meth.mnlocals (Array.length args)) Null in
  Array.blit args 0 locals 0 (Array.length args);
  {
    fmeth = meth;
    pc = 0;
    locals;
    ostack = Array.make (max meth.mmaxstack 4) Null;
    sp = 0;
    parent;
  }

let push f v =
  f.ostack.(f.sp) <- v;
  f.sp <- f.sp + 1

let pop f =
  f.sp <- f.sp - 1;
  f.ostack.(f.sp)

let pop_int f = Value.to_int (pop f)
let pop_float f = Value.to_float (pop f)

let pop_args f n =
  let a = Array.make n Null in
  for i = n - 1 downto 0 do
    a.(i) <- pop f
  done;
  a

exception Return_from_root of value

(* Run the frame chain rooted (via parents) at [frame] to completion and
   return the value produced by the outermost frame of the chain.  This is
   the single entry point used both for fresh calls and for resuming
   reconstructed continuations after deoptimization. *)
let resume rt frame =
  let current = ref (Some frame) in
  let result = ref Null in
  let return_value v =
    match !current with
    | None -> assert false
    | Some f -> (
      match f.parent with
      | None ->
        result := v;
        current := None
      | Some p ->
        push p v;
        current := Some p)
  in
  let rec call_method meth args =
    match meth.mcode with
    | Native (_, fn) ->
      let v = fn rt args in
      (match !current with
      | Some f -> push f v
      | None -> assert false)
    | Bytecode _ ->
      let f = make_frame ?parent:!current meth args in
      current := Some f
  and step f =
    let code = match f.fmeth.mcode with
      | Bytecode c -> c
      | Native _ -> assert false
    in
    let i = code.(f.pc) in
    f.pc <- f.pc + 1;
    rt.interp_steps <- rt.interp_steps + 1;
    match i with
    | Const v -> push f v
    | Load n -> push f f.locals.(n)
    | Store n -> f.locals.(n) <- pop f
    | Dup ->
      let v = f.ostack.(f.sp - 1) in
      push f v
    | Pop -> ignore (pop f)
    | Swap ->
      let a = pop f and b = pop f in
      push f a;
      push f b
    | Iop op ->
      let y = pop_int f in
      let x = pop_int f in
      push f (Int (Value.iop_apply op x y))
    | Ineg -> push f (Int (Value.wrap32 (-pop_int f)))
    | Fop op ->
      let y = pop_float f in
      let x = pop_float f in
      push f (Float (Value.fop_apply op x y))
    | Fneg -> push f (Float (-.pop_float f))
    | I2f -> push f (Float (float_of_int (pop_int f)))
    | F2i -> push f (Int (Value.wrap32 (int_of_float (pop_float f))))
    | If (c, t) ->
      let y = pop_int f in
      let x = pop_int f in
      if Value.cond_apply c x y then f.pc <- t
    | Iff (c, t) ->
      let y = pop_float f in
      let x = pop_float f in
      if Value.fcond_apply c x y then f.pc <- t
    | Ifz (c, t) ->
      let x = pop_int f in
      if Value.cond_apply c x 0 then f.pc <- t
    | Ifnull (when_null, t) ->
      let v = pop f in
      let is_null = match v with Null -> true | _ -> false in
      if is_null = when_null then f.pc <- t
    | Goto t -> f.pc <- t
    | New cls -> push f (Obj (Runtime.alloc rt cls))
    | Getfield fd ->
      let o = Value.to_obj (pop f) in
      push f o.ofields.(fd.fidx)
    | Putfield fd ->
      let v = pop f in
      let o = Value.to_obj (pop f) in
      o.ofields.(fd.fidx) <- v
    | Getglobal g -> push f (Runtime.get_global rt g)
    | Putglobal g -> Runtime.set_global rt g (pop f)
    | Newarr ->
      let n = pop_int f in
      push f (Arr (Array.make n Null))
    | Newfarr ->
      let n = pop_int f in
      push f (Farr (Array.make n 0.0))
    | Aload ->
      let i = pop_int f in
      let a = Value.to_arr (pop f) in
      push f a.(i)
    | Astore ->
      let v = pop f in
      let i = pop_int f in
      let a = Value.to_arr (pop f) in
      a.(i) <- v
    | Faload ->
      let i = pop_int f in
      let a = Value.to_farr (pop f) in
      push f (Float a.(i))
    | Fastore ->
      let v = pop_float f in
      let i = pop_int f in
      let a = Value.to_farr (pop f) in
      a.(i) <- v
    | Alen ->
      (match pop f with
      | Arr a -> push f (Int (Array.length a))
      | Farr a -> push f (Int (Array.length a))
      | _ -> vm_error "alen: not an array")
    | Invoke (Static m) -> call_method m (pop_args f m.mnargs)
    | Invoke (Special m) -> call_method m (pop_args f (m.mnargs + 1))
    | Invoke (Virtual (name, argc, _)) ->
      let args = pop_args f (argc + 1) in
      let recv =
        match args.(0) with
        | Obj o -> o
        | Null -> vm_error "null receiver for %s" name
        | _ -> vm_error "invokevirtual %s on non-object" name
      in
      call_method (Classfile.resolve_virtual recv.ocls name) args
    | Ret -> return_value Null
    | Retv -> return_value (pop f)
    | Trap msg -> vm_error "trap: %s" msg
  in
  while !current <> None do
    match !current with Some f -> step f | None -> ()
  done;
  !result

let call rt meth (args : value array) =
  match meth.mcode with
  | Native (_, fn) -> fn rt args
  | Bytecode _ -> resume rt (make_frame meth args)

(* Invoke a closure-like object: dispatches its [apply] method. *)
let call_closure rt v (args : value array) =
  match v with
  | Obj o ->
    let m = Classfile.resolve_virtual o.ocls "apply" in
    call rt m (Array.append [| v |] args)
  | _ -> vm_error "not a callable object"
