(* Operations on runtime values. *)

open Types

let to_int = function
  | Int i -> i
  | v -> vm_error "expected int, got %s" (match v with
      | Null -> "null" | Float _ -> "float" | Str _ -> "string"
      | Obj _ -> "object" | Arr _ -> "array" | Farr _ -> "farray"
      | Int _ -> assert false)

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> vm_error "expected float"

let to_str = function
  | Str s -> s
  | _ -> vm_error "expected string"

let to_obj = function
  | Obj o -> o
  | _ -> vm_error "expected object"

let to_arr = function
  | Arr a -> a
  | _ -> vm_error "expected array"

let to_farr = function
  | Farr a -> a
  | _ -> vm_error "expected float array"

let of_bool b = Int (if b then 1 else 0)

let truthy = function
  | Int 0 | Null -> false
  | Int _ -> true
  | v -> vm_error "expected boolean, got %s"
           (match v with Float _ -> "float" | Str _ -> "string" | _ -> "value")

(* Structural equality used by tests and by the [streq]/[veq] natives:
   objects compare by identity, everything else structurally. *)
let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Obj x, Obj y -> x.oid = y.oid
  | Arr x, Arr y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (equal v y.(i)) then ok := false) x;
        !ok)
  | Farr x, Farr y -> x = y
  | (Null | Int _ | Float _ | Str _ | Obj _ | Arr _ | Farr _), _ -> false

let rec pp ppf v =
  match v with
  | Null -> Format.fprintf ppf "null"
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Obj o -> Format.fprintf ppf "%s#%d" o.ocls.cname o.oid
  | Arr a ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      (Array.to_list a)
  | Farr a ->
    Format.fprintf ppf "[f|%a|]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf f -> Format.fprintf ppf "%g" f))
      (Array.to_list a)

let to_string v =
  match v with
  | Str s -> s (* no quotes when stringifying for output *)
  | _ -> Format.asprintf "%a" pp v

(* 32-bit wrap-around semantics for int arithmetic, matching the JVM model
   the paper relies on for SafeInt overflow detection. *)
let wrap32 i = Int32.to_int (Int32.of_int i)

let iop_apply op x y =
  match op with
  | Add -> wrap32 (x + y)
  | Sub -> wrap32 (x - y)
  | Mul -> wrap32 (x * y)
  | Div -> if y = 0 then vm_error "division by zero" else wrap32 (x / y)
  | Rem -> if y = 0 then vm_error "remainder by zero" else wrap32 (x mod y)
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> wrap32 (x lsl (y land 31))
  | Shr -> x asr (y land 31)

let fop_apply op x y =
  match op with
  | FAdd -> x +. y
  | FSub -> x -. y
  | FMul -> x *. y
  | FDiv -> x /. y

let cond_apply c x y =
  match c with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let fcond_apply c (x : float) (y : float) =
  match c with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
