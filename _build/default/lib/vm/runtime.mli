(** Runtime state: the heap (OCaml objects double as the VM heap, as the JVM
    heap does in the paper's Fig. 6 Runtime interface), globals, output
    capture, and the registry of compiled function bodies. *)

open Types

val create : unit -> runtime
(** A fresh runtime with no classes; see {!Natives.boot} for one with the
    builtin classes installed. *)

val alloc : runtime -> cls -> obj
(** Allocate an instance with all fields [Null]. *)

val get_field : obj -> field -> value
val set_field : obj -> field -> value -> unit

val get_global : runtime -> int -> value
val set_global : runtime -> int -> value -> unit

val alloc_global : runtime -> int
(** Reserve a fresh global slot (used by the Mini code generator). *)

val output : runtime -> string -> unit
(** Print to stdout, or into the capture buffer when one is active. *)

val capture_output : runtime -> (unit -> 'a) -> string * 'a
(** Redirect printed output into a buffer for the duration of the call. *)

val register_compiled : runtime -> (value array -> value) -> int
(** Register an OCaml function as a CompiledFn body; returns its id. *)

val compiled_body : runtime -> int -> value array -> value
