(** Operations on runtime values.  Integer arithmetic wraps to 32 bits
    (the JVM-like semantics SafeInt's overflow detection relies on). *)

open Types

val to_int : value -> int
val to_float : value -> float
(** [to_float] also accepts [Int] (implicit widening). *)

val to_str : value -> string
val to_obj : value -> obj
val to_arr : value -> value array
val to_farr : value -> float array

val of_bool : bool -> value
(** Booleans are [Int 0]/[Int 1]. *)

val truthy : value -> bool

val equal : value -> value -> bool
(** Structural on primitives and arrays; identity on objects. *)

val pp : Format.formatter -> value -> unit
val to_string : value -> string
(** Like [pp] but strings render without quotes (used by print natives). *)

val wrap32 : int -> int
(** Truncate to signed 32-bit, the semantics of all VM integer ops. *)

val iop_apply : iop -> int -> int -> int
(** @raise Types.Vm_error on division/remainder by zero. *)

val fop_apply : fop -> float -> float -> float
val cond_apply : cond -> int -> int -> bool
val fcond_apply : cond -> float -> float -> bool
