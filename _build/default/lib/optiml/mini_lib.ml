(* OptiML as a pure Mini library (the paper's "scaled down version of OptiML
   as a pure Scala library", Sec. 3.4) plus the three evaluation apps.
   The library contains no staging annotations; accelerator macros are added
   separately ([Macros]) and map the same entry points onto Delite ops. *)

let library =
  {|
class DenseVector {
  val data: farray
  def init(data: farray): unit = { this.data = data }
  def get(i: int): float = this.data[i]
  def set(i: int, v: float): unit = this.data[i] = v
  def len(): int = this.data.length
  def plus_eq(o: DenseVector): unit = {
    val d = this.data;
    val od = o.data;
    for (j <- 0 until d.length) { d[j] = d[j] + od[j] }
  }
  def scale_eq(s: float): unit = {
    val d = this.data;
    for (j <- 0 until d.length) { d[j] = d[j] * s }
  }
}
def new_vector(n: int): DenseVector = new DenseVector(new farray(n))

class DenseMatrix {
  val data: farray
  val rows: int
  val cols: int
  def init(data: farray, rows: int, cols: int): unit = {
    this.data = data; this.rows = rows; this.cols = cols
  }
  def get(i: int, j: int): float = this.data[i * this.cols + j]
  def set(i: int, j: int, v: float): unit = this.data[i * this.cols + j] = v
  def row(i: int): DenseVector = {
    val out = new farray(this.cols);
    val c = this.cols;
    val d = this.data;
    for (j <- 0 until c) { out[j] = d[i * c + j] };
    new DenseVector(out)
  }
}
def new_matrix(rows: int, cols: int): DenseMatrix =
  new DenseMatrix(new farray(rows * cols), rows, cols)

// The OptiML companion (paper Fig. 8).  Instance methods so accelerator
// macros can intercept them by class+name.
class OptiML {
  def sum(start: int, stop: int, size: int, block: (int) -> DenseVector): DenseVector = {
    val acc = new_vector(size);
    var i = start;
    while (i < stop) { acc.plus_eq(block(i)); i = i + 1 };
    acc
  }
  def sum_scalar(start: int, stop: int, f: (int) -> float): float = {
    var acc = 0.0;
    var i = start;
    while (i < stop) { acc = acc + f(i); i = i + 1 };
    acc
  }
  def sum_rows(m: DenseMatrix): DenseVector = {
    val self = this;
    self.sum(0, m.rows, m.cols, fun (i: int) => m.row(i))
  }
  // per-group row sums: result is a groups x size matrix
  def group_sum(start: int, stop: int, groups: int, size: int,
                key: (int) -> int, block: (int) -> DenseVector): DenseMatrix = {
    val out = new_matrix(groups, size);
    var i = start;
    while (i < stop) {
      val g = key(i);
      val v = block(i);
      for (j <- 0 until size) { out.set(g, j, out.get(g, j) + v.get(j)) };
      i = i + 1
    };
    out
  }
  def group_count(start: int, stop: int, groups: int, key: (int) -> int): farray = {
    val out = new farray(groups);
    var i = start;
    while (i < stop) {
      val g = key(i);
      out[g] = out[g] + 1.0;
      i = i + 1
    };
    out
  }
}
|}

let kmeans_app =
  {|
def closest(m: DenseMatrix, c: DenseMatrix, i: int): int = {
  var best = 0;
  var bestd = 0.0;
  var first = true;
  for (g <- 0 until c.rows) {
    var d = 0.0;
    for (j <- 0 until m.cols) {
      val diff = m.get(i, j) - c.get(g, j);
      d = d + diff * diff
    };
    if (first || d < bestd) { bestd = d; best = g; first = false }
  };
  best
}

def kmeans(m: DenseMatrix, k: int, iters: int): DenseMatrix = {
  val ml = new OptiML();
  val cols = m.cols;
  var centroids = new_matrix(k, cols);
  for (g <- 0 until k) {
    for (j <- 0 until cols) { centroids.set(g, j, m.get(g, j)) }
  };
  var it = 0;
  while (it < iters) {
    val c = centroids;
    val key = fun (i: int) => closest(m, c, i);
    val sums = ml.group_sum(0, m.rows, k, cols, key, fun (i: int) => m.row(i));
    val counts = ml.group_count(0, m.rows, k, key);
    val next = new_matrix(k, cols);
    for (g <- 0 until k) {
      val n = counts[g];
      for (j <- 0 until cols) {
        if (n > 0.0) { next.set(g, j, sums.get(g, j) / n) }
        else { next.set(g, j, c.get(g, j)) }
      }
    };
    centroids = next;
    it = it + 1
  };
  centroids
}

// entry point: build the matrix from a flat farray, run, return flat result
def run_kmeans(data: farray, rows: int, cols: int, k: int, iters: int): farray = {
  val m = new DenseMatrix(data, rows, cols);
  val c = kmeans(m, k, iters);
  c.data
}
def make_kmeans(data: farray, rows: int, cols: int, k: int, iters: int): () -> farray =
  fun () => run_kmeans(data, rows, cols, k, iters)
|}

let logreg_app =
  {|
def logreg(x: DenseMatrix, y: farray, iters: int, alpha: float): farray = {
  val ml = new OptiML();
  val cols = x.cols;
  val w = new farray(cols);
  var it = 0;
  while (it < iters) {
    val wv = w;
    val grad = ml.sum(0, x.rows, cols, fun (i: int) => {
      var dot = 0.0;
      for (j <- 0 until cols) { dot = dot + wv[j] * x.get(i, j) };
      val s = 1.0 / (1.0 + Math.exp(0.0 - dot));
      val v = new_vector(cols);
      for (j <- 0 until cols) { v.set(j, x.get(i, j) * (y[i] - s)) };
      v
    });
    for (j <- 0 until cols) { w[j] = w[j] + alpha * grad.get(j) };
    it = it + 1
  };
  w
}

def run_logreg(data: farray, rows: int, cols: int, y: farray, iters: int, alpha: float): farray = {
  val x = new DenseMatrix(data, rows, cols);
  logreg(x, y, iters, alpha)
}
def make_logreg(data: farray, rows: int, cols: int, y: farray, iters: int, alpha: float): () -> farray =
  fun () => run_logreg(data, rows, cols, y, iters, alpha)
|}

let namescore_app =
  {|
// the paper's totalScore: scores.zipWithIndex.map{ (a,i) => (i*score).toLong }.reduce(_+_)
// The library version allocates one Pair object per element plus an
// intermediate array — exactly what the Delite macros eliminate (AoS->SoA +
// map/reduce fusion).
class Pair {
  val idx: int
  val score: float
  def init(idx: int, score: float): unit = { this.idx = idx; this.score = score }
}

class ArrayOps {
  def score(name: string): float = {
    var s = 0.0;
    for (c <- 0 until Str.len(name)) { s = s + i2f(Str.char_at(name, c) - 64) };
    s
  }
  def zip_with_index(names: array[string]): array[Pair] = {
    val self = this;
    val out = new array[Pair](names.length);
    for (i <- 0 until names.length) { out[i] = new Pair(i, self.score(names[i])) };
    out
  }
  def map_scores(ps: array[Pair]): farray = {
    val out = new farray(ps.length);
    for (i <- 0 until ps.length) {
      val p = ps[i];
      out[i] = i2f(p.idx + 1) * p.score
    };
    out
  }
  def reduce_sum(a: farray): float = {
    var acc = 0.0;
    for (i <- 0 until a.length) { acc = acc + a[i] };
    acc
  }
  def total_score(names: array[string]): float = {
    val self = this;
    self.reduce_sum(self.map_scores(self.zip_with_index(names)))
  }
}

def run_namescore(names: array[string]): float = {
  val ops = new ArrayOps();
  ops.total_score(names)
}
def make_namescore(names: array[string]): () -> float = fun () => run_namescore(names)
|}

let all = library ^ kmeans_app ^ logreg_app ^ namescore_app
