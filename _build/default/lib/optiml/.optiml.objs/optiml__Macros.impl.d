lib/optiml/macros.ml: Array Bridge Lancet Lms Vm
