lib/optiml/bridge.ml: Array Delite Hashtbl Lancet Lms Printf Vm
