lib/optiml/harness.ml: Array Bridge Delite Lancet Macros Mini Mini_lib Reference Unix Vm
