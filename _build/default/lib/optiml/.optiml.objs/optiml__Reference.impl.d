lib/optiml/reference.ml: Array Char Delite Exec Random Rows String
