lib/optiml/mini_lib.ml:
