lib/optiml/harness.mli: Delite
