(* Table 2 harness.  Each configuration runs the same application and
   produces (checksum, reported seconds).  On the 1-core container, parallel
   devices are [Sim n]: the work runs for real, per-chunk times are measured,
   and the reported time is  total_wall - ops_wall + ops_modeled  (serial
   glue measured as-is, parallel ops at their modeled makespan). *)

open Vm.Types
module Exec = Delite.Exec

type app = Kmeans | Logreg | Namescore

type config =
  | Library (* Mini library, Lancet-compiled, no macros: "Scala library" *)
  | Lancet_delite of Exec.device (* macros + Delite: "Lancet-Delite" *)
  | Delite_standalone of Exec.device (* direct Delite: "Delite" *)
  | Manual_opt of Exec.device (* logreg only: "Delite (manual opt)" *)
  | Cpp of Exec.device (* native fused kernels: "C++" *)

let config_name = function
  | Library -> "library (Mini, Lancet-compiled)"
  | Lancet_delite d -> "Lancet-Delite @ " ^ Exec.device_name d
  | Delite_standalone d -> "Delite @ " ^ Exec.device_name d
  | Manual_opt d -> "Delite manual-opt @ " ^ Exec.device_name d
  | Cpp d -> "native @ " ^ Exec.device_name d

(* problem sizes (kept small enough for the 1-core container; override for
   bigger runs) *)
type sizes = {
  km_rows : int;
  km_cols : int;
  km_k : int;
  km_iters : int;
  lr_rows : int;
  lr_cols : int;
  lr_iters : int;
  ns_n : int;
}

let default_sizes =
  {
    km_rows = 1200;
    km_cols = 8;
    km_k = 4;
    km_iters = 3;
    lr_rows = 1500;
    lr_cols = 10;
    lr_iters = 3;
    ns_n = 20_000;
  }

let checksum (a : float array) = Array.fold_left ( +. ) 0.0 a

let timed_with_model f =
  Exec.reset_stats ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let reported = wall -. !Exec.ops_wall +. !Exec.ops_modeled in
  (r, reported)

(* Mini-side runs: load the program, fetch the app thunk, Lancet-compile it
   (with or without accelerator macros) and execute. *)
let run_mini ~(macros : bool) ~(dev : Exec.device) (app : app) (sz : sizes) :
    float * float =
  let rt = Lancet.Api.boot () in
  if macros then Macros.install rt;
  Bridge.device := dev;
  let p = Mini.Front.load rt Mini_lib.all in
  let thunk =
    match app with
    | Kmeans ->
      let data =
        Reference.Data.kmeans_data ~seed:11 ~rows:sz.km_rows ~cols:sz.km_cols
          ~k:sz.km_k
      in
      Mini.Front.call p "make_kmeans"
        [| Farr data; Int sz.km_rows; Int sz.km_cols; Int sz.km_k; Int sz.km_iters |]
    | Logreg ->
      let x, y = Reference.Data.logreg_data ~seed:12 ~rows:sz.lr_rows ~cols:sz.lr_cols in
      Mini.Front.call p "make_logreg"
        [| Farr x; Int sz.lr_rows; Int sz.lr_cols; Farr y; Int sz.lr_iters; Float 0.05 |]
    | Namescore ->
      let names = Reference.Data.names ~seed:13 ~n:sz.ns_n in
      Mini.Front.call p "make_namescore"
        [| Arr (Array.map (fun s -> Str s) names) |]
  in
  let compiled = Lancet.Compiler.compile_value rt thunk in
  timed_with_model (fun () ->
      match Vm.Interp.call_closure rt compiled [||] with
      | Farr out -> checksum out
      | Float f -> f
      | v -> vm_error "unexpected result %s" (Vm.Value.to_string v))

let run (app : app) (config : config) (sz : sizes) : float * float =
  match config with
  | Library -> run_mini ~macros:false ~dev:Exec.Seq app sz
  | Lancet_delite dev -> run_mini ~macros:true ~dev app sz
  | Delite_standalone dev | Manual_opt dev | Cpp dev -> (
    match app with
    | Kmeans ->
      let data =
        Reference.Data.kmeans_data ~seed:11 ~rows:sz.km_rows ~cols:sz.km_cols
          ~k:sz.km_k
      in
      timed_with_model (fun () ->
          match config with
          | Delite_standalone _ ->
            let c, _ =
              Reference.Standalone.kmeans ~dev ~data ~rows:sz.km_rows
                ~cols:sz.km_cols ~k:sz.km_k ~iters:sz.km_iters
            in
            checksum c
          | _ ->
            (* native fused single pass, chunked on the device *)
            checksum
              (Reference.Native.kmeans_par ~dev ~data ~rows:sz.km_rows
                 ~cols:sz.km_cols ~k:sz.km_k ~iters:sz.km_iters))
    | Logreg ->
      let x, y = Reference.Data.logreg_data ~seed:12 ~rows:sz.lr_rows ~cols:sz.lr_cols in
      timed_with_model (fun () ->
          match config with
          | Delite_standalone _ ->
            let w, _ =
              Reference.Standalone.logreg ~dev ~data:x ~rows:sz.lr_rows
                ~cols:sz.lr_cols ~y ~iters:sz.lr_iters ~alpha:0.05
            in
            checksum w
          | Manual_opt _ ->
            let w, _ =
              Reference.Standalone.logreg_manual ~dev ~data:x ~rows:sz.lr_rows
                ~cols:sz.lr_cols ~y ~iters:sz.lr_iters ~alpha:0.05
            in
            checksum w
          | _ ->
            checksum
              (Reference.Native.logreg_par ~dev ~data:x ~rows:sz.lr_rows
                 ~cols:sz.lr_cols ~y ~iters:sz.lr_iters ~alpha:0.05))
    | Namescore ->
      let names = Reference.Data.names ~seed:13 ~n:sz.ns_n in
      timed_with_model (fun () ->
          let r, _ = Reference.Standalone.namescore ~dev names in
          r))

(* reference checksums for validation *)
let reference (app : app) (sz : sizes) : float =
  match app with
  | Kmeans ->
    let data =
      Reference.Data.kmeans_data ~seed:11 ~rows:sz.km_rows ~cols:sz.km_cols
        ~k:sz.km_k
    in
    checksum
      (Reference.Native.kmeans ~data ~rows:sz.km_rows ~cols:sz.km_cols
         ~k:sz.km_k ~iters:sz.km_iters)
  | Logreg ->
    let x, y = Reference.Data.logreg_data ~seed:12 ~rows:sz.lr_rows ~cols:sz.lr_cols in
    checksum
      (Reference.Native.logreg ~data:x ~rows:sz.lr_rows ~cols:sz.lr_cols ~y
         ~iters:sz.lr_iters ~alpha:0.05)
  | Namescore ->
    Reference.Native.namescore (Reference.Data.names ~seed:13 ~n:sz.ns_n)
