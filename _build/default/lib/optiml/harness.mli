(** Table 2 harness: runs each application (k-means, logistic regression,
    name score) in every configuration of the paper's Table 2 and reports
    (checksum, seconds).  On the 1-core container, parallel devices are
    [Exec.Sim]: kernels run for real and the reported time is
    [total_wall - ops_wall + ops_modeled]. *)

type app = Kmeans | Logreg | Namescore

type config =
  | Library  (** Mini library, Lancet-compiled, no macros — "Scala library" *)
  | Lancet_delite of Delite.Exec.device  (** accelerator macros + Delite *)
  | Delite_standalone of Delite.Exec.device  (** app written against Delite *)
  | Manual_opt of Delite.Exec.device  (** logreg only — "Delite (manual opt)" *)
  | Cpp of Delite.Exec.device  (** native fused kernels — "C++" *)

val config_name : config -> string

type sizes = {
  km_rows : int;
  km_cols : int;
  km_k : int;
  km_iters : int;
  lr_rows : int;
  lr_cols : int;
  lr_iters : int;
  ns_n : int;
}

val default_sizes : sizes

val run : app -> config -> sizes -> float * float
(** (result checksum, reported seconds). *)

val reference : app -> sizes -> float
(** The checksum every configuration must reproduce. *)
