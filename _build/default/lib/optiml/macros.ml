(* OptiML accelerator macros (paper Fig. 8 / Sec. 3.4): installed against a
   runtime, they intercept calls to the pure-library entry points during
   Lancet compilation and replace them with Delite op nodes.  The library
   itself contains no staging annotations — acceleration is added
   "after-the-fact". *)

module C = Lancet.Compiler
module Ir = Lms.Ir

(* emit a Delite op node; all arguments become runtime values *)
let delite_node ctx name (args : C.rep array) : C.macro_result =
  let args = Array.map (C.resolve_materialized ctx) args in
  C.clobber ctx;
  C.Val (C.emit ctx (Ir.Ext (Bridge.Delite_call name)) args Ir.Tany)

(* macros receive [recv; args...]; the receiver (the OptiML singleton) is
   dropped — the ops are static in spirit *)
let drop_recv args = Array.sub args 1 (Array.length args - 1)

let sum_macro ctx args = delite_node ctx "sum" (drop_recv args)
let sum_scalar_macro ctx args = delite_node ctx "sum_scalar" (drop_recv args)
let group_sum_macro ctx args = delite_node ctx "group_sum" (drop_recv args)
let group_count_macro ctx args = delite_node ctx "group_count" (drop_recv args)

(* ArrayOps.total_score(names): the retroactive accelerator macro for an
   existing library (Sec. 3.4 "Accelerating Existing Libraries").  It needs
   the library's own [score] function as a runtime closure: we synthesize
   one over ArrayOps.score and pass it to the fused kernel. *)
let total_score_macro ctx (args : C.rep array) : C.macro_result =
  let recv = args.(0) in
  let names = args.(1) in
  (* build a closure value calling ArrayOps.score on the real receiver *)
  let recv_v = C.evalM ctx recv in
  let rt = ctx.C.rt in
  let score_m =
    match recv_v with
    | Vm.Types.Obj o -> Vm.Classfile.resolve_virtual o.Vm.Types.ocls "score"
    | _ -> Lancet.Errors.compile_error "total_score: receiver not static"
  in
  let score_compiled =
    C.compile_method ~typed:true rt score_m [| C.Static_value recv_v; C.Dyn |]
  in
  let score_fn = Vm.Natives.make_compiled_fn rt score_compiled in
  delite_node ctx "total_score" [| names; C.lift_const ctx score_fn |]

let install rt =
  C.register_macro rt ~cls:"OptiML" ~name:"sum" sum_macro;
  C.register_macro rt ~cls:"OptiML" ~name:"sum_scalar" sum_scalar_macro;
  C.register_macro rt ~cls:"OptiML" ~name:"group_sum" group_sum_macro;
  C.register_macro rt ~cls:"OptiML" ~name:"group_count" group_count_macro;
  C.register_macro rt ~cls:"ArrayOps" ~name:"total_score" total_score_macro
