(* Runtime bridge between compiled bytecode and the Delite execution engine.
   Accelerator macros replace OptiML/ArrayOps calls with [Delite_call] IR
   extension nodes; this module implements those nodes: it unwraps VM values
   (DenseMatrix/DenseVector objects, closures), runs the corresponding
   parallel Delite op on the configured device, and wraps results back. *)

open Vm.Types

type Lms.Ir.ext_op += Delite_call of string

(* device used by Delite ops triggered from bytecode, set by benches *)
let device : Delite.Exec.device ref = ref Delite.Exec.Seq

(* accumulated modeled seconds spent in Delite ops (reset per measurement) *)
let op_seconds : float ref = ref 0.0
let reset_op_seconds () = op_seconds := 0.0
let note (t : Delite.Exec.timing) = op_seconds := !op_seconds +. t.modeled

(* ---- closure compilation cache ---- *)

(* Closures passed to Delite ops are Lancet-compiled once per closure class
   (receiver dynamic, so per-iteration closures reuse the same code). *)
let closure_cache : (int, value array -> value) Hashtbl.t = Hashtbl.create 16

let compiled_apply rt (clo : value) : value array -> value =
  match clo with
  | Obj o -> (
    let cls = o.ocls in
    match Hashtbl.find_opt closure_cache cls.cid with
    | Some fn -> fun args -> fn args
    | None ->
      let apply = Vm.Classfile.resolve_virtual cls "apply" in
      let fn =
        match apply.mcode with
        | Bytecode _ ->
          let spec =
            Array.init (apply.mnargs + 1) (fun _ -> Lancet.Compiler.Dyn)
          in
          Lancet.Compiler.compile_method ~typed:true rt apply spec
        | Native _ -> fun args -> Vm.Interp.call rt apply args
      in
      Hashtbl.replace closure_cache cls.cid fn;
      fn)
  | _ -> vm_error "Delite bridge: not a closure"

let call1 rt clo =
  let fn = compiled_apply rt clo in
  fun v -> fn [| clo; v |]

(* ---- VM value accessors ---- *)

let obj_field o i = o.ofields.(i)

let matrix_of rt v =
  match v with
  | Obj o when o.ocls.cname = "DenseMatrix" ->
    let data = Vm.Value.to_farr (obj_field o 0) in
    let rows = Vm.Value.to_int (obj_field o 1) in
    let cols = Vm.Value.to_int (obj_field o 2) in
    (data, rows, cols)
  | _ ->
    ignore rt;
    vm_error "expected a DenseMatrix"

let vector_data v =
  match v with
  | Obj o when o.ocls.cname = "DenseVector" -> Vm.Value.to_farr (obj_field o 0)
  | Farr a -> a
  | _ -> vm_error "expected a DenseVector"

let wrap_vector rt (a : float array) : value =
  let cls = Vm.Classfile.find_class rt "DenseVector" in
  let o = Vm.Runtime.alloc rt cls in
  o.ofields.(0) <- Farr a;
  Obj o

let wrap_matrix rt (a : float array) ~rows ~cols : value =
  let cls = Vm.Classfile.find_class rt "DenseMatrix" in
  let o = Vm.Runtime.alloc rt cls in
  o.ofields.(0) <- Farr a;
  o.ofields.(1) <- Int rows;
  o.ofields.(2) <- Int cols;
  Obj o

(* ---- op implementations ---- *)

let op_sum rt (args : value array) : value =
  (* args: start stop size block *)
  let start = Vm.Value.to_int args.(0) in
  let stop = Vm.Value.to_int args.(1) in
  let size = Vm.Value.to_int args.(2) in
  let block = call1 rt args.(3) in
  let out, t =
    Delite.Rows.sum_rows ~dev:!device ~start ~stop ~size ~block:(fun i tmp ->
        let v = block (Int i) in
        let d = vector_data v in
        Array.blit d 0 tmp 0 size)
  in
  note t;
  wrap_vector rt out

let op_sum_scalar rt (args : value array) : value =
  let start = Vm.Value.to_int args.(0) in
  let stop = Vm.Value.to_int args.(1) in
  let f = call1 rt args.(2) in
  let out, t =
    Delite.Rows.sum_scalar ~dev:!device ~start ~stop ~f:(fun i ->
        Vm.Value.to_float (f (Int i)))
  in
  note t;
  Float out

let op_group_sum rt (args : value array) : value =
  (* args: start stop groups size key block *)
  let start = Vm.Value.to_int args.(0) in
  let stop = Vm.Value.to_int args.(1) in
  let groups = Vm.Value.to_int args.(2) in
  let size = Vm.Value.to_int args.(3) in
  let key = call1 rt args.(4) in
  let block = call1 rt args.(5) in
  let sums, _counts, t =
    Delite.Rows.group_sum ~dev:!device ~start ~stop ~groups ~size
      ~key:(fun i -> Vm.Value.to_int (key (Int i)))
      ~block:(fun i acc _g ->
        let d = vector_data (block (Int i)) in
        for j = 0 to size - 1 do
          acc.(j) <- acc.(j) +. d.(j)
        done)
  in
  note t;
  let flat = Array.make (groups * size) 0.0 in
  Array.iteri (fun g row -> Array.blit row 0 flat (g * size) size) sums;
  wrap_matrix rt flat ~rows:groups ~cols:size

let op_group_count rt (args : value array) : value =
  let start = Vm.Value.to_int args.(0) in
  let stop = Vm.Value.to_int args.(1) in
  let groups = Vm.Value.to_int args.(2) in
  let key = call1 rt args.(3) in
  let _sums, counts, t =
    Delite.Rows.group_sum ~dev:!device ~start ~stop ~groups ~size:0
      ~key:(fun i -> Vm.Value.to_int (key (Int i)))
      ~block:(fun _ _ _ -> ())
  in
  note t;
  Farr (Array.map float_of_int counts)

(* the whole-pipeline accelerator for totalScore: one fused pass, SoA, no
   Pair allocation, parallel *)
let op_total_score rt (args : value array) : value =
  let names = Vm.Value.to_arr args.(0) in
  let score_clo = args.(1) in
  let score = call1 rt score_clo in
  let n = Array.length names in
  let out, t =
    Delite.Rows.sum_scalar ~dev:!device ~start:0 ~stop:n ~f:(fun i ->
        let s = Vm.Value.to_float (score names.(i)) in
        float_of_int (i + 1) *. s)
  in
  note t;
  Float out

let dispatch rt name (args : value array) : value =
  match name with
  | "sum" -> op_sum rt args
  | "sum_scalar" -> op_sum_scalar rt args
  | "group_sum" -> op_group_sum rt args
  | "group_count" -> op_group_count rt args
  | "total_score" -> op_total_score rt args
  | _ -> vm_error "unknown Delite op %s" name

(* register the closure-backend handler for Delite_call nodes *)
let () =
  Lms.Closure_backend.register_ext (fun hooks op getters ->
      match op with
      | Delite_call name ->
        let rt = hooks.Lms.Closure_backend.rt in
        Some
          (fun env ->
            let args = Array.map (fun g -> g env) getters in
            dispatch rt name args)
      | _ -> None);
  Lms.Pretty.register_ext (function
    | Delite_call name -> Some (Printf.sprintf "delite.%s" name)
    | _ -> None)
