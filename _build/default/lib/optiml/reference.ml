(* Reference implementations of the Table 2 applications:
   - [Native.*]  hand-optimized OCaml (the paper's "C++" rows): manually
     fused loops, no intermediate allocations.
   - [Standalone.*]  the apps written directly against the Delite engine
     (the paper's stand-alone "Delite" rows): parallel ops, fused pipelines,
     native scalar kernels.
   Both operate on flat float arrays. *)

module Native = struct
  let closest ~data ~cols ~(centroids : float array) ~k i =
    let best = ref 0 and bestd = ref infinity in
    for g = 0 to k - 1 do
      let d = ref 0.0 in
      for j = 0 to cols - 1 do
        let diff = data.((i * cols) + j) -. centroids.((g * cols) + j) in
        d := !d +. (diff *. diff)
      done;
      if !d < !bestd then begin
        bestd := !d;
        best := g
      end
    done;
    !best

  (* fully fused: assignment, accumulation and counting in one pass *)
  let kmeans ~data ~rows ~cols ~k ~iters : float array =
    let centroids = Array.sub data 0 (k * cols) in
    let sums = Array.make (k * cols) 0.0 in
    let counts = Array.make k 0 in
    for _ = 1 to iters do
      Array.fill sums 0 (k * cols) 0.0;
      Array.fill counts 0 k 0;
      for i = 0 to rows - 1 do
        let g = closest ~data ~cols ~centroids ~k i in
        for j = 0 to cols - 1 do
          sums.((g * cols) + j) <- sums.((g * cols) + j) +. data.((i * cols) + j)
        done;
        counts.(g) <- counts.(g) + 1
      done;
      for g = 0 to k - 1 do
        if counts.(g) > 0 then
          for j = 0 to cols - 1 do
            centroids.((g * cols) + j) <-
              sums.((g * cols) + j) /. float_of_int counts.(g)
          done
      done
    done;
    centroids

  (* gradient reduced scalar-by-scalar into the accumulator: the "manual
     fusion" the paper describes for its C++ logistic regression *)
  let logreg ~data ~rows ~cols ~(y : float array) ~iters ~alpha : float array =
    let w = Array.make cols 0.0 in
    let grad = Array.make cols 0.0 in
    for _ = 1 to iters do
      Array.fill grad 0 cols 0.0;
      for i = 0 to rows - 1 do
        let dot = ref 0.0 in
        for j = 0 to cols - 1 do
          dot := !dot +. (w.(j) *. data.((i * cols) + j))
        done;
        let s = 1.0 /. (1.0 +. exp (-. !dot)) in
        let e = y.(i) -. s in
        for j = 0 to cols - 1 do
          grad.(j) <- grad.(j) +. (data.((i * cols) + j) *. e)
        done
      done;
      for j = 0 to cols - 1 do
        w.(j) <- w.(j) +. (alpha *. grad.(j))
      done
    done;
    w

  (* parallel variants: the same fused kernels chunked over a device *)
  let kmeans_par ~dev ~data ~rows ~cols ~k ~iters : float array =
    let centroids = ref (Array.sub data 0 (k * cols)) in
    for _ = 1 to iters do
      let c = !centroids in
      let (sums, counts), _ =
        Delite.Exec.fold_ranges dev ~n:rows
          ~init:(fun () -> (Array.make (k * cols) 0.0, Array.make k 0))
          ~body:(fun lo hi (sums, counts) ->
            for i = lo to hi - 1 do
              let g = closest ~data ~cols ~centroids:c ~k i in
              for j = 0 to cols - 1 do
                sums.((g * cols) + j) <-
                  sums.((g * cols) + j) +. data.((i * cols) + j)
              done;
              counts.(g) <- counts.(g) + 1
            done)
          ~combine:(fun (sa, ca) (sb, cb) ->
            Array.iteri (fun i v -> sa.(i) <- sa.(i) +. v) sb;
            Array.iteri (fun i v -> ca.(i) <- ca.(i) + v) cb;
            (sa, ca))
      in
      let next = Array.make (k * cols) 0.0 in
      for g = 0 to k - 1 do
        for j = 0 to cols - 1 do
          next.((g * cols) + j) <-
            (if counts.(g) > 0 then
               sums.((g * cols) + j) /. float_of_int counts.(g)
             else c.((g * cols) + j))
        done
      done;
      centroids := next
    done;
    !centroids

  let logreg_par ~dev ~data ~rows ~cols ~(y : float array) ~iters ~alpha :
      float array =
    let w = Array.make cols 0.0 in
    for _ = 1 to iters do
      let grad, _ =
        Delite.Exec.fold_ranges dev ~n:rows
          ~init:(fun () -> Array.make cols 0.0)
          ~body:(fun lo hi acc ->
            for i = lo to hi - 1 do
              let dot = ref 0.0 in
              for j = 0 to cols - 1 do
                dot := !dot +. (w.(j) *. data.((i * cols) + j))
              done;
              let s = 1.0 /. (1.0 +. exp (-. !dot)) in
              let e = y.(i) -. s in
              for j = 0 to cols - 1 do
                acc.(j) <- acc.(j) +. (data.((i * cols) + j) *. e)
              done
            done)
          ~combine:(fun a b ->
            Array.iteri (fun i v -> a.(i) <- a.(i) +. v) b;
            a)
      in
      for j = 0 to cols - 1 do
        w.(j) <- w.(j) +. (alpha *. grad.(j))
      done
    done;
    w

  let score name =
    let s = ref 0.0 in
    String.iter (fun c -> s := !s +. float_of_int (Char.code c - 64)) name;
    !s

  let namescore (names : string array) : float =
    let acc = ref 0.0 in
    Array.iteri
      (fun i n -> acc := !acc +. (float_of_int (i + 1) *. score n))
      names;
    !acc
end

module Standalone = struct
  open Delite

  let kmeans ~dev ~data ~rows ~cols ~k ~iters : float array * float =
    let centroids = ref (Array.sub data 0 (k * cols)) in
    let modeled = ref 0.0 in
    for _ = 1 to iters do
      let c = !centroids in
      let key i = Native.closest ~data ~cols ~centroids:c ~k i in
      let sums, _, t1 =
        Rows.group_sum ~dev ~start:0 ~stop:rows ~groups:k ~size:cols ~key
          ~block:(fun i acc _ ->
            for j = 0 to cols - 1 do
              acc.(j) <- acc.(j) +. data.((i * cols) + j)
            done)
      in
      (* separate counting pass, mirroring the app's group_count call *)
      let _, counts, t2 =
        Rows.group_sum ~dev ~start:0 ~stop:rows ~groups:k ~size:0 ~key
          ~block:(fun _ _ _ -> ())
      in
      modeled := !modeled +. t1.Exec.modeled +. t2.Exec.modeled;
      let next = Array.make (k * cols) 0.0 in
      for g = 0 to k - 1 do
        for j = 0 to cols - 1 do
          next.((g * cols) + j) <-
            (if counts.(g) > 0 then sums.(g).(j) /. float_of_int counts.(g)
             else c.((g * cols) + j))
        done
      done;
      centroids := next
    done;
    (!centroids, !modeled)

  let logreg ~dev ~data ~rows ~cols ~(y : float array) ~iters ~alpha :
      float array * float =
    let w = Array.make cols 0.0 in
    let modeled = ref 0.0 in
    for _ = 1 to iters do
      let grad, t =
        Rows.sum_rows ~dev ~start:0 ~stop:rows ~size:cols ~block:(fun i tmp ->
            let dot = ref 0.0 in
            for j = 0 to cols - 1 do
              dot := !dot +. (w.(j) *. data.((i * cols) + j))
            done;
            let s = 1.0 /. (1.0 +. exp (-. !dot)) in
            let e = y.(i) -. s in
            for j = 0 to cols - 1 do
              tmp.(j) <- data.((i * cols) + j) *. e
            done)
      in
      modeled := !modeled +. t.Exec.modeled;
      for j = 0 to cols - 1 do
        w.(j) <- w.(j) +. (alpha *. grad.(j))
      done
    done;
    (w, !modeled)

  (* "manual opt" variant: reduce each scalar directly into the accumulator
     (no per-row temporary), the transformation the paper says Delite does
     not yet support *)
  let logreg_manual ~dev ~data ~rows ~cols ~(y : float array) ~iters ~alpha :
      float array * float =
    let w = Array.make cols 0.0 in
    let modeled = ref 0.0 in
    for _ = 1 to iters do
      let grad, t =
        Exec.fold_ranges dev ~n:rows
          ~init:(fun () -> Array.make cols 0.0)
          ~body:(fun lo hi acc ->
            for i = lo to hi - 1 do
              let dot = ref 0.0 in
              for j = 0 to cols - 1 do
                dot := !dot +. (w.(j) *. data.((i * cols) + j))
              done;
              let s = 1.0 /. (1.0 +. exp (-. !dot)) in
              let e = y.(i) -. s in
              for j = 0 to cols - 1 do
                acc.(j) <- acc.(j) +. (data.((i * cols) + j) *. e)
              done
            done)
          ~combine:(fun a b ->
            for j = 0 to cols - 1 do
              a.(j) <- a.(j) +. b.(j)
            done;
            a)
      in
      modeled := !modeled +. t.Exec.modeled;
      for j = 0 to cols - 1 do
        w.(j) <- w.(j) +. (alpha *. grad.(j))
      done
    done;
    (w, !modeled)

  let namescore ~dev (names : string array) : float * float =
    let r, t =
      Rows.sum_scalar ~dev ~start:0 ~stop:(Array.length names) ~f:(fun i ->
          float_of_int (i + 1) *. Native.score names.(i))
    in
    (r, t.Exec.modeled)
end

module Data = struct
  (* clustered points for k-means; separable-ish samples for logreg *)
  let kmeans_data ~seed ~rows ~cols ~k : float array =
    let rng = Random.State.make [| seed |] in
    let centers =
      Array.init (k * cols) (fun _ -> Random.State.float rng 10.0)
    in
    Array.init (rows * cols) (fun idx ->
        let i = idx / cols and j = idx mod cols in
        let c = i mod k in
        centers.((c * cols) + j) +. Random.State.float rng 1.0)

  let logreg_data ~seed ~rows ~cols : float array * float array =
    let rng = Random.State.make [| seed |] in
    let x =
      Array.init (rows * cols) (fun _ -> Random.State.float rng 2.0 -. 1.0)
    in
    let y =
      Array.init rows (fun i ->
          let s = ref 0.0 in
          for j = 0 to cols - 1 do
            s := !s +. x.((i * cols) + j)
          done;
          if !s > 0.0 then 1.0 else 0.0)
    in
    (x, y)

  let names ~seed ~n : string array =
    let rng = Random.State.make [| seed |] in
    Array.init n (fun _ ->
        String.init
          (4 + Random.State.int rng 8)
          (fun _ -> Char.chr (65 + Random.State.int rng 26)))
end
