(* The abstract-value domain of paper Sec. 2.2:

     Const    — compile-time primitive constant
     Static   — preexisting heap object/array with known identity
     Partial  — object allocated (virtually) in compiled code: a map of
                abstract fields, no residual allocation yet
     Known    — dynamic object of exactly known class (e.g. after
                materialization): still enables devirtualization
     Unknown  — anything

   Abstract information is attached to IR symbols and accessed uniformly
   through [evalA] (in [Compiler]). *)

type t =
  | Const of Vm.Types.value (* Int/Float/Str/Null only *)
  | Static of Vm.Types.obj
  | StaticArr of Vm.Types.value (* Arr or Farr, identity known *)
  | Partial of int * Vm.Types.cls (* virtual object id, exact class *)
  | Known of Vm.Types.cls
  | Unknown

let pp ppf = function
  | Const v -> Format.fprintf ppf "Const(%a)" Vm.Value.pp v
  | Static o -> Format.fprintf ppf "Static(%s#%d)" o.Vm.Types.ocls.Vm.Types.cname o.Vm.Types.oid
  | StaticArr _ -> Format.fprintf ppf "StaticArr"
  | Partial (vid, c) -> Format.fprintf ppf "Partial(v%d:%s)" vid c.Vm.Types.cname
  | Known c -> Format.fprintf ppf "Known(%s)" c.Vm.Types.cname
  | Unknown -> Format.fprintf ppf "Unknown"

let to_string a = Format.asprintf "%a" pp a

let equal a b =
  match a, b with
  | Const x, Const y -> Vm.Value.equal x y
  | Static x, Static y -> x.Vm.Types.oid = y.Vm.Types.oid
  | StaticArr x, StaticArr y -> x == y
  | Partial (x, _), Partial (y, _) -> x = y
  | Known x, Known y -> x.Vm.Types.cid = y.Vm.Types.cid
  | Unknown, Unknown -> true
  | (Const _ | Static _ | StaticArr _ | Partial _ | Known _ | Unknown), _ ->
    false

(* class of the value an abstract value denotes, when exactly known *)
let exact_class = function
  | Static o -> Some o.Vm.Types.ocls
  | Partial (_, c) -> Some c
  | Known c -> Some c
  | Const _ | StaticArr _ | Unknown -> None

(* join used when merging control flow; Partial identities must already have
   been reconciled by the caller (virtual objects join field-wise) *)
let lub a b =
  if equal a b then a
  else
    match exact_class a, exact_class b with
    | Some ca, Some cb when ca.Vm.Types.cid = cb.Vm.Types.cid -> Known ca
    | _ -> Unknown

let const_of_value (v : Vm.Types.value) : t =
  match v with
  | Vm.Types.Null | Vm.Types.Int _ | Vm.Types.Float _ | Vm.Types.Str _ ->
    Const v
  | Vm.Types.Obj o -> Static o
  | Vm.Types.Arr _ | Vm.Types.Farr _ -> StaticArr v
