(** The abstract-value domain of paper Sec. 2.2, attached to IR symbols and
    accessed uniformly through [Compiler.evalA]. *)

type t =
  | Const of Vm.Types.value  (** compile-time primitive constant *)
  | Static of Vm.Types.obj  (** preexisting heap object, known identity *)
  | StaticArr of Vm.Types.value  (** Arr/Farr with known identity *)
  | Partial of int * Vm.Types.cls
      (** virtual object (id, exact class): allocated in compiled code, not
          yet materialized — partial escape analysis *)
  | Known of Vm.Types.cls  (** dynamic object of exactly known class *)
  | Unknown

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val exact_class : t -> Vm.Types.cls option
(** The receiver class when exactly known — enables devirtualization. *)

val lub : t -> t -> t
(** Join at control-flow merges.  Partial identities must be reconciled by
    the caller (virtual objects join field-wise). *)

val const_of_value : Vm.Types.value -> t
(** The abstract value of a runtime constant: primitives become [Const],
    objects [Static], arrays [StaticArr]. *)
