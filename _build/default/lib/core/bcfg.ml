(* Control-flow analyses over bytecode at instruction granularity:
   successors, dominators, immediate postdominators (used to locate the join
   point of a conditional) and natural loops (used to drive the abstract-
   interpretation fixpoint of paper Sec. 2.2). *)

open Vm.Types

type t = {
  code : instr array;
  n : int;
  succs : int list array;
  preds : int list array;
  ipostdom : int array; (* -1 = exits / no postdominator *)
  loop_headers : bool array;
  loop_body : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* header -> member pcs *)
}

let successors code pc =
  match code.(pc) with
  | Goto t -> [ t ]
  | If (_, t) | Iff (_, t) | Ifz (_, t) | Ifnull (_, t) -> [ pc + 1; t ]
  | Ret | Retv | Trap _ -> []
  | Const _ | Load _ | Store _ | Dup | Pop | Swap | Iop _ | Ineg | Fop _
  | Fneg | I2f | F2i | New _ | Getfield _ | Putfield _ | Getglobal _
  | Putglobal _ | Newarr | Newfarr | Aload | Astore | Faload | Fastore | Alen
  | Invoke _ ->
    [ pc + 1 ]

(* bitset helpers over int arrays *)
module Bits = struct
  let make n full =
    let words = (n + 62) / 63 in
    Array.make (max words 1) (if full then -1 else 0)

  let mem b i = b.(i / 63) land (1 lsl (i mod 63)) <> 0
  let add b i = b.(i / 63) <- b.(i / 63) lor (1 lsl (i mod 63))

  let inter_into dst src =
    let changed = ref false in
    for w = 0 to Array.length dst - 1 do
      let v = dst.(w) land src.(w) in
      if v <> dst.(w) then begin
        dst.(w) <- v;
        changed := true
      end
    done;
    !changed

  let copy = Array.copy
end

(* Dominators of each pc (forward); exit-augmented postdominators (reverse).
   Standard iterative bitset dataflow; bytecode methods are small. *)
let analyze (code : instr array) : t =
  let n = Array.length code in
  let succs = Array.init n (fun pc -> List.filter (fun s -> s < n) (successors code pc)) in
  let preds = Array.make n [] in
  Array.iteri (fun pc ss -> List.iter (fun s -> preds.(s) <- pc :: preds.(s)) ss) succs;
  (* dominators *)
  let dom = Array.init n (fun _ -> Bits.make n true) in
  dom.(0) <- Bits.make n false;
  Bits.add dom.(0) 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = 1 to n - 1 do
      match preds.(pc) with
      | [] -> () (* unreachable *)
      | p0 :: rest ->
        let acc = Bits.copy dom.(p0) in
        List.iter (fun p -> ignore (Bits.inter_into acc dom.(p))) rest;
        Bits.add acc pc;
        if Bits.inter_into dom.(pc) acc then changed := true;
        (* ensure dom(pc) = acc exactly, not just intersection *)
        Array.blit acc 0 dom.(pc) 0 (Array.length acc)
    done
  done;
  (* postdominators, with a virtual exit node joining all Ret/Trap *)
  let pdom = Array.init n (fun _ -> Bits.make n true) in
  let is_exit pc = succs.(pc) = [] in
  for pc = 0 to n - 1 do
    if is_exit pc then begin
      pdom.(pc) <- Bits.make n false;
      Bits.add pdom.(pc) pc
    end
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = n - 1 downto 0 do
      if not (is_exit pc) then begin
        match succs.(pc) with
        | [] -> ()
        | s0 :: rest ->
          let acc = Bits.copy pdom.(s0) in
          List.iter (fun s -> ignore (Bits.inter_into acc pdom.(s))) rest;
          Bits.add acc pc;
          let old = Bits.copy pdom.(pc) in
          Array.blit acc 0 pdom.(pc) 0 (Array.length acc);
          if old <> pdom.(pc) then changed := true
      end
    done
  done;
  (* immediate postdominator: the postdominator (other than pc itself) that is
     postdominated by all other postdominators of pc *)
  let pd_list pc =
    let l = ref [] in
    for i = 0 to n - 1 do
      if i <> pc && Bits.mem pdom.(pc) i then l := i :: !l
    done;
    !l
  in
  let ipostdom =
    Array.init n (fun pc ->
        let cands = pd_list pc in
        let is_ipd c =
          List.for_all (fun o -> o = c || Bits.mem pdom.(c) o) cands
        in
        match List.find_opt is_ipd cands with Some c -> c | None -> -1)
  in
  (* natural loops: back edge pc -> h where h dominates pc *)
  let loop_headers = Array.make n false in
  let loop_body = Hashtbl.create 4 in
  Array.iteri
    (fun pc ss ->
      List.iter
        (fun h ->
          if Bits.mem dom.(pc) h then begin
            (* back edge pc -> h *)
            loop_headers.(h) <- true;
            let body =
              match Hashtbl.find_opt loop_body h with
              | Some b -> b
              | None ->
                let b = Hashtbl.create 16 in
                Hashtbl.replace b h ();
                Hashtbl.replace loop_body h b;
                b
            in
            (* reverse reachability from pc without passing h *)
            let rec mark x =
              if not (Hashtbl.mem body x) then begin
                Hashtbl.replace body x ();
                List.iter mark preds.(x)
              end
            in
            mark pc
          end)
        ss)
    succs;
  { code; n; succs; preds; ipostdom; loop_headers; loop_body }

let in_loop t header pc =
  match Hashtbl.find_opt t.loop_body header with
  | Some b -> Hashtbl.mem b pc
  | None -> false

let is_loop_header t pc = pc < t.n && t.loop_headers.(pc)

(* cache per method *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 64

let of_method (m : meth) : t =
  let code =
    match m.mcode with
    | Bytecode c -> c
    | Native _ -> invalid_arg "Bcfg.of_method: native method"
  in
  match Hashtbl.find_opt cache m.mid with
  | Some t when t.code == code -> t
  | Some _ | None ->
    let t = analyze code in
    Hashtbl.replace cache m.mid t;
    t
