lib/core/absval.mli: Format Vm
