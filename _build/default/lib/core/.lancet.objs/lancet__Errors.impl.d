lib/core/errors.ml: Format List Printexc Printf
