lib/core/bcfg.ml: Array Hashtbl List Vm
