lib/core/errors.mli: Format
