lib/core/api.ml: Absval Array Compiler Errors Hashtbl List Lms String Vm
