lib/core/absval.ml: Format Vm
