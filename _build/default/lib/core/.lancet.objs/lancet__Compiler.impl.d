lib/core/compiler.ml: Absval Array Bcfg Errors Fun Hashtbl Int List Lms Map Obj Option Printf String Vm
