(** Array-of-struct to struct-of-array conversion — the "unwrapping the
    array of tuples into two arrays" optimization behind the paper's name
    score speedup. *)

type aos = (float * float) array
type soa = { fst_ : float array; snd_ : float array }

val of_aos : aos -> soa
val to_aos : soa -> aos
val length : soa -> int
