(* Array-of-struct to struct-of-array conversion — the "unwrapping the array
   of tuples into two arrays" optimization the paper credits for the name
   score speedup.  The generic representation pays one heap object per
   element; the SoA form is two flat float arrays processed by fused loops. *)

type aos = (float * float) array

type soa = { fst_ : float array; snd_ : float array }

let of_aos (a : aos) : soa =
  let n = Array.length a in
  let fst_ = Array.make n 0.0 and snd_ = Array.make n 0.0 in
  Array.iteri
    (fun i (x, y) ->
      fst_.(i) <- x;
      snd_.(i) <- y)
    a;
  { fst_; snd_ }

let to_aos (s : soa) : aos =
  Array.init (Array.length s.fst_) (fun i -> (s.fst_.(i), s.snd_.(i)))

let length s = Array.length s.fst_
