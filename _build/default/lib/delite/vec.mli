(** Symbolic vector pipelines with op fusion: map/zip stages over input
    arrays fuse into a single loop with one combined scalar kernel;
    map+reduce fuses into one traversal with no intermediate array — the
    optimizations the paper credits for Table 2. *)

type t =
  | Input of float array
  | Map of t * Scalar.t  (** body over [Elem 0] = source element *)
  | Zip of t * t * Scalar.t  (** body over [Elem 0], [Elem 1] *)

type reduction = { source : t; combine : Scalar.binop; init : float }

val length : t -> int

type plan = { n : int; inputs : float array array; body : Scalar.t }
(** A fused loop: one kernel over k input arrays. *)

type stats = { stages : int; fused_loops : int }

val lower : t -> plan * int
(** Fuse the pipeline; also returns the number of stages that were fused. *)

val eval_unfused : t -> float array
(** Reference evaluation: one loop and one intermediate array per stage
    (the unfused baseline for the ablation bench). *)

val eval_unfused_reduce : reduction -> float

val collect : dev:Exec.device -> t -> float array * Exec.timing
(** Fused parallel execution producing the result array. *)

val reduce : dev:Exec.device -> reduction -> float * Exec.timing
(** Fused map+reduce: a single traversal, parallel per-worker accumulators. *)

val fusion_stats : t -> stats

(** Constructors. *)

val input : float array -> t
val map : t -> Scalar.t -> t
val zip : t -> t -> Scalar.t -> t
val sum : t -> reduction
