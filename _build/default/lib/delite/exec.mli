(** Execution engine: devices, parallel loops and the measured-chunk scaling
    model used to reproduce the paper's multi-core sweeps on a single-core
    container (see DESIGN.md for the substitution rationale). *)

type gpu_model = {
  throughput_factor : float;  (** sustained speedup over one core *)
  launch_overhead_s : float;  (** per-kernel launch cost *)
}

val default_gpu : gpu_model

type device =
  | Seq  (** sequential execution, measured *)
  | Domains of int  (** real fork-join on OCaml domains *)
  | Sim of int
      (** chunks run sequentially and are timed; reported time is the LPT
          makespan over n modeled workers plus sync overhead *)
  | Gpu of gpu_model
      (** executes for real; reported time from the analytic SIMT model *)

type timing = {
  wall : float;  (** actually elapsed seconds *)
  modeled : float;  (** reported seconds (= wall unless simulated) *)
  chunks : int;
}

val device_name : device -> string
val now : unit -> float

(** {1 Global accounting}

    Harnesses report [total_wall - ops_wall + ops_modeled] so that serial
    glue is measured while parallel ops contribute modeled times. *)

val ops_wall : float ref
val ops_modeled : float ref
val reset_stats : unit -> unit

(** {1 Scheduling primitives} *)

val ranges : int -> int -> (int * int) list
(** [ranges n chunks] splits [\[0, n)] into contiguous half-open ranges. *)

val lpt_makespan : float list -> int -> float
(** Longest-processing-time schedule makespan of the given chunk times over
    [workers] workers. *)

val fold_ranges :
  device ->
  n:int ->
  init:(unit -> 'acc) ->
  body:(int -> int -> 'acc -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc * timing
(** Parallel fold: [init] makes a per-worker accumulator, [body lo hi acc]
    processes a range into it, [combine] merges (ascending range order). *)

val parallel_for : device -> n:int -> body:(int -> int -> unit) -> timing

val cpu_cores : unit -> int
