(** Row-wise parallel operators (the paper's DeliteOpMapReduce over matrix
    rows, Fig. 8): per-row vector maps reduced by vector accumulation into
    per-worker accumulators. *)

val sum_rows :
  dev:Exec.device ->
  start:int ->
  stop:int ->
  size:int ->
  block:(int -> float array -> unit) ->
  float array * Exec.timing
(** [sum_rows] computes Σ block(i) over [start, stop), where [block i buf]
    writes row i's [size]-vector into [buf]. *)

val sum_scalar :
  dev:Exec.device ->
  start:int ->
  stop:int ->
  f:(int -> float) ->
  float * Exec.timing

val group_sum :
  dev:Exec.device ->
  start:int ->
  stop:int ->
  groups:int ->
  size:int ->
  key:(int -> int) ->
  block:(int -> float array -> int -> unit) ->
  float array array * int array * Exec.timing
(** Keyed accumulation in one pass: returns per-group vector sums and
    per-group counts (used by k-means). *)
