(* Scalar expression kernels for Delite ops: the per-element bodies of
   map/zip/reduce pipelines.  Kept first-order and symbolic so the fusion
   pass can substitute producer bodies into consumers. *)

type binop = Add | Sub | Mul | Div | Min | Max

type unop = Neg | Abs | Sqrt | Exp | Log | Sigmoid

type t =
  | Elem of int (* element of the i-th input array at the current index *)
  | Idx (* the current index, as a float *)
  | Konst of float
  | Bin of binop * t * t
  | Un of unop * t

let rec pp ppf = function
  | Elem i -> Format.fprintf ppf "in%d" i
  | Idx -> Format.fprintf ppf "idx"
  | Konst f -> Format.fprintf ppf "%g" f
  | Bin (op, a, b) ->
    let s =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
      | Min -> "min" | Max -> "max"
    in
    Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | Un (op, a) ->
    let s =
      match op with
      | Neg -> "neg" | Abs -> "abs" | Sqrt -> "sqrt" | Exp -> "exp"
      | Log -> "log" | Sigmoid -> "sigmoid"
    in
    Format.fprintf ppf "%s(%a)" s pp a

let to_string e = Format.asprintf "%a" pp e

let apply_bin op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let apply_un op a =
  match op with
  | Neg -> -.a
  | Abs -> Float.abs a
  | Sqrt -> sqrt a
  | Exp -> exp a
  | Log -> log a
  | Sigmoid -> 1.0 /. (1.0 +. exp (-.a))

(* substitute [subs.(i)] for [Elem i] — the heart of fusion *)
let rec subst (subs : t array) = function
  | Elem i -> subs.(i)
  | Idx -> Idx
  | Konst f -> Konst f
  | Bin (op, a, b) -> Bin (op, subst subs a, subst subs b)
  | Un (op, a) -> Un (op, subst subs a)

(* constant folding *)
let rec simplify = function
  | Bin (op, a, b) -> (
    match simplify a, simplify b with
    | Konst x, Konst y -> Konst (apply_bin op x y)
    | Konst 0.0, b when op = Add -> b
    | a, Konst 0.0 when op = Add || op = Sub -> a
    | a, Konst 1.0 when op = Mul || op = Div -> a
    | Konst 1.0, b when op = Mul -> b
    | a, b -> Bin (op, a, b))
  | Un (op, a) -> (
    match simplify a with
    | Konst x -> Konst (apply_un op x)
    | a -> Un (op, a))
  | (Elem _ | Idx | Konst _) as e -> e

(* Compile a kernel to an OCaml closure over (inputs, index): each node
   becomes one closure, so fused kernels cost one traversal per element. *)
let compile (e : t) : float array array -> int -> float =
  let rec go = function
    | Elem i -> fun ins idx -> ins.(i).(idx)
    | Idx -> fun _ idx -> float_of_int idx
    | Konst f -> fun _ _ -> f
    | Bin (op, a, b) ->
      let fa = go a and fb = go b in
      let f = apply_bin op in
      fun ins idx -> f (fa ins idx) (fb ins idx)
    | Un (op, a) ->
      let fa = go a in
      let f = apply_un op in
      fun ins idx -> f (fa ins idx)
  in
  go (simplify e)

let rec max_input = function
  | Elem i -> i
  | Idx | Konst _ -> -1
  | Bin (_, a, b) -> max (max_input a) (max_input b)
  | Un (_, a) -> max_input a
