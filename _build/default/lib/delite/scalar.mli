(** Scalar expression kernels: the per-element bodies of Delite map/zip/
    reduce pipelines.  Symbolic, so the fusion pass can substitute producer
    bodies into consumers. *)

type binop = Add | Sub | Mul | Div | Min | Max
type unop = Neg | Abs | Sqrt | Exp | Log | Sigmoid

type t =
  | Elem of int  (** element of the i-th input array at the current index *)
  | Idx  (** the current index, as a float *)
  | Konst of float
  | Bin of binop * t * t
  | Un of unop * t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val apply_bin : binop -> float -> float -> float
val apply_un : unop -> float -> float

val subst : t array -> t -> t
(** [subst subs e] replaces [Elem i] with [subs.(i)] — the heart of
    fusion. *)

val simplify : t -> t
(** Constant folding and identity elimination. *)

val compile : t -> float array array -> int -> float
(** [compile e inputs idx] evaluates [e]; one closure per node, so a fused
    kernel costs a single traversal per element. *)

val max_input : t -> int
(** Largest [Elem] index mentioned, or [-1]. *)
