lib/delite/vec.ml: Array Exec Scalar
