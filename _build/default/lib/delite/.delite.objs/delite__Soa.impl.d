lib/delite/soa.ml: Array
