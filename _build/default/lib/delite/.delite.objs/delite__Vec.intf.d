lib/delite/vec.mli: Exec Scalar
