lib/delite/exec.mli:
