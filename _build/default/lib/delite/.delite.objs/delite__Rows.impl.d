lib/delite/rows.ml: Array Exec
