lib/delite/exec.ml: Array Domain Float List Printf Unix
