lib/delite/scalar.ml: Array Float Format
