lib/delite/soa.mli:
