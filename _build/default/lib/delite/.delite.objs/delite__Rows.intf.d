lib/delite/rows.mli: Exec
