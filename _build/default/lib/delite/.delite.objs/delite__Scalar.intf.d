lib/delite/scalar.mli: Format
