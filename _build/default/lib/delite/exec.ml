(* Execution engine: devices, parallel loops and the measured-chunk scaling
   model.

   [Domains n] runs chunks on real OCaml domains (fork-join) — used by tests
   and on real multicore machines.  [Sim n] executes chunks sequentially,
   measures each chunk's wall time, and reports the makespan of an LPT
   schedule over [n] workers: on the single-core container this reproduces
   the *shape* of the paper's 1/2/4/8-core sweeps from real measurements.
   [Gpu m] executes sequentially for correctness and reports an analytic
   SIMT model time — the paper's GPU column without the hardware (see
   DESIGN.md / EXPERIMENTS.md for the substitution rationale). *)

type gpu_model = {
  throughput_factor : float; (* sustained speedup over one core *)
  launch_overhead_s : float; (* per-kernel launch cost *)
}

let default_gpu = { throughput_factor = 48.0; launch_overhead_s = 40e-6 }

type device =
  | Seq
  | Domains of int
  | Sim of int (* measured-chunk LPT makespan over n modeled workers *)
  | Gpu of gpu_model

type timing = {
  wall : float; (* actually elapsed seconds *)
  modeled : float; (* reported seconds (= wall unless simulated) *)
  chunks : int;
}

let device_name = function
  | Seq -> "seq"
  | Domains n -> Printf.sprintf "domains:%d" n
  | Sim n -> Printf.sprintf "sim:%d" n
  | Gpu _ -> "gpu(modeled)"

let now () = Unix.gettimeofday ()

(* global accounting: wall vs modeled seconds spent inside parallel ops,
   used by harnesses to report modeled end-to-end times on the 1-core
   container (reported = total_wall - ops_wall + ops_modeled) *)
let ops_wall = ref 0.0
let ops_modeled = ref 0.0

let reset_stats () =
  ops_wall := 0.0;
  ops_modeled := 0.0

let note_timing (t : float * float) =
  let w, m = t in
  ops_wall := !ops_wall +. w;
  ops_modeled := !ops_modeled +. m

(* split [0, n) into [chunks] contiguous ranges *)
let ranges n chunks =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  let rec go i lo acc =
    if i >= chunks then List.rev acc
    else
      let len = base + (if i < extra then 1 else 0) in
      go (i + 1) (lo + len) ((lo, lo + len) :: acc)
  in
  if n = 0 then [ (0, 0) ] else go 0 0 []

(* longest-processing-time schedule: returns makespan for [workers] *)
let lpt_makespan (times : float list) workers =
  let sorted = List.sort (fun a b -> compare b a) times in
  let loads = Array.make (max workers 1) 0.0 in
  List.iter
    (fun t ->
      let best = ref 0 in
      for i = 1 to Array.length loads - 1 do
        if loads.(i) < loads.(!best) then best := i
      done;
      loads.(!best) <- loads.(!best) +. t)
    sorted;
  Array.fold_left Float.max 0.0 loads

(* per-worker synchronization overhead added to modeled parallel time *)
let sync_overhead_s = 8e-6

(* Generic parallel fold over index ranges.
   [init] creates a per-worker accumulator, [body lo hi acc] processes a
   range into it, [combine] merges accumulators (combine order is
   left-to-right over ascending ranges). *)
let fold_ranges (type acc) (dev : device) ~(n : int)
    ~(init : unit -> acc) ~(body : int -> int -> acc -> unit)
    ~(combine : acc -> acc -> acc) : acc * timing =
  match dev with
  | Seq ->
    let t0 = now () in
    let acc = init () in
    body 0 n acc;
    let t = now () -. t0 in
    note_timing (t, t);
    (acc, { wall = t; modeled = t; chunks = 1 })
  | Domains workers ->
    let workers = max 1 workers in
    let rs = ranges n workers in
    let t0 = now () in
    let doms =
      List.map
        (fun (lo, hi) ->
          Domain.spawn (fun () ->
              let acc = init () in
              body lo hi acc;
              acc))
        rs
    in
    let accs = List.map Domain.join doms in
    let t = now () -. t0 in
    let acc =
      match accs with
      | [] -> init ()
      | a :: rest -> List.fold_left combine a rest
    in
    note_timing (t, t);
    (acc, { wall = t; modeled = t; chunks = List.length rs })
  | Sim workers ->
    let workers = max 1 workers in
    (* more chunks than workers so LPT can balance *)
    let rs = ranges n (workers * 4) in
    let t0 = now () in
    let timed =
      List.map
        (fun (lo, hi) ->
          let c0 = now () in
          let acc = init () in
          body lo hi acc;
          (acc, now () -. c0))
        rs
    in
    let wall = now () -. t0 in
    let acc =
      match timed with
      | [] -> init ()
      | (a, _) :: rest -> List.fold_left (fun x (y, _) -> combine x y) a rest
    in
    let makespan = lpt_makespan (List.map snd timed) workers in
    let modeled = makespan +. (float_of_int workers *. sync_overhead_s) in
    note_timing (wall, modeled);
    (acc, { wall; modeled; chunks = List.length rs })
  | Gpu m ->
    let t0 = now () in
    let acc = init () in
    body 0 n acc;
    let wall = now () -. t0 in
    let modeled = m.launch_overhead_s +. (wall /. m.throughput_factor) in
    note_timing (wall, modeled);
    (acc, { wall; modeled; chunks = 1 })

(* parallel for: no accumulator, writes to disjoint output ranges *)
let parallel_for dev ~n ~(body : int -> int -> unit) : timing =
  let _, t =
    fold_ranges dev ~n
      ~init:(fun () -> ())
      ~body:(fun lo hi () -> body lo hi)
      ~combine:(fun () () -> ())
  in
  t

let cpu_cores () = Domain.recommended_domain_count ()
