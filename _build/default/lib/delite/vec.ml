(* Symbolic vector pipelines with op fusion (the Delite IR for flat
   data-parallel ops).  A pipeline of map/zip stages over input arrays is
   fused into a single loop with one combined scalar kernel; map+reduce fuses
   into a single traversal with no intermediate array — the two critical
   optimizations the paper credits for Table 2 ("fusing computationally
   heavy loops, less traversals and intermediate data allocations"). *)

type t =
  | Input of float array
  | Map of t * Scalar.t (* body over Elem 0 = source element; may use Idx *)
  | Zip of t * t * Scalar.t (* body over Elem 0, Elem 1 *)

type reduction = { source : t; combine : Scalar.binop; init : float }

let rec length = function
  | Input a -> Array.length a
  | Map (s, _) -> length s
  | Zip (a, b, _) -> min (length a) (length b)

(* a fused loop: one kernel over k input arrays *)
type plan = { n : int; inputs : float array array; body : Scalar.t }

(* statistics so tests and benches can assert fusion happened *)
type stats = { stages : int; fused_loops : int }

(* Lower a pipeline to a single fused plan.  Returns the plan and the number
   of stages that were fused into it. *)
let rec lower (v : t) : plan * int =
  match v with
  | Input a ->
    ({ n = Array.length a; inputs = [| a |]; body = Scalar.Elem 0 }, 0)
  | Map (src, body) ->
    let p, k = lower src in
    (* producer body replaces Elem 0 in the consumer *)
    let body = Scalar.subst [| p.body |] body in
    ({ p with body }, k + 1)
  | Zip (a, b, body) ->
    let pa, ka = lower a in
    let pb, kb = lower b in
    (* concatenate input lists, shifting pb's Elem indices *)
    let shift = Array.length pa.inputs in
    let rec shift_elems : Scalar.t -> Scalar.t = function
      | Scalar.Elem i -> Scalar.Elem (i + shift)
      | Scalar.Idx -> Scalar.Idx
      | Scalar.Konst f -> Scalar.Konst f
      | Scalar.Bin (op, x, y) -> Scalar.Bin (op, shift_elems x, shift_elems y)
      | Scalar.Un (op, x) -> Scalar.Un (op, shift_elems x)
    in
    let body = Scalar.subst [| pa.body; shift_elems pb.body |] body in
    ( {
        n = min pa.n pb.n;
        inputs = Array.append pa.inputs pb.inputs;
        body;
      },
      ka + kb + 1 )

(* Evaluate without fusion: one loop and one intermediate array per stage
   (the unfused baseline for the ablation bench). *)
let rec eval_unfused (v : t) : float array =
  match v with
  | Input a -> Array.copy a
  | Map (src, body) ->
    let s = eval_unfused src in
    let k = Scalar.compile body in
    Array.init (Array.length s) (fun i -> k [| s |] i)
  | Zip (a, b, body) ->
    let xa = eval_unfused a and xb = eval_unfused b in
    let k = Scalar.compile body in
    Array.init (min (Array.length xa) (Array.length xb)) (fun i -> k [| xa; xb |] i)

let eval_unfused_reduce (r : reduction) : float =
  let a = eval_unfused r.source in
  Array.fold_left (fun acc x -> Scalar.apply_bin r.combine acc x) r.init a

(* Fused execution on a device. *)
let collect ~dev (v : t) : float array * Exec.timing =
  let plan, _ = lower v in
  let kern = Scalar.compile plan.body in
  let out = Array.make plan.n 0.0 in
  let timing =
    Exec.parallel_for dev ~n:plan.n ~body:(fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- kern plan.inputs i
        done)
  in
  (out, timing)

let reduce ~dev (r : reduction) : float * Exec.timing =
  let plan, _ = lower r.source in
  let kern = Scalar.compile plan.body in
  let op = Scalar.apply_bin r.combine in
  let acc, timing =
    Exec.fold_ranges dev ~n:plan.n
      ~init:(fun () -> ref r.init)
      ~body:(fun lo hi acc ->
        let a = ref !acc in
        for i = lo to hi - 1 do
          a := op !a (kern plan.inputs i)
        done;
        acc := !a)
      ~combine:(fun a b ->
        a := op !a !b;
        a)
  in
  (!acc, timing)

let fusion_stats (v : t) : stats =
  let _, k = lower v in
  { stages = k; fused_loops = 1 }

(* convenience constructors *)
let input a = Input a
let map v body = Map (v, body)
let zip a b body = Zip (a, b, body)
let sum v = { source = v; combine = Scalar.Add; init = 0.0 }
