(* Row-wise parallel operators (DeliteOpMapReduce over matrix rows, Fig. 8):
   a map producing per-row vectors, reduced with vector accumulation into a
   per-worker accumulator, combined at the end — the pattern behind the
   paper's OptiML [sum]/[sumRows]. *)

(* sum over i in [start, stop) of block(i), where block accumulates a
   [size]-vector into the provided buffer *)
let sum_rows ~dev ~start ~stop ~size
    ~(block : int -> float array -> unit) : float array * Exec.timing =
  let n = stop - start in
  Exec.fold_ranges dev ~n
    ~init:(fun () -> Array.make size 0.0)
    ~body:(fun lo hi acc ->
      let tmp = Array.make size 0.0 in
      for i = lo to hi - 1 do
        Array.fill tmp 0 size 0.0;
        block (start + i) tmp;
        for j = 0 to size - 1 do
          acc.(j) <- acc.(j) +. tmp.(j)
        done
      done)
    ~combine:(fun a b ->
      for j = 0 to Array.length a - 1 do
        a.(j) <- a.(j) +. b.(j)
      done;
      a)

(* scalar-valued row reduction *)
let sum_scalar ~dev ~start ~stop ~(f : int -> float) :
    float * Exec.timing =
  let n = stop - start in
  let acc, t =
    Exec.fold_ranges dev ~n
      ~init:(fun () -> ref 0.0)
      ~body:(fun lo hi acc ->
        let a = ref !acc in
        for i = lo to hi - 1 do
          a := !a +. f (start + i)
        done;
        acc := !a)
      ~combine:(fun a b ->
        a := !a +. !b;
        a)
  in
  (!acc, t)

(* integer-keyed grouping: per-row key selection with vector accumulation
   (used by k-means to accumulate per-cluster sums in one pass) *)
let group_sum ~dev ~start ~stop ~groups ~size
    ~(key : int -> int) ~(block : int -> float array -> int -> unit) :
    float array array * int array * Exec.timing =
  (* returns (per-group vector sums, per-group counts) *)
  let n = stop - start in
  let (sums, counts), t =
    Exec.fold_ranges dev ~n
      ~init:(fun () ->
        (Array.init groups (fun _ -> Array.make size 0.0), Array.make groups 0))
      ~body:(fun lo hi (sums, counts) ->
        for i = lo to hi - 1 do
          let g = key (start + i) in
          block (start + i) sums.(g) g;
          counts.(g) <- counts.(g) + 1
        done)
      ~combine:(fun (sa, ca) (sb, cb) ->
        for g = 0 to groups - 1 do
          for j = 0 to size - 1 do
            sa.(g).(j) <- sa.(g).(j) +. sb.(g).(j)
          done;
          ca.(g) <- ca.(g) + cb.(g)
        done;
        (sa, ca))
  in
  (sums, counts, t)
