(* The remaining surgical-JIT use cases of paper Sec. 3.1-3.2, written as
   Mini programs:

   - code caching and on-demand compilation (calcJIT / calcHOT / makeJIT):
     specialized versions of a two-argument function are compiled per first
     argument, cached, and reused — hot-count profiling decides when;
   - search trees with stable structure: the lookup of an immutable tree
     whose root is compile-time static turns into branching code. *)

let code_cache_source =
  {|
// a small open-addressing cache from int keys to compiled functions
class FnCache {
  val keys: array[int]
  val vals: array[(int) -> int]
  def init(n: int): unit = {
    this.keys = new array[int](n);
    val ks = this.keys;
    for (i <- 0 until n) { ks[i] = -1 };
    this.vals = new array[(int) -> int](n)
  }
  def slot(x: int): int = Math.iabs(x * 31) % this.keys.length
  def get(x: int): (int) -> int = {
    val i = this.slot(x);
    if (this.keys[i] == x) this.vals[i] else null
  }
  def put(x: int, f: (int) -> int): unit = {
    val i = this.slot(x);
    this.keys[i] = x;
    this.vals[i] = f
  }
}

// the function to specialize: x controls an unrollable mixing loop
def calc(x: int, y: int): int = {
  var acc = y;
  Lancet.ntimes(x, fun (i: int) => { acc = acc * 3 + i });
  acc
}

// calcJIT (paper Sec. 3.1): compile-per-x with a code cache
def make_calc_jit(): (int, int) -> int = {
  val cache = new FnCache(64);
  fun (x: int, y: int) => {
    var f = cache.get(x);
    if (f == null) {
      f = Lancet.compile(fun (z: int) => calc(x, z));
      cache.put(x, f)
    };
    f(y)
  }
}

// calcHOT: only specialize once a particular x becomes hot
def make_calc_hot(threshold: int): (int, int) -> int = {
  val cache = new FnCache(64);
  val counts = new array[int](64);
  fun (x: int, y: int) => {
    var f = cache.get(x);
    if (f == null) {
      val s = Math.iabs(x * 31) % 64;
      counts[s] = counts[s] + 1;
      if (counts[s] >= threshold) {
        f = Lancet.compile(fun (z: int) => calc(x, z));
        cache.put(x, f);
        f(y)
      } else { calc(x, y) }
    } else { f(y) }
  }
}
|}

let tree_source =
  {|
// immutable search tree: the paper's coarse-grained stability option
// ("declare only the root pointer stable and produce a new tree on each
// update") — all fields are final, so a compile-time-static tree folds
// into pure decision code.
class Tree {
  val key: int
  val value: int
  val left: Tree
  val right: Tree
  def init(key: int, value: int, left: Tree, right: Tree): unit = {
    this.key = key; this.value = value; this.left = left; this.right = right
  }
}

def tree_insert(t: Tree, k: int, v: int): Tree =
  if (t == null) new Tree(k, v, null, null)
  else if (k == t.key) new Tree(k, v, t.left, t.right)
  else if (k < t.key) new Tree(t.key, t.value, tree_insert(t.left, k, v), t.right)
  else new Tree(t.key, t.value, t.left, tree_insert(t.right, k, v))

def tree_lookup(t: Tree, k: int): int =
  if (t == null) 0 - 1
  else if (k == t.key) t.value
  else if (k < t.key) tree_lookup(t.left, k)
  else tree_lookup(t.right, k)

def build_tree(keys: array[int], values: array[int]): Tree = {
  var t: Tree = null;
  for (i <- 0 until keys.length) { t = tree_insert(t, keys[i], values[i]) };
  t
}

// compile the lookup against a static tree: recursion over static nodes
// unfolds completely (inline_always allows the recursive inlining)
def make_lookup(t: Tree): (int) -> int =
  Lancet.compile(fun (k: int) =>
    Lancet.inline_always(fun () => tree_lookup(t, k)))

// iterative lookup used for the generic (dynamic-tree) configuration
def lookup_iter(t0: Tree, k: int): int = {
  var t = t0;
  var r = 0 - 1;
  var go = true;
  while (go) {
    if (t == null) { go = false }
    else if (k == t.key) { r = t.value; go = false }
    else if (k < t.key) { t = t.left }
    else { t = t.right }
  };
  r
}

var groot: Tree = null
def set_root(t: Tree): unit = groot = t

// generic compiled lookup: the tree stays a runtime data structure
def make_lookup_generic(): (int) -> int =
  Lancet.compile(fun (k: int) => lookup_iter(groot, k))

// counting workload over a compiled lookup
def count_hits(lookup: (int) -> int, probes: array[int]): int = {
  var hits = 0;
  for (i <- 0 until probes.length) {
    if (lookup(probes[i]) >= 0) { hits = hits + 1 }
  };
  hits
}
|}

let boot_code_cache () =
  let rt = Lancet.Api.boot () in
  (rt, Mini.Front.load rt code_cache_source)

let boot_tree () =
  let rt = Lancet.Api.boot () in
  (rt, Mini.Front.load rt tree_source)
