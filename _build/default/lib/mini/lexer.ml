(* Hand-written lexer for Mini.  Tracks line/column positions; supports
   line (// ...) and block comments, string escapes, int and float literals. *)

open Ast

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string (* keywords *)
  | PUNCT of string (* operators and delimiters *)
  | EOF

let keywords =
  [
    "class"; "extends"; "def"; "val"; "var"; "if"; "else"; "while"; "for";
    "until"; "new"; "fun"; "true"; "false"; "null"; "this"; "array"; "farray";
    "int"; "float"; "bool"; "string"; "unit";
  ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_pos : pos;
}

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "<eof>"

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let current_pos lx = { line = lx.line; col = lx.col }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '/' when peek_char2 lx = Some '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_trivia lx
  | Some '/' when peek_char2 lx = Some '*' ->
    let start = current_pos lx in
    advance lx;
    advance lx;
    let rec go () =
      match peek_char lx, peek_char2 lx with
      | Some '*', Some '/' ->
        advance lx;
        advance lx
      | Some _, _ ->
        advance lx;
        go ()
      | None, _ -> syntax_error start "unterminated block comment"
    in
    go ();
    skip_trivia lx
  | _ -> ()

let lex_string lx =
  let start = current_pos lx in
  advance lx (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> syntax_error start "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek_char lx with
      | Some 'n' -> Buffer.add_char b '\n'; advance lx; go ()
      | Some 't' -> Buffer.add_char b '\t'; advance lx; go ()
      | Some 'r' -> Buffer.add_char b '\r'; advance lx; go ()
      | Some '\\' -> Buffer.add_char b '\\'; advance lx; go ()
      | Some '"' -> Buffer.add_char b '"'; advance lx; go ()
      | Some c -> syntax_error (current_pos lx) "bad escape '\\%c'" c
      | None -> syntax_error start "unterminated string literal")
    | Some c ->
      Buffer.add_char b c;
      advance lx;
      go ()
  in
  go ();
  STRING (Buffer.contents b)

let lex_number lx =
  let b = Buffer.create 8 in
  let rec digits () =
    match peek_char lx with
    | Some c when is_digit c ->
      Buffer.add_char b c;
      advance lx;
      digits ()
    | _ -> ()
  in
  digits ();
  let is_float =
    match peek_char lx, peek_char2 lx with
    | Some '.', Some c when is_digit c ->
      Buffer.add_char b '.';
      advance lx;
      digits ();
      true
    | _ -> false
  in
  let is_float =
    match peek_char lx with
    | Some ('e' | 'E') ->
      Buffer.add_char b 'e';
      advance lx;
      (match peek_char lx with
      | Some ('+' | '-' as c) ->
        Buffer.add_char b c;
        advance lx
      | _ -> ());
      digits ();
      true
    | _ -> is_float
  in
  let s = Buffer.contents b in
  if is_float then FLOAT (float_of_string s) else INT (int_of_string s)

let two_char_puncts =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "=>"; "<-"; "->" ]

let lex_token lx =
  skip_trivia lx;
  lx.tok_pos <- current_pos lx;
  match peek_char lx with
  | None -> EOF
  | Some '"' -> lex_string lx
  | Some c when is_digit c -> lex_number lx
  | Some c when is_ident_start c ->
    let b = Buffer.create 8 in
    let rec go () =
      match peek_char lx with
      | Some c when is_ident_char c ->
        Buffer.add_char b c;
        advance lx;
        go ()
      | _ -> ()
    in
    go ();
    let s = Buffer.contents b in
    if List.mem s keywords then KW s else IDENT s
  | Some c -> (
    let two =
      match peek_char2 lx with
      | Some c2 -> Printf.sprintf "%c%c" c c2
      | None -> ""
    in
    if List.mem two two_char_puncts then begin
      advance lx;
      advance lx;
      PUNCT two
    end
    else
      match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | ':' | '.' | '+' | '-'
      | '*' | '/' | '%' | '<' | '>' | '=' | '!' ->
        advance lx;
        PUNCT (String.make 1 c)
      | _ -> syntax_error (current_pos lx) "unexpected character '%c'" c)

let create src =
  let lx =
    { src; pos = 0; line = 1; col = 1; tok = EOF; tok_pos = no_pos }
  in
  lx.tok <- lex_token lx;
  lx

let peek lx = lx.tok
let pos lx = lx.tok_pos

let next lx =
  let t = lx.tok in
  lx.tok <- lex_token lx;
  t

(* Lex a whole string into a token list (used by lexer unit tests). *)
let tokens_of_string src =
  let lx = create src in
  let rec go acc =
    match next lx with EOF -> List.rev (EOF :: acc) | t -> go (t :: acc)
  in
  go []
