(* Recursive-descent / precedence-climbing parser for Mini. *)

open Ast

type t = Lexer.t

let expect_punct lx p =
  match Lexer.next lx with
  | Lexer.PUNCT q when String.equal p q -> ()
  | tok ->
    syntax_error (Lexer.pos lx) "expected '%s', found %s" p
      (Lexer.token_to_string tok)

let expect_kw lx k =
  match Lexer.next lx with
  | Lexer.KW q when String.equal k q -> ()
  | tok ->
    syntax_error (Lexer.pos lx) "expected '%s', found %s" k
      (Lexer.token_to_string tok)

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.IDENT s -> s
  | tok ->
    syntax_error (Lexer.pos lx) "expected identifier, found %s"
      (Lexer.token_to_string tok)

let accept_punct lx p =
  match Lexer.peek lx with
  | Lexer.PUNCT q when String.equal p q ->
    ignore (Lexer.next lx);
    true
  | _ -> false

let accept_kw lx k =
  match Lexer.peek lx with
  | Lexer.KW q when String.equal k q ->
    ignore (Lexer.next lx);
    true
  | _ -> false

let rec parse_ty lx : ty =
  match Lexer.next lx with
  | Lexer.KW "int" -> Tint
  | Lexer.KW "float" -> Tfloat
  | Lexer.KW "bool" -> Tbool
  | Lexer.KW "string" -> Tstring
  | Lexer.KW "unit" -> Tunit
  | Lexer.KW "farray" -> Tfarray
  | Lexer.KW "array" ->
    expect_punct lx "[";
    let t = parse_ty lx in
    expect_punct lx "]";
    Tarray t
  | Lexer.IDENT c -> Tclass c
  | Lexer.PUNCT "(" ->
    (* function type: (T1, ..., Tn) -> T *)
    let args =
      if accept_punct lx ")" then []
      else begin
        let rec go acc =
          let t = parse_ty lx in
          if accept_punct lx "," then go (t :: acc) else List.rev (t :: acc)
        in
        let args = go [] in
        expect_punct lx ")";
        args
      end
    in
    expect_punct lx "->";
    let r = parse_ty lx in
    Tfun (args, r)
  | tok ->
    syntax_error (Lexer.pos lx) "expected a type, found %s"
      (Lexer.token_to_string tok)

let parse_params lx : (string * ty) list =
  expect_punct lx "(";
  if accept_punct lx ")" then []
  else begin
    let rec go acc =
      let name = expect_ident lx in
      expect_punct lx ":";
      let t = parse_ty lx in
      if accept_punct lx "," then go ((name, t) :: acc)
      else List.rev ((name, t) :: acc)
    in
    let ps = go [] in
    expect_punct lx ")";
    ps
  end

let mk pos desc = { desc; pos }

let rec parse_expr lx : expr = parse_assign lx

and parse_assign lx =
  let pos = Lexer.pos lx in
  let lhs = parse_or lx in
  if accept_punct lx "=" then
    let rhs = parse_assign lx in
    mk pos (Eassign (lhs, rhs))
  else lhs

and parse_or lx =
  let pos = Lexer.pos lx in
  let a = parse_and lx in
  if accept_punct lx "||" then mk pos (Ebin (Or, a, parse_or lx)) else a

and parse_and lx =
  let pos = Lexer.pos lx in
  let a = parse_equality lx in
  if accept_punct lx "&&" then mk pos (Ebin (And, a, parse_and lx)) else a

and parse_equality lx =
  let pos = Lexer.pos lx in
  let a = parse_relational lx in
  if accept_punct lx "==" then mk pos (Ebin (Eq, a, parse_relational lx))
  else if accept_punct lx "!=" then mk pos (Ebin (Ne, a, parse_relational lx))
  else a

and parse_relational lx =
  let pos = Lexer.pos lx in
  let a = parse_additive lx in
  if accept_punct lx "<=" then mk pos (Ebin (Le, a, parse_additive lx))
  else if accept_punct lx ">=" then mk pos (Ebin (Ge, a, parse_additive lx))
  else if accept_punct lx "<" then mk pos (Ebin (Lt, a, parse_additive lx))
  else if accept_punct lx ">" then mk pos (Ebin (Gt, a, parse_additive lx))
  else a

and parse_additive lx =
  let pos = Lexer.pos lx in
  let rec go a =
    if accept_punct lx "+" then go (mk pos (Ebin (Add, a, parse_multiplicative lx)))
    else if accept_punct lx "-" then
      go (mk pos (Ebin (Sub, a, parse_multiplicative lx)))
    else a
  in
  go (parse_multiplicative lx)

and parse_multiplicative lx =
  let pos = Lexer.pos lx in
  let rec go a =
    if accept_punct lx "*" then go (mk pos (Ebin (Mul, a, parse_unary lx)))
    else if accept_punct lx "/" then go (mk pos (Ebin (Div, a, parse_unary lx)))
    else if accept_punct lx "%" then go (mk pos (Ebin (Rem, a, parse_unary lx)))
    else a
  in
  go (parse_unary lx)

and parse_unary lx =
  let pos = Lexer.pos lx in
  if accept_punct lx "!" then mk pos (Eun (Not, parse_unary lx))
  else if accept_punct lx "-" then mk pos (Eun (Neg, parse_unary lx))
  else parse_postfix lx

and parse_postfix lx =
  let e = parse_primary lx in
  parse_postfix_of lx e

and parse_postfix_of lx e =
  let pos = Lexer.pos lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "." ->
    ignore (Lexer.next lx);
    let name = expect_ident lx in
    if accept_punct lx "(" then
      let args = parse_args lx in
      parse_postfix_of lx (mk pos (Emethod (e, name, args)))
    else parse_postfix_of lx (mk pos (Efield (e, name)))
  | Lexer.PUNCT "(" ->
    ignore (Lexer.next lx);
    let args = parse_args lx in
    parse_postfix_of lx (mk pos (Ecall (e, args)))
  | Lexer.PUNCT "[" ->
    ignore (Lexer.next lx);
    let i = parse_expr lx in
    expect_punct lx "]";
    parse_postfix_of lx (mk pos (Eindex (e, i)))
  | _ -> e

and parse_args lx =
  (* the opening '(' has been consumed *)
  if accept_punct lx ")" then []
  else begin
    let rec go acc =
      let e = parse_expr lx in
      if accept_punct lx "," then go (e :: acc) else List.rev (e :: acc)
    in
    let args = go [] in
    expect_punct lx ")";
    args
  end

and parse_primary lx =
  let pos = Lexer.pos lx in
  match Lexer.next lx with
  | Lexer.INT i -> mk pos (Eint i)
  | Lexer.FLOAT f -> mk pos (Efloat f)
  | Lexer.STRING s -> mk pos (Estr s)
  | Lexer.KW "true" -> mk pos (Ebool true)
  | Lexer.KW "false" -> mk pos (Ebool false)
  | Lexer.KW "null" -> mk pos Enull
  | Lexer.KW "this" -> mk pos Ethis
  | Lexer.IDENT x -> mk pos (Eident x)
  | Lexer.PUNCT "(" ->
    let e = parse_expr lx in
    expect_punct lx ")";
    e
  | Lexer.PUNCT "{" -> parse_block_body lx pos
  | Lexer.KW "if" ->
    expect_punct lx "(";
    let c = parse_expr lx in
    expect_punct lx ")";
    let t = parse_expr lx in
    let f = if accept_kw lx "else" then Some (parse_expr lx) else None in
    mk pos (Eif (c, t, f))
  | Lexer.KW "while" ->
    expect_punct lx "(";
    let c = parse_expr lx in
    expect_punct lx ")";
    let body = parse_expr lx in
    mk pos (Ewhile (c, body))
  | Lexer.KW "for" ->
    expect_punct lx "(";
    let x = expect_ident lx in
    expect_punct lx "<-";
    let a = parse_expr lx in
    expect_kw lx "until";
    let b = parse_expr lx in
    expect_punct lx ")";
    let body = parse_expr lx in
    mk pos (Efor (x, a, b, body))
  | Lexer.KW "fun" ->
    let params = parse_params lx in
    expect_punct lx "=>";
    let body = parse_expr lx in
    mk pos (Elambda (params, body))
  | Lexer.KW "new" -> (
    match Lexer.peek lx with
    | Lexer.KW "array" ->
      ignore (Lexer.next lx);
      expect_punct lx "[";
      let t = parse_ty lx in
      expect_punct lx "]";
      expect_punct lx "(";
      let n = parse_expr lx in
      expect_punct lx ")";
      mk pos (Enewarr (Tarray t, n))
    | Lexer.KW "farray" ->
      ignore (Lexer.next lx);
      expect_punct lx "(";
      let n = parse_expr lx in
      expect_punct lx ")";
      mk pos (Enewarr (Tfarray, n))
    | _ ->
      let cls = expect_ident lx in
      expect_punct lx "(";
      let args = parse_args lx in
      mk pos (Enew (cls, args)))
  | tok ->
    syntax_error pos "expected an expression, found %s"
      (Lexer.token_to_string tok)

(* A statement is an expression or a val/var binding. *)
and parse_stmt lx =
  let pos = Lexer.pos lx in
  if accept_kw lx "val" then parse_binding lx pos false
  else if accept_kw lx "var" then parse_binding lx pos true
  else parse_expr lx

and parse_binding lx pos mutable_ =
  let name = expect_ident lx in
  let annot = if accept_punct lx ":" then Some (parse_ty lx) else None in
  expect_punct lx "=";
  let init = parse_expr lx in
  mk pos (Elet (mutable_, name, annot, init))

and parse_block_body lx pos =
  (* '{' already consumed; statements separated by ';' (trailing optional) *)
  let rec go acc =
    if accept_punct lx "}" then List.rev acc
    else begin
      let s = parse_stmt lx in
      if accept_punct lx ";" then go (s :: acc)
      else begin
        expect_punct lx "}";
        List.rev (s :: acc)
      end
    end
  in
  mk pos (Eblock (go []))

let parse_member lx : member =
  let pos = Lexer.pos lx in
  if accept_kw lx "val" then begin
    let name = expect_ident lx in
    expect_punct lx ":";
    let t = parse_ty lx in
    ignore (accept_punct lx ";");
    Mfield (true, name, t)
  end
  else if accept_kw lx "var" then begin
    let name = expect_ident lx in
    expect_punct lx ":";
    let t = parse_ty lx in
    ignore (accept_punct lx ";");
    Mfield (false, name, t)
  end
  else if accept_kw lx "def" then begin
    let name = expect_ident lx in
    let params = parse_params lx in
    expect_punct lx ":";
    let ret = parse_ty lx in
    expect_punct lx "=";
    let body = parse_expr lx in
    ignore (accept_punct lx ";");
    Mmethod (name, params, ret, body)
  end
  else
    syntax_error pos "expected a class member, found %s"
      (Lexer.token_to_string (Lexer.peek lx))

let rec parse_decl lx : decl =
  let pos = Lexer.pos lx in
  if accept_kw lx "class" then begin
    let name = expect_ident lx in
    let super = if accept_kw lx "extends" then Some (expect_ident lx) else None in
    expect_punct lx "{";
    let rec members acc =
      if accept_punct lx "}" then List.rev acc
      else members (parse_member lx :: acc)
    in
    Dclass (name, super, members [], pos)
  end
  else if accept_kw lx "def" then begin
    let name = expect_ident lx in
    let params = parse_params lx in
    expect_punct lx ":";
    let ret = parse_ty lx in
    expect_punct lx "=";
    let body = parse_expr lx in
    ignore (accept_punct lx ";");
    Dfun (name, params, ret, body, pos)
  end
  else if accept_kw lx "val" then parse_global lx pos false
  else if accept_kw lx "var" then parse_global lx pos true
  else
    syntax_error pos "expected a declaration, found %s"
      (Lexer.token_to_string (Lexer.peek lx))

and parse_global lx pos mutable_ =
  let name = expect_ident lx in
  let annot = if accept_punct lx ":" then Some (parse_ty lx) else None in
  expect_punct lx "=";
  let init = parse_expr lx in
  ignore (accept_punct lx ";");
  Dglobal (mutable_, name, annot, init, pos)

let parse_program (src : string) : program =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.EOF -> List.rev acc
    | _ -> go (parse_decl lx :: acc)
  in
  go []

let parse_expr_string (src : string) : expr =
  let lx = Lexer.create src in
  let e = parse_expr lx in
  (match Lexer.peek lx with
  | Lexer.EOF -> ()
  | tok ->
    syntax_error (Lexer.pos lx) "trailing input: %s" (Lexer.token_to_string tok));
  e
