(* Type checking and name resolution for Mini.  Produces a typed AST that
   the code generator consumes; all overloading (numeric vs string ops,
   static vs closure calls, builtin natives) is resolved here. *)

open Ast

(* ---------------- typed AST ---------------- *)

type texpr = { t : ty; tdesc : tdesc; tpos : pos }

and tdesc =
  | Cint of int
  | Cfloat of float
  | Cstr of string
  | Cbool of bool
  | Cnull
  | Local of string
  | GlobalRef of string
  | This
  | LetT of bool * string * texpr (* mutable?, name, init *)
  | AssignLocal of string * texpr
  | AssignGlobal of string * texpr
  | FieldGet of string * texpr * string (* class, receiver, field *)
  | FieldSet of string * texpr * string * texpr
  | ArrayGet of texpr * texpr
  | ArraySet of texpr * texpr * texpr
  | ArrayLen of texpr
  | Iarith of binop * texpr * texpr
  | Farith of binop * texpr * texpr
  | Icompare of binop * texpr * texpr
  | Fcompare of binop * texpr * texpr
  | StrConcat of texpr * texpr
  | StrEq of bool * texpr * texpr (* negate? *)
  | RefEq of bool * texpr * texpr
  | NullCheck of bool * texpr (* true: == null *)
  | AndT of texpr * texpr
  | OrT of texpr * texpr
  | NotT of texpr
  | INegT of texpr
  | FNegT of texpr
  | I2FT of texpr
  | F2IT of texpr
  | IfT of texpr * texpr * texpr option
  | WhileT of texpr * texpr
  | ForT of string * texpr * texpr * texpr
  | BlockT of texpr list
  | CallFun of string * texpr list (* top-level function *)
  | CallBuiltin of string * string * texpr list (* native class static *)
  | CallMethod of string * texpr * string * texpr list (* static class, recv *)
  | CallClosure of texpr * texpr list
  | NewT of string * texpr list
  | NewArrT of ty * texpr
  | LambdaT of (string * ty) list * ty * texpr

(* ---------------- symbol tables ---------------- *)

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_fields : (string * ty * bool) list; (* own fields: name, ty, final *)
  ci_methods : (string * ((string * ty) list * ty)) list;
}

type genv = {
  classes : (string, class_info) Hashtbl.t;
  funs : (string, (string * ty) list * ty) Hashtbl.t;
  globals : (string, ty * bool) Hashtbl.t; (* ty, mutable *)
}

let builtin_classes = [ "Sys"; "Str"; "Math"; "Arr"; "Lancet"; "Dom" ]

(* native class names registered by embedders (e.g. SafeInt's Big) *)
let extra_builtin_classes : string list ref = ref []

let is_builtin_class x =
  List.mem x builtin_classes || List.mem x !extra_builtin_classes

let register_builtin_class name =
  if not (is_builtin_class name) then
    extra_builtin_classes := name :: !extra_builtin_classes

let find_class genv pos name =
  match Hashtbl.find_opt genv.classes name with
  | Some ci -> ci
  | None -> type_error pos "unknown class %s" name

(* field lookup walks the superclass chain; returns defining class too *)
let rec lookup_field genv pos cls name =
  let ci = find_class genv pos cls in
  match List.find_opt (fun (n, _, _) -> String.equal n name) ci.ci_fields with
  | Some (_, ty, final) -> (cls, ty, final)
  | None -> (
    match ci.ci_super with
    | Some s -> lookup_field genv pos s name
    | None -> type_error pos "class %s has no field %s" cls name)

let rec lookup_method genv pos cls name =
  let ci = find_class genv pos cls in
  match List.assoc_opt name ci.ci_methods with
  | Some sg -> Some sg
  | None -> (
    match ci.ci_super with
    | Some s -> lookup_method genv pos s name
    | None -> None)

let rec is_subclass genv sub super =
  String.equal sub super
  ||
  match Hashtbl.find_opt genv.classes sub with
  | Some { ci_super = Some s; _ } -> is_subclass genv s super
  | _ -> false

(* assignability: reflexive, null to references, subclassing *)
let rec assignable genv ~(src : ty) ~(dst : ty) =
  match src, dst with
  | Tnull, (Tclass _ | Tstring | Tarray _ | Tfarray | Tfun _ | Tnull) -> true
  | Tclass a, Tclass b -> is_subclass genv a b
  | Tarray a, Tarray b -> a = b
  | Tfun (a1, r1), Tfun (a2, r2) ->
    List.length a1 = List.length a2
    && List.for_all2 (fun x y -> x = y) a1 a2
    && assignable genv ~src:r1 ~dst:r2
  | a, b -> a = b

let check_assignable genv pos ~src ~dst what =
  if not (assignable genv ~src ~dst) then
    type_error pos "%s: expected %s, got %s" what (ty_to_string dst)
      (ty_to_string src)

(* least upper bound of branch types for if/else *)
let lub_ty genv pos a b =
  if assignable genv ~src:a ~dst:b then b
  else if assignable genv ~src:b ~dst:a then a
  else type_error pos "branches have incompatible types %s and %s"
         (ty_to_string a) (ty_to_string b)

(* ---------------- local environments ---------------- *)

type local = { l_ty : ty; l_mutable : bool }

type env = {
  genv : genv;
  mutable locals : (string * local) list; (* innermost first *)
  self : string option; (* enclosing class *)
  in_init : bool; (* inside an init method: final fields writable *)
}

let lookup_local env name = List.assoc_opt name env.locals

let with_locals env binds =
  { env with locals = binds @ env.locals }

(* ---------------- builtin native signatures ---------------- *)

(* Concrete monomorphic builtins; generic ones are special-cased below. *)
let builtin_sigs : (string * string, ty list * ty) Hashtbl.t =
  let h = Hashtbl.create 64 in
  let add cls name args ret = Hashtbl.replace h (cls, name) (args, ret) in
  add "Sys" "read_file" [ Tstring ] Tstring;
  add "Sys" "write_file" [ Tstring; Tstring ] Tunit;
  add "Sys" "time_ms" [] Tfloat;
  add "Sys" "steps" [] Tint;
  add "Str" "len" [ Tstring ] Tint;
  add "Str" "concat" [ Tstring; Tstring ] Tstring;
  add "Str" "split" [ Tstring; Tstring ] (Tarray Tstring);
  add "Str" "index_of" [ Tstring; Tstring ] Tint;
  add "Str" "char_at" [ Tstring; Tint ] Tint;
  add "Str" "sub" [ Tstring; Tint; Tint ] Tstring;
  add "Str" "of_int" [ Tint ] Tstring;
  add "Str" "of_float" [ Tfloat ] Tstring;
  add "Str" "of_char" [ Tint ] Tstring;
  add "Str" "to_int" [ Tstring ] Tint;
  add "Str" "to_float" [ Tstring ] Tfloat;
  add "Str" "eq" [ Tstring; Tstring ] Tbool;
  add "Str" "cmp" [ Tstring; Tstring ] Tint;
  add "Math" "sqrt" [ Tfloat ] Tfloat;
  add "Math" "exp" [ Tfloat ] Tfloat;
  add "Math" "log" [ Tfloat ] Tfloat;
  add "Math" "fabs" [ Tfloat ] Tfloat;
  add "Math" "pow" [ Tfloat; Tfloat ] Tfloat;
  add "Math" "iabs" [ Tint ] Tint;
  add "Math" "imin" [ Tint; Tint ] Tint;
  add "Math" "imax" [ Tint; Tint ] Tint;
  add "Math" "fmin" [ Tfloat; Tfloat ] Tfloat;
  add "Math" "fmax" [ Tfloat; Tfloat ] Tfloat;
  add "Lancet" "likely" [ Tbool ] Tbool;
  add "Lancet" "speculate" [ Tbool ] Tbool;
  add "Lancet" "stable" [ Tfun ([], Tbool) ] Tbool;
  add "Lancet" "slowpath" [] Tunit;
  add "Lancet" "fastpath" [] Tunit;
  add "Lancet" "ntimes" [ Tint; Tfun ([ Tint ], Tunit) ] Tunit;
  h

let register_builtin_sig ~cls ~name args ret =
  Hashtbl.replace builtin_sigs (cls, name) (args, ret)

let scoped_directives =
  [
    "inline_always"; "inline_never"; "inline_nonrec"; "unroll_top_level";
    "check_no_alloc"; "check_no_leak";
  ]

(* Typing for builtins whose signature is generic. *)
let type_builtin genv pos cls name (targs : texpr list) : ty =
  let arg i =
    match List.nth_opt targs i with
    | Some a -> a
    | None -> type_error pos "%s.%s: missing argument %d" cls name i
  in
  let arity n =
    if List.length targs <> n then
      type_error pos "%s.%s expects %d argument(s), got %d" cls name n
        (List.length targs)
  in
  match cls, name with
  | "Sys", ("print" | "println") ->
    arity 1;
    Tunit
  | "Sys", "veq" ->
    arity 2;
    Tbool
  | "Arr", "copy" -> (
    arity 1;
    match (arg 0).t with
    | (Tarray _ | Tfarray) as t -> t
    | t -> type_error pos "Arr.copy: not an array: %s" (ty_to_string t))
  | "Arr", "fill" -> (
    arity 2;
    match (arg 0).t, (arg 1).t with
    | Tarray e, s when assignable genv ~src:s ~dst:e -> Tunit
    | Tfarray, Tfloat -> Tunit
    | t, _ -> type_error pos "Arr.fill: bad arguments (%s)" (ty_to_string t))
  | "Lancet", "compile" -> (
    arity 1;
    match (arg 0).t with
    | Tfun _ as t -> t
    | t -> type_error pos "Lancet.compile: expected a function, got %s" (ty_to_string t))
  | "Lancet", "freeze" -> (
    arity 1;
    match (arg 0).t with
    | Tfun ([], r) -> r
    | t -> type_error pos "Lancet.freeze: expected a thunk, got %s" (ty_to_string t))
  | "Lancet", ("unroll" | "taint" | "untaint") ->
    arity 1;
    (arg 0).t
  | "Lancet", d when List.mem d scoped_directives -> (
    arity 1;
    match (arg 0).t with
    | Tfun ([], r) -> r
    | t -> type_error pos "Lancet.%s: expected a thunk, got %s" d (ty_to_string t))
  | "Lancet", "reset" -> (
    arity 1;
    match (arg 0).t with
    | Tfun ([], r) -> r
    | t -> type_error pos "Lancet.reset: expected a thunk, got %s" (ty_to_string t))
  | "Lancet", "shift" -> (
    arity 1;
    match (arg 0).t with
    | Tfun ([ Tfun ([ t ], r) ], r') when r = r' -> t
    | t ->
      type_error pos
        "Lancet.shift: expected ((T) -> R) -> R, got %s" (ty_to_string t))
  | "Lancet", ("at_scope" | "in_scope") -> (
    arity 3;
    check_assignable genv pos ~src:(arg 0).t ~dst:Tstring "at_scope pattern";
    check_assignable genv pos ~src:(arg 1).t ~dst:Tstring "at_scope directive";
    match (arg 2).t with
    | Tfun ([], r) -> r
    | t -> type_error pos "at_scope: expected a thunk, got %s" (ty_to_string t))
  | _ -> (
    match Hashtbl.find_opt builtin_sigs (cls, name) with
    | Some (atys, ret) ->
      arity (List.length atys);
      List.iteri
        (fun i want ->
          check_assignable genv pos ~src:(List.nth targs i).t ~dst:want
            (Printf.sprintf "%s.%s argument %d" cls name (i + 1)))
        atys;
      ret
    | None -> type_error pos "unknown builtin %s.%s" cls name)

(* ---------------- expression checking ---------------- *)

let mk t pos tdesc = { t; tdesc; tpos = pos }

let coerce_num genv pos a b =
  (* returns (a', b', is_float) with implicit int->float coercion *)
  ignore genv;
  match a.t, b.t with
  | Tint, Tint -> (a, b, false)
  | Tfloat, Tfloat -> (a, b, true)
  | Tint, Tfloat -> (mk Tfloat a.tpos (I2FT a), b, true)
  | Tfloat, Tint -> (a, mk Tfloat b.tpos (I2FT b), true)
  | ta, tb ->
    type_error pos "numeric operation on %s and %s" (ty_to_string ta)
      (ty_to_string tb)

let rec check env (e : expr) : texpr =
  let pos = e.pos in
  match e.desc with
  | Eint i -> mk Tint pos (Cint i)
  | Efloat f -> mk Tfloat pos (Cfloat f)
  | Estr s -> mk Tstring pos (Cstr s)
  | Ebool b -> mk Tbool pos (Cbool b)
  | Enull -> mk Tnull pos Cnull
  | Ethis -> (
    match env.self with
    | Some c -> mk (Tclass c) pos This
    | None -> type_error pos "'this' outside of a class")
  | Eident x -> (
    match lookup_local env x with
    | Some l -> mk l.l_ty pos (Local x)
    | None -> (
      match Hashtbl.find_opt env.genv.globals x with
      | Some (t, _) -> mk t pos (GlobalRef x)
      | None -> type_error pos "unbound variable %s" x))
  | Elet (mut, name, annot, init) ->
    let tinit = check env init in
    let t =
      match annot with
      | Some t ->
        check_assignable env.genv pos ~src:tinit.t ~dst:t
          (Printf.sprintf "initializer of %s" name);
        t
      | None -> (
        match tinit.t with
        | Tnull -> type_error pos "cannot infer the type of %s from null" name
        | t -> t)
    in
    env.locals <- (name, { l_ty = t; l_mutable = mut }) :: env.locals;
    mk Tunit pos (LetT (mut, name, tinit))
  | Eassign (lhs, rhs) -> check_assign env pos lhs rhs
  | Efield (obj, name) -> (
    let tobj = check_maybe_class env obj in
    match tobj with
    | `Class cls -> type_error pos "%s.%s: not a value" cls name
    | `Expr tobj -> (
      match tobj.t, name with
      | (Tarray _ | Tfarray), "length" -> mk Tint pos (ArrayLen tobj)
      | Tclass c, _ ->
        let _, ty, _ = lookup_field env.genv pos c name in
        mk ty pos (FieldGet (c, tobj, name))
      | t, _ -> type_error pos "field access on %s" (ty_to_string t)))
  | Eindex (a, i) -> (
    let ta = check env a in
    let ti = check env i in
    check_assignable env.genv pos ~src:ti.t ~dst:Tint "array index";
    match ta.t with
    | Tarray elem -> mk elem pos (ArrayGet (ta, ti))
    | Tfarray -> mk Tfloat pos (ArrayGet (ta, ti))
    | t -> type_error pos "indexing a non-array %s" (ty_to_string t))
  | Ebin (op, a, b) -> check_bin env pos op a b
  | Eun (Not, a) ->
    let ta = check env a in
    check_assignable env.genv pos ~src:ta.t ~dst:Tbool "operand of !";
    mk Tbool pos (NotT ta)
  | Eun (Neg, a) -> (
    let ta = check env a in
    match ta.t with
    | Tint -> mk Tint pos (INegT ta)
    | Tfloat -> mk Tfloat pos (FNegT ta)
    | t -> type_error pos "negation of %s" (ty_to_string t))
  | Eif (c, t, f) -> (
    let tc = check env c in
    check_assignable env.genv pos ~src:tc.t ~dst:Tbool "if condition";
    let scope = env.locals in
    let tt = check env t in
    env.locals <- scope;
    match f with
    | None -> mk Tunit pos (IfT (tc, tt, None))
    | Some f ->
      let tf = check env f in
      env.locals <- scope;
      let ty = lub_ty env.genv pos tt.t tf.t in
      mk ty pos (IfT (tc, tt, Some tf)))
  | Ewhile (c, body) ->
    let tc = check env c in
    check_assignable env.genv pos ~src:tc.t ~dst:Tbool "while condition";
    let scope = env.locals in
    let tbody = check env body in
    env.locals <- scope;
    mk Tunit pos (WhileT (tc, tbody))
  | Efor (x, a, b, body) ->
    let ta = check env a and tb = check env b in
    check_assignable env.genv pos ~src:ta.t ~dst:Tint "for lower bound";
    check_assignable env.genv pos ~src:tb.t ~dst:Tint "for upper bound";
    let scope = env.locals in
    env.locals <- (x, { l_ty = Tint; l_mutable = false }) :: env.locals;
    let tbody = check env body in
    env.locals <- scope;
    mk Tunit pos (ForT (x, ta, tb, tbody))
  | Eblock es ->
    let scope = env.locals in
    let ts = List.map (check env) es in
    env.locals <- scope;
    let t = match List.rev ts with [] -> Tunit | last :: _ -> last.t in
    mk t pos (BlockT ts)
  | Ecall ({ desc = Eident f; _ }, args) when lookup_local env f = None -> (
    (* not a local: top-level function or intrinsic *)
    match Hashtbl.find_opt env.genv.funs f with
    | Some (params, ret) ->
      let targs = check_args env pos f params args in
      mk ret pos (CallFun (f, targs))
    | None -> (
      match f, args with
      | "i2f", [ a ] ->
        let ta = check env a in
        check_assignable env.genv pos ~src:ta.t ~dst:Tint "i2f";
        mk Tfloat pos (I2FT ta)
      | "f2i", [ a ] ->
        let ta = check env a in
        check_assignable env.genv pos ~src:ta.t ~dst:Tfloat "f2i";
        mk Tint pos (F2IT ta)
      | _ -> (
        match Hashtbl.find_opt env.genv.globals f with
        | Some (Tfun (ptys, ret), _) ->
          let targs = check_closure_args env pos ptys args in
          mk ret pos
            (CallClosure (mk (Tfun (ptys, ret)) pos (GlobalRef f), targs))
        | Some (t, _) ->
          type_error pos "%s is not callable (type %s)" f (ty_to_string t)
        | None -> type_error pos "unknown function %s" f)))
  | Ecall (f, args) -> (
    let tf = check env f in
    match tf.t with
    | Tfun (ptys, ret) ->
      let targs = check_closure_args env pos ptys args in
      mk ret pos (CallClosure (tf, targs))
    | t -> type_error pos "calling a non-function %s" (ty_to_string t))
  | Emethod (recv, name, args) -> (
    let trecv = check_maybe_class env recv in
    match trecv with
    | `Class cls when is_builtin_class cls ->
      let targs = List.map (check env) args in
      let ret = type_builtin env.genv pos cls name targs in
      mk ret pos (CallBuiltin (cls, name, targs))
    | `Class cls -> type_error pos "class %s has no static methods" cls
    | `Expr trecv -> (
      match trecv.t with
      | Tclass c -> (
        match lookup_method env.genv pos c name with
        | Some (params, ret) ->
          let targs = check_args env pos (c ^ "." ^ name) params args in
          mk ret pos (CallMethod (c, trecv, name, targs))
        | None -> (
          (* method-valued field: obj.f(x) where f is a closure field *)
          match lookup_field env.genv pos c name with
          | _, Tfun (ptys, ret), _ ->
            let targs = check_closure_args env pos ptys args in
            let fld = mk (Tfun (ptys, ret)) pos (FieldGet (c, trecv, name)) in
            mk ret pos (CallClosure (fld, targs))
          | _ -> type_error pos "class %s has no method %s" c name
          | exception Type_error _ ->
            type_error pos "class %s has no method %s" c name))
      | t -> type_error pos "method call on %s" (ty_to_string t)))
  | Enew (cls, args) -> (
    ignore (find_class env.genv pos cls);
    match lookup_method env.genv pos cls "init" with
    | Some (params, ret) ->
      if ret <> Tunit then type_error pos "%s.init must return unit" cls;
      let targs = check_args env pos (cls ^ ".init") params args in
      mk (Tclass cls) pos (NewT (cls, targs))
    | None ->
      if args <> [] then
        type_error pos "class %s has no init but got constructor arguments" cls;
      mk (Tclass cls) pos (NewT (cls, [])))
  | Enewarr (ty, n) ->
    let tn = check env n in
    check_assignable env.genv pos ~src:tn.t ~dst:Tint "array size";
    (match ty with
    | Tarray (Tclass c) -> ignore (find_class env.genv pos c)
    | _ -> ());
    mk ty pos (NewArrT (ty, tn))
  | Elambda (params, body) ->
    let scope = env.locals in
    env.locals <-
      List.map (fun (x, t) -> (x, { l_ty = t; l_mutable = false })) params
      @ env.locals;
    let tbody = check env body in
    env.locals <- scope;
    let t = Tfun (List.map snd params, tbody.t) in
    mk t pos (LambdaT (params, tbody.t, tbody))

(* an identifier in receiver position may be a (builtin or user) class name *)
and check_maybe_class env (e : expr) =
  match e.desc with
  | Eident x
    when lookup_local env x = None
         && not (Hashtbl.mem env.genv.globals x)
         && (is_builtin_class x || Hashtbl.mem env.genv.classes x) ->
    `Class x
  | _ -> `Expr (check env e)

and check_args env pos what params args =
  if List.length params <> List.length args then
    type_error pos "%s expects %d argument(s), got %d" what
      (List.length params) (List.length args);
  List.map2
    (fun (pname, pty) a ->
      let ta = check env a in
      check_assignable env.genv pos ~src:ta.t ~dst:pty
        (Printf.sprintf "%s argument %s" what pname);
      ta)
    params args

and check_closure_args env pos ptys args =
  if List.length ptys <> List.length args then
    type_error pos "closure expects %d argument(s), got %d" (List.length ptys)
      (List.length args);
  List.map2
    (fun pty a ->
      let ta = check env a in
      check_assignable env.genv pos ~src:ta.t ~dst:pty "closure argument";
      ta)
    ptys args

and check_assign env pos lhs rhs =
  let trhs = check env rhs in
  match lhs.desc with
  | Eident x -> (
    match lookup_local env x with
    | Some l ->
      if not l.l_mutable then type_error pos "%s is immutable (val)" x;
      check_assignable env.genv pos ~src:trhs.t ~dst:l.l_ty
        (Printf.sprintf "assignment to %s" x);
      mk Tunit pos (AssignLocal (x, trhs))
    | None -> (
      match Hashtbl.find_opt env.genv.globals x with
      | Some (t, mut) ->
        if not mut then type_error pos "global %s is immutable (val)" x;
        check_assignable env.genv pos ~src:trhs.t ~dst:t
          (Printf.sprintf "assignment to %s" x);
        mk Tunit pos (AssignGlobal (x, trhs))
      | None -> type_error pos "unbound variable %s" x))
  | Efield (obj, name) -> (
    let tobj = check env obj in
    match tobj.t with
    | Tclass c ->
      let owner, fty, final = lookup_field env.genv pos c name in
      if final && not (env.in_init && env.self = Some owner) then
        type_error pos "field %s.%s is final" owner name;
      check_assignable env.genv pos ~src:trhs.t ~dst:fty
        (Printf.sprintf "assignment to field %s" name);
      mk Tunit pos (FieldSet (c, tobj, name, trhs))
    | t -> type_error pos "field assignment on %s" (ty_to_string t))
  | Eindex (a, i) -> (
    let ta = check env a and ti = check env i in
    check_assignable env.genv pos ~src:ti.t ~dst:Tint "array index";
    match ta.t with
    | Tarray elem ->
      check_assignable env.genv pos ~src:trhs.t ~dst:elem "array store";
      mk Tunit pos (ArraySet (ta, ti, trhs))
    | Tfarray ->
      check_assignable env.genv pos ~src:trhs.t ~dst:Tfloat "farray store";
      mk Tunit pos (ArraySet (ta, ti, trhs))
    | t -> type_error pos "indexed assignment on %s" (ty_to_string t))
  | _ -> type_error pos "invalid assignment target"

and check_bin env pos op a b =
  let ta = check env a and tb = check env b in
  match op with
  | Add when ta.t = Tstring || tb.t = Tstring ->
    mk Tstring pos (StrConcat (ta, tb))
  | Add | Sub | Mul | Div | Rem ->
    let ta, tb, is_float = coerce_num env.genv pos ta tb in
    if is_float then begin
      if op = Rem then type_error pos "%% is not defined on floats";
      mk Tfloat pos (Farith (op, ta, tb))
    end
    else mk Tint pos (Iarith (op, ta, tb))
  | Lt | Le | Gt | Ge -> (
    match ta.t, tb.t with
    | Tstring, Tstring ->
      (* lexicographic comparison via Str.cmp *)
      let cmp =
        mk Tint pos (CallBuiltin ("Str", "cmp", [ ta; tb ]))
      in
      mk Tbool pos (Icompare (op, cmp, mk Tint pos (Cint 0)))
    | _ ->
      let ta, tb, is_float = coerce_num env.genv pos ta tb in
      if is_float then mk Tbool pos (Fcompare (op, ta, tb))
      else mk Tbool pos (Icompare (op, ta, tb)))
  | Eq | Ne -> (
    let neg = op = Ne in
    match ta.t, tb.t with
    | Tnull, _ -> mk Tbool pos (NullCheck (not neg, tb))
    | _, Tnull -> mk Tbool pos (NullCheck (not neg, ta))
    | (Tint | Tbool), (Tint | Tbool) -> mk Tbool pos (Icompare (op, ta, tb))
    | Tfloat, Tfloat -> mk Tbool pos (Fcompare (op, ta, tb))
    | Tstring, Tstring -> mk Tbool pos (StrEq (neg, ta, tb))
    | (Tclass _ | Tarray _ | Tfarray | Tfun _), (Tclass _ | Tarray _ | Tfarray | Tfun _)
      ->
      mk Tbool pos (RefEq (neg, ta, tb))
    | x, y ->
      type_error pos "equality between %s and %s" (ty_to_string x)
        (ty_to_string y))
  | And ->
    check_assignable env.genv pos ~src:ta.t ~dst:Tbool "operand of &&";
    check_assignable env.genv pos ~src:tb.t ~dst:Tbool "operand of &&";
    mk Tbool pos (AndT (ta, tb))
  | Or ->
    check_assignable env.genv pos ~src:ta.t ~dst:Tbool "operand of ||";
    check_assignable env.genv pos ~src:tb.t ~dst:Tbool "operand of ||";
    mk Tbool pos (OrT (ta, tb))

(* ---------------- program checking ---------------- *)

type tprogram = {
  p_classes : tclass list;
  p_funs : (string * (string * ty) list * ty * texpr) list;
  p_globals : (string * bool * texpr) list; (* in declaration order *)
  p_genv : genv;
}

and tclass = {
  tc_name : string;
  tc_super : string option;
  tc_fields : (string * ty * bool) list;
  tc_methods : (string * (string * ty) list * ty * texpr) list;
}

let collect_signatures (prog : program) : genv =
  let genv =
    {
      classes = Hashtbl.create 16;
      funs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
    }
  in
  List.iter
    (fun d ->
      match d with
      | Dclass (name, super, members, pos) ->
        if Hashtbl.mem genv.classes name || is_builtin_class name then
          type_error pos "class %s redeclared" name;
        let fields =
          List.filter_map
            (function Mfield (f, n, t) -> Some (n, t, f) | Mmethod _ -> None)
            members
        in
        let methods =
          List.filter_map
            (function
              | Mmethod (n, ps, r, _) -> Some (n, (ps, r))
              | Mfield _ -> None)
            members
        in
        Hashtbl.replace genv.classes name
          { ci_name = name; ci_super = super; ci_fields = fields; ci_methods = methods }
      | Dfun (name, params, ret, _, pos) ->
        if Hashtbl.mem genv.funs name then
          type_error pos "function %s redeclared" name;
        Hashtbl.replace genv.funs name (params, ret)
      | Dglobal (mut, name, _, _, pos) ->
        if Hashtbl.mem genv.globals name then
          type_error pos "global %s redeclared" name;
        (* type filled in during checking; placeholder for forward refs *)
        ignore mut;
        ignore pos)
    prog;
  genv

let check_override genv pos cls name sg =
  match
    Option.bind
      (Hashtbl.find_opt genv.classes cls)
      (fun ci -> Option.bind ci.ci_super (fun s -> lookup_method genv pos s name))
  with
  | Some sg' when sg <> sg' ->
    type_error pos "%s.%s overrides a method with a different signature" cls name
  | _ -> ()

let check_program (prog : program) : tprogram =
  let genv = collect_signatures prog in
  (* validate super chains exist and are acyclic *)
  Hashtbl.iter
    (fun name ci ->
      match ci.ci_super with
      | None -> ()
      | Some s ->
        if not (Hashtbl.mem genv.classes s) then
          type_error no_pos "class %s extends unknown class %s" name s;
        let rec walk seen c =
          if List.mem c seen then
            type_error no_pos "inheritance cycle involving %s" c;
          match Hashtbl.find_opt genv.classes c with
          | Some { ci_super = Some s'; _ } -> walk (c :: seen) s'
          | _ -> ()
        in
        walk [ name ] s)
    genv.classes;
  (* globals must be checked in order (their initializers may use earlier
     globals and any function) *)
  let tglobals = ref [] in
  let tfuns = ref [] in
  let tclasses = ref [] in
  List.iter
    (fun d ->
      match d with
      | Dglobal (mut, name, annot, init, pos) ->
        let env = { genv; locals = []; self = None; in_init = false } in
        let tinit = check env init in
        let t =
          match annot with
          | Some t ->
            check_assignable genv pos ~src:tinit.t ~dst:t
              (Printf.sprintf "initializer of global %s" name);
            t
          | None -> (
            match tinit.t with
            | Tnull -> type_error pos "cannot infer the type of %s from null" name
            | t -> t)
        in
        Hashtbl.replace genv.globals name (t, mut);
        tglobals := (name, mut, tinit) :: !tglobals
      | Dfun (name, params, ret, body, pos) ->
        let env =
          {
            genv;
            locals =
              List.map (fun (x, t) -> (x, { l_ty = t; l_mutable = false })) params;
            self = None;
            in_init = false;
          }
        in
        let tbody = check env body in
        if ret <> Tunit then
          check_assignable genv pos ~src:tbody.t ~dst:ret
            (Printf.sprintf "body of %s" name);
        tfuns := (name, params, ret, tbody) :: !tfuns
      | Dclass (cname, super, members, pos) ->
        let tmethods =
          List.filter_map
            (function
              | Mfield _ -> None
              | Mmethod (mname, params, ret, body) ->
                check_override genv pos cname mname (params, ret);
                let env =
                  {
                    genv;
                    locals =
                      List.map
                        (fun (x, t) -> (x, { l_ty = t; l_mutable = false }))
                        params;
                    self = Some cname;
                    in_init = String.equal mname "init";
                  }
                in
                let tbody = check env body in
                if ret <> Tunit then
                  check_assignable genv pos ~src:tbody.t ~dst:ret
                    (Printf.sprintf "body of %s.%s" cname mname);
                Some (mname, params, ret, tbody))
            members
        in
        let fields =
          List.filter_map
            (function Mfield (f, n, t) -> Some (n, t, f) | Mmethod _ -> None)
            members
        in
        tclasses :=
          { tc_name = cname; tc_super = super; tc_fields = fields; tc_methods = tmethods }
          :: !tclasses)
    prog;
  {
    p_classes = List.rev !tclasses;
    p_funs = List.rev !tfuns;
    p_globals = List.rev !tglobals;
    p_genv = genv;
  }
