lib/mini/typecheck.ml: Ast Hashtbl List Option Printf String
