lib/mini/codegen.ml: Ast Hashtbl List Option Printf Set String Typecheck Vm
