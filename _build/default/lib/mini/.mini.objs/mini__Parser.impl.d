lib/mini/parser.ml: Ast Lexer List String
