lib/mini/front.ml: Ast Codegen Format Parser Printexc Typecheck Vm
