lib/mini/ast.ml: Format
