(* Abstract syntax of Mini, the small Scala-flavoured source language in
   which all the paper's example programs are written.  Programs are compiled
   to VM bytecode by [Codegen]; they never run any other way, so Mini plays
   the role scalac plays in the paper. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf p = Format.fprintf ppf "line %d, col %d" p.line p.col

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tstring
  | Tunit
  | Tarray of ty
  | Tfarray
  | Tclass of string
  | Tfun of ty list * ty
  | Tnull (* type of the [null] literal; compatible with any reference *)

let rec pp_ty ppf = function
  | Tint -> Format.fprintf ppf "int"
  | Tfloat -> Format.fprintf ppf "float"
  | Tbool -> Format.fprintf ppf "bool"
  | Tstring -> Format.fprintf ppf "string"
  | Tunit -> Format.fprintf ppf "unit"
  | Tarray t -> Format.fprintf ppf "array[%a]" pp_ty t
  | Tfarray -> Format.fprintf ppf "farray"
  | Tclass c -> Format.fprintf ppf "%s" c
  | Tfun (args, r) ->
    Format.fprintf ppf "(%a) -> %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_ty)
      args pp_ty r
  | Tnull -> Format.fprintf ppf "null"

let ty_to_string t = Format.asprintf "%a" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Rem
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or (* short-circuiting *)

type unop = Not | Neg

type expr = { desc : desc; pos : pos }

and desc =
  | Eint of int
  | Efloat of float
  | Estr of string
  | Ebool of bool
  | Enull
  | Eident of string (* local, global, or class name (resolved by the checker) *)
  | Ethis
  | Elet of bool * string * ty option * expr (* mutable?, name, annot, init *)
  | Eassign of expr * expr (* lvalue = rvalue *)
  | Efield of expr * string
  | Eindex of expr * expr
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eif of expr * expr * expr option
  | Ewhile of expr * expr
  | Efor of string * expr * expr * expr (* for (x <- a until b) body *)
  | Eblock of expr list
  | Ecall of expr * expr list (* f(args): top-level fn, closure, or intrinsic *)
  | Emethod of expr * string * expr list (* e.m(args) or Class.m(args) *)
  | Enew of string * expr list
  | Enewarr of ty * expr (* new array[ty](n); ty = Tfarray for new farray(n) *)
  | Elambda of (string * ty) list * expr

type member =
  | Mfield of bool * string * ty (* final?, name, type *)
  | Mmethod of string * (string * ty) list * ty * expr

type decl =
  | Dclass of string * string option * member list * pos
  | Dfun of string * (string * ty) list * ty * expr * pos
  | Dglobal of bool * string * ty option * expr * pos (* mutable? *)

type program = decl list

exception Syntax_error of pos * string
exception Type_error of pos * string

let syntax_error pos fmt =
  Format.kasprintf (fun s -> raise (Syntax_error (pos, s))) fmt

let type_error pos fmt =
  Format.kasprintf (fun s -> raise (Type_error (pos, s))) fmt
