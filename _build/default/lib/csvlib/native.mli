(** Hand-written OCaml CSV processing — the "C++" row of Table 1: direct
    column indices, no record abstraction, no name lookup. *)

val accessed_indices : int array
val flag_index : int

val process : string -> int
(** Native-int accumulation. *)

val process_wrapped : string -> int
(** Accumulation with the VM's 32-bit wrap semantics; this is the reference
    the other configurations are checked against. *)

val read_file : string -> string
