lib/csvlib/gen.mli:
