lib/csvlib/harness.ml: Lancet Mini Mini_src Native Unix Vm
