lib/csvlib/harness.mli:
