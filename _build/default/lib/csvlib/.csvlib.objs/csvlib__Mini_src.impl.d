lib/csvlib/mini_src.ml:
