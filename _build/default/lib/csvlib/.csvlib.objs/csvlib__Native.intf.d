lib/csvlib/native.mli:
