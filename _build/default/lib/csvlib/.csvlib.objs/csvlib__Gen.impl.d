lib/csvlib/gen.ml: Buffer List Printf Random String
