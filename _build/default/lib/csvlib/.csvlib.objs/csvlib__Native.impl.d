lib/csvlib/native.ml: Array List String Vm
