(* Synthetic CSV data in the shape of the paper's Table 1 workload:
   20 columns, of which 10 are accessed by name; one flag column. *)

let cols = 20

let header =
  String.concat "," (List.init cols (fun i -> Printf.sprintf "K%d" i))

(* deterministic PRNG so runs are reproducible *)
let make_row rng =
  let cell i =
    if i = 5 then (if Random.State.int rng 4 = 0 then "yes" else "no")
    else string_of_int (Random.State.int rng 1000)
  in
  String.concat "," (List.init cols cell)

(* Generate approximately [bytes] of CSV (header + rows). *)
let generate ~seed ~bytes =
  let rng = Random.State.make [| seed |] in
  let b = Buffer.create (bytes + 4096) in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  while Buffer.length b < bytes do
    Buffer.add_string b (make_row rng);
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let write_file ~path ~seed ~bytes =
  let oc = open_out_bin path in
  output_string oc (generate ~seed ~bytes);
  close_out oc

(* the ten columns the workload accesses by name *)
let accessed_columns = [ "K2"; "K4"; "K6"; "K8"; "K10"; "K12"; "K14"; "K16"; "K18"; "K5" ]
