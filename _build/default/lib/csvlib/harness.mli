(** Table 1 harness: the CSV workload in the paper's four configurations. *)

type config =
  | Native  (** hand-written OCaml — the paper's "C++" row *)
  | Interpreted  (** generic library on the bytecode interpreter *)
  | Generic_compiled  (** generic library, Lancet-compiled — "Scala Library" *)
  | Specialized  (** explicit compile+freeze — "Scala Lancet" *)

val config_name : config -> string

val run : config -> string -> int * float
(** [run config csv_text] returns (checksum, seconds).  Compilation
    triggered by [Lancet.compile] runs inside the timed region, as in the
    paper. *)

val reference : string -> int
(** The expected checksum, from the native implementation. *)
