(* The CSV processing programs in Mini — the paper's Fig. 1 (generic
   library) and Fig. 3 (library with explicit JIT calls).  The workload sums
   nine integer columns accessed by name and counts the "yes" flags of a
   tenth, per row, matching Table 1's "10 of 20 columns accessed by name". *)

(* shared helper: linear scan, the name-to-column mapping of Fig. 1 *)
let prelude =
  {|
def index_of(a: array[string], key: string): int = {
  var i = 0;
  var r = -1;
  while (i < a.length) {
    if (r == -1) { if (a[i] == key) { r = i } };
    i = i + 1
  };
  r
}
|}

(* Fig. 1: the plain record abstraction, no JIT calls *)
let generic_body =
  {|
class Record {
  val fields: array[string]
  val schema: array[string]
  def init(f: array[string], s: array[string]): unit = {
    this.fields = f; this.schema = s
  }
  def get(key: string): string = this.fields[index_of(this.schema, key)]
}

def row_work(rec: Record): int = {
  var acc = 0;
  acc = acc + Str.to_int(rec.get("K2"));
  acc = acc + Str.to_int(rec.get("K4"));
  acc = acc + Str.to_int(rec.get("K6"));
  acc = acc + Str.to_int(rec.get("K8"));
  acc = acc + Str.to_int(rec.get("K10"));
  acc = acc + Str.to_int(rec.get("K12"));
  acc = acc + Str.to_int(rec.get("K14"));
  acc = acc + Str.to_int(rec.get("K16"));
  acc = acc + Str.to_int(rec.get("K18"));
  if (rec.get("K5") == "yes") { acc = acc + 1000000 };
  acc
}

// returns a closure suitable for Lancet.compile: schema handling stays
// inside, exactly the Fig. 1 shape
def make_generic(): (string) -> int = fun (text: string) => {
  val lines = Str.split(text, "\n");
  val schema = Str.split(lines[0], ",");
  var total = 0;
  var i = 1;
  while (i < lines.length) {
    if (Str.len(lines[i]) > 0) {
      val rec = new Record(Str.split(lines[i], ","), schema);
      total = total + row_work(rec)
    };
    i = i + 1
  };
  total
}

def run_generic(text: string): int = {
  val f = make_generic();
  f(text)
}
|}

(* Fig. 3: the same library with explicit JIT calls.  The schema is read
   first, then the row loop is compiled with [schema] as static data; field
   lookups evaluate at JIT-compile time via [freeze]. *)
let specialized_body =
  {|
class RecordS {
  val fields: array[string]
  val schema: array[string]
  def init(f: array[string], s: array[string]): unit = {
    this.fields = f; this.schema = s
  }
  def get(key: string): string = {
    val s = this.schema;
    this.fields[Lancet.freeze(fun () => index_of(s, key))]
  }
  def foreach(f: (string, string) -> unit): unit = {
    val s = this.schema;
    val fs = this.fields;
    Lancet.ntimes(Lancet.freeze(fun () => s.length), fun (i: int) =>
      f(Lancet.freeze(fun () => s[i]), fs[i]))
  }
}

def row_work_s(rec: RecordS): int = {
  var acc = 0;
  acc = acc + Str.to_int(rec.get("K2"));
  acc = acc + Str.to_int(rec.get("K4"));
  acc = acc + Str.to_int(rec.get("K6"));
  acc = acc + Str.to_int(rec.get("K8"));
  acc = acc + Str.to_int(rec.get("K10"));
  acc = acc + Str.to_int(rec.get("K12"));
  acc = acc + Str.to_int(rec.get("K14"));
  acc = acc + Str.to_int(rec.get("K16"));
  acc = acc + Str.to_int(rec.get("K18"));
  if (rec.get("K5") == "yes") { acc = acc + 1000000 };
  acc
}

// processCSV of Fig. 3: read the schema, then explicitly compile the row
// loop; the result is guaranteed to be a JIT-compiled function with all
// schema computation evaluated at compile time
def make_specialized(header: string): (array[string]) -> int = {
  val schema = Str.split(header, ",");
  Lancet.compile(fun (lines: array[string]) => {
    var total = 0;
    var i = 1;
    while (i < lines.length) {
      if (Str.len(lines[i]) > 0) {
        val rec = new RecordS(Str.split(lines[i], ","), schema);
        total = total + row_work_s(rec)
      };
      i = i + 1
    };
    total
  })
}

def run_specialized(text: string): int = {
  val lines = Str.split(text, "\n");
  val f = make_specialized(lines[0]);
  f(lines)
}

// foreach demo (Fig. 1's (key,value) iteration, specialized via unroll)
def concat_fields(text: string): string = {
  val lines = Str.split(text, "\n");
  val schema = Str.split(lines[0], ",");
  val f = Lancet.compile(fun (line: string) => {
    val rec = new RecordS(Str.split(line, ","), schema);
    var out = "";
    rec.foreach(fun (k: string, v: string) => { out = out + k + "=" + v + ";" });
    out
  });
  f(lines[1])
}
|}

let generic = prelude ^ generic_body
let specialized = prelude ^ specialized_body

(* both in one program so the harness can load a single source *)
let all = prelude ^ generic_body ^ specialized_body
