(* Hand-written OCaml CSV processing: the "C++" row of Table 1.  Direct
   column indices, no record abstraction, no name lookup. *)

let accessed_indices = [| 2; 4; 6; 8; 10; 12; 14; 16; 18 |]
let flag_index = 5

(* split on a single char without extra allocation beyond the fields *)
let split_char sep s =
  String.split_on_char sep s

let process (text : string) : int =
  let lines = split_char '\n' text in
  match lines with
  | [] -> 0
  | _header :: rows ->
    let total = ref 0 in
    List.iter
      (fun row ->
        if String.length row > 0 then begin
          let fields = Array.of_list (split_char ',' row) in
          Array.iter
            (fun i -> total := !total + int_of_string fields.(i))
            accessed_indices;
          if String.equal fields.(flag_index) "yes" then
            total := !total + 1_000_000
        end)
      rows;
    Vm.Value.wrap32 !total

(* matching 32-bit accumulation semantics of the VM workload *)
let process_wrapped text =
  let lines = split_char '\n' text in
  match lines with
  | [] -> 0
  | _header :: rows ->
    let total = ref 0 in
    List.iter
      (fun row ->
        if String.length row > 0 then begin
          let acc = ref 0 in
          let fields = Array.of_list (split_char ',' row) in
          Array.iter
            (fun i -> acc := Vm.Value.wrap32 (!acc + int_of_string fields.(i)))
            accessed_indices;
          if String.equal fields.(flag_index) "yes" then
            acc := Vm.Value.wrap32 (!acc + 1_000_000);
          total := Vm.Value.wrap32 (!total + !acc)
        end)
      rows;
    !total

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s
