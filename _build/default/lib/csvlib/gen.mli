(** Synthetic CSV data in the shape of the paper's Table 1 workload:
    20 columns, 10 of which the benchmark accesses by name. *)

val cols : int
val header : string

val generate : seed:int -> bytes:int -> string
(** Deterministic CSV text of approximately [bytes] bytes (header + rows). *)

val write_file : path:string -> seed:int -> bytes:int -> unit

val accessed_columns : string list
(** The ten column names the workload reads per row. *)
