(* Table 1 harness: run the CSV workload in four configurations and time
   them.  All configurations parse the same text and compute the same
   checksum, which the caller can verify. *)

type config =
  | Native (* hand-written OCaml: the paper's "C++" row *)
  | Interpreted (* generic library on the bytecode interpreter (extra row) *)
  | Generic_compiled (* generic library, Lancet-compiled: "Scala Library" *)
  | Specialized (* explicit compile+freeze: "Scala Lancet" *)

let config_name = function
  | Native -> "native OCaml (paper: C++)"
  | Interpreted -> "bytecode interpreter"
  | Generic_compiled -> "generic, Lancet-compiled (paper: Scala library)"
  | Specialized -> "specialized via compile/freeze (paper: Scala Lancet)"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One runtime per configuration run; the program is loaded (and for the
   compiled configurations, compiled) outside the timed region only for the
   program text — compilation triggered by [Lancet.compile] runs inside, as
   in the paper ("just in time"). *)
let run (config : config) (text : string) : int * float =
  match config with
  | Native -> time (fun () -> Native.process_wrapped text)
  | Interpreted ->
    let rt = Vm.Natives.boot () in
    let p = Mini.Front.load rt Mini_src.generic in
    time (fun () ->
        Vm.Value.to_int (Mini.Front.call p "run_generic" [| Str text |]))
  | Generic_compiled ->
    let rt = Lancet.Api.boot () in
    let p = Mini.Front.load rt Mini_src.generic in
    let clo = Mini.Front.call p "make_generic" [||] in
    time (fun () ->
        let compiled = Lancet.Compiler.compile_value rt clo in
        Vm.Value.to_int
          (Vm.Interp.call_closure rt compiled [| Str text |]))
  | Specialized ->
    let rt = Lancet.Api.boot () in
    let p = Mini.Front.load rt Mini_src.specialized in
    time (fun () ->
        Vm.Value.to_int (Mini.Front.call p "run_specialized" [| Str text |]))

(* reference result for checksums *)
let reference text = Native.process_wrapped text
