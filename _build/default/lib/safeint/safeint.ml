(* Safe and efficient numeric overflow (paper Sec. 3.2): overflow-safe
   integers that speculatively stay machine-sized; overflow triggers
   [slowpath] and the BigInteger representation — which compiled code never
   contains.  BigInteger values live in a registry indexed by BigRef
   objects, since VM values cannot hold OCaml bigints directly. *)

open Vm.Types

let bigs : (int, Bigint.t) Hashtbl.t = Hashtbl.create 64
let next_big = ref 0

let register_big (b : Bigint.t) : int =
  let id = !next_big in
  incr next_big;
  Hashtbl.replace bigs id b;
  id

let big_of_ref rt v =
  ignore rt;
  match v with
  | Obj o when o.ocls.cname = "BigRef" -> Hashtbl.find bigs (Vm.Value.to_int o.ofields.(0))
  | _ -> vm_error "expected a BigRef"

let make_ref rt (b : Bigint.t) : value =
  let cls = Vm.Classfile.find_class rt "BigRef" in
  let o = Vm.Runtime.alloc rt cls in
  o.ofields.(0) <- Int (register_big b);
  Obj o

(* 32-bit range checks on exact (63-bit) arithmetic *)
let fits v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF

(* BigRef itself is declared by the Mini source; only the Big native class
   is created here *)
let install_natives rt =
  let cls = Vm.Classfile.declare_class rt ~name:"Big" ~fields:[] () in
  let n name nargs fn = ignore (Vm.Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  let i = Vm.Value.to_int in
  n "add_fits" 2 (fun _ a -> Vm.Value.of_bool (fits (i a.(0) + i a.(1))));
  n "mul_fits" 2 (fun _ a -> Vm.Value.of_bool (fits (i a.(0) * i a.(1))));
  n "of_int" 1 (fun rt a -> make_ref rt (Bigint.of_int (i a.(0))));
  n "add" 2 (fun rt a -> make_ref rt (Bigint.add (big_of_ref rt a.(0)) (big_of_ref rt a.(1))));
  n "mul" 2 (fun rt a -> make_ref rt (Bigint.mul (big_of_ref rt a.(0)) (big_of_ref rt a.(1))));
  n "to_str" 1 (fun rt a -> Str (Bigint.to_string (big_of_ref rt a.(0))))

(* The Mini SafeInt library, following the paper's structure: the Big case
   is always behind Lancet.slowpath(), so compiled code handles only
   machine-sized integers. *)
let mini_source =
  {|
class BigRef {
  val id: int
}

class SafeInt {
  val small: int
  val big: BigRef
  def init(small: int, big: BigRef): unit = { this.small = small; this.big = big }
  def to_str(): string =
    if (this.big == null) Str.of_int(this.small) else Big.to_str(this.big)
}

def safe_of(x: int): SafeInt = new SafeInt(x, null)

def safe_promote(a: SafeInt): BigRef =
  if (a.big == null) Big.of_int(a.small) else a.big

def safe_add(a: SafeInt, b: SafeInt): SafeInt =
  if (a.big == null && b.big == null) {
    if (Big.add_fits(a.small, b.small)) { new SafeInt(a.small + b.small, null) }
    else {
      Lancet.slowpath();
      new SafeInt(0, Big.add(Big.of_int(a.small), Big.of_int(b.small)))
    }
  } else {
    Lancet.slowpath();
    new SafeInt(0, Big.add(safe_promote(a), safe_promote(b)))
  }

def safe_mul(a: SafeInt, b: SafeInt): SafeInt =
  if (a.big == null && b.big == null) {
    if (Big.mul_fits(a.small, b.small)) { new SafeInt(a.small * b.small, null) }
    else {
      Lancet.slowpath();
      new SafeInt(0, Big.mul(Big.of_int(a.small), Big.of_int(b.small)))
    }
  } else {
    Lancet.slowpath();
    new SafeInt(0, Big.mul(safe_promote(a), safe_promote(b)))
  }

// the paper's motivating loop: a product that may overflow for large n
def safe_product(n: int): string = {
  var prod = safe_of(1);
  var i = 1;
  while (i <= n) {
    prod = safe_mul(prod, safe_of(i));
    i = i + 1
  };
  prod.to_str()
}
def make_safe_product(n: int): () -> string = fun () => safe_product(n)

// sum variant used by the ablation bench (stays small for realistic n)
def safe_sum(n: int): string = {
  var acc = safe_of(0);
  var i = 1;
  while (i <= n) {
    acc = safe_add(acc, safe_of(i));
    i = i + 1
  };
  acc.to_str()
}
def make_safe_sum(n: int): () -> string = fun () => safe_sum(n)

// plain-int reference (no overflow safety)
def plain_sum(n: int): int = {
  var acc = 0;
  var i = 1;
  while (i <= n) { acc = acc + i; i = i + 1 };
  acc
}
def make_plain_sum(n: int): () -> int = fun () => plain_sum(n)
|}

let register_types () =
  Mini.Typecheck.register_builtin_class "Big";
  let open Mini.Ast in
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"add_fits" [ Tint; Tint ] Tbool;
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"mul_fits" [ Tint; Tint ] Tbool;
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"of_int" [ Tint ] (Tclass "BigRef");
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"add"
    [ Tclass "BigRef"; Tclass "BigRef" ] (Tclass "BigRef");
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"mul"
    [ Tclass "BigRef"; Tclass "BigRef" ] (Tclass "BigRef");
  Mini.Typecheck.register_builtin_sig ~cls:"Big" ~name:"to_str" [ Tclass "BigRef" ] Tstring

let boot () =
  register_types ();
  let rt = Lancet.Api.boot () in
  install_natives rt;
  (rt, Mini.Front.load rt mini_source)
