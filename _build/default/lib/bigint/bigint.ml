(* Arbitrary-precision signed integers (sign-magnitude, base 2^24 limbs),
   built from scratch: the container has no zarith, and SafeInt (paper
   Sec. 3.2) needs a BigInteger substrate for its overflow slow path. *)

type t = {
  sign : int; (* -1, 0, +1; zero has sign 0 and no limbs *)
  mag : int array; (* little-endian limbs, no trailing zeros *)
}

let base_bits = 24
let base = 1 lsl base_bits
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int (x : int) : t =
  if x = 0 then zero
  else begin
    let sign = if x < 0 then -1 else 1 in
    let x = abs x in
    let rec limbs x = if x = 0 then [] else (x land base_mask) :: limbs (x lsr base_bits) in
    { sign; mag = Array.of_list (limbs x) }
  end

let to_int_opt (x : t) : int option =
  let rec go i acc =
    if i < 0 then Some acc
    else
      let acc' = (acc * base) + x.mag.(i) in
      if acc' < acc then None (* overflow *) else go (i - 1) acc'
  in
  if x.sign = 0 then Some 0
  else
    match go (Array.length x.mag - 1) 0 with
    | Some m when m >= 0 -> Some (x.sign * m)
    | _ -> None

(* unsigned magnitude comparison *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare_big (a : t) (b : t) : int =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign = 0 then 0
  else a.sign * cmp_mag a.mag b.mag

let equal a b = compare_big a b = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  out

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  out

let neg (x : t) : t = { x with sign = -x.sign }

let rec add (a : t) (b : t) : t =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

and sub (a : t) (b : t) : t = add a (neg b)

let mul (a : t) (b : t) : t =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (a.mag.(i) * b.mag.(j)) + !carry in
        out.(i + j) <- v land base_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land base_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize (a.sign * b.sign) out
  end

(* division of magnitude by a small int, returning (quotient limbs, rem) *)
let divmod_small mag d =
  let n = Array.length mag in
  let out = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor mag.(i) in
    out.(i) <- cur / d;
    rem := cur mod d
  done;
  (out, !rem)

let to_string (x : t) : string =
  if x.sign = 0 then "0"
  else begin
    let digits = Buffer.create 32 in
    let mag = ref x.mag in
    while Array.length !mag > 0 && cmp_mag !mag [||] > 0 do
      let q, r = divmod_small !mag 10 in
      Buffer.add_char digits (Char.chr (Char.code '0' + r));
      mag := (normalize 1 q).mag
    done;
    let s = Buffer.contents digits in
    let b = Buffer.create (String.length s + 1) in
    if x.sign < 0 then Buffer.add_char b '-';
    for i = String.length s - 1 downto 0 do
      Buffer.add_char b s.[i]
    done;
    Buffer.contents b
  end

let of_string (s : string) : t =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string";
  let sign, start = if s.[0] = '-' then (-1, 1) else (1, 0) in
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to String.length s - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign < 0 then neg !acc else !acc

let pp ppf x = Format.fprintf ppf "%s" (to_string x)
