(** Arbitrary-precision signed integers (sign-magnitude, base-2{^24} limbs).

    Built from scratch as the substrate for SafeInt's overflow slow path
    (paper Sec. 3.2), since the environment provides no zarith. *)

type t
(** An arbitrary-precision integer.  Values are normalized: zero has a
    unique representation and magnitudes carry no trailing zero limbs. *)

val zero : t

val of_int : int -> t
(** [of_int n] represents the OCaml integer [n] exactly. *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in an OCaml [int]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val compare_big : t -> t -> int
(** Total order compatible with integer order. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Decimal rendering, e.g. ["-1267650600228229401496703205376"]. *)

val of_string : string -> t
(** Parses an optionally [-]-signed decimal literal.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
