(* The DOM-as-a-library pattern of paper Sec. 3.5: Mini classes extending the
   [JS] marker class stand in for browser objects; JIT macros turn every
   method call on them into a [Js_call] node, and the JS backend prints real
   JavaScript.  (The paper: "a macro that looks for method invocations on
   objects inheriting from JS".) *)

module C = Lancet.Compiler
module Ir = Lms.Ir

(* abstract DOM API: bodies are stubs — they only ever cross-compile *)
let dom_source =
  {|
class JS { }

class Element extends JS {
  def set_text(s: string): unit = { }
}

class Context extends JS {
  def save(): unit = { }
  def restore(): unit = { }
  def translate(x: float, y: float): unit = { }
  def rotate(r: float): unit = { }
  def moveTo(x: float, y: float): unit = { }
  def lineTo(x: float, y: float): unit = { }
  def beginPath(): unit = { }
  def closePath(): unit = { }
  def stroke(): unit = { }
}

class Canvas extends JS {
  def getContext(key: string): Context = new Context()
}

class Document extends JS {
  def getElementById(id: string): Element = new Element()
  def getCanvas(id: string): Canvas = new Canvas()
}
|}

(* Install a Js_call macro for every method of every class that inherits
   from the JS marker class (the paper's isAssignableFrom check). *)
let install rt =
  let js_cls = Vm.Classfile.find_class rt "JS" in
  Hashtbl.iter
    (fun _ (cls : Vm.Types.cls) ->
      if cls.Vm.Types.cid <> js_cls.Vm.Types.cid
         && Vm.Classfile.is_subclass cls js_cls then
        List.iter
          (fun (m : Vm.Types.meth) ->
            C.register_macro rt ~cls:cls.Vm.Types.cname ~name:m.Vm.Types.mname
              (fun ctx args ->
                let args = Array.map (C.resolve_materialized ctx) args in
                C.clobber ctx;
                C.Val
                  (C.emit ctx
                     (Ir.Ext (Lms.Js_backend.Js_call m.Vm.Types.mname))
                     args Ir.Tany)))
          cls.Vm.Types.cmethods)
    rt.Vm.Types.classes

(* Cross-compile a Mini thunk (zero-argument closure value) to JavaScript.
   The receiver objects of DOM calls appear as JS expressions; materialized
   DOM objects become "{}" literals, which is fine for code that only calls
   methods obtained from the document parameter. *)
let cross_compile rt ?(name = "kernel") (clo : Vm.Types.value) ~(nargs : int) :
    string =
  match clo with
  | Vm.Types.Obj o ->
    let apply = Vm.Classfile.resolve_virtual o.Vm.Types.ocls "apply" in
    let spec =
      Array.init (apply.Vm.Types.mnargs + 1) (fun i ->
          if i = 0 then C.Static_value clo else C.Dyn)
    in
    ignore nargs;
    let g = C.stage rt apply spec in
    Lms.Js_backend.emit_function ~name g
  | _ -> Vm.Types.vm_error "cross_compile: not a closure"
