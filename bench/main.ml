(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Table 1, Table 2a/b/c) plus ablations for the design choices called out
   in DESIGN.md.  Numbers are medians of [reps] runs; parallel sweeps use
   the measured-chunk scaling model (Exec.Sim) on this 1-core container —
   see EXPERIMENTS.md for the paper-vs-measured discussion.

   Usage: bench/main.exe [table1|table2-kmeans|table2-logreg|
                          table2-namescore|ablate|micro|tiered|obs|profile|
                          bgjit|dispatch|warmup|chaos|chaos-soak|check|all]

   [tiered] compares the pure interpreter against the tiered execution
   engine (hotness-driven method JIT) and writes BENCH_tiered.json (with
   an event-kind breakdown per workload); [obs] measures the cost of one
   observability emit site with and without a sink and writes
   BENCH_obs.json; [bgjit] compares synchronous promotion against the
   background compile queue (mutator compile pauses, time-to-tier-up) and
   writes BENCH_bgjit.json; [check] is the fast correctness-only gate
   wired into the runtest alias (now including a Chrome-trace smoke test,
   the bgjit sync-vs-async equivalence gate and the no-sink emit-overhead
   guard). *)

open Vm.Types
module Exec = Delite.Exec
module H = Optiml.Harness

let reps = 3

let median xs =
  let s = List.sort compare xs in
  List.nth s (List.length s / 2)

let time_of f = median (List.init reps (fun _ -> snd (f ())))

let pr fmt = Printf.printf fmt

let header title =
  pr "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: CSV reading                                                *)

let table1 () =
  header "Table 1: CSV reading (paper Sec. 3.1, Table 1)";
  let sizes = [ 500_000; 1_000_000; 1_500_000; 2_000_000 ] in
  let texts = List.map (fun b -> (b, Csvlib.Gen.generate ~seed:42 ~bytes:b)) sizes in
  (* verify all configurations agree before timing *)
  (let _, t = List.hd texts in
   let expect = Csvlib.Harness.reference t in
   List.iter
     (fun cfg ->
       let r, _ = Csvlib.Harness.run cfg t in
       if r <> expect then failwith "CSV checksum mismatch")
     Csvlib.Harness.[ Native; Generic_compiled; Specialized ]);
  let rows =
    Csvlib.Harness.
      [
        (Native, "native OCaml      (paper row: C++)");
        (Generic_compiled, "generic library   (paper row: Scala Library)");
        (Specialized, "compile+freeze    (paper row: Scala Lancet)");
      ]
  in
  let times =
    List.map
      (fun (cfg, label) ->
        ( label,
          List.map
            (fun (_, t) -> time_of (fun () -> Csvlib.Harness.run cfg t))
            texts ))
      rows
  in
  let native_times = snd (List.nth times 0) in
  pr "\n%-46s" "Input size:";
  List.iter (fun (b, _) -> pr "%8.1fMB " (float_of_int b /. 1e6)) texts;
  pr "\n-- milliseconds --\n";
  List.iter
    (fun (label, ts) ->
      pr "%-46s" label;
      List.iter (fun t -> pr "%9.1f  " (t *. 1000.)) ts;
      pr "\n")
    times;
  pr "-- speedup vs native (the paper normalizes to C++) --\n";
  List.iter
    (fun (label, ts) ->
      pr "%-46s" label;
      List.iter2 (fun t n -> pr "%9.2f  " (n /. t)) ts native_times;
      pr "\n")
    times;
  (* the interpreter row, scaled from a small input *)
  let small = Csvlib.Gen.generate ~seed:42 ~bytes:100_000 in
  let ti = time_of (fun () -> Csvlib.Harness.run Csvlib.Harness.Interpreted small) in
  pr "%-46s%9.2f   (bytecode interpreter, measured at 0.1MB)\n"
    "interpreter (extra row)"
    (List.nth native_times 0 /. (ti *. 5.0));
  pr "\nPaper Table 1 (23-92MB on a JVM): C++ 1.00, Scala library 0.92-1.25, Scala Lancet 2.19-2.91.\n";
  pr "Shape reproduced: specialized >> generic library; see EXPERIMENTS.md.\n"

(* ------------------------------------------------------------------ *)
(* Table 2: k-means / logreg / name score                              *)

let cores = [ 1; 2; 4; 8 ]

let table2 (app : H.app) (title : string) ~(with_manual : bool) () =
  header title;
  let sz = H.default_sizes in
  let expect = H.reference app sz in
  let check (r, t) =
    if Float.abs (r -. expect) > 1e-6 *. (1.0 +. Float.abs expect) then
      failwith "table2 checksum mismatch";
    (r, t)
  in
  let run cfg = time_of (fun () -> check (H.run app cfg sz)) in
  let base = run H.Library in
  let row label times =
    pr "%-30s" label;
    List.iter
      (fun t -> match t with Some t -> pr "%8.2f " (base /. t) | None -> pr "%8s " "-")
      times;
    pr "\n"
  in
  pr "\n%-30s" "Cores:";
  List.iter (fun c -> pr "%8d " c) cores;
  pr "%8s \n" "GPU*";
  row "Mini library (Scala lib.)"
    ((Some base :: List.map (fun _ -> None) (List.tl cores)) @ [ None ]);
  let sweep mk =
    List.map (fun c -> Some (run (mk (Exec.Sim c)))) cores
    @ [ Some (run (mk (Exec.Gpu Exec.default_gpu))) ]
  in
  row "Lancet-Delite" (sweep (fun d -> H.Lancet_delite d));
  row "Delite (standalone)" (sweep (fun d -> H.Delite_standalone d));
  if with_manual then row "Delite (manual opt)" (sweep (fun d -> H.Manual_opt d));
  (match app with
  | H.Namescore -> ()
  | H.Kmeans | H.Logreg ->
    row "native OCaml (paper: C++)"
      (List.map (fun c -> Some (run (H.Cpp (Exec.Sim c)))) cores @ [ None ]));
  pr "\n(speedups relative to the Mini library at 1 core, as in the paper;\n";
  pr " cores 2-8 use the measured-chunk scaling model, GPU* is analytic — EXPERIMENTS.md)\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let time_unit f =
  median
    (List.init reps (fun _ ->
         let t0 = Unix.gettimeofday () in
         ignore (f ());
         Unix.gettimeofday () -. t0))

let ablate_spec () =
  header "Ablation: explicit specialization (compile+freeze) on/off [CSV]";
  let t = Csvlib.Gen.generate ~seed:9 ~bytes:1_000_000 in
  let g = time_of (fun () -> Csvlib.Harness.run Csvlib.Harness.Generic_compiled t) in
  let s = time_of (fun () -> Csvlib.Harness.run Csvlib.Harness.Specialized t) in
  pr "generic compiled: %8.1f ms\nspecialized:      %8.1f ms\nfactor:           %8.1fx\n"
    (g *. 1000.) (s *. 1000.) (g /. s)

let ablate_fusion () =
  header "Ablation: Delite op fusion on/off";
  let n = 2_000_000 in
  let a = Array.init n (fun i -> float_of_int (i land 1023)) in
  let b = Array.init n (fun i -> float_of_int (i land 511)) in
  let pipe =
    Delite.Vec.(
      map
        (zip
           (map (input a) Delite.Scalar.(Bin (Mul, Elem 0, Konst 0.5)))
           (input b)
           Delite.Scalar.(Bin (Add, Elem 0, Elem 1)))
        Delite.Scalar.(Bin (Max, Elem 0, Konst 0.0)))
  in
  let red = Delite.Vec.sum pipe in
  let t_fused = time_unit (fun () -> Delite.Vec.reduce ~dev:Exec.Seq red) in
  let t_unfused = time_unit (fun () -> Delite.Vec.eval_unfused_reduce red) in
  let stats = Delite.Vec.fusion_stats pipe in
  pr "pipeline: %d stages fused into %d loop\n" stats.Delite.Vec.stages
    stats.Delite.Vec.fused_loops;
  pr "unfused (one loop + array per stage): %8.1f ms\n" (t_unfused *. 1000.);
  pr "fused   (single traversal):           %8.1f ms\n" (t_fused *. 1000.);
  pr "factor:                               %8.2fx\n" (t_unfused /. t_fused)

let ablate_safeint () =
  header "Ablation: SafeInt speculation (paper Sec. 3.2)";
  let n = 30_000 in
  let rt, p = Safeint.boot () in
  let compiled name =
    let thunk = Mini.Front.call p name [| Int n |] in
    Lancet.Compiler.compile_value rt thunk
  in
  let c_plain = compiled "make_plain_sum" in
  let c_safe = compiled "make_safe_sum" in
  let t_plain = time_unit (fun () -> Vm.Interp.call_closure rt c_plain [||]) in
  let t_safe = time_unit (fun () -> Vm.Interp.call_closure rt c_safe [||]) in
  let t_interp = time_unit (fun () -> Mini.Front.call p "safe_sum" [| Int n |]) in
  pr "sum of 1..%d:\n" n;
  pr "plain int, compiled:              %8.1f ms\n" (t_plain *. 1000.);
  pr "SafeInt, compiled (speculative):  %8.1f ms  (%.1fx plain: overflow checks + records)\n"
    (t_safe *. 1000.) (t_safe /. t_plain);
  pr "SafeInt, interpreted:             %8.1f ms  (%.1fx compiled SafeInt)\n"
    (t_interp *. 1000.) (t_interp /. t_safe)

let ablate_inline () =
  header "Ablation: controlled inlining (inlineAlways vs inlineNever)";
  let rt = Lancet.Api.boot () in
  let p =
    Mini.Front.load rt
      {|
def work(x: int): int = x * 2 + 1
def apply_n(f: (int) -> int, n: int): int = {
  var acc = 0;
  for (i <- 0 until n) { acc = acc + f(i) };
  acc
}
def make_inlined(n: int): () -> int =
  fun () => Lancet.inline_always(fun () => apply_n(fun (x: int) => work(x), n))
def make_never(n: int): () -> int =
  fun () => Lancet.inline_never(fun () => apply_n(fun (x: int) => work(x), n))
|}
  in
  let n = 50_000 in
  let run name =
    let thunk = Mini.Front.call p name [| Int n |] in
    let f = Lancet.Compiler.compile_value rt thunk in
    time_unit (fun () -> Vm.Interp.call_closure rt f [||])
  in
  let t_in = run "make_inlined" and t_out = run "make_never" in
  pr "higher-order loop over %d elements:\n" n;
  pr "inlineAlways (closure inlined):   %8.1f ms\n" (t_in *. 1000.);
  pr "inlineNever (residual calls):     %8.1f ms\n" (t_out *. 1000.);
  pr "factor:                           %8.1fx\n" (t_out /. t_in)

let ablate_cache () =
  header "Ablation: code cache (calcJIT, paper Sec. 3.1)";
  let rt, p = Extras.boot_code_cache () in
  let jit = Mini.Front.call p "make_calc_jit" [||] in
  let call x y = Vm.Interp.call_closure rt jit [| Int x; Int y |] in
  let t0 = Unix.gettimeofday () in
  ignore (call 40 1);
  let t_first = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to 1000 do
    ignore (call 40 i)
  done;
  let t_hits = (Unix.gettimeofday () -. t0) /. 1000.0 in
  pr "calc specialized per first argument (trip count 40):\n";
  pr "first call  (compiles + caches):  %8.3f ms\n" (t_first *. 1000.);
  pr "cached call (amortized):          %8.4f ms\n" (t_hits *. 1000.);
  pr "compilation amortizes after ~%.0f calls\n"
    (t_first /. Float.max t_hits 1e-9)

let ablate_tree () =
  header "Ablation: stable search tree compiled to decision code (Sec. 3.2)";
  let rt, p = Extras.boot_tree () in
  let n = 256 in
  let perm = Array.init n (fun i -> (i * 97) mod n) in
  let keys = Arr (Array.map (fun i -> Int i) perm) in
  let values = Arr (Array.map (fun i -> Int (i * 10)) perm) in
  let tree = Mini.Front.call p "build_tree" [| keys; values |] in
  let lookup = Mini.Front.call p "make_lookup" [| tree |] in
  ignore (Mini.Front.call p "set_root" [| tree |]);
  let lookup_gen = Mini.Front.call p "make_lookup_generic" [||] in
  let probes = Array.init 20_000 (fun i -> [| Int (i * 13 mod (2 * n)) |]) in
  let count l =
    time_unit (fun () ->
        Array.iter (fun k -> ignore (Vm.Interp.call_closure rt l k)) probes)
  in
  let t_static = count lookup in
  let t_generic = count lookup_gen in
  let t_interp =
    time_unit (fun () ->
        Array.iter
          (fun k -> ignore (Mini.Front.call p "tree_lookup" [| tree; k.(0) |]))
          probes)
  in
  pr "%d-key tree, 20000 probes:\n" n;
  pr "compiled decision code (static tree): %8.2f ms\n" (t_static *. 1000.);
  pr "compiled generic walk (dynamic tree): %8.2f ms\n" (t_generic *. 1000.);
  pr "interpreted recursive walk:           %8.2f ms\n" (t_interp *. 1000.);
  pr "static vs generic factor:             %8.1fx\n" (t_generic /. t_static)

let ablate_backend () =
  header "Ablation: typed (unboxed) vs boxed kernel backend";
  let rt = Lancet.Api.boot () in
  let p =
    Mini.Front.load rt
      {|
def kernel(a: farray, n: int): float = {
  var acc = 0.0;
  for (i <- 0 until n) { acc = acc + a[i] * a[i] - 0.5 };
  acc
}
|}
  in
  let m = Mini.Front.find_function p "kernel" in
  let n = 200_000 in
  let a = Array.init n (fun i -> float_of_int (i land 255)) in
  let boxed =
    Lancet.Compiler.compile_method ~typed:false rt m
      [| Lancet.Compiler.Dyn; Lancet.Compiler.Dyn |]
  in
  let typed =
    Lancet.Compiler.compile_method ~typed:true rt m
      [| Lancet.Compiler.Dyn; Lancet.Compiler.Dyn |]
  in
  let args = [| Vm.Types.Farr a; Int n |] in
  if not (Vm.Value.equal (boxed args) (typed args)) then
    failwith "backend results differ";
  let tb = time_unit (fun () -> boxed args) in
  let tt = time_unit (fun () -> typed args) in
  pr "float reduction over %d elements:\n" n;
  pr "boxed closure backend:            %8.1f ms\n" (tb *. 1000.);
  pr "typed kernel backend:             %8.1f ms\n" (tt *. 1000.);
  pr "factor:                           %8.2fx\n" (tb /. tt)

let ablate () =
  ablate_spec ();
  ablate_fusion ();
  ablate_safeint ();
  ablate_inline ();
  ablate_cache ();
  ablate_tree ();
  ablate_backend ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper table            *)

let micro () =
  header "Bechamel micro-benchmarks (one test per paper table)";
  let open Bechamel in
  let open Toolkit in
  (* Table 1 workload at micro scale: the specialized CSV row loop *)
  let csv_text = Csvlib.Gen.generate ~seed:3 ~bytes:50_000 in
  let rt1 = Lancet.Api.boot () in
  let p1 = Mini.Front.load rt1 Csvlib.Mini_src.specialized in
  let lines_v =
    Vm.Interp.call rt1
      (Vm.Classfile.static_method rt1 ~cls:"Str" ~name:"split")
      [| Str csv_text; Str "\n" |]
  in
  let header_v = (Vm.Value.to_arr lines_v).(0) in
  let csv_fn = Mini.Front.call p1 "make_specialized" [| header_v |] in
  let t_table1 =
    Test.make ~name:"table1-csv-specialized"
      (Staged.stage (fun () ->
           ignore (Vm.Interp.call_closure rt1 csv_fn [| lines_v |])))
  in
  (* Table 2 workloads at micro scale (standalone Delite engine) *)
  let km_data = Optiml.Reference.Data.kmeans_data ~seed:1 ~rows:200 ~cols:4 ~k:3 in
  let t_kmeans =
    Test.make ~name:"table2a-kmeans-delite"
      (Staged.stage (fun () ->
           ignore
             (Optiml.Reference.Standalone.kmeans ~dev:Exec.Seq ~data:km_data
                ~rows:200 ~cols:4 ~k:3 ~iters:1)))
  in
  let lr_x, lr_y = Optiml.Reference.Data.logreg_data ~seed:2 ~rows:200 ~cols:5 in
  let t_logreg =
    Test.make ~name:"table2b-logreg-delite"
      (Staged.stage (fun () ->
           ignore
             (Optiml.Reference.Standalone.logreg ~dev:Exec.Seq ~data:lr_x
                ~rows:200 ~cols:5 ~y:lr_y ~iters:1 ~alpha:0.05)))
  in
  let names = Optiml.Reference.Data.names ~seed:3 ~n:2_000 in
  let t_namescore =
    Test.make ~name:"table2c-namescore-delite"
      (Staged.stage (fun () ->
           ignore (Optiml.Reference.Standalone.namescore ~dev:Exec.Seq names)))
  in
  let tests =
    Test.make_grouped ~name:"tables"
      [ t_table1; t_kmeans; t_logreg; t_namescore ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> pr "%-40s %14.1f ns/run (%s)\n" name t measure
          | _ -> pr "%-40s (no estimate)\n" name)
        tbl)
    merged

(* ------------------------------------------------------------------ *)
(* Tiered execution: pure interpreter vs hotness-driven method JIT     *)

let tiered_calc_src =
  {|
def calc(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let tiered_kmeans_src =
  {|
def sqdist(ps: farray, cs: farray, r: int, c: int, d: int): float = {
  var s = 0.0;
  for (j <- 0 until d) {
    val diff = ps[r * d + j] - cs[c * d + j];
    s = s + diff * diff
  };
  s
}
def nearest(ps: farray, cs: farray, r: int, d: int, k: int): int = {
  var best = 0;
  var bd = sqdist(ps, cs, r, 0, d);
  for (c <- 1 until k) {
    val dd = sqdist(ps, cs, r, c, d);
    if (dd < bd) { bd = dd; best = c }
  };
  best
}
def assign_all(ps: farray, cs: farray, n: int, d: int, k: int): int = {
  var s = 0;
  for (r <- 0 until n) { s = s + nearest(ps, cs, r, d, k) };
  s
}
|}

let tiered_spec_src =
  {|
def spec(x: int): int =
  if (Lancet.speculate(x < 100000)) x * 3 + 1 else x - 7
|}

type tier_row = {
  tr_name : string;
  tr_interp_ms : float;
  tr_tiered_ms : float;
  tr_compiles : int;
  tr_hits : int;
  tr_deopts : int;
  tr_events : (string * int) list; (* observed event kind -> count *)
}

(* Run one workload twice — pure interpreter and tiered runtime — check the
   results agree and report the timings plus the tiered counters.  The
   tiered timing includes JIT compilation (that is the deal a tiered VM
   offers).  A third, untimed tiered run executes with a ring-buffer sink
   attached and reports the event-kind breakdown, so speedup claims ship
   with compile/deopt evidence; the timed legs stay sink-free. *)
let tier_workload name src (driver : Vm.Types.runtime -> Mini.Front.program -> value) =
  let run tiered =
    let rt =
      if tiered then Lancet.Api.boot ~tiering:true ~tier_threshold:16 ()
      else Vm.Natives.boot ()
    in
    let p = Mini.Front.load rt src in
    let t0 = Unix.gettimeofday () in
    let v = driver rt p in
    (rt, v, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let _, vi, ti = run false in
  let rtt, vt, tt = run true in
  if not (Vm.Value.equal vi vt) then
    failwith (Printf.sprintf "tiered %s: result mismatch" name);
  let ring = Obs.Ring.create ~capacity:65536 () in
  let ve =
    Obs.with_sink (Obs.Ring.sink ring) (fun () ->
        let _, ve, _ = run true in
        ve)
  in
  if not (Vm.Value.equal vi ve) then
    failwith (Printf.sprintf "tiered %s: instrumented result mismatch" name);
  let counts = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let k = Obs.kind_to_string ev in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    (Obs.Ring.events ring);
  let events =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    tr_name = name;
    tr_interp_ms = ti;
    tr_tiered_ms = tt;
    tr_compiles = rtt.tiering.t_compiles;
    tr_hits = rtt.tiering.t_cache_hits;
    tr_deopts = rtt.tiering.t_deopts;
    tr_events = events;
  }

let tier_rows ~small =
  let calc_calls = if small then 200 else 2000 in
  let calc_n = if small then 100 else 400 in
  let km_rows = if small then 40 else 200 in
  let km_calls = if small then 20 else 150 in
  let csv_bytes = if small then 40_000 else 250_000 in
  let spec_calls = if small then 300 else 20_000 in
  let calc =
    tier_workload "calc" tiered_calc_src (fun _ p ->
        let acc = ref 0 in
        for k = 1 to calc_calls do
          acc :=
            (!acc + Vm.Value.to_int (Mini.Front.call p "calc" [| Int calc_n; Int k |]))
            land 0xFFFFFF
        done;
        Int !acc)
  in
  let d = 4 and k = 3 in
  let ps =
    Array.init (km_rows * d) (fun i -> float_of_int ((i * 37 mod 101) - 50) /. 7.)
  in
  let cs = Array.init (k * d) (fun i -> float_of_int ((i * 53 mod 23) - 11) /. 3.) in
  let kmeans =
    tier_workload "kmeans-assign" tiered_kmeans_src (fun _ p ->
        let acc = ref 0 in
        for _ = 1 to km_calls do
          acc :=
            !acc
            + Vm.Value.to_int
                (Mini.Front.call p "assign_all"
                   [| Farr ps; Farr cs; Int km_rows; Int d; Int k |])
        done;
        Int !acc)
  in
  let text = Csvlib.Gen.generate ~seed:7 ~bytes:csv_bytes in
  let csv =
    tier_workload "csv-generic" Csvlib.Mini_src.generic (fun _ p ->
        Mini.Front.call p "run_generic" [| Str text |])
  in
  let spec =
    tier_workload "speculate-deopt" tiered_spec_src (fun _ p ->
        let acc = ref 0 in
        for i = 1 to spec_calls do
          (* every 50th call breaks the speculation: deopt, then back to
             the compiled fast path *)
          let x = if i mod 50 = 0 then 1_000_000 + i else i in
          acc :=
            (!acc + Vm.Value.to_int (Mini.Front.call p "spec" [| Int x |]))
            land 0xFFFFFF
        done;
        Int !acc)
  in
  [ calc; kmeans; csv; spec ]

let tier_json rows =
  let row r =
    let events =
      String.concat ", "
        (List.map (fun (k, n) -> Printf.sprintf "%S: %d" k n) r.tr_events)
    in
    Printf.sprintf
      "    {\"workload\": %S, \"interp_ms\": %.3f, \"tiered_ms\": %.3f, \
       \"speedup\": %.3f, \"compiles\": %d, \"cache_hits\": %d, \"deopts\": \
       %d, \"events\": {%s}}"
      r.tr_name r.tr_interp_ms r.tr_tiered_ms
      (r.tr_interp_ms /. r.tr_tiered_ms)
      r.tr_compiles r.tr_hits r.tr_deopts events
  in
  Printf.sprintf "{\n  \"workloads\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map row rows))

let tiered () =
  header "Tiered execution: interpreter vs hotness-driven method JIT";
  let rows = tier_rows ~small:false in
  pr "\n%-18s %12s %12s %9s %9s %10s %7s\n" "workload" "interp(ms)"
    "tiered(ms)" "speedup" "compiles" "cache_hits" "deopts";
  List.iter
    (fun r ->
      pr "%-18s %12.1f %12.1f %8.2fx %9d %10d %7d\n" r.tr_name r.tr_interp_ms
        r.tr_tiered_ms
        (r.tr_interp_ms /. r.tr_tiered_ms)
        r.tr_compiles r.tr_hits r.tr_deopts)
    rows;
  pr "\nevent breakdown (instrumented re-run, ring-buffer sink):\n";
  List.iter
    (fun r ->
      pr "%-18s %s\n" r.tr_name
        (String.concat " "
           (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) r.tr_events)))
    rows;
  let oc = open_out "BENCH_tiered.json" in
  output_string oc (tier_json rows);
  close_out oc;
  pr "\nwrote BENCH_tiered.json\n"

(* ------------------------------------------------------------------ *)
(* Observability: emit-site overhead and trace smoke test               *)

(* Cost of one guarded emit site (`if !Obs.enabled then Obs.emit ...`),
   measured against the same loop without the site.  With no sink attached
   the site must be a single load+branch; with a ring sink it pays for a
   timestamp and an array store. *)
let obs_overhead ~iters =
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline =
    time (fun () ->
        for i = 1 to iters do
          body i
        done)
  in
  let emit_loop () =
    for i = 1 to iters do
      body i;
      if !Obs.enabled then
        Obs.emit (Obs.Interp_call { meth = "bench"; mid = 0; calls = i; backedges = 0 })
    done
  in
  let no_sink = time emit_loop in
  let ring = Obs.Ring.create ~capacity:4096 () in
  let with_ring = Obs.with_sink (Obs.Ring.sink ring) (fun () -> time emit_loop) in
  ignore !acc;
  let per_ns t = (t -. baseline) /. float_of_int iters *. 1e9 in
  (per_ns no_sink, per_ns with_ring, Obs.Ring.seen ring)

(* Hard guard on the disabled fast path: the bound is an order of magnitude
   above the real cost of a load+branch, so it only trips if an emit site
   accidentally allocates or calls out when no sink is attached. *)
let obs_guard ~iters =
  let no_sink_ns, _, _ = obs_overhead ~iters in
  if no_sink_ns > 15.0 then
    failwith
      (Printf.sprintf "obs: disabled emit site costs %.1fns (> 15ns budget)"
         no_sink_ns)

let obs_bench () =
  header "Observability: emit-site overhead (no sink vs ring buffer)";
  let iters = 20_000_000 in
  let no_sink_ns, ring_ns, seen = obs_overhead ~iters in
  pr "\n%-28s %10.2f ns/site\n" "no sink (single branch)" no_sink_ns;
  pr "%-28s %10.2f ns/site  (%d events)\n" "ring-buffer sink" ring_ns seen;
  obs_guard ~iters:2_000_000;
  let oc = open_out "BENCH_obs.json" in
  output_string oc
    (Printf.sprintf
       "{\n  \"iters\": %d,\n  \"no_sink_ns_per_emit\": %.3f,\n  \
        \"ring_ns_per_emit\": %.3f\n}\n"
       iters no_sink_ns ring_ns);
  close_out oc;
  pr "\nwrote BENCH_obs.json\n"

(* ------------------------------------------------------------------ *)
(* Sampling profiler: disabled-checkpoint overhead and run overhead     *)

(* Cost of the interpreter's per-step profiler checkpoint
   (`if !Obs.sampling && Obs.sample_due () then ...`) with sampling off,
   measured against the same loop without the checkpoint.  This is the
   price every bytecode step pays when nobody is profiling, so it is held
   to the same budget as the no-sink emit site (PR-2 bound). *)
let profile_overhead ~iters =
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline =
    time (fun () ->
        for i = 1 to iters do
          body i
        done)
  in
  let disabled =
    time (fun () ->
        for i = 1 to iters do
          body i;
          if !Obs.sampling && Obs.sample_due () then body (-i)
        done)
  in
  ignore !acc;
  (disabled -. baseline) /. float_of_int iters *. 1e9

let profile_guard ~iters =
  let ns = profile_overhead ~iters in
  if ns > 15.0 then
    failwith
      (Printf.sprintf
         "profiler: disabled checkpoint costs %.1fns (> 15ns budget)" ns)

(* The tiered kmeans workload with and without the sampling profiler
   attached: end-to-end overhead of profiling a real run. *)
let profile_kmeans ~interval_ms =
  let run prof =
    let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:16 () in
    let p = Mini.Front.load rt tiered_kmeans_src in
    let d = 4 and k = 3 in
    let rows = 200 in
    let ps =
      Array.init (rows * d) (fun i -> float_of_int ((i * 37 mod 101) - 50) /. 7.)
    in
    let cs =
      Array.init (k * d) (fun i -> float_of_int ((i * 53 mod 23) - 11) /. 3.)
    in
    let driver () =
      let acc = ref 0 in
      for _ = 1 to 150 do
        acc :=
          !acc
          + Vm.Value.to_int
              (Mini.Front.call p "assign_all"
                 [| Farr ps; Farr cs; Int rows; Int d; Int k |])
      done;
      !acc
    in
    let t0 = Unix.gettimeofday () in
    let v =
      match prof with
      | Some pr -> Profiler.profiled pr driver
      | None -> driver ()
    in
    (v, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let v_off, ms_off = run None in
  let prof = Profiler.create ~interval_ms () in
  let v_on, ms_on = run (Some prof) in
  if v_off <> v_on then failwith "profile bench: result mismatch";
  (ms_off, ms_on, prof)

let profile_bench () =
  header "Sampling profiler: checkpoint overhead and run overhead";
  let iters = 20_000_000 in
  let ns = profile_overhead ~iters in
  pr "\n%-36s %10.2f ns/step\n" "disabled checkpoint (sampling off)" ns;
  profile_guard ~iters:2_000_000;
  let interval_ms = 1.0 in
  let ms_off, ms_on, prof = profile_kmeans ~interval_ms in
  pr "%-36s %10.1f ms\n" "tiered kmeans, profiler off" ms_off;
  pr "%-36s %10.1f ms  (%.1f%% overhead)\n" "tiered kmeans, profiler on" ms_on
    (100. *. ((ms_on /. Float.max ms_off 1e-9) -. 1.));
  pr "%-36s %10d samples, coverage %.0f%%\n" "profile"
    prof.Profiler.samples
    (100. *. Profiler.coverage prof);
  let oc = open_out "BENCH_profile.json" in
  output_string oc
    (Printf.sprintf
       "{\n  \"iters\": %d,\n  \"disabled_checkpoint_ns_per_step\": %.3f,\n  \
        \"budget_ns\": 15.0,\n  \"kmeans_ms_profiler_off\": %.3f,\n  \
        \"kmeans_ms_profiler_on\": %.3f,\n  \"interval_ms\": %.3f,\n  \
        \"samples\": %d,\n  \"coverage\": %.3f\n}\n"
       iters ns ms_off ms_on interval_ms prof.Profiler.samples
       (Profiler.coverage prof));
  close_out oc;
  pr "\nwrote BENCH_profile.json\n"

(* ------------------------------------------------------------------ *)
(* Decision forensics: disabled-journal checkpoint overhead            *)

(* Cost of one journal checkpoint (`if !Forensics.on then Forensics.record
   ...`) with the journal disabled.  The sites sit on tiering slow paths
   (promotion, install, deopt, queue traffic) but the budget is deliberately
   brutal — < 1ns over the bare loop — because the disabled path must be a
   single load+branch: the action payload is allocated under the guard,
   never before it.  Both loops are timed several times and the minima are
   compared, so scheduler noise cannot trip the gate. *)
let forensics_overhead ~iters =
  Forensics.disable ();
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline () =
    for i = 1 to iters do
      body i
    done
  in
  let guarded () =
    for i = 1 to iters do
      body i;
      if !Forensics.on then
        Forensics.record ~mid:0 ~meth:"bench" (Forensics.Install { gen = i })
    done
  in
  let min_of f =
    ignore (time f);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let b = min_of baseline in
  let g = min_of guarded in
  ignore !acc;
  Float.max 0. ((g -. b) /. float_of_int iters *. 1e9)

let forensics_guard ~iters =
  let ns = forensics_overhead ~iters in
  if ns > 1.0 then
    failwith
      (Printf.sprintf
         "forensics: disabled journal checkpoint costs %.2fns (> 1ns budget)"
         ns)

let forensics_bench () =
  header "Decision forensics: journal checkpoint overhead";
  let iters = 20_000_000 in
  let off_ns = forensics_overhead ~iters in
  pr "\n%-36s %10.2f ns/site\n" "journal disabled (single branch)" off_ns;
  let cap = 4096 in
  Forensics.enable ~capacity:cap ();
  let acc = ref 0 in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let rec_iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to rec_iters do
    body i;
    if !Forensics.on then
      Forensics.record ~mid:0 ~meth:"bench" (Forensics.Install { gen = i })
  done;
  let on_total = Unix.gettimeofday () -. t0 in
  ignore !acc;
  let recorded = Forensics.seen () in
  Forensics.disable ();
  let on_ns = on_total /. float_of_int rec_iters *. 1e9 in
  pr "%-36s %10.2f ns/site  (%d recorded, cap %d)\n"
    "journal enabled (bounded ring)" on_ns recorded cap;
  forensics_guard ~iters:2_000_000;
  let oc = open_out "BENCH_forensics.json" in
  output_string oc
    (Printf.sprintf
       "{\n  \"iters\": %d,\n  \"disabled_checkpoint_ns_per_site\": %.3f,\n  \
        \"budget_ns\": 1.0,\n  \"enabled_record_ns_per_site\": %.3f,\n  \
        \"recorded\": %d,\n  \"capacity\": %d\n}\n"
       iters off_ns on_ns recorded cap);
  close_out oc;
  pr "\nwrote BENCH_forensics.json\n"

(* ------------------------------------------------------------------ *)
(* Pipeline introspection: disabled-checkpoint overhead                 *)

(* Cost of one IR-trace checkpoint (`if !Irtrace.on then ...`) with tracing
   disabled.  The sites sit inside the staging emit path, the DCE filter
   and both backends' guard-lowering loops — hotter code than the journal's
   tiering slow paths — so the same brutal budget applies: < 1ns over the
   bare loop, a single load+branch, with the miss payload allocated only
   under the guard. *)
let irtrace_overhead ~iters =
  Irtrace.disable ();
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline () =
    for i = 1 to iters do
      body i
    done
  in
  let guarded () =
    for i = 1 to iters do
      body i;
      if !Irtrace.on then
        Irtrace.record_miss ~phase:"stage" ~mid:0 ~pc:i ~line:1
          (Irtrace.Cse_effect_barrier { op = "bench" })
    done
  in
  let min_of f =
    ignore (time f);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let b = min_of baseline in
  let g = min_of guarded in
  ignore !acc;
  Float.max 0. ((g -. b) /. float_of_int iters *. 1e9)

(* The budget leaves ~1ns of headroom over the measured single
   load+branch cost: a regression that hoists the miss payload out of the
   guard costs tens of ns, so 2ns still catches it while staying clear of
   scheduler/timer noise on loaded machines. *)
let irtrace_guard ~iters =
  let ns = irtrace_overhead ~iters in
  if ns > 2.0 then
    failwith
      (Printf.sprintf
         "irtrace: disabled IR-trace checkpoint costs %.2fns (> 2ns budget)"
         ns)

let irtrace_bench () =
  header "Pipeline introspection: IR-trace checkpoint overhead";
  let iters = 20_000_000 in
  let off_ns = irtrace_overhead ~iters in
  pr "\n%-36s %10.2f ns/site\n" "irtrace disabled (single branch)" off_ns;
  (* enabled cost of the miss recorder: sites dedup by (mid, pc, reason),
     so steady-state records are a hash probe plus a counter bump *)
  Irtrace.enable ();
  let acc = ref 0 in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let rec_iters = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to rec_iters do
    body i;
    if !Irtrace.on then
      Irtrace.record_miss ~phase:"stage" ~mid:0 ~pc:(i land 63) ~line:1
        (Irtrace.Cse_effect_barrier { op = "bench" })
  done;
  let on_total = Unix.gettimeofday () -. t0 in
  ignore !acc;
  let sites = List.length (Irtrace.misses ()) in
  Irtrace.disable ();
  let on_ns = on_total /. float_of_int rec_iters *. 1e9 in
  pr "%-36s %10.2f ns/site  (%d deduped sites)\n"
    "irtrace enabled (dedup counter)" on_ns sites;
  irtrace_guard ~iters:20_000_000;
  let oc = open_out "BENCH_irtrace.json" in
  output_string oc
    (Printf.sprintf
       "{\n  \"iters\": %d,\n  \"disabled_checkpoint_ns_per_site\": %.3f,\n  \
        \"budget_ns\": 2.0,\n  \"enabled_record_ns_per_site\": %.3f,\n  \
        \"deduped_sites\": %d\n}\n"
       iters off_ns on_ns sites);
  close_out oc;
  pr "\nwrote BENCH_irtrace.json\n"

(* ------------------------------------------------------------------ *)
(* Dispatch: interpreter inline caches and speculative devirtualization *)

(* A hierarchy shaped like real OO code, so the baseline vtable walk has
   representative cost: Disp0 defines [tag] (returning a per-object field,
   so checksums are meaningful) under a 15-deep chain of subclasses each
   carrying a dozen unrelated methods (real classes are not empty), and
   the benchmark receivers are leaves below that — every unmemoized
   resolve walks ~17 populated method tables.  Returns the root class and
   one receiver per leaf class, with distinct field values. *)
let dispatch_setup rt =
  let root =
    Vm.Classfile.declare_class rt ~name:"Disp0" ~fields:[ ("v", false) ] ()
  in
  let fv = Vm.Classfile.field root "v" in
  (* tag() = v * 31 + 7: a field load plus a little arithmetic, so the
     callee has representative (if modest) weight — against an empty
     callee no dispatch mechanism amortizes *)
  ignore
    (Vm.Assembler.define_method rt root ~name:"tag" ~nargs:0 (fun b ->
         Vm.Assembler.emit b (Load 0);
         Vm.Assembler.emit b (Getfield fv);
         Vm.Assembler.emit b (Const (Int 31));
         Vm.Assembler.emit b (Iop Mul);
         Vm.Assembler.emit b (Const (Int 7));
         Vm.Assembler.emit b (Iop Add);
         Vm.Assembler.emit b Retv));
  let pad cls =
    for j = 0 to 11 do
      ignore
        (Vm.Classfile.add_method rt cls
           ~name:(Printf.sprintf "pad%d" j)
           ~nargs:0
           (Bytecode [| Const (Int j); Retv |]))
    done
  in
  pad root;
  let prev = ref "Disp0" in
  for i = 1 to 15 do
    let name = Printf.sprintf "Disp%d" i in
    let c = Vm.Classfile.declare_class rt ~name ~super:!prev ~fields:[] () in
    pad c;
    prev := name
  done;
  let leaves =
    Array.init 6 (fun i ->
        Vm.Classfile.declare_class rt
          ~name:(Printf.sprintf "DispLeaf%d" i)
          ~super:!prev ~fields:[] ())
  in
  let recv i cls =
    let o = Vm.Runtime.alloc rt cls in
    Vm.Runtime.set_field o fv (Int (i + 1));
    Obj o
  in
  (root, Array.mapi recv leaves)

(* run(arr, n): sum arr[i mod len].tag() over n iterations — one
   invokevirtual site in a tight bytecode loop, so dispatch cost is the
   signal, not call-in overhead. *)
let dispatch_driver ?hint rt =
  let drv = Vm.Classfile.declare_class rt ~name:"DispDrv" ~fields:[] () in
  Vm.Assembler.define_method rt drv ~name:"run" ~static:true ~nargs:2 (fun b ->
      let open Vm.Assembler in
      let i = local b and acc = local b and len = local b in
      emit b (Load 0);
      emit b Alen;
      emit b (Store len);
      emit b (Const (Int 0));
      emit b (Store i);
      emit b (Const (Int 0));
      emit b (Store acc);
      let loop = new_label b and stop = new_label b in
      place b loop;
      emit b (Load i);
      emit b (Load 1);
      if_ b Ge stop;
      emit b (Load 0);
      emit b (Load i);
      emit b (Load len);
      emit b (Iop Rem);
      emit b Aload;
      emit b (Invoke (Virtual ("tag", 0, hint)));
      emit b (Load acc);
      emit b (Iop Add);
      emit b (Store acc);
      emit b (Load i);
      emit b (Const (Int 1));
      emit b (Iop Add);
      emit b (Store i);
      goto b loop;
      place b stop;
      emit b (Load acc);
      emit b Retv)

(* the checksum the driver must produce: receiver k carries field k+1 and
   tag() returns v * 31 + 7 *)
let dispatch_expect ~nrecv ~iters =
  let s = ref 0 in
  for i = 0 to iters - 1 do
    s := !s + ((((i mod nrecv) + 1) * 31) + 7)
  done;
  !s

(* One interpreter configuration on a fresh runtime.  [ic = false] is the
   pre-feedback baseline: no quickening AND no CHA memoization (both are
   this layer), so every dispatch is the full superclass chain walk.
   Returns the runtime, the checksum of one (warmup) run, and a thunk that
   runs the workload once more — the caller times it. *)
let dispatch_interp_make ~ic ~nrecv ~iters =
  let rt = Vm.Natives.boot () in
  if not ic then rt.ic_enabled <- false;
  let _, recvs = dispatch_setup rt in
  let driver = dispatch_driver rt in
  let arr = Arr (Array.sub recvs 0 nrecv) in
  let run () =
    (* the CHA memo is a global flag: pin it to this configuration for the
       duration of the run (the no-ic runtime never memoizes, so flipping
       the flag per run keeps its vtables pristine) *)
    let old_memo = !Vm.Classfile.cha_memo in
    Vm.Classfile.cha_memo := ic;
    Fun.protect
      ~finally:(fun () -> Vm.Classfile.cha_memo := old_memo)
      (fun () -> Vm.Value.to_int (Vm.Interp.call rt driver [| arr; Int iters |]))
  in
  (* warmup quickens the site (when enabled) before any timing *)
  let v = run () in
  (rt, v, run)

(* One feedback-directed compile of the driver.  [`Guarded]: mono profile,
   no CHA help -> class-id guard + direct call with a deopt side exit.
   [`Cha]: static hint + no overrides -> unguarded direct call.  [`Poly]:
   3-entry dispatch chain.  [`Generic]: megamorphic profile -> residual
   generic dispatch.  Returns the checksum, a run thunk for timing and the
   compile's devirtualization deps (empty iff nothing was speculated). *)
let dispatch_compiled_make ~mode ~iters =
  let rt = Lancet.Api.boot () in
  let root, recvs = dispatch_setup rt in
  let hint = match mode with `Cha -> Some root | _ -> None in
  let driver = dispatch_driver ?hint rt in
  let nrecv = match mode with `Guarded | `Cha -> 1 | `Poly -> 3 | `Generic -> 6 in
  let arr = Arr (Array.sub recvs 0 nrecv) in
  (* train the interpreter's inline cache: it is the profile the compiler
     speculates on ([`Generic] trains past poly_limit, leaving mega) *)
  ignore (Vm.Interp.call rt driver [| arr; Int (50 * nrecv) |]);
  match Lancet.Tiering.compile rt driver with
  | None -> failwith "dispatch bench: compile declined"
  | Some (fn, deps, _) ->
    let v = fn [| arr; Int iters |] in
    (Vm.Value.to_int v, (fun () -> ignore (fn [| arr; Int iters |])), deps)

(* One timed execution.  Configurations under comparison are timed in
   interleaved rounds with the per-configuration minimum kept: round-robin
   cancels machine drift between measurement windows, and the minimum is
   the standard noise-robust statistic for a fixed-work microbenchmark. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let dispatch_rounds = 5

let dispatch_bench () =
  header "Dispatch: inline caches (interpreter) and devirtualization (JIT)";
  let iters = 300_000 in
  let shapes = [ ("mono", 1); ("poly", 3); ("mega", 6) ] in
  pr "\n-- interpreter, %d calls through one site (ms; ic off = chain walk) --\n"
    iters;
  let interp =
    List.map
      (fun (name, nrecv) ->
        let expect = dispatch_expect ~nrecv ~iters in
        let _, v_ic, run_ic = dispatch_interp_make ~ic:true ~nrecv ~iters in
        let _, v_no, run_no = dispatch_interp_make ~ic:false ~nrecv ~iters in
        if v_ic <> expect || v_no <> expect then
          failwith ("dispatch bench: interpreter checksum mismatch at " ^ name);
        let t_ic = ref infinity and t_no = ref infinity in
        for _ = 1 to dispatch_rounds do
          t_ic := min !t_ic (time_once run_ic);
          t_no := min !t_no (time_once run_no)
        done;
        let t_ic = !t_ic and t_no = !t_no in
        pr "%-8s ic %8.1f   no-ic %8.1f   speedup %5.2fx\n" name
          (t_ic *. 1000.) (t_no *. 1000.) (t_no /. t_ic);
        (name, t_ic, t_no))
      shapes
  in
  pr "\n-- compiled, same site (ms) --\n";
  let configs =
    List.map
      (fun (name, mode, nrecv) ->
        let v, run, deps = dispatch_compiled_make ~mode ~iters in
        if v <> dispatch_expect ~nrecv ~iters then
          failwith ("dispatch bench: compiled checksum mismatch at " ^ name);
        (name, run, deps, ref infinity))
      [
        ("guarded-direct (mono)", `Guarded, 1);
        ("cha-direct (mono)", `Cha, 1);
        ("dispatch-chain (poly)", `Poly, 3);
        ("generic (mega)", `Generic, 6);
      ]
  in
  for _ = 1 to dispatch_rounds do
    List.iter (fun (_, run, _, best) -> best := min !best (time_once run)) configs
  done;
  let compiled =
    List.map
      (fun (name, _, deps, best) ->
        pr "%-24s %8.1f   (deps: %s)\n" name (!best *. 1000.)
          (if deps = [] then "none" else String.concat "," deps);
        (name, !best))
      configs
  in
  let tof n = List.assoc n compiled in
  let guarded = tof "guarded-direct (mono)" and cha = tof "cha-direct (mono)" in
  pr "\nguarded vs unguarded CHA on the mono site: %.2fx\n" (cha /. guarded);
  let _, poly_ic, poly_no =
    List.find (fun (n, _, _) -> n = "poly") interp
  in
  pr "interpreter poly speedup (acceptance floor 1.5x): %.2fx\n"
    (poly_no /. poly_ic);
  if poly_no /. poly_ic < 1.5 then
    pr "WARNING: poly speedup below the 1.5x acceptance floor\n";
  if cha /. guarded < 0.9 then
    pr "WARNING: guarded direct call more than 10%% behind the CHA baseline\n";
  let oc = open_out "BENCH_dispatch.json" in
  output_string oc
    (Printf.sprintf
       "{\n  \"iters\": %d,\n  \"interp\": {\n%s\n  },\n  \"compiled\": \
        {\n%s,\n    \"guarded_vs_cha\": %.3f\n  }\n}\n"
       iters
       (String.concat ",\n"
          (List.map
             (fun (n, t_ic, t_no) ->
               Printf.sprintf
                 "    %S: {\"ic_ms\": %.3f, \"no_ic_ms\": %.3f, \"speedup\": \
                  %.3f}"
                 n (t_ic *. 1000.) (t_no *. 1000.) (t_no /. t_ic))
             interp))
       (String.concat ",\n"
          (List.map
             (fun (n, t) -> Printf.sprintf "    %S: %.3f" n (t *. 1000.))
             compiled))
       (cha /. guarded));
  close_out oc;
  pr "\nwrote BENCH_dispatch.json\n"

(* Correctness gate for the dispatch layer (part of [check]): all
   interpreter and compiled configurations must agree on the checksum, the
   trained sites must land in the expected cache states, and the mono
   compiles must actually speculate (non-empty deps).  No timing
   assertions, so it cannot flake. *)
let dispatch_check () =
  let iters = 20_000 in
  List.iter
    (fun (name, nrecv) ->
      let expect = dispatch_expect ~nrecv ~iters in
      let rt_ic, v_ic, _ = dispatch_interp_make ~ic:true ~nrecv ~iters in
      let _, v_no, _ = dispatch_interp_make ~ic:false ~nrecv ~iters in
      if v_ic <> expect || v_no <> expect then
        failwith ("dispatch check: checksum mismatch at " ^ name);
      let _, _, mono, poly, mega = Vm.Runtime.ic_stats rt_ic in
      let ok =
        match name with
        | "mono" -> mono >= 1
        | "poly" -> poly >= 1
        | _ -> mega >= 1
      in
      if not ok then
        failwith
          (Printf.sprintf
             "dispatch check: %s site not in expected state (mono=%d poly=%d \
              mega=%d)"
             name mono poly mega))
    [ ("mono", 1); ("poly", 3); ("mega", 6) ];
  List.iter
    (fun (name, mode, nrecv, want_deps) ->
      let v, _, deps = dispatch_compiled_make ~mode ~iters in
      if v <> dispatch_expect ~nrecv ~iters then
        failwith ("dispatch check: compiled checksum mismatch at " ^ name);
      if want_deps && deps = [] then
        failwith ("dispatch check: " ^ name ^ " compile did not speculate"))
    [
      ("guarded", `Guarded, 1, true);
      ("cha", `Cha, 1, true);
      ("poly", `Poly, 3, true);
      ("generic", `Generic, 6, false);
    ];
  pr "check dispatch          ok  (ic on/off and all compiled modes agree)\n"

(* ------------------------------------------------------------------ *)
(* Background JIT: compile-queue promotion vs synchronous promotion     *)

type bgjit_run = {
  bj_result : int;
  bj_total_ms : float;
  bj_mutator_compile_ms : float; (* Compile_end wall time on the mutator *)
  bj_worker_compile_ms : float; (* Compile_end wall time on worker domains *)
  bj_tier_up_ms : float; (* start -> last Cache_install *)
  bj_stats : Bgjit.stats option; (* None in synchronous mode *)
}

(* The tiered kmeans workload under a given compile mode.  A lightweight
   sink splits compile wall time by worker id — in synchronous mode all of
   it lands on the mutator (worker 0), i.e. it is interpreter pause time;
   with a pool it moves to the worker tracks — and records the timestamp of
   the last code-cache install, giving time-to-tier-up. *)
let bgjit_kmeans ~jit_threads ~rows ~calls =
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:8 ~jit_threads ()
  in
  let p = Mini.Front.load rt tiered_kmeans_src in
  let d = 4 and k = 3 in
  let ps =
    Array.init (rows * d) (fun i -> float_of_int ((i * 37 mod 101) - 50) /. 7.)
  in
  let cs = Array.init (k * d) (fun i -> float_of_int ((i * 53 mod 23) - 11) /. 3.) in
  let mutator_ms = ref 0.0 and worker_ms = ref 0.0 in
  let last_install = ref nan in
  let sink =
    {
      Obs.sink_name = "bgjit-bench";
      sink_emit =
        (fun ~ts ev ->
          match ev with
          | Obs.Compile_end { ci_worker; ci_ms; _ } ->
            if ci_worker = 0 then mutator_ms := !mutator_ms +. ci_ms
            else worker_ms := !worker_ms +. ci_ms
          | Obs.Cache_install _ -> last_install := ts
          | _ -> ());
      sink_flush = ignore;
    }
  in
  Obs.attach sink;
  let t0 = Obs.now () in
  let acc = ref 0 in
  for _ = 1 to calls do
    acc :=
      !acc
      + Vm.Value.to_int
          (Mini.Front.call p "assign_all"
             [| Farr ps; Farr cs; Int rows; Int d; Int k |])
  done;
  (match pool with Some b -> Bgjit.drain b | None -> ());
  let total_ms = (Obs.now () -. t0) *. 1000. in
  Obs.flush ();
  Obs.detach sink;
  let stats = Option.map Bgjit.stats pool in
  (match pool with Some b -> Bgjit.shutdown b | None -> ());
  {
    bj_result = !acc;
    bj_total_ms = total_ms;
    bj_mutator_compile_ms = !mutator_ms;
    bj_worker_compile_ms = !worker_ms;
    bj_tier_up_ms =
      (if Float.is_nan !last_install then 0.0 else (!last_install -. t0) *. 1000.);
    bj_stats = stats;
  }

let bgjit_bench () =
  header "Background JIT: synchronous vs compile-queue promotion (kmeans)";
  let rows = 200 and calls = 150 in
  let sync = bgjit_kmeans ~jit_threads:0 ~rows ~calls in
  let async = bgjit_kmeans ~jit_threads:2 ~rows ~calls in
  if sync.bj_result <> async.bj_result then
    failwith "bgjit bench: sync/async result mismatch";
  let line name r =
    pr "%-28s %10.1f ms total %10.2f ms mutator-compile %10.2f ms tier-up\n"
      name r.bj_total_ms r.bj_mutator_compile_ms r.bj_tier_up_ms
  in
  line "sync (--jit-threads 0)" sync;
  line "async (--jit-threads 2)" async;
  (match async.bj_stats with
  | Some s ->
    pr "%-28s enqueued=%d coalesced=%d dropped=%d installed=%d stale=%d \
        blacklisted=%d\n"
      "queue" s.Bgjit.s_enqueued s.Bgjit.s_coalesced s.Bgjit.s_dropped
      s.Bgjit.s_installed s.Bgjit.s_stale s.Bgjit.s_blacklisted
  | None -> ());
  let stat_json = function
    | None -> "null"
    | Some (s : Bgjit.stats) ->
      Printf.sprintf
        "{\"enqueued\": %d, \"coalesced\": %d, \"dropped\": %d, \"installed\": \
         %d, \"stale\": %d, \"blacklisted\": %d}"
        s.Bgjit.s_enqueued s.Bgjit.s_coalesced s.Bgjit.s_dropped
        s.Bgjit.s_installed s.Bgjit.s_stale s.Bgjit.s_blacklisted
  in
  let run_json name r =
    Printf.sprintf
      "  %S: {\n    \"total_ms\": %.3f,\n    \"mutator_compile_ms\": %.3f,\n   \
       \ \"worker_compile_ms\": %.3f,\n    \"tier_up_ms\": %.3f,\n    \
       \"result\": %d,\n    \"queue\": %s\n  }"
      name r.bj_total_ms r.bj_mutator_compile_ms r.bj_worker_compile_ms
      r.bj_tier_up_ms r.bj_result (stat_json r.bj_stats)
  in
  let oc = open_out "BENCH_bgjit.json" in
  output_string oc
    (Printf.sprintf "{\n%s,\n%s\n}\n" (run_json "sync" sync)
       (run_json "async" async));
  close_out oc;
  pr "\nwrote BENCH_bgjit.json\n"

(* Correctness gate for the compile queue (part of [check], so it runs
   under dune runtest): the async run must produce the sync checksum, every
   request must be accounted for (installed + stale + blacklisted =
   enqueued), and nothing may be left queued or stuck in flight. *)
let bgjit_check () =
  let rows = 40 and calls = 30 in
  let sync = bgjit_kmeans ~jit_threads:0 ~rows ~calls in
  let async = bgjit_kmeans ~jit_threads:2 ~rows ~calls in
  if sync.bj_result <> async.bj_result then
    failwith
      (Printf.sprintf "bgjit check: checksum mismatch (sync %d, async %d)"
         sync.bj_result async.bj_result);
  (match async.bj_stats with
  | None -> failwith "bgjit check: no pool stats"
  | Some s ->
    pr
      "check bgjit             ok  (enqueued=%d installed=%d stale=%d \
       blacklisted=%d)\n"
      s.Bgjit.s_enqueued s.Bgjit.s_installed s.Bgjit.s_stale s.Bgjit.s_blacklisted;
    if s.Bgjit.s_enqueued = 0 then
      failwith "bgjit check: nothing was enqueued (promotion not routed)";
    if s.Bgjit.s_installed = 0 then
      failwith "bgjit check: nothing was installed";
    if s.Bgjit.s_installed + s.Bgjit.s_stale + s.Bgjit.s_blacklisted
       <> s.Bgjit.s_enqueued
    then
      failwith
        (Printf.sprintf "bgjit check: lost requests (%d enqueued, %d resolved)"
           s.Bgjit.s_enqueued
           (s.Bgjit.s_installed + s.Bgjit.s_stale + s.Bgjit.s_blacklisted)));
  ()

(* Trace smoke test for the runtest gate: a small tiered kmeans run with a
   Chrome sink attached must produce well-formed JSON containing at least
   one compile-end event. *)
let trace_smoke () =
  let chrome = Obs.Chrome.create () in
  Obs.with_sink (Obs.Chrome.sink chrome) (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
      let p = Mini.Front.load rt tiered_kmeans_src in
      let d = 3 and k = 2 in
      let rows = 20 in
      let ps = Array.init (rows * d) (fun i -> float_of_int (i mod 17) /. 3.) in
      let cs = Array.init (k * d) (fun i -> float_of_int (i mod 5) /. 2.) in
      for _ = 1 to 10 do
        ignore
          (Mini.Front.call p "assign_all"
             [| Farr ps; Farr cs; Int rows; Int d; Int k |])
      done);
  let path = Filename.temp_file "lancet_trace" ".json" in
  Obs.Chrome.write chrome path;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Obs.Json.validate data with
  | Ok () -> ()
  | Error e -> failwith ("trace smoke: invalid JSON: " ^ e));
  if not (Vm.Strutil.contains data "compile-end") then
    failwith "trace smoke: no compile-end event in trace";
  pr "trace smoke ok (%d events, %d bytes of JSON)\n"
    (Obs.Chrome.event_count chrome)
    (String.length data)

(* ------------------------------------------------------------------ *)
(* Warm-start benchmark: cold vs profile-replayed warm runs of the
   tiered k-means kernel.  Measures time-to-peak (boot to first
   code-cache install) and first-N-iteration latency, and gates on
   cold/warm checksum equivalence plus the warm run reaching tiered code
   strictly earlier (the replayed profile compiles before iteration 0). *)

type warm_leg = {
  wl_checksum : int;
  wl_install_iter : int; (* iteration of the first install; -1 = pre-loop *)
  wl_ttp_ms : float; (* boot -> first code-cache install *)
  wl_lat : float array; (* per-iteration latency, ms *)
}

let warmup_leg ?profile_in ?profile_out ~iters ~rows () =
  Persist.reset ();
  if profile_out <> None then Persist.collect ();
  let t_boot = Unix.gettimeofday () in
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:8 ~jit_threads:0 ()
  in
  (* deterministic legs: synchronous compiles, first install attributed to
     the iteration (or the pre-loop replay) that triggered it *)
  let cur_iter = ref (-1) in
  let install_iter = ref min_int in
  let install_ts = ref nan in
  let sink =
    {
      Obs.sink_name = "warmup";
      sink_emit =
        (fun ~ts:_ ev ->
          match ev with
          | Obs.Cache_install _ when !install_iter = min_int ->
            install_iter := !cur_iter;
            install_ts := Unix.gettimeofday ()
          | _ -> ());
      sink_flush = ignore;
    }
  in
  Obs.attach sink;
  let p = Mini.Front.load rt tiered_kmeans_src in
  (match profile_in with
  | Some path -> ignore (Persist.replay_file ?pool rt path)
  | None -> ());
  let d = 4 and k = 3 in
  let ps =
    Array.init (rows * d) (fun i -> float_of_int ((i * 37 mod 101) - 50) /. 7.)
  in
  let cs =
    Array.init (k * d) (fun i -> float_of_int ((i * 53 mod 23) - 11) /. 3.)
  in
  let lat = Array.make iters 0.0 in
  let checksum = ref 0 in
  for i = 0 to iters - 1 do
    cur_iter := i;
    let t0 = Unix.gettimeofday () in
    checksum :=
      (!checksum
      + Vm.Value.to_int
          (Mini.Front.call p "assign_all"
             [| Farr ps; Farr cs; Int rows; Int d; Int k |]))
      land 0xFFFFFF;
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
  done;
  Obs.detach sink;
  (match profile_out with Some path -> Persist.save rt path | None -> ());
  (match pool with Some b -> Bgjit.shutdown b | None -> ());
  {
    wl_checksum = !checksum;
    wl_install_iter = (if !install_iter = min_int then iters else !install_iter);
    wl_ttp_ms =
      (if Float.is_nan !install_ts then 0.0
       else (!install_ts -. t_boot) *. 1000.);
    wl_lat = lat;
  }

let warmup ~small () =
  if not small then header "Warm start: profile snapshot replay";
  let iters = if small then 10 else 30 in
  let rows = if small then 40 else 200 in
  let path = Filename.temp_file "lancet_warm" ".lprof" in
  let cold = warmup_leg ~profile_out:path ~iters ~rows () in
  let warm = warmup_leg ~profile_in:path ~iters ~rows () in
  let warm_ok = Persist.warm_matches () in
  let warm_stale = Persist.warm_stale () in
  Sys.remove path;
  if cold.wl_checksum <> warm.wl_checksum then
    failwith
      (Printf.sprintf "warmup: checksum mismatch cold=%d warm=%d"
         cold.wl_checksum warm.wl_checksum);
  if warm.wl_install_iter >= cold.wl_install_iter then
    failwith
      (Printf.sprintf
         "warmup: warm start did not reach tiered code earlier (cold iter \
          %d, warm iter %d)"
         cold.wl_install_iter warm.wl_install_iter);
  if warm_ok = 0 then
    failwith "warmup: no warm compile matched its recorded fingerprint";
  let oc = open_out "BENCH_warmup.json" in
  let lat_json a =
    String.concat ", "
      (List.map (Printf.sprintf "%.3f")
         (Array.to_list (Array.sub a 0 (min 8 (Array.length a)))))
  in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"kmeans-assign\",\n\
    \  \"iters\": %d,\n\
    \  \"rows\": %d,\n\
    \  \"warm_fp_matches\": %d,\n\
    \  \"warm_fp_stale\": %d,\n\
    \  \"cold\": {\"checksum\": %d, \"first_install_iter\": %d, \
     \"time_to_peak_ms\": %.3f, \"first_iters_ms\": [%s]},\n\
    \  \"warm\": {\"checksum\": %d, \"first_install_iter\": %d, \
     \"time_to_peak_ms\": %.3f, \"first_iters_ms\": [%s]}\n\
     }\n"
    iters rows warm_ok warm_stale cold.wl_checksum cold.wl_install_iter
    cold.wl_ttp_ms (lat_json cold.wl_lat) warm.wl_checksum
    warm.wl_install_iter warm.wl_ttp_ms (lat_json warm.wl_lat);
  close_out oc;
  pr
    "warmup: cold first install at iter %d (%.2fms), warm at iter %d \
     (%.2fms), %d fingerprint match(es), checksums equal -> \
     BENCH_warmup.json\n"
    cold.wl_install_iter cold.wl_ttp_ms warm.wl_install_iter warm.wl_ttp_ms
    warm_ok;
  Persist.reset ()

(* ------------------------------------------------------------------ *)
(* Chaos engineering: disabled-checkpoint overhead + seeded fault soak  *)

(* Cost of one disabled chaos checkpoint (`if !Chaos.on && Chaos.fire
   ...`).  The sites sit on the compile queue, the install path and the
   interpreter's invoke path, so the disabled form must stay a single
   load+branch — same brutal < 1ns budget as the other always-compiled
   checkpoints, minima of repeated runs so scheduler noise cannot trip
   the gate. *)
let chaos_overhead ~iters =
  Chaos.disable ();
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline () =
    for i = 1 to iters do
      body i
    done
  in
  let guarded () =
    for i = 1 to iters do
      body i;
      if !Chaos.on && Chaos.fire Chaos.compile_crash then acc := !acc lxor 1
    done
  in
  let min_of f =
    ignore (time f);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let b = min_of baseline in
  let g = min_of guarded in
  ignore !acc;
  Float.max 0. ((g -. b) /. float_of_int iters *. 1e9)

let chaos_guard ~iters =
  let ns = chaos_overhead ~iters in
  if ns > 1.0 then
    failwith
      (Printf.sprintf
         "chaos: disabled injection checkpoint costs %.2fns (> 1ns budget)" ns)

(* Cost of the governor's promotion checkpoint when no governor is
   attached: the promotion path pays one mutable-field load plus an
   option match.  Same budget. *)
let governor_overhead ~iters =
  let rt = Vm.Natives.boot ~tiering:true () in
  let t = rt.tiering in
  t.t_promote_gate <- None;
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let body i = acc := (!acc + (i * 31)) land 0xFFFFFF in
  let baseline () =
    for i = 1 to iters do
      body i
    done
  in
  let guarded () =
    for i = 1 to iters do
      body i;
      match t.t_promote_gate with None -> () | Some _ -> acc := !acc lxor 1
    done
  in
  let min_of f =
    ignore (time f);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let b = min_of baseline in
  let g = min_of guarded in
  ignore !acc;
  Float.max 0. ((g -. b) /. float_of_int iters *. 1e9)

let governor_guard ~iters =
  let ns = governor_overhead ~iters in
  if ns > 1.0 then
    failwith
      (Printf.sprintf
         "governor: detached promotion checkpoint costs %.2fns (> 1ns budget)"
         ns)

(* The soak workload mixes several methods so faults land on different
   mids: a hot loop, a speculation that deopts periodically, and a cheap
   mixer, all folded into one checksum. *)
let chaos_soak_src =
  {|
def soak_calc(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
def soak_spec(x: int): int =
  if (Lancet.speculate(x < 100000)) x * 3 + 1 else x - 7
def soak_mix(a: int, b: int): int = (a * 17 + b * 29) % 1000003
|}

let chaos_soak_drive p ~calls =
  let acc = ref 0 in
  let put v = acc := (!acc + Vm.Value.to_int v) land 0xFFFFFF in
  for i = 1 to calls do
    put (Mini.Front.call p "soak_calc" [| Int 60; Int i |]);
    (* every 40th call breaks the speculation: deopt pressure for the
       governor's circuit breaker *)
    let x = if i mod 40 = 0 then 1_000_000 + i else i in
    put (Mini.Front.call p "soak_spec" [| Int x |]);
    put (Mini.Front.call p "soak_mix" [| Int i; Int !acc |])
  done;
  !acc

let chaos_soak_interp ~calls =
  let rt = Vm.Natives.boot () in
  let p = Mini.Front.load rt chaos_soak_src in
  chaos_soak_drive p ~calls

(* Every fault site armed at once; only the seed varies between legs. *)
let chaos_soak_spec seed =
  Printf.sprintf
    "compile_crash:p=0.2,compile_stall:p=0.3:ms=20,compile_garbage:p=0.2,queue_full:p=0.2,cache_evict:p=0.3,hier_churn:p=0.002,seed=%d"
    seed

(* One seeded soak leg: tiered runtime, two JIT worker domains, small
   code cache, governor attached with a tight watchdog, every fault site
   armed.  Returns the checksum plus the evidence strings. *)
let chaos_soak_leg ~seed ~calls =
  (match Chaos.configure (chaos_soak_spec seed) with
  | Ok () -> ()
  | Error e -> failwith ("chaos soak: bad spec: " ^ e));
  Forensics.enable ();
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:8 ~tier_cache_size:4
      ~jit_threads:2 ()
  in
  let gov =
    Lancet.Governor.attach
      ~cfg:
        {
          Lancet.Governor.default_config with
          Lancet.Governor.g_watchdog_ms = 100.0;
        }
      ?pool ~ticker:true rt
  in
  let p = Mini.Front.load rt chaos_soak_src in
  let t0 = Unix.gettimeofday () in
  let checksum = chaos_soak_drive p ~calls in
  (match pool with Some b -> Bgjit.drain ~timeout_ms:2000 b | None -> ());
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Lancet.Governor.detach gov;
  let bg = match pool with Some b -> Bgjit.stats_string b | None -> "" in
  (match pool with Some b -> Bgjit.shutdown ~timeout_ms:2000 b | None -> ());
  let fires = Chaos.stats_string () in
  let gov_report = Lancet.Governor.report gov in
  Chaos.disable ();
  (checksum, ms, fires, gov_report, bg)

(* THE soak invariant (gated here and in CI): under any seeded fault
   schedule the program computes the pure-interpreter checksum, and the
   process neither crashes nor wedges — every leg exits through the
   bounded drain/shutdown path above. *)
let chaos_soak ?(quiet = false) ~seeds ~calls () =
  let expect = chaos_soak_interp ~calls in
  List.map
    (fun seed ->
      let sum, ms, fires, gov, bg = chaos_soak_leg ~seed ~calls in
      if sum <> expect then
        failwith
          (Printf.sprintf
             "chaos soak: seed %d checksum mismatch (interp %d, chaos %d)" seed
             expect sum);
      if not quiet then begin
        pr "seed %-6d ok %8.1f ms  checksum=%d\n" seed ms sum;
        pr "            fires: %s\n" fires;
        pr "            governor: %s\n" gov;
        if bg <> "" then pr "            bgjit: %s\n" bg
      end;
      (seed, ms, fires, gov))
    seeds

let chaos_bench () =
  header "Chaos engineering: checkpoint overhead + seeded fault soak";
  let iters = 20_000_000 in
  let chaos_ns = chaos_overhead ~iters in
  let gov_ns = governor_overhead ~iters in
  pr "\n%-36s %10.2f ns/site\n" "chaos disabled (single branch)" chaos_ns;
  pr "%-36s %10.2f ns/site\n" "governor detached (option load)" gov_ns;
  pr "\nsoak: checksum vs pure interpreter under seeded faults\n";
  let rows = chaos_soak ~seeds:[ 11; 23; 42 ] ~calls:400 () in
  let row (seed, ms, fires, gov) =
    Printf.sprintf
      "    {\"seed\": %d, \"ms\": %.3f, \"fires\": %S, \"governor\": %S}" seed
      ms fires gov
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc
    (Printf.sprintf
       "{\n\
       \  \"chaos_checkpoint_ns\": %.4f,\n\
       \  \"governor_checkpoint_ns\": %.4f,\n\
       \  \"soak\": [\n\
        %s\n\
       \  ]\n\
        }\n"
       chaos_ns gov_ns
       (String.concat ",\n" (List.map row rows)));
  close_out oc;
  pr "\nwrote BENCH_chaos.json\n"

(* CI entry point (`bench/main.exe chaos-soak [seeds...]`): soak each
   seed; on any failure dump the forensics journal to chaos-journal.txt
   (uploaded as a CI artifact) and exit non-zero. *)
let chaos_soak_ci () =
  let seeds =
    let rest =
      Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
    in
    match List.filter_map int_of_string_opt rest with
    | [] -> [ 11; 23; 42 ]
    | l -> l
  in
  header "Chaos soak (CI gate)";
  match chaos_soak ~seeds ~calls:600 () with
  | rows -> pr "chaos soak ok (%d seeds)\n" (List.length rows)
  | exception e ->
    let oc = open_out "chaos-journal.txt" in
    output_string oc
      (Printf.sprintf "chaos soak failed: %s\n\nforensics journal:\n"
         (Printexc.to_string e));
    List.iter
      (fun d -> output_string oc (Forensics.decision_to_string d ^ "\n"))
      (Forensics.decisions ());
    close_out oc;
    prerr_endline
      ("chaos soak FAILED: " ^ Printexc.to_string e
     ^ " (journal in chaos-journal.txt)");
    exit 1

(* Fast correctness gate (runs under the dune [runtest] alias): same
   workloads at small sizes, results must match the interpreter and the
   tiered counters must move; no timing assertions, so it cannot flake. *)
let tier_check () =
  let rows = tier_rows ~small:true in
  List.iter
    (fun r ->
      pr "check %-18s ok  (compiles=%d cache_hits=%d deopts=%d)\n" r.tr_name
        r.tr_compiles r.tr_hits r.tr_deopts;
      if r.tr_name <> "csv-generic" && r.tr_compiles = 0 then
        failwith (r.tr_name ^ ": expected at least one compile");
      if r.tr_hits = 0 then failwith (r.tr_name ^ ": expected cache hits"))
    rows;
  (match List.find_opt (fun r -> r.tr_name = "speculate-deopt") rows with
  | Some r when r.tr_deopts > 0 -> ()
  | _ -> failwith "speculate workload: expected deopts");
  List.iter
    (fun r ->
      if r.tr_compiles > 0 && List.assoc_opt "compile-end" r.tr_events = None
      then failwith (r.tr_name ^ ": compiles counted but no compile-end event"))
    rows;
  trace_smoke ();
  bgjit_check ();
  dispatch_check ();
  obs_guard ~iters:2_000_000;
  profile_guard ~iters:2_000_000;
  forensics_guard ~iters:2_000_000;
  irtrace_guard ~iters:20_000_000;
  chaos_guard ~iters:2_000_000;
  governor_guard ~iters:2_000_000;
  ignore (chaos_soak ~quiet:true ~seeds:[ 42 ] ~calls:120 ());
  pr "check chaos soak        ok  (seed 42)\n";
  warmup ~small:true ();
  pr "tiered execution check ok\n"

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "table1" -> table1 ()
  | "table2-kmeans" ->
    table2 H.Kmeans "Table 2a: k-means clustering" ~with_manual:false ()
  | "table2-logreg" ->
    table2 H.Logreg "Table 2b: logistic regression" ~with_manual:true ()
  | "table2-namescore" ->
    table2 H.Namescore "Table 2c: name score" ~with_manual:false ()
  | "ablate" -> ablate ()
  | "micro" -> micro ()
  | "tiered" -> tiered ()
  | "obs" -> obs_bench ()
  | "profile" -> profile_bench ()
  | "forensics" -> forensics_bench ()
  | "irtrace" -> irtrace_bench ()
  | "bgjit" -> bgjit_bench ()
  | "dispatch" -> dispatch_bench ()
  | "warmup" -> warmup ~small:false ()
  | "chaos" -> chaos_bench ()
  | "chaos-soak" -> chaos_soak_ci ()
  | "check" -> tier_check ()
  | "all" ->
    table1 ();
    table2 H.Kmeans "Table 2a: k-means clustering" ~with_manual:false ();
    table2 H.Logreg "Table 2b: logistic regression" ~with_manual:true ();
    table2 H.Namescore "Table 2c: name score" ~with_manual:false ();
    ablate ();
    micro ();
    tiered ();
    obs_bench ();
    profile_bench ();
    forensics_bench ();
    irtrace_bench ();
    bgjit_bench ();
    dispatch_bench ();
    chaos_bench ();
    warmup ~small:false ()
  | other ->
    prerr_endline ("unknown benchmark: " ^ other);
    exit 1
