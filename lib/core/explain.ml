(* `lancet explain`: annotate a Mini source listing with what the JIT did to
   it — tier promotions, compilations (backend, node counts, time), deopt
   sites and, when a profiler ran, per-line residency.  A collector sink
   records events keyed by method id / (method id, pc); rendering resolves
   ids back to source lines through the methods' line tables. *)

type compile_rec = {
  xc_backend : string;
  xc_fallback : string option;
  xc_nodes_in : int;
  xc_nodes_out : int;
  xc_ms : float;
}

type promote_rec = { xp_label : string; xp_calls : int; xp_backedges : int }

type deopt_rec = {
  xd_label : string;
  xd_tag : string;
  xd_kind : Obs.deopt_kind;
  xd_line : int;
  mutable xd_count : int;
}

type t = {
  promotes : (int, promote_rec) Hashtbl.t; (* mid -> first promotion *)
  compiles : (int, compile_rec list ref) Hashtbl.t; (* mid -> in order *)
  deopts : (int * int, deopt_rec) Hashtbl.t; (* (mid, pc) -> site *)
}

let create () =
  {
    promotes = Hashtbl.create 16;
    compiles = Hashtbl.create 16;
    deopts = Hashtbl.create 16;
  }

let on_event t (ev : Obs.event) =
  match ev with
  | Obs.Tier_promote { mid; meth; calls; backedges } ->
    if not (Hashtbl.mem t.promotes mid) then
      Hashtbl.replace t.promotes mid
        { xp_label = meth; xp_calls = calls; xp_backedges = backedges }
  | Obs.Compile_end c ->
    let l =
      match Hashtbl.find_opt t.compiles c.Obs.ci_mid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.compiles c.Obs.ci_mid l;
        l
    in
    l :=
      {
        xc_backend = c.Obs.ci_backend;
        xc_fallback = c.Obs.ci_fallback;
        xc_nodes_in = c.Obs.ci_nodes_in;
        xc_nodes_out = c.Obs.ci_nodes_out;
        xc_ms = c.Obs.ci_ms;
      }
      :: !l
  | Obs.Deopt { mid; meth; tag; kind; pc; line } -> (
    match Hashtbl.find_opt t.deopts (mid, pc) with
    | Some d -> d.xd_count <- d.xd_count + 1
    | None ->
      Hashtbl.replace t.deopts (mid, pc)
        { xd_label = meth; xd_tag = tag; xd_kind = kind; xd_line = line;
          xd_count = 1 })
  | _ -> ()

let sink t =
  {
    Obs.sink_name = "explain";
    sink_emit = (fun ~ts:_ ev -> on_event t ev);
    sink_flush = ignore;
  }

(* ---- journal lookups (used when the decision journal ran) ---- *)

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

(* Causes the journal recorded for deopts at [(mid, pc)], deduped and in
   first-occurrence order. *)
let deopt_causes mid pc =
  Forensics.for_mid mid
  |> List.filter_map (fun (d : Forensics.decision) ->
         match d.d_action with
         | Forensics.Deopt e when e.pc = pc ->
           let c = Forensics.cause_to_string d.d_cause in
           if c = "" then None else Some c
         | _ -> None)
  |> dedup

(* What the engine did about [mid]'s deopts/invalidation — the rest of the
   causal chain, for the explain deopt-site disasm. *)
let deopt_consequences mid =
  Forensics.for_mid mid
  |> List.filter_map (fun (d : Forensics.decision) ->
         match d.d_action with
         | Forensics.Invalidate _ | Forensics.Devirt_kill _
         | Forensics.Blacklist _ | Forensics.Drop ->
           let c = Forensics.cause_to_string d.d_cause in
           Some
             (Forensics.action_to_string d.d_action
             ^ if c = "" then "" else " <- " ^ c)
         | _ -> None)
  |> dedup

(* ---- rendering ---- *)

let describe_compiles ?(timings = true) recs =
  let recs = List.rev recs in
  let one (r : compile_rec) =
    Printf.sprintf "%s backend%s, %d->%d nodes%s" r.xc_backend
      (match r.xc_fallback with
      | Some why -> Printf.sprintf " (typed fell back: %s)" why
      | None -> "")
      r.xc_nodes_in r.xc_nodes_out
      (if timings then Printf.sprintf ", %.2fms" r.xc_ms else "")
  in
  match recs with
  | [] -> "compiled"
  | [ r ] -> "compiled: " ^ one r
  | r :: _ ->
    Printf.sprintf "compiled x%d (last: %s)" (List.length recs) (one r)

let kind_word = function
  | Obs.Interpret -> "to interpreter"
  | Obs.Recompile -> "recompile"

(* Annotate [src] (the Mini program text) with everything [t] recorded.
   Events whose method has no line table (or which point outside [src]) are
   listed at the end rather than dropped. *)
let render ?(timings = true) ?(ir = false) ?profiler t rt ~src =
  let lines = String.split_on_char '\n' src in
  let nlines = List.length lines in
  let ann : (int, string list ref) Hashtbl.t = Hashtbl.create 32 in
  let unplaced = ref [] in
  let add_at line msg =
    if line > 0 && line <= nlines then begin
      let l =
        match Hashtbl.find_opt ann line with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace ann line l;
          l
      in
      l := msg :: !l
    end
    else unplaced := msg :: !unplaced
  in
  let def_line mid =
    match Vm.Runtime.find_method_by_id rt mid with
    | Some m -> Vm.Runtime.meth_def_line m
    | None -> 0
  in
  Hashtbl.iter
    (fun mid (p : promote_rec) ->
      add_at (def_line mid)
        (Printf.sprintf "%s: promoted to tier 1 (calls=%d backedges=%d)"
           p.xp_label p.xp_calls p.xp_backedges))
    t.promotes;
  Hashtbl.iter
    (fun mid recs ->
      let label =
        match Vm.Runtime.find_method_by_id rt mid with
        | Some m -> Vm.Runtime.meth_label m
        | None -> Printf.sprintf "mid %d" mid
      in
      add_at (def_line mid)
        (Printf.sprintf "%s: %s" label (describe_compiles ~timings !recs)))
    t.compiles;
  (* deopt sites, stable order: by (mid, pc) *)
  let deopt_sites =
    Hashtbl.fold (fun k d acc -> (k, d) :: acc) t.deopts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((mid, pc), (d : deopt_rec)) ->
      let causes =
        if !Forensics.on then
          match deopt_causes mid pc with
          | [] -> ""
          | cs -> "; cause: " ^ String.concat "; " cs
        else ""
      in
      add_at d.xd_line
        (Printf.sprintf "%s: deopt x%d @pc %d (%s, %s)%s" d.xd_label d.xd_count
           pc d.xd_tag (kind_word d.xd_kind) causes))
    deopt_sites;
  (* inline-cache sites, stable order: by (mid, pc).  State is read live
     from the runtime (the sites ARE the profile), not replayed from
     events, so this shows where each site ended up: mono:Cls, poly:{A,B}
     or mega. *)
  let ic_sites =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) rt.Vm.Types.ic_sites []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((mid, pc), (site : Vm.Types.callsite)) ->
      match Vm.Runtime.find_method_by_id rt mid with
      | None -> ()
      | Some m ->
        add_at (Vm.Runtime.line_at m pc)
          (Printf.sprintf "%s: inline cache @pc %d %s (hits=%d misses=%d)"
             (Vm.Runtime.meth_label m) pc
             (Vm.Inlinecache.state_string site)
             site.Vm.Types.cs_hits site.Vm.Types.cs_misses))
    ic_sites;
  (match profiler with
  | None -> ()
  | Some p ->
    List.iter
      (fun (line, (ls : Profiler.line_stat)) ->
        if ls.Profiler.ls_samples > 0 || ls.Profiler.ls_exec_ms > 0.0 then
          add_at line
            (Printf.sprintf "residency: %d interp samples, %.2fms compiled"
               ls.Profiler.ls_samples ls.Profiler.ls_exec_ms))
      (Profiler.line_stats p));
  (* --ir: per-line surviving-node counts per phase, from each method's most
     recent compile (Irtrace must have been enabled during the run) *)
  if ir then begin
    let snaps = Irtrace.snapshots () in
    (* last compile per (mid, spec) *)
    let last_cid : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (sn : Irtrace.snapshot) ->
        let k = (sn.Irtrace.sn_mid, sn.Irtrace.sn_spec) in
        match Hashtbl.find_opt last_cid k with
        | Some c when c >= sn.Irtrace.sn_cid -> ()
        | _ -> Hashtbl.replace last_cid k sn.Irtrace.sn_cid)
      snaps;
    (* phase order and per-(line, phase) counts of the surviving compiles *)
    let phases : (int * string, string list ref) Hashtbl.t = Hashtbl.create 8 in
    let counts = Hashtbl.create 64 in
    let labels = Hashtbl.create 8 in
    let lines_of = Hashtbl.create 64 in
    List.iter
      (fun (sn : Irtrace.snapshot) ->
        let k = (sn.Irtrace.sn_mid, sn.Irtrace.sn_spec) in
        if Hashtbl.find_opt last_cid k = Some sn.Irtrace.sn_cid then begin
          Hashtbl.replace labels k sn.Irtrace.sn_meth;
          (match Hashtbl.find_opt phases k with
          | Some l -> l := sn.Irtrace.sn_phase :: !l
          | None -> Hashtbl.replace phases k (ref [ sn.Irtrace.sn_phase ]));
          List.iter
            (fun (line, c) ->
              Hashtbl.replace counts (k, line, sn.Irtrace.sn_phase) c;
              if not (List.mem line (Option.value ~default:[]
                                       (Hashtbl.find_opt lines_of k)))
              then
                Hashtbl.replace lines_of k
                  (line :: Option.value ~default:[] (Hashtbl.find_opt lines_of k)))
            sn.Irtrace.sn_lines
        end)
      snaps;
    Hashtbl.iter
      (fun k lns ->
        let ph = List.rev !(Hashtbl.find phases k) in
        let label = try Hashtbl.find labels k with Not_found -> "" in
        List.iter
          (fun line ->
            let cells =
              List.map
                (fun p ->
                  Printf.sprintf "%s %d" p
                    (Option.value ~default:0
                       (Hashtbl.find_opt counts (k, line, p))))
                ph
            in
            add_at line
              (Printf.sprintf "%s: ir nodes %s" label
                 (String.concat " -> " cells)))
          (List.sort compare lns))
      lines_of
  end;
  let b = Buffer.create 4096 in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      Buffer.add_string b (Printf.sprintf "%4d | %s\n" n line);
      match Hashtbl.find_opt ann n with
      | None -> ()
      | Some msgs ->
        List.iter
          (fun m -> Buffer.add_string b (Printf.sprintf "     |   ^ %s\n" m))
          (List.rev !msgs))
    lines;
  if !unplaced <> [] then begin
    Buffer.add_string b "\nnot attributed to a source line:\n";
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "  - %s\n" m))
      (List.rev !unplaced)
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet why`: per-method causal timelines from the decision journal  *)

let meth_header rt mid label =
  match Vm.Runtime.find_method_by_id rt mid with
  | Some m ->
    let line = Vm.Runtime.meth_def_line m in
    if line > 0 then
      Printf.sprintf "%s (%s:%d)" label
        (if m.Vm.Types.msrc = "" then "?" else m.Vm.Types.msrc)
        line
    else label
  | None -> label

(* Render the journal as one timeline per method, oldest decision first.
   [meth] filters by label substring ("f" matches "Main.f").  Timestamps
   are relative to the first journaled decision of the run. *)
let why_report ?meth rt =
  let t0 =
    match Forensics.decisions () with
    | d :: _ -> d.Forensics.d_ts
    | [] -> 0.0
  in
  let keep label =
    match meth with
    | None -> true
    | Some f -> Vm.Strutil.contains label f
  in
  let b = Buffer.create 2048 in
  let groups =
    List.filter (fun (_, label, _) -> keep label) (Forensics.timeline ())
  in
  (* deterministic output: order groups by mid rather than first-decision
     time, so report goldens are byte-diff-stable across runs (background
     workers journal in a racy order) *)
  let groups = List.sort (fun (a, _, _) (b, _, _) -> compare a b) groups in
  if groups = [] then
    Buffer.add_string b
      (match meth with
      | Some f ->
        Printf.sprintf
          "no journaled decisions for methods matching %S (did it get hot?)\n" f
      | None ->
        "no journaled decisions: nothing tiered up (lower --tier-threshold, \
         or run longer)\n")
  else
    List.iter
      (fun (mid, label, ds) ->
        Buffer.add_string b
          (Printf.sprintf "== %s ==\n" (meth_header rt mid label));
        (* fingerprints repeat when a recompile reproduced the same graph;
           flag those so "recompiled but nothing changed" is visible *)
        let seen_fps = Hashtbl.create 4 in
        List.iter
          (fun d ->
            let extra =
              match d.Forensics.d_action with
              | Forensics.Ir_fingerprint { fp; _ } ->
                if Hashtbl.mem seen_fps fp then
                  "  (identical to previous compile)"
                else begin
                  Hashtbl.replace seen_fps fp ();
                  ""
                end
              | _ -> ""
            in
            Buffer.add_string b
              ("  " ^ Forensics.decision_to_string ~t0 d ^ extra ^ "\n"))
          ds;
        Buffer.add_char b '\n')
      groups;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet health`: whole-run pathology report                          *)

let health_report rt =
  let b = Buffer.create 2048 in
  let t0 =
    match Forensics.decisions () with
    | d :: _ -> d.Forensics.d_ts
    | [] -> 0.0
  in
  let paths = Forensics.detect () in
  Buffer.add_string b
    (Printf.sprintf "checked %d journaled decisions: %s\n\n" (Forensics.seen ())
       (match List.length paths with
       | 0 -> "no pathologies detected"
       | 1 -> "1 pathology detected"
       | n -> Printf.sprintf "%d pathologies detected" n));
  List.iter
    (fun (p : Forensics.pathology) ->
      (* prefer the pathology's own source line (a deopt/IC site); fall
         back to the method's defining line *)
      let line =
        if p.p_line > 0 then p.p_line
        else
          match Vm.Runtime.find_method_by_id rt p.p_mid with
          | Some m -> Vm.Runtime.meth_def_line m
          | None -> 0
      in
      let src =
        match Vm.Runtime.find_method_by_id rt p.p_mid with
        | Some m when m.Vm.Types.msrc <> "" -> m.Vm.Types.msrc
        | _ -> "?"
      in
      Buffer.add_string b
        (Printf.sprintf "PATHOLOGY %s: %s%s\n" p.p_kind p.p_meth
           (if line > 0 then Printf.sprintf " (%s:%d)" src line else ""));
      Buffer.add_string b (Printf.sprintf "  %s\n" p.p_what);
      if p.p_evidence <> [] then begin
        Buffer.add_string b "  evidence:\n";
        List.iter
          (fun d ->
            Buffer.add_string b
              ("    " ^ Forensics.decision_to_string ~t0 d ^ "\n"))
          p.p_evidence
      end;
      Buffer.add_string b (Printf.sprintf "  suggestion: %s\n\n" p.p_knob))
    paths;
  Buffer.add_string b
    (Printf.sprintf "run stats: %s\n" (Vm.Runtime.tier_stats_string rt));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet ir`: pass-by-pass snapshots with structural diffs           *)

let short_fp fp = if String.length fp > 12 then String.sub fp 0 12 else fp

let fmt_counts cs =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) cs)

(* Render the Irtrace snapshot store, one section per compile, filtered by
   method-label substring and phase-name substring.  With [diff], each
   phase transition prints what it created/eliminated and which source
   line's nodes went away. *)
let ir_report ?(meth = "") ?(phase = "") ?(diff = false) () =
  let snaps = Irtrace.snapshots () in
  let groups : (int, Irtrace.snapshot list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (sn : Irtrace.snapshot) ->
      match Hashtbl.find_opt groups sn.Irtrace.sn_cid with
      | Some l -> l := sn :: !l
      | None ->
        Hashtbl.replace groups sn.Irtrace.sn_cid (ref [ sn ]);
        order := sn.Irtrace.sn_cid :: !order)
    snaps;
  let b = Buffer.create 4096 in
  let shown = ref 0 in
  List.iter
    (fun cid ->
      let sns = List.rev !(Hashtbl.find groups cid) in
      match sns with
      | [] -> ()
      | first :: _ ->
        if meth = "" || Vm.Strutil.contains first.Irtrace.sn_meth meth then begin
          Buffer.add_string b
            (Printf.sprintf "== %s [%s] compile #%d ==\n" first.Irtrace.sn_meth
               first.Irtrace.sn_spec cid);
          let prev = ref None in
          List.iter
            (fun (sn : Irtrace.snapshot) ->
              (if diff then
                 match !prev with
                 | Some p ->
                   let d = Irtrace.diff p sn in
                   if d.Irtrace.df_created <> [] || d.Irtrace.df_eliminated <> []
                   then begin
                     let from_n, to_n = d.Irtrace.df_nodes in
                     Buffer.add_string b
                       (Printf.sprintf "  delta %s -> %s: %+d nodes\n"
                          d.Irtrace.df_from d.Irtrace.df_to (to_n - from_n));
                     if d.Irtrace.df_eliminated <> [] then
                       Buffer.add_string b
                         (Printf.sprintf "    eliminated: %s\n"
                            (fmt_counts d.Irtrace.df_eliminated));
                     if d.Irtrace.df_created <> [] then
                       Buffer.add_string b
                         (Printf.sprintf "    created:    %s\n"
                            (fmt_counts d.Irtrace.df_created));
                     List.iter
                       (fun (line, dl) ->
                         Buffer.add_string b
                           (Printf.sprintf "    line %d: %+d nodes\n" line dl))
                       d.Irtrace.df_lines
                   end
                 | None -> ());
              prev := Some sn;
              if Phases.matches ~filter:phase sn.Irtrace.sn_phase then begin
                incr shown;
                Buffer.add_string b
                  (Printf.sprintf "-- %s: %d nodes / %d blocks  fp %s%s --\n"
                     sn.Irtrace.sn_phase sn.Irtrace.sn_nodes sn.Irtrace.sn_blocks
                     (short_fp sn.Irtrace.sn_fp)
                     (match sn.Irtrace.sn_meta with
                     | [] -> ""
                     | meta ->
                       "  ("
                       ^ String.concat ", "
                           (List.map (fun (k, v) -> k ^ "=" ^ v) meta)
                       ^ ")"));
                if sn.Irtrace.sn_ops <> [] then
                  Buffer.add_string b
                    (Printf.sprintf "   ops: %s\n" (fmt_counts sn.Irtrace.sn_ops));
                match sn.Irtrace.sn_text with
                | Some t ->
                  Buffer.add_string b t;
                  Buffer.add_char b '\n'
                | None -> ()
              end)
            sns;
          Buffer.add_char b '\n'
        end)
    (List.rev !order);
  if !shown = 0 then
    Buffer.add_string b
      "no IR snapshots matched: nothing tiered up (lower --tier-threshold or \
       run longer), or the --method/--phase filters excluded everything\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet coach`: missed optimizations ranked by profile residency     *)

let miss_suggestion (m : Irtrace.missed) =
  match m.Irtrace.ms_reason with
  | Irtrace.Cse_effect_barrier { op } ->
    Printf.sprintf
      "hoist the repeated '%s' into a local (val x = ...): the JIT must \
       reload it because it cannot prove the location unchanged" op
  | Irtrace.Dce_kept_effectful { op } ->
    Printf.sprintf
      "'%s' computes a value nobody reads but cannot be deleted (it may have \
       effects); drop the expression or use its result" op
  | Irtrace.Devirt_declined { callee; ic_state } ->
    if ic_state = "mega" then
      Printf.sprintf
        "the '%s' site is megamorphic, so the JIT emits generic dispatch; \
         split the call site per receiver class to re-enable guarded direct \
         calls" callee
    else if String.length ic_state >= 4 && String.sub ic_state 0 4 = "poly"
    then
      Printf.sprintf
        "the '%s' site saw several receiver classes (%s): a dispatch chain \
         replaced the direct call; narrow the receiver mix for a single \
         guarded call" callee ic_state
    else if ic_state = "feedback-off" then
      "run under the tiered JIT (type feedback on) so the inline cache can \
       seed devirtualization"
    else
      Printf.sprintf
        "the inline cache had no profile for '%s' when the method compiled; \
         warm the site up before promotion or raise --tier-threshold" callee
  | Irtrace.Guard_fusion_declined { why; _ } ->
    if why = "multi-use" then
      "the branch condition is also used elsewhere, so the guard cannot fuse \
       into the branch; recompute the compare at the branch site for a bare \
       compare-and-branch"
    else if why = "materialized-bool" then
      "the compare was lowered to a 0/1 value before the branch (a boolean \
       local or speculation argument), so the guard re-tests the \
       materialized value; inline the compare into the branch condition"
    else
      "the branch condition is computed in a different block; move the \
       compare next to the branch so the backend can fuse it"

let coach_report ?profiler rt =
  let misses = Irtrace.misses () in
  let b = Buffer.create 2048 in
  if misses = [] then
    Buffer.add_string b
      "no missed-optimization records: either nothing was compiled (lower \
       --tier-threshold or run longer) or the pipeline found nothing to \
       decline\n"
  else begin
    (* residency by source line, for ranking *)
    let total_samples = ref 0 in
    let by_line = Hashtbl.create 32 in
    (match profiler with
    | None -> ()
    | Some p ->
      List.iter
        (fun (line, (ls : Profiler.line_stat)) ->
          total_samples := !total_samples + ls.Profiler.ls_samples;
          Hashtbl.replace by_line line ls)
        (Profiler.line_stats p));
    let residency (m : Irtrace.missed) =
      match Hashtbl.find_opt by_line m.Irtrace.ms_line with
      | Some (ls : Profiler.line_stat) ->
        (ls.Profiler.ls_samples, ls.Profiler.ls_exec_ms)
      | None -> (0, 0.0)
    in
    let ranked =
      List.sort
        (fun a b ->
          let sa, ma = residency a and sb, mb = residency b in
          match compare (sb, mb) (sa, ma) with
          | 0 -> compare b.Irtrace.ms_count a.Irtrace.ms_count
          | c -> c)
        misses
    in
    let loc (m : Irtrace.missed) =
      let src =
        match Vm.Runtime.find_method_by_id rt m.Irtrace.ms_mid with
        | Some meth when meth.Vm.Types.msrc <> "" -> meth.Vm.Types.msrc
        | _ -> "?"
      in
      if m.Irtrace.ms_line > 0 then
        Printf.sprintf "%s:%d" src m.Irtrace.ms_line
      else src
    in
    let label (m : Irtrace.missed) =
      if m.Irtrace.ms_meth <> "" then m.Irtrace.ms_meth
      else
        match Vm.Runtime.find_method_by_id rt m.Irtrace.ms_mid with
        | Some meth -> Vm.Runtime.meth_label meth
        | None -> Printf.sprintf "mid %d" m.Irtrace.ms_mid
    in
    Buffer.add_string b
      (Printf.sprintf "%d missed-optimization site%s, hottest first:\n\n"
         (List.length ranked)
         (if List.length ranked = 1 then "" else "s"));
    List.iteri
      (fun i (m : Irtrace.missed) ->
        let samples, exec_ms = residency m in
        let hot =
          if samples > 0 && !total_samples > 0 then
            Printf.sprintf "  [hot: %d%% of interp samples%s]"
              (100 * samples / !total_samples)
              (if exec_ms > 0.0 then Printf.sprintf " + %.1fms compiled" exec_ms
               else "")
          else if exec_ms > 0.0 then
            Printf.sprintf "  [hot: %.1fms compiled]" exec_ms
          else ""
        in
        Buffer.add_string b
          (Printf.sprintf "%2d. %s (%s)%s\n" (i + 1) (loc m) (label m) hot);
        Buffer.add_string b
          (Printf.sprintf "    %s  [%s, x%d]\n"
             (Irtrace.reason_to_string m.Irtrace.ms_reason)
             m.Irtrace.ms_phase m.Irtrace.ms_count);
        Buffer.add_string b (Printf.sprintf "    fix: %s\n\n" (miss_suggestion m)))
      ranked
  end;
  Buffer.contents b
