(* `lancet explain`: annotate a Mini source listing with what the JIT did to
   it — tier promotions, compilations (backend, node counts, time), deopt
   sites and, when a profiler ran, per-line residency.  A collector sink
   records events keyed by method id / (method id, pc); rendering resolves
   ids back to source lines through the methods' line tables. *)

type compile_rec = {
  xc_backend : string;
  xc_fallback : string option;
  xc_nodes_in : int;
  xc_nodes_out : int;
  xc_ms : float;
}

type promote_rec = { xp_label : string; xp_calls : int; xp_backedges : int }

type deopt_rec = {
  xd_label : string;
  xd_tag : string;
  xd_kind : Obs.deopt_kind;
  xd_line : int;
  mutable xd_count : int;
}

type t = {
  promotes : (int, promote_rec) Hashtbl.t; (* mid -> first promotion *)
  compiles : (int, compile_rec list ref) Hashtbl.t; (* mid -> in order *)
  deopts : (int * int, deopt_rec) Hashtbl.t; (* (mid, pc) -> site *)
}

let create () =
  {
    promotes = Hashtbl.create 16;
    compiles = Hashtbl.create 16;
    deopts = Hashtbl.create 16;
  }

let on_event t (ev : Obs.event) =
  match ev with
  | Obs.Tier_promote { mid; meth; calls; backedges } ->
    if not (Hashtbl.mem t.promotes mid) then
      Hashtbl.replace t.promotes mid
        { xp_label = meth; xp_calls = calls; xp_backedges = backedges }
  | Obs.Compile_end c ->
    let l =
      match Hashtbl.find_opt t.compiles c.Obs.ci_mid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.compiles c.Obs.ci_mid l;
        l
    in
    l :=
      {
        xc_backend = c.Obs.ci_backend;
        xc_fallback = c.Obs.ci_fallback;
        xc_nodes_in = c.Obs.ci_nodes_in;
        xc_nodes_out = c.Obs.ci_nodes_out;
        xc_ms = c.Obs.ci_ms;
      }
      :: !l
  | Obs.Deopt { mid; meth; tag; kind; pc; line } -> (
    match Hashtbl.find_opt t.deopts (mid, pc) with
    | Some d -> d.xd_count <- d.xd_count + 1
    | None ->
      Hashtbl.replace t.deopts (mid, pc)
        { xd_label = meth; xd_tag = tag; xd_kind = kind; xd_line = line;
          xd_count = 1 })
  | _ -> ()

let sink t =
  {
    Obs.sink_name = "explain";
    sink_emit = (fun ~ts:_ ev -> on_event t ev);
    sink_flush = ignore;
  }

(* ---- journal lookups (used when the decision journal ran) ---- *)

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

(* Causes the journal recorded for deopts at [(mid, pc)], deduped and in
   first-occurrence order. *)
let deopt_causes mid pc =
  Forensics.for_mid mid
  |> List.filter_map (fun (d : Forensics.decision) ->
         match d.d_action with
         | Forensics.Deopt e when e.pc = pc ->
           let c = Forensics.cause_to_string d.d_cause in
           if c = "" then None else Some c
         | _ -> None)
  |> dedup

(* What the engine did about [mid]'s deopts/invalidation — the rest of the
   causal chain, for the explain deopt-site disasm. *)
let deopt_consequences mid =
  Forensics.for_mid mid
  |> List.filter_map (fun (d : Forensics.decision) ->
         match d.d_action with
         | Forensics.Invalidate _ | Forensics.Devirt_kill _
         | Forensics.Blacklist _ | Forensics.Drop ->
           let c = Forensics.cause_to_string d.d_cause in
           Some
             (Forensics.action_to_string d.d_action
             ^ if c = "" then "" else " <- " ^ c)
         | _ -> None)
  |> dedup

(* ---- rendering ---- *)

let describe_compiles ?(timings = true) recs =
  let recs = List.rev recs in
  let one (r : compile_rec) =
    Printf.sprintf "%s backend%s, %d->%d nodes%s" r.xc_backend
      (match r.xc_fallback with
      | Some why -> Printf.sprintf " (typed fell back: %s)" why
      | None -> "")
      r.xc_nodes_in r.xc_nodes_out
      (if timings then Printf.sprintf ", %.2fms" r.xc_ms else "")
  in
  match recs with
  | [] -> "compiled"
  | [ r ] -> "compiled: " ^ one r
  | r :: _ ->
    Printf.sprintf "compiled x%d (last: %s)" (List.length recs) (one r)

let kind_word = function
  | Obs.Interpret -> "to interpreter"
  | Obs.Recompile -> "recompile"

(* Annotate [src] (the Mini program text) with everything [t] recorded.
   Events whose method has no line table (or which point outside [src]) are
   listed at the end rather than dropped. *)
let render ?(timings = true) ?profiler t rt ~src =
  let lines = String.split_on_char '\n' src in
  let nlines = List.length lines in
  let ann : (int, string list ref) Hashtbl.t = Hashtbl.create 32 in
  let unplaced = ref [] in
  let add_at line msg =
    if line > 0 && line <= nlines then begin
      let l =
        match Hashtbl.find_opt ann line with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace ann line l;
          l
      in
      l := msg :: !l
    end
    else unplaced := msg :: !unplaced
  in
  let def_line mid =
    match Vm.Runtime.find_method_by_id rt mid with
    | Some m -> Vm.Runtime.meth_def_line m
    | None -> 0
  in
  Hashtbl.iter
    (fun mid (p : promote_rec) ->
      add_at (def_line mid)
        (Printf.sprintf "%s: promoted to tier 1 (calls=%d backedges=%d)"
           p.xp_label p.xp_calls p.xp_backedges))
    t.promotes;
  Hashtbl.iter
    (fun mid recs ->
      let label =
        match Vm.Runtime.find_method_by_id rt mid with
        | Some m -> Vm.Runtime.meth_label m
        | None -> Printf.sprintf "mid %d" mid
      in
      add_at (def_line mid)
        (Printf.sprintf "%s: %s" label (describe_compiles ~timings !recs)))
    t.compiles;
  (* deopt sites, stable order: by (mid, pc) *)
  let deopt_sites =
    Hashtbl.fold (fun k d acc -> (k, d) :: acc) t.deopts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((mid, pc), (d : deopt_rec)) ->
      let causes =
        if !Forensics.on then
          match deopt_causes mid pc with
          | [] -> ""
          | cs -> "; cause: " ^ String.concat "; " cs
        else ""
      in
      add_at d.xd_line
        (Printf.sprintf "%s: deopt x%d @pc %d (%s, %s)%s" d.xd_label d.xd_count
           pc d.xd_tag (kind_word d.xd_kind) causes))
    deopt_sites;
  (* inline-cache sites, stable order: by (mid, pc).  State is read live
     from the runtime (the sites ARE the profile), not replayed from
     events, so this shows where each site ended up: mono:Cls, poly:{A,B}
     or mega. *)
  let ic_sites =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) rt.Vm.Types.ic_sites []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((mid, pc), (site : Vm.Types.callsite)) ->
      match Vm.Runtime.find_method_by_id rt mid with
      | None -> ()
      | Some m ->
        add_at (Vm.Runtime.line_at m pc)
          (Printf.sprintf "%s: inline cache @pc %d %s (hits=%d misses=%d)"
             (Vm.Runtime.meth_label m) pc
             (Vm.Inlinecache.state_string site)
             site.Vm.Types.cs_hits site.Vm.Types.cs_misses))
    ic_sites;
  (match profiler with
  | None -> ()
  | Some p ->
    List.iter
      (fun (line, (ls : Profiler.line_stat)) ->
        if ls.Profiler.ls_samples > 0 || ls.Profiler.ls_exec_ms > 0.0 then
          add_at line
            (Printf.sprintf "residency: %d interp samples, %.2fms compiled"
               ls.Profiler.ls_samples ls.Profiler.ls_exec_ms))
      (Profiler.line_stats p));
  let b = Buffer.create 4096 in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      Buffer.add_string b (Printf.sprintf "%4d | %s\n" n line);
      match Hashtbl.find_opt ann n with
      | None -> ()
      | Some msgs ->
        List.iter
          (fun m -> Buffer.add_string b (Printf.sprintf "     |   ^ %s\n" m))
          (List.rev !msgs))
    lines;
  if !unplaced <> [] then begin
    Buffer.add_string b "\nnot attributed to a source line:\n";
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "  - %s\n" m))
      (List.rev !unplaced)
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet why`: per-method causal timelines from the decision journal  *)

let meth_header rt mid label =
  match Vm.Runtime.find_method_by_id rt mid with
  | Some m ->
    let line = Vm.Runtime.meth_def_line m in
    if line > 0 then
      Printf.sprintf "%s (%s:%d)" label
        (if m.Vm.Types.msrc = "" then "?" else m.Vm.Types.msrc)
        line
    else label
  | None -> label

(* Render the journal as one timeline per method, oldest decision first.
   [meth] filters by label substring ("f" matches "Main.f").  Timestamps
   are relative to the first journaled decision of the run. *)
let why_report ?meth rt =
  let t0 =
    match Forensics.decisions () with
    | d :: _ -> d.Forensics.d_ts
    | [] -> 0.0
  in
  let keep label =
    match meth with
    | None -> true
    | Some f -> Vm.Strutil.contains label f
  in
  let b = Buffer.create 2048 in
  let groups =
    List.filter (fun (_, label, _) -> keep label) (Forensics.timeline ())
  in
  if groups = [] then
    Buffer.add_string b
      (match meth with
      | Some f ->
        Printf.sprintf
          "no journaled decisions for methods matching %S (did it get hot?)\n" f
      | None ->
        "no journaled decisions: nothing tiered up (lower --tier-threshold, \
         or run longer)\n")
  else
    List.iter
      (fun (mid, label, ds) ->
        Buffer.add_string b
          (Printf.sprintf "== %s ==\n" (meth_header rt mid label));
        List.iter
          (fun d ->
            Buffer.add_string b
              ("  " ^ Forensics.decision_to_string ~t0 d ^ "\n"))
          ds;
        Buffer.add_char b '\n')
      groups;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* `lancet health`: whole-run pathology report                          *)

let health_report rt =
  let b = Buffer.create 2048 in
  let t0 =
    match Forensics.decisions () with
    | d :: _ -> d.Forensics.d_ts
    | [] -> 0.0
  in
  let paths = Forensics.detect () in
  Buffer.add_string b
    (Printf.sprintf "checked %d journaled decisions: %s\n\n" (Forensics.seen ())
       (match List.length paths with
       | 0 -> "no pathologies detected"
       | 1 -> "1 pathology detected"
       | n -> Printf.sprintf "%d pathologies detected" n));
  List.iter
    (fun (p : Forensics.pathology) ->
      (* prefer the pathology's own source line (a deopt/IC site); fall
         back to the method's defining line *)
      let line =
        if p.p_line > 0 then p.p_line
        else
          match Vm.Runtime.find_method_by_id rt p.p_mid with
          | Some m -> Vm.Runtime.meth_def_line m
          | None -> 0
      in
      let src =
        match Vm.Runtime.find_method_by_id rt p.p_mid with
        | Some m when m.Vm.Types.msrc <> "" -> m.Vm.Types.msrc
        | _ -> "?"
      in
      Buffer.add_string b
        (Printf.sprintf "PATHOLOGY %s: %s%s\n" p.p_kind p.p_meth
           (if line > 0 then Printf.sprintf " (%s:%d)" src line else ""));
      Buffer.add_string b (Printf.sprintf "  %s\n" p.p_what);
      if p.p_evidence <> [] then begin
        Buffer.add_string b "  evidence:\n";
        List.iter
          (fun d ->
            Buffer.add_string b
              ("    " ^ Forensics.decision_to_string ~t0 d ^ "\n"))
          p.p_evidence
      end;
      Buffer.add_string b (Printf.sprintf "  suggestion: %s\n\n" p.p_knob))
    paths;
  Buffer.add_string b
    (Printf.sprintf "run stats: %s\n" (Vm.Runtime.tier_stats_string rt));
  Buffer.contents b
