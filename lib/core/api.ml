(* The surgical JIT API (paper Figs. 2-3, Sec. 3): the standard macros that
   pair with the [Lancet] builtin class of the VM.  In plain interpretation
   the natives are identity/fallback operations; under Lancet compilation
   these macros take over (the LancetLib / LancetMacros pairing of Sec. 2.3). *)

open Vm.Types
module C = Compiler
module B = Lms.Builder
module Ir = Lms.Ir

let bool_rep ctx b = C.lift_const ctx (Int (if b then 1 else 0))

(* inline a thunk (zero-argument closure rep) *)
let run_thunk ctx (thunk : C.rep) : C.macro_result = C.funR ctx thunk [||]

(* --- compile-time execution ----------------------------------------- *)

(* freeze: evaluate the thunk at JIT-compile time (Sec. 2.3).  The closure is
   materialized with [evalM] and then simply called, on real values, via the
   interpreter. *)
let freeze_macro ctx (args : C.rep array) : C.macro_result =
  let v = C.evalM ctx args.(0) in
  let result = Vm.Interp.call_closure ctx.C.rt v [||] in
  C.Val (C.lift_const ctx result)

let unroll_macro _ctx args = C.Val args.(0)

(* Trip counts up to this unroll by default; larger ones only under the
   unrollTopLevel directive (the paper's loopy/shouldInline example). *)
let default_unroll_limit = 64

(* ntimes: unroll a loop with a compile-time trip count (Sec. 3.1) *)
let ntimes_macro ctx (args : C.rep array) : C.macro_result =
  match C.evalA ctx args.(0) with
  | Absval.Const (Int count)
    when count <= ctx.C.opts.C.max_unroll
         && (count <= default_unroll_limit || ctx.C.unroll_flag) ->
    let body = C.funR ctx args.(1) in
    let rec go i =
      if i >= count then C.Val (C.lift_const ctx Null)
      else
        match body [| C.lift_const ctx (Int i) |] with
        | C.Val _ -> go (i + 1)
        | C.Diverge -> C.Diverge
    in
    go 0
  | _ ->
    (* dynamic trip count: residual call to the interpreter fallback *)
    let m = Vm.Classfile.static_method ctx.C.rt ~cls:"Lancet" ~name:"ntimes" in
    C.residual_static ctx m args;
    C.Val (C.pop ctx)

(* --- speculation and deoptimization (Sec. 3.2) ----------------------- *)

let likely_macro ctx args =
  (match C.evalA ctx args.(0) with
  | Absval.Const (Int 0) ->
    Errors.warn "likely" "likely(cond) is statically false"
  | _ -> ());
  C.Val args.(0)

(* speculate: assume the test always succeeds; the failing path becomes a
   side exit into the interpreter (OSR-out). *)
let speculate_macro ctx (args : C.rep array) : C.macro_result =
  let cond = args.(0) in
  match C.evalA ctx cond with
  | Absval.Const (Int _) -> C.Val cond
  | _ ->
    let bt = B.new_block ctx.C.bld and bf = B.new_block ctx.C.bld in
    B.terminate ctx.C.bld
      (Ir.Br
         (cond, { tblock = bt.bid; targs = [||] }, { tblock = bf.bid; targs = [||] }));
    B.switch_to ctx.C.bld bf;
    (* the interpreter resumes just after the call, seeing [false] *)
    C.side_exit ctx ~kind:`Interpret ~tag:"speculate"
      ~extra:[ bool_rep ctx false ];
    B.switch_to ctx.C.bld bt;
    C.Val (bool_rep ctx true)

(* stable: freeze the current value but guard against change; on change,
   recompile with the new value (OSR-in) instead of deoptimizing for good. *)
let stable_macro ctx (args : C.rep array) : C.macro_result =
  let thunk = args.(0) in
  let v = C.evalM ctx thunk in
  let frozen = Vm.Interp.call_closure ctx.C.rt v [||] in
  let frozen_rep = C.lift_const ctx frozen in
  match C.funR ctx thunk [||] with
  | C.Diverge -> C.Diverge
  | C.Val fresh -> (
    match C.evalA ctx fresh with
    | Absval.Const fv when Vm.Value.equal fv frozen ->
      C.Val frozen_rep (* provably unchanged at compile time *)
    | _ ->
      let cond =
        match frozen with
        | Int _ -> C.icmp_s ctx Eq fresh frozen_rep
        | _ ->
          let veq = Vm.Classfile.static_method ctx.C.rt ~cls:"Sys" ~name:"veq" in
          C.emit ctx (Ir.CallStatic veq) [| C.resolve_materialized ctx fresh; frozen_rep |] Ir.Tbool
      in
      let bt = B.new_block ctx.C.bld and bf = B.new_block ctx.C.bld in
      B.terminate ctx.C.bld
        (Ir.Br
           (cond, { tblock = bt.bid; targs = [||] }, { tblock = bf.bid; targs = [||] }));
      B.switch_to ctx.C.bld bf;
      C.side_exit ctx ~kind:`Recompile ~tag:"stable"
        ~extra:[ C.resolve_materialized ctx fresh ];
      B.switch_to ctx.C.bld bt;
      C.Val frozen_rep)

let slowpath_macro ctx _args : C.macro_result =
  C.side_exit ctx ~kind:`Interpret ~tag:"slowpath"
    ~extra:[ C.lift_const ctx Null ];
  C.Diverge

let fastpath_macro ctx _args : C.macro_result =
  C.side_exit ctx ~kind:`Recompile ~tag:"fastpath"
    ~extra:[ C.lift_const ctx Null ];
  C.Diverge

(* --- delimited continuations (Sec. 3.2: shiftR / resetR) -------------- *)

let reset_macro ctx (args : C.rep array) : C.macro_result =
  let scope = { C.rs_caller = ctx.C.frame; rs_aborts = ref [] } in
  ctx.C.resets <- scope :: ctx.C.resets;
  let res = run_thunk ctx args.(0) in
  ctx.C.resets <- List.tl ctx.C.resets;
  let items =
    (match res with C.Val r -> [ (r, C.save ctx) ] | C.Diverge -> [])
    @ List.rev !(scope.C.rs_aborts)
  in
  match items with
  | [] -> C.Diverge
  | items ->
    C.Val
      (C.merge_flows ctx ~with_slots:false
         (List.map (fun (r, s) -> (s, r)) items))

(* shift: pass the current continuation (up to the nearest reset) to the
   body; the body's result becomes the reset's result. *)
let shift_macro ctx (args : C.rep array) : C.macro_result =
  match ctx.C.resets with
  | [] -> Errors.compile_error "shift without an enclosing reset"
  | scope :: _ -> (
    let fds =
      C.frame_descs ~stop_before:scope.C.rs_caller ctx ~extra_innermost:[]
    in
    let flat =
      List.concat_map
        (fun (fd : Ir.frame_desc) ->
          Array.to_list fd.Ir.fd_locals @ Array.to_list fd.Ir.fd_stack)
        fds
    in
    let k =
      C.emit ctx (Ir.Ext (C.Make_cont fds)) (Array.of_list flat) Ir.Tobj
    in
    match C.funR ctx args.(0) [| k |] with
    | C.Val r ->
      scope.C.rs_aborts := (r, C.save ctx) :: !(scope.C.rs_aborts);
      C.Diverge
    | C.Diverge -> C.Diverge)

(* --- controlled inlining (Sec. 3.1) ---------------------------------- *)

let with_policy ctx mode thunk =
  ctx.C.policy <- mode :: ctx.C.policy;
  let res = run_thunk ctx thunk in
  ctx.C.policy <- List.tl ctx.C.policy;
  res

let inline_always_macro ctx args = with_policy ctx C.Inline_always args.(0)
let inline_never_macro ctx args = with_policy ctx C.Inline_never args.(0)
let inline_nonrec_macro ctx args = with_policy ctx C.Inline_nonrec args.(0)

let scope_macro ~at ctx (args : C.rep array) : C.macro_result =
  let pat =
    match C.evalM ctx args.(0) with
    | Str s -> s
    | _ -> Errors.compile_error "at_scope: pattern must be a constant string"
  in
  let dir =
    match C.evalM ctx args.(1) with
    | Str s -> s
    | _ -> Errors.compile_error "at_scope: directive must be a constant string"
  in
  let hook = { C.sh_pattern = pat; sh_directive = dir; sh_at = at } in
  ctx.C.hooks <- hook :: ctx.C.hooks;
  let res = run_thunk ctx args.(2) in
  ctx.C.hooks <- List.tl ctx.C.hooks;
  res

let unroll_top_level_macro ctx args =
  let saved = ctx.C.unroll_flag in
  ctx.C.unroll_flag <- true;
  let res = run_thunk ctx args.(0) in
  ctx.C.unroll_flag <- saved;
  res

(* --- just-in-time program analysis (Sec. 3.3) ------------------------ *)

let check_no_alloc_macro ctx args =
  let coll = ref [] in
  ctx.C.alloc_watch <- coll :: ctx.C.alloc_watch;
  let res = run_thunk ctx args.(0) in
  ctx.C.alloc_watch <- List.tl ctx.C.alloc_watch;
  (match !coll with
  | [] -> ()
  | vs ->
    Errors.compile_error "checkNoAlloc failed:\n  %s"
      (String.concat "\n  " (List.rev vs)));
  res

let taint_macro ctx args =
  C.taint ctx args.(0);
  C.Val args.(0)

let untaint_macro ctx (args : C.rep array) =
  Hashtbl.remove ctx.C.taints args.(0);
  C.Val args.(0)

let check_no_leak_macro ctx args =
  let coll = ref [] in
  ctx.C.leak_watch <- coll :: ctx.C.leak_watch;
  let res = run_thunk ctx args.(0) in
  ctx.C.leak_watch <- List.tl ctx.C.leak_watch;
  (match !coll with
  | [] -> ()
  | vs ->
    Errors.compile_error "checkNoLeak failed:\n  %s"
      (String.concat "\n  " (List.rev vs)));
  res

(* --- installation ----------------------------------------------------- *)

let install rt =
  rt.compile_hook <- Some (fun rt v -> C.compile_value rt v);
  Tiering.install rt;
  let reg name fn = C.register_macro rt ~cls:"Lancet" ~name fn in
  reg "freeze" freeze_macro;
  reg "unroll" unroll_macro;
  reg "ntimes" ntimes_macro;
  reg "likely" likely_macro;
  reg "speculate" speculate_macro;
  reg "stable" stable_macro;
  reg "slowpath" slowpath_macro;
  reg "fastpath" fastpath_macro;
  reg "reset" reset_macro;
  reg "shift" shift_macro;
  reg "inline_always" inline_always_macro;
  reg "inline_never" inline_never_macro;
  reg "inline_nonrec" inline_nonrec_macro;
  reg "at_scope" (scope_macro ~at:true);
  reg "in_scope" (scope_macro ~at:false);
  reg "unroll_top_level" unroll_top_level_macro;
  reg "check_no_alloc" check_no_alloc_macro;
  reg "taint" taint_macro;
  reg "untaint" untaint_macro;
  reg "check_no_leak" check_no_leak_macro

(* Boot a runtime with builtins + the Lancet JIT installed.  [tiering]
   enables hotness-driven promotion of interpreted methods (tier 0 -> 1);
   see {!Vm.Runtime.create} for the knobs. *)
let boot ?tiering ?tier_threshold ?tier_cache_size ?jit_threads ?jit_queue
    ?inline_caches () =
  let rt =
    Vm.Natives.boot ?tiering ?tier_threshold ?tier_cache_size ?jit_threads
      ?jit_queue ?inline_caches ()
  in
  install rt;
  (* single consolidated exit-time flush for every registered writer
     (Chrome trace, profile snapshot, pending Exec_samples); idempotent,
     so [boot_bg] calling [boot] cannot double-register *)
  Obs.arm_exit_flush ();
  rt

(* Boot with background compilation: when [jit_threads > 0], spawns a
   [Bgjit] worker pool over the tiering compile pipeline and points the
   promotion path at it, so hot methods tier up off the mutator thread.
   Returns the pool so the caller can [Bgjit.drain]/[Bgjit.shutdown] (and
   read its stats); [None] means synchronous compilation, identical to
   [boot].  Callers must shut the pool down before process exit. *)
let boot_bg ?tiering ?tier_threshold ?tier_cache_size ?(jit_threads = 0)
    ?jit_queue ?inline_caches () =
  let rt =
    boot ?tiering ?tier_threshold ?tier_cache_size ~jit_threads ?jit_queue
      ?inline_caches ()
  in
  if jit_threads <= 0 then (rt, None)
  else begin
    let pool = Bgjit.create ~compile:Tiering.compile rt in
    Bgjit.install pool;
    (rt, Some pool)
  end
