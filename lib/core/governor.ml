(* The self-healing layer: detection (the forensics journal, the metrics
   registry, the pool counters) closed into remediation.  `lancet health`
   names a pathology and suggests a knob; the governor turns the same
   signals into actions the engine takes by itself, each one journaled
   with its cause so `lancet why` shows not just what went wrong but what
   the VM did about it.

   Four remediations:

   - Deopt-loop circuit breaker.  Every guard deopt reports in through
     [t_on_deopt]; after [g_deopt_k] strikes of the same (tag, pc) the
     method is demoted to the interpreter (invalidate + hotness counters
     zeroed) and a promotion gate holds it back until hotness reaches
     threshold * 2^level — exponential backoff.  Past [g_max_backoff]
     levels the method is blacklisted for good: the guard is structurally
     wrong and every OSR exit costs more than tier 0.

   - Compile watchdog.  [tick] reads [Bgjit.inflight_ages]; a compile
     running past [g_watchdog_ms] is abandoned through the existing
     generation-stamp discard path (bump the stamp; whatever the stalled
     worker eventually produces is stale and thrown away at install) —
     the mutator never waits on it.  The method is retried once on the
     queue; a second overdue instance blacklists it.

   - Queue backpressure.  Sustained [s_dropped] growth over a tick means
     promotion outruns compilation: the promotion threshold doubles
     (bounded), so fewer methods qualify; it decays halfway back per calm
     tick, floored at the value the runtime booted with.

   - Cache-thrash damping.  An eviction-rate spike over a tick gets the
     same hysteresis: raising the bar keeps borderline-hot methods from
     cycling through a full cache.

   All knob movements go through the one [throttle] helper, so every
   adjustment is journaled ([Throttle]) and counted.  Lock order: the
   governor's own mutex is taken first and [t_lock] (inside
   [tier_invalidate]) strictly after; nothing in the VM calls back into
   the governor while holding [t_lock]. *)

open Vm.Types

type config = {
  g_deopt_k : int; (* strikes on one guard before demotion *)
  g_max_backoff : int; (* backoff doublings before permanent blacklist *)
  g_watchdog_ms : float; (* per-compile wall-time budget *)
  g_drop_window : int; (* queue drops per tick that trigger backpressure *)
  g_evict_window : int; (* evictions per tick that trigger damping *)
  g_threshold_cap : int; (* upper bound for throttled promotion threshold *)
  g_tick_ms : float; (* ticker period when [attach ~ticker:true] *)
}

let default_config =
  {
    g_deopt_k = 4;
    g_max_backoff = 4;
    g_watchdog_ms = 500.0;
    g_drop_window = 4;
    g_evict_window = 8;
    g_threshold_cap = 1 lsl 20;
    g_tick_ms = 25.0;
  }

type stats = {
  mutable g_demotions : int;
  mutable g_backoffs : int; (* active backoff levels entered *)
  mutable g_blacklists : int;
  mutable g_watchdog_kills : int;
  mutable g_watchdog_retries : int;
  mutable g_throttle_ups : int;
  mutable g_throttle_downs : int;
  mutable g_repromotions : int;
}

(* Per-method breaker state.  [e_bar] > 0 gates promotion until hotness
   reaches it; 0 means the gate is open. *)
type entry = {
  e_strikes : (string * int, int) Hashtbl.t; (* (tag, pc) -> deopt count *)
  mutable e_level : int;
  mutable e_bar : int;
}

type t = {
  rt : runtime;
  pool : Bgjit.t option;
  cfg : config;
  lock : Mutex.t;
  entries : (int, entry) Hashtbl.t; (* mid -> breaker state *)
  killed : (int, float) Hashtbl.t; (* mid -> start ts of the killed instance *)
  kill_counts : (int, int) Hashtbl.t; (* mid -> overdue instances seen *)
  st : stats;
  base_threshold : int; (* promotion threshold at attach: throttle floor *)
  mutable last_dropped : int;
  mutable last_evictions : int;
  mutable stop : bool;
  mutable ticker : unit Domain.t option;
  (* metrics, when a registry was supplied *)
  m_demotions : Metrics.counter option;
  m_backoffs : Metrics.counter option;
  m_blacklists : Metrics.counter option;
  m_watchdog_kills : Metrics.counter option;
  m_throttles : Metrics.counter option;
}

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let mcount c = match c with Some c -> Metrics.inc c | None -> ()

let entry_for t mid =
  match Hashtbl.find_opt t.entries mid with
  | Some e -> e
  | None ->
    let e = { e_strikes = Hashtbl.create 4; e_level = 0; e_bar = 0 } in
    Hashtbl.replace t.entries mid e;
    e

let stats t = t.st

(* ------------------------------------------------------------------ *)
(* Deopt-loop circuit breaker                                          *)

(* Called from the deopt handler via [t_on_deopt].  Returns true when the
   governor took over remediation (so tiering skips its own recompile). *)
let on_deopt t (m : meth) tag pc _line =
  locked t (fun () ->
      let e = entry_for t m.mid in
      let key = (tag, pc) in
      let strikes =
        1 + Option.value ~default:0 (Hashtbl.find_opt e.e_strikes key)
      in
      Hashtbl.replace e.e_strikes key strikes;
      if strikes < t.cfg.g_deopt_k then false
      else begin
        Hashtbl.replace e.e_strikes key 0;
        e.e_level <- e.e_level + 1;
        let why = Forensics.Deopt_storm { tag; pc; strikes } in
        if e.e_level > t.cfg.g_max_backoff then begin
          (* backoff exhausted: the guard keeps failing at every level, so
             retire the method to the interpreter for good *)
          Vm.Runtime.tier_invalidate ~why t.rt m;
          m.mtier <- Tier_blacklisted;
          t.st.g_blacklists <- t.st.g_blacklists + 1;
          mcount t.m_blacklists;
          if !Forensics.on then
            Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
              ~cause:why
              (Forensics.Blacklist { err = "governor: deopt-loop breaker" })
        end
        else begin
          (* demote: back to tier 0 with counters zeroed, and gate
             re-promotion behind an exponentially growing hotness bar *)
          Vm.Runtime.tier_invalidate ~why t.rt m;
          m.mcalls <- 0;
          m.mbackedges <- 0;
          e.e_bar <- t.base_threshold * (1 lsl e.e_level);
          t.st.g_demotions <- t.st.g_demotions + 1;
          t.st.g_backoffs <- t.st.g_backoffs + 1;
          mcount t.m_demotions;
          mcount t.m_backoffs;
          if !Forensics.on then
            Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
              ~cause:why
              (Forensics.Demote { strikes; backoff = e.e_bar })
        end;
        true
      end)

(* Consulted by [Runtime.tiered_fn] after the hotness threshold: a gated
   method waits out its backoff, everything else promotes as usual. *)
let promote_gate t (m : meth) =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries m.mid with
      | None -> true
      | Some e ->
        if e.e_bar = 0 then true
        else if m.mcalls + m.mbackedges >= e.e_bar then begin
          e.e_bar <- 0;
          t.st.g_repromotions <- t.st.g_repromotions + 1;
          if !Forensics.on then
            Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
              ~cause:
                (Forensics.Hotness
                   { calls = m.mcalls; backedges = m.mbackedges })
              (Forensics.Repromote { level = e.e_level });
          true
        end
        else false)

(* ------------------------------------------------------------------ *)
(* Watchdog, backpressure, damping: the periodic tick                  *)

let throttle t ~knob ~cause ~up =
  let tr = t.rt.tiering in
  let was = tr.t_threshold in
  let now =
    if up then min (was * 2) t.cfg.g_threshold_cap
    else max (was / 2) t.base_threshold
  in
  if now <> was then begin
    tr.t_threshold <- now;
    if up then begin
      t.st.g_throttle_ups <- t.st.g_throttle_ups + 1;
      mcount t.m_throttles
    end
    else t.st.g_throttle_downs <- t.st.g_throttle_downs + 1;
    if !Forensics.on then
      Forensics.record ~cause (Forensics.Throttle { knob; was; now })
  end

let watchdog t =
  match t.pool with
  | None -> ()
  | Some pool ->
    List.iter
      (fun (mid, age_s) ->
        let age_ms = age_s *. 1000. in
        if age_ms > t.cfg.g_watchdog_ms then begin
          let started = Obs.now () -. age_s in
          let fresh =
            locked t (fun () ->
                (* one kill per inflight instance: identify it by start
                   time, so repeated ticks don't stack strikes while the
                   same stalled compile keeps aging *)
                match Hashtbl.find_opt t.killed mid with
                | Some ts when abs_float (ts -. started) < 0.5e-3 -> false
                | _ ->
                  Hashtbl.replace t.killed mid started;
                  let k =
                    1
                    + Option.value ~default:0 (Hashtbl.find_opt t.kill_counts mid)
                  in
                  Hashtbl.replace t.kill_counts mid k;
                  true)
          in
          if fresh then
            match Vm.Runtime.find_method_by_id t.rt mid with
            | None -> ()
            | Some m ->
              let kills =
                Option.value ~default:1 (Hashtbl.find_opt t.kill_counts mid)
              in
              let retry = kills <= 1 in
              let why =
                Forensics.Watchdog_timeout
                  { ms = age_ms; budget_ms = t.cfg.g_watchdog_ms }
              in
              (* abandon via the generation stamp: whatever the stalled
                 worker eventually returns is discarded at install *)
              Vm.Runtime.tier_invalidate ~why t.rt m;
              t.st.g_watchdog_kills <- t.st.g_watchdog_kills + 1;
              mcount t.m_watchdog_kills;
              if !Forensics.on then
                Forensics.record ~mid ~meth:(Vm.Runtime.meth_label m)
                  ~cause:why
                  (Forensics.Watchdog_kill { ms = age_ms; retry });
              if retry then begin
                t.st.g_watchdog_retries <- t.st.g_watchdog_retries + 1;
                ignore (Bgjit.enqueue ~why pool m)
              end
              else begin
                m.mtier <- Tier_blacklisted;
                t.st.g_blacklists <- t.st.g_blacklists + 1;
                mcount t.m_blacklists;
                if !Forensics.on then
                  Forensics.record ~mid ~meth:(Vm.Runtime.meth_label m)
                    ~cause:why
                    (Forensics.Blacklist { err = "governor: compile watchdog" })
              end
        end)
      (Bgjit.inflight_ages pool)

let backpressure t =
  match t.pool with
  | None -> ()
  | Some pool ->
    let dropped = (Bgjit.stats pool).Bgjit.s_dropped in
    let delta = dropped - t.last_dropped in
    t.last_dropped <- dropped;
    if delta >= t.cfg.g_drop_window then
      throttle t ~knob:"tier-threshold" ~up:true
        ~cause:(Forensics.Queue_pressure { dropped = delta })
    else if delta = 0 && t.rt.tiering.t_threshold > t.base_threshold then
      throttle t ~knob:"tier-threshold" ~up:false ~cause:Forensics.Unattributed

let damping t =
  let evictions = t.rt.tiering.t_evictions in
  let delta = evictions - t.last_evictions in
  t.last_evictions <- evictions;
  if delta >= t.cfg.g_evict_window then
    throttle t ~knob:"tier-threshold" ~up:true
      ~cause:(Forensics.Eviction_spike { evictions = delta })

(* One governor step: deterministic entry point for tests; the optional
   ticker domain just calls this on a period. *)
let tick t =
  watchdog t;
  backpressure t;
  damping t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let attach ?(cfg = default_config) ?reg ?pool ?(ticker = false) rt =
  let c name = Option.map (fun r -> Metrics.counter r name) reg in
  let t =
    {
      rt;
      pool;
      cfg;
      lock = Mutex.create ();
      entries = Hashtbl.create 32;
      killed = Hashtbl.create 8;
      kill_counts = Hashtbl.create 8;
      st =
        {
          g_demotions = 0;
          g_backoffs = 0;
          g_blacklists = 0;
          g_watchdog_kills = 0;
          g_watchdog_retries = 0;
          g_throttle_ups = 0;
          g_throttle_downs = 0;
          g_repromotions = 0;
        };
      base_threshold = rt.tiering.t_threshold;
      last_dropped =
        (match pool with Some p -> (Bgjit.stats p).Bgjit.s_dropped | None -> 0);
      last_evictions = rt.tiering.t_evictions;
      stop = false;
      ticker = None;
      m_demotions = c "governor_demotions";
      m_backoffs = c "governor_backoffs";
      m_blacklists = c "governor_blacklists";
      m_watchdog_kills = c "watchdog_kills";
      m_throttles = c "governor_throttles";
    }
  in
  rt.tiering.t_on_deopt <- Some (fun m tag pc line -> on_deopt t m tag pc line);
  rt.tiering.t_promote_gate <- Some (fun m -> promote_gate t m);
  if ticker then
    t.ticker <-
      Some
        (Domain.spawn (fun () ->
             (* sleep in small slices so [detach] never waits a full period *)
             let slice = 0.002 in
             let period = max slice (cfg.g_tick_ms /. 1000.) in
             let rec loop () =
               if not t.stop then begin
                 let slept = ref 0.0 in
                 while (not t.stop) && !slept < period do
                   Unix.sleepf slice;
                   slept := !slept +. slice
                 done;
                 if not t.stop then tick t;
                 loop ()
               end
             in
             loop ()));
  t

let detach t =
  t.stop <- true;
  (match t.ticker with
  | Some d ->
    Domain.join d;
    t.ticker <- None
  | None -> ());
  t.rt.tiering.t_on_deopt <- None;
  t.rt.tiering.t_promote_gate <- None

let report t =
  let s = t.st in
  Printf.sprintf
    "demotions=%d backoffs=%d repromotions=%d blacklists=%d watchdog_kills=%d \
     watchdog_retries=%d throttles=+%d/-%d threshold=%d (base %d)"
    s.g_demotions s.g_backoffs s.g_repromotions s.g_blacklists
    s.g_watchdog_kills s.g_watchdog_retries s.g_throttle_ups s.g_throttle_downs
    t.rt.tiering.t_threshold t.base_threshold
