(* Compile-time diagnostics.  Explicit compilation means the JIT can report
   errors and warnings back to the running program (paper Sec. 1): failing to
   specialize as demanded raises [Compile_error] instead of silently running
   slow code. *)

exception Compile_error of string

let compile_error fmt =
  Format.kasprintf (fun s -> raise (Compile_error s)) fmt

(* Like [compile_error], but suffixed with a source location ("Cls.meth @pc
   N (file:line)" as produced by [Vm.Runtime.meth_loc]). *)
let compile_error_at ~loc fmt =
  Format.kasprintf (fun s -> raise (Compile_error (s ^ " at " ^ loc))) fmt

type warning = { w_tag : string; w_msg : string }

let warnings : warning list ref = ref []

let warn tag fmt =
  Format.kasprintf
    (fun s -> warnings := { w_tag = tag; w_msg = s } :: !warnings)
    fmt

let take_warnings () =
  let w = List.rev !warnings in
  warnings := [];
  w

let () =
  Printexc.register_printer (function
    | Compile_error msg -> Some (Printf.sprintf "Compile_error: %s" msg)
    | _ -> None)
