(** Compile-time diagnostics.  Explicit compilation lets the JIT report
    errors and warnings back to the running program (paper Sec. 1): failing
    to specialize as demanded raises {!Compile_error} instead of silently
    running slow code. *)

exception Compile_error of string

val compile_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Compile_error} with a formatted message. *)

val compile_error_at : loc:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [compile_error_at ~loc fmt] raises {!Compile_error} with [" at loc"]
    appended — [loc] is typically [Vm.Runtime.meth_loc m pc]. *)

type warning = { w_tag : string; w_msg : string }

val warn : string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a warning under the given tag (e.g. ["devirtualize"],
    ["likely"]). *)

val take_warnings : unit -> warning list
(** Drain accumulated warnings in emission order. *)
