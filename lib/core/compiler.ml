(* Lancet's core: the staged bytecode interpreter (paper Sec. 2).

   The structure deliberately mirrors the interpreter of Fig. 6 after the
   Fig. 7 staging delta: symbolic frames hold [rep]s (IR symbols) in place of
   runtime values — the operand stack, dispatch logic and method resolution
   all run at compile time; only primitive and heap operations residualize.
   On top of that sits the abstract interpretation of Sec. 2.2: every rep has
   an [Absval.t]; smart constructors consult [evalA] to fold; objects
   allocated in compiled code stay virtual (partial escape analysis) until
   they escape; control-flow joins take lubs and loops iterate to a fixpoint.
   JIT macros (Sec. 2.3) intercept calls during this symbolic execution. *)

open Vm.Types
module Ir = Lms.Ir
module B = Lms.Builder

type rep = Ir.sym

module IntMap = Map.Make (Int)

module PairMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* ------------------------------------------------------------------ *)
(* Abstract heap                                                       *)

type vobj = { vcls : cls; vfields : rep array }

type heap = {
  virtuals : vobj IntMap.t; (* virtual object id -> abstract fields *)
  mat : rep IntMap.t; (* virtual object id -> materialized pointer *)
  over : rep PairMap.t; (* (static oid, field idx) -> forwarded value *)
}

let empty_heap = { virtuals = IntMap.empty; mat = IntMap.empty; over = PairMap.empty }

(* ------------------------------------------------------------------ *)
(* Symbolic frames (the staged InterpreterFrame)                       *)

type back_edge_info = {
  be_header_block : Ir.block;
  be_param_slots : int list; (* canonical slot ids that are block params *)
  mutable be_snaps : snap list;
  mutable be_entered : bool; (* initial arrival consumed; later ones are back edges *)
}

and snap = {
  s_heap : heap;
  s_locals : rep array;
  s_stack : rep array;
  s_sp : int;
  s_block : Ir.block option; (* open block at capture time *)
}

type sframe = {
  sf_meth : meth;
  mutable sf_pc : int;
  sf_locals : rep array;
  sf_stack : rep array;
  mutable sf_sp : int;
  sf_parent : sframe option;
  sf_returns : (rep * snap) list ref;
  sf_active_loops : (int, back_edge_info) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Inline policy and dynamic-scope directives (Sec. 3.1)               *)

type inline_mode = Inline_always | Inline_nonrec | Inline_never

type scope_hook = {
  sh_pattern : string; (* matched as substring of "Cls.name" *)
  sh_directive : string; (* e.g. "inline_never", "unroll_top_level" *)
  sh_at : bool; (* atScope (true) vs inScope (false) *)
}

(* ------------------------------------------------------------------ *)
(* Compilation context                                                 *)

type options = {
  name : string;
  max_inline_depth : int;
  max_unroll : int;
  max_fixpoint_rounds : int;
  feedback : bool;
    (* consume interpreter inline-cache profiles: compile monomorphic
       virtual sites to guarded direct calls (deopt on guard failure) and
       polymorphic sites to short dispatch chains *)
}

let default_options =
  { name = "lancet"; max_inline_depth = 400; max_unroll = 10_000;
    max_fixpoint_rounds = 20; feedback = false }

type macro_result = Val of rep | Diverge

type ctx = {
  rt : runtime;
  bld : B.t;
  opts : options;
  avals : (rep, Absval.t) Hashtbl.t;
  taints : (rep, unit) Hashtbl.t;
  macros : (string, macro) Hashtbl.t;
  mutable heap : heap;
  mutable frame : sframe;
  mutable next_vid : int;
  mutable inline_stack : int list; (* method ids currently being inlined *)
  mutable policy : inline_mode list; (* directive stack, innermost first *)
  mutable hooks : scope_hook list;
  mutable unroll_flag : bool; (* set by unrollTopLevel, read by ntimes *)
  mutable alloc_watch : string list ref list; (* checkNoAlloc collectors *)
  mutable leak_watch : string list ref list; (* taint-leak collectors *)
  mutable evalm_memo : (int, value) Hashtbl.t; (* vid -> materialized value *)
  mutable resets : reset_scope list; (* active resetR delimiters, innermost first *)
  mutable devirt_deps : string list;
    (* virtual-call names the graph under construction speculates on
       (IC feedback or CHA); registered with the runtime at install so
       [Classfile.add_method] can invalidate the compiled code *)
}

and macro = ctx -> rep array -> macro_result

(* a resetR delimiter: shifts within abort to it (paper Sec. 3.2) *)
and reset_scope = {
  rs_caller : sframe; (* the frame in which reset was invoked *)
  rs_aborts : (rep * snap) list ref; (* values delivered by shift's body *)
}

(* Per-runtime macro registries (the paper's Lancet.install). *)
let registries : (runtime * (string, macro) Hashtbl.t) list ref = ref []

let registry_of rt =
  match List.find_opt (fun (r, _) -> r == rt) !registries with
  | Some (_, h) -> h
  | None ->
    let h = Hashtbl.create 32 in
    registries := (rt, h) :: !registries;
    h

let register_macro rt ~cls ~name fn =
  Hashtbl.replace (registry_of rt) (cls ^ "." ^ name) fn

(* ------------------------------------------------------------------ *)
(* evalA / constants / taint                                           *)

let evalA ctx r =
  match Hashtbl.find_opt ctx.avals r with Some a -> a | None -> Absval.Unknown

let set_aval ctx r (a : Absval.t) =
  match a with Absval.Unknown -> () | _ -> Hashtbl.replace ctx.avals r a

let tainted ctx r = Hashtbl.mem ctx.taints r

let taint ctx r = Hashtbl.replace ctx.taints r ()

let lift_const ctx (v : value) : rep =
  let r = B.const ctx.bld v in
  set_aval ctx r (Absval.const_of_value v);
  r

let propagate_taint ctx args r =
  if Array.exists (tainted ctx) args then taint ctx r

(* low-level reflect: emit an IR node, propagating taint *)
let emit ctx op args ty =
  let r = B.emit ctx.bld op args ty in
  propagate_taint ctx args r;
  r

(* ------------------------------------------------------------------ *)
(* Virtual objects: resolution, escape, materialization                *)

let fresh_vid ctx =
  let v = ctx.next_vid in
  ctx.next_vid <- v + 1;
  v

(* If [r] denotes a virtual object that has been materialized, use the
   materialized pointer instead. *)
let resolve ctx r =
  match evalA ctx r with
  | Absval.Partial (vid, _) -> (
    match IntMap.find_opt vid ctx.heap.mat with
    | Some m -> m
    | None ->
      if not (IntMap.mem vid ctx.heap.virtuals) then
        Errors.compile_error
          "internal: dangling reference to virtual object v%d" vid;
      r)
  | _ -> r

let is_live_virtual ctx r =
  match evalA ctx r with
  | Absval.Partial (vid, _) ->
    IntMap.mem vid ctx.heap.virtuals && not (IntMap.mem vid ctx.heap.mat)
  | _ -> false

let check_alloc_watch ctx what =
  List.iter (fun coll -> coll := what :: !coll) ctx.alloc_watch

(* Materialize virtual object [vid]: emit the allocation and field stores
   that were elided so far (the escape path of partial escape analysis). *)
let rec materialize_vid ctx vid =
  match IntMap.find_opt vid ctx.heap.mat with
  | Some m -> m
  | None -> (
    match IntMap.find_opt vid ctx.heap.virtuals with
    | None -> Errors.compile_error "internal: unknown virtual object v%d" vid
    | Some vo ->
      check_alloc_watch ctx
        (Printf.sprintf "allocation of %s escapes" vo.vcls.cname);
      let m = emit ctx (Ir.NewObj vo.vcls) [||] Ir.Tobj in
      set_aval ctx m (Absval.Known vo.vcls);
      (* record first: cyclic structures terminate *)
      ctx.heap <- { ctx.heap with mat = IntMap.add vid m ctx.heap.mat };
      Array.iteri
        (fun i fr ->
          let fr = resolve_materialized ctx fr in
          ignore (emit ctx (Ir.Putfield vo.vcls.cfields.(i)) [| m; fr |] Ir.Tunit))
        vo.vfields;
      m)

(* resolve + force materialization when the rep is still virtual *)
and resolve_materialized ctx r =
  match evalA ctx r with
  | Absval.Partial (vid, _) -> (
    match IntMap.find_opt vid ctx.heap.mat with
    | Some m -> m
    | None ->
      if IntMap.mem vid ctx.heap.virtuals then materialize_vid ctx vid
      else
        Errors.compile_error
          "internal: dangling reference to virtual object v%d" vid)
  | _ -> r

(* vids reachable from the current frame chain (for canonicalization) *)
let live_vids ctx =
  let seen = Hashtbl.create 16 in
  let rec mark_rep r =
    match evalA ctx r with
    | Absval.Partial (vid, _) when not (IntMap.mem vid ctx.heap.mat) -> (
      if not (Hashtbl.mem seen vid) then begin
        Hashtbl.replace seen vid ();
        match IntMap.find_opt vid ctx.heap.virtuals with
        | Some vo -> Array.iter mark_rep vo.vfields
        | None -> ()
      end)
    | _ -> ()
  in
  let rec walk_frame f =
    Array.iter mark_rep f.sf_locals;
    for i = 0 to f.sf_sp - 1 do
      mark_rep f.sf_stack.(i)
    done;
    match f.sf_parent with Some p -> walk_frame p | None -> ()
  in
  walk_frame ctx.frame;
  seen

(* Materialize every live virtual and drop load-forwarding facts: the
   canonical state used at loop headers and deoptimization points. *)
let canonicalize ctx =
  let live = live_vids ctx in
  Hashtbl.iter (fun vid () -> ignore (materialize_vid ctx vid)) live;
  ctx.heap <- { ctx.heap with over = PairMap.empty }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let save ctx : snap =
  let f = ctx.frame in
  {
    s_heap = ctx.heap;
    s_locals = Array.copy f.sf_locals;
    s_stack = Array.copy f.sf_stack;
    s_sp = f.sf_sp;
    s_block = (if B.in_dead_code ctx.bld then None else Some (B.current ctx.bld));
  }

let restore ctx (s : snap) =
  let f = ctx.frame in
  Array.blit s.s_locals 0 f.sf_locals 0 (Array.length s.s_locals);
  Array.blit s.s_stack 0 f.sf_stack 0 (Array.length s.s_stack);
  f.sf_sp <- s.s_sp;
  ctx.heap <- s.s_heap;
  match s.s_block with
  | Some b -> B.switch_to ctx.bld b
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Symbolic operand stack                                              *)

let push ctx r =
  let f = ctx.frame in
  if f.sf_sp >= Array.length f.sf_stack then
    Errors.compile_error_at
      ~loc:(Vm.Runtime.meth_loc f.sf_meth f.sf_pc)
      "symbolic stack overflow in %s" f.sf_meth.mname;
  f.sf_stack.(f.sf_sp) <- r;
  f.sf_sp <- f.sf_sp + 1

let pop ctx =
  let f = ctx.frame in
  f.sf_sp <- f.sf_sp - 1;
  f.sf_stack.(f.sf_sp)

let pop_args ctx n =
  let a = Array.make n 0 in
  for i = n - 1 downto 0 do
    a.(i) <- pop ctx
  done;
  a

(* ------------------------------------------------------------------ *)
(* Smart constructors (constant folding through evalA, Sec. 2.2)       *)

let as_const ctx r =
  match evalA ctx r with Absval.Const v -> Some v | _ -> None

let iop_s ctx op x y =
  match as_const ctx x, as_const ctx y with
  | Some (Int a), Some (Int b) ->
    lift_const ctx (Int (Vm.Value.iop_apply op a b))
  | _ ->
    let r = emit ctx (Ir.Iop op) [| x; y |] Ir.Tint in
    r

let fop_s ctx op x y =
  match as_const ctx x, as_const ctx y with
  | Some (Float a), Some (Float b) ->
    lift_const ctx (Float (Vm.Value.fop_apply op a b))
  | _ -> emit ctx (Ir.Fop op) [| x; y |] Ir.Tfloat

let icmp_s ctx c x y =
  match as_const ctx x, as_const ctx y with
  | Some (Int a), Some (Int b) ->
    lift_const ctx (Vm.Value.of_bool (Vm.Value.cond_apply c a b))
  | _ -> emit ctx (Ir.Icmp c) [| x; y |] Ir.Tbool

let fcmp_s ctx c x y =
  match as_const ctx x, as_const ctx y with
  | Some (Float a), Some (Float b) ->
    lift_const ctx (Vm.Value.of_bool (Vm.Value.fcond_apply c a b))
  | _ -> emit ctx (Ir.Fcmp c) [| x; y |] Ir.Tbool

let isnull_s ctx x =
  match evalA ctx x with
  | Absval.Const Null -> lift_const ctx (Int 1)
  | Absval.Const _ | Absval.Static _ | Absval.StaticArr _ | Absval.Partial _
  | Absval.Known _ ->
    lift_const ctx (Int 0)
  | Absval.Unknown -> emit ctx Ir.IsNull [| x |] Ir.Tbool

(* getfield: short-cut final fields of static objects, forwarded stores,
   and fields of virtual objects (paper Sec. 2.2) *)
let getfield_s ctx (fld : field) base =
  match evalA ctx base with
  | Absval.Partial (vid, _) when not (IntMap.mem vid ctx.heap.mat) -> (
    match IntMap.find_opt vid ctx.heap.virtuals with
    | Some vo -> vo.vfields.(fld.fidx)
    | None -> Errors.compile_error "internal: virtual v%d lost" vid)
  | Absval.Static o when fld.ffinal ->
    lift_const ctx (Vm.Runtime.get_field o fld)
  | Absval.Static o -> (
    match PairMap.find_opt (o.oid, fld.fidx) ctx.heap.over with
    | Some r -> r
    | None ->
      let base = resolve ctx base in
      let r = emit ctx (Ir.Getfield fld) [| base |] Ir.Tany in
      ctx.heap <-
        { ctx.heap with over = PairMap.add (o.oid, fld.fidx) r ctx.heap.over };
      r)
  | _ ->
    let base = resolve ctx base in
    emit ctx (Ir.Getfield fld) [| base |] Ir.Tany

let putfield_s ctx (fld : field) base v =
  match evalA ctx base with
  | Absval.Partial (vid, _) when not (IntMap.mem vid ctx.heap.mat) ->
    (* purely virtual write: no code, update the abstract fields *)
    let vo = IntMap.find vid ctx.heap.virtuals in
    let vfields = Array.copy vo.vfields in
    vfields.(fld.fidx) <- v;
    ctx.heap <-
      {
        ctx.heap with
        virtuals = IntMap.add vid { vo with vfields } ctx.heap.virtuals;
      }
  | Absval.Static o ->
    let v = resolve_materialized ctx v in
    ignore (emit ctx (Ir.Putfield fld) [| resolve ctx base; v |] Ir.Tunit);
    ctx.heap <-
      { ctx.heap with over = PairMap.add (o.oid, fld.fidx) v ctx.heap.over }
  | _ ->
    (* unknown receiver may alias any static object: drop forwarded loads *)
    let v = resolve_materialized ctx v in
    ignore (emit ctx (Ir.Putfield fld) [| resolve ctx base; v |] Ir.Tunit);
    ctx.heap <- { ctx.heap with over = PairMap.empty }

let alen_s ctx a =
  match evalA ctx a with
  | Absval.StaticArr (Arr x) -> lift_const ctx (Int (Array.length x))
  | Absval.StaticArr (Farr x) -> lift_const ctx (Int (Array.length x))
  | _ -> emit ctx Ir.Alen [| resolve ctx a |] Ir.Tint

(* residual effectful op: clears forwarded loads *)
let clobber ctx = ctx.heap <- { ctx.heap with over = PairMap.empty }

(* ------------------------------------------------------------------ *)
(* evalM: materialize an abstract value back into a runtime value       *)
(* (compile-time execution, Sec. 2.3)                                   *)

let rec evalM ctx r : value =
  match evalA ctx r with
  | Absval.Const v -> v
  | Absval.Static o -> Obj o
  | Absval.StaticArr v -> v
  | Absval.Partial (vid, vcls) -> (
    if IntMap.mem vid ctx.heap.mat then
      Errors.compile_error
        "evalM: virtual %s was materialized into dynamic code" vcls.cname
    else
      match Hashtbl.find_opt ctx.evalm_memo vid with
      | Some v -> v
      | None -> (
        match IntMap.find_opt vid ctx.heap.virtuals with
        | None -> Errors.compile_error "evalM: lost virtual object"
        | Some vo ->
          let o = Vm.Runtime.alloc ctx.rt vo.vcls in
          Hashtbl.replace ctx.evalm_memo vid (Obj o);
          Array.iteri (fun i fr -> o.ofields.(i) <- evalM ctx fr) vo.vfields;
          (* the object now exists for real: treat it as static *)
          set_aval ctx r (Absval.Static o);
          Obj o))
  | Absval.Known c ->
    Errors.compile_error "evalM: value of class %s is not compile-time static"
      c.cname
  | Absval.Unknown ->
    Errors.compile_error "evalM: dynamic value cannot be evaluated at compile time"

(* ------------------------------------------------------------------ *)
(* Pure natives foldable at compile time                                *)

let pure_native name =
  let prefixes = [ "Str."; "Math." ] in
  List.exists (fun p -> String.length name > String.length p
                        && String.sub name 0 (String.length p) = p) prefixes
  || name = "Sys.veq"

let try_fold_native ctx (m : meth) (args : rep array) : rep option =
  match m.mcode with
  | Native (nname, fn) when pure_native nname ->
    let vals = Array.map (fun r -> as_const ctx r) args in
    if Array.for_all Option.is_some vals then begin
      match fn ctx.rt (Array.map Option.get vals) with
      | v -> Some (lift_const ctx v)
      | exception _ -> None (* fold failure: leave residual *)
    end
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Deoptimization metadata                                             *)

(* Build the frame descriptors for a side exit at the current point.
   [extra_innermost] reps are pushed on the innermost stack snapshot (e.g.
   the result a macro's call would have produced). *)
let frame_descs ?stop_before ctx ~(extra_innermost : rep list) :
    Ir.frame_desc list =
  canonicalize ctx;
  let stops p =
    match stop_before with Some s -> p == s | None -> false
  in
  let rec go f ~innermost =
    let stack = Array.sub f.sf_stack 0 f.sf_sp in
    let stack =
      if innermost then Array.append stack (Array.of_list extra_innermost)
      else stack
    in
    let fd =
      {
        Ir.fd_meth = f.sf_meth;
        fd_pc = f.sf_pc;
        fd_locals = Array.map (resolve ctx) (Array.copy f.sf_locals);
        fd_stack = Array.map (resolve ctx) stack;
      }
    in
    fd
    ::
    (match f.sf_parent with
    | Some p when not (stops p) -> go p ~innermost:false
    | Some _ | None -> [])
  in
  go ctx.frame ~innermost:true

let side_exit ctx ~kind ~tag ~extra =
  if ctx.alloc_watch <> [] then
    check_alloc_watch ctx (Printf.sprintf "deoptimization point (%s)" tag);
  if !Forensics.on then begin
    (* journal the guard at plant time: `lancet why` can then show which
       speculations a compile emitted even when none of them ever fires *)
    let f = ctx.frame in
    let m = f.sf_meth in
    Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
      (Forensics.Guard_plant
         { tag; pc = f.sf_pc; line = Vm.Runtime.line_at m f.sf_pc })
  end;
  let frames = frame_descs ctx ~extra_innermost:extra in
  B.terminate ctx.bld (Ir.Exit { se_kind = kind; se_frames = frames; se_tag = tag })

(* ------------------------------------------------------------------ *)
(* Control-flow merging                                                *)

exception Merge_bug of string

(* vids reachable from [r] that are virtual and unmaterialized in [heap] *)
let rec reachable_virtuals ctx heap r acc =
  match evalA ctx r with
  | Absval.Partial (vid, _)
    when IntMap.mem vid heap.virtuals && not (IntMap.mem vid heap.mat) ->
    if not (List.mem vid !acc) then begin
      acc := vid :: !acc;
      let vo = IntMap.find vid heap.virtuals in
      Array.iter (fun fr -> reachable_virtuals ctx heap fr acc) vo.vfields
    end
  | _ -> ()

(* Merge [items] (arrival snapshot + value rep) into a fresh join block.
   If [with_slots], the current frame's locals and stack participate;
   otherwise only the heap and the value merge (return joins).  Returns the
   merged value rep; on return the context sits in the join block. *)
(* restore only the heap and the emission point (used when the snapshot's
   frame is not the current frame, e.g. shift aborts and return joins) *)
let restore_flow ctx (s : snap) =
  ctx.heap <- s.s_heap;
  match s.s_block with
  | Some b -> B.switch_to ctx.bld b
  | None -> ()

let merge_flows ctx ~with_slots (items : (snap * rep) list) : rep =
  let restore_side = if with_slots then restore else restore_flow in
  match items with
  | [] -> Errors.compile_error "internal: merge of zero flows"
  | [ (s, v) ] ->
    restore_side ctx s;
    v
  | (s0, _) :: rest ->
    let f = ctx.frame in
    if with_slots then
      List.iter
        (fun (s, _) ->
          if s.s_sp <> s0.s_sp then
            raise (Merge_bug "operand stack depth mismatch at join"))
        rest;
    let sides = Array.of_list items in
    let nsides = Array.length sides in
    let heap_of k = (fst sides.(k)).s_heap in
    (* roots: optional current-frame slots, parent-frame slots, the values *)
    let nloc = if with_slots then Array.length f.sf_locals else 0 in
    let nstk = if with_slots then s0.s_sp else 0 in
    let root_reps k =
      let s, v = sides.(k) in
      let parents = ref [] in
      let rec walk fo =
        match fo with
        | None -> ()
        | Some (p : sframe) ->
          Array.iter (fun r -> parents := r :: !parents) p.sf_locals;
          for i = 0 to p.sf_sp - 1 do
            parents := p.sf_stack.(i) :: !parents
          done;
          walk p.sf_parent
      in
      (* without slot merging, the current frame is still a live root (its
         reps are identical across sides but keep virtuals alive) *)
      walk (if with_slots then f.sf_parent else Some f);
      Array.concat
        [
          (if with_slots then Array.sub s.s_locals 0 nloc else [||]);
          (if with_slots then Array.sub s.s_stack 0 nstk else [||]);
          Array.of_list !parents;
          [| v |];
        ]
    in
    let roots = Array.init nsides root_reps in
    let nroots = Array.length roots.(0) in
    (* common virtuals: virtual and unmaterialized on every side *)
    let keep : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let candidate vid =
      Array.to_list (Array.init nsides heap_of)
      |> List.for_all (fun h ->
             IntMap.mem vid h.virtuals && not (IntMap.mem vid h.mat))
    in
    for k = 0 to nsides - 1 do
      let acc = ref [] in
      Array.iter (fun r -> reachable_virtuals ctx (heap_of k) r acc) roots.(k);
      List.iter
        (fun vid -> if candidate vid then Hashtbl.replace keep vid ())
        !acc
    done;
    (* constraint fixpoint: demote keeps that must be materialized *)
    let changed = ref true in
    let rec demote vid =
      if Hashtbl.mem keep vid then begin
        Hashtbl.remove keep vid;
        changed := true;
        for k = 0 to nsides - 1 do
          let h = heap_of k in
          match IntMap.find_opt vid h.virtuals with
          | Some vo ->
            Array.iter
              (fun fr ->
                let acc = ref [] in
                reachable_virtuals ctx h fr acc;
                List.iter (fun w -> if Hashtbl.mem keep w then demote w) !acc)
              vo.vfields
          | None -> ()
        done
      end
    in
    let root_is_param i =
      let r0 = roots.(0).(i) in
      not (Array.for_all (fun rs -> rs.(i) = r0) roots)
    in
    let field_is_param vid idx =
      let field_rep k =
        match IntMap.find_opt vid (heap_of k).virtuals with
        | Some vo -> vo.vfields.(idx)
        | None -> raise (Merge_bug "keep vid missing on a side")
      in
      let r0 = field_rep 0 in
      let same = ref true in
      for k = 1 to nsides - 1 do
        if field_rep k <> r0 then same := false
      done;
      if not !same then true
      else
        match evalA ctx r0 with
        | Absval.Partial (w, _) when not (Hashtbl.mem keep w) -> true
        | _ -> false
    in
    while !changed do
      changed := false;
      (* param roots force their per-side reachable virtuals to materialize *)
      for i = 0 to nroots - 1 do
        if root_is_param i then
          for k = 0 to nsides - 1 do
            let acc = ref [] in
            reachable_virtuals ctx (heap_of k) roots.(k).(i) acc;
            List.iter (fun w -> if Hashtbl.mem keep w then demote w) !acc
          done
      done;
      (* param fields of kept virtuals likewise *)
      let keys = Hashtbl.fold (fun vid () l -> vid :: l) keep [] in
      List.iter
        (fun vid ->
          if Hashtbl.mem keep vid then begin
            let nf =
              match IntMap.find_opt vid (heap_of 0).virtuals with
              | Some vo -> Array.length vo.vfields
              | None -> 0
            in
            for idx = 0 to nf - 1 do
              if field_is_param vid idx then
                for k = 0 to nsides - 1 do
                  match IntMap.find_opt vid (heap_of k).virtuals with
                  | Some vo ->
                    let acc = ref [] in
                    reachable_virtuals ctx (heap_of k) vo.vfields.(idx) acc;
                    List.iter (fun w -> if Hashtbl.mem keep w then demote w) !acc
                  | None -> ()
                done
            done
          end)
        keys
    done;
    (* Virtual objects referenced by agreeing roots but not kept virtual
       must be materialized on every side; their merged pointer is shared
       if all sides agree, otherwise a join parameter. *)
    let mat_vids =
      let tbl = Hashtbl.create 8 in
      for i = 0 to nroots - 1 do
        if not (root_is_param i) then begin
          match evalA ctx roots.(0).(i) with
          | Absval.Partial (vid, _)
            when (not (Hashtbl.mem keep vid))
                 && Array.exists
                      (fun k ->
                        let h = heap_of k in
                        IntMap.mem vid h.virtuals || IntMap.mem vid h.mat)
                      (Array.init nsides Fun.id) ->
            if not (Hashtbl.mem tbl vid) then
              Hashtbl.replace tbl vid roots.(0).(i)
          | _ -> ()
        end
      done;
      Hashtbl.fold (fun vid r l -> (vid, r) :: l) tbl []
      |> List.sort compare
    in
    (* the join block and its parameter layout *)
    let jb = B.new_block ctx.bld in
    let g = B.graph ctx.bld in
    let kept_vids = Hashtbl.fold (fun v () l -> v :: l) keep [] |> List.sort compare in
    let param_roots =
      List.filter root_is_param (List.init nroots Fun.id)
    in
    let param_fields =
      List.concat_map
        (fun vid ->
          let nf =
            match IntMap.find_opt vid (heap_of 0).virtuals with
            | Some vo -> Array.length vo.vfields
            | None -> 0
          in
          List.filter_map
            (fun idx -> if field_is_param vid idx then Some (vid, idx) else None)
            (List.init nf Fun.id))
        kept_vids
    in
    let ty_of r = (Ir.node g r).Ir.ty in
    let root_params =
      List.map
        (fun i ->
          let ty =
            Array.fold_left
              (fun acc rs -> if acc = ty_of rs.(i) then acc else Ir.Tany)
              (ty_of roots.(0).(i))
              roots
          in
          (i, Ir.add_block_param g jb ty))
        param_roots
    in
    let field_params =
      List.map
        (fun (vid, idx) -> ((vid, idx), Ir.add_block_param g jb Ir.Tany))
        param_fields
    in
    let mat_params =
      List.map
        (fun (vid, _) -> (vid, Ir.add_block_param g jb Ir.Tany))
        mat_vids
    in
    (* per side: emit materializations + the jump *)
    let side_mats = Array.make nsides [] in
    let arg_avals = Hashtbl.create 16 in
    let note_aval p a =
      let cur =
        match Hashtbl.find_opt arg_avals p with Some x -> x | None -> a
      in
      Hashtbl.replace arg_avals p (if cur == a then a else Absval.lub cur a)
    in
    Array.iteri
      (fun k (s, _) ->
        restore_side ctx s;
        let args = ref [] in
        List.iter
          (fun (i, p) ->
            let a = resolve_materialized ctx roots.(k).(i) in
            note_aval p (evalA ctx a);
            if tainted ctx roots.(k).(i) then taint ctx p;
            args := a :: !args)
          root_params;
        List.iter
          (fun ((vid, idx), p) ->
            let fr =
              match IntMap.find_opt vid ctx.heap.virtuals with
              | Some vo -> vo.vfields.(idx)
              | None -> raise (Merge_bug "keep vid lost during emission")
            in
            let a = resolve_materialized ctx fr in
            note_aval p (evalA ctx a);
            if tainted ctx fr then taint ctx p;
            args := a :: !args)
          field_params;
        (* force materialization of shared-but-unkept virtuals on this side *)
        side_mats.(k) <-
          List.map
            (fun (vid, r) -> (vid, resolve_materialized ctx r))
            mat_vids;
        List.iter
          (fun (_, m) -> args := m :: !args)
          side_mats.(k);
        B.terminate ctx.bld
          (Ir.Jump { tblock = jb.bid; targs = Array.of_list (List.rev !args) }))
      sides;
    List.iter (fun (_, p) -> set_aval ctx p (Hashtbl.find arg_avals p)) root_params;
    List.iter (fun (_, p) -> set_aval ctx p (Hashtbl.find arg_avals p)) field_params;
    List.iter
      (fun (vid, p) ->
        (* the pointer param denotes the materialized object *)
        match IntMap.find_opt vid (heap_of 0).virtuals with
        | Some vo -> set_aval ctx p (Absval.Known vo.vcls)
        | None -> ())
      mat_params;
    (* merged state *)
    let merged_root i =
      match List.assoc_opt i root_params with
      | Some p -> p
      | None -> roots.(0).(i)
    in
    let virtuals =
      List.fold_left
        (fun acc vid ->
          let vo0 = IntMap.find vid (heap_of 0).virtuals in
          let vfields =
            Array.mapi
              (fun idx fr ->
                match List.assoc_opt (vid, idx) field_params with
                | Some p -> p
                | None -> fr)
              vo0.vfields
          in
          IntMap.add vid { vo0 with vfields } acc)
        IntMap.empty kept_vids
    in
    let over =
      (* keep facts equal on every side *)
      PairMap.filter
        (fun key r ->
          Array.for_all
            (fun k ->
              match PairMap.find_opt key (heap_of k).over with
              | Some r' -> r' = r
              | None -> false)
            (Array.init nsides Fun.id))
        (heap_of 0).over
    in
    let mat =
      List.fold_left
        (fun acc (vid, p) ->
          (* if every side produced the same pointer, keep it; otherwise the
             join parameter is the merged pointer *)
          let m0 = List.assoc vid side_mats.(0) in
          let all_same =
            Array.for_all (fun k -> List.assoc vid side_mats.(k) = m0)
              (Array.init nsides Fun.id)
          in
          IntMap.add vid (if all_same then m0 else p) acc)
        IntMap.empty mat_params
    in
    ctx.heap <- { virtuals; mat; over };
    if with_slots then begin
      for i = 0 to nloc - 1 do
        f.sf_locals.(i) <- merged_root i
      done;
      for i = 0 to nstk - 1 do
        f.sf_stack.(i) <- merged_root (nloc + i)
      done;
      f.sf_sp <- s0.s_sp
    end;
    B.switch_to ctx.bld jb;
    merged_root (nroots - 1)

(* ------------------------------------------------------------------ *)
(* The staged execution engine                                          *)

let rec exec_range ctx ~(stop : int -> bool) : [ `Arrived | `Dead ] =
  let f = ctx.frame in
  let code =
    match f.sf_meth.mcode with
    | Bytecode c -> c
    | Native _ -> Errors.compile_error "cannot stage a native method"
  in
  let cfg = Bcfg.of_method f.sf_meth in
  let continue_ = ref true in
  let result = ref `Dead in
  while !continue_ do
    let pc = f.sf_pc in
    if stop pc then begin
      result := `Arrived;
      continue_ := false
    end
    else
      match Hashtbl.find_opt f.sf_active_loops pc with
      | Some info when info.be_entered ->
        (* back edge: canonicalize, jump to the loop header block *)
        record_back_edge ctx info;
        result := `Dead;
        continue_ := false
      | Some info ->
        (* first arrival at the active header: execute it normally *)
        info.be_entered <- true;
        f.sf_pc <- pc + 1;
        (match exec_instr ctx ~stop ~cfg ~pc code.(pc) with
        | `Ok -> ()
        | `Dead ->
          result := `Dead;
          continue_ := false
        | `Done r ->
          result := r;
          continue_ := false)
      | None ->
        if Bcfg.is_loop_header cfg pc then begin
          result := run_loop ctx ~stop ~cfg pc;
          continue_ := false
        end
        else begin
          f.sf_pc <- pc + 1;
          match exec_instr ctx ~stop ~cfg ~pc code.(pc) with
          | `Ok -> ()
          | `Dead ->
            result := `Dead;
            continue_ := false
          | `Done r ->
            result := r;
            continue_ := false
        end
  done;
  !result

and record_back_edge ctx info =
  let f = ctx.frame in
  canonicalize ctx;
  let nloc = Array.length f.sf_locals in
  let slot_rep i =
    if i < nloc then resolve ctx f.sf_locals.(i)
    else resolve ctx f.sf_stack.(i - nloc)
  in
  let args = List.map slot_rep info.be_param_slots in
  let snap =
    {
      s_heap = ctx.heap;
      s_locals = Array.init nloc (fun i -> resolve ctx f.sf_locals.(i));
      s_stack = Array.init f.sf_sp (fun i -> resolve ctx f.sf_stack.(i));
      s_sp = f.sf_sp;
      s_block = None;
    }
  in
  info.be_snaps <- snap :: info.be_snaps;
  B.terminate ctx.bld
    (Ir.Jump
       { tblock = info.be_header_block.bid; targs = Array.of_list args })

(* The loop fixpoint of paper Sec. 2.2: optimistically assume everything is
   loop-invariant, execute the body, and widen (turn slots into block
   parameters) until the abstract state at the loop entry converges. *)
and run_loop ctx ~stop ~cfg h : [ `Arrived | `Dead ] =
  ignore cfg;
  let f = ctx.frame in
  canonicalize ctx;
  let entry = save ctx in
  (match entry.s_block with
  | None -> Errors.compile_error "loop entered from dead code"
  | Some _ -> ());
  let nloc = Array.length f.sf_locals in
  let nslots = nloc + entry.s_sp in
  (* resolve now, while the heap still matches the entry snapshot: later the
     executed body may have dropped materialization entries *)
  let entry_resolved =
    Array.init nslots (fun i ->
        if i < nloc then resolve ctx entry.s_locals.(i)
        else resolve ctx entry.s_stack.(i - nloc))
  in
  let entry_rep i = entry_resolved.(i) in
  let param_slots = ref [] in
  let guesses : (int, Absval.t) Hashtbl.t = Hashtbl.create 8 in
  let ty_hints : (int, Ir.ty) Hashtbl.t = Hashtbl.create 8 in
  let slot_ty i =
    let g = B.graph ctx.bld in
    let t0 = (Ir.node g (entry_rep i)).Ir.ty in
    match Hashtbl.find_opt ty_hints i with
    | Some t when t = t0 -> t
    | Some _ -> Ir.Tany
    | None -> t0
  in
  let returns_mark = List.length !(f.sf_returns) in
  let alloc_marks = List.map (fun r -> List.length !r) ctx.alloc_watch in
  let leak_marks = List.map (fun r -> List.length !r) ctx.leak_watch in
  (* drop newest (head) elements until [n] remain: single-pass by count *)
  let truncate_list l n =
    let rec drop l k = if k <= 0 then l else match l with
      | [] -> []
      | _ :: t -> drop t (k - 1)
    in
    drop l (List.length l - n)
  in
  let rollback () =
    f.sf_returns := truncate_list !(f.sf_returns) returns_mark;
    List.iter2 (fun r n -> r := truncate_list !r n) ctx.alloc_watch alloc_marks;
    List.iter2 (fun r n -> r := truncate_list !r n) ctx.leak_watch leak_marks
  in
  let rec attempt round =
    if round > ctx.opts.max_fixpoint_rounds then
      Errors.compile_error_at
        ~loc:(Vm.Runtime.meth_loc f.sf_meth f.sf_pc)
        "loop analysis did not converge in %s" f.sf_meth.mname;
    rollback ();
    restore ctx entry;
    let g = B.graph ctx.bld in
    let hb = B.new_block ctx.bld in
    let slots = List.sort compare !param_slots in
    (* entry jump *)
    let entry_args = List.map entry_rep slots in
    B.terminate ctx.bld
      (Ir.Jump { tblock = hb.bid; targs = Array.of_list entry_args });
    let params =
      List.map
        (fun i ->
          let p = Ir.add_block_param g hb (slot_ty i) in
          (match Hashtbl.find_opt guesses i with
          | Some a -> set_aval ctx p a
          | None -> ());
          (i, p))
        slots
    in
    B.switch_to ctx.bld hb;
    (* header state: params where widened, entry reps elsewhere *)
    for i = 0 to nloc - 1 do
      f.sf_locals.(i) <-
        (match List.assoc_opt i params with Some p -> p | None -> entry_rep i)
    done;
    for i = 0 to entry.s_sp - 1 do
      f.sf_stack.(i) <-
        (match List.assoc_opt (nloc + i) params with
        | Some p -> p
        | None -> entry_rep (nloc + i))
    done;
    f.sf_sp <- entry.s_sp;
    ctx.heap <- { entry.s_heap with over = PairMap.empty };
    let info =
      { be_header_block = hb; be_param_slots = slots; be_snaps = []; be_entered = false }
    in
    Hashtbl.replace f.sf_active_loops h info;
    f.sf_pc <- h;
    let out = exec_range ctx ~stop in
    Hashtbl.remove f.sf_active_loops h;
    (* convergence check against the back-edge states *)
    let changed = ref false in
    let header_rep i =
      match List.assoc_opt i params with Some p -> p | None -> entry_rep i
    in
    let ty_dirty = ref false in
    List.iter
      (fun (bs : snap) ->
        if bs.s_sp <> entry.s_sp then
          Errors.compile_error_at
            ~loc:(Vm.Runtime.meth_loc f.sf_meth f.sf_pc)
            "operand stack depth changes across loop in %s" f.sf_meth.mname;
        for i = 0 to nslots - 1 do
          let br =
            if i < nloc then bs.s_locals.(i) else bs.s_stack.(i - nloc)
          in
          (let bty = (Ir.node (B.graph ctx.bld) br).Ir.ty in
           match Hashtbl.find_opt ty_hints i with
           | Some t when t = bty -> ()
           | Some _ ->
             Hashtbl.replace ty_hints i Ir.Tany;
             if List.mem i !param_slots then ty_dirty := true
           | None ->
             Hashtbl.replace ty_hints i bty;
             if List.mem i !param_slots then ty_dirty := true);
          if br <> header_rep i && not (List.mem i !param_slots) then begin
            param_slots := i :: !param_slots;
            Hashtbl.replace guesses i
              (Absval.lub
                 (evalA ctx (entry_rep i))
                 (evalA ctx br));
            changed := true
          end
          else if List.mem i !param_slots then begin
            let old =
              match Hashtbl.find_opt guesses i with
              | Some a -> a
              | None -> evalA ctx (entry_rep i)
            in
            let nw = Absval.lub old (evalA ctx br) in
            if not (Absval.equal old nw) then begin
              Hashtbl.replace guesses i nw;
              changed := true
            end
          end
        done)
      info.be_snaps;
    if !changed || !ty_dirty then attempt (round + 1) else out
  in
  (* initialize guesses for the first attempt (no params: fully optimistic) *)
  attempt 1

(* ------------------------------------------------------------------ *)
(* Instruction execution (the staged executeInstruction of Fig. 6/7)   *)

and exec_instr ctx ~stop ~cfg ~pc (i : instr) :
    [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let f = ctx.frame in
  (* provenance: nodes staged for this instruction point back to it *)
  B.set_prov ctx.bld
    (Some
       {
         Ir.pv_mid = f.sf_meth.mid;
         pv_pc = pc;
         pv_line = Vm.Runtime.line_at f.sf_meth pc;
       });
  match i with
  | Const v ->
    push ctx (lift_const ctx v);
    `Ok
  | Load n ->
    push ctx f.sf_locals.(n);
    `Ok
  | Store n ->
    f.sf_locals.(n) <- pop ctx;
    `Ok
  | Dup ->
    let r = f.sf_stack.(f.sf_sp - 1) in
    push ctx r;
    `Ok
  | Pop ->
    ignore (pop ctx);
    `Ok
  | Swap ->
    let a = pop ctx and b = pop ctx in
    push ctx a;
    push ctx b;
    `Ok
  | Iop op ->
    let y = pop ctx in
    let x = pop ctx in
    push ctx (iop_s ctx op x y);
    `Ok
  | Ineg ->
    let x = pop ctx in
    (match as_const ctx x with
    | Some (Int a) -> push ctx (lift_const ctx (Int (Vm.Value.wrap32 (-a))))
    | _ -> push ctx (emit ctx Ir.Ineg [| x |] Ir.Tint));
    `Ok
  | Fop op ->
    let y = pop ctx in
    let x = pop ctx in
    push ctx (fop_s ctx op x y);
    `Ok
  | Fneg ->
    let x = pop ctx in
    (match as_const ctx x with
    | Some (Float a) -> push ctx (lift_const ctx (Float (-.a)))
    | _ -> push ctx (emit ctx Ir.Fneg [| x |] Ir.Tfloat));
    `Ok
  | I2f ->
    let x = pop ctx in
    (match as_const ctx x with
    | Some (Int a) -> push ctx (lift_const ctx (Float (float_of_int a)))
    | _ -> push ctx (emit ctx Ir.I2f [| x |] Ir.Tfloat));
    `Ok
  | F2i ->
    let x = pop ctx in
    (match as_const ctx x with
    | Some (Float a) ->
      push ctx (lift_const ctx (Int (Vm.Value.wrap32 (int_of_float a))))
    | _ -> push ctx (emit ctx Ir.F2i [| x |] Ir.Tint));
    `Ok
  | If (c, t) ->
    let y = pop ctx in
    let x = pop ctx in
    do_branch ctx ~stop ~cfg ~pc (icmp_s ctx c x y) ~taken:t
  | Iff (c, t) ->
    let y = pop ctx in
    let x = pop ctx in
    do_branch ctx ~stop ~cfg ~pc (fcmp_s ctx c x y) ~taken:t
  | Ifz (c, t) ->
    let x = pop ctx in
    do_branch ctx ~stop ~cfg ~pc (icmp_s ctx c x (lift_const ctx (Int 0))) ~taken:t
  | Ifnull (when_null, t) ->
    let x = pop ctx in
    let cond = isnull_s ctx x in
    let cond =
      if when_null then cond
      else
        match as_const ctx cond with
        | Some (Int v) -> lift_const ctx (Int (1 - v))
        | _ -> iop_s ctx Xor cond (lift_const ctx (Int 1))
    in
    do_branch ctx ~stop ~cfg ~pc cond ~taken:t
  | Goto t ->
    f.sf_pc <- t;
    `Ok
  | New cls ->
    let vid = fresh_vid ctx in
    let null_rep = lift_const ctx Null in
    ctx.heap <-
      {
        ctx.heap with
        virtuals =
          IntMap.add vid
            { vcls = cls; vfields = Array.make (Array.length cls.cfields) null_rep }
            ctx.heap.virtuals;
      };
    (* phantom symbol: never reaches the backend unless materialized *)
    let r = B.floating ctx.bld (Ir.NewObj cls) Ir.Tobj in
    set_aval ctx r (Absval.Partial (vid, cls));
    push ctx r;
    `Ok
  | Getfield fld ->
    let base = pop ctx in
    push ctx (getfield_s ctx fld base);
    `Ok
  | Putfield fld ->
    let v = pop ctx in
    let base = pop ctx in
    putfield_s ctx fld base v;
    `Ok
  | Getglobal g ->
    push ctx (emit ctx (Ir.Getglobal g) [||] Ir.Tany);
    `Ok
  | Putglobal g ->
    let v = resolve_materialized ctx (pop ctx) in
    ignore (emit ctx (Ir.Putglobal g) [| v |] Ir.Tunit);
    `Ok
  | Newarr ->
    let n = pop ctx in
    check_alloc_watch ctx "array allocation";
    push ctx (emit ctx Ir.Newarr [| n |] Ir.Tarr);
    `Ok
  | Newfarr ->
    let n = pop ctx in
    check_alloc_watch ctx "float array allocation";
    push ctx (emit ctx Ir.Newfarr [| n |] Ir.Tfarr);
    `Ok
  | Aload ->
    let i = pop ctx in
    let a = pop ctx in
    push ctx (emit ctx Ir.Aload [| resolve ctx a; i |] Ir.Tany);
    `Ok
  | Astore ->
    let v = resolve_materialized ctx (pop ctx) in
    let i = pop ctx in
    let a = pop ctx in
    ignore (emit ctx Ir.Astore [| resolve ctx a; i; v |] Ir.Tunit);
    `Ok
  | Faload ->
    let i = pop ctx in
    let a = pop ctx in
    push ctx (emit ctx Ir.Faload [| resolve ctx a; i |] Ir.Tfloat);
    `Ok
  | Fastore ->
    let v = pop ctx in
    let i = pop ctx in
    let a = pop ctx in
    ignore (emit ctx Ir.Fastore [| resolve ctx a; i; v |] Ir.Tunit);
    `Ok
  | Alen ->
    let a = pop ctx in
    push ctx (alen_s ctx a);
    `Ok
  | Invoke inv -> do_invoke ctx inv
  | Ret ->
    let snap = save ctx in
    f.sf_returns := (lift_const ctx Null, snap) :: !(f.sf_returns);
    `Dead
  | Retv ->
    let r = pop ctx in
    let snap = save ctx in
    f.sf_returns := (r, snap) :: !(f.sf_returns);
    `Dead
  | Trap msg ->
    B.terminate ctx.bld (Ir.Unreachable msg);
    `Dead

(* conditional branch: fold when static, otherwise execute both arms up to
   the immediate postdominator and merge *)
and do_branch ctx ~stop ~cfg ~pc cond ~taken :
    [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let f = ctx.frame in
  let fall = f.sf_pc (* already pc + 1 *) in
  match as_const ctx cond with
  | Some (Int v) ->
    f.sf_pc <- (if v <> 0 then taken else fall);
    `Ok
  | Some _ -> Errors.compile_error "branch on non-integer constant"
  | None ->
    if ctx.leak_watch <> [] && tainted ctx cond then
      List.iter
        (fun coll -> coll := "branch depends on tainted data" :: !coll)
        ctx.leak_watch;
    let j = cfg.Bcfg.ipostdom.(pc) in
    let stop' = if j >= 0 then fun p -> p = j else stop in
    let snap0 = save ctx in
    let bt = B.new_block ctx.bld and bf = B.new_block ctx.bld in
    B.terminate ctx.bld
      (Ir.Br
         ( cond,
           { tblock = bt.bid; targs = [||] },
           { tblock = bf.bid; targs = [||] } ));
    let run_arm block target =
      restore ctx { snap0 with s_block = Some block };
      f.sf_pc <- target;
      match exec_range ctx ~stop:stop' with
      | `Arrived -> Some (save ctx, f.sf_pc)
      | `Dead -> None
    in
    let a1 = run_arm bt taken in
    let a2 = run_arm bf fall in
    let arrivals = List.filter_map Fun.id [ a1; a2 ] in
    (match arrivals with
    | [] -> `Dead
    | (_, arrival_pc) :: _ ->
      let dummy = lift_const ctx Null in
      ignore
        (merge_flows ctx ~with_slots:true
           (List.map (fun (s, _) -> (s, dummy)) arrivals));
      f.sf_pc <- arrival_pc;
      `Ok)

(* ------------------------------------------------------------------ *)
(* Calls: macros, folding, inlining, residualization (Sec. 2.3, 3.1)   *)

and contains_sub s sub = Vm.Strutil.contains s sub

and leak_sinks = [ "Sys.print"; "Sys.println"; "Sys.write_file" ]

and allocating_natives =
  [
    "Str.split"; "Str.concat"; "Str.sub"; "Str.of_int"; "Str.of_float";
    "Str.of_char"; "Sys.read_file"; "Arr.copy";
  ]

and residual_static ctx (m : meth) args : unit =
  let full = m.mowner.cname ^ "." ^ m.mname in
  let args = Array.map (resolve_materialized ctx) args in
  clobber ctx;
  (match m.mcode with
  | Bytecode _ ->
    check_alloc_watch ctx (Printf.sprintf "un-inlined call to %s" full)
  | Native (n, _) ->
    if List.mem n allocating_natives then
      check_alloc_watch ctx (Printf.sprintf "allocating native %s" n);
    if
      ctx.leak_watch <> []
      && List.mem n leak_sinks
      && Array.exists (tainted ctx) args
    then
      List.iter
        (fun coll ->
          coll := Printf.sprintf "tainted data reaches sink %s" n :: !coll)
        ctx.leak_watch);
  push ctx (emit ctx (Ir.CallStatic m) args Ir.Tany)

and residual_virtual ctx name argc args : unit =
  let args = Array.map (resolve_materialized ctx) args in
  clobber ctx;
  check_alloc_watch ctx (Printf.sprintf "dynamic dispatch of %s" name);
  push ctx (emit ctx (Ir.CallVirtual (name, argc)) args Ir.Tany)

and do_invoke ctx inv : [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  match inv with
  | Static m -> do_call ctx m (pop_args ctx m.mnargs)
  | Special m -> do_call ctx m (pop_args ctx (m.mnargs + 1))
  | Virtual (name, argc, hint) -> do_virtual ctx name argc hint None
  | Virtual_ic site ->
    do_virtual ctx site.cs_name site.cs_argc site.cs_hint (Some site)

and add_devirt_dep ctx name =
  if not (List.mem name ctx.devirt_deps) then
    ctx.devirt_deps <- name :: ctx.devirt_deps

and do_virtual ctx name argc hint site :
    [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let args = pop_args ctx (argc + 1) in
  let recv = args.(0) in
  match Absval.exact_class (evalA ctx recv) with
  | Some cls -> (
    match Vm.Classfile.resolve_virtual_opt cls name with
    | Some m -> do_call ctx m args
    | None ->
      Errors.compile_error "class %s has no virtual method %s" cls.cname name)
  | None -> (
    (* CHA devirtualization from the front-end's static type hint; the
       unguarded direct call is protected by a dependency on [name]: a
       later [add_method] that breaks the analysis invalidates this code *)
    match hint with
    | Some cls when Vm.Classfile.no_override_below ctx.rt cls name -> (
      match Vm.Classfile.resolve_virtual_opt cls name with
      | Some m ->
        add_devirt_dep ctx name;
        do_call ctx m args
      | None ->
        residual_virtual ctx name argc args;
        `Ok)
    | _ -> (
      (* type feedback: speculate on the receiver classes the interpreter's
         inline cache observed at this site (a single [cs_state] read gives
         a consistent snapshot even against the mutator) *)
      let profile =
        if not ctx.opts.feedback then []
        else
          match site with
          | None -> []
          | Some s -> (
            match s.cs_state with
            | Ic_mono e -> [ (e.ice_cls, e.ice_meth) ]
            | Ic_poly es ->
              Array.to_list (Array.map (fun e -> (e.ice_cls, e.ice_meth)) es)
            | Ic_empty | Ic_mega -> [])
      in
      match profile with
      | [ entry ] ->
        add_devirt_dep ctx name;
        do_speculate_mono ctx name args entry
      | _ :: _ as entries ->
        (* a dispatch chain beats generic dispatch but is still a declined
           monomorphic devirtualization — worth a coach record *)
        if !Irtrace.on then record_devirt_decline ctx name site;
        add_devirt_dep ctx name;
        do_dispatch_chain ctx name argc args entries
      | [] ->
        Errors.warn "devirtualize" "could not devirtualize call to %s" name;
        if !Irtrace.on then record_devirt_decline ctx name site;
        residual_virtual ctx name argc args;
        `Ok))

and record_devirt_decline ctx name site =
  let f = ctx.frame in
  let pc = f.sf_pc - 1 (* sf_pc already advanced past the invoke *) in
  let ic_state =
    if not ctx.opts.feedback then "feedback-off"
    else
      match site with
      | None -> "no-profile"
      | Some s -> Vm.Inlinecache.state_string s
  in
  Irtrace.record_miss ~phase:(Phases.name Phases.Stage) ~mid:f.sf_meth.mid
    ~meth:(Vm.Runtime.meth_label f.sf_meth) ~pc
    ~line:(Vm.Runtime.line_at f.sf_meth pc)
    (Irtrace.Devirt_declined { callee = name; ic_state })

(* Monomorphic speculation (the paper's [speculate] shape): compare the
   receiver's class id against the single observed class and call (and
   potentially inline) the resolved target directly; the other arm is a
   deopt side-exit that resumes the interpreter AT the invoke — with the
   arguments re-pushed — so the interpreter re-dispatches generically and
   retrains the inline cache. *)
and do_speculate_mono ctx name args ((cls : cls), (m : meth)) :
    [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let f = ctx.frame in
  let invoke_pc = f.sf_pc - 1 (* sf_pc already advanced past the invoke *) in
  let cid = emit ctx Ir.ClassId [| resolve ctx args.(0) |] Ir.Tint in
  let cond = icmp_s ctx Eq cid (lift_const ctx (Int cls.cid)) in
  let snap0 = save ctx in
  let fall_pc = f.sf_pc in
  let bt = B.new_block ctx.bld and bf = B.new_block ctx.bld in
  B.terminate ctx.bld
    (Ir.Br
       ( cond,
         { tblock = bt.bid; targs = [||] },
         { tblock = bf.bid; targs = [||] } ));
  (* miss arm: rebuild the frame as of the invoke and exit to tier 0 *)
  restore ctx { snap0 with s_block = Some bf };
  f.sf_pc <- invoke_pc;
  Array.iter (push ctx) args;
  side_exit ctx ~kind:`Interpret
    ~tag:(Printf.sprintf "devirt:%s@%s" name cls.cname)
    ~extra:[];
  (* hit arm: direct call, eligible for inlining *)
  restore ctx { snap0 with s_block = Some bt };
  f.sf_pc <- fall_pc;
  do_call ctx m args

(* Polymorphic dispatch chain: one class-id compare per observed receiver
   class with a direct call on each hit, falling through to generic
   dispatch for receivers outside the profile; the arms merge like an
   ordinary conditional. *)
and do_dispatch_chain ctx name argc args entries :
    [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let cid = emit ctx Ir.ClassId [| resolve ctx args.(0) |] Ir.Tint in
  let arrivals = ref [] in
  let arrive () =
    let v = pop ctx in
    arrivals := (save ctx, v) :: !arrivals
  in
  let rec arm = function
    | [] ->
      (* off-profile receiver: generic dispatch, always correct *)
      residual_virtual ctx name argc args;
      arrive ()
    | ((cls : cls), (m : meth)) :: rest ->
      let cond = icmp_s ctx Eq cid (lift_const ctx (Int cls.cid)) in
      let snap0 = save ctx in
      let bt = B.new_block ctx.bld and bf = B.new_block ctx.bld in
      B.terminate ctx.bld
        (Ir.Br
           ( cond,
             { tblock = bt.bid; targs = [||] },
             { tblock = bf.bid; targs = [||] } ));
      restore ctx { snap0 with s_block = Some bt };
      (match do_call ctx m args with
      | `Ok -> arrive ()
      | `Dead | `Done _ -> ());
      restore ctx { snap0 with s_block = Some bf };
      arm rest
  in
  arm entries;
  match List.rev !arrivals with
  | [] -> `Dead
  | items ->
    push ctx (merge_flows ctx ~with_slots:true items);
    `Ok

and do_call ctx (m : meth) args : [ `Ok | `Dead | `Done of [ `Arrived | `Dead ] ] =
  let full = m.mowner.cname ^ "." ^ m.mname in
  match Hashtbl.find_opt ctx.macros full with
  | Some macro -> (
    if !Obs.enabled then
      Obs.emit
        (Obs.Macro_expand
           { name = full; in_meth = Vm.Runtime.meth_label ctx.frame.sf_meth });
    match macro ctx args with
    | Val r ->
      push ctx r;
      `Ok
    | Diverge -> `Dead)
  | None -> (
    match m.mcode with
    | Native _ -> (
      match try_fold_native ctx m args with
      | Some r ->
        push ctx r;
        `Ok
      | None ->
        residual_static ctx m args;
        `Ok)
    | Bytecode _ -> (
      (* dynamic-scope hooks (atScope/inScope) that match this target *)
      let matching =
        List.filter (fun sh -> contains_sub full sh.sh_pattern) ctx.hooks
      in
      let at_inline_override =
        List.find_map
          (fun sh ->
            if not sh.sh_at then None
            else
              match sh.sh_directive with
              | "inline_never" -> Some Inline_never
              | "inline_always" -> Some Inline_always
              | "inline_nonrec" -> Some Inline_nonrec
              | _ -> None)
          matching
      in
      let mode =
        match at_inline_override with
        | Some m -> m
        | None -> (
          match ctx.policy with m :: _ -> m | [] -> Inline_nonrec)
      in
      let recursive = List.mem m.mid ctx.inline_stack in
      let too_deep =
        List.length ctx.inline_stack > ctx.opts.max_inline_depth
      in
      let inline_it =
        match mode with
        | Inline_never -> false
        | Inline_nonrec -> (not recursive) && not too_deep
        | Inline_always ->
          if too_deep then begin
            Errors.warn "inline" "inlineAlways hit depth limit at %s" full;
            false
          end
          else true
      in
      if not inline_it then begin
        residual_static ctx m args;
        `Ok
      end
      else begin
        (* inScope hooks install their directive inside the callee; the
           unroll_top_level directive applies around the call either way *)
        let saved_policy = ctx.policy in
        let saved_unroll = ctx.unroll_flag in
        List.iter
          (fun sh ->
            match sh.sh_directive with
            | "inline_never" when not sh.sh_at ->
              ctx.policy <- Inline_never :: ctx.policy
            | "inline_always" when not sh.sh_at ->
              ctx.policy <- Inline_always :: ctx.policy
            | "inline_nonrec" when not sh.sh_at ->
              ctx.policy <- Inline_nonrec :: ctx.policy
            | "unroll_top_level" -> ctx.unroll_flag <- true
            | _ -> ())
          matching;
        let res = exec_method ctx m args in
        ctx.policy <- saved_policy;
        ctx.unroll_flag <- saved_unroll;
        match res with
        | Val r ->
          push ctx r;
          `Ok
        | Diverge -> `Dead
      end))

(* Inline execution of a whole method body: the core of both inlining and
   [funR].  Returns the (merged) return value. *)
and exec_method ctx (m : meth) (args : rep array) : macro_result =
  exec_in_frame ctx ~parent:(Some ctx.frame) m args

and exec_in_frame ctx ~parent (m : meth) (args : rep array) : macro_result =
  let null_rep = lift_const ctx Null in
  let locals = Array.make (max m.mnlocals (Array.length args)) null_rep in
  Array.blit args 0 locals 0 (Array.length args);
  let f =
    {
      sf_meth = m;
      sf_pc = 0;
      sf_locals = locals;
      sf_stack = Array.make (m.mmaxstack + 4) null_rep;
      sf_sp = 0;
      sf_parent = parent;
      sf_returns = ref [];
      sf_active_loops = Hashtbl.create 4;
    }
  in
  let saved_frame = ctx.frame in
  ctx.inline_stack <- m.mid :: ctx.inline_stack;
  ctx.frame <- f;
  let finish res =
    ctx.inline_stack <- List.tl ctx.inline_stack;
    ctx.frame <- saved_frame;
    res
  in
  match exec_range ctx ~stop:(fun _ -> false) with
  | `Arrived -> Errors.compile_error "internal: method walk arrived nowhere"
  | `Dead -> (
    match List.rev !(f.sf_returns) with
    | [] -> finish Diverge
    | items ->
      let v =
        merge_flows ctx ~with_slots:false
          (List.map (fun (r, s) -> (s, r)) items)
      in
      finish (Val v))

(* funR (Sec. 3.1): turn a staged closure into a function on staged values
   by inlining its apply method. *)
and funR ctx (frep : rep) : rep array -> macro_result =
  match Absval.exact_class (evalA ctx frep) with
  | Some cls -> (
    match Vm.Classfile.resolve_virtual_opt cls "apply" with
    | Some apply -> (
      fun args ->
        match apply.mcode with
        | Bytecode _ -> exec_method ctx apply (Array.append [| frep |] args)
        | Native _ ->
          (* e.g. a CompiledFn: emit a residual closure call *)
          let all = Array.map (resolve_materialized ctx)
              (Array.append [| frep |] args) in
          clobber ctx;
          Val (emit ctx (Ir.CallClosure (Array.length args)) all Ir.Tany))
    | None -> Errors.compile_error "funR: %s has no apply method" cls.cname)
  | None ->
    Errors.compile_error
      "funR: closure is not compile-time static (its class is unknown)"

(* ------------------------------------------------------------------ *)
(* Entry points: explicit compilation                                   *)

type arg_spec = Dyn | Static_value of value

let make_ctx ?(opts = default_options) rt nparams =
  let bld = B.create ~name:opts.name ~nparams () in
  let dummy_meth_frame m =
    {
      sf_meth = m;
      sf_pc = 0;
      sf_locals = [||];
      sf_stack = [||];
      sf_sp = 0;
      sf_parent = None;
      sf_returns = ref [];
      sf_active_loops = Hashtbl.create 1;
    }
  in
  let ctx =
    {
      rt;
      bld;
      opts;
      avals = Hashtbl.create 256;
      taints = Hashtbl.create 16;
      macros = registry_of rt;
      heap = empty_heap;
      frame = Obj.magic ();
      next_vid = 0;
      inline_stack = [];
      policy = [];
      hooks = [];
      unroll_flag = false;
      alloc_watch = [];
      leak_watch = [];
      evalm_memo = Hashtbl.create 16;
      resets = [];
      devirt_deps = [];
    }
  in
  (ctx, dummy_meth_frame)

(* Stage method [m] with the given argument specification.  [Static_value]
   arguments become compile-time constants (specialization with respect to
   preexisting heap objects); [Dyn] arguments become graph parameters.
   Returns the optimized graph, whose parameters are the Dyn arguments in
   order. *)
(* IR node counts of the most recent [stage] call: (after staging, after
   dead-code elimination).  Read by [Tiering] to fill [Compile_end] events. *)
let last_node_counts = ref (0, 0)

(* "dsd" = dyn,static,dyn — the specialization key rendered for Irtrace. *)
let spec_string (spec : arg_spec array) =
  String.concat ""
    (Array.to_list
       (Array.map (function Dyn -> "d" | Static_value _ -> "s") spec))

let stage ?(opts = default_options) ?deps rt (m : meth) (spec : arg_spec array)
    : Ir.graph =
  Obs.span ~cat:Phases.cat_jit (Phases.span_stage opts.name) (fun () ->
      if !Irtrace.on then
        Irtrace.begin_compile ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
          ~spec:(spec_string spec);
      let ndyn =
        Array.fold_left (fun n s -> match s with Dyn -> n + 1 | _ -> n) 0 spec
      in
      let ctx, dummy = make_ctx ~opts rt ndyn in
      ctx.frame <- dummy m;
      let next_param = ref 0 in
      let args =
        Array.map
          (fun s ->
            match s with
            | Dyn ->
              let p = B.param ctx.bld !next_param Ir.Tany in
              incr next_param;
              p
            | Static_value v -> lift_const ctx v)
          spec
      in
      (match exec_in_frame ctx ~parent:None m args with
      | Val r ->
        let r = resolve_materialized ctx r in
        if not (B.in_dead_code ctx.bld) then B.terminate ctx.bld (Ir.Ret r)
      | Diverge -> ());
      let g = B.graph ctx.bld in
      let before = Ir.node_count g in
      if !Irtrace.on then
        Lms.Snapshot.take g Phases.Stage
          ~meta:[ ("cse_hits", string_of_int (B.cse_hits ctx.bld)) ];
      Obs.span ~cat:Phases.cat_jit Phases.span_dce (fun () ->
          Ir.dead_code_elim g);
      if !Irtrace.on then Lms.Snapshot.take g Phases.Dce;
      last_node_counts := (before, Ir.node_count g);
      (match deps with Some r -> r := ctx.devirt_deps | None -> ());
      g)

(* build runtime interpreter frames from side-exit metadata + live values *)
let reconstruct_frames (se : Ir.side_exit) (vals : value array) :
    Vm.Interp.frame =
  (* vals are flattened innermost-first, locals then stack per frame *)
  let offsets =
    let rec go idx = function
      | [] -> []
      | (fd : Ir.frame_desc) :: rest ->
        idx
        :: go (idx + Array.length fd.fd_locals + Array.length fd.fd_stack) rest
    in
    go 0 se.se_frames
  in
  let rec build fds offs : Vm.Interp.frame option =
    match fds, offs with
    | [], [] -> None
    | (fd : Ir.frame_desc) :: rest, off :: offs_rest ->
      let parent = build rest offs_rest in
      let m = fd.fd_meth in
      let nl = Array.length fd.fd_locals in
      let ns = Array.length fd.fd_stack in
      let locals = Array.make (max m.mnlocals nl) Null in
      Array.blit vals off locals 0 nl;
      let ostack = Array.make (max (m.mmaxstack + 4) ns) Null in
      Array.blit vals (off + nl) ostack 0 ns;
      Some
        (Vm.Interp.rebuild_frame ~meth:m ~pc:fd.fd_pc ~locals ~ostack ~sp:ns
           ~parent)
    | _ -> assert false
  in
  match build se.se_frames offsets with
  | Some innermost -> innermost
  | None -> vm_error "side exit with empty frame chain"

(* First-class delimited continuations (paper Sec. 3.2, shiftR/resetR): a
   Make_cont node captures the live frame chain up to the nearest reset;
   at runtime it packages the values into a CompiledFn that, when invoked,
   reconstructs fresh interpreter frames (multi-shot) with its argument
   pushed as the shift expression's result and resumes interpretation. *)
type Ir.ext_op += Make_cont of Ir.frame_desc list

let () =
  Lms.Pretty.register_ext (function
    | Make_cont fds -> Some (Printf.sprintf "make_cont/%d" (List.length fds))
    | _ -> None);
  Lms.Closure_backend.register_ext (fun hooks op getters ->
      match op with
      | Make_cont fds ->
        let rt = hooks.Lms.Closure_backend.rt in
        Some
          (fun env ->
            let vals = Array.map (fun g -> g env) getters in
            Vm.Natives.make_compiled_fn rt (fun kargs ->
                let se =
                  { Ir.se_kind = `Interpret; se_frames = fds; se_tag = "continuation" }
                in
                let frame = reconstruct_frames se vals in
                Vm.Interp.push frame
                  (if Array.length kargs > 0 then kargs.(0) else Null);
                Vm.Interp.resume rt frame))
      | _ -> None)

let count_deopts = ref 0
let count_recompiles = ref 0

let compile_graph rt (g : Ir.graph) ~(recompile : unit -> unit) :
    value array -> value =
  let base = Lms.Closure_backend.default_hooks rt in
  let hooks =
    {
      base with
      Lms.Closure_backend.on_exit =
        (fun se vals ->
          incr count_deopts;
          (match se.Ir.se_kind with
          | `Recompile ->
            incr count_recompiles;
            recompile ()
          | `Interpret -> ());
          Vm.Interp.resume rt (reconstruct_frames se vals));
    }
  in
  Lms.Closure_backend.compile ~hooks g

(* typed-kernel compilation with transparent fallback to the boxed backend *)
let compile_graph_typed rt (g : Ir.graph) ~(recompile : unit -> unit) :
    value array -> value =
  let base = Lms.Closure_backend.default_hooks rt in
  let hooks =
    {
      base with
      Lms.Closure_backend.on_exit =
        (fun se vals ->
          incr count_deopts;
          (match se.Ir.se_kind with
          | `Recompile ->
            incr count_recompiles;
            recompile ()
          | `Interpret -> ());
          Vm.Interp.resume rt (reconstruct_frames se vals));
    }
  in
  match Lms.Typed_backend.compile ~hooks g with
  | fn ->
    incr Lms.Typed_backend.count_typed;
    fn
  | exception Lms.Typed_backend.Fallback reason ->
    incr Lms.Typed_backend.count_fallback;
    Lms.Typed_backend.last_fallback := reason;
    Lms.Closure_backend.compile ~hooks g

(* graph of the most recent [compile_value], for tests and tooling *)
let last_graph : Ir.graph option ref = ref None

(* Wrap a tier-0 graph build (the explicit [Lancet.compile] /
   [compile_method] entry points; the tiered path has its own accounting in
   [Tiering]) with Compile_start/Compile_end events.  Backend choice and
   fallback reason are recovered from the typed-backend counters. *)
let obs_compile0 (m : meth) (build : unit -> 'a) : 'a =
  if not !Obs.enabled then build ()
  else begin
    let meth = Vm.Runtime.meth_label m and mid = m.mid in
    Obs.emit
      (Obs.Compile_start { meth; mid; tier = 0; worker = Obs.worker_id () });
    let t0 = Obs.now () in
    let ty0 = !Lms.Typed_backend.count_typed in
    let fb0 = !Lms.Typed_backend.count_fallback in
    let emit_end backend fallback =
      let nodes_in, nodes_out = !last_node_counts in
      Obs.emit
        (Obs.Compile_end
           {
             ci_meth = meth;
             ci_mid = mid;
             ci_tier = 0;
             ci_worker = Obs.worker_id ();
             ci_backend = backend;
             ci_fallback = fallback;
             ci_nodes_in = nodes_in;
             ci_nodes_out = nodes_out;
             ci_ms = (Obs.now () -. t0) *. 1000.;
           })
    in
    match build () with
    | v ->
      let fell = !Lms.Typed_backend.count_fallback > fb0 in
      let backend =
        if !Lms.Typed_backend.count_typed > ty0 then "typed" else "closure"
      in
      emit_end backend
        (if fell then Some !Lms.Typed_backend.last_fallback else None);
      v
    | exception e ->
      emit_end "failed" None;
      raise e
  end

(* The user-facing [Lancet.compile]: compile a closure object with respect
   to its captured state.  Returns a CompiledFn whose body can be swapped by
   recompilation (the [stable]/[fastpath] path). *)
let compile_value ?(opts = default_options) rt (v : value) : value =
  match v with
  | Obj o -> (
    let apply = Vm.Classfile.resolve_virtual o.ocls "apply" in
    match apply.mcode with
    | Native _ -> v (* CompiledFn or other native closure: nothing to do *)
    | Bytecode _ ->
      let spec =
        Array.init (apply.mnargs + 1) (fun i ->
            if i = 0 then Static_value v else Dyn)
      in
      let cell = ref (fun _ -> Null) in
      let rec build () =
        obs_compile0 apply (fun () ->
            let g = stage ~opts rt apply spec in
            last_graph := Some g;
            cell := compile_graph rt g ~recompile:(fun () -> build ()))
      in
      build ();
      Vm.Natives.make_compiled_fn rt (fun args -> !cell args))
  | _ -> vm_error "Lancet.compile: not a closure object"

(* Compile an arbitrary method with an argument specification; returns a
   function over the dynamic arguments.  [typed] selects the unboxed kernel
   backend (with automatic fallback). *)
let compile_method ?(opts = default_options) ?(typed = false) rt (m : meth)
    (spec : arg_spec array) : value array -> value =
  let backend = if typed then compile_graph_typed else compile_graph in
  let cell = ref (fun _ -> Null) in
  obs_compile0 m (fun () ->
      let g = stage ~opts rt m spec in
      last_graph := Some g;
      cell :=
        backend rt g ~recompile:(fun () ->
            let g' = stage ~opts rt m spec in
            cell := backend rt g' ~recompile:(fun () -> ())));
  fun args -> !cell args
