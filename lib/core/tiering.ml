(* Tier 1 of the tiered execution engine: the [jit_hook] installed into the
   VM runtime.  When the interpreter promotes a hot bytecode method, this
   module stages it through the Lancet pipeline (all arguments dynamic),
   compiles the optimized graph with the closure backend and returns the
   entry point that [Runtime.tier_install] places in the code cache.

   Deoptimization: side exits in the compiled code reconstruct interpreter
   frames and resume interpretation (OSR-out), counting into
   [rt.tiering.t_deopts].  [`Recompile] exits (the [stable]/[fastpath]
   macros) additionally bump the method's cache generation and rebuild the
   graph with the current values frozen before resuming — the same
   cell-swapping scheme as [Compiler.compile_value], so the cached entry
   point stays valid across recompiles.

   Observability: every graph build — initial promotion and on-exit
   recompile alike — goes through [build], which is the single place that
   counts [t_compiles] and emits [Compile_start]/[Compile_end] (backend
   chosen, typed-backend fallback reason, IR node counts, wall time).  Side
   exits emit [Deopt] with the bytecode pc of the innermost frame, and the
   installed entry point samples its own execution time into [Exec_sample]
   events when a sink is attached. *)

open Vm.Types
module C = Compiler

(* Hot methods are compiled fully dynamically: every parameter (receiver
   included) becomes a graph parameter, so one compilation serves every call
   site.  Specialization still happens inside: constants, virtual objects
   and JIT macros in the method body all fold as usual. *)
let compile_method_dyn rt (m : meth) :
    ((value array -> value) * string list * int) option =
  let nslots = m.mnargs + if m.mstatic then 0 else 1 in
  let spec = Array.make (max nslots 0) C.Dyn in
  let label = Vm.Runtime.meth_label m in
  let opts =
    { C.default_options with C.name = "tier:" ^ label; C.feedback = true }
  in
  let cell = ref (fun _ -> Null) in
  (* failed speculations at this entry point: a devirt guard that keeps
     missing means the profile went stale, so drop the code and let the
     method re-promote with a fresh one *)
  let devirt_fails = ref 0 in
  (* Execution-time sampling for the installed entry point: the first call
     and every 64th call thereafter flush the accumulated wall time; the
     remainder of a partial batch is flushed by the [Obs.add_flusher] hook
     below (run by [Obs.flush] and the at-exit trace writer), so short runs
     no longer under-report Exec_sample time. *)
  let exec_total = ref 0 in
  let pend_calls = ref 0 in
  let pend_ms = ref 0.0 in
  let def_line = Vm.Runtime.meth_def_line m in
  let flush_pending () =
    if !pend_calls > 0 then begin
      Obs.emit
        (Obs.Exec_sample
           {
             meth = label;
             mid = m.mid;
             calls = !pend_calls;
             ms = !pend_ms;
             line = def_line;
           });
      pend_calls := 0;
      pend_ms := 0.0
    end
  in
  Obs.add_flusher flush_pending;
  let entry args =
    if not !Obs.enabled then !cell args
    else begin
      let t0 = Obs.now () in
      let v = !cell args in
      incr exec_total;
      incr pend_calls;
      pend_ms := !pend_ms +. ((Obs.now () -. t0) *. 1000.);
      if !exec_total = 1 || !pend_calls >= 64 then flush_pending ();
      v
    end
  in
  let rec build () : string list * int =
    (* the hierarchy epoch read must precede staging: if [add_method] lands
       mid-compile the epoch comparison at install time catches it *)
    let epoch0 = Vm.Runtime.hier_epoch rt in
    let deps = ref [] in
    let obs = !Obs.enabled in
    if obs then
      Obs.emit
        (Obs.Compile_start
           { meth = label; mid = m.mid; tier = 1; worker = Obs.worker_id () });
    (* the journal wants compile wall time too, so the clock runs whenever
       either consumer is on *)
    let t0 = if obs || !Forensics.on then Obs.now () else 0.0 in
    let emit_end backend fallback =
      if !Obs.enabled then begin
        let nodes_in, nodes_out = !C.last_node_counts in
        Obs.emit
          (Obs.Compile_end
             {
               ci_meth = label;
               ci_mid = m.mid;
               ci_tier = 1;
               ci_worker = Obs.worker_id ();
               ci_backend = backend;
               ci_fallback = fallback;
               ci_nodes_in = nodes_in;
               ci_nodes_out = nodes_out;
               ci_ms = (Obs.now () -. t0) *. 1000.;
             })
      end
    in
    match
      let g = C.stage ~opts ~deps rt m spec in
      (* the optimized graph's structural fingerprint feeds two consumers:
         the decision journal (`lancet why` renders it and flags recompiles
         that produced identical code) and the profile subsystem, which
         records it for --profile-out and validates warm compiles against
         the recorded one for --profile-in *)
      if !Forensics.on || Persist.active () then begin
        let fp = Lms.Snapshot.fingerprint g in
        if !Forensics.on then
          Forensics.record ~mid:m.mid ~meth:label
            (Forensics.Ir_fingerprint { phase = Phases.name Phases.Dce; fp });
        Persist.on_fingerprint ~mid:m.mid ~meth:label ~fp
      end;
      let base = Lms.Closure_backend.default_hooks rt in
      let hooks =
        {
          base with
          Lms.Closure_backend.on_exit =
            (fun se vals ->
              let t = rt.tiering in
              t.t_deopts <- t.t_deopts + 1;
              let se_pc =
                match se.Lms.Ir.se_frames with
                | fd :: _ -> fd.Lms.Ir.fd_pc
                | [] -> -1
              in
              let se_line =
                match se.Lms.Ir.se_frames with
                | fd :: _ ->
                  Vm.Runtime.line_at fd.Lms.Ir.fd_meth fd.Lms.Ir.fd_pc
                | [] -> 0
              in
              if !Forensics.on then
                Forensics.record ~mid:m.mid ~meth:label
                  ~cause:
                    (Forensics.Guard
                       { tag = se.Lms.Ir.se_tag; pc = se_pc; line = se_line })
                  (Forensics.Deopt
                     {
                       tag = se.Lms.Ir.se_tag;
                       pc = se_pc;
                       line = se_line;
                       recompile =
                         (match se.Lms.Ir.se_kind with
                         | `Recompile -> true
                         | `Interpret -> false);
                     });
              if !Obs.enabled then
                Obs.emit
                  (Obs.Deopt
                     {
                       meth = label;
                       mid = m.mid;
                       kind =
                         (match se.Lms.Ir.se_kind with
                         | `Interpret -> Obs.Interpret
                         | `Recompile -> Obs.Recompile);
                       tag = se.Lms.Ir.se_tag;
                       (* the innermost frame's own pc/line table: with
                          inlining the deopt site may sit in a callee *)
                       pc = se_pc;
                       line = se_line;
                     });
              (* the governor's circuit breaker sees every deopt; when it
                 acts (demote to interpreter, blacklist) the normal
                 remediation below is skipped — re-enqueueing a recompile
                 would defeat the backoff *)
              let governed =
                match t.t_on_deopt with
                | Some f -> f m se.Lms.Ir.se_tag se_pc se_line
                | None -> false
              in
              (match se.Lms.Ir.se_kind with
              | _ when governed -> ()
              | `Recompile -> (
                Vm.Runtime.tier_invalidate
                  ~why:(Forensics.Recompile_exit { tag = se.Lms.Ir.se_tag })
                  rt m;
                (* With background compilation installed, the rebuild goes
                   through the compile queue: the mutator resumes in the
                   interpreter immediately and a worker publishes the new
                   code at the bumped generation.  Synchronous mode rebuilds
                   in place, as before. *)
                match rt.tiering.t_bg_recompile with
                | Some enqueue -> enqueue m
                | None -> (
                  (* the rebuild runs on the mutator, so the hierarchy
                     cannot shift under it: register deps and install *)
                  match build () with
                  | deps', _ -> Vm.Runtime.tier_install ~deps:deps' rt m entry
                  | exception _ -> m.mtier <- Tier_blacklisted))
              | `Interpret ->
                let tag = se.Lms.Ir.se_tag in
                if
                  String.length tag > 7 && String.equal (String.sub tag 0 7)
                    "devirt:"
                then begin
                  if !Obs.enabled then
                    Obs.emit
                      (Obs.Devirt_guard_fail
                         {
                           meth = label;
                           mid = m.mid;
                           pc =
                             (match se.Lms.Ir.se_frames with
                             | fd :: _ -> fd.Lms.Ir.fd_pc
                             | [] -> -1);
                           target =
                             String.sub tag 7 (String.length tag - 7);
                         });
                  incr devirt_fails;
                  (* repeated misses: speculation is now slower than generic
                     dispatch, so invalidate; the hot method re-promotes
                     against the retrained inline cache *)
                  if !devirt_fails >= 2 then
                    Vm.Runtime.tier_invalidate
                      ~why:
                        (Forensics.Devirt_miss
                           {
                             target = String.sub tag 7 (String.length tag - 7);
                             fails = !devirt_fails;
                           })
                      rt m
                end);
              Vm.Interp.resume rt (C.reconstruct_frames se vals));
        }
      in
      (* prefer the unboxed kernel backend (hot loops are why we are here);
         it raises [Fallback] on graphs it cannot handle *)
      match Lms.Typed_backend.compile ~hooks g with
      | fn -> (fn, "typed", None)
      | exception Lms.Typed_backend.Fallback reason ->
        (Lms.Closure_backend.compile ~hooks g, "closure", Some reason)
    with
    | fn, backend, fallback ->
      cell := fn;
      devirt_fails := 0;
      (* the one place compiles are counted: initial promotions and on-exit
         recompiles share this path (satellite fix for the old asymmetry) *)
      rt.tiering.t_compiles <- rt.tiering.t_compiles + 1;
      emit_end backend fallback;
      if !Forensics.on then
        Forensics.record ~mid:m.mid ~meth:label
          (Forensics.Compile_done
             { backend; ms = (Obs.now () -. t0) *. 1000. });
      (!deps, epoch0)
    | exception e ->
      emit_end "failed" None;
      raise e
  in
  match build () with
  | deps, epoch0 -> Some (entry, deps, epoch0)
  | exception _ -> None (* compile failure: the caller blacklists *)

(* The raw compile step, shared by the synchronous hook below and the
   background JIT workers ([Bgjit] injects it as the pool's compile
   function): stage + optimize + backend, no installation, no tier-state
   bookkeeping.  Returns the entry point together with the devirtualization
   dependencies (method names the code speculates on) and the hierarchy
   epoch the compile started from, so installers can reject code built
   against a hierarchy that changed mid-compile.  [None] means the method
   cannot be compiled. *)
let compile rt (m : meth) :
    ((value array -> value) * string list * int) option =
  match m.mcode with
  | Native _ -> None
  | Bytecode _ -> compile_method_dyn rt m

let jit_hook rt (m : meth) : jit_result =
  (* speculative code built across a hierarchy change must not be
     installed; retry against the new epoch a few times, then decline *)
  let rec go attempts =
    match compile rt m with
    | None -> Jit_declined
    | Some (fn, deps, epoch0) ->
      if deps = [] || Vm.Runtime.hier_epoch rt = epoch0 then begin
        Vm.Runtime.devirt_register rt deps m;
        Jit_compiled fn
      end
      else begin
        (* speculative code built across a hierarchy change: discarded
           before it was ever installed *)
        if !Forensics.on then
          Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
            ~cause:
              (Forensics.Epoch_mismatch
                 { expected = epoch0; found = Vm.Runtime.hier_epoch rt })
            Forensics.Discard;
        if attempts > 1 then go (attempts - 1) else Jit_declined
      end
  in
  go 3

(* Install the tier-1 compiler; promotion still requires the runtime to have
   tiering enabled ([Runtime.create ~tiering:true] or [rt.tiering.t_enabled]). *)
let install rt = rt.jit_hook <- Some jit_hook
