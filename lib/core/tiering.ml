(* Tier 1 of the tiered execution engine: the [jit_hook] installed into the
   VM runtime.  When the interpreter promotes a hot bytecode method, this
   module stages it through the Lancet pipeline (all arguments dynamic),
   compiles the optimized graph with the closure backend and returns the
   entry point that [Runtime.tier_install] places in the code cache.

   Deoptimization: side exits in the compiled code reconstruct interpreter
   frames and resume interpretation (OSR-out), counting into
   [rt.tiering.t_deopts].  [`Recompile] exits (the [stable]/[fastpath]
   macros) additionally bump the method's cache generation and rebuild the
   graph with the current values frozen before resuming — the same
   cell-swapping scheme as [Compiler.compile_value], so the cached entry
   point stays valid across recompiles. *)

open Vm.Types
module C = Compiler

(* Hot methods are compiled fully dynamically: every parameter (receiver
   included) becomes a graph parameter, so one compilation serves every call
   site.  Specialization still happens inside: constants, virtual objects
   and JIT macros in the method body all fold as usual. *)
let compile_method_dyn rt (m : meth) : (value array -> value) option =
  let nslots = m.mnargs + if m.mstatic then 0 else 1 in
  let spec = Array.make (max nslots 0) C.Dyn in
  let opts =
    { C.default_options with C.name = "tier:" ^ m.mowner.cname ^ "." ^ m.mname }
  in
  let cell = ref (fun _ -> Null) in
  let rec build () =
    let g = C.stage ~opts rt m spec in
    let base = Lms.Closure_backend.default_hooks rt in
    let hooks =
      {
        base with
        Lms.Closure_backend.on_exit =
          (fun se vals ->
            let t = rt.tiering in
            t.t_deopts <- t.t_deopts + 1;
            (match se.Lms.Ir.se_kind with
            | `Recompile -> (
              Vm.Runtime.tier_invalidate rt m;
              match build () with
              | () ->
                t.t_compiles <- t.t_compiles + 1;
                Vm.Runtime.tier_install rt m (fun args -> !cell args)
              | exception _ -> m.mtier <- Tier_blacklisted)
            | `Interpret -> ());
            Vm.Interp.resume rt (C.reconstruct_frames se vals));
      }
    in
    (* prefer the unboxed kernel backend (hot loops are why we are here);
       it raises [Fallback] on graphs it cannot handle *)
    cell :=
      (match Lms.Typed_backend.compile ~hooks g with
      | fn -> fn
      | exception Lms.Typed_backend.Fallback _ ->
        Lms.Closure_backend.compile ~hooks g)
  in
  match build () with
  | () -> Some (fun args -> !cell args)
  | exception _ -> None (* compile failure: the caller blacklists *)

let jit_hook rt (m : meth) : (value array -> value) option =
  match m.mcode with
  | Native _ -> None
  | Bytecode _ -> compile_method_dyn rt m

(* Install the tier-1 compiler; promotion still requires the runtime to have
   tiering enabled ([Runtime.create ~tiering:true] or [rt.tiering.t_enabled]). *)
let install rt = rt.jit_hook <- Some jit_hook
