(* Graph capture for pipeline introspection.

   [Irtrace] (in obs, below the IR) stores only plain counts, strings and
   hashes; this module is the bridge that walks an [Ir.graph] and summarizes
   it — per-op-kind node counts, per-source-line attribution via [prov], and
   a structural fingerprint of the graph's canonical form.

   The fingerprint must be stable across recompiles of the same
   (mid, spec): raw [sym] ids are allocation order, which can differ between
   builds (and between mutator and background-worker compiles), so the
   canonical form renumbers values densely in traversal order and renders
   floating constants/params inline by content.  Defs dominate uses and
   [reachable_blocks] is a DFS preorder, so every body node is numbered
   before it is referenced. *)

open Ir

(* Coarse op kind for the per-kind count tables: operand detail (which
   field, which callee) stays in the fingerprint and in [Ir.op_tag]. *)
let op_kind = function
  | Konst _ -> "const"
  | Param _ | Bparam -> "param"
  | Iop _ | Ineg -> "iop"
  | Fop _ | Fneg -> "fop"
  | I2f | F2i -> "conv"
  | Icmp _ | Fcmp _ | IsNull -> "cmp"
  | ClassId -> "classid"
  | Getfield _ -> "getfield"
  | Putfield _ -> "putfield"
  | Getglobal _ -> "getglobal"
  | Putglobal _ -> "putglobal"
  | NewObj _ | Newarr | Newfarr -> "alloc"
  | Aload | Faload -> "aload"
  | Astore | Fastore -> "astore"
  | Alen -> "alen"
  | CallStatic _ -> "call"
  | CallVirtual _ -> "callvirt"
  | CallClosure _ -> "callclosure"
  | Ext op -> Pretty.ext_name op

(* ------------------------------------------------------------------ *)
(* Structural fingerprint                                              *)

let const_str = function
  | Vm.Types.Null -> "null"
  | Vm.Types.Int i -> "i" ^ string_of_int i
  | Vm.Types.Float f -> "f" ^ string_of_float f
  | Vm.Types.Str s -> "s" ^ s
  | Vm.Types.Obj o -> "o" ^ string_of_int o.Vm.Types.oid
  | Vm.Types.Arr _ | Vm.Types.Farr _ -> "a"

let fingerprint g =
  let buf = Buffer.create 512 in
  let add = Buffer.add_string buf in
  let blocks = reachable_blocks g in
  let bidx = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace bidx b.bid i) blocks;
  let bref bid =
    match Hashtbl.find_opt bidx bid with
    | Some i -> "B" ^ string_of_int i
    | None -> "B?"
  in
  let renum = Hashtbl.create 64 in
  let next = ref 0 in
  let num s =
    match Hashtbl.find_opt renum s with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace renum s i;
      i
  in
  let arg s =
    let n = node g s in
    match n.op with
    | Konst v -> "k<" ^ const_str v ^ ">"
    | Param i -> "p" ^ string_of_int i
    | _ -> "v" ^ string_of_int (num s)
  in
  let target t =
    bref t.tblock ^ "("
    ^ String.concat "," (Array.to_list (Array.map arg t.targs))
    ^ ")"
  in
  List.iter
    (fun b ->
      add (bref b.bid);
      add "(";
      List.iter
        (fun (s, ty) ->
          add ("v" ^ string_of_int (num s) ^ ":" ^ Pretty.ty_name ty ^ ","))
        b.params;
      add "):";
      List.iter
        (fun n ->
          add ("v" ^ string_of_int (num n.id) ^ "=" ^ Pretty.op_name n.op);
          Array.iter (fun a -> add (" " ^ arg a)) n.args;
          add (":" ^ Pretty.ty_name n.ty);
          add ";")
        (body_in_order b);
      (match b.term with
      | Ret s -> add ("ret " ^ arg s)
      | Jump t -> add ("jump " ^ target t)
      | Br (c, t1, t2) -> add ("br " ^ arg c ^ "?" ^ target t1 ^ ":" ^ target t2)
      | Exit se ->
        add
          ("exit["
          ^ (match se.se_kind with
            | `Interpret -> "interp"
            | `Recompile -> "recompile")
          ^ ":" ^ se.se_tag ^ "]")
      | Unreachable msg -> add ("unreachable(" ^ msg ^ ")"));
      add "\n")
    blocks;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)

(* A branch whose condition is a *block parameter* is a materialized
   boolean: codegen lowered a compare in a predecessor block into a 0/1
   diamond join (the `val b = x < y` / `Lancet.speculate(..)` shape), so
   the backend cannot fuse the compare into this branch — the guard pays a
   join plus a re-test of the materialized value.  Walk the diamond back
   to the compare so the fusion-declined record points at real source:
   find a [Br] both of whose arms are empty blocks that jump straight to
   the condition's block passing an int constant at the parameter's
   position. *)
let materialized_cond (g : graph) (bid : int) (c : sym) : node option =
  match (node g c).op with
  | Bparam -> (
    match Hashtbl.find_opt g.blocks bid with
    | None -> None
    | Some blk -> (
      let idx = ref (-1) in
      List.iteri (fun i (s, _) -> if s = c then idx := i) blk.params;
      match !idx with
      | -1 -> None
      | i ->
        let const_arm (t : target) =
          match Hashtbl.find_opt g.blocks t.tblock with
          | Some ab when ab.body = [] -> (
            match ab.term with
            | Jump jt when jt.tblock = bid && i < Array.length jt.targs -> (
              match (node g jt.targs.(i)).op with
              | Konst (Vm.Types.Int _) -> true
              | _ -> false)
            | _ -> false)
          | _ -> false
        in
        Hashtbl.fold
          (fun _ pb acc ->
            match acc with
            | Some _ -> acc
            | None -> (
              match pb.term with
              | Br (cc, t1, t2) when const_arm t1 && const_arm t2 -> (
                let n = node g cc in
                match n.op with
                | Icmp _ | Fcmp _ | IsNull -> Some n
                | _ -> None)
              | _ -> None))
          g.blocks None))
  | _ -> None

let bump tbl k by =
  Hashtbl.replace tbl k (by + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let sorted_counts tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Summarize [g] into an Irtrace snapshot for [phase].  [exclude] drops
   nodes a backend has folded away (fused guard compares) so the
   post-guard-lowering phase shows them as eliminated. *)
let take ?(meta = []) ?(exclude = fun _ -> false) g (phase : Phases.t) =
  if !Irtrace.on then begin
    let blocks = reachable_blocks g in
    let ops = Hashtbl.create 16 in
    let lines = Hashtbl.create 16 in
    let nodes = ref 0 in
    List.iter
      (fun b ->
        List.iter
          (fun n ->
            if not (exclude n.id) then begin
              incr nodes;
              bump ops (op_kind n.op) 1;
              match n.prov with
              | Some p when p.pv_line > 0 -> bump lines p.pv_line 1
              | _ -> ()
            end)
          (body_in_order b))
      blocks;
    let text = if Irtrace.keep_text () then Some (Pretty.graph_to_string_src g) else None in
    ignore
      (Irtrace.record_snapshot ~phase:(Phases.name phase)
         ~blocks:(List.length blocks) ~nodes:!nodes ~ops:(sorted_counts ops)
         ~lines:(sorted_counts lines) ~fp:(fingerprint g) ?text ~meta ())
  end
