(* Cross-compilation to JavaScript (paper Sec. 3.5): emit JS source from an
   optimized IR graph, using Lancet as a "bytecode decompilation front-end".
   Control flow uses the standard trampoline (for(;;) switch (block)) since
   the IR is an arbitrary CFG.  Calls on DOM objects arrive as [Js_call]
   extension nodes planted by the JS macros. *)

open Ir

type ext_op += Js_call of string (* method name; args.(0) is the receiver *)

let () =
  Pretty.register_ext (function
    | Js_call name -> Some (Printf.sprintf "js.%s" name)
    | _ -> None);
  (* executing a cross-compiled call on the VM is a mistake *)
  Closure_backend.register_ext (fun _hooks op _getters ->
      match op with
      | Js_call name ->
        Some (fun _ -> Vm.Types.vm_error "js.%s can only be cross-compiled" name)
      | _ -> None)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let js_string_literal s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let konst_js (v : Vm.Types.value) =
  match v with
  | Vm.Types.Null -> "null"
  | Vm.Types.Int i -> string_of_int i
  | Vm.Types.Float f ->
    if Float.is_integer f then Printf.sprintf "%.1f" f else Printf.sprintf "%.17g" f
  | Vm.Types.Str s -> js_string_literal s
  | Vm.Types.Obj o ->
    (* static DOM objects cross-compile to their ambient JS names: the
       document object the closure captured becomes the global [document] *)
    let rec is_js (c : Vm.Types.cls) =
      String.equal c.Vm.Types.cname "JS"
      || match c.Vm.Types.csuper with Some s -> is_js s | None -> false
    in
    if is_js o.Vm.Types.ocls then
      String.lowercase_ascii o.Vm.Types.ocls.Vm.Types.cname
    else unsupported "heap constant in JS output"
  | Vm.Types.Arr _ | Vm.Types.Farr _ ->
    unsupported "heap constant in JS output"

(* natives with direct JavaScript equivalents *)
let native_js name (args : string list) : string =
  match name, args with
  | "Str.concat", [ a; b ] -> Printf.sprintf "(%s + %s)" a b
  | "Str.len", [ a ] -> Printf.sprintf "%s.length" a
  | "Str.of_int", [ a ] | "Str.of_float", [ a ] -> Printf.sprintf "String(%s)" a
  | "Math.sqrt", [ a ] -> Printf.sprintf "Math.sqrt(%s)" a
  | "Math.exp", [ a ] -> Printf.sprintf "Math.exp(%s)" a
  | "Math.log", [ a ] -> Printf.sprintf "Math.log(%s)" a
  | "Math.fabs", [ a ] | "Math.iabs", [ a ] -> Printf.sprintf "Math.abs(%s)" a
  | "Math.pow", [ a; b ] -> Printf.sprintf "Math.pow(%s, %s)" a b
  | "Sys.print", [ a ] | "Sys.println", [ a ] -> Printf.sprintf "console.log(%s)" a
  | _ -> unsupported "native %s in JS output" name

let cond_js = function
  | Vm.Types.Eq -> "===" | Vm.Types.Ne -> "!==" | Vm.Types.Lt -> "<"
  | Vm.Types.Le -> "<=" | Vm.Types.Gt -> ">" | Vm.Types.Ge -> ">="

let emit_function ?(name = "kernel") (g : graph) : string =
  let buf = Buffer.create 1024 in
  let out fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  let blocks = reachable_blocks g in
  let bindex = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace bindex b.bid i) blocks;
  let var s = Printf.sprintf "x%d" s in
  let rec ref_of s =
    let n = node g s in
    match n.op with
    | Konst v -> konst_js v
    | Param i -> Printf.sprintf "p%d" i
    | _ -> var s
  and expr_of (n : node) : string option =
    let a i = ref_of n.args.(i) in
    match n.op with
    | Konst _ | Param _ | Bparam -> None
    | Iop op ->
      let sym =
        match op with
        | Vm.Types.Add -> "+" | Vm.Types.Sub -> "-" | Vm.Types.Mul -> "*"
        | Vm.Types.Div -> "/" | Vm.Types.Rem -> "%" | Vm.Types.And -> "&"
        | Vm.Types.Or -> "|" | Vm.Types.Xor -> "^" | Vm.Types.Shl -> "<<"
        | Vm.Types.Shr -> ">>"
      in
      Some (Printf.sprintf "((%s %s %s) | 0)" (a 0) sym (a 1))
    | Ineg -> Some (Printf.sprintf "((-%s) | 0)" (a 0))
    | Fop op ->
      let sym =
        match op with
        | Vm.Types.FAdd -> "+" | Vm.Types.FSub -> "-"
        | Vm.Types.FMul -> "*" | Vm.Types.FDiv -> "/"
      in
      Some (Printf.sprintf "(%s %s %s)" (a 0) sym (a 1))
    | Fneg -> Some (Printf.sprintf "(-%s)" (a 0))
    | I2f -> Some (a 0)
    | F2i -> Some (Printf.sprintf "(%s | 0)" (a 0))
    | Icmp c | Fcmp c ->
      Some (Printf.sprintf "(%s %s %s ? 1 : 0)" (a 0) (cond_js c) (a 1))
    | IsNull -> Some (Printf.sprintf "(%s === null ? 1 : 0)" (a 0))
    | ClassId -> unsupported "class-id guard in JS output"
    | Getfield f -> Some (Printf.sprintf "%s.%s" (a 0) f.Vm.Types.fname)
    | Putfield f ->
      Some (Printf.sprintf "(%s.%s = %s)" (a 0) f.Vm.Types.fname (a 1))
    | Getglobal i -> Some (Printf.sprintf "G[%d]" i)
    | Putglobal i -> Some (Printf.sprintf "(G[%d] = %s)" i (a 0))
    | NewObj _ -> Some "{}"
    | Newarr | Newfarr -> Some (Printf.sprintf "new Array(%s)" (a 0))
    | Aload | Faload -> Some (Printf.sprintf "%s[%s]" (a 0) (a 1))
    | Astore | Fastore ->
      Some (Printf.sprintf "(%s[%s] = %s)" (a 0) (a 1) (a 2))
    | Alen -> Some (Printf.sprintf "%s.length" (a 0))
    | CallStatic m -> (
      let args = List.init (Array.length n.args) a in
      match m.Vm.Types.mcode with
      | Vm.Types.Native (nname, _) -> Some (native_js nname args)
      | Vm.Types.Bytecode _ ->
        unsupported "un-inlined call to %s in JS output" m.Vm.Types.mname)
    | CallVirtual (nm, _) ->
      unsupported "dynamic dispatch of %s in JS output" nm
    | CallClosure _ -> unsupported "closure call in JS output"
    | Ext (Js_call nm) ->
      let args = List.init (Array.length n.args) a in
      (match args with
      | recv :: rest ->
        Some (Printf.sprintf "%s.%s(%s)" recv nm (String.concat ", " rest))
      | [] -> unsupported "js call with no receiver")
    | Ext _ -> unsupported "extension op in JS output"
  in
  let params = String.concat ", " (List.init g.nparams (Printf.sprintf "p%d")) in
  out "function %s(%s) {\n" name params;
  (* declare all block params and node results up front *)
  let decls = ref [] in
  List.iter
    (fun b ->
      List.iter (fun (s, _) -> decls := var s :: !decls) b.params;
      List.iter
        (fun n ->
          match n.op with
          | Konst _ | Param _ | Bparam -> ()
          | _ -> decls := var n.id :: !decls)
        (body_in_order b))
    blocks;
  if !decls <> [] then out "  var %s;\n" (String.concat ", " (List.rev !decls));
  out "  var _b = %d;\n  for (;;) switch (_b) {\n" (Hashtbl.find bindex g.entry);
  let emit_jump t =
    let params = (block g t.tblock).params in
    List.iteri
      (fun i (ps, _) -> out "      %s = %s;\n" (var ps) (ref_of t.targs.(i)))
      params;
    out "      _b = %d; continue;\n" (Hashtbl.find bindex t.tblock)
  in
  List.iter
    (fun b ->
      out "    case %d:\n" (Hashtbl.find bindex b.bid);
      List.iter
        (fun n ->
          match expr_of n with
          | None -> ()
          | Some e -> out "      %s = %s;\n" (var n.id) e)
        (body_in_order b);
      (match b.term with
      | Ret s -> out "      return %s;\n" (ref_of s)
      | Jump t -> emit_jump t
      | Br (c, t1, t2) ->
        out "      if (%s) {\n" (ref_of c);
        emit_jump t1;
        out "      } else {\n";
        emit_jump t2;
        out "      }\n"
      | Exit se ->
        out "      throw new Error(%s);\n"
          (js_string_literal ("deoptimize: " ^ se.se_tag))
      | Unreachable msg ->
        out "      throw new Error(%s);\n" (js_string_literal msg)))
    blocks;
  out "  }\n}\n";
  Buffer.contents buf
