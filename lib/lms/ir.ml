(* The staged-expression IR — the analogue of LMS's [Rep[T]] layer.  A value
   of type [sym] is "a piece of generated code that computes a value when
   executed later" (the paper's Rep).  Programs are CFGs of basic blocks with
   block parameters (SSA form); side exits carry the frame-reconstruction
   metadata needed for deoptimization. *)

type ty = Tint | Tfloat | Tstr | Tbool | Tobj | Tarr | Tfarr | Tunit | Tany

type sym = int

(* Extension point: Delite parallel ops and JS/DOM calls plug in here. *)
type ext_op = ..

type op =
  | Konst of Vm.Types.value
  | Param of int (* function parameter index *)
  | Bparam (* block parameter; bound by the block's [params] list *)
  | Iop of Vm.Types.iop
  | Ineg
  | Fop of Vm.Types.fop
  | Fneg
  | I2f
  | F2i
  | Icmp of Vm.Types.cond (* int compare producing a bool (0/1) *)
  | Fcmp of Vm.Types.cond
  | IsNull
  | ClassId (* class id of an object receiver; -1 for null/non-objects *)
  | Getfield of Vm.Types.field
  | Putfield of Vm.Types.field
  | Getglobal of int
  | Putglobal of int
  | NewObj of Vm.Types.cls
  | Newarr
  | Newfarr
  | Aload
  | Astore
  | Faload
  | Fastore
  | Alen
  | CallStatic of Vm.Types.meth (* residual (un-inlined) direct call *)
  | CallVirtual of string * int (* residual dynamically-dispatched call *)
  | CallClosure of int (* residual closure call: args.(0) is callee, n params *)
  | Ext of ext_op

(* Source provenance of a staged node: the bytecode instruction (and its
   source line, via the method's line table) the node was staged from.
   Carried through CSE (first node wins) and DCE (a filter), and consulted
   by both backends for diagnostics. *)
type prov = { pv_mid : int; pv_pc : int; pv_line : int }

type node = {
  id : sym;
  op : op;
  args : sym array;
  ty : ty;
  eff : bool;
  prov : prov option;
}

type target = { tblock : int; targs : sym array }

type frame_desc = {
  fd_meth : Vm.Types.meth;
  fd_pc : int;
  fd_locals : sym array;
  fd_stack : sym array;
}

(* A side exit abandons compiled execution of the current continuation:
   [`Interpret] reconstructs interpreter frames and resumes interpretation
   (the paper's [slowpath] / OSR-out); [`Recompile] asks the registered
   recompilation callback for fresh compiled code specialized to the current
   values (the paper's [fastpath] / [stable]). *)
type side_exit = {
  se_kind : [ `Interpret | `Recompile ];
  se_frames : frame_desc list; (* innermost continuation frame first *)
  se_tag : string; (* for diagnostics and tests *)
}

type terminator =
  | Ret of sym
  | Jump of target
  | Br of sym * target * target (* condition, then-target, else-target *)
  | Exit of side_exit
  | Unreachable of string

type block = {
  bid : int;
  mutable params : (sym * ty) list;
  mutable body : node list; (* in reverse order while under construction *)
  mutable term : terminator;
}

type graph = {
  mutable entry : int;
  nparams : int;
  blocks : (int, block) Hashtbl.t;
  nodes : (sym, node) Hashtbl.t;
  mutable next_sym : int;
  mutable next_bid : int;
  mutable name : string;
}

let create ?(name = "anon") ~nparams () =
  {
    entry = 0;
    nparams;
    blocks = Hashtbl.create 16;
    nodes = Hashtbl.create 64;
    next_sym = 0;
    next_bid = 0;
    name;
  }

let node g s =
  match Hashtbl.find_opt g.nodes s with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "unknown sym %d" s)

let block g b =
  match Hashtbl.find_opt g.blocks b with
  | Some blk -> blk
  | None -> invalid_arg (Printf.sprintf "unknown block %d" b)

let fresh_sym g =
  let s = g.next_sym in
  g.next_sym <- s + 1;
  s

let new_block g =
  let bid = g.next_bid in
  g.next_bid <- bid + 1;
  let b = { bid; params = []; body = []; term = Unreachable "unfinished" } in
  Hashtbl.replace g.blocks bid b;
  b

let add_block_param g b ty =
  let s = fresh_sym g in
  let n = { id = s; op = Bparam; args = [||]; ty; eff = false; prov = None } in
  Hashtbl.replace g.nodes s n;
  b.params <- b.params @ [ (s, ty) ];
  s

(* Effects: anything that touches the heap, globals, IO or calls out. Pure
   nodes are safe to hash-cons and to delete when unused. *)
let op_effectful = function
  | Konst _ | Param _ | Bparam | Iop _ | Ineg | Fop _ | Fneg | I2f | F2i
  | Icmp _ | Fcmp _ | IsNull | ClassId | Alen ->
    false
  | Getfield f -> not f.Vm.Types.ffinal
  | Getglobal _ -> true
  | Putfield _ | Putglobal _ | NewObj _ | Newarr | Newfarr | Astore | Fastore
  | CallStatic _ | CallVirtual _ | CallClosure _ | Ext _ ->
    true
  | Aload | Faload -> true (* may observe prior stores *)

let add_node ?prov g b ~op ~args ~ty =
  let s = fresh_sym g in
  let n = { id = s; op; args; ty; eff = op_effectful op; prov } in
  Hashtbl.replace g.nodes s n;
  b.body <- n :: b.body;
  s

(* Register an externally-created node object (used when moving or cloning
   nodes between graphs). *)
let intern ?prov g ~op ~args ~ty ~eff b =
  let s = fresh_sym g in
  let n = { id = s; op; args; ty; eff; prov } in
  Hashtbl.replace g.nodes s n;
  b.body <- n :: b.body;
  s

let body_in_order b = List.rev b.body

let blocks_in_order g =
  Hashtbl.fold (fun _ b acc -> b :: acc) g.blocks []
  |> List.sort (fun a b -> compare a.bid b.bid)

(* Reachable blocks from entry, in reverse-postorder-ish DFS order. *)
let reachable_blocks g =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      let b = block g bid in
      order := b :: !order;
      match b.term with
      | Ret _ | Exit _ | Unreachable _ -> ()
      | Jump t -> go t.tblock
      | Br (_, t1, t2) ->
        go t1.tblock;
        go t2.tblock
    end
  in
  go g.entry;
  List.rev !order

let node_count g =
  List.fold_left (fun acc b -> acc + List.length b.body) 0 (reachable_blocks g)

(* Short label for diagnostics emitted from this module and the builder
   (using [Pretty] here would be a dependency cycle). *)
let op_tag = function
  | Konst _ -> "const"
  | Param _ -> "param"
  | Bparam -> "bparam"
  | Iop _ -> "iop"
  | Ineg -> "ineg"
  | Fop _ -> "fop"
  | Fneg -> "fneg"
  | I2f -> "i2f"
  | F2i -> "f2i"
  | Icmp _ -> "icmp"
  | Fcmp _ -> "fcmp"
  | IsNull -> "isnull"
  | ClassId -> "classid"
  | Getfield f -> "getfield " ^ f.Vm.Types.fowner ^ "." ^ f.Vm.Types.fname
  | Putfield f -> "putfield " ^ f.Vm.Types.fowner ^ "." ^ f.Vm.Types.fname
  | Getglobal i -> "getglobal " ^ string_of_int i
  | Putglobal i -> "putglobal " ^ string_of_int i
  | NewObj c -> "new " ^ c.Vm.Types.cname
  | Newarr -> "newarr"
  | Newfarr -> "newfarr"
  | Aload -> "aload"
  | Astore -> "astore"
  | Faload -> "faload"
  | Fastore -> "fastore"
  | Alen -> "alen"
  | CallStatic m ->
    "call " ^ m.Vm.Types.mowner.Vm.Types.cname ^ "." ^ m.Vm.Types.mname
  | CallVirtual (name, _) -> "callvirt " ^ name
  | CallClosure _ -> "callclosure"
  | Ext _ -> "ext"

(* CSE key: a canonical string built from stable ids (class/method/field ids,
   object identities), valid only for pure ops. *)
let op_key op args =
  let b = Buffer.create 32 in
  let add = Buffer.add_string b in
  (match op with
  | Konst v ->
    (match v with
    | Vm.Types.Null -> add "k:null"
    | Vm.Types.Int i -> add ("k:i" ^ string_of_int i)
    | Vm.Types.Float f -> add ("k:f" ^ string_of_float f)
    | Vm.Types.Str s -> add ("k:s" ^ s)
    | Vm.Types.Obj o -> add ("k:o" ^ string_of_int o.Vm.Types.oid)
    | Vm.Types.Arr _ | Vm.Types.Farr _ ->
      add "k:arr"; add (string_of_int (Hashtbl.hash v)))
  | Param i -> add ("p" ^ string_of_int i)
  | Bparam -> add "bp"
  | Iop o -> add ("iop" ^ string_of_int (Hashtbl.hash o))
  | Ineg -> add "ineg"
  | Fop o -> add ("fop" ^ string_of_int (Hashtbl.hash o))
  | Fneg -> add "fneg"
  | I2f -> add "i2f"
  | F2i -> add "f2i"
  | Icmp c -> add ("icmp" ^ string_of_int (Hashtbl.hash c))
  | Fcmp c -> add ("fcmp" ^ string_of_int (Hashtbl.hash c))
  | IsNull -> add "isnull"
  | ClassId -> add "clsid"
  | Getfield f ->
    add ("gf" ^ f.Vm.Types.fowner ^ "." ^ string_of_int f.Vm.Types.fidx)
  | Alen -> add "alen"
  | Getglobal _ | Putglobal _ | Putfield _ | NewObj _ | Newarr | Newfarr
  | Aload | Astore | Faload | Fastore | CallStatic _ | CallVirtual _
  | CallClosure _ | Ext _ ->
    add "effectful");
  Array.iter (fun a -> add (":" ^ string_of_int a)) args;
  Buffer.contents b

(* Remove pure nodes whose results are never used.  Uses are scanned from
   node arguments, terminators and side-exit frame descriptors. *)
let dead_code_elim g =
  let used = Hashtbl.create 64 in
  let changed = ref true in
  (* marking an unmarked sym must trigger another pass: uses may sit in an
     earlier block than the terminator or node that marked them *)
  let mark s =
    if not (Hashtbl.mem used s) then begin
      Hashtbl.replace used s ();
      changed := true
    end
  in
  let mark_target t = Array.iter mark t.targs in
  let blocks = reachable_blocks g in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        (match b.term with
        | Ret s -> mark s
        | Jump t -> mark_target t
        | Br (c, t1, t2) ->
          mark c;
          mark_target t1;
          mark_target t2
        | Exit se ->
          List.iter
            (fun fd ->
              Array.iter mark fd.fd_locals;
              Array.iter mark fd.fd_stack)
            se.se_frames
        | Unreachable _ -> ());
        List.iter
          (fun n ->
            if n.eff || Hashtbl.mem used n.id then Array.iter mark n.args)
          b.body)
      blocks
  done;
  List.iter
    (fun b ->
      (* a value-producing node that is only alive for its effect is a
         missed elimination worth reporting to the coach; unit-typed ops
         (stores, void calls) are genuinely wanted for their effect *)
      (if !Irtrace.on then
         List.iter
           (fun n ->
             if n.eff && (not (Hashtbl.mem used n.id)) && n.ty <> Tunit then
               match n.prov with
               | Some p ->
                 Irtrace.record_miss ~phase:(Phases.name Phases.Dce)
                   ~mid:p.pv_mid ~pc:p.pv_pc ~line:p.pv_line
                   (Irtrace.Dce_kept_effectful { op = op_tag n.op })
               | None -> ())
           b.body);
      b.body <- List.filter (fun n -> n.eff || Hashtbl.mem used n.id) b.body)
    blocks
