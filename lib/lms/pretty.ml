(* Textual dumps of IR graphs, for tests, the CLI and debugging. *)

open Ir

type ext_printer = ext_op -> string option

let ext_printers : ext_printer list ref = ref []

let register_ext f = ext_printers := f :: !ext_printers

let ext_name op =
  let rec go = function
    | [] -> "ext?"
    | f :: rest -> ( match f op with Some s -> s | None -> go rest)
  in
  go !ext_printers

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "str"
  | Tbool -> "bool"
  | Tobj -> "obj"
  | Tarr -> "arr"
  | Tfarr -> "farr"
  | Tunit -> "unit"
  | Tany -> "any"

let op_name = function
  | Konst v -> Format.asprintf "const %a" Vm.Value.pp v
  | Param i -> Printf.sprintf "param %d" i
  | Bparam -> "bparam"
  | Iop op -> Vm.Disasm.iop_name op
  | Ineg -> "ineg"
  | Fop op -> Vm.Disasm.fop_name op
  | Fneg -> "fneg"
  | I2f -> "i2f"
  | F2i -> "f2i"
  | Icmp c -> "icmp." ^ Vm.Disasm.cond_name c
  | Fcmp c -> "fcmp." ^ Vm.Disasm.cond_name c
  | IsNull -> "isnull"
  | ClassId -> "classid"
  | Getfield f -> Printf.sprintf "getfield %s.%s" f.Vm.Types.fowner f.Vm.Types.fname
  | Putfield f -> Printf.sprintf "putfield %s.%s" f.Vm.Types.fowner f.Vm.Types.fname
  | Getglobal i -> Printf.sprintf "getglobal %d" i
  | Putglobal i -> Printf.sprintf "putglobal %d" i
  | NewObj c -> "new " ^ c.Vm.Types.cname
  | Newarr -> "newarr"
  | Newfarr -> "newfarr"
  | Aload -> "aload"
  | Astore -> "astore"
  | Faload -> "faload"
  | Fastore -> "fastore"
  | Alen -> "alen"
  | CallStatic m ->
    Printf.sprintf "call %s.%s" m.Vm.Types.mowner.Vm.Types.cname m.Vm.Types.mname
  | CallVirtual (name, n) -> Printf.sprintf "callvirt %s/%d" name n
  | CallClosure n -> Printf.sprintf "callclosure/%d" n
  | Ext op -> ext_name op

let pp_sym ppf s = Format.fprintf ppf "x%d" s

let pp_args ppf args =
  Array.iter (fun a -> Format.fprintf ppf " %a" pp_sym a) args

let pp_node g ppf s =
  let n = node g s in
  match n.op with
  | Konst v -> Format.fprintf ppf "%a" Vm.Value.pp v
  | _ -> pp_sym ppf s

let pp_target g ppf t =
  Format.fprintf ppf "b%d(" t.tblock;
  Array.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_node g ppf a)
    t.targs;
  Format.fprintf ppf ")"

let pp_term g ppf = function
  | Ret s -> Format.fprintf ppf "ret %a" (pp_node g) s
  | Jump t -> Format.fprintf ppf "jump %a" (pp_target g) t
  | Br (c, t1, t2) ->
    Format.fprintf ppf "br %a ? %a : %a" (pp_node g) c (pp_target g) t1
      (pp_target g) t2
  | Exit se ->
    Format.fprintf ppf "exit[%s:%s]"
      (match se.se_kind with `Interpret -> "interp" | `Recompile -> "recompile")
      se.se_tag
  | Unreachable msg -> Format.fprintf ppf "unreachable (%s)" msg

let pp_block g ppf b =
  Format.fprintf ppf "@[<v2>b%d(%s):" b.bid
    (String.concat ", "
       (List.map (fun (s, ty) -> Printf.sprintf "x%d:%s" s (ty_name ty)) b.params));
  List.iter
    (fun n ->
      Format.fprintf ppf "@,x%d = %s%a%s" n.id (op_name n.op) pp_args n.args
        (if n.eff then " !" else ""))
    (body_in_order b);
  Format.fprintf ppf "@,%a@]" (pp_term g) b.term

let pp_graph ppf g =
  Format.fprintf ppf "@[<v>graph %s/%d (entry b%d):" g.name g.nparams g.entry;
  List.iter (fun b -> Format.fprintf ppf "@,%a" (pp_block g) b) (reachable_blocks g);
  Format.fprintf ppf "@]"

let graph_to_string g = Format.asprintf "%a" pp_graph g

(* Like [pp_block]/[pp_graph] but each node is suffixed with the source line
   its provenance records (printed where it changes), so `lancet ir` shows
   pass-by-pass IR aligned with the program text. *)
let pp_block_src g ppf b =
  let last = ref (-1) in
  Format.fprintf ppf "@[<v2>b%d(%s):" b.bid
    (String.concat ", "
       (List.map (fun (s, ty) -> Printf.sprintf "x%d:%s" s (ty_name ty)) b.params));
  List.iter
    (fun n ->
      let ann =
        match n.prov with
        | Some p when p.pv_line > 0 && p.pv_line <> !last ->
          last := p.pv_line;
          Printf.sprintf "   ; line %d" p.pv_line
        | _ -> ""
      in
      Format.fprintf ppf "@,x%d = %s%a%s%s" n.id (op_name n.op) pp_args n.args
        (if n.eff then " !" else "")
        ann)
    (body_in_order b);
  Format.fprintf ppf "@,%a@]" (pp_term g) b.term

let pp_graph_src ppf g =
  Format.fprintf ppf "@[<v>graph %s/%d (entry b%d):" g.name g.nparams g.entry;
  List.iter
    (fun b -> Format.fprintf ppf "@,%a" (pp_block_src g) b)
    (reachable_blocks g);
  Format.fprintf ppf "@]"

let graph_to_string_src g = Format.asprintf "%a" pp_graph_src g
