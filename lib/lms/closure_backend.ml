(* The execution backend of the JIT: compiles an IR graph to a nest of OCaml
   closures.  Each pure/effectful node becomes one step closure writing a
   dense register slot; each block becomes a step array plus a terminator
   returning the next block index.  Specialization pays off directly: fewer
   residual nodes means fewer closure invocations per iteration. *)

open Ir

exception Compile_unsupported of string

type env = Vm.Types.value array

(* Handlers for residual calls and side exits are injected by the client
   (Lancet wires them to the interpreter / recompilation machinery). *)
type hooks = {
  rt : Vm.Types.runtime;
  call_static : Vm.Types.meth -> Vm.Types.value array -> Vm.Types.value;
  call_virtual : string -> Vm.Types.value array -> Vm.Types.value;
  call_closure : Vm.Types.value -> Vm.Types.value array -> Vm.Types.value;
  on_exit : side_exit -> Vm.Types.value array -> Vm.Types.value;
      (* receives the current values of all syms referenced by the exit's
         frame descriptors, flattened innermost-first, locals then stack *)
}

type ext_compiler =
  hooks -> ext_op -> (env -> Vm.Types.value) array -> (env -> Vm.Types.value) option

let ext_compilers : ext_compiler list ref = ref []

let register_ext f = ext_compilers := f :: !ext_compilers

let compile_ext hooks op getters =
  let rec go = function
    | [] -> raise (Compile_unsupported "unknown extension op")
    | f :: rest -> (
      match f hooks op getters with Some fn -> fn | None -> go rest)
  in
  go !ext_compilers

let default_hooks rt =
  {
    rt;
    call_static = (fun m args -> Vm.Interp.call rt m args);
    call_virtual =
      (fun name args ->
        match args.(0) with
        | Vm.Types.Obj o ->
          Vm.Interp.call rt (Vm.Classfile.resolve_virtual o.Vm.Types.ocls name) args
        | _ -> Vm.Types.vm_error "virtual call %s on non-object" name);
    call_closure = (fun f args -> Vm.Interp.call_closure rt f args);
    on_exit =
      (fun se _ ->
        Vm.Types.vm_error "unhandled side exit %s" se.se_tag);
  }

let count_compiled = ref 0 (* statistics: graphs compiled *)

let compile ?hooks (g : graph) : Vm.Types.value array -> Vm.Types.value =
  let open Vm.Types in
  incr count_compiled;
  let hooks = match hooks with Some h -> h | None -> failwith "hooks required" in
  let rt = hooks.rt in
  let blocks = reachable_blocks g in
  (* slot assignment: 0..nparams-1 are the function arguments *)
  let slots = Hashtbl.create 64 in
  let next_slot = ref g.nparams in
  let slot_of s =
    match Hashtbl.find_opt slots s with
    | Some i -> i
    | None ->
      let i = !next_slot in
      incr next_slot;
      Hashtbl.replace slots s i;
      i
  in
  (* Pre-assign: params of the graph share arg slots *)
  let assign_node n =
    match n.op with
    | Param i -> Hashtbl.replace slots n.id i
    | Konst _ -> () (* materialized inline at use sites *)
    | _ -> ignore (slot_of n.id)
  in
  List.iter
    (fun b ->
      List.iter (fun (s, _) -> ignore (slot_of s)) b.params;
      List.iter assign_node (body_in_order b))
    blocks;
  let getter s : env -> value =
    let n = node g s in
    match n.op with
    | Konst v -> fun _ -> v
    | Param i -> fun r -> r.(i)
    | _ ->
      let i = slot_of s in
      fun r -> r.(i)
  in
  let getters args = Array.map getter args in
  (* Branch-condition fusion: a comparison whose only consumer is its own
     block's Br — and a ClassId feeding such a comparison — is compiled
     into the branch closure itself instead of becoming a step.  This
     avoids the intermediate slot write and the boxing of the bool (and of
     the class id), which matters for devirtualization guards: the guard
     becomes a bare compare-and-branch on top of the unguarded direct
     call.  Restricted to same-block single-use nodes so evaluation order
     of the pure condition only moves within its original block. *)
  let uses = Hashtbl.create 64 in
  let defined_in = Hashtbl.create 64 in
  let add_use s =
    Hashtbl.replace uses s (1 + Option.value ~default:0 (Hashtbl.find_opt uses s))
  in
  let add_target (t : target) = Array.iter add_use t.targs in
  List.iter
    (fun b ->
      List.iter
        (fun n ->
          Hashtbl.replace defined_in n.id b.bid;
          Array.iter add_use n.args)
        (body_in_order b);
      match b.term with
      | Ir.Ret s -> add_use s
      | Jump t -> add_target t
      | Br (c, t1, t2) ->
        add_use c;
        add_target t1;
        add_target t2
      | Exit se ->
        List.iter
          (fun fd ->
            Array.iter add_use fd.fd_locals;
            Array.iter add_use fd.fd_stack)
          se.se_frames
      | Unreachable _ -> ())
    blocks;
  let fused = Hashtbl.create 8 in
  let fused_conds : (int, env -> bool) Hashtbl.t = Hashtbl.create 8 in
  let fusable bid s =
    Hashtbl.find_opt uses s = Some 1 && Hashtbl.find_opt defined_in s = Some bid
  in
  List.iter
    (fun b ->
      match b.term with
      | Br (c, _, _) when fusable b.bid c -> (
        let n = node g c in
        let int_arg s =
          let m = node g s in
          match m.op with
          | ClassId when fusable b.bid s ->
            let a = getter m.args.(0) in
            Hashtbl.replace fused s ();
            fun r ->
              (match a r with
              | Obj o -> o.Vm.Types.ocls.Vm.Types.cid
              | _ -> -1)
          | _ ->
            let gtr = getter s in
            fun r -> Vm.Value.to_int (gtr r)
        in
        match n.op with
        | Icmp cc ->
          let a = int_arg n.args.(0) and b' = int_arg n.args.(1) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid (fun r ->
              Vm.Value.cond_apply cc (a r) (b' r))
        | Fcmp cc ->
          let a = getter n.args.(0) and b' = getter n.args.(1) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid (fun r ->
              Vm.Value.fcond_apply cc
                (Vm.Value.to_float (a r))
                (Vm.Value.to_float (b' r)))
        | IsNull ->
          let a = getter n.args.(0) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid (fun r ->
              match a r with Null -> true | _ -> false)
        | _ -> ())
      | _ -> ())
    blocks;
  (* Irtrace: report branch compares that could not fuse (the condition is
     either consumed more than once or defined in another block), then
     snapshot the post-guard-lowering shape with fused nodes eliminated. *)
  if !Irtrace.on then begin
    List.iter
      (fun b ->
        match b.term with
        | Br (c, _, _) when not (Hashtbl.mem fused c) -> (
          let n = node g c in
          let record (n : Ir.node) why =
            match n.prov with
            | Some p ->
              Irtrace.record_miss
                ~phase:(Phases.name (Phases.Guards "closure"))
                ~mid:p.pv_mid ~pc:p.pv_pc ~line:p.pv_line
                (Irtrace.Guard_fusion_declined { cond = Ir.op_tag n.op; why })
            | None -> ()
          in
          match n.op with
          | Icmp _ | Fcmp _ | IsNull ->
            record n
              (if Hashtbl.find_opt defined_in c <> Some b.bid then "cross-block"
               else "multi-use")
          | _ -> (
            match Snapshot.materialized_cond g b.bid c with
            | Some cmp -> record cmp "materialized-bool"
            | None -> ()))
        | _ -> ())
      blocks;
    Snapshot.take g (Phases.Guards "closure") ~exclude:(Hashtbl.mem fused)
      ~meta:[ ("fused", string_of_int (Hashtbl.length fused)) ]
  end;
  (* one closure per node *)
  let compile_node n : (env -> unit) option =
    if Hashtbl.mem fused n.id then None
    else
    match n.op with
    | Konst _ | Param _ | Bparam -> None
    | Iop op ->
      let a = getter n.args.(0) and b = getter n.args.(1) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            Int (Vm.Value.iop_apply op (Vm.Value.to_int (a r)) (Vm.Value.to_int (b r))))
    | Ineg ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Int (Vm.Value.wrap32 (-Vm.Value.to_int (a r))))
    | Fop op ->
      let a = getter n.args.(0) and b = getter n.args.(1) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            Float
              (Vm.Value.fop_apply op (Vm.Value.to_float (a r))
                 (Vm.Value.to_float (b r))))
    | Fneg ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Float (-.Vm.Value.to_float (a r)))
    | I2f ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Float (float_of_int (Vm.Value.to_int (a r))))
    | F2i ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <- Int (Vm.Value.wrap32 (int_of_float (Vm.Value.to_float (a r)))))
    | Icmp c ->
      let a = getter n.args.(0) and b = getter n.args.(1) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            Vm.Value.of_bool
              (Vm.Value.cond_apply c (Vm.Value.to_int (a r)) (Vm.Value.to_int (b r))))
    | Fcmp c ->
      let a = getter n.args.(0) and b = getter n.args.(1) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            Vm.Value.of_bool
              (Vm.Value.fcond_apply c (Vm.Value.to_float (a r))
                 (Vm.Value.to_float (b r))))
    | IsNull ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <- Vm.Value.of_bool (match a r with Null -> true | _ -> false))
    | ClassId ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            Int (match a r with Obj o -> o.Vm.Types.ocls.Vm.Types.cid | _ -> -1))
    | Getfield f ->
      let a = getter n.args.(0) in
      let d = slot_of n.id and i = f.fidx in
      Some (fun r -> r.(d) <- (Vm.Value.to_obj (a r)).ofields.(i))
    | Putfield f ->
      let a = getter n.args.(0) and v = getter n.args.(1) in
      let i = f.fidx in
      Some (fun r -> (Vm.Value.to_obj (a r)).ofields.(i) <- v r)
    | Getglobal gidx ->
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Vm.Runtime.get_global rt gidx)
    | Putglobal gidx ->
      let v = getter n.args.(0) in
      Some (fun r -> Vm.Runtime.set_global rt gidx (v r))
    | NewObj cls ->
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Obj (Vm.Runtime.alloc rt cls))
    | Newarr ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Arr (Array.make (Vm.Value.to_int (a r)) Null))
    | Newfarr ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- Farr (Array.make (Vm.Value.to_int (a r)) 0.0))
    | Aload ->
      let a = getter n.args.(0) and i = getter n.args.(1) in
      let d = slot_of n.id in
      Some (fun r -> r.(d) <- (Vm.Value.to_arr (a r)).(Vm.Value.to_int (i r)))
    | Astore ->
      let a = getter n.args.(0)
      and i = getter n.args.(1)
      and v = getter n.args.(2) in
      Some (fun r -> (Vm.Value.to_arr (a r)).(Vm.Value.to_int (i r)) <- v r)
    | Faload ->
      let a = getter n.args.(0) and i = getter n.args.(1) in
      let d = slot_of n.id in
      Some
        (fun r -> r.(d) <- Float (Vm.Value.to_farr (a r)).(Vm.Value.to_int (i r)))
    | Fastore ->
      let a = getter n.args.(0)
      and i = getter n.args.(1)
      and v = getter n.args.(2) in
      Some
        (fun r ->
          (Vm.Value.to_farr (a r)).(Vm.Value.to_int (i r)) <-
            Vm.Value.to_float (v r))
    | Alen ->
      let a = getter n.args.(0) in
      let d = slot_of n.id in
      Some
        (fun r ->
          r.(d) <-
            (match a r with
            | Arr x -> Int (Array.length x)
            | Farr x -> Int (Array.length x)
            | _ -> vm_error "alen"))
    | CallStatic m ->
      let gs = getters n.args in
      let d = slot_of n.id in
      let call = hooks.call_static in
      (* fast path: native methods are invoked directly *)
      (match m.mcode with
      | Native (_, fn) ->
        Some (fun r -> r.(d) <- fn rt (Array.map (fun gtr -> gtr r) gs))
      | Bytecode _ ->
        Some (fun r -> r.(d) <- call m (Array.map (fun gtr -> gtr r) gs)))
    | CallVirtual (name, _) ->
      let gs = getters n.args in
      let d = slot_of n.id in
      let call = hooks.call_virtual in
      Some (fun r -> r.(d) <- call name (Array.map (fun gtr -> gtr r) gs))
    | CallClosure _ ->
      let gs = getters n.args in
      let d = slot_of n.id in
      let call = hooks.call_closure in
      Some
        (fun r ->
          let vs = Array.map (fun gtr -> gtr r) gs in
          r.(d) <- call vs.(0) (Array.sub vs 1 (Array.length vs - 1)))
    | Ext op ->
      let gs = getters n.args in
      let d = slot_of n.id in
      let fn = compile_ext hooks op gs in
      Some (fun r -> r.(d) <- fn r)
  in
  (* dense block indices *)
  let bindex = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace bindex b.bid i) blocks;
  let idx_of bid = Hashtbl.find bindex bid in
  let nregs = !next_slot in
  let ret_slot = nregs in
  let compile_jump (t : target) : env -> unit =
    let dsts =
      Array.of_list (List.map (fun (s, _) -> slot_of s) (block g t.tblock).params)
    in
    let srcs = Array.map getter t.targs in
    if Array.length dsts <> Array.length srcs then
      raise
        (Compile_unsupported
           (Printf.sprintf "jump arity mismatch into block %d" t.tblock));
    (* check for overlap requiring a parallel copy *)
    let dst_set = Array.to_list dsts in
    let conflict =
      Array.exists
        (fun s ->
          match (node g s).op with
          | Konst _ -> false
          | _ -> List.mem (slot_of s) dst_set)
        t.targs
    in
    if not conflict then fun r ->
      for i = 0 to Array.length dsts - 1 do
        r.(dsts.(i)) <- srcs.(i) r
      done
    else fun r ->
      let tmp = Array.map (fun s -> s r) srcs in
      for i = 0 to Array.length dsts - 1 do
        r.(dsts.(i)) <- tmp.(i)
      done
  in
  let compile_exit se : env -> value =
    let syms =
      List.concat_map
        (fun fd -> Array.to_list fd.fd_locals @ Array.to_list fd.fd_stack)
        se.se_frames
    in
    let gs = Array.of_list (List.map getter syms) in
    let handler = hooks.on_exit in
    fun r -> handler se (Array.map (fun gtr -> gtr r) gs)
  in
  (* Forward control transfers are threaded: the terminator calls the
     successor block's closure directly instead of bouncing through the
     trampoline loop.  Backward (loop) edges still return an index to the
     trampoline, so recursion depth is bounded by the block count.  [-1]
     means "function done" and unwinds any nested forward calls. *)
  let nblocks = List.length blocks in
  let compiled : (env -> int) array = Array.make nblocks (fun _ -> -1) in
  let compile_term (b : block) (my_idx : int) : env -> int =
    let arm (t : target) : env -> int =
      let cp = compile_jump t in
      let nxt = idx_of t.tblock in
      if nxt > my_idx then fun r ->
        cp r;
        compiled.(nxt) r
      else fun r ->
        cp r;
        nxt
    in
    match b.term with
    | Ir.Ret s ->
      let v = getter s in
      fun r ->
        r.(ret_slot) <- v r;
        -1
    | Jump t -> arm t
    | Br (c, t1, t2) ->
      let cond =
        match Hashtbl.find_opt fused_conds b.bid with
        | Some f -> f
        | None ->
          let cv = getter c in
          fun r -> Vm.Value.truthy (cv r)
      in
      let a1 = arm t1 and a2 = arm t2 in
      fun r -> if cond r then a1 r else a2 r
    | Exit se ->
      let run = compile_exit se in
      fun r ->
        r.(ret_slot) <- run r;
        -1
    | Unreachable msg -> fun _ -> vm_error "reached unreachable block: %s" msg
  in
  List.iteri
    (fun i b ->
      let steps =
        body_in_order b |> List.filter_map compile_node |> Array.of_list
      in
      let term = compile_term b i in
      compiled.(i) <-
        (match Array.length steps with
        | 0 -> term
        | 1 ->
          let s0 = steps.(0) in
          fun r ->
            s0 r;
            term r
        | len ->
          let last = len - 1 in
          fun r ->
            for j = 0 to last do
              steps.(j) r
            done;
            term r))
    blocks;
  if !Irtrace.on then
    Snapshot.take g (Phases.Schedule "closure") ~exclude:(Hashtbl.mem fused)
      ~meta:
        [ ("blocks", string_of_int nblocks); ("regs", string_of_int nregs) ];
  let entry_idx = idx_of g.entry in
  let nparams = g.nparams in
  (* Register arrays are pooled: SSA dominance guarantees every slot read on
     a path was written earlier on the same path, so stale values from a
     previous invocation are never observed.  Reentrant (recursive) calls
     simply allocate a fresh array. *)
  let pool : value array option Atomic.t = Atomic.make None in
  fun args ->
    if Array.length args <> nparams then
      vm_error "compiled %s: expected %d args, got %d" g.name nparams
        (Array.length args);
    let r =
      match Atomic.exchange pool None with
      | Some r -> r
      | None -> Array.make (nregs + 1) Null
    in
    Fun.protect
      ~finally:(fun () -> Atomic.set pool (Some r))
      (fun () ->
        Array.blit args 0 r 0 nparams;
        let bid = ref entry_idx in
        while !bid >= 0 do
          bid := compiled.(!bid) r
        done;
        r.(ret_slot))

(* Span-instrumented entry point: attributes backend compile time in traces
   (a no-op single branch when no observability sink is attached). *)
let compile ?hooks (g : graph) =
  Obs.span ~cat:Phases.cat_jit (Phases.span_backend "closure") (fun () ->
      compile ?hooks g)
