(* A second, type-specialized execution backend: the analogue of Delite's
   kernel code generation.  Symbols whose IR type is int/bool or float live
   in unboxed register lanes (an [int array] / [float array]); only
   genuinely dynamic values are boxed.  For numeric kernels this removes
   per-operation allocation entirely, which is where the paper's generated
   kernels get their edge over library bytecode. *)

open Ir
module CB = Closure_backend

type lane = Lint | Lfloat | Lval

let lane_of_ty = function
  | Tint | Tbool -> Lint
  | Tfloat -> Lfloat
  | Tstr | Tobj | Tarr | Tfarr | Tunit | Tany -> Lval

type regs = {
  ints : int array;
  floats : float array;
  vals : Vm.Types.value array;
}

exception Fallback of string

let count_typed = ref 0
let count_fallback = ref 0
let last_fallback = ref ""
(* raised during compilation when a node cannot be handled; callers fall
   back to the boxed backend *)

let compile ?hooks (g : graph) : Vm.Types.value array -> Vm.Types.value =
  let open Vm.Types in
  let hooks = match hooks with Some h -> h | None -> failwith "hooks required" in
  let rt = hooks.CB.rt in
  let blocks = reachable_blocks g in
  (* slot assignment per lane *)
  let slots : (sym, lane * int) Hashtbl.t = Hashtbl.create 64 in
  let counts = [| 0; 0; 0 |] in
  let lane_idx = function Lint -> 0 | Lfloat -> 1 | Lval -> 2 in
  let assign s lane =
    if not (Hashtbl.mem slots s) then begin
      let i = counts.(lane_idx lane) in
      counts.(lane_idx lane) <- i + 1;
      Hashtbl.replace slots s (lane, i)
    end
  in
  (* graph parameters always come in boxed; give them val slots *)
  List.iter
    (fun b ->
      List.iter (fun (s, ty) -> assign s (lane_of_ty ty)) b.params;
      List.iter
        (fun n ->
          match n.op with
          | Konst _ -> ()
          | Param _ -> assign n.id Lval
          | _ -> assign n.id (lane_of_ty n.ty))
        (body_in_order b))
    blocks;
  let slot_of s =
    (* graph parameters are floating nodes: give them boxed slots on demand *)
    (match (node g s).op with
    | Param _ -> assign s Lval
    | _ -> ());
    match Hashtbl.find_opt slots s with
    | Some x -> x
    | None -> raise (Fallback (Printf.sprintf "unassigned sym %d" s))
  in
  (* typed getters; cross-lane reads coerce through the boxed value *)
  let node_of s = node g s in
  let get_int s : regs -> int =
    let n = node_of s in
    match n.op with
    | Konst (Int i) -> fun _ -> i
    | Konst v -> fun _ -> Vm.Value.to_int v
    | _ -> (
      match slot_of s with
      | Lint, i -> fun r -> r.ints.(i)
      | Lval, i -> fun r -> Vm.Value.to_int r.vals.(i)
      | Lfloat, _ -> raise (Fallback "float used as int"))
  in
  let get_float s : regs -> float =
    let n = node_of s in
    match n.op with
    | Konst (Float f) -> fun _ -> f
    | Konst (Int i) -> fun _ -> float_of_int i
    | Konst v -> fun _ -> Vm.Value.to_float v
    | _ -> (
      match slot_of s with
      | Lfloat, i -> fun r -> r.floats.(i)
      | Lval, i -> fun r -> Vm.Value.to_float r.vals.(i)
      | Lint, i -> fun r -> float_of_int r.ints.(i))
  in
  let get_val s : regs -> value =
    let n = node_of s in
    match n.op with
    | Konst v -> fun _ -> v
    | _ -> (
      match slot_of s with
      | Lval, i -> fun r -> r.vals.(i)
      | Lint, i -> fun r -> Int r.ints.(i)
      | Lfloat, i -> fun r -> Float r.floats.(i))
  in
  let get_farr s : regs -> float array =
    let gv = get_val s in
    fun r -> Vm.Value.to_farr (gv r)
  in
  (* store the result of node [s] *)
  let set_int s =
    match slot_of s with
    | Lint, i -> fun (r : regs) (v : int) -> r.ints.(i) <- v
    | Lval, i -> fun r v -> r.vals.(i) <- Int v
    | Lfloat, _ -> raise (Fallback "int result in float slot")
  in
  let set_float s =
    match slot_of s with
    | Lfloat, i -> fun (r : regs) (v : float) -> r.floats.(i) <- v
    | Lval, i -> fun r v -> r.vals.(i) <- Float v
    | Lint, _ -> raise (Fallback "float result in int slot")
  in
  let set_val s =
    match slot_of s with
    | Lval, i -> fun (r : regs) (v : value) -> r.vals.(i) <- v
    | Lint, i -> fun r v -> r.ints.(i) <- Vm.Value.to_int v
    | Lfloat, i -> fun r v -> r.floats.(i) <- Vm.Value.to_float v
  in
  (* float fast paths for pure math natives *)
  let math_fast (m : Vm.Types.meth) : (float -> float) option =
    match m.mcode with
    | Native (name, _) -> (
      match name with
      | "Math.sqrt" -> Some sqrt
      | "Math.exp" -> Some exp
      | "Math.log" -> Some log
      | "Math.fabs" -> Some abs_float
      | _ -> None)
    | Bytecode _ -> None
  in
  let compile_node n : (regs -> unit) option =
    match n.op with
    | Konst _ | Param _ | Bparam -> None
    | Iop op ->
      let a = get_int n.args.(0) and b = get_int n.args.(1) in
      let st = set_int n.id in
      Some
        (match op with
        | Vm.Types.Add -> fun r -> st r (Vm.Value.wrap32 (a r + b r))
        | Vm.Types.Sub -> fun r -> st r (Vm.Value.wrap32 (a r - b r))
        | Vm.Types.Mul -> fun r -> st r (Vm.Value.wrap32 (a r * b r))
        | _ -> fun r -> st r (Vm.Value.iop_apply op (a r) (b r)))
    | Ineg ->
      let a = get_int n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (Vm.Value.wrap32 (-a r)))
    | Fop op ->
      let a = get_float n.args.(0) and b = get_float n.args.(1) in
      let st = set_float n.id in
      Some
        (match op with
        | Vm.Types.FAdd -> fun r -> st r (a r +. b r)
        | Vm.Types.FSub -> fun r -> st r (a r -. b r)
        | Vm.Types.FMul -> fun r -> st r (a r *. b r)
        | Vm.Types.FDiv -> fun r -> st r (a r /. b r))
    | Fneg ->
      let a = get_float n.args.(0) in
      let st = set_float n.id in
      Some (fun r -> st r (-.a r))
    | I2f ->
      let a = get_int n.args.(0) in
      let st = set_float n.id in
      Some (fun r -> st r (float_of_int (a r)))
    | F2i ->
      let a = get_float n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (Vm.Value.wrap32 (int_of_float (a r))))
    | Icmp c ->
      let a = get_int n.args.(0) and b = get_int n.args.(1) in
      let st = set_int n.id in
      Some (fun r -> st r (if Vm.Value.cond_apply c (a r) (b r) then 1 else 0))
    | Fcmp c ->
      let a = get_float n.args.(0) and b = get_float n.args.(1) in
      let st = set_int n.id in
      Some (fun r -> st r (if Vm.Value.fcond_apply c (a r) (b r) then 1 else 0))
    | IsNull ->
      let a = get_val n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (match a r with Null -> 1 | _ -> 0))
    | Getfield f ->
      let a = get_val n.args.(0) in
      let st = set_val n.id in
      let i = f.fidx in
      Some (fun r -> st r (Vm.Value.to_obj (a r)).ofields.(i))
    | Putfield f ->
      let a = get_val n.args.(0) and v = get_val n.args.(1) in
      let i = f.fidx in
      Some (fun r -> (Vm.Value.to_obj (a r)).ofields.(i) <- v r)
    | Getglobal gi ->
      let st = set_val n.id in
      Some (fun r -> st r (Vm.Runtime.get_global rt gi))
    | Putglobal gi ->
      let v = get_val n.args.(0) in
      Some (fun r -> Vm.Runtime.set_global rt gi (v r))
    | NewObj cls ->
      let st = set_val n.id in
      Some (fun r -> st r (Obj (Vm.Runtime.alloc rt cls)))
    | Newarr ->
      let a = get_int n.args.(0) in
      let st = set_val n.id in
      Some (fun r -> st r (Arr (Array.make (a r) Null)))
    | Newfarr ->
      let a = get_int n.args.(0) in
      let st = set_val n.id in
      Some (fun r -> st r (Farr (Array.make (a r) 0.0)))
    | Aload ->
      let a = get_val n.args.(0) and i = get_int n.args.(1) in
      let st = set_val n.id in
      Some (fun r -> st r (Vm.Value.to_arr (a r)).(i r))
    | Astore ->
      let a = get_val n.args.(0)
      and i = get_int n.args.(1)
      and v = get_val n.args.(2) in
      Some (fun r -> (Vm.Value.to_arr (a r)).(i r) <- v r)
    | Faload ->
      let a = get_farr n.args.(0) and i = get_int n.args.(1) in
      let st = set_float n.id in
      Some (fun r -> st r (a r).(i r))
    | Fastore ->
      let a = get_farr n.args.(0)
      and i = get_int n.args.(1)
      and v = get_float n.args.(2) in
      Some (fun r -> (a r).(i r) <- v r)
    | Alen ->
      let a = get_val n.args.(0) in
      let st = set_int n.id in
      Some
        (fun r ->
          st r
            (match a r with
            | Arr x -> Array.length x
            | Farr x -> Array.length x
            | _ -> vm_error "alen"))
    | CallStatic m -> (
      match math_fast m, n.args with
      | Some f, [| x |] ->
        let a = get_float x in
        let st = set_float n.id in
        Some (fun r -> st r (f (a r)))
      | _ ->
        let gs = Array.map get_val n.args in
        let st = set_val n.id in
        (match m.mcode with
        | Native (_, fn) ->
          Some (fun r -> st r (fn rt (Array.map (fun gv -> gv r) gs)))
        | Bytecode _ ->
          let call = hooks.CB.call_static in
          Some (fun r -> st r (call m (Array.map (fun gv -> gv r) gs)))))
    | CallVirtual (name, _) ->
      let gs = Array.map get_val n.args in
      let st = set_val n.id in
      let call = hooks.CB.call_virtual in
      Some (fun r -> st r (call name (Array.map (fun gv -> gv r) gs)))
    | CallClosure _ ->
      let gs = Array.map get_val n.args in
      let st = set_val n.id in
      let call = hooks.CB.call_closure in
      Some
        (fun r ->
          let vs = Array.map (fun gv -> gv r) gs in
          st r (call vs.(0) (Array.sub vs 1 (Array.length vs - 1))))
    | Ext _ -> raise (Fallback "extension op in typed kernel")
  in
  (* jumps: copy args into param slots with lane coercion *)
  let bindex = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace bindex b.bid i) blocks;
  let idx_of bid = Hashtbl.find bindex bid in
  let compile_jump (t : target) : regs -> unit =
    let dsts = (block g t.tblock).params in
    let dst_slots = List.map (fun (ps, _) -> slot_of ps) dsts in
    let src_slot i =
      let src = t.targs.(i) in
      match (node g src).op with
      | Konst _ -> None
      | _ -> Some (slot_of src)
    in
    let conflict =
      List.exists
        (fun i ->
          match src_slot i with
          | Some sl -> List.mem sl dst_slots
          | None -> false)
        (List.init (Array.length t.targs) Fun.id)
    in
    let copies =
      List.mapi
        (fun i (ps, _) ->
          let src = t.targs.(i) in
          match slot_of ps with
          | Lint, d ->
            let gi = get_int src in
            fun (r : regs) -> r.ints.(d) <- gi r
          | Lfloat, d ->
            let gf = get_float src in
            fun r -> r.floats.(d) <- gf r
          | Lval, d ->
            let gv = get_val src in
            fun r -> r.vals.(d) <- gv r)
        dsts
    in
    if not conflict then fun r -> List.iter (fun cp -> cp r) copies
    else begin
      (* parallel copy: gather into per-call temporaries, then write *)
      let gathers =
        List.mapi
          (fun i (ps, _) ->
            let src = t.targs.(i) in
            match slot_of ps with
            | Lint, d ->
              let gi = get_int src in
              fun r -> `I (d, gi r)
            | Lfloat, d ->
              let gf = get_float src in
              fun r -> `F (d, gf r)
            | Lval, d ->
              let gv = get_val src in
              fun r -> `V (d, gv r))
          dsts
      in
      fun r ->
        let tmp = List.map (fun gth -> gth r) gathers in
        List.iter
          (function
            | `I (d, v) -> r.ints.(d) <- v
            | `F (d, v) -> r.floats.(d) <- v
            | `V (d, v) -> r.vals.(d) <- v)
          tmp
    end
  in
  let ret_val = ref Null in
  let compile_exit se : regs -> value =
    let syms =
      List.concat_map
        (fun fd -> Array.to_list fd.fd_locals @ Array.to_list fd.fd_stack)
        se.se_frames
    in
    let gs = Array.of_list (List.map get_val syms) in
    let handler = hooks.CB.on_exit in
    fun r -> handler se (Array.map (fun gv -> gv r) gs)
  in
  let compile_term term : regs -> int =
    match term with
    | Ir.Ret s ->
      let v = get_val s in
      fun r ->
        ret_val := v r;
        -1
    | Jump t ->
      let cp = compile_jump t in
      let nxt = idx_of t.tblock in
      fun r ->
        cp r;
        nxt
    | Br (c, t1, t2) ->
      let cv = get_int c in
      let cp1 = compile_jump t1 and cp2 = compile_jump t2 in
      let n1 = idx_of t1.tblock and n2 = idx_of t2.tblock in
      fun r ->
        if cv r <> 0 then begin
          cp1 r;
          n1
        end
        else begin
          cp2 r;
          n2
        end
    | Exit se ->
      let run = compile_exit se in
      fun r ->
        ret_val := run r;
        -1
    | Unreachable msg -> fun _ -> vm_error "reached unreachable block: %s" msg
  in
  let compiled_blocks =
    Array.of_list
      (List.map
         (fun b ->
           let steps =
             body_in_order b |> List.filter_map compile_node |> Array.of_list
           in
           (steps, compile_term b.term))
         blocks)
  in
  let entry_idx = idx_of g.entry in
  let nparams = g.nparams in
  (* param symbols get val slots; find them to seed from arguments *)
  let param_slots = Array.make nparams (-1) in
  Hashtbl.iter
    (fun s (lane, i) ->
      match (node g s).op with
      | Param k when lane = Lval -> param_slots.(k) <- i
      | _ -> ())
    slots;
  let ni = counts.(0) and nf = counts.(1) and nv = counts.(2) in
  (* pooled registers, as in the boxed backend (SSA: no stale reads) *)
  let pool : regs option Atomic.t = Atomic.make None in
  fun args ->
    if Array.length args <> nparams then
      vm_error "typed kernel %s: expected %d args, got %d" g.name nparams
        (Array.length args);
    let r =
      match Atomic.exchange pool None with
      | Some r -> r
      | None ->
        {
          ints = Array.make (max ni 1) 0;
          floats = Array.make (max nf 1) 0.0;
          vals = Array.make (max nv 1) Null;
        }
    in
    Fun.protect
      ~finally:(fun () -> Atomic.set pool (Some r))
      (fun () ->
        Array.iteri
          (fun k slot -> if slot >= 0 then r.vals.(slot) <- args.(k))
          param_slots;
        let bid = ref entry_idx in
        while !bid >= 0 do
          let steps, term = compiled_blocks.(!bid) in
          for i = 0 to Array.length steps - 1 do
            steps.(i) r
          done;
          bid := term r
        done;
        !ret_val)

(* Span-instrumented entry point: attributes backend compile time in traces
   (a no-op single branch when no observability sink is attached). *)
let compile ?hooks (g : graph) =
  Obs.span ~cat:"jit" "backend:typed" (fun () -> compile ?hooks g)

(* Compile with typed lanes; transparently fall back to the boxed backend if
   the graph uses features the typed backend does not support. *)
let compile_or_fallback ?hooks (g : graph) =
  match compile ?hooks g with
  | fn -> fn
  | exception Fallback _ -> Closure_backend.compile ?hooks g
