(* A second, type-specialized execution backend: the analogue of Delite's
   kernel code generation.  Symbols whose IR type is int/bool or float live
   in unboxed register lanes (an [int array] / [float array]); only
   genuinely dynamic values are boxed.  For numeric kernels this removes
   per-operation allocation entirely, which is where the paper's generated
   kernels get their edge over library bytecode. *)

open Ir
module CB = Closure_backend

type lane = Lint | Lfloat | Lval

let lane_of_ty = function
  | Tint | Tbool -> Lint
  | Tfloat -> Lfloat
  | Tstr | Tobj | Tarr | Tfarr | Tunit | Tany -> Lval

type regs = {
  ints : int array;
  floats : float array;
  vals : Vm.Types.value array;
}

exception Fallback of string

(* raised by a spliced guard step on the miss path, after running the side
   exit and storing its result; the kernel entry catches it *)
exception Guard_miss

let count_typed = ref 0
let count_fallback = ref 0
let last_fallback = ref ""
(* raised during compilation when a node cannot be handled; callers fall
   back to the boxed backend *)

let compile ?hooks (g : graph) : Vm.Types.value array -> Vm.Types.value =
  let open Vm.Types in
  let hooks = match hooks with Some h -> h | None -> failwith "hooks required" in
  let rt = hooks.CB.rt in
  let blocks = reachable_blocks g in
  (* slot assignment per lane *)
  let slots : (sym, lane * int) Hashtbl.t = Hashtbl.create 64 in
  let counts = [| 0; 0; 0 |] in
  let lane_idx = function Lint -> 0 | Lfloat -> 1 | Lval -> 2 in
  let assign s lane =
    if not (Hashtbl.mem slots s) then begin
      let i = counts.(lane_idx lane) in
      counts.(lane_idx lane) <- i + 1;
      Hashtbl.replace slots s (lane, i)
    end
  in
  (* graph parameters always come in boxed; give them val slots *)
  List.iter
    (fun b ->
      List.iter (fun (s, ty) -> assign s (lane_of_ty ty)) b.params;
      List.iter
        (fun n ->
          match n.op with
          | Konst _ -> ()
          | Param _ -> assign n.id Lval
          | _ -> assign n.id (lane_of_ty n.ty))
        (body_in_order b))
    blocks;
  let slot_of s =
    (* graph parameters are floating nodes: give them boxed slots on demand *)
    (match (node g s).op with
    | Param _ -> assign s Lval
    | _ -> ());
    match Hashtbl.find_opt slots s with
    | Some x -> x
    | None -> raise (Fallback (Printf.sprintf "unassigned sym %d" s))
  in
  (* typed getters; cross-lane reads coerce through the boxed value *)
  let node_of s = node g s in
  let get_int s : regs -> int =
    let n = node_of s in
    match n.op with
    | Konst (Int i) -> fun _ -> i
    | Konst v -> fun _ -> Vm.Value.to_int v
    | _ -> (
      match slot_of s with
      | Lint, i -> fun r -> r.ints.(i)
      | Lval, i -> fun r -> Vm.Value.to_int r.vals.(i)
      | Lfloat, _ -> raise (Fallback "float used as int"))
  in
  let get_float s : regs -> float =
    let n = node_of s in
    match n.op with
    | Konst (Float f) -> fun _ -> f
    | Konst (Int i) -> fun _ -> float_of_int i
    | Konst v -> fun _ -> Vm.Value.to_float v
    | _ -> (
      match slot_of s with
      | Lfloat, i -> fun r -> r.floats.(i)
      | Lval, i -> fun r -> Vm.Value.to_float r.vals.(i)
      | Lint, i -> fun r -> float_of_int r.ints.(i))
  in
  let get_val s : regs -> value =
    let n = node_of s in
    match n.op with
    | Konst v -> fun _ -> v
    | _ -> (
      match slot_of s with
      | Lval, i -> fun r -> r.vals.(i)
      | Lint, i -> fun r -> Int r.ints.(i)
      | Lfloat, i -> fun r -> Float r.floats.(i))
  in
  let get_farr s : regs -> float array =
    let gv = get_val s in
    fun r -> Vm.Value.to_farr (gv r)
  in
  (* store the result of node [s] *)
  let set_int s =
    match slot_of s with
    | Lint, i -> fun (r : regs) (v : int) -> r.ints.(i) <- v
    | Lval, i -> fun r v -> r.vals.(i) <- Int v
    | Lfloat, _ -> raise (Fallback "int result in float slot")
  in
  let set_float s =
    match slot_of s with
    | Lfloat, i -> fun (r : regs) (v : float) -> r.floats.(i) <- v
    | Lval, i -> fun r v -> r.vals.(i) <- Float v
    | Lint, _ -> raise (Fallback "float result in int slot")
  in
  let set_val s =
    match slot_of s with
    | Lval, i -> fun (r : regs) (v : value) -> r.vals.(i) <- v
    | Lint, i -> fun r v -> r.ints.(i) <- Vm.Value.to_int v
    | Lfloat, i -> fun r v -> r.floats.(i) <- Vm.Value.to_float v
  in
  (* float fast paths for pure math natives *)
  let math_fast (m : Vm.Types.meth) : (float -> float) option =
    match m.mcode with
    | Native (name, _) -> (
      match name with
      | "Math.sqrt" -> Some sqrt
      | "Math.exp" -> Some exp
      | "Math.log" -> Some log
      | "Math.fabs" -> Some abs_float
      | _ -> None)
    | Bytecode _ -> None
  in
  (* Branch-condition fusion, as in the boxed backend: a comparison whose
     only consumer is its own block's Br — and a ClassId feeding such a
     comparison — compiles into the branch closure instead of becoming a
     step, so a devirtualization guard is a bare compare-and-branch.
     Same-block single-use only, which keeps the pure condition's
     evaluation inside its original block. *)
  let uses = Hashtbl.create 64 in
  let defined_in = Hashtbl.create 64 in
  let add_use s =
    Hashtbl.replace uses s (1 + Option.value ~default:0 (Hashtbl.find_opt uses s))
  in
  let add_target (t : target) = Array.iter add_use t.targs in
  List.iter
    (fun b ->
      List.iter
        (fun n ->
          Hashtbl.replace defined_in n.id b.bid;
          Array.iter add_use n.args)
        (body_in_order b);
      match b.term with
      | Ir.Ret s -> add_use s
      | Jump t -> add_target t
      | Br (c, t1, t2) ->
        add_use c;
        add_target t1;
        add_target t2
      | Exit se ->
        List.iter
          (fun fd ->
            Array.iter add_use fd.fd_locals;
            Array.iter add_use fd.fd_stack)
          se.se_frames
      | Unreachable _ -> ())
    blocks;
  let fused = Hashtbl.create 8 in
  (* a fused condition keeps its shape so the guard-splicing pass below can
     build a single-closure guard for the devirtualization pattern *)
  let fused_conds
      : (int, [ `Gen of regs -> bool | `Cid_eq of (regs -> value) * int ])
        Hashtbl.t =
    Hashtbl.create 8
  in
  let fusable bid s =
    Hashtbl.find_opt uses s = Some 1 && Hashtbl.find_opt defined_in s = Some bid
  in
  List.iter
    (fun b ->
      match b.term with
      | Br (c, _, _) when fusable b.bid c -> (
        let n = node g c in
        let int_arg s =
          let m = node g s in
          match m.op with
          | ClassId when fusable b.bid s ->
            let a = get_val m.args.(0) in
            Hashtbl.replace fused s ();
            fun r ->
              (match a r with
              | Obj o -> o.Vm.Types.ocls.Vm.Types.cid
              | _ -> -1)
          | _ -> get_int s
        in
        match n.op with
        | Icmp Vm.Types.Eq
          when (match (node g n.args.(0)).op with
               | ClassId -> fusable b.bid n.args.(0)
               | _ -> false)
               && (match (node g n.args.(1)).op with
                  | Konst (Int _) -> true
                  | _ -> false) ->
          (* the devirtualization guard shape, classid(x) == const: one
             closure, no nested calls *)
          let m = node g n.args.(0) in
          let a = get_val m.args.(0) in
          let k =
            match (node g n.args.(1)).op with
            | Konst (Int k) -> k
            | _ -> assert false
          in
          Hashtbl.replace fused m.id ();
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid (`Cid_eq (a, k))
        | Icmp cc ->
          let a = int_arg n.args.(0) and b' = int_arg n.args.(1) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid
            (`Gen (fun r -> Vm.Value.cond_apply cc (a r) (b' r)))
        | Fcmp cc ->
          let a = get_float n.args.(0) and b' = get_float n.args.(1) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid
            (`Gen (fun r -> Vm.Value.fcond_apply cc (a r) (b' r)))
        | IsNull ->
          let a = get_val n.args.(0) in
          Hashtbl.replace fused c ();
          Hashtbl.replace fused_conds b.bid
            (`Gen (fun r -> match a r with Null -> true | _ -> false))
        | _ -> ())
      | _ -> ())
    blocks;
  (* Irtrace: report branch compares that could not fuse, and snapshot the
     post-guard-lowering shape with fused nodes eliminated. *)
  if !Irtrace.on then begin
    List.iter
      (fun b ->
        match b.term with
        | Br (c, _, _) when not (Hashtbl.mem fused c) -> (
          let n = node g c in
          let record (n : Ir.node) why =
            match n.prov with
            | Some p ->
              Irtrace.record_miss ~phase:(Phases.name (Phases.Guards "typed"))
                ~mid:p.pv_mid ~pc:p.pv_pc ~line:p.pv_line
                (Irtrace.Guard_fusion_declined { cond = Ir.op_tag n.op; why })
            | None -> ()
          in
          match n.op with
          | Icmp _ | Fcmp _ | IsNull ->
            record n
              (if Hashtbl.find_opt defined_in c <> Some b.bid then "cross-block"
               else "multi-use")
          | _ -> (
            match Snapshot.materialized_cond g b.bid c with
            | Some cmp -> record cmp "materialized-bool"
            | None -> ()))
        | _ -> ())
      blocks;
    Snapshot.take g (Phases.Guards "typed") ~exclude:(Hashtbl.mem fused)
      ~meta:[ ("fused", string_of_int (Hashtbl.length fused)) ]
  end;
  let compile_node n : (regs -> unit) option =
    if Hashtbl.mem fused n.id then None
    else
    match n.op with
    | Konst _ | Param _ | Bparam -> None
    | Iop op ->
      let a = get_int n.args.(0) and b = get_int n.args.(1) in
      let st = set_int n.id in
      Some
        (match op with
        | Vm.Types.Add -> fun r -> st r (Vm.Value.wrap32 (a r + b r))
        | Vm.Types.Sub -> fun r -> st r (Vm.Value.wrap32 (a r - b r))
        | Vm.Types.Mul -> fun r -> st r (Vm.Value.wrap32 (a r * b r))
        | _ -> fun r -> st r (Vm.Value.iop_apply op (a r) (b r)))
    | Ineg ->
      let a = get_int n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (Vm.Value.wrap32 (-a r)))
    | Fop op ->
      let a = get_float n.args.(0) and b = get_float n.args.(1) in
      let st = set_float n.id in
      Some
        (match op with
        | Vm.Types.FAdd -> fun r -> st r (a r +. b r)
        | Vm.Types.FSub -> fun r -> st r (a r -. b r)
        | Vm.Types.FMul -> fun r -> st r (a r *. b r)
        | Vm.Types.FDiv -> fun r -> st r (a r /. b r))
    | Fneg ->
      let a = get_float n.args.(0) in
      let st = set_float n.id in
      Some (fun r -> st r (-.a r))
    | I2f ->
      let a = get_int n.args.(0) in
      let st = set_float n.id in
      Some (fun r -> st r (float_of_int (a r)))
    | F2i ->
      let a = get_float n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (Vm.Value.wrap32 (int_of_float (a r))))
    | Icmp c ->
      let a = get_int n.args.(0) and b = get_int n.args.(1) in
      let st = set_int n.id in
      Some (fun r -> st r (if Vm.Value.cond_apply c (a r) (b r) then 1 else 0))
    | Fcmp c ->
      let a = get_float n.args.(0) and b = get_float n.args.(1) in
      let st = set_int n.id in
      Some (fun r -> st r (if Vm.Value.fcond_apply c (a r) (b r) then 1 else 0))
    | IsNull ->
      let a = get_val n.args.(0) in
      let st = set_int n.id in
      Some (fun r -> st r (match a r with Null -> 1 | _ -> 0))
    | ClassId ->
      let a = get_val n.args.(0) in
      let st = set_int n.id in
      Some
        (fun r ->
          st r (match a r with Obj o -> o.Vm.Types.ocls.Vm.Types.cid | _ -> -1))
    | Getfield f ->
      let a = get_val n.args.(0) in
      let st = set_val n.id in
      let i = f.fidx in
      Some (fun r -> st r (Vm.Value.to_obj (a r)).ofields.(i))
    | Putfield f ->
      let a = get_val n.args.(0) and v = get_val n.args.(1) in
      let i = f.fidx in
      Some (fun r -> (Vm.Value.to_obj (a r)).ofields.(i) <- v r)
    | Getglobal gi ->
      let st = set_val n.id in
      Some (fun r -> st r (Vm.Runtime.get_global rt gi))
    | Putglobal gi ->
      let v = get_val n.args.(0) in
      Some (fun r -> Vm.Runtime.set_global rt gi (v r))
    | NewObj cls ->
      let st = set_val n.id in
      Some (fun r -> st r (Obj (Vm.Runtime.alloc rt cls)))
    | Newarr ->
      let a = get_int n.args.(0) in
      let st = set_val n.id in
      Some (fun r -> st r (Arr (Array.make (a r) Null)))
    | Newfarr ->
      let a = get_int n.args.(0) in
      let st = set_val n.id in
      Some (fun r -> st r (Farr (Array.make (a r) 0.0)))
    | Aload ->
      let a = get_val n.args.(0) and i = get_int n.args.(1) in
      let st = set_val n.id in
      Some (fun r -> st r (Vm.Value.to_arr (a r)).(i r))
    | Astore ->
      let a = get_val n.args.(0)
      and i = get_int n.args.(1)
      and v = get_val n.args.(2) in
      Some (fun r -> (Vm.Value.to_arr (a r)).(i r) <- v r)
    | Faload ->
      let a = get_farr n.args.(0) and i = get_int n.args.(1) in
      let st = set_float n.id in
      Some (fun r -> st r (a r).(i r))
    | Fastore ->
      let a = get_farr n.args.(0)
      and i = get_int n.args.(1)
      and v = get_float n.args.(2) in
      Some (fun r -> (a r).(i r) <- v r)
    | Alen ->
      let a = get_val n.args.(0) in
      let st = set_int n.id in
      Some
        (fun r ->
          st r
            (match a r with
            | Arr x -> Array.length x
            | Farr x -> Array.length x
            | _ -> vm_error "alen"))
    | CallStatic m -> (
      match math_fast m, n.args with
      | Some f, [| x |] ->
        let a = get_float x in
        let st = set_float n.id in
        Some (fun r -> st r (f (a r)))
      | _ ->
        let gs = Array.map get_val n.args in
        let st = set_val n.id in
        (match m.mcode with
        | Native (_, fn) ->
          Some (fun r -> st r (fn rt (Array.map (fun gv -> gv r) gs)))
        | Bytecode _ ->
          let call = hooks.CB.call_static in
          Some (fun r -> st r (call m (Array.map (fun gv -> gv r) gs)))))
    | CallVirtual (name, _) ->
      let gs = Array.map get_val n.args in
      let st = set_val n.id in
      let call = hooks.CB.call_virtual in
      Some (fun r -> st r (call name (Array.map (fun gv -> gv r) gs)))
    | CallClosure _ ->
      let gs = Array.map get_val n.args in
      let st = set_val n.id in
      let call = hooks.CB.call_closure in
      Some
        (fun r ->
          let vs = Array.map (fun gv -> gv r) gs in
          st r (call vs.(0) (Array.sub vs 1 (Array.length vs - 1))))
    | Ext _ -> raise (Fallback "extension op in typed kernel")
  in
  (* jumps: copy args into param slots with lane coercion *)
  let bindex = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace bindex b.bid i) blocks;
  let idx_of bid = Hashtbl.find bindex bid in
  let compile_jump (t : target) : regs -> unit =
    let dsts = (block g t.tblock).params in
    let dst_slots = List.map (fun (ps, _) -> slot_of ps) dsts in
    let src_slot i =
      let src = t.targs.(i) in
      match (node g src).op with
      | Konst _ -> None
      | _ -> Some (slot_of src)
    in
    let conflict =
      List.exists
        (fun i ->
          match src_slot i with
          | Some sl -> List.mem sl dst_slots
          | None -> false)
        (List.init (Array.length t.targs) Fun.id)
    in
    let copies =
      List.mapi
        (fun i (ps, _) ->
          let src = t.targs.(i) in
          match slot_of ps with
          | Lint, d ->
            let gi = get_int src in
            fun (r : regs) -> r.ints.(d) <- gi r
          | Lfloat, d ->
            let gf = get_float src in
            fun r -> r.floats.(d) <- gf r
          | Lval, d ->
            let gv = get_val src in
            fun r -> r.vals.(d) <- gv r)
        dsts
    in
    if not conflict then fun r -> List.iter (fun cp -> cp r) copies
    else begin
      (* parallel copy: gather into per-call temporaries, then write *)
      let gathers =
        List.mapi
          (fun i (ps, _) ->
            let src = t.targs.(i) in
            match slot_of ps with
            | Lint, d ->
              let gi = get_int src in
              fun r -> `I (d, gi r)
            | Lfloat, d ->
              let gf = get_float src in
              fun r -> `F (d, gf r)
            | Lval, d ->
              let gv = get_val src in
              fun r -> `V (d, gv r))
          dsts
      in
      fun r ->
        let tmp = List.map (fun gth -> gth r) gathers in
        List.iter
          (function
            | `I (d, v) -> r.ints.(d) <- v
            | `F (d, v) -> r.floats.(d) <- v
            | `V (d, v) -> r.vals.(d) <- v)
          tmp
    end
  in
  let ret_val = ref Null in
  let compile_exit se : regs -> value =
    let syms =
      List.concat_map
        (fun fd -> Array.to_list fd.fd_locals @ Array.to_list fd.fd_stack)
        se.se_frames
    in
    let gs = Array.of_list (List.map get_val syms) in
    let handler = hooks.CB.on_exit in
    fun r -> handler se (Array.map (fun gv -> gv r) gs)
  in
  (* Control-flow lowering, three layers:
     - superblock splicing: an unconditional jump to a forward block with a
       single predecessor concatenates the successor's steps in place, and
       a Br whose cold arm is a bare side-exit block becomes an in-line
       guard step (the miss path runs the exit and raises [Guard_miss]) —
       so a devirtualization guard costs exactly one compare step on the
       hot path, with no extra block boundary;
     - threading: remaining forward transfers call the successor's closure
       directly (recursion bounded by the block count);
     - trampoline: backward (loop) edges return the target index.
     [-1] means "function done" and unwinds nested forward calls. *)
  let nblocks = List.length blocks in
  let barr = Array.of_list blocks in
  let compiled : (regs -> int) array = Array.make nblocks (fun _ -> -1) in
  let npreds = Array.make nblocks 0 in
  List.iter
    (fun b ->
      let tgt (t : target) =
        let i = idx_of t.tblock in
        npreds.(i) <- npreds.(i) + 1
      in
      match b.term with
      | Jump t -> tgt t
      | Br (_, t1, t2) ->
        tgt t1;
        tgt t2
      | Ir.Ret _ | Exit _ | Unreachable _ -> ())
    blocks;
  (* a block that is only ever entered from [my_idx]'s terminator, forward:
     safe to splice into the predecessor *)
  let spliceable my_idx (t : target) =
    let i = idx_of t.tblock in
    i > my_idx && npreds.(i) = 1
  in
  let exit_only (t : target) : side_exit option =
    let tb = block g t.tblock in
    match tb.term with
    | Exit se when body_in_order tb = [] -> Some se
    | _ -> None
  in
  let branch_cond (b : block) c : regs -> bool =
    match Hashtbl.find_opt fused_conds b.bid with
    | Some (`Gen f) -> f
    | Some (`Cid_eq (a, k)) ->
      fun r ->
        (match a r with Obj o -> o.Vm.Types.ocls.Vm.Types.cid | _ -> -1) = k
    | None ->
      let cv = get_int c in
      fun r -> cv r <> 0
  in
  let rec parts i : (regs -> unit) list * (regs -> int) =
    let b = barr.(i) in
    let steps = body_in_order b |> List.filter_map compile_node in
    match b.term with
    | Jump t when spliceable i t ->
      let tsteps, tterm = parts (idx_of t.tblock) in
      let pre =
        if Array.length t.targs = 0 then tsteps else compile_jump t :: tsteps
      in
      (steps @ pre, tterm)
    | Br (c, t1, t2)
      when spliceable i t1 && exit_only t2 <> None ->
      let cp2 = compile_jump t2 in
      let exit_run = compile_exit (Option.get (exit_only t2)) in
      let miss r =
        cp2 r;
        ret_val := exit_run r;
        raise Guard_miss
      in
      (* the devirtualization shape gets a single-closure guard: receiver
         slot -> class-id compare, no nested calls on the hit path *)
      let guard =
        match (Hashtbl.find_opt fused_conds b.bid, Array.length t1.targs) with
        | Some (`Cid_eq (a, k)), 0 ->
          fun r ->
            (match a r with
            | Obj o when o.Vm.Types.ocls.Vm.Types.cid = k -> ()
            | _ -> miss r)
        | _, 0 ->
          let cond = branch_cond b c in
          fun r -> if cond r then () else miss r
        | _, _ ->
          let cond = branch_cond b c in
          let cp1 = compile_jump t1 in
          fun r -> if cond r then cp1 r else miss r
      in
      let tsteps, tterm = parts (idx_of t1.tblock) in
      (steps @ (guard :: tsteps), tterm)
    | term -> (steps, compile_term b i term)
  and compile_term (b : block) (my_idx : int) term : regs -> int =
    let arm (t : target) : regs -> int =
      let cp = compile_jump t in
      let nxt = idx_of t.tblock in
      if nxt > my_idx then fun r ->
        cp r;
        compiled.(nxt) r
      else fun r ->
        cp r;
        nxt
    in
    match term with
    | Ir.Ret s ->
      let v = get_val s in
      fun r ->
        ret_val := v r;
        -1
    | Jump t -> arm t
    | Br (c, t1, t2) ->
      let cond = branch_cond b c in
      let a1 = arm t1 and a2 = arm t2 in
      fun r -> if cond r then a1 r else a2 r
    | Exit se ->
      let run = compile_exit se in
      fun r ->
        ret_val := run r;
        -1
    | Unreachable msg -> fun _ -> vm_error "reached unreachable block: %s" msg
  in
  List.iteri
    (fun i _ ->
      let steps, term = parts i in
      let steps = Array.of_list steps in
      compiled.(i) <-
        (match Array.length steps with
        | 0 -> term
        | 1 ->
          let s0 = steps.(0) in
          fun r ->
            s0 r;
            term r
        | len ->
          let last = len - 1 in
          fun r ->
            for j = 0 to last do
              steps.(j) r
            done;
            term r))
    blocks;
  if !Irtrace.on then
    Snapshot.take g (Phases.Schedule "typed") ~exclude:(Hashtbl.mem fused)
      ~meta:[ ("blocks", string_of_int (List.length blocks)) ];
  let entry_idx = idx_of g.entry in
  let nparams = g.nparams in
  (* param symbols get val slots; find them to seed from arguments *)
  let param_slots = Array.make nparams (-1) in
  Hashtbl.iter
    (fun s (lane, i) ->
      match (node g s).op with
      | Param k when lane = Lval -> param_slots.(k) <- i
      | _ -> ())
    slots;
  let ni = counts.(0) and nf = counts.(1) and nv = counts.(2) in
  (* pooled registers, as in the boxed backend (SSA: no stale reads) *)
  let pool : regs option Atomic.t = Atomic.make None in
  fun args ->
    if Array.length args <> nparams then
      vm_error "typed kernel %s: expected %d args, got %d" g.name nparams
        (Array.length args);
    let r =
      match Atomic.exchange pool None with
      | Some r -> r
      | None ->
        {
          ints = Array.make (max ni 1) 0;
          floats = Array.make (max nf 1) 0.0;
          vals = Array.make (max nv 1) Null;
        }
    in
    Fun.protect
      ~finally:(fun () -> Atomic.set pool (Some r))
      (fun () ->
        Array.iteri
          (fun k slot -> if slot >= 0 then r.vals.(slot) <- args.(k))
          param_slots;
        (try
           let bid = ref entry_idx in
           while !bid >= 0 do
             bid := compiled.(!bid) r
           done
         with Guard_miss -> ());
        !ret_val)

(* Span-instrumented entry point: attributes backend compile time in traces
   (a no-op single branch when no observability sink is attached). *)
let compile ?hooks (g : graph) =
  Obs.span ~cat:Phases.cat_jit (Phases.span_backend "typed") (fun () ->
      compile ?hooks g)

(* Compile with typed lanes; transparently fall back to the boxed backend if
   the graph uses features the typed backend does not support. *)
let compile_or_fallback ?hooks (g : graph) =
  match compile ?hooks g with
  | fn -> fn
  | exception Fallback _ -> Closure_backend.compile ?hooks g
