(* Cursor-style graph construction: tracks a current block, hash-conses
   constants globally and pure nodes per block.  This is the low-level
   "reflect" layer; Lancet's smart constructors (constant folding through
   [evalA]) sit on top. *)

open Ir

type t = {
  g : graph;
  mutable cur : block option;
  consts : (string, sym) Hashtbl.t;
  mutable cse : (string, sym) Hashtbl.t; (* scope: current block *)
  mutable loads : (string, unit) Hashtbl.t;
      (* effect-tagged loads since the last write (scope: current block);
         only maintained while Irtrace is on — see [track_load] *)
  mutable cse_hits : int; (* node emissions avoided by hash-consing *)
  mutable cur_prov : prov option; (* stamped onto emitted nodes *)
}

let create ?name ~nparams () =
  let g = create ?name ~nparams () in
  let entry = new_block g in
  g.entry <- entry.bid;
  {
    g;
    cur = Some entry;
    consts = Hashtbl.create 32;
    cse = Hashtbl.create 32;
    loads = Hashtbl.create 8;
    cse_hits = 0;
    cur_prov = None;
  }

let graph t = t.g

let current t =
  match t.cur with
  | Some b -> b
  | None -> invalid_arg "no current block (terminated?)"

let in_dead_code t = t.cur = None

(* Set the provenance stamped onto subsequently emitted nodes; the staging
   interpreter calls this once per bytecode instruction. *)
let set_prov t p = t.cur_prov <- p

(* Register a node that lives outside any block body (constants, params).
   Floating nodes are position-independent, so they carry no provenance. *)
let floating t op ty =
  let s = fresh_sym t.g in
  Hashtbl.replace t.g.nodes s
    { id = s; op; args = [||]; ty; eff = false; prov = None };
  s

let const t (v : Vm.Types.value) =
  let key = op_key (Konst v) [||] in
  match Hashtbl.find_opt t.consts key with
  | Some s -> s
  | None ->
    let ty =
      match v with
      | Vm.Types.Null -> Tobj
      | Vm.Types.Int _ -> Tint
      | Vm.Types.Float _ -> Tfloat
      | Vm.Types.Str _ -> Tstr
      | Vm.Types.Obj _ -> Tobj
      | Vm.Types.Arr _ -> Tarr
      | Vm.Types.Farr _ -> Tfarr
    in
    let s = floating t (Konst v) ty in
    Hashtbl.replace t.consts key s;
    s

let param t i ty =
  let key = "param:" ^ string_of_int i in
  match Hashtbl.find_opt t.consts key with
  | Some s -> s
  | None ->
    let s = floating t (Param i) ty in
    Hashtbl.replace t.consts key s;
    s

(* Missed-CSE watcher (Irtrace only): [op_key] collapses effectful ops to
   "effectful", so the shadow table gets its own key carrying the location
   identity.  A repeated load under an unchanged table is exactly the
   hash-cons the effect system blocked; any potentially-writing op clears
   the table, because a reload after a write is required, not a miss. *)
let load_key op args =
  let b = Buffer.create 16 in
  let add = Buffer.add_string b in
  (match op with
  | Getfield f -> add ("gf" ^ f.Vm.Types.fowner ^ "." ^ string_of_int f.Vm.Types.fidx)
  | Getglobal i -> add ("gg" ^ string_of_int i)
  | Aload -> add "al"
  | Faload -> add "fal"
  | _ -> ());
  Array.iter (fun a -> add (":" ^ string_of_int a)) args;
  Buffer.contents b

let track_load t op args =
  match op with
  | Getfield _ | Getglobal _ | Aload | Faload ->
    let key = load_key op args in
    if Hashtbl.mem t.loads key then (
      match t.cur_prov with
      | Some p ->
        Irtrace.record_miss ~phase:(Phases.name Phases.Stage) ~mid:p.pv_mid
          ~pc:p.pv_pc ~line:p.pv_line
          (Irtrace.Cse_effect_barrier { op = op_tag op })
      | None -> ())
    else Hashtbl.replace t.loads key ()
  | _ -> Hashtbl.reset t.loads (* a write or call may clobber any location *)

let emit t op args ty =
  let b = current t in
  if op_effectful op then begin
    if !Irtrace.on then track_load t op args;
    add_node ?prov:t.cur_prov t.g b ~op ~args ~ty
  end
  else begin
    let key = op_key op args in
    (* CSE: the first node (and its provenance) wins for later duplicates *)
    match Hashtbl.find_opt t.cse key with
    | Some s ->
      t.cse_hits <- t.cse_hits + 1;
      s
    | None ->
      let s = add_node ?prov:t.cur_prov t.g b ~op ~args ~ty in
      Hashtbl.replace t.cse key s;
      s
  end

let cse_hits t = t.cse_hits

let new_block t = Ir.new_block t.g

let switch_to t b =
  t.cur <- Some b;
  t.cse <- Hashtbl.create 32;
  if Hashtbl.length t.loads > 0 then Hashtbl.reset t.loads

let terminate t term =
  (match t.cur with
  | Some b -> b.term <- term
  | None -> ());
  t.cur <- None

(* Convenience wrappers used by tests and the toy compiler. *)
let int t i = const t (Vm.Types.Int i)
let iop t op a b = emit t (Iop op) [| a; b |] Tint
let icmp t c a b = emit t (Icmp c) [| a; b |] Tbool
let ret t s = terminate t (Ret s)
let jump t blk args = terminate t (Jump { tblock = blk.bid; targs = args })

let br t cond (bthen, athen) (belse, aelse) =
  terminate t
    (Br
       ( cond,
         { tblock = bthen.bid; targs = athen },
         { tblock = belse.bid; targs = aelse } ))
