(* Cursor-style graph construction: tracks a current block, hash-conses
   constants globally and pure nodes per block.  This is the low-level
   "reflect" layer; Lancet's smart constructors (constant folding through
   [evalA]) sit on top. *)

open Ir

type t = {
  g : graph;
  mutable cur : block option;
  consts : (string, sym) Hashtbl.t;
  mutable cse : (string, sym) Hashtbl.t; (* scope: current block *)
  mutable cur_prov : prov option; (* stamped onto emitted nodes *)
}

let create ?name ~nparams () =
  let g = create ?name ~nparams () in
  let entry = new_block g in
  g.entry <- entry.bid;
  {
    g;
    cur = Some entry;
    consts = Hashtbl.create 32;
    cse = Hashtbl.create 32;
    cur_prov = None;
  }

let graph t = t.g

let current t =
  match t.cur with
  | Some b -> b
  | None -> invalid_arg "no current block (terminated?)"

let in_dead_code t = t.cur = None

(* Set the provenance stamped onto subsequently emitted nodes; the staging
   interpreter calls this once per bytecode instruction. *)
let set_prov t p = t.cur_prov <- p

(* Register a node that lives outside any block body (constants, params).
   Floating nodes are position-independent, so they carry no provenance. *)
let floating t op ty =
  let s = fresh_sym t.g in
  Hashtbl.replace t.g.nodes s
    { id = s; op; args = [||]; ty; eff = false; prov = None };
  s

let const t (v : Vm.Types.value) =
  let key = op_key (Konst v) [||] in
  match Hashtbl.find_opt t.consts key with
  | Some s -> s
  | None ->
    let ty =
      match v with
      | Vm.Types.Null -> Tobj
      | Vm.Types.Int _ -> Tint
      | Vm.Types.Float _ -> Tfloat
      | Vm.Types.Str _ -> Tstr
      | Vm.Types.Obj _ -> Tobj
      | Vm.Types.Arr _ -> Tarr
      | Vm.Types.Farr _ -> Tfarr
    in
    let s = floating t (Konst v) ty in
    Hashtbl.replace t.consts key s;
    s

let param t i ty =
  let key = "param:" ^ string_of_int i in
  match Hashtbl.find_opt t.consts key with
  | Some s -> s
  | None ->
    let s = floating t (Param i) ty in
    Hashtbl.replace t.consts key s;
    s

let emit t op args ty =
  let b = current t in
  if op_effectful op then add_node ?prov:t.cur_prov t.g b ~op ~args ~ty
  else begin
    let key = op_key op args in
    (* CSE: the first node (and its provenance) wins for later duplicates *)
    match Hashtbl.find_opt t.cse key with
    | Some s -> s
    | None ->
      let s = add_node ?prov:t.cur_prov t.g b ~op ~args ~ty in
      Hashtbl.replace t.cse key s;
      s
  end

let new_block t = Ir.new_block t.g

let switch_to t b =
  t.cur <- Some b;
  t.cse <- Hashtbl.create 32

let terminate t term =
  (match t.cur with
  | Some b -> b.term <- term
  | None -> ());
  t.cur <- None

(* Convenience wrappers used by tests and the toy compiler. *)
let int t i = const t (Vm.Types.Int i)
let iop t op a b = emit t (Iop op) [| a; b |] Tint
let icmp t c a b = emit t (Icmp c) [| a; b |] Tbool
let ret t s = terminate t (Ret s)
let jump t blk args = terminate t (Jump { tblock = blk.bid; targs = args })

let br t cond (bthen, athen) (belse, aelse) =
  terminate t
    (Br
       ( cond,
         { tblock = bthen.bid; targs = athen },
         { tblock = belse.bid; targs = aelse } ))
