(* Persistent JIT profiles: warmup snapshots with fingerprint-validated
   replay.

   Every `lancet run` used to start cold: hotness counters, inline-cache
   states and devirt decisions were rebuilt from scratch on each process,
   so time-to-peak was pure waste across restarts.  This module carries
   the learned state over the process boundary as a small, versioned,
   line-oriented text snapshot (".lprof"):

     %lprof 1
     M <cls> <name> <static> <nargs> <calls> <backedges> <tier> <fp>
     I <cls> <meth> <pc> <callee> <argc> <state> <recvs> <hits> <misses>
     D <cls> <meth> <dep1,dep2,...>
     E <record-count>

   Design rules, in order of importance:

   1. Never crash on input: the snapshot is advisory.  A corrupt,
      truncated or version-bumped file degrades to a cold start with a
      single stderr diagnostic.  The trailer count catches truncation.
   2. Symbolic, never numeric identity: methods and IC receivers are
      recorded by (class name, method name, staticness, arity) — cids and
      mids are assigned in load order and do not survive a restart.
      Records that no longer resolve (renamed, vanished, re-signatured)
      are dropped, not guessed at.
   3. Forward compatible: unknown record tags are skipped (they still
      count toward the trailer), so a newer writer's extra records do not
      break an older reader.
   4. Deterministic: all tables are sorted by mid before rendering, so
      two captures of the same state are byte-identical.

   Replay composes with the rest of the engine rather than bypassing it:
   formerly-hot methods go through the ordinary promotion path (the bgjit
   queue when background compilation is on, [Runtime.tier_promote]
   otherwise), so generation stamps, hierarchy epochs and the decision
   journal all see warm compiles as first-class citizens.  After each
   warm compile the freshly staged graph's fingerprint ([Lms.Snapshot],
   reported by the pipeline through [on_fingerprint]) is compared to the
   recorded one: a match journals [Profile_replay], a mismatch journals
   [Profile_stale] — `lancet why` can attribute warm code to the profile
   either way. *)

open Vm.Types

let magic = "%lprof"
let version = 1

(* ------------------------------------------------------------------ *)
(* Snapshot model                                                      *)

type mrec = {
  pm_cls : string;
  pm_name : string;
  pm_static : bool;
  pm_nargs : int;
  pm_calls : int;
  pm_backedges : int;
  pm_tier : [ `Cold | `Compiled | `Blacklisted ];
  pm_fp : string; (* expected installed-code IR fingerprint; "" = none *)
}

type srec = {
  ps_cls : string;
  ps_meth : string;
  ps_pc : int;
  ps_callee : string;
  ps_argc : int;
  ps_state : string; (* "mono" | "poly" | "mega" *)
  ps_recvs : (string * int) list; (* receiver class name, hit count *)
  ps_hits : int;
  ps_misses : int;
}

type drec = { pd_cls : string; pd_meth : string; pd_deps : string list }

type profile = {
  p_src : string;
  p_methods : mrec list;
  p_sites : srec list;
  p_devirt : drec list;
}

let method_count p = List.length p.p_methods
let site_count p = List.length p.p_sites

(* ------------------------------------------------------------------ *)
(* Collector / validator state                                         *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let collecting_flag = ref false

(* writer side: mid -> latest staged fingerprint *)
let fps : (int, string) Hashtbl.t = Hashtbl.create 64

(* replayer side: mid -> fingerprint the snapshot promised *)
let expected : (int, string) Hashtbl.t = Hashtbl.create 64

(* fast-path mirror of [Hashtbl.length expected]: [active] is read on
   every compile, possibly from worker domains, without taking the lock *)
let expectations = ref 0
let replay_source = ref ""
let warm_match_count = ref 0
let warm_stale_count = ref 0
let replayed_count = ref 0

let collect () = collecting_flag := true
let collecting () = !collecting_flag
let active () = !collecting_flag || !expectations > 0
let warm_matches () = locked (fun () -> !warm_match_count)
let warm_stale () = locked (fun () -> !warm_stale_count)
let replayed_methods () = locked (fun () -> !replayed_count)

let reset () =
  locked (fun () ->
      collecting_flag := false;
      Hashtbl.reset fps;
      Hashtbl.reset expected;
      expectations := 0;
      replay_source := "";
      warm_match_count := 0;
      warm_stale_count := 0;
      replayed_count := 0)

let on_fingerprint ~mid ~meth ~fp =
  let verdict =
    locked (fun () ->
        if !collecting_flag then Hashtbl.replace fps mid fp;
        match Hashtbl.find_opt expected mid with
        | None -> None
        | Some want ->
          Hashtbl.remove expected mid;
          expectations := !expectations - 1;
          if String.equal want fp then begin
            incr warm_match_count;
            Some `Match
          end
          else begin
            incr warm_stale_count;
            Some (`Stale want)
          end)
  in
  match verdict with
  | None -> ()
  | Some v ->
    if !Forensics.on then begin
      let cause =
        match v with
        | `Match -> Forensics.Profile_replay { src = !replay_source }
        | `Stale want -> Forensics.Profile_stale { expected = want; found = fp }
      in
      Forensics.record ~cause ~mid ~meth
        (Forensics.Ir_fingerprint { phase = "profile-replay"; fp })
    end

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)

let tier_tag (m : meth) =
  match m.mtier with
  | Tier_compiled _ | Tier_compiling -> `Compiled
  | Tier_blacklisted -> `Blacklisted
  | Tier_cold -> `Cold

let capture rt =
  let fp_snapshot = locked (fun () -> Hashtbl.copy fps) in
  let methods = ref [] in
  Hashtbl.iter
    (fun _ (c : cls) ->
      List.iter
        (fun (m : meth) ->
          match m.mcode with
          | Native _ -> ()
          | Bytecode _ ->
            let fp =
              Option.value ~default:"" (Hashtbl.find_opt fp_snapshot m.mid)
            in
            let tier = tier_tag m in
            if m.mcalls + m.mbackedges > 0 || tier <> `Cold || fp <> "" then
              methods :=
                ( m.mid,
                  {
                    pm_cls = m.mowner.cname;
                    pm_name = m.mname;
                    pm_static = m.mstatic;
                    pm_nargs = m.mnargs;
                    pm_calls = m.mcalls;
                    pm_backedges = m.mbackedges;
                    pm_tier = tier;
                    pm_fp = fp;
                  } )
                :: !methods)
        c.cmethods)
    rt.classes;
  let methods =
    List.map snd
      (List.sort (fun (a, _) (b, _) -> compare a b) !methods)
  in
  let sites =
    Hashtbl.fold (fun _ s acc -> s :: acc) rt.ic_sites []
    |> List.sort (fun a b -> compare (a.cs_mid, a.cs_pc) (b.cs_mid, b.cs_pc))
    |> List.filter_map (fun s ->
           match (Vm.Runtime.find_method_by_id rt s.cs_mid, s.cs_state) with
           | None, _ | _, Ic_empty -> None
           | Some m, st ->
             let state, recvs =
               match st with
               | Ic_empty -> assert false
               | Ic_mono e -> ("mono", [ (e.ice_cls.cname, e.ice_count) ])
               | Ic_poly es ->
                 ( "poly",
                   Array.to_list
                     (Array.map (fun e -> (e.ice_cls.cname, e.ice_count)) es)
                 )
               | Ic_mega -> ("mega", [])
             in
             Some
               {
                 ps_cls = m.mowner.cname;
                 ps_meth = m.mname;
                 ps_pc = s.cs_pc;
                 ps_callee = s.cs_name;
                 ps_argc = s.cs_argc;
                 ps_state = state;
                 ps_recvs = recvs;
                 ps_hits = s.cs_hits;
                 ps_misses = s.cs_misses;
               })
  in
  (* invert name -> dependent methods into per-method dependency lists
     (guarded by [t_lock]: workers append under the same lock) *)
  let devirt =
    Vm.Runtime.with_tier_lock rt (fun () ->
        let per_mid : (int, meth * string list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        Hashtbl.iter
          (fun name bucket ->
            List.iter
              (fun (m : meth) ->
                let deps =
                  match Hashtbl.find_opt per_mid m.mid with
                  | Some (_, r) -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.replace per_mid m.mid (m, r);
                    r
                in
                deps := name :: !deps)
              !bucket)
          rt.tiering.t_devirt_deps;
        Hashtbl.fold
          (fun mid (m, deps) acc ->
            ( mid,
              {
                pd_cls = m.mowner.cname;
                pd_meth = m.mname;
                pd_deps = List.sort_uniq compare !deps;
              } )
            :: acc)
          per_mid []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd)
  in
  { p_src = ""; p_methods = methods; p_sites = sites; p_devirt = devirt }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let tier_to_string = function
  | `Cold -> "cold"
  | `Compiled -> "compiled"
  | `Blacklisted -> "blacklisted"

let recvs_to_string = function
  | [] -> "-"
  | rs ->
    String.concat ","
      (List.map (fun (c, n) -> Printf.sprintf "%s*%d" c n) rs)

let to_string p =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s %d\n" magic version;
  let n = ref 0 in
  let record fmt = incr n; Printf.bprintf b fmt in
  List.iter
    (fun r ->
      record "M %s %s %d %d %d %d %s %s\n" r.pm_cls r.pm_name
        (if r.pm_static then 1 else 0)
        r.pm_nargs r.pm_calls r.pm_backedges
        (tier_to_string r.pm_tier)
        (if r.pm_fp = "" then "-" else r.pm_fp))
    p.p_methods;
  List.iter
    (fun s ->
      record "I %s %s %d %s %d %s %s %d %d\n" s.ps_cls s.ps_meth s.ps_pc
        s.ps_callee s.ps_argc s.ps_state
        (recvs_to_string s.ps_recvs)
        s.ps_hits s.ps_misses)
    p.p_sites;
  List.iter
    (fun d ->
      record "D %s %s %s\n" d.pd_cls d.pd_meth (String.concat "," d.pd_deps))
    p.p_devirt;
  Printf.bprintf b "E %d\n" !n;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let parse_recvs s =
  if String.equal s "-" then Some []
  else
    let parts = String.split_on_char ',' s in
    let entry p =
      match String.index_opt p '*' with
      | None -> if p = "" then None else Some (p, 1)
      | Some i -> (
        let cls = String.sub p 0 i in
        let count = String.sub p (i + 1) (String.length p - i - 1) in
        if cls = "" then None
        else
          match int_of_string_opt count with
          | Some n -> Some (cls, n)
          | None -> None)
    in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match entry p with Some e -> go (e :: acc) rest | None -> None)
    in
    go [] parts

let of_string ?(src = "<string>") s : (profile, string) result =
  let err fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" src m)) fmt
  in
  match String.split_on_char '\n' s with
  | [] -> err "empty profile"
  | header :: body -> (
    let header_ok =
      match String.split_on_char ' ' (String.trim header) with
      | [ m; v ] when String.equal m magic -> (
        match int_of_string_opt v with
        | Some v when v = version -> Ok ()
        | Some v ->
          err "unsupported profile version %d (this build reads %d)" v version
        | None -> err "malformed version header")
      | _ -> err "not a lancet profile (bad magic)"
    in
    match header_ok with
    | Error e -> Error e
    | Ok () ->
      let methods = ref [] and sites = ref [] and devirt = ref [] in
      let count = ref 0 and finished = ref false in
      let int_ what v k =
        match int_of_string_opt v with
        | Some n -> k n
        | None -> err "malformed %s record (bad %s)" what v
      in
      let rec go lineno = function
        | [] ->
          if !finished then
            Ok
              {
                p_src = src;
                p_methods = List.rev !methods;
                p_sites = List.rev !sites;
                p_devirt = List.rev !devirt;
              }
          else err "truncated profile (missing end record)"
        | line :: rest -> (
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (lineno + 1) rest
          else if !finished then err "trailing data after end record"
          else
            let fields =
              List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
            in
            let step () = go (lineno + 1) rest in
            match fields with
            | [ "M"; cls; name; st; nargs; calls; backedges; tier; fp ] ->
              let tier_of = function
                | "cold" -> Some `Cold
                | "compiled" -> Some `Compiled
                | "blacklisted" -> Some `Blacklisted
                | _ -> None
              in
              (match (tier_of tier, st) with
              | None, _ -> err "malformed method record (line %d)" lineno
              | Some t, ("0" | "1") ->
                int_ "method" nargs (fun nargs ->
                    int_ "method" calls (fun calls ->
                        int_ "method" backedges (fun backedges ->
                            incr count;
                            methods :=
                              {
                                pm_cls = cls;
                                pm_name = name;
                                pm_static = st = "1";
                                pm_nargs = nargs;
                                pm_calls = calls;
                                pm_backedges = backedges;
                                pm_tier = t;
                                pm_fp = (if fp = "-" then "" else fp);
                              }
                              :: !methods;
                            step ())))
              | Some _, _ -> err "malformed method record (line %d)" lineno)
            | [ "I"; cls; meth; pc; callee; argc; state; recvs; hits; misses ]
              -> (
              match
                (parse_recvs recvs, List.mem state [ "mono"; "poly"; "mega" ])
              with
              | None, _ | _, false ->
                err "malformed ic-site record (line %d)" lineno
              | Some recvs, true ->
                int_ "ic-site" pc (fun pc ->
                    int_ "ic-site" argc (fun argc ->
                        int_ "ic-site" hits (fun hits ->
                            int_ "ic-site" misses (fun misses ->
                                incr count;
                                sites :=
                                  {
                                    ps_cls = cls;
                                    ps_meth = meth;
                                    ps_pc = pc;
                                    ps_callee = callee;
                                    ps_argc = argc;
                                    ps_state = state;
                                    ps_recvs = recvs;
                                    ps_hits = hits;
                                    ps_misses = misses;
                                  }
                                  :: !sites;
                                step ())))))
            | [ "D"; cls; meth; deps ] ->
              let deps =
                List.filter (fun d -> d <> "") (String.split_on_char ',' deps)
              in
              incr count;
              devirt := { pd_cls = cls; pd_meth = meth; pd_deps = deps } :: !devirt;
              step ()
            | [ "E"; n ] ->
              int_ "end" n (fun n ->
                  if n = !count then begin
                    finished := true;
                    step ()
                  end
                  else
                    err
                      "record count mismatch: trailer says %d, read %d \
                       (truncated?)"
                      n !count)
            | ("M" | "I" | "D" | "E") :: _ ->
              err "malformed record (line %d)" lineno
            | _ :: _ ->
              (* unknown record tag: a newer writer's extension — skip it,
                 but it still counts toward the trailer *)
              incr count;
              step ()
            | [] -> step ())
      in
      go 2 body)

(* ------------------------------------------------------------------ *)
(* File I/O                                                            *)

(* Atomic: write to a sibling temp file and [Sys.rename] into place, so a
   crash mid-write (or an injected [profile_truncate] fault) can never leave
   a truncated profile under [path] — at worst the temp file holds debris
   and the previous snapshot survives intact. *)
let save rt path =
  let s = to_string (capture rt) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     if !Chaos.on && Chaos.fire Chaos.profile_truncate then begin
       (* simulated crash mid-write: half the bytes land in the temp file,
          which is left behind; the rename below must never happen *)
       output_string oc (String.sub s 0 (String.length s / 2));
       close_out_noerr oc;
       raise (Sys_error (tmp ^ ": chaos: profile write killed mid-write"))
     end;
     let s =
       if !Chaos.on && Chaos.fire Chaos.profile_corrupt then
         (* clobber the header so the loader must degrade to a cold start *)
         String.mapi (fun i c -> if i < 8 then '#' else c) s
       else s
     in
     output_string oc s;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load path : profile option =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e ->
    Printf.eprintf "[profile] cold start: cannot read %s (%s)\n%!" path e;
    None
  | s -> (
    match of_string ~src:path s with
    | Ok p -> Some p
    | Error e ->
      Printf.eprintf "[profile] cold start: %s\n%!" e;
      None)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_stats = {
  mutable rs_methods : int;
  mutable rs_sites : int;
  mutable rs_enqueued : int;
  mutable rs_blacklisted : int;
  mutable rs_dropped : int;
}

let replay ?pool rt (p : profile) =
  let st =
    {
      rs_methods = 0;
      rs_sites = 0;
      rs_enqueued = 0;
      rs_blacklisted = 0;
      rs_dropped = 0;
    }
  in
  locked (fun () -> replay_source := p.p_src);
  (* every method name resolvable in the fresh classfile; devirt
     dependencies naming anything outside this set mean the profile
     speculated on code that no longer exists *)
  let known_names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (c : cls) ->
      List.iter
        (fun (m : meth) -> Hashtbl.replace known_names m.mname ())
        c.cmethods)
    rt.classes;
  let dep_tbl : (string * string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun d -> Hashtbl.replace dep_tbl (d.pd_cls, d.pd_meth) d.pd_deps)
    p.p_devirt;
  (* pass 1: resolve method symbols, seed counters, restore the blacklist,
     collect warm-compile candidates *)
  let warm = ref [] in
  List.iter
    (fun r ->
      match
        Vm.Classfile.resolve_symbol rt ~cls:r.pm_cls ~name:r.pm_name
          ~static:r.pm_static ~nargs:r.pm_nargs
      with
      | None -> st.rs_dropped <- st.rs_dropped + 1
      | Some m -> (
        st.rs_methods <- st.rs_methods + 1;
        m.mcalls <- max m.mcalls r.pm_calls;
        m.mbackedges <- max m.mbackedges r.pm_backedges;
        match r.pm_tier with
        | `Cold -> ()
        | `Blacklisted -> (
          match m.mtier with
          | Tier_cold ->
            m.mtier <- Tier_blacklisted;
            st.rs_blacklisted <- st.rs_blacklisted + 1
          | _ -> ())
        | `Compiled ->
          let deps_ok =
            match Hashtbl.find_opt dep_tbl (r.pm_cls, r.pm_name) with
            | None -> true
            | Some deps -> List.for_all (Hashtbl.mem known_names) deps
          in
          if deps_ok then begin
            if r.pm_fp <> "" then
              locked (fun () ->
                  if not (Hashtbl.mem expected m.mid) then incr expectations;
                  Hashtbl.replace expected m.mid r.pm_fp);
            warm := m :: !warm
          end
          else begin
            (* installed code speculated on a method that vanished: the
               record is stale, keep the method cold *)
            st.rs_dropped <- st.rs_dropped + 1;
            if !Forensics.on then
              Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
                ~cause:
                  (Forensics.Profile_stale
                     {
                       expected = "devirt deps";
                       found = "vanished symbol";
                     })
                Forensics.Drop
          end))
    p.p_methods;
  locked (fun () -> replayed_count := st.rs_methods);
  (* pass 2: pre-quicken IC sites whose bytecode still matches, exactly as
     the interpreter would have ([Interp] rewrites Virtual -> Virtual_ic
     at the same pc), so warm compiles see the recorded receiver profile *)
  if rt.ic_enabled then
    List.iter
      (fun s ->
        let resolved =
          match Vm.Classfile.find_class_opt rt s.ps_cls with
          | None -> None
          | Some c -> Vm.Classfile.own_method_opt c s.ps_meth
        in
        match resolved with
        | None -> st.rs_dropped <- st.rs_dropped + 1
        | Some m -> (
          match m.mcode with
          | Native _ -> st.rs_dropped <- st.rs_dropped + 1
          | Bytecode code ->
            if s.ps_pc < 0 || s.ps_pc >= Array.length code then
              st.rs_dropped <- st.rs_dropped + 1
            else (
              match code.(s.ps_pc) with
              | Invoke (Virtual (name, argc, hint))
                when String.equal name s.ps_callee && argc = s.ps_argc ->
                let site =
                  Vm.Inlinecache.make_site rt ~mid:m.mid ~pc:s.ps_pc ~name
                    ~argc ~hint
                in
                let entries =
                  List.filter_map
                    (fun (cn, count) ->
                      match Vm.Classfile.find_class_opt rt cn with
                      | None -> None
                      | Some c -> (
                        match Vm.Classfile.resolve_virtual_opt c s.ps_callee with
                        | None -> None
                        | Some callee ->
                          Some
                            {
                              ice_cls = c;
                              ice_meth = callee;
                              ice_count = max 1 count;
                            }))
                    s.ps_recvs
                in
                (match (s.ps_state, entries) with
                | "mega", _ -> site.cs_state <- Ic_mega
                | _, [] -> () (* no receiver survived: leave it empty *)
                | _, [ e ] -> site.cs_state <- Ic_mono e
                | _, es ->
                  let es = Array.of_list es in
                  let es =
                    if Array.length es > Vm.Inlinecache.poly_limit then
                      Array.sub es 0 Vm.Inlinecache.poly_limit
                    else es
                  in
                  site.cs_state <- Ic_poly es);
                site.cs_hits <- s.ps_hits;
                site.cs_misses <- s.ps_misses;
                code.(s.ps_pc) <- Invoke (Virtual_ic site);
                st.rs_sites <- st.rs_sites + 1;
                if !Forensics.on then
                  Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
                    ~cause:(Forensics.Profile_replay { src = p.p_src })
                    (Forensics.Ic_state
                       {
                         pc = s.ps_pc;
                         line = Vm.Runtime.line_at m s.ps_pc;
                         callee = s.ps_callee;
                         state = s.ps_state;
                       })
              | Invoke (Virtual_ic _) -> () (* already quickened *)
              | _ -> st.rs_dropped <- st.rs_dropped + 1)))
      p.p_sites;
  (* pass 3: batch-enqueue formerly-compiled methods before the mutator
     starts — through the background queue when there is one, otherwise
     synchronously through the promotion hook *)
  if rt.tiering.t_enabled then
    List.iter
      (fun (m : meth) ->
        match m.mtier with
        | Tier_cold -> (
          match pool with
          | Some b -> (
            match
              Bgjit.enqueue ~why:(Forensics.Profile_replay { src = p.p_src })
                b m
            with
            | `Queued | `Coalesced -> st.rs_enqueued <- st.rs_enqueued + 1
            | `Dropped -> ())
          | None ->
            if rt.jit_hook <> None then (
              match Vm.Runtime.tier_promote rt m with
              | Some _ -> st.rs_enqueued <- st.rs_enqueued + 1
              | None -> ()))
        | Tier_compiling | Tier_compiled _ | Tier_blacklisted -> ())
      (List.rev !warm);
  st

let replay_file ?pool rt path =
  match load path with
  | None -> None
  | Some p -> Some (replay ?pool rt p)

(* ------------------------------------------------------------------ *)
(* Exit-time writer                                                    *)

let writer_paths : (string, unit) Hashtbl.t = Hashtbl.create 4

let register_writer rt path =
  let fresh =
    locked (fun () ->
        if Hashtbl.mem writer_paths path then false
        else begin
          Hashtbl.replace writer_paths path ();
          true
        end)
  in
  if fresh then begin
    Obs.add_flusher (fun () ->
        try save rt path
        with Sys_error e ->
          Printf.eprintf "[profile] write failed: %s\n%!" e);
    Obs.arm_exit_flush ()
  end
