(** Persistent JIT profiles: warmup snapshots with fingerprint-validated
    replay.

    A profile ([.lprof]) captures what a run learned — per-method hotness
    and tier state, quickened inline-cache sites (receivers recorded
    symbolically, by class name, never by cid), speculative-devirt
    dependencies, the blacklist, and the expected installed-code IR
    fingerprint per method — so the next process can skip the warmup.
    Replay resolves every symbol against the freshly loaded classfile and
    silently drops whatever no longer matches; a corrupt, truncated or
    version-bumped file degrades to a cold start with one stderr
    diagnostic, never a crash. *)

(** {1 Snapshot model} *)

type profile

val version : int
(** Current snapshot format version (the [%lprof N] header). *)

val method_count : profile -> int
val site_count : profile -> int

val capture : Vm.Types.runtime -> profile
(** Snapshot the runtime's warmup state: every bytecode method with
    activity (calls/backedges, a non-cold tier, or a recorded
    fingerprint), every non-empty IC site, and the devirt dependency
    sets.  Tables are sorted by mid so the dump is byte-diff-stable. *)

val to_string : profile -> string

val of_string : ?src:string -> string -> (profile, string) result
(** Parse a snapshot.  Unknown record tags are skipped (schema
    evolution); a bad header, malformed known record, wrong version or
    missing/mismatched trailer count is an [Error]. *)

val save : Vm.Types.runtime -> string -> unit
(** [capture] + write to a file (replacing it). *)

val load : string -> profile option
(** Read and parse a snapshot file.  On any failure — unreadable file,
    corrupt or truncated contents, version mismatch — prints a single
    cold-start diagnostic on stderr and returns [None]. *)

(** {1 Replay} *)

type replay_stats = {
  mutable rs_methods : int;  (** method records resolved and seeded *)
  mutable rs_sites : int;  (** IC sites pre-quickened *)
  mutable rs_enqueued : int;  (** warm compiles enqueued/promoted *)
  mutable rs_blacklisted : int;  (** blacklist entries restored *)
  mutable rs_dropped : int;  (** stale records dropped *)
}

val replay : ?pool:Bgjit.t -> Vm.Types.runtime -> profile -> replay_stats
(** Seed a freshly booted runtime from a snapshot: resolve method symbols
    (dropping renamed/vanished/re-signatured ones), seed hotness
    counters, restore the blacklist, pre-quicken IC sites whose bytecode
    still matches, then batch-enqueue formerly-compiled methods — through
    [pool] when background compilation is on, synchronously through the
    tier-promotion hook otherwise.  Each warm compile's IR fingerprint is
    checked against the recorded one via {!on_fingerprint}. *)

val replay_file : ?pool:Bgjit.t -> Vm.Types.runtime -> string -> replay_stats option
(** [load] + [replay]; [None] (cold start) when the file does not load. *)

(** {1 Collection and validation hooks} *)

val collect : unit -> unit
(** Start recording compile fingerprints for a later [capture]. *)

val collecting : unit -> bool

val active : unit -> bool
(** True when the compile pipeline should report fingerprints here:
    either collecting for a writer, or warm-compile validations are
    still pending after a replay. *)

val on_fingerprint : mid:int -> meth:string -> fp:string -> unit
(** Called by the compile pipeline after staging.  While collecting,
    records [fp] as the method's expected fingerprint.  After a replay,
    consumes the method's pending expectation and journals a
    [Profile_replay] (match) or [Profile_stale] (mismatch) cause in
    Forensics.  Thread-safe; called from background JIT workers. *)

val warm_matches : unit -> int
(** Warm compiles whose fingerprint matched the snapshot. *)

val warm_stale : unit -> int
(** Warm compiles whose fingerprint differed from the snapshot. *)

val replayed_methods : unit -> int
(** Method records resolved by the last [replay]. *)

val register_writer : Vm.Types.runtime -> string -> unit
(** Register a profile writer for [path] in the consolidated
    [Obs.add_flusher] registry and arm the single exit-time flush; each
    flush rewrites the file, so the final one wins.  Idempotent per
    path.  Write failures are reported on stderr, never raised. *)

val reset : unit -> unit
(** Drop all collector/replayer state (tests). *)
