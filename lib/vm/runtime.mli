(** Runtime state: the heap (OCaml objects double as the VM heap, as the JVM
    heap does in the paper's Fig. 6 Runtime interface), globals, output
    capture, and the registry of compiled function bodies. *)

open Types

val create :
  ?tiering:bool ->
  ?tier_threshold:int ->
  ?tier_cache_size:int ->
  ?jit_threads:int ->
  ?jit_queue:int ->
  ?inline_caches:bool ->
  unit ->
  runtime
(** A fresh runtime with no classes; see {!Natives.boot} for one with the
    builtin classes installed.  [tiering] enables hotness-driven method
    promotion (off by default; it only takes effect once a [jit_hook] is
    installed, e.g. by [Lancet.Api.install]); [tier_threshold] is the
    combined invocation + back-edge count that triggers compilation and
    [tier_cache_size] bounds the number of resident compiled methods.
    [jit_threads] is the number of background JIT worker domains the
    [Bgjit] subsystem should run (0, the default, keeps compilation
    synchronous and deterministic) and [jit_queue] bounds its compile
    queue; the runtime only records these knobs — [Bgjit.create] reads
    them.  [inline_caches] (default true) lets the interpreter quicken
    invokevirtual sites into per-site inline caches. *)

val alloc : runtime -> cls -> obj
(** Allocate an instance with all fields [Null]. *)

val get_field : obj -> field -> value
val set_field : obj -> field -> value -> unit

val get_global : runtime -> int -> value
val set_global : runtime -> int -> value -> unit

val alloc_global : runtime -> int
(** Reserve a fresh global slot (used by the Mini code generator). *)

val output : runtime -> string -> unit
(** Print to stdout, or into the capture buffer when one is active. *)

val capture_output : runtime -> (unit -> 'a) -> string * 'a
(** Redirect printed output into a buffer for the duration of the call. *)

val register_compiled : runtime -> (value array -> value) -> int
(** Register an OCaml function as a CompiledFn body; returns its id. *)

val compiled_body : runtime -> int -> value array -> value

(** {2 Tiered execution: the runtime code cache}

    Compiled method bodies are keyed by method id with a generation stamp;
    installation evicts FIFO beyond [tier_cache_size].  Statistics live on
    [rt.tiering]. *)

val meth_label : meth -> string
(** ["Cls.name"], the label used in observability events and profiles. *)

(** {2 Source provenance}

    Line tables ([mlines], pc -> source line, 0 = unknown) are produced by
    the assembler and the Mini code generator; these helpers resolve them. *)

val line_at : meth -> int -> int
(** Source line of the instruction at [pc]; 0 when unknown. *)

val meth_def_line : meth -> int
(** The method's defining source line: the first attributed pc, or 0. *)

val meth_loc : meth -> int -> string
(** ["Cls.meth @pc 5 (file.mini:12)"] — pc always, file:line when known. *)

val find_method_by_id : runtime -> int -> meth option
(** Reverse lookup of a method by its [mid] across all loaded classes. *)

val tier_gen : runtime -> int -> int
(** Current generation stamp of a method id (0 until first invalidation). *)

val with_tier_lock : runtime -> (unit -> 'a) -> 'a
(** Run [f] holding the tiering lock (code-cache structure, CHA memo and
    devirtualization bookkeeping are guarded by it).  [f] must not call
    back into locked runtime entry points. *)

val tier_install :
  ?deps:string list -> runtime -> meth -> (value array -> value) -> unit
(** Install a compiled entry point for [m] at its current generation.
    [deps] names the virtual-call targets the code speculates on (IC
    feedback or CHA); {!hierarchy_changed} on any of them invalidates the
    entry. *)

val tier_install_if_current :
  runtime ->
  meth ->
  gen:int ->
  ?epoch:int ->
  ?deps:string list ->
  (value array -> value) ->
  bool
(** Atomic publish for background compilation: install the entry point only
    if [m]'s generation still equals [gen] (the stamp read when the compile
    started) and — when the compile speculated on receiver types ([deps]
    non-empty) — the class-hierarchy epoch still equals [epoch].  Returns
    [false] — and installs nothing — when an invalidation or a
    dispatch-changing method definition raced the compile. *)

val tier_invalidate : ?why:Forensics.cause -> runtime -> meth -> unit
(** Drop [m]'s installed code and bump its generation stamp.  [why] is the
    cause recorded in the decision journal (when it is enabled): recompile
    exit, devirt-miss threshold, hierarchy change, ... *)

val devirt_register : runtime -> string list -> meth -> unit
(** Record that [m]'s installed code speculates on virtual dispatch of the
    given method names (used by the synchronous promotion path, where
    compile and install are not raced by hierarchy mutation). *)

val hier_epoch : runtime -> int
(** Current class-hierarchy epoch; bumped whenever a method (re)definition
    can change virtual dispatch. *)

val hierarchy_changed : runtime -> name:string -> unit
(** A (re)definition of a virtual method [name] happened: flush interpreter
    inline caches for that name, drop memoized CHA answers, bump the
    hierarchy epoch and invalidate every installed method whose compiled
    code speculated on dispatch of [name]. *)

val ic_stats : runtime -> int * int * int * int * int
(** Aggregate inline-cache counters over all quickened sites:
    [(hits, misses, mono_sites, poly_sites, mega_sites)]. *)

val tier_promote : runtime -> meth -> (value array -> value) option
(** Compile [m] through the installed [jit_hook] and install the result;
    [Jit_declined] (or a raising hook) blacklists the method, [Jit_pending]
    leaves it interpreted until a background worker installs the code. *)

val tiered_fn : runtime -> meth -> (value array -> value) option
(** Per-call tier dispatch: the installed compiled entry point, if any,
    promoting the method first when it just crossed the hotness threshold.
    Updates hit/miss statistics. *)

val tier_stats_string : runtime -> string
(** One-line summary of the tiering counters, for benches and logging. *)
