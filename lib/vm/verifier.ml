(* Bytecode verifier: a dataflow pass over a method's instructions checking
   the structural properties the interpreter and the Lancet compiler rely on:

   - the operand stack never underflows and stays within [mmaxstack];
   - every join point is reached with a consistent stack depth;
   - local slots are within [mnlocals];
   - branch targets are in range and fall-through off the end is impossible
     (the assembler appends an implicit return);
   - [Invoke] argument counts are representable at the current depth.

   Runs in O(code size); the Mini code generator's output is verified in the
   test suite, and the CLI verifies files it loads. *)

open Types

type error = { v_pc : int; v_msg : string }

exception Verify_error of meth * error

let error m pc fmt =
  Format.kasprintf (fun s -> raise (Verify_error (m, { v_pc = pc; v_msg = s }))) fmt

let pops_pushes (m : meth) pc (i : instr) : int * int =
  match i with
  | Const _ | Load _ | New _ | Getglobal _ -> (0, 1)
  | Store _ | Pop | Putglobal _ | Ifz _ | Ifnull _ -> (1, 0)
  | Dup -> (1, 2)
  | Swap -> (2, 2)
  | Iop _ | Fop _ | Aload | Faload -> (2, 1)
  | Ineg | Fneg | I2f | F2i | Alen | Newarr | Newfarr -> (1, 1)
  | If _ | Iff _ | Putfield _ -> (2, 0)
  | Getfield _ -> (1, 1)
  | Astore | Fastore -> (3, 0)
  | Invoke inv ->
    let argc =
      match inv with
      | Static c -> c.mnargs
      | Special c -> c.mnargs + 1
      | Virtual (_, n, _) -> n + 1
      | Virtual_ic s -> s.cs_argc + 1
    in
    if argc < 0 then error m pc "negative argument count";
    (argc, 1)
  | Goto _ -> (0, 0)
  | Ret | Trap _ -> (0, 0)
  | Retv -> (1, 0)

let check_locals (m : meth) pc (i : instr) =
  let check n what =
    if n < 0 || n >= m.mnlocals then
      error m pc "%s of out-of-range local %d (nlocals=%d)" what n m.mnlocals
  in
  match i with
  | Load n -> check n "load"
  | Store n -> check n "store"
  | Const _ | Dup | Pop | Swap | Iop _ | Ineg | Fop _ | Fneg | I2f | F2i
  | If _ | Iff _ | Ifz _ | Ifnull _ | Goto _ | New _ | Getfield _
  | Putfield _ | Getglobal _ | Putglobal _ | Newarr | Newfarr | Aload
  | Astore | Faload | Fastore | Alen | Invoke _ | Ret | Retv | Trap _ ->
    ()

let successors_of (m : meth) pc (i : instr) n =
  let target t =
    if t < 0 || t >= n then error m pc "branch target %d out of range" t;
    t
  in
  match i with
  | Goto t -> [ target t ]
  | If (_, t) | Iff (_, t) | Ifz (_, t) | Ifnull (_, t) ->
    [ target t; pc + 1 ]
  | Ret | Retv | Trap _ -> []
  | Const _ | Load _ | Store _ | Dup | Pop | Swap | Iop _ | Ineg | Fop _
  | Fneg | I2f | F2i | New _ | Getfield _ | Putfield _ | Getglobal _
  | Putglobal _ | Newarr | Newfarr | Aload | Astore | Faload | Fastore | Alen
  | Invoke _ ->
    [ pc + 1 ]

(* Verify one method; raises [Verify_error] on the first violation. *)
let verify (m : meth) : unit =
  match m.mcode with
  | Native _ -> ()
  | Bytecode code ->
    let n = Array.length code in
    if n = 0 then error m 0 "empty body";
    let depth = Array.make n (-1) in
    let work = Queue.create () in
    depth.(0) <- 0;
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let pc = Queue.pop work in
      let d = depth.(pc) in
      let i = code.(pc) in
      check_locals m pc i;
      let pops, pushes = pops_pushes m pc i in
      if d < pops then
        error m pc "stack underflow: depth %d, instruction pops %d" d pops;
      let d' = d - pops + pushes in
      if d' > m.mmaxstack then
        error m pc "stack overflow: depth %d exceeds maxstack %d" d' m.mmaxstack;
      let succs = successors_of m pc i n in
      if succs = [] && (match i with Ret | Retv | Trap _ -> false | _ -> true)
      then error m pc "control falls off the end";
      List.iter
        (fun pc' ->
          if pc' >= n then error m pc "fall-through past the end of the code";
          if depth.(pc') < 0 then begin
            depth.(pc') <- d';
            Queue.add pc' work
          end
          else if depth.(pc') <> d' then
            error m pc' "inconsistent stack depth at join: %d vs %d"
              depth.(pc') d')
        succs
    done

let verify_class (cls : cls) : unit = List.iter verify cls.cmethods

(* Verify every bytecode method in the runtime; returns the number checked. *)
let verify_all (rt : runtime) : int =
  let count = ref 0 in
  Hashtbl.iter
    (fun _ cls ->
      List.iter
        (fun m ->
          match m.mcode with
          | Bytecode _ ->
            verify m;
            incr count
          | Native _ -> ())
        cls.cmethods)
    rt.classes;
  !count

let () =
  Printexc.register_printer (function
    | Verify_error (m, e) ->
      Some
        (Printf.sprintf "Verify_error in %s.%s at pc %d: %s" m.mowner.cname
           m.mname e.v_pc e.v_msg)
    | _ -> None)
