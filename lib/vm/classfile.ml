(* Class and method construction, dispatch-table resolution, lookups. *)

open Types

let find_class rt name =
  match Hashtbl.find_opt rt.classes name with
  | Some c -> c
  | None -> vm_error "unknown class %s" name

let find_class_opt rt name = Hashtbl.find_opt rt.classes name

(* Fields of [cls] are flattened with inherited fields first, so a field
   index valid for a superclass is valid for every subclass. *)
let declare_class rt ~name ?super ?(flags = []) ~fields () =
  if Hashtbl.mem rt.classes name then vm_error "class %s redeclared" name;
  let super_cls = Option.map (find_class rt) super in
  let inherited =
    match super_cls with None -> [||] | Some s -> s.cfields
  in
  let base = Array.length inherited in
  let own =
    Array.of_list
      (List.mapi
         (fun i (fname, ffinal) ->
           { fowner = name; fname; fidx = base + i; ffinal })
         fields)
  in
  let cls =
    {
      cid = rt.next_cid;
      cname = name;
      csuper = super_cls;
      cfields = Array.append inherited own;
      cmethods = [];
      cvtable = Hashtbl.create 8;
      cflags =
        (flags
        @ match super_cls with Some s -> s.cflags | None -> []);
    }
  in
  rt.next_cid <- rt.next_cid + 1;
  Hashtbl.replace rt.classes name cls;
  cls

let field cls name =
  let n = Array.length cls.cfields in
  let rec go i =
    if i >= n then vm_error "class %s has no field %s" cls.cname name
    else if String.equal cls.cfields.(i).fname name then cls.cfields.(i)
    else go (i + 1)
  in
  go 0

let has_field cls name =
  Array.exists (fun f -> String.equal f.fname name) cls.cfields

(* Gate for the resolution memoization below; benches flip it off (together
   with [rt.ic_enabled]) to measure the unmemoized superclass-chain walk. *)
let cha_memo = ref true

let add_method rt cls ~name ?(static = false) ~nargs code =
  let nlocals = nargs + (if static then 0 else 1) in
  let m =
    {
      mid = rt.next_mid;
      mname = name;
      mowner = cls;
      mstatic = static;
      mnargs = nargs;
      mnlocals = nlocals;
      mmaxstack = 8;
      mcode = code;
      mlines = [||];
      msrc = "";
      mcalls = 0;
      mbackedges = 0;
      mtier = Tier_cold;
    }
  in
  rt.next_mid <- rt.next_mid + 1;
  cls.cmethods <- m :: cls.cmethods;
  if not static then begin
    Hashtbl.replace cls.cvtable name m;
    (* The (re)definition changes what [name] resolves to at and below
       [cls]: drop memoized inherited bindings for the name (they lazily
       re-resolve), then fan out to the runtime — flush inline caches,
       CHA answers and compiled code speculating on the old receiver set. *)
    Hashtbl.iter
      (fun _ c ->
        if c != cls then
          match Hashtbl.find_opt c.cvtable name with
          | Some m' when m'.mowner != c -> Hashtbl.remove c.cvtable name
          | _ -> ())
      rt.classes;
    Runtime.hierarchy_changed rt ~name
  end;
  m

let add_native rt cls ~name ?(static = false) ~nargs fn =
  add_method rt cls ~name ~static ~nargs (Native (cls.cname ^ "." ^ name, fn))

(* Virtual lookup: own dispatch table first, then the superclass chain (the
   chain is walked lazily so that methods may be added to a superclass after
   subclasses were declared).  A successful chain walk is memoized into the
   starting class's own table so later lookups are a single probe; memoized
   (inherited) bindings are recognizable by [mowner != cls] and are purged
   by [add_method].  Writes happen only on the main domain — a JIT worker
   resolving during compilation must not mutate tables the mutator reads. *)
let rec resolve_virtual_opt cls name =
  match Hashtbl.find_opt cls.cvtable name with
  | Some m -> Some m
  | None -> (
    match cls.csuper with
    | Some s -> (
      match resolve_virtual_opt s name with
      | Some m as r ->
        if !cha_memo && Domain.is_main_domain () then
          Hashtbl.replace cls.cvtable name m;
        r
      | None -> None)
    | None -> None)

let resolve_virtual cls name =
  match resolve_virtual_opt cls name with
  | Some m -> m
  | None -> vm_error "class %s has no virtual method %s" cls.cname name

(* Lookup of a method declared directly on [cls] (static or not). *)
let own_method cls name =
  match List.find_opt (fun m -> String.equal m.mname name) cls.cmethods with
  | Some m -> m
  | None -> vm_error "class %s has no method %s" cls.cname name

let own_method_opt cls name =
  List.find_opt (fun m -> String.equal m.mname name) cls.cmethods

let static_method rt ~cls ~name = own_method (find_class rt cls) name

(* Symbolic method resolution, used by the profile replayer: a method
   recorded in a snapshot by (class name, method name) resolves against
   the freshly loaded classfile only when its shape still matches — same
   staticness and arity.  Renamed, vanished or re-signatured methods
   return [None] so the caller can drop the stale record instead of
   seeding state onto the wrong code. *)
let resolve_symbol rt ~cls ~name ~static ~nargs =
  match find_class_opt rt cls with
  | None -> None
  | Some c -> (
    match own_method_opt c name with
    | Some m when m.mstatic = static && m.mnargs = nargs -> Some m
    | Some _ | None -> None)

let is_subclass sub super =
  let rec go c =
    c.cid = super.cid || match c.csuper with Some s -> go s | None -> false
  in
  go sub

let has_flag cls f = List.mem f cls.cflags

(* Class-hierarchy analysis: no strict subclass of [cls] (re)defines
   [name], so a virtual call on a receiver statically typed [cls] always
   resolves to [resolve_virtual cls name].  The full class-table scan is
   memoized per (cid, name) in [rt.cha_cache] — compile-time CHA was
   quadratic during warm-up — and reset by [Runtime.hierarchy_changed].
   Queries arrive from background JIT workers, hence the lock. *)
let no_override_below rt cls name =
  let key = (cls.cid, name) in
  Runtime.with_tier_lock rt (fun () ->
      match Hashtbl.find_opt rt.cha_cache key with
      | Some ans -> ans
      | None ->
        let overridden = ref false in
        Hashtbl.iter
          (fun _ c ->
            if c.cid <> cls.cid && is_subclass c cls then
              if List.exists (fun m -> String.equal m.mname name) c.cmethods
              then overridden := true)
          rt.classes;
        let ans = not !overridden in
        if !cha_memo then Hashtbl.replace rt.cha_cache key ans;
        ans)
