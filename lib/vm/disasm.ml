(* Human-readable dumps of bytecode methods and classes. *)

open Types

let iop_name = function
  | Add -> "iadd" | Sub -> "isub" | Mul -> "imul" | Div -> "idiv"
  | Rem -> "irem" | And -> "iand" | Or -> "ior" | Xor -> "ixor"
  | Shl -> "ishl" | Shr -> "ishr"

let fop_name = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_instr ppf = function
  | Const v -> Format.fprintf ppf "const %a" Value.pp v
  | Load n -> Format.fprintf ppf "load %d" n
  | Store n -> Format.fprintf ppf "store %d" n
  | Dup -> Format.fprintf ppf "dup"
  | Pop -> Format.fprintf ppf "pop"
  | Swap -> Format.fprintf ppf "swap"
  | Iop op -> Format.fprintf ppf "%s" (iop_name op)
  | Ineg -> Format.fprintf ppf "ineg"
  | Fop op -> Format.fprintf ppf "%s" (fop_name op)
  | Fneg -> Format.fprintf ppf "fneg"
  | I2f -> Format.fprintf ppf "i2f"
  | F2i -> Format.fprintf ppf "f2i"
  | If (c, t) -> Format.fprintf ppf "if_icmp%s -> %d" (cond_name c) t
  | Iff (c, t) -> Format.fprintf ppf "if_fcmp%s -> %d" (cond_name c) t
  | Ifz (c, t) -> Format.fprintf ppf "if%s -> %d" (cond_name c) t
  | Ifnull (b, t) -> Format.fprintf ppf "if%snull -> %d" (if b then "" else "non") t
  | Goto t -> Format.fprintf ppf "goto -> %d" t
  | New c -> Format.fprintf ppf "new %s" c.cname
  | Getfield f -> Format.fprintf ppf "getfield %s.%s" f.fowner f.fname
  | Putfield f -> Format.fprintf ppf "putfield %s.%s" f.fowner f.fname
  | Getglobal g -> Format.fprintf ppf "getglobal %d" g
  | Putglobal g -> Format.fprintf ppf "putglobal %d" g
  | Newarr -> Format.fprintf ppf "newarray"
  | Newfarr -> Format.fprintf ppf "newfarray"
  | Aload -> Format.fprintf ppf "aload"
  | Astore -> Format.fprintf ppf "astore"
  | Faload -> Format.fprintf ppf "faload"
  | Fastore -> Format.fprintf ppf "fastore"
  | Alen -> Format.fprintf ppf "arraylength"
  | Invoke (Static m) ->
    Format.fprintf ppf "invokestatic %s.%s/%d" m.mowner.cname m.mname m.mnargs
  | Invoke (Special m) ->
    Format.fprintf ppf "invokespecial %s.%s/%d" m.mowner.cname m.mname m.mnargs
  | Invoke (Virtual (name, n, hint)) ->
    Format.fprintf ppf "invokevirtual %s/%d%s" name n
      (match hint with Some c -> " :" ^ c.cname | None -> "")
  | Invoke (Virtual_ic site) ->
    (* quickened site: show the live inline-cache state next to the call *)
    Format.fprintf ppf "invokevirtual %s/%d%s [%s]" site.cs_name site.cs_argc
      (match site.cs_hint with Some c -> " :" ^ c.cname | None -> "")
      (Inlinecache.state_string site)
  | Ret -> Format.fprintf ppf "return"
  | Retv -> Format.fprintf ppf "vreturn"
  | Trap s -> Format.fprintf ppf "trap %S" s

(* Print a whole method with pc labels.  [mark] draws an arrow at one pc —
   used to render the side-exit site of a [Deopt] event. *)
let pp_method ?mark ppf m =
  Format.fprintf ppf "@[<v2>%s %s.%s/%d (locals=%d, maxstack=%d):"
    (if m.mstatic then "static" else "virtual")
    m.mowner.cname m.mname m.mnargs m.mnlocals m.mmaxstack;
  (match m.mcode with
  | Native (name, _) -> Format.fprintf ppf "@,<native %s>" name
  | Bytecode code ->
    (* annotate each pc where the source line changes (line tables are
       absent for hand-assembled methods, whose output is unchanged) *)
    let prev_line = ref 0 in
    Array.iteri
      (fun pc i ->
        let arrow = if mark = Some pc then "=> " else "   " in
        let line = if pc < Array.length m.mlines then m.mlines.(pc) else 0 in
        if line > 0 && line <> !prev_line then begin
          prev_line := line;
          Format.fprintf ppf "@,%s%4d: %a  ; line %d" arrow pc pp_instr i line
        end
        else Format.fprintf ppf "@,%s%4d: %a" arrow pc pp_instr i)
      code);
  Format.fprintf ppf "@]"

let pp_class ppf c =
  Format.fprintf ppf "@[<v2>class %s%s {" c.cname
    (match c.csuper with Some s -> " extends " ^ s.cname | None -> "");
  Array.iter
    (fun f ->
      if String.equal f.fowner c.cname then
        Format.fprintf ppf "@,%svar %s (slot %d)"
          (if f.ffinal then "final " else "")
          f.fname f.fidx)
    c.cfields;
  List.iter
    (fun m -> Format.fprintf ppf "@,%a" (pp_method ?mark:None) m)
    (List.rev c.cmethods);
  Format.fprintf ppf "@]@,}"

let method_to_string ?mark m = Format.asprintf "%a" (pp_method ?mark) m
let class_to_string c = Format.asprintf "%a" pp_class c
