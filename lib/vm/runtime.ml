(* Runtime state: the heap (OCaml objects double as the VM heap, as the JVM
   heap does in the paper's Fig. 6 [Runtime] interface), globals, output
   capture, and the registry of compiled function bodies. *)

open Types

let create ?(tiering = false) ?(tier_threshold = 16) ?(tier_cache_size = 512)
    ?(jit_threads = 0) ?(jit_queue = 32) ?(inline_caches = true) () =
  {
    classes = Hashtbl.create 64;
    next_oid = 0;
    next_cid = 0;
    next_mid = 0;
    globals = Array.make 16 Null;
    next_global = 0;
    out = None;
    compiled = Hashtbl.create 16;
    next_compiled = 0;
    compile_hook = None;
    jit_hook = None;
    interp_steps = 0;
    ic_enabled = inline_caches;
    ic_sites = Hashtbl.create 64;
    cha_cache = Hashtbl.create 64;
    tiering =
      {
        t_enabled = tiering;
        t_threshold = max 1 tier_threshold;
        t_cache_size = max 1 tier_cache_size;
        t_cache = Hashtbl.create 64;
        t_order = Queue.create ();
        t_gen = Hashtbl.create 64;
        t_lock = Mutex.create ();
        t_jit_threads = max 0 jit_threads;
        t_jit_queue = max 1 jit_queue;
        t_bg_recompile = None;
        t_hier_epoch = 0;
        t_devirt_deps = Hashtbl.create 16;
        t_promote_gate = None;
        t_on_deopt = None;
        t_compiles = 0;
        t_cache_hits = 0;
        t_cache_misses = 0;
        t_evictions = 0;
        t_deopts = 0;
      };
  }

let alloc rt cls =
  let o = { oid = rt.next_oid; ocls = cls; ofields = Array.make (Array.length cls.cfields) Null } in
  rt.next_oid <- rt.next_oid + 1;
  o

let get_field o (f : field) = o.ofields.(f.fidx)

let set_field o (f : field) v = o.ofields.(f.fidx) <- v

let ensure_global rt i =
  let n = Array.length rt.globals in
  if i >= n then begin
    let g = Array.make (max (i + 1) (2 * n)) Null in
    Array.blit rt.globals 0 g 0 n;
    rt.globals <- g
  end

let get_global rt i =
  ensure_global rt i;
  rt.globals.(i)

let set_global rt i v =
  ensure_global rt i;
  rt.globals.(i) <- v

let alloc_global rt =
  let g = rt.next_global in
  rt.next_global <- g + 1;
  ensure_global rt g;
  g

let output rt s =
  match rt.out with
  | Some b -> Buffer.add_string b s
  | None -> print_string s

(* Redirect printed output into a buffer for the duration of [f]. *)
let capture_output rt f =
  let saved = rt.out in
  let b = Buffer.create 256 in
  rt.out <- Some b;
  Fun.protect ~finally:(fun () -> rt.out <- saved) (fun () ->
      let v = f () in
      (Buffer.contents b, v))

(* Compiled functions are exposed to bytecode as objects of the builtin class
   CompiledFn, whose single field holds an index into [rt.compiled].
   Guarded by the tiering lock: a background JIT worker evaluating a
   [freeze] thunk can register compiled functions concurrently with the
   mutator. *)
let register_compiled rt fn =
  let l = rt.tiering.t_lock in
  Mutex.lock l;
  let id = rt.next_compiled in
  rt.next_compiled <- id + 1;
  Hashtbl.replace rt.compiled id fn;
  Mutex.unlock l;
  id

let compiled_body rt id =
  match Hashtbl.find_opt rt.compiled id with
  | Some f -> f
  | None -> vm_error "no compiled function with id %d" id

(* ------------------------------------------------------------------ *)
(* Tiered execution: the runtime code cache                            *)

(* The label used for a method in observability events and profile tables. *)
let meth_label (m : meth) = m.mowner.cname ^ "." ^ m.mname

(* ---- source provenance lookups (line tables live on [meth]) ---- *)

(* Source line of the instruction at [pc]; 0 when unknown (no line table,
   pc out of range, or the producer had no position for that pc). *)
let line_at (m : meth) pc =
  if pc >= 0 && pc < Array.length m.mlines then m.mlines.(pc) else 0

(* The method's defining source line: the first attributed pc. *)
let meth_def_line (m : meth) =
  let n = Array.length m.mlines in
  let rec go i = if i >= n then 0 else if m.mlines.(i) > 0 then m.mlines.(i) else go (i + 1) in
  go 0

(* "Cls.meth @pc 5 (file.mini:12)" — pc always, file:line when known. *)
let meth_loc (m : meth) pc =
  let base = Printf.sprintf "%s @pc %d" (meth_label m) pc in
  match line_at m pc with
  | 0 -> base
  | l ->
    Printf.sprintf "%s (%s:%d)" base (if m.msrc = "" then "?" else m.msrc) l

let find_method_by_id rt mid : meth option =
  let found = ref None in
  Hashtbl.iter
    (fun _ cls ->
      List.iter (fun m -> if m.mid = mid then found := Some m) cls.cmethods)
    rt.classes;
  !found

(* The tiering structures (cache table, FIFO order, generation stamps) are
   shared between the mutator and background JIT worker domains, so every
   structural access goes through [t_lock].  The per-call dispatch
   [tiered_fn] never touches them — it reads only [m.mtier]. *)
let with_tier_lock rt f =
  let l = rt.tiering.t_lock in
  Mutex.lock l;
  match f () with
  | v ->
    Mutex.unlock l;
    v
  | exception e ->
    Mutex.unlock l;
    raise e

let tier_gen_unlocked rt mid =
  match Hashtbl.find_opt rt.tiering.t_gen mid with Some g -> g | None -> 0

let tier_gen rt mid = with_tier_lock rt (fun () -> tier_gen_unlocked rt mid)

(* Evict the oldest resident entry (FIFO; caller holds [t_lock]).  Queue
   entries may be stale (invalidated or re-installed methods); skip until a
   live one is found. *)
let rec tier_evict rt =
  let t = rt.tiering in
  match Queue.take_opt t.t_order with
  | None -> ()
  | Some mid -> (
    match Hashtbl.find_opt t.t_cache mid with
    | None -> tier_evict rt (* stale queue entry *)
    | Some e ->
      Hashtbl.remove t.t_cache mid;
      (* back to cold: the method may become hot and recompile later *)
      (match e.ce_meth.mtier with
      | Tier_compiled _ -> e.ce_meth.mtier <- Tier_cold
      | _ -> ());
      t.t_evictions <- t.t_evictions + 1;
      if !Obs.enabled then
        Obs.emit
          (Obs.Cache_evict
             {
               meth = meth_label e.ce_meth;
               mid = e.ce_meth.mid;
               occ = Hashtbl.length t.t_cache;
             });
      if !Forensics.on then
        Forensics.record ~mid:e.ce_meth.mid ~meth:(meth_label e.ce_meth)
          ~cause:
            (Forensics.Eviction_pressure
               { occupancy = Hashtbl.length t.t_cache; capacity = t.t_cache_size })
          Forensics.Evict)

(* Record that [m]'s installed code speculates on virtual dispatch of each
   name in [deps] (caller holds [t_lock]); [hierarchy_changed] walks the
   buckets to invalidate every dependent method. *)
let devirt_register_unlocked rt deps (m : meth) =
  List.iter
    (fun name ->
      let bucket =
        match Hashtbl.find_opt rt.tiering.t_devirt_deps name with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace rt.tiering.t_devirt_deps name b;
          b
      in
      if not (List.exists (fun (m' : meth) -> m'.mid = m.mid) !bucket) then
        bucket := m :: !bucket)
    deps;
  if !Forensics.on && deps <> [] then
    Forensics.record ~mid:m.mid ~meth:(meth_label m)
      (Forensics.Devirt_install { deps })

let devirt_register rt deps m =
  with_tier_lock rt (fun () -> devirt_register_unlocked rt deps m)

let hier_epoch rt = with_tier_lock rt (fun () -> rt.tiering.t_hier_epoch)

let tier_install_unlocked rt ?(deps = []) (m : meth) fn =
  let t = rt.tiering in
  let entry = { ce_meth = m; ce_fn = fn; ce_gen = tier_gen_unlocked rt m.mid } in
  (* forced eviction pressure: behave as if the cache were full on this
     install, regardless of occupancy *)
  if !Chaos.on && Chaos.fire Chaos.cache_evict then tier_evict rt;
  if
    (not (Hashtbl.mem t.t_cache m.mid))
    && Hashtbl.length t.t_cache >= t.t_cache_size
  then tier_evict rt;
  Hashtbl.replace t.t_cache m.mid entry;
  Queue.add m.mid t.t_order;
  devirt_register_unlocked rt deps m;
  m.mtier <- Tier_compiled fn;
  if !Obs.enabled then
    Obs.emit
      (Obs.Cache_install
         {
           meth = meth_label m;
           mid = m.mid;
           gen = entry.ce_gen;
           occ = Hashtbl.length t.t_cache;
         });
  if !Forensics.on then
    Forensics.record ~mid:m.mid ~meth:(meth_label m)
      (Forensics.Install { gen = entry.ce_gen })

let tier_install ?deps rt m fn =
  with_tier_lock rt (fun () -> tier_install_unlocked rt ?deps m fn)

(* The atomic-publish primitive of the background JIT: install [fn] only if
   the method's generation still equals [gen] (the stamp read when the
   worker started compiling) — and, when the compile speculated on receiver
   types ([deps] non-empty), only if the class-hierarchy epoch still equals
   [epoch] (read at compile start).  An invalidation or a dispatch-changing
   [Classfile.add_method] that raced the compile bumped the corresponding
   stamp, so the stale entry point is discarded and the caller decides
   whether to requeue.  Returns whether the install happened. *)
let tier_install_if_current rt (m : meth) ~gen ?epoch ?(deps = []) fn =
  with_tier_lock rt (fun () ->
      let epoch_ok =
        deps = []
        ||
        match epoch with
        | None -> true
        | Some e -> rt.tiering.t_hier_epoch = e
      in
      if epoch_ok && tier_gen_unlocked rt m.mid = gen then begin
        tier_install_unlocked rt ~deps m fn;
        true
      end
      else begin
        if !Forensics.on then
          Forensics.record ~mid:m.mid ~meth:(meth_label m)
            ~cause:
              (if not epoch_ok then
                 Forensics.Epoch_mismatch
                   {
                     expected = Option.value ~default:(-1) epoch;
                     found = rt.tiering.t_hier_epoch;
                   }
               else
                 Forensics.Gen_mismatch
                   { expected = gen; found = tier_gen_unlocked rt m.mid })
            Forensics.Discard;
        false
      end)

(* Drop the installed code for [m] and bump its generation stamp, so that
   stale entries can never be re-activated (the [Lancet.stable] recompile
   path and explicit invalidation both land here).  [why] is the journaled
   cause: recompile exit, devirt-miss threshold, hierarchy change, ... *)
let tier_invalidate_unlocked ?(why = Forensics.Unattributed) rt (m : meth) =
  let t = rt.tiering in
  Hashtbl.replace t.t_gen m.mid (tier_gen_unlocked rt m.mid + 1);
  Hashtbl.remove t.t_cache m.mid;
  (match m.mtier with Tier_compiled _ -> m.mtier <- Tier_cold | _ -> ());
  if !Obs.enabled then
    Obs.emit
      (Obs.Cache_invalidate
         {
           meth = meth_label m;
           mid = m.mid;
           gen = tier_gen_unlocked rt m.mid;
           occ = Hashtbl.length t.t_cache;
         });
  if !Forensics.on then
    Forensics.record ~mid:m.mid ~meth:(meth_label m) ~cause:why
      (Forensics.Invalidate { gen = tier_gen_unlocked rt m.mid })

let tier_invalidate ?why rt (m : meth) =
  with_tier_lock rt (fun () -> tier_invalidate_unlocked ?why rt m)

(* Invalidation fan-out for a dispatch-affecting hierarchy mutation (a
   non-static [Classfile.add_method]): flush every interpreter inline cache
   for [name], drop the memoized CHA answers, bump the hierarchy epoch (so
   in-flight speculative compiles discard on install) and invalidate every
   installed method that speculated on dispatch of [name].  Runs on the
   mutator; the IC reset touches mutator-only structures, the rest is under
   [t_lock]. *)
let hierarchy_changed rt ~name =
  Hashtbl.iter
    (fun _ (site : callsite) ->
      if String.equal site.cs_name name then
        match site.cs_state with
        | Ic_empty -> ()
        | _ -> site.cs_state <- Ic_empty)
    rt.ic_sites;
  with_tier_lock rt (fun () ->
      Hashtbl.reset rt.cha_cache;
      rt.tiering.t_hier_epoch <- rt.tiering.t_hier_epoch + 1;
      let why =
        Forensics.Hier_change { epoch = rt.tiering.t_hier_epoch; name }
      in
      match Hashtbl.find_opt rt.tiering.t_devirt_deps name with
      | None -> ()
      | Some bucket ->
        let ms = !bucket in
        Hashtbl.remove rt.tiering.t_devirt_deps name;
        List.iter
          (fun m ->
            if !Forensics.on then
              Forensics.record ~mid:m.mid ~meth:(meth_label m) ~cause:why
                (Forensics.Devirt_kill { name });
            tier_invalidate_unlocked ~why rt m)
          ms)

(* Promote a hot method through the installed [jit_hook]; a hook failure
   (or absence of a result) blacklists the method so we never retry. *)
let tier_promote rt (m : meth) : (value array -> value) option =
  match rt.jit_hook with
  | None -> None
  | Some hook -> (
    m.mtier <- Tier_compiling;
    if !Obs.enabled then
      Obs.emit
        (Obs.Tier_promote
           {
             meth = meth_label m;
             mid = m.mid;
             calls = m.mcalls;
             backedges = m.mbackedges;
           });
    if !Forensics.on then
      Forensics.record ~mid:m.mid ~meth:(meth_label m)
        ~cause:(Forensics.Hotness { calls = m.mcalls; backedges = m.mbackedges })
        Forensics.Promote;
    (* [t_compiles] is counted at the single place a graph is actually
       built — [Tiering.compile_method_dyn] — so initial compiles and
       on-exit recompiles use the same accounting path. *)
    match hook rt m with
    | Jit_compiled fn ->
      tier_install rt m fn;
      Some fn
    | Jit_pending ->
      (* queued on the background compile queue: the worker publishes into
         the cache when done; meanwhile the interpreter keeps running the
         method at tier 0 (the hook owns [mtier] from here) *)
      None
    | Jit_declined ->
      m.mtier <- Tier_blacklisted;
      None
    | exception _ ->
      m.mtier <- Tier_blacklisted;
      None)

(* The per-call tier dispatch used by the interpreter: return the compiled
   entry point when one is installed, promoting the method first if it just
   crossed the hotness threshold. *)
let tiered_fn rt (m : meth) : (value array -> value) option =
  match m.mtier with
  | Tier_compiled fn ->
    rt.tiering.t_cache_hits <- rt.tiering.t_cache_hits + 1;
    Some fn
  | Tier_compiling | Tier_blacklisted -> None
  | Tier_cold ->
    let t = rt.tiering in
    if not t.t_enabled then None
    else begin
      t.t_cache_misses <- t.t_cache_misses + 1;
      if
        m.mcalls + m.mbackedges >= t.t_threshold
        && (match t.t_promote_gate with None -> true | Some gate -> gate m)
      then tier_promote rt m
      else None
    end

(* Aggregate inline-cache counters over all quickened sites:
   (hits, misses, mono, poly, mega) — the last three count sites by their
   current state. *)
let ic_stats rt =
  let hits = ref 0 and misses = ref 0 in
  let mono = ref 0 and poly = ref 0 and mega = ref 0 in
  Hashtbl.iter
    (fun _ (s : callsite) ->
      hits := !hits + s.cs_hits;
      misses := !misses + s.cs_misses;
      match s.cs_state with
      | Ic_empty -> ()
      | Ic_mono _ -> incr mono
      | Ic_poly _ -> incr poly
      | Ic_mega -> incr mega)
    rt.ic_sites;
  (!hits, !misses, !mono, !poly, !mega)

let tier_stats_string rt =
  let t = rt.tiering in
  let ic_hits, ic_misses, mono, poly, mega = ic_stats rt in
  Printf.sprintf
    "compiles=%d cache_hits=%d cache_misses=%d evictions=%d deopts=%d \
     interp_steps=%d ic_hits=%d ic_misses=%d ic_sites=%d(mono=%d poly=%d \
     mega=%d)"
    t.t_compiles t.t_cache_hits t.t_cache_misses t.t_evictions t.t_deopts
    rt.interp_steps ic_hits ic_misses
    (Hashtbl.length rt.ic_sites)
    mono poly mega
