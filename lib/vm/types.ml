(* Core data model of the bytecode VM: runtime values, classes, methods and
   instructions are mutually recursive (an object points to its class, a class
   to its methods, a method's code to classes and fields), so they live in one
   module. Operations are in the sibling modules [Value], [Classfile],
   [Runtime], [Interp]. *)

type value =
  | Null
  | Int of int (* ints, booleans (0/1) and characters *)
  | Float of float
  | Str of string (* immutable string primitive *)
  | Obj of obj
  | Arr of value array
  | Farr of float array

and obj = {
  oid : int; (* unique identity, used by the abstract heap *)
  ocls : cls;
  ofields : value array;
}

and cls = {
  cid : int;
  cname : string;
  csuper : cls option;
  cfields : field array; (* flattened: inherited fields first *)
  mutable cmethods : meth list; (* own methods, most recent first *)
  cvtable : (string, meth) Hashtbl.t; (* resolved dispatch table *)
  cflags : class_flag list;
}

and class_flag =
  | Cf_js (* DOM/JS marker interface: calls cross-compile to JavaScript *)

and field = {
  fowner : string; (* defining class name *)
  fname : string;
  fidx : int; (* slot in [ofields] *)
  ffinal : bool;
}

and meth = {
  mid : int;
  mname : string;
  mowner : cls;
  mstatic : bool;
  mnargs : int; (* declared parameters, excluding the receiver *)
  mutable mnlocals : int; (* local slots incl. receiver and parameters *)
  mutable mmaxstack : int;
  mutable mcode : code;
  (* source provenance: [mlines.(pc)] is the source line the instruction at
     [pc] was generated from (0 = unknown); [||] when the producer supplied
     no positions (hand-assembled code, natives).  [msrc] names the source
     file for diagnostics; "" = unknown. *)
  mutable mlines : int array;
  mutable msrc : string;
  (* tiered-execution profiling: bumped by the interpreter, read by the
     promotion logic in [Runtime.tiered_fn] *)
  mutable mcalls : int; (* invocation counter *)
  mutable mbackedges : int; (* backward-jump counter *)
  mutable mtier : tier_state;
}

and tier_state =
  | Tier_cold (* interpreted; eligible for promotion once hot *)
  | Tier_compiling
    (* promotion in flight — compiling synchronously on the mutator, or
       queued/being compiled on a background JIT worker; blocks re-entrant
       promotion either way *)
  | Tier_compiled of (value array -> value) (* tier-1 entry point *)
  | Tier_blacklisted (* compilation failed; stay in the interpreter *)

(* What a [jit_hook] did with a hot method.  [Jit_pending] is the background
   compilation answer: the request is queued, the interpreter keeps running
   the method at tier 0 and the worker publishes the entry point into the
   code cache when it is ready. *)
and jit_result =
  | Jit_compiled of (value array -> value) (* compiled now: install and call *)
  | Jit_pending (* queued for background compilation; stay on tier 0 *)
  | Jit_declined (* compilation failed or refused: blacklist the method *)

and code =
  | Bytecode of instr array
  | Native of string * (runtime -> value array -> value)
    (* the string names the native for disassembly and macro matching *)

and instr =
  | Const of value
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Swap
  | Iop of iop (* pops y then x, pushes [x op y] *)
  | Ineg
  | Fop of fop
  | Fneg
  | I2f
  | F2i
  | If of cond * int (* pops y then x (ints); jumps when [x cond y] *)
  | Iff of cond * int (* float comparison branch *)
  | Ifz of cond * int (* pops x; jumps when [x cond 0] *)
  | Ifnull of bool * int (* jumps when top is Null (true) / non-Null (false) *)
  | Goto of int
  | New of cls
  | Getfield of field
  | Putfield of field (* pops value then receiver *)
  | Getglobal of int
  | Putglobal of int
  | Newarr (* pops length, pushes fresh value array *)
  | Newfarr (* pops length, pushes fresh float array *)
  | Aload (* pops index then array *)
  | Astore (* pops value, index, array *)
  | Faload
  | Fastore
  | Alen (* length of either array kind *)
  | Invoke of invoke
  | Ret (* return Null *)
  | Retv (* return top of stack *)
  | Trap of string (* unconditional runtime failure *)

and iop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

and fop = FAdd | FSub | FMul | FDiv

and cond = Eq | Ne | Lt | Le | Gt | Ge

and invoke =
  | Static of meth
  | Special of meth (* direct call: constructors, super calls *)
  | Virtual of string * int * cls option
    (* method name, parameter count, optional static receiver-type hint
       emitted by the front-end (used for CHA devirtualization) *)
  | Virtual_ic of callsite
    (* quickened virtual call: the interpreter rewrites [Virtual] to this on
       first execution, threading the site's mutable inline cache *)

(* Per-call-site inline cache: receiver class -> resolved method.  A site
   starts [Ic_empty], quickens to monomorphic on first dispatch, grows a
   small polymorphic cache on miss and degrades to megamorphic (generic
   lookup) beyond [Inlinecache.poly_limit].  The entry counts double as the
   receiver-type profile consumed by the JIT's speculative devirtualizer. *)
and ic_entry = {
  ice_cls : cls;
  ice_meth : meth;
  mutable ice_count : int; (* dispatches through this entry *)
}

and ic_state =
  | Ic_empty
  | Ic_mono of ic_entry
  | Ic_poly of ic_entry array (* 2..poly_limit entries, insertion order *)
  | Ic_mega

and callsite = {
  cs_mid : int; (* enclosing method *)
  cs_pc : int; (* pc of the invokevirtual *)
  cs_name : string;
  cs_argc : int;
  cs_hint : cls option;
  mutable cs_state : ic_state;
  mutable cs_hits : int;
  mutable cs_misses : int;
}

and runtime = {
  classes : (string, cls) Hashtbl.t;
  mutable next_oid : int;
  mutable next_cid : int;
  mutable next_mid : int;
  mutable globals : value array;
  mutable next_global : int; (* allocation cursor for global slots *)
  mutable out : Buffer.t option; (* when set, println etc. append here *)
  compiled : (int, value array -> value) Hashtbl.t;
    (* bodies of CompiledFn objects, keyed by their id field *)
  mutable next_compiled : int;
  mutable compile_hook : (runtime -> value -> value) option;
    (* installed by Lancet: implements the [Lancet.compile] native *)
  mutable jit_hook : (runtime -> meth -> jit_result) option;
    (* installed by Lancet: compiles a hot bytecode method for the tiered
       execution engine, either synchronously ([Jit_compiled]) or by
       enqueueing it for a background JIT worker ([Jit_pending]);
       [Jit_declined] blacklists the method *)
  mutable interp_steps : int; (* instruction counter, for tests/benches *)
  mutable ic_enabled : bool; (* quicken invokevirtual sites to inline caches *)
  ic_sites : (int * int, callsite) Hashtbl.t;
    (* (mid, pc) -> quickened call site; mutator-only structure (sites are
       created and transitioned by the interpreter; JIT workers read the
       word-sized [cs_state] field of individual sites) *)
  cha_cache : (int * string, bool) Hashtbl.t;
    (* (cid, name) -> [Classfile.no_override_below] answer; guarded by
       [t_lock] (compile-time CHA queries arrive from worker domains) and
       reset wholesale on hierarchy mutation *)
  tiering : tiering;
}

(* Tiered execution: knobs, the runtime code cache and its statistics.
   The cache maps method id -> installed entry; a per-method generation
   stamp lets [stable]-style recompiles invalidate cleanly.  With background
   compilation enabled, installs arrive from JIT worker domains while the
   mutator invalidates and evicts, so the cache structures are guarded by
   [t_lock]; the per-call dispatch ([Runtime.tiered_fn]) stays lock-free by
   reading only the word-sized [mtier] field. *)
and tiering = {
  mutable t_enabled : bool;
  mutable t_threshold : int; (* promote when mcalls + mbackedges reach this *)
  mutable t_cache_size : int; (* max resident compiled methods *)
  t_cache : (int, cache_entry) Hashtbl.t; (* method id -> entry *)
  t_order : int Queue.t; (* FIFO installation order, drives eviction *)
  t_gen : (int, int) Hashtbl.t; (* method id -> current generation *)
  t_lock : Mutex.t; (* guards cache/order/gen across mutator and workers *)
  mutable t_jit_threads : int; (* background JIT worker domains; 0 = sync *)
  mutable t_jit_queue : int; (* bound on the background compile queue *)
  mutable t_bg_recompile : (meth -> unit) option;
    (* installed by the background JIT: route deopt-triggered recompiles
       through the compile queue instead of rebuilding on the mutator *)
  mutable t_hier_epoch : int;
    (* class-hierarchy epoch, bumped under [t_lock] whenever a method
       (re)definition can change virtual dispatch; an in-flight compile
       that speculated on receiver types installs only if the epoch it
       read at compile start is still current *)
  t_devirt_deps : (string, meth list ref) Hashtbl.t;
    (* method name -> compiled methods whose installed code speculates on
       dispatch of that name (IC feedback or CHA); [hierarchy_changed]
       invalidates the bucket.  Guarded by [t_lock]. *)
  mutable t_promote_gate : (meth -> bool) option;
    (* consulted after the hotness threshold and before [tier_promote];
       the governor installs a gate to hold demoted methods back until
       their exponential backoff is served *)
  mutable t_on_deopt : (meth -> string -> int -> int -> bool) option;
    (* [f m tag pc line] called on every guard deopt; the governor's
       circuit breaker counts strikes here.  Returning [true] means the
       governor took over remediation (demote/blacklist) and the normal
       deopt handling (recompile, devirt reprofile) must be skipped *)
  mutable t_compiles : int;
  mutable t_cache_hits : int;
  mutable t_cache_misses : int;
  mutable t_evictions : int;
  mutable t_deopts : int;
}

and cache_entry = {
  ce_meth : meth;
  ce_fn : value array -> value;
  ce_gen : int; (* generation the entry was compiled at *)
}

exception Vm_error of string

let vm_error fmt = Format.kasprintf (fun s -> raise (Vm_error s)) fmt
