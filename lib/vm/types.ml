(* Core data model of the bytecode VM: runtime values, classes, methods and
   instructions are mutually recursive (an object points to its class, a class
   to its methods, a method's code to classes and fields), so they live in one
   module. Operations are in the sibling modules [Value], [Classfile],
   [Runtime], [Interp]. *)

type value =
  | Null
  | Int of int (* ints, booleans (0/1) and characters *)
  | Float of float
  | Str of string (* immutable string primitive *)
  | Obj of obj
  | Arr of value array
  | Farr of float array

and obj = {
  oid : int; (* unique identity, used by the abstract heap *)
  ocls : cls;
  ofields : value array;
}

and cls = {
  cid : int;
  cname : string;
  csuper : cls option;
  cfields : field array; (* flattened: inherited fields first *)
  mutable cmethods : meth list; (* own methods, most recent first *)
  cvtable : (string, meth) Hashtbl.t; (* resolved dispatch table *)
  cflags : class_flag list;
}

and class_flag =
  | Cf_js (* DOM/JS marker interface: calls cross-compile to JavaScript *)

and field = {
  fowner : string; (* defining class name *)
  fname : string;
  fidx : int; (* slot in [ofields] *)
  ffinal : bool;
}

and meth = {
  mid : int;
  mname : string;
  mowner : cls;
  mstatic : bool;
  mnargs : int; (* declared parameters, excluding the receiver *)
  mutable mnlocals : int; (* local slots incl. receiver and parameters *)
  mutable mmaxstack : int;
  mutable mcode : code;
  (* source provenance: [mlines.(pc)] is the source line the instruction at
     [pc] was generated from (0 = unknown); [||] when the producer supplied
     no positions (hand-assembled code, natives).  [msrc] names the source
     file for diagnostics; "" = unknown. *)
  mutable mlines : int array;
  mutable msrc : string;
  (* tiered-execution profiling: bumped by the interpreter, read by the
     promotion logic in [Runtime.tiered_fn] *)
  mutable mcalls : int; (* invocation counter *)
  mutable mbackedges : int; (* backward-jump counter *)
  mutable mtier : tier_state;
}

and tier_state =
  | Tier_cold (* interpreted; eligible for promotion once hot *)
  | Tier_compiling (* promotion in flight: blocks re-entrant compiles *)
  | Tier_compiled of (value array -> value) (* tier-1 entry point *)
  | Tier_blacklisted (* compilation failed; stay in the interpreter *)

and code =
  | Bytecode of instr array
  | Native of string * (runtime -> value array -> value)
    (* the string names the native for disassembly and macro matching *)

and instr =
  | Const of value
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Swap
  | Iop of iop (* pops y then x, pushes [x op y] *)
  | Ineg
  | Fop of fop
  | Fneg
  | I2f
  | F2i
  | If of cond * int (* pops y then x (ints); jumps when [x cond y] *)
  | Iff of cond * int (* float comparison branch *)
  | Ifz of cond * int (* pops x; jumps when [x cond 0] *)
  | Ifnull of bool * int (* jumps when top is Null (true) / non-Null (false) *)
  | Goto of int
  | New of cls
  | Getfield of field
  | Putfield of field (* pops value then receiver *)
  | Getglobal of int
  | Putglobal of int
  | Newarr (* pops length, pushes fresh value array *)
  | Newfarr (* pops length, pushes fresh float array *)
  | Aload (* pops index then array *)
  | Astore (* pops value, index, array *)
  | Faload
  | Fastore
  | Alen (* length of either array kind *)
  | Invoke of invoke
  | Ret (* return Null *)
  | Retv (* return top of stack *)
  | Trap of string (* unconditional runtime failure *)

and iop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

and fop = FAdd | FSub | FMul | FDiv

and cond = Eq | Ne | Lt | Le | Gt | Ge

and invoke =
  | Static of meth
  | Special of meth (* direct call: constructors, super calls *)
  | Virtual of string * int * cls option
    (* method name, parameter count, optional static receiver-type hint
       emitted by the front-end (used for CHA devirtualization) *)

and runtime = {
  classes : (string, cls) Hashtbl.t;
  mutable next_oid : int;
  mutable next_cid : int;
  mutable next_mid : int;
  mutable globals : value array;
  mutable next_global : int; (* allocation cursor for global slots *)
  mutable out : Buffer.t option; (* when set, println etc. append here *)
  compiled : (int, value array -> value) Hashtbl.t;
    (* bodies of CompiledFn objects, keyed by their id field *)
  mutable next_compiled : int;
  mutable compile_hook : (runtime -> value -> value) option;
    (* installed by Lancet: implements the [Lancet.compile] native *)
  mutable jit_hook : (runtime -> meth -> (value array -> value) option) option;
    (* installed by Lancet: compiles a hot bytecode method for the tiered
       execution engine; [None] result blacklists the method *)
  mutable interp_steps : int; (* instruction counter, for tests/benches *)
  tiering : tiering;
}

(* Tiered execution: knobs, the runtime code cache and its statistics.
   The cache maps method id -> installed entry; a per-method generation
   stamp lets [stable]-style recompiles invalidate cleanly. *)
and tiering = {
  mutable t_enabled : bool;
  mutable t_threshold : int; (* promote when mcalls + mbackedges reach this *)
  mutable t_cache_size : int; (* max resident compiled methods *)
  t_cache : (int, cache_entry) Hashtbl.t; (* method id -> entry *)
  t_order : int Queue.t; (* FIFO installation order, drives eviction *)
  t_gen : (int, int) Hashtbl.t; (* method id -> current generation *)
  mutable t_compiles : int;
  mutable t_cache_hits : int;
  mutable t_cache_misses : int;
  mutable t_evictions : int;
  mutable t_deopts : int;
}

and cache_entry = {
  ce_meth : meth;
  ce_fn : value array -> value;
  ce_gen : int; (* generation the entry was compiled at *)
}

exception Vm_error of string

let vm_error fmt = Format.kasprintf (fun s -> raise (Vm_error s)) fmt
