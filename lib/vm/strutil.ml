(* Small string helpers shared across the VM, the Lancet compiler and the
   CLI.  [contains] replaces the previous per-module naive implementations
   that allocated a [String.sub] per candidate position. *)

(* Substring test without intermediate allocations: first-char probe, then a
   char-by-char comparison of the remainder.  O(|s| * |sub|) worst case but
   linear on typical inputs (method-name patterns, CLI filters). *)
let contains (s : string) (sub : string) : bool =
  let ls = String.length s and lsub = String.length sub in
  if lsub = 0 then true
  else if lsub > ls then false
  else begin
    let c0 = String.unsafe_get sub 0 in
    let limit = ls - lsub in
    let rec rest i j =
      j >= lsub || (String.unsafe_get s (i + j) = String.unsafe_get sub j && rest i (j + 1))
    in
    let rec go i =
      i <= limit && ((String.unsafe_get s i = c0 && rest i 1) || go (i + 1))
    in
    go 0
  end
