(* Per-call-site inline caches for invokevirtual, driven by bytecode
   quickening: the interpreter rewrites each [Invoke (Virtual ...)] into
   [Invoke (Virtual_ic site)] on first execution and from then on dispatch
   is a pointer compare against the cached receiver class instead of a
   superclass hashtable-chain walk.  A site monotonically degrades
   mono -> poly (up to [poly_limit] entries) -> mega; a hierarchy mutation
   ([Classfile.add_method]) resets affected sites to empty via
   [Runtime.hierarchy_changed].  The per-entry hit counts double as the
   receiver-type profile the JIT's speculative devirtualizer consumes. *)

open Types

let poly_limit = 4

let state_name = function
  | Ic_empty -> "empty"
  | Ic_mono _ -> "mono"
  | Ic_poly _ -> "poly"
  | Ic_mega -> "mega"

(* "mono:Cls" / "poly:{A,B}" / "mega" — for disassembly and explain. *)
let state_string site =
  match site.cs_state with
  | Ic_empty -> "empty"
  | Ic_mono e -> "mono:" ^ e.ice_cls.cname
  | Ic_poly es ->
    "poly:{"
    ^ String.concat ","
        (Array.to_list (Array.map (fun e -> e.ice_cls.cname) es))
    ^ "}"
  | Ic_mega -> "mega"

let site_of rt ~mid ~pc = Hashtbl.find_opt rt.ic_sites (mid, pc)

(* Per-site table for `lancet run --stats` and test goldens: one row per
   quickened site, sorted by (mid, pc) so the output is byte-diff-stable
   across runs regardless of hashtable iteration order. *)
let site_table rt =
  let sites = Hashtbl.fold (fun _ s acc -> s :: acc) rt.ic_sites [] in
  let sites =
    List.sort (fun a b -> compare (a.cs_mid, a.cs_pc) (b.cs_mid, b.cs_pc)) sites
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-5s %-5s %-24s %-14s %-28s %8s %8s\n" "mid" "pc"
       "method" "callee" "state" "hits" "misses");
  List.iter
    (fun s ->
      let label =
        match Runtime.find_method_by_id rt s.cs_mid with
        | Some m -> Runtime.meth_label m
        | None -> Printf.sprintf "mid:%d" s.cs_mid
      in
      Buffer.add_string b
        (Printf.sprintf "%-5d %-5d %-24s %-14s %-28s %8d %8d\n" s.cs_mid
           s.cs_pc label s.cs_name (state_string s) s.cs_hits s.cs_misses))
    sites;
  Buffer.contents b

let make_site rt ~mid ~pc ~name ~argc ~hint =
  let site =
    {
      cs_mid = mid;
      cs_pc = pc;
      cs_name = name;
      cs_argc = argc;
      cs_hint = hint;
      cs_state = Ic_empty;
      cs_hits = 0;
      cs_misses = 0;
    }
  in
  Hashtbl.replace rt.ic_sites (mid, pc) site;
  site

let transition ?(cause = Forensics.Unattributed) (fmeth : meth) site to_state =
  let from_state = state_name site.cs_state in
  site.cs_state <- to_state;
  if !Obs.enabled then
    Obs.emit
      (Obs.Ic_transition
         {
           meth = fmeth.mowner.cname ^ "." ^ fmeth.mname;
           mid = site.cs_mid;
           pc = site.cs_pc;
           callee = site.cs_name;
           from_state;
           to_state = state_name to_state;
         });
  if !Forensics.on then
    Forensics.record ~mid:site.cs_mid
      ~meth:(fmeth.mowner.cname ^ "." ^ fmeth.mname)
      ~cause
      (Forensics.Ic_state
         {
           pc = site.cs_pc;
           line =
             (if site.cs_pc >= 0 && site.cs_pc < Array.length fmeth.mlines then
                fmeth.mlines.(site.cs_pc)
              else 0);
           callee = site.cs_name;
           state = state_name to_state;
         })

(* Miss path: resolve through the (memoized) vtable walk and grow the
   cache one state at a time.  A megamorphic site stays megamorphic. *)
let miss (fmeth : meth) site (c : cls) =
  site.cs_misses <- site.cs_misses + 1;
  let m = Classfile.resolve_virtual c site.cs_name in
  let entry = { ice_cls = c; ice_meth = m; ice_count = 1 } in
  let cause = Forensics.Ic_miss { seen = c.cname } in
  (match site.cs_state with
  | Ic_empty -> transition ~cause fmeth site (Ic_mono entry)
  | Ic_mono e -> transition ~cause fmeth site (Ic_poly [| e; entry |])
  | Ic_poly es ->
    if Array.length es < poly_limit then
      transition ~cause fmeth site (Ic_poly (Array.append es [| entry |]))
    else transition ~cause fmeth site Ic_mega
  | Ic_mega -> ());
  m

let dispatch (fmeth : meth) site (o : obj) =
  let c = o.ocls in
  match site.cs_state with
  | Ic_mono e when e.ice_cls == c ->
    site.cs_hits <- site.cs_hits + 1;
    e.ice_count <- e.ice_count + 1;
    e.ice_meth
  | Ic_poly es ->
    let n = Array.length es in
    let rec scan i =
      if i >= n then miss fmeth site c
      else begin
        let e = Array.unsafe_get es i in
        if e.ice_cls == c then begin
          site.cs_hits <- site.cs_hits + 1;
          e.ice_count <- e.ice_count + 1;
          e.ice_meth
        end
        else scan (i + 1)
      end
    in
    scan 0
  | Ic_mega ->
    (* generic slow path; counted as a miss (the cache is not helping) *)
    site.cs_misses <- site.cs_misses + 1;
    Classfile.resolve_virtual c site.cs_name
  | Ic_mono _ | Ic_empty -> miss fmeth site c
