(* Builtin classes and native methods: Sys, Str, Math, Arr, CompiledFn and
   the user-facing Lancet API class.  The Lancet methods have interpreter
   fallbacks (freeze = force the thunk, directives = run the block, compile =
   identity unless a compiler hook is installed), mirroring the paper's
   [LancetLib] (plain signatures) / [LancetMacros] (compiler behaviour)
   pairing: every program also runs unmodified without the JIT. *)

open Types

let arg = Array.get

let bool_of v = Value.truthy v

let call_closure rt f args = Interp.call_closure rt f args

let split_on_char sep s =
  String.split_on_char sep s |> List.map (fun s -> Str s) |> Array.of_list

let install_sys rt =
  let cls = Classfile.declare_class rt ~name:"Sys" ~fields:[] () in
  let n name nargs fn = ignore (Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  n "print" 1 (fun rt a -> Runtime.output rt (Value.to_string (arg a 0)); Null);
  n "println" 1 (fun rt a ->
      Runtime.output rt (Value.to_string (arg a 0));
      Runtime.output rt "\n";
      Null);
  n "read_file" 1 (fun _ a ->
      let path = Value.to_str (arg a 0) in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Str s);
  n "write_file" 2 (fun _ a ->
      let oc = open_out_bin (Value.to_str (arg a 0)) in
      output_string oc (Value.to_str (arg a 1));
      close_out oc;
      Null);
  n "time_ms" 0 (fun _ _ -> Float (Unix.gettimeofday () *. 1000.0));
  n "steps" 0 (fun rt _ -> Int rt.interp_steps);
  n "tier_compiles" 0 (fun rt _ -> Int rt.tiering.t_compiles);
  n "tier_hits" 0 (fun rt _ -> Int rt.tiering.t_cache_hits);
  n "tier_deopts" 0 (fun rt _ -> Int rt.tiering.t_deopts);
  n "veq" 2 (fun _ a -> Value.of_bool (Value.equal (arg a 0) (arg a 1)))

let install_str rt =
  let cls = Classfile.declare_class rt ~name:"Str" ~fields:[] () in
  let n name nargs fn = ignore (Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  n "len" 1 (fun _ a -> Int (String.length (Value.to_str (arg a 0))));
  n "concat" 2 (fun _ a ->
      Str (Value.to_string (arg a 0) ^ Value.to_string (arg a 1)));
  n "split" 2 (fun _ a ->
      let s = Value.to_str (arg a 0) in
      let sep = Value.to_str (arg a 1) in
      if String.length sep <> 1 then vm_error "Str.split: separator must be one char";
      Arr (split_on_char sep.[0] s));
  n "index_of" 2 (fun _ a ->
      let s = Value.to_str (arg a 0) and sub = Value.to_str (arg a 1) in
      let ls = String.length s and lsub = String.length sub in
      let rec go i =
        if i + lsub > ls then -1
        else if String.sub s i lsub = sub then i
        else go (i + 1)
      in
      Int (go 0));
  n "char_at" 2 (fun _ a ->
      let s = Value.to_str (arg a 0) in
      Int (Char.code s.[Value.to_int (arg a 1)]));
  n "sub" 3 (fun _ a ->
      Str (String.sub (Value.to_str (arg a 0)) (Value.to_int (arg a 1))
             (Value.to_int (arg a 2))));
  n "of_int" 1 (fun _ a -> Str (string_of_int (Value.to_int (arg a 0))));
  n "of_float" 1 (fun _ a ->
      Str (Format.asprintf "%g" (Value.to_float (arg a 0))));
  n "of_char" 1 (fun _ a ->
      Str (String.make 1 (Char.chr (Value.to_int (arg a 0) land 255))));
  n "to_int" 1 (fun _ a ->
      match int_of_string_opt (String.trim (Value.to_str (arg a 0))) with
      | Some i -> Int i
      | None -> vm_error "Str.to_int: %S" (Value.to_str (arg a 0)));
  n "to_float" 1 (fun _ a ->
      match float_of_string_opt (String.trim (Value.to_str (arg a 0))) with
      | Some f -> Float f
      | None -> vm_error "Str.to_float: %S" (Value.to_str (arg a 0)));
  n "eq" 2 (fun _ a ->
      Value.of_bool (String.equal (Value.to_str (arg a 0)) (Value.to_str (arg a 1))));
  n "cmp" 2 (fun _ a ->
      Int (compare (Value.to_str (arg a 0)) (Value.to_str (arg a 1))))

let install_math rt =
  let cls = Classfile.declare_class rt ~name:"Math" ~fields:[] () in
  let n name nargs fn = ignore (Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  let f1 g = fun _ a -> Float (g (Value.to_float (arg a 0))) in
  n "sqrt" 1 (f1 sqrt);
  n "exp" 1 (f1 exp);
  n "log" 1 (f1 log);
  n "fabs" 1 (f1 abs_float);
  n "pow" 2 (fun _ a ->
      Float (Float.pow (Value.to_float (arg a 0)) (Value.to_float (arg a 1))));
  n "iabs" 1 (fun _ a -> Int (abs (Value.to_int (arg a 0))));
  n "imin" 2 (fun _ a -> Int (min (Value.to_int (arg a 0)) (Value.to_int (arg a 1))));
  n "imax" 2 (fun _ a -> Int (max (Value.to_int (arg a 0)) (Value.to_int (arg a 1))));
  n "fmin" 2 (fun _ a -> Float (min (Value.to_float (arg a 0)) (Value.to_float (arg a 1))));
  n "fmax" 2 (fun _ a -> Float (max (Value.to_float (arg a 0)) (Value.to_float (arg a 1))))

let install_arr rt =
  let cls = Classfile.declare_class rt ~name:"Arr" ~fields:[] () in
  let n name nargs fn = ignore (Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  n "copy" 1 (fun _ a ->
      match arg a 0 with
      | Arr x -> Arr (Array.copy x)
      | Farr x -> Farr (Array.copy x)
      | _ -> vm_error "Arr.copy: not an array");
  n "fill" 2 (fun _ a ->
      (match arg a 0 with
      | Arr x -> Array.fill x 0 (Array.length x) (arg a 1)
      | Farr x -> Array.fill x 0 (Array.length x) (Value.to_float (arg a 1))
      | _ -> vm_error "Arr.fill: not an array");
      Null)

(* CompiledFn: an object whose [apply] runs an OCaml closure registered in
   [rt.compiled].  Used for the results of Lancet.compile and to pass
   OCaml-level functions into bytecode. *)
let install_compiledfn rt =
  let cls =
    Classfile.declare_class rt ~name:"CompiledFn" ~fields:[ ("id", true) ] ()
  in
  let apply rt a =
    match arg a 0 with
    | Obj o ->
      let id = Value.to_int o.ofields.(0) in
      (Runtime.compiled_body rt id) (Array.sub a 1 (Array.length a - 1))
    | _ -> vm_error "CompiledFn.apply on non-object"
  in
  ignore (Classfile.add_native rt cls ~name:"apply" ~nargs:4 apply)

let make_compiled_fn rt fn =
  let cls = Classfile.find_class rt "CompiledFn" in
  let o = Runtime.alloc rt cls in
  o.ofields.(0) <- Int (Runtime.register_compiled rt fn);
  Obj o

let install_lancet rt =
  let cls = Classfile.declare_class rt ~name:"Lancet" ~fields:[] () in
  let n name nargs fn = ignore (Classfile.add_native rt cls ~name ~static:true ~nargs fn) in
  let run_block = fun rt a -> call_closure rt (arg a 0) [||] in
  n "compile" 1 (fun rt a ->
      match rt.compile_hook with
      | Some hook -> hook rt (arg a 0)
      | None -> arg a 0);
  n "freeze" 1 run_block;
  n "unroll" 1 (fun _ a -> arg a 0);
  n "ntimes" 2 (fun rt a ->
      let count = Value.to_int (arg a 0) in
      for i = 0 to count - 1 do
        ignore (call_closure rt (arg a 1) [| Int i |])
      done;
      Null);
  n "likely" 1 (fun _ a -> arg a 0);
  n "speculate" 1 (fun _ a -> arg a 0);
  n "stable" 1 (fun rt a -> call_closure rt (arg a 0) [||]);
  n "slowpath" 0 (fun _ _ -> Null);
  n "fastpath" 0 (fun _ _ -> Null);
  n "reset" 1 run_block;
  n "shift" 1 (fun _ _ ->
      vm_error "Lancet.shift captures continuations only in compiled code");
  n "inline_always" 1 run_block;
  n "inline_never" 1 run_block;
  n "inline_nonrec" 1 run_block;
  n "at_scope" 3 (fun rt a -> call_closure rt (arg a 2) [||]);
  n "in_scope" 3 (fun rt a -> call_closure rt (arg a 2) [||]);
  n "unroll_top_level" 1 run_block;
  n "check_no_alloc" 1 run_block;
  n "taint" 1 (fun _ a -> arg a 0);
  n "untaint" 1 (fun _ a -> arg a 0);
  n "check_no_leak" 1 run_block;
  ignore bool_of

let install rt =
  install_sys rt;
  install_str rt;
  install_math rt;
  install_arr rt;
  install_compiledfn rt;
  install_lancet rt

let boot ?tiering ?tier_threshold ?tier_cache_size ?jit_threads ?jit_queue
    ?inline_caches () =
  let rt =
    Runtime.create ?tiering ?tier_threshold ?tier_cache_size ?jit_threads
      ?jit_queue ?inline_caches ()
  in
  install rt;
  rt
