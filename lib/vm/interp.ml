(* The bytecode interpreter.  Mirrors the Graal-derived interpreter of the
   paper's Fig. 6: linked [frame] records (control, environment and
   continuation of a CESK machine), an operand stack mapped onto each frame,
   and a [loop] that executes instructions of the current frame and performs
   control transfers by swapping the current frame.

   Tier 0 of the tiered execution engine: every bytecode invoke bumps the
   callee's invocation counter and every backward jump bumps the enclosing
   method's back-edge counter; when their sum crosses the runtime's hotness
   threshold, [Runtime.tiered_fn] hands the method to the Lancet pipeline
   (via [rt.jit_hook]) and subsequent calls dispatch to the compiled entry
   point in the runtime code cache. *)

open Types

type frame = {
  fmeth : meth;
  fcode : instr array; (* the Bytecode payload, hoisted out of [step] *)
  mutable pc : int;
  locals : value array;
  ostack : value array;
  mutable sp : int; (* next free stack slot *)
  mutable parent : frame option;
}

let code_of meth =
  match meth.mcode with
  | Bytecode c -> c
  | Native _ -> vm_error "no bytecode for native method %s" meth.mname

let make_frame ?parent meth args =
  let locals = Array.make (max meth.mnlocals (Array.length args)) Null in
  Array.blit args 0 locals 0 (Array.length args);
  {
    fmeth = meth;
    fcode = code_of meth;
    pc = 0;
    locals;
    ostack = Array.make (max meth.mmaxstack 4) Null;
    sp = 0;
    parent;
  }

(* Rebuild an interpreter frame from deoptimization metadata (used by the
   side-exit / continuation machinery in Lancet). *)
let rebuild_frame ~meth ~pc ~locals ~ostack ~sp ~parent =
  { fmeth = meth; fcode = code_of meth; pc; locals; ostack; sp; parent }

let push f v =
  f.ostack.(f.sp) <- v;
  f.sp <- f.sp + 1

let pop f =
  f.sp <- f.sp - 1;
  f.ostack.(f.sp)

let pop_int f = Value.to_int (pop f)
let pop_float f = Value.to_float (pop f)

let no_args : value array = [||]

let pop_args f n =
  if n = 0 then no_args
  else begin
    let a = Array.make n Null in
    for i = n - 1 downto 0 do
      a.(i) <- pop f
    done;
    a
  end

(* Frame for a bytecode call whose arguments sit on [caller]'s operand
   stack: pop them straight into the callee's local slots, avoiding the
   intermediate argument array of [pop_args]. *)
let frame_of_call meth caller nargs =
  let locals = Array.make (max meth.mnlocals nargs) Null in
  for i = nargs - 1 downto 0 do
    caller.sp <- caller.sp - 1;
    locals.(i) <- caller.ostack.(caller.sp)
  done;
  {
    fmeth = meth;
    fcode = code_of meth;
    pc = 0;
    locals;
    ostack = Array.make (max meth.mmaxstack 4) Null;
    sp = 0;
    parent = Some caller;
  }

exception Return_from_root of value

(* Where frame [f] currently is, as "Cls.meth @pc N (file:line)".  [pc] has
   already advanced past the faulting instruction when [step] raises. *)
let frame_loc f = Runtime.meth_loc f.fmeth (max 0 (f.pc - 1))

(* One timer-driven profiler sample: the whole frame chain, innermost frame
   first, each frame resolved to (method label, source line). *)
let emit_stack_sample f =
  let rec walk acc fo =
    match fo with
    | None -> List.rev acc
    | Some fr ->
      let pc = max 0 (min fr.pc (Array.length fr.fcode - 1)) in
      walk
        ((Runtime.meth_label fr.fmeth, Runtime.line_at fr.fmeth pc) :: acc)
        fr.parent
  in
  Obs.emit (Obs.Stack_sample { stack = walk [] (Some f) })

(* Run the frame chain rooted (via parents) at [frame] to completion and
   return the value produced by the outermost frame of the chain.  This is
   the single entry point used both for fresh calls and for resuming
   reconstructed continuations after deoptimization. *)
let resume rt frame =
  let current = ref (Some frame) in
  let result = ref Null in
  let return_value v =
    match !current with
    | None -> assert false
    | Some f -> (
      match f.parent with
      | None ->
        result := v;
        current := None
      | Some p ->
        push p v;
        current := Some p)
  in
  (* Invoke [meth] whose [nargs] arguments (receiver included) lie on top of
     [f]'s operand stack.  Bytecode callees first consult the tiered code
     cache; natives and compiled entry points complete within [f]. *)
  let invoke f meth nargs =
    match meth.mcode with
    | Native (_, fn) -> push f (fn rt (pop_args f nargs))
    | Bytecode _ -> (
      meth.mcalls <- meth.mcalls + 1;
      if !Obs.enabled && meth.mcalls land 63 = 1 then
        Obs.emit
          (Obs.Interp_call
             {
               meth = Runtime.meth_label meth;
               mid = meth.mid;
               calls = meth.mcalls;
               backedges = meth.mbackedges;
             });
      (* semantics-preserving hierarchy churn: the invalidation fan-out of
         an [add_method] (IC flush, epoch bump, devirt kill) without the
         dispatch change *)
      if !Chaos.on && Chaos.fire Chaos.hier_churn then
        Runtime.hierarchy_changed rt ~name:meth.mname;
      match Runtime.tiered_fn rt meth with
      | Some cfn -> push f (cfn (pop_args f nargs))
      | None -> current := Some (frame_of_call meth f nargs))
  and jump f t =
    if t < f.pc then f.fmeth.mbackedges <- f.fmeth.mbackedges + 1;
    f.pc <- t
  in
  let step f =
    let i = f.fcode.(f.pc) in
    f.pc <- f.pc + 1;
    rt.interp_steps <- rt.interp_steps + 1;
    match i with
    | Const v -> push f v
    | Load n -> push f f.locals.(n)
    | Store n -> f.locals.(n) <- pop f
    | Dup ->
      let v = f.ostack.(f.sp - 1) in
      push f v
    | Pop -> ignore (pop f)
    | Swap ->
      let a = pop f and b = pop f in
      push f a;
      push f b
    | Iop op ->
      let y = pop_int f in
      let x = pop_int f in
      push f (Int (Value.iop_apply op x y))
    | Ineg -> push f (Int (Value.wrap32 (-pop_int f)))
    | Fop op ->
      let y = pop_float f in
      let x = pop_float f in
      push f (Float (Value.fop_apply op x y))
    | Fneg -> push f (Float (-.pop_float f))
    | I2f -> push f (Float (float_of_int (pop_int f)))
    | F2i -> push f (Int (Value.wrap32 (int_of_float (pop_float f))))
    | If (c, t) ->
      let y = pop_int f in
      let x = pop_int f in
      if Value.cond_apply c x y then jump f t
    | Iff (c, t) ->
      let y = pop_float f in
      let x = pop_float f in
      if Value.fcond_apply c x y then jump f t
    | Ifz (c, t) ->
      let x = pop_int f in
      if Value.cond_apply c x 0 then jump f t
    | Ifnull (when_null, t) ->
      let v = pop f in
      let is_null = match v with Null -> true | _ -> false in
      if is_null = when_null then jump f t
    | Goto t -> jump f t
    | New cls -> push f (Obj (Runtime.alloc rt cls))
    | Getfield fd ->
      let o = Value.to_obj (pop f) in
      push f o.ofields.(fd.fidx)
    | Putfield fd ->
      let v = pop f in
      let o = Value.to_obj (pop f) in
      o.ofields.(fd.fidx) <- v
    | Getglobal g -> push f (Runtime.get_global rt g)
    | Putglobal g -> Runtime.set_global rt g (pop f)
    | Newarr ->
      let n = pop_int f in
      push f (Arr (Array.make n Null))
    | Newfarr ->
      let n = pop_int f in
      push f (Farr (Array.make n 0.0))
    | Aload ->
      let i = pop_int f in
      let a = Value.to_arr (pop f) in
      push f a.(i)
    | Astore ->
      let v = pop f in
      let i = pop_int f in
      let a = Value.to_arr (pop f) in
      a.(i) <- v
    | Faload ->
      let i = pop_int f in
      let a = Value.to_farr (pop f) in
      push f (Float a.(i))
    | Fastore ->
      let v = pop_float f in
      let i = pop_int f in
      let a = Value.to_farr (pop f) in
      a.(i) <- v
    | Alen ->
      (match pop f with
      | Arr a -> push f (Int (Array.length a))
      | Farr a -> push f (Int (Array.length a))
      | _ -> vm_error "alen: not an array at %s" (frame_loc f))
    | Invoke (Static m) -> invoke f m m.mnargs
    | Invoke (Special m) -> invoke f m (m.mnargs + 1)
    | Invoke (Virtual_ic site) ->
      (* quickened: inline-cache dispatch — a hit is one pointer compare *)
      let m =
        match f.ostack.(f.sp - site.cs_argc - 1) with
        | Obj o -> Inlinecache.dispatch f.fmeth site o
        | Null ->
          vm_error "null receiver for %s at %s" site.cs_name (frame_loc f)
        | _ ->
          vm_error "invokevirtual %s on non-object at %s" site.cs_name
            (frame_loc f)
      in
      invoke f m (site.cs_argc + 1)
    | Invoke (Virtual (name, argc, hint)) ->
      if rt.ic_enabled then begin
        (* first execution: quicken the instruction in place to carry a
           fresh inline cache (pc already advanced past the invoke) *)
        let site =
          Inlinecache.make_site rt ~mid:f.fmeth.mid ~pc:(f.pc - 1) ~name ~argc
            ~hint
        in
        f.fcode.(f.pc - 1) <- Invoke (Virtual_ic site);
        if !Forensics.on then
          Forensics.record ~mid:f.fmeth.mid ~meth:(Runtime.meth_label f.fmeth)
            (Forensics.Ic_state
               {
                 pc = f.pc - 1;
                 line = Runtime.line_at f.fmeth (f.pc - 1);
                 callee = name;
                 state = "quickened";
               });
        let m =
          match f.ostack.(f.sp - argc - 1) with
          | Obj o -> Inlinecache.dispatch f.fmeth site o
          | Null -> vm_error "null receiver for %s at %s" name (frame_loc f)
          | _ ->
            vm_error "invokevirtual %s on non-object at %s" name (frame_loc f)
        in
        invoke f m (argc + 1)
      end
      else
        let m =
          match f.ostack.(f.sp - argc - 1) with
          | Obj o -> Classfile.resolve_virtual o.ocls name
          | Null -> vm_error "null receiver for %s at %s" name (frame_loc f)
          | _ ->
            vm_error "invokevirtual %s on non-object at %s" name (frame_loc f)
        in
        invoke f m (argc + 1)
    | Ret -> return_value Null
    | Retv -> return_value (pop f)
    | Trap msg -> vm_error "trap: %s at %s" msg (frame_loc f)
  in
  while !current <> None do
    match !current with
    | Some f ->
      (* profiler checkpoint: one load+branch when sampling is off *)
      if !Obs.sampling && Obs.sample_due () then emit_stack_sample f;
      step f
    | None -> ()
  done;
  !result

let call rt meth (args : value array) =
  match meth.mcode with
  | Native (_, fn) -> fn rt args
  | Bytecode _ -> (
    meth.mcalls <- meth.mcalls + 1;
    if !Obs.enabled && meth.mcalls land 63 = 1 then
      Obs.emit
        (Obs.Interp_call
           {
             meth = Runtime.meth_label meth;
             mid = meth.mid;
             calls = meth.mcalls;
             backedges = meth.mbackedges;
           });
    if !Chaos.on && Chaos.fire Chaos.hier_churn then
      Runtime.hierarchy_changed rt ~name:meth.mname;
    match Runtime.tiered_fn rt meth with
    | Some cfn -> cfn args
    | None -> resume rt (make_frame meth args))

(* Invoke a closure-like object: dispatches its [apply] method. *)
let call_closure rt v (args : value array) =
  match v with
  | Obj o ->
    let m = Classfile.resolve_virtual o.ocls "apply" in
    call rt m (Array.append [| v |] args)
  | _ -> vm_error "not a callable object"
