(* Programmatic bytecode assembler: label-based control flow, automatic
   local-slot allocation, and max-stack computation.  Both the Mini code
   generator and hand-written test programs go through this interface. *)

open Types

type label = int

type t = {
  rt : runtime;
  mutable code : instr array;
  mutable lines : int array; (* parallel to [code]: source line per pc *)
  mutable cur_line : int; (* stamped onto every emitted instruction *)
  mutable len : int;
  mutable labels : int array; (* label id -> pc, -1 while unplaced *)
  mutable nlabels : int;
  mutable nlocals : int;
  mutable patches : (int * label * (int -> instr)) list;
}

let create rt ~nlocals =
  {
    rt;
    code = Array.make 32 Ret;
    lines = Array.make 32 0;
    cur_line = 0;
    len = 0;
    labels = Array.make 16 (-1);
    nlabels = 0;
    nlocals;
    patches = [];
  }

(* Set the source line stamped onto subsequently emitted instructions (the
   line table of the method under construction); 0 means unknown. *)
let set_line b line = b.cur_line <- line

let emit b i =
  if b.len = Array.length b.code then begin
    let c = Array.make (2 * b.len) Ret in
    Array.blit b.code 0 c 0 b.len;
    b.code <- c;
    let l = Array.make (2 * b.len) 0 in
    Array.blit b.lines 0 l 0 b.len;
    b.lines <- l
  end;
  b.code.(b.len) <- i;
  b.lines.(b.len) <- b.cur_line;
  b.len <- b.len + 1

let here b = b.len

let new_label b =
  if b.nlabels = Array.length b.labels then begin
    let l = Array.make (2 * b.nlabels) (-1) in
    Array.blit b.labels 0 l 0 b.nlabels;
    b.labels <- l
  end;
  let id = b.nlabels in
  b.nlabels <- id + 1;
  id

let place b l =
  if b.labels.(l) >= 0 then vm_error "label %d placed twice" l;
  b.labels.(l) <- b.len

let branch b l make =
  b.patches <- (b.len, l, make) :: b.patches;
  emit b (make (-1))

let goto b l = branch b l (fun t -> Goto t)
let if_ b c l = branch b l (fun t -> If (c, t))
let iff b c l = branch b l (fun t -> Iff (c, t))
let ifz b c l = branch b l (fun t -> Ifz (c, t))
let ifnull b when_null l = branch b l (fun t -> Ifnull (when_null, t))

let local b =
  let i = b.nlocals in
  b.nlocals <- i + 1;
  i

(* Net stack effect; [None] means control does not fall through. *)
let stack_effect rt = function
  | Const _ | Load _ | New _ | Getglobal _ -> 1
  | Store _ | Pop | Iop _ | Fop _ | Ifz _ | Ifnull _ | Putglobal _ | Aload
  | Faload ->
    -1
  | Dup -> 1
  | Swap | Ineg | Fneg | I2f | F2i | Goto _ | Alen | Newarr | Newfarr | Trap _
    ->
    0
  | If _ | Iff _ | Putfield _ -> -2
  | Getfield _ -> 0
  | Astore | Fastore -> -3
  | Invoke inv ->
    let argc =
      match inv with
      | Static m -> m.mnargs
      | Special m -> m.mnargs + 1
      | Virtual (_, n, _) -> n + 1
      | Virtual_ic s -> s.cs_argc + 1
    in
    ignore rt;
    1 - argc
  | Ret | Retv -> 0

let successors code pc =
  match code.(pc) with
  | Goto t -> [ t ]
  | If (_, t) | Iff (_, t) | Ifz (_, t) | Ifnull (_, t) -> [ t; pc + 1 ]
  | Ret | Retv | Trap _ -> []
  | Const _ | Load _ | Store _ | Dup | Pop | Swap | Iop _ | Ineg | Fop _
  | Fneg | I2f | F2i | New _ | Getfield _ | Putfield _ | Getglobal _
  | Putglobal _ | Newarr | Newfarr | Aload | Astore | Faload | Fastore | Alen
  | Invoke _ ->
    [ pc + 1 ]

let compute_maxstack rt code =
  let n = Array.length code in
  if n = 0 then 0
  else begin
    let depth = Array.make n (-1) in
    let maxd = ref 0 in
    let work = Queue.create () in
    depth.(0) <- 0;
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let pc = Queue.pop work in
      let d = depth.(pc) in
      (* depth consumed before effect must not go negative; we only track the
         net effect, which is enough to size the stack array *)
      let d' = d + stack_effect rt code.(pc) in
      let d_after = match code.(pc) with Retv -> d' - 1 | _ -> d' in
      ignore d_after;
      if d' > !maxd then maxd := d';
      if d + 1 > !maxd then maxd := d + 1;
      let next = successors code pc in
      let record pc' =
        if pc' < n then
          if depth.(pc') < 0 then begin
            depth.(pc') <- max d' 0;
            Queue.add pc' work
          end
      in
      List.iter record next
    done;
    !maxd + 2
  end

let finish b =
  let code = Array.sub b.code 0 b.len in
  (* branch patching rewrites instructions in place; pcs are unchanged, so
     the line table needs no fixup *)
  let lines = Array.sub b.lines 0 b.len in
  List.iter
    (fun (pos, l, make) ->
      let t = b.labels.(l) in
      if t < 0 then vm_error "unplaced label %d" l;
      code.(pos) <- make t)
    b.patches;
  (code, lines, b.nlocals, compute_maxstack b.rt code)

(* Fill the body of a previously declared method.  [src] names the source
   file the body was generated from (for `file:line` diagnostics). *)
let fill_method ?src rt (m : meth) gen =
  let b = create rt ~nlocals:m.mnlocals in
  gen b;
  (* implicit return for generators that fall off the end *)
  emit b Ret;
  let code, lines, nlocals, maxstack = finish b in
  m.mcode <- Bytecode code;
  m.mlines <- lines;
  (match src with Some s -> m.msrc <- s | None -> ());
  m.mnlocals <- nlocals;
  m.mmaxstack <- maxstack;
  m

(* Define a bytecode method on [cls]; [gen] receives the builder, with local
   slots [0 .. nargs(-1|+0)] already holding the receiver and parameters. *)
let define_method ?src rt cls ~name ?(static = false) ~nargs gen =
  let m =
    Classfile.add_method rt cls ~name ~static ~nargs (Bytecode [||])
  in
  fill_method ?src rt m gen
