(* Background JIT compilation (the "compile off the hot path" layer that
   production VMs — HotSpot, Graal, the paper's Lancet substrate — take for
   granted): a bounded compile queue serviced by worker domains.

   Protocol, in the order a request travels:

   1. Promotion ([Runtime.tier_promote] via the hook installed by [install])
      calls [enqueue]: the method is marked [Tier_compiling] and appended to
      the queue.  A request for a method already queued coalesces into the
      pending one; a full queue drops the request and returns the method to
      [Tier_cold] so a later promotion retries.  The mutator never blocks.

   2. A worker dequeues the request, reads the method's current generation
      stamp, and runs the injected [compile] function (the full Lancet
      stage/optimize/backend pipeline).  The interpreter keeps executing the
      method at tier 0 throughout.

   3. The result is published with [Runtime.tier_install_if_current]: under
      the runtime's tiering lock, the entry point is installed only if the
      generation still matches the stamp from step 2.  An invalidation that
      raced the compile (deopt-recompile, explicit invalidate) bumped the
      generation, so the stale code is discarded; if no newer request exists
      for the method it returns to [Tier_cold] and may promote again.

   4. A compile failure (exception or [None]) blacklists the method and logs
      a diagnostic carrying the method's source location ([Runtime.meth_loc]
      over the PR-3 line tables).  Worker domains never let an exception
      escape: failure means "keep interpreting", not "kill the VM".

   Observability: [Compile_enqueue]/[Compile_dequeue] events carry the queue
   depth (the Chrome sink renders a queue-depth counter track), compiles run
   with [Obs.set_worker] so Compile_start/Compile_end land on per-worker
   tracks, and [Compile_blacklist] records failures.  Coalesced, dropped,
   stale and blacklisted requests are counted in [stats]. *)

open Vm.Types

type stats = {
  mutable s_enqueued : int;
  mutable s_coalesced : int;
  mutable s_dropped : int;
  mutable s_installed : int;
  mutable s_stale : int;
  mutable s_blacklisted : int;
  mutable s_abandoned : int; (* queued requests walked away from at a
                                timed-out shutdown *)
}

type t = {
  rt : runtime;
  compile : runtime -> meth -> ((value array -> value) * string list * int) option;
  (* entry point, devirtualization deps, hierarchy epoch at compile start *)
  capacity : int;
  queue : meth Queue.t;
  pending : (int, unit) Hashtbl.t; (* mids queued, not yet picked up *)
  inflight : (int, float) Hashtbl.t;
  (* mid -> dequeue timestamp ([Obs.now] clock) for every compile a worker
     is running now; the governor's watchdog reads the ages *)
  lock : Mutex.t; (* guards queue/pending/inflight/stats/stop *)
  nonempty : Condition.t; (* signaled on enqueue and shutdown *)
  idle : Condition.t; (* signaled when the pool goes quiescent *)
  log : string -> unit;
  stats : stats;
  mutable stop : bool;
  alive : int Atomic.t; (* workers that have not exited their loop yet *)
  mutable domains : unit Domain.t list;
  mutable saved_hook : (runtime -> meth -> jit_result) option;
}

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let stats t = t.stats

let pending t =
  locked t (fun () -> Queue.length t.queue + Hashtbl.length t.inflight)

(* [(mid, age_seconds)] of every compile currently running on a worker;
   the governor's watchdog decides which are overdue. *)
let inflight_ages t =
  let now = Obs.now () in
  locked t (fun () ->
      Hashtbl.fold (fun mid ts acc -> (mid, now -. ts) :: acc) t.inflight [])

let stats_string t =
  let s = t.stats in
  Printf.sprintf
    "enqueued=%d coalesced=%d dropped=%d installed=%d stale=%d blacklisted=%d%s"
    s.s_enqueued s.s_coalesced s.s_dropped s.s_installed s.s_stale
    s.s_blacklisted
    (if s.s_abandoned > 0 then Printf.sprintf " abandoned=%d" s.s_abandoned
     else "")

(* ------------------------------------------------------------------ *)
(* Enqueue (mutator side)                                              *)

(* All tier-state writes happen inside the queue lock: a worker can only
   dequeue (and later blacklist/install/retire) a request strictly after
   the enqueue's critical section, so its terminal [mtier] write can never
   be clobbered by the mutator's [Tier_compiling] mark racing it. *)
let enqueue ?(why = Forensics.Unattributed) t (m : meth) =
  let r, depth =
    locked t (fun () ->
        if (not t.stop) && Hashtbl.mem t.pending m.mid then begin
          t.stats.s_coalesced <- t.stats.s_coalesced + 1;
          (* the already-pending request will compile the current
             generation (stamps are read at dequeue), so this one merges *)
          m.mtier <- Tier_compiling;
          (`Coalesced, 0)
        end
        else if
          t.stop
          || Queue.length t.queue >= t.capacity
          || (!Chaos.on && Chaos.fire Chaos.queue_full)
        then begin
          t.stats.s_dropped <- t.stats.s_dropped + 1;
          (* saturation (or shutdown, or forced saturation): back to cold,
             so the method stays interpretable and a later promotion
             retries *)
          if m.mtier = Tier_compiling then m.mtier <- Tier_cold;
          (`Dropped, 0)
        end
        else begin
          t.stats.s_enqueued <- t.stats.s_enqueued + 1;
          Hashtbl.replace t.pending m.mid ();
          Queue.add m t.queue;
          (* the queued request owns the tier state until it terminates *)
          m.mtier <- Tier_compiling;
          Condition.signal t.nonempty;
          (`Queued, Queue.length t.queue)
        end)
  in
  (match r with
  | `Queued ->
    if !Obs.enabled then
      Obs.emit
        (Obs.Compile_enqueue
           {
             meth = Vm.Runtime.meth_label m;
             mid = m.mid;
             gen = Vm.Runtime.tier_gen t.rt m.mid;
             depth;
           });
    if !Forensics.on then
      Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m) ~cause:why
        (Forensics.Enqueue { gen = Vm.Runtime.tier_gen t.rt m.mid; depth })
  | `Dropped ->
    if !Forensics.on then
      Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
        ~cause:(Forensics.Queue_full { capacity = t.capacity })
        Forensics.Drop
  | `Coalesced -> ());
  r

let jit_hook t (_rt : runtime) (m : meth) : jit_result =
  match m.mcode with
  | Native _ -> Jit_declined
  | Bytecode _ ->
    ignore
      (enqueue t m
         ~why:(Forensics.Hotness { calls = m.mcalls; backedges = m.mbackedges }));
    (* even a dropped request answers [Jit_pending]: the method keeps
       interpreting and retries, it is not blacklisted *)
    Jit_pending

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

(* "Cls.meth @pc k (file.mini:12)": the first pc with an attributed source
   line, so blacklist diagnostics carry file:line when line tables exist. *)
let meth_src_loc (m : meth) =
  let n = Array.length m.mlines in
  let rec first_attributed i =
    if i >= n then 0 else if m.mlines.(i) > 0 then i else first_attributed (i + 1)
  in
  Vm.Runtime.meth_loc m (first_attributed 0)

let blacklist t wid (m : meth) err =
  m.mtier <- Tier_blacklisted;
  let loc = meth_src_loc m in
  if !Obs.enabled then
    Obs.emit
      (Obs.Compile_blacklist
         { meth = Vm.Runtime.meth_label m; mid = m.mid; worker = wid; loc; err });
  if !Forensics.on then
    Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
      ~cause:(Forensics.Worker_failure { err })
      (Forensics.Blacklist { err });
  t.log
    (Printf.sprintf "[bgjit] worker %d: blacklisted %s: %s" wid loc err)

let process t wid (m : meth) =
  (* the stamp the install is conditioned on: read after dequeue, so an
     invalidation while the request sat in the queue is already absorbed
     and only an invalidation racing the compile itself can make it stale *)
  let gen = Vm.Runtime.tier_gen t.rt m.mid in
  let outcome =
    if m.mtier = Tier_blacklisted then
      (* retired (governor or a racing failure) while the request sat in
         the queue: never resurrect a blacklisted method *)
      `Stale
    else
      match
        (if !Chaos.on then begin
           if Chaos.fire Chaos.compile_stall then
             Chaos.sleep_ms (max 1 (Chaos.ms Chaos.compile_stall));
           if Chaos.fire Chaos.compile_crash then begin
             if !Forensics.on then
               Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
                 ~cause:(Forensics.Chaos_fault { site = "compile_crash" })
                 Forensics.Discard;
             failwith "chaos: injected compile crash"
           end
         end);
        t.compile t.rt m
      with
      | Some (fn, deps, epoch) ->
        let fn =
          if !Chaos.on && Chaos.fire Chaos.compile_garbage then begin
            (* garbage result: bump the stamp first so the conditional
               install provably discards it — the generation check is the
               safety net under test *)
            Vm.Runtime.tier_invalidate
              ~why:(Forensics.Chaos_fault { site = "compile_garbage" })
              t.rt m;
            fun _ -> Vm.Types.Int 0xDEAD
          end
          else fn
        in
        (* speculative code additionally requires the hierarchy epoch to be
           unchanged since the compile started; [tier_install_if_current]
           checks it under the same lock as the generation stamp *)
        if Vm.Runtime.tier_install_if_current t.rt m ~gen ~epoch ~deps fn then
          `Installed
        else `Stale
      | None -> `Failed "compiler declined (no entry point)"
      | exception e -> `Failed (Printexc.to_string e)
  in
  (match outcome with `Failed err -> blacklist t wid m err | _ -> ());
  (* terminal bookkeeping is atomic with the in-flight removal, so the
     stale-retire decision cannot mistake this worker's own entry for a
     newer request *)
  locked t (fun () ->
      Hashtbl.remove t.inflight m.mid;
      (match outcome with
      | `Installed -> t.stats.s_installed <- t.stats.s_installed + 1
      | `Failed _ -> t.stats.s_blacklisted <- t.stats.s_blacklisted + 1
      | `Stale ->
        (* the generation moved while compiling: the code was discarded
           by the conditional install.  If no newer request owns the
           method (queued, or in flight on another worker), return it to
           cold so hotness can promote it again. *)
        t.stats.s_stale <- t.stats.s_stale + 1;
        let newer =
          Hashtbl.mem t.pending m.mid || Hashtbl.mem t.inflight m.mid
        in
        if (not newer) && m.mtier = Tier_compiling then m.mtier <- Tier_cold);
      if Queue.is_empty t.queue && Hashtbl.length t.inflight = 0 then
        Condition.broadcast t.idle)

let rec worker_loop t wid =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.queue && not t.stop do
          Condition.wait t.nonempty t.lock
        done;
        (* on shutdown, finish whatever is queued before exiting: no
           request is ever lost or left stuck in [Tier_compiling] *)
        match Queue.take_opt t.queue with
        | Some m ->
          Hashtbl.remove t.pending m.mid;
          (* [add], not [replace]: the same mid can be in flight on two
             workers at once (requeued while compiling), and each holds
             its own binding — [Hashtbl.length] counts both *)
          Hashtbl.add t.inflight m.mid (Obs.now ());
          Some (m, Queue.length t.queue)
        | None -> None)
  in
  match job with
  | None -> () (* stop requested and queue drained *)
  | Some (m, depth) ->
    if !Obs.enabled then
      Obs.emit
        (Obs.Compile_dequeue
           { meth = Vm.Runtime.meth_label m; mid = m.mid; worker = wid; depth });
    if !Forensics.on then
      Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
        (Forensics.Dequeue { depth });
    process t wid m;
    worker_loop t wid

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create ?threads ?queue ?log ~compile rt =
  let threads =
    max 1 (match threads with Some n -> n | None -> rt.tiering.t_jit_threads)
  in
  let capacity =
    max 1 (match queue with Some n -> n | None -> rt.tiering.t_jit_queue)
  in
  rt.tiering.t_jit_threads <- threads;
  rt.tiering.t_jit_queue <- capacity;
  let t =
    {
      rt;
      compile;
      capacity;
      queue = Queue.create ();
      pending = Hashtbl.create 64;
      inflight = Hashtbl.create 8;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      log =
        (match log with
        | Some f -> f
        | None -> fun s -> prerr_string (s ^ "\n"));
      stats =
        {
          s_enqueued = 0;
          s_coalesced = 0;
          s_dropped = 0;
          s_installed = 0;
          s_stale = 0;
          s_blacklisted = 0;
          s_abandoned = 0;
        };
      stop = false;
      alive = Atomic.make 0;
      domains = [];
      saved_hook = None;
    }
  in
  Atomic.set t.alive threads;
  t.domains <-
    List.init threads (fun i ->
        let wid = i + 1 in
        Domain.spawn (fun () ->
            Obs.set_worker wid;
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.alive)
              (fun () -> worker_loop t wid)));
  t

let install t =
  t.saved_hook <- t.rt.jit_hook;
  t.rt.jit_hook <- Some (fun rt m -> jit_hook t rt m);
  t.rt.tiering.t_bg_recompile <-
    Some
      (fun m ->
        ignore
          (enqueue t m
             ~why:(Forensics.Recompile_exit { tag = "deopt-recompile" })))

let quiescent t =
  locked t (fun () ->
      Queue.is_empty t.queue && Hashtbl.length t.inflight = 0)

let drain ?timeout_ms t =
  match timeout_ms with
  | None ->
    locked t (fun () ->
        while not (Queue.is_empty t.queue && Hashtbl.length t.inflight = 0) do
          Condition.wait t.idle t.lock
        done)
  | Some ms ->
    (* bounded: poll rather than wait — a stalled worker never signals
       [idle], and OCaml conditions have no timed wait *)
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    let rec go () =
      if (not (quiescent t)) && Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.001;
        go ()
      end
    in
    go ()

let restore_hooks t =
  (* restore synchronous compilation for whatever runs after the pool *)
  if t.rt.tiering.t_bg_recompile <> None then begin
    t.rt.tiering.t_bg_recompile <- None;
    t.rt.jit_hook <- t.saved_hook
  end

(* Stop the pool.  Without [timeout_ms] this is the original unconditional
   drain: workers finish everything queued and are joined.  With
   [timeout_ms], wait at most that long for the workers to go quiet; on
   expiry the remaining queue is abandoned — each leftover request is
   counted in [s_abandoned], journaled, and its method returned to
   [Tier_cold] — and stalled worker domains are leaked rather than joined,
   so a wedged compile cannot hang process exit. *)
let shutdown ?timeout_ms t =
  locked t (fun () ->
      t.stop <- true;
      Condition.broadcast t.nonempty);
  match timeout_ms with
  | None ->
    List.iter Domain.join t.domains;
    t.domains <- [];
    restore_hooks t
  | Some ms ->
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    while Atomic.get t.alive > 0 && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.001
    done;
    if Atomic.get t.alive = 0 then begin
      List.iter Domain.join t.domains;
      t.domains <- []
    end
    else begin
      (* abandon whatever is still queued: a stalled worker would hold the
         rest hostage, and the mutator must never wait on it *)
      let leftovers =
        locked t (fun () ->
            let ms = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            List.iter
              (fun (m : meth) ->
                Hashtbl.remove t.pending m.mid;
                t.stats.s_abandoned <- t.stats.s_abandoned + 1;
                if m.mtier = Tier_compiling then m.mtier <- Tier_cold)
              ms;
            ms)
      in
      let n = List.length leftovers in
      if !Forensics.on && n > 0 then begin
        List.iter
          (fun (m : meth) ->
            Forensics.record ~mid:m.mid ~meth:(Vm.Runtime.meth_label m)
              ~cause:(Forensics.Shutdown_timeout { ms })
              Forensics.Drop)
          leftovers;
        Forensics.record
          ~cause:(Forensics.Shutdown_timeout { ms })
          (Forensics.Abandon { pending = n })
      end;
      if n > 0 || Atomic.get t.alive > 0 then
        t.log
          (Printf.sprintf
             "[bgjit] shutdown timed out after %dms: %d request(s) \
              abandoned, %d worker(s) leaked"
             ms n (Atomic.get t.alive));
      t.domains <- []
    end;
    restore_hooks t
