(** Background JIT compilation: a bounded compile queue serviced by worker
    domains, so method promotion no longer pauses the interpreter.

    The subsystem sits between the tiered execution engine and the Lancet
    compile pipeline: the promotion path ([Runtime.tier_promote] via
    [rt.jit_hook]) enqueues hot methods and keeps interpreting at tier 0;
    worker domains pull requests, run the injected [compile] function, and
    publish the entry point into the runtime code cache with an atomic
    generation-checked install ([Runtime.tier_install_if_current]) so an
    invalidation that races an in-flight compile can never activate stale
    code.  A worker exception blacklists the method and logs a diagnostic
    carrying the method's [file:line] — it never kills the VM. *)

open Vm.Types

type t

(** Monotone counters describing what the queue did.  Every request is
    accounted exactly once: [enqueued] splits into [installed] + [stale] +
    [blacklisted] once drained, while [coalesced] and [dropped] count
    requests that never entered the queue. *)
type stats = {
  mutable s_enqueued : int;  (** requests that entered the queue *)
  mutable s_coalesced : int;  (** merged into an already-pending request *)
  mutable s_dropped : int;  (** rejected: queue full (the method retries) *)
  mutable s_installed : int;  (** compiled and published into the cache *)
  mutable s_stale : int;  (** compiled, but the generation moved: discarded *)
  mutable s_blacklisted : int;  (** compile failed: method blacklisted *)
  mutable s_abandoned : int;
      (** queued requests walked away from by a timed-out [shutdown] *)
}

val create :
  ?threads:int ->
  ?queue:int ->
  ?log:(string -> unit) ->
  compile:
    (runtime -> meth -> ((value array -> value) * string list * int) option) ->
  runtime ->
  t
(** Spawn a pool of [threads] worker domains (default: the runtime's
    [t_jit_threads] knob, clamped to at least 1) over a queue bounded at
    [queue] requests (default: [t_jit_queue]).  [compile] is the raw
    compile step — [Lancet.Tiering.compile] in production, a stub in tests —
    returning the entry point, the devirtualization dependencies the code
    speculates on, and the hierarchy epoch the compile started from (both
    checked at install time).  [log] receives blacklist diagnostics
    (default: stderr). *)

val install : t -> unit
(** Point the runtime at the pool: replaces [rt.jit_hook] with the
    enqueueing hook and routes deopt-triggered recompiles through the
    queue ([t_bg_recompile]).  [shutdown] restores the previous hook. *)

val enqueue :
  ?why:Forensics.cause -> t -> meth -> [ `Queued | `Coalesced | `Dropped ]
(** Request a (re)compile of [m].  Never blocks: a request for a method
    already pending coalesces, and a full queue drops the request (the
    method returns to cold and retries on a later promotion).  [why] is
    the cause recorded in the decision journal when it is enabled. *)

val drain : ?timeout_ms:int -> t -> unit
(** Block until the queue is empty and no compile is in flight.  Test and
    benchmark hook; production callers never wait on the compiler.  With
    [timeout_ms], give up after that long (a stalled worker cannot hang
    the caller); the pool may still have work pending on return. *)

val shutdown : ?timeout_ms:int -> t -> unit
(** Stop the pool and restore the runtime's synchronous hook.  Without
    [timeout_ms]: drain remaining requests and join the workers
    (idempotent).  With [timeout_ms]: wait at most that long; on expiry
    the remaining queue is abandoned (counted in [s_abandoned], journaled,
    methods returned to cold) and stalled workers are leaked rather than
    joined, so a wedged compile cannot hang process exit. *)

val stats : t -> stats

val pending : t -> int
(** Requests currently queued or being compiled (0 after [drain]). *)

val inflight_ages : t -> (int * float) list
(** [(mid, age_seconds)] for every compile currently running on a worker;
    the governor's watchdog uses the ages to find stalled compiles. *)

val stats_string : t -> string
(** One-line summary of the pool counters, for benches and logging. *)
