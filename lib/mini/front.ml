(* Front-end driver: source text -> parsed -> typed -> bytecode in a runtime.
   [load] plays the role scalac + class loading play in the paper. *)

type program = Codegen.compiled_program

exception Error of string

let () =
  Printexc.register_printer (function
    | Ast.Syntax_error (pos, msg) ->
      Some (Format.asprintf "Syntax error at %a: %s" Ast.pp_pos pos msg)
    | Ast.Type_error (pos, msg) ->
      Some (Format.asprintf "Type error at %a: %s" Ast.pp_pos pos msg)
    | _ -> None)

let load ?file rt (src : string) : program =
  let parsed = Obs.span ~cat:Phases.cat_front (Phases.span_front "parse")
      (fun () -> Parser.parse_program src)
  in
  let typed = Obs.span ~cat:Phases.cat_front (Phases.span_front "typecheck")
      (fun () -> Typecheck.check_program parsed)
  in
  Obs.span ~cat:Phases.cat_front (Phases.span_front "codegen") (fun () ->
      Codegen.compile_typed ?file rt typed)

(* Parse + typecheck only (for tests and tooling). *)
let typecheck (src : string) : Typecheck.tprogram =
  Typecheck.check_program (Parser.parse_program src)

let find_function = Codegen.find_function

let call = Codegen.call_function

(* Convenience: boot a fresh runtime, load [src], call [fname]. *)
let run_function ?(args = [||]) (src : string) (fname : string) :
    Vm.Types.runtime * Vm.Types.value =
  let rt = Vm.Natives.boot () in
  let p = load rt src in
  (rt, call p fname args)

(* Run [fname] and capture everything it prints. *)
let run_capture ?(args = [||]) (src : string) (fname : string) :
    string * Vm.Types.value =
  let rt = Vm.Natives.boot () in
  let p = load rt src in
  Vm.Runtime.capture_output rt (fun () -> call p fname args)
