(* Bytecode generation from the typed AST.  Performs closure conversion:
   each lambda becomes a synthesized class with one [apply] method and one
   final field per captured variable.  Mutable locals captured by a lambda
   are boxed (a one-field Box object) so that writes are shared, matching
   Scala's capture semantics. *)

open Ast
open Typecheck
module A = Vm.Assembler
module T = Vm.Types

module StringSet = Set.Make (String)

type storage =
  | Slot of int
  | BoxedSlot of int
  | Capture of T.field * bool (* field on the closure object; boxed? *)
  | GlobalSlot of int

type ctx = {
  rt : T.runtime;
  genv : genv;
  main_cls : T.cls; (* holds top-level functions of this program *)
  globals : (string, int) Hashtbl.t;
  box_cls : T.cls;
  src : string; (* source file name, stored on generated methods *)
}

(* scope of one method/function/lambda body under compilation *)
type scope = {
  ctx : ctx;
  b : A.t;
  mutable vars : (string * storage) list;
  this_storage : storage option; (* for methods: Slot 0; lambdas: a capture *)
  boxed_names : StringSet.t; (* mutable locals that must live in boxes *)
  mutable block_lets : int list; (* slots bound in the current block *)
}

(* ---------- free variables and captured-name analysis ---------- *)

let rec free_vars (e : texpr) (bound : StringSet.t) (acc : StringSet.t ref)
    (uses_this : bool ref) : StringSet.t =
  (* returns updated [bound] (lets extend it); accumulates free names *)
  let fv e bound = ignore (free_vars e bound acc uses_this) in
  match e.tdesc with
  | Cint _ | Cfloat _ | Cstr _ | Cbool _ | Cnull -> bound
  | Local x ->
    if not (StringSet.mem x bound) then acc := StringSet.add x !acc;
    bound
  | GlobalRef _ -> bound
  | This ->
    uses_this := true;
    bound
  | LetT (_, x, init) ->
    fv init bound;
    StringSet.add x bound
  | AssignLocal (x, v) ->
    if not (StringSet.mem x bound) then acc := StringSet.add x !acc;
    fv v bound;
    bound
  | AssignGlobal (_, v) ->
    fv v bound;
    bound
  | FieldGet (_, o, _) ->
    fv o bound;
    bound
  | FieldSet (_, o, _, v) ->
    fv o bound;
    fv v bound;
    bound
  | ArrayGet (a, i) ->
    fv a bound;
    fv i bound;
    bound
  | ArraySet (a, i, v) ->
    fv a bound;
    fv i bound;
    fv v bound;
    bound
  | ArrayLen a | NotT a | INegT a | FNegT a | I2FT a | F2IT a ->
    fv a bound;
    bound
  | Iarith (_, a, b)
  | Farith (_, a, b)
  | Icompare (_, a, b)
  | Fcompare (_, a, b)
  | StrConcat (a, b)
  | StrEq (_, a, b)
  | RefEq (_, a, b)
  | AndT (a, b)
  | OrT (a, b) ->
    fv a bound;
    fv b bound;
    bound
  | NullCheck (_, a) ->
    fv a bound;
    bound
  | IfT (c, t, f) ->
    fv c bound;
    fv t bound;
    Option.iter (fun f -> fv f bound) f;
    bound
  | WhileT (c, body) ->
    fv c bound;
    fv body bound;
    bound
  | ForT (x, a, b, body) ->
    fv a bound;
    fv b bound;
    fv body (StringSet.add x bound);
    bound
  | BlockT es ->
    let _ =
      List.fold_left (fun bnd e -> free_vars e bnd acc uses_this) bound es
    in
    bound
  | CallFun (_, args) | CallBuiltin (_, _, args) | NewT (_, args) ->
    List.iter (fun a -> fv a bound) args;
    bound
  | CallMethod (_, recv, _, args) ->
    fv recv bound;
    List.iter (fun a -> fv a bound) args;
    bound
  | CallClosure (f, args) ->
    fv f bound;
    List.iter (fun a -> fv a bound) args;
    bound
  | NewArrT (_, n) ->
    fv n bound;
    bound
  | LambdaT (params, _, body) ->
    let inner_bound =
      List.fold_left (fun s (x, _) -> StringSet.add x s) StringSet.empty params
    in
    (* names free in the lambda that are not bound inside it are free here *)
    let inner_acc = ref StringSet.empty in
    let inner_this = ref false in
    ignore (free_vars body inner_bound inner_acc inner_this);
    if !inner_this then uses_this := true;
    StringSet.iter
      (fun x -> if not (StringSet.mem x bound) then acc := StringSet.add x !acc)
      !inner_acc;
    bound

let lambda_free_vars params body =
  let bound =
    List.fold_left (fun s (x, _) -> StringSet.add x s) StringSet.empty params
  in
  let acc = ref StringSet.empty in
  let uses_this = ref false in
  ignore (free_vars body bound acc uses_this);
  (StringSet.elements !acc, !uses_this)

(* names captured by any lambda within [body]: candidates for boxing *)
let captured_names (body : texpr) : StringSet.t =
  let result = ref StringSet.empty in
  let rec walk (e : texpr) =
    (match e.tdesc with
    | LambdaT (params, _, lbody) ->
      let fvs, _ = lambda_free_vars params lbody in
      List.iter (fun x -> result := StringSet.add x !result) fvs
    | _ -> ());
    iter_children walk e
  and iter_children f (e : texpr) =
    match e.tdesc with
    | Cint _ | Cfloat _ | Cstr _ | Cbool _ | Cnull | Local _ | GlobalRef _
    | This ->
      ()
    | LetT (_, _, a)
    | AssignLocal (_, a)
    | AssignGlobal (_, a)
    | FieldGet (_, a, _)
    | ArrayLen a
    | NotT a
    | INegT a
    | FNegT a
    | I2FT a
    | F2IT a
    | NullCheck (_, a)
    | NewArrT (_, a) ->
      f a
    | FieldSet (_, a, _, b)
    | ArrayGet (a, b)
    | Iarith (_, a, b)
    | Farith (_, a, b)
    | Icompare (_, a, b)
    | Fcompare (_, a, b)
    | StrConcat (a, b)
    | StrEq (_, a, b)
    | RefEq (_, a, b)
    | AndT (a, b)
    | OrT (a, b)
    | WhileT (a, b) ->
      f a;
      f b
    | ArraySet (a, b, c) ->
      f a;
      f b;
      f c
    | IfT (a, b, c) ->
      f a;
      f b;
      Option.iter f c
    | ForT (_, a, b, c) ->
      f a;
      f b;
      f c
    | BlockT es -> List.iter f es
    | CallFun (_, args) | CallBuiltin (_, _, args) | NewT (_, args) ->
      List.iter f args
    | CallMethod (_, r, _, args) ->
      f r;
      List.iter f args
    | CallClosure (g, args) ->
      f g;
      List.iter f args
    | LambdaT (_, _, lbody) -> f lbody
  in
  walk body;
  !result

(* ---------- helpers ---------- *)

let lookup_var sc pos x =
  match List.assoc_opt x sc.vars with
  | Some st -> st
  | None -> (
    match Hashtbl.find_opt sc.ctx.globals x with
    | Some g -> GlobalSlot g
    | None -> type_error pos "codegen: unbound %s" x)

let box_field ctx = Vm.Classfile.field ctx.box_cls "v"

let emit_read sc st =
  match st with
  | Slot i -> A.emit sc.b (T.Load i)
  | BoxedSlot i ->
    A.emit sc.b (T.Load i);
    A.emit sc.b (T.Getfield (box_field sc.ctx))
  | Capture (f, boxed) -> (
    A.emit sc.b (T.Load 0);
    A.emit sc.b (T.Getfield f);
    if boxed then A.emit sc.b (T.Getfield (box_field sc.ctx)))
  | GlobalSlot g -> A.emit sc.b (T.Getglobal g)

(* value to store must be on top of the stack *)
let emit_write sc pos st =
  match st with
  | Slot i -> A.emit sc.b (T.Store i)
  | BoxedSlot i ->
    A.emit sc.b (T.Load i);
    A.emit sc.b T.Swap;
    A.emit sc.b (T.Putfield (box_field sc.ctx))
  | Capture (f, true) ->
    A.emit sc.b (T.Load 0);
    A.emit sc.b (T.Getfield f);
    A.emit sc.b T.Swap;
    A.emit sc.b (T.Putfield (box_field sc.ctx))
  | Capture (_, false) -> type_error pos "assignment to immutable capture"
  | GlobalSlot g -> A.emit sc.b (T.Putglobal g)

let vm_field ctx cls name = Vm.Classfile.field (Vm.Classfile.find_class ctx.rt cls) name

let iop_of_binop pos = function
  | Add -> T.Add
  | Sub -> T.Sub
  | Mul -> T.Mul
  | Div -> T.Div
  | Rem -> T.Rem
  | _ -> type_error pos "not an arithmetic operator"

let fop_of_binop pos = function
  | Add -> T.FAdd
  | Sub -> T.FSub
  | Mul -> T.FMul
  | Div -> T.FDiv
  | _ -> type_error pos "not a float operator"

let cond_of_binop pos = function
  | Eq -> T.Eq
  | Ne -> T.Ne
  | Lt -> T.Lt
  | Le -> T.Le
  | Gt -> T.Gt
  | Ge -> T.Ge
  | _ -> type_error pos "not a comparison"

(* ---------- expression compilation: every texpr pushes one value ---------- *)

let rec emit_expr sc (e : texpr) : unit =
  let b = sc.b in
  let pos = e.tpos in
  (* stamp the line table: instructions emitted for this expression (until a
     subexpression re-stamps) are attributed to the expression's source line *)
  if pos.line > 0 then A.set_line b pos.line;
  match e.tdesc with
  | Cint i -> A.emit b (T.Const (T.Int i))
  | Cfloat f -> A.emit b (T.Const (T.Float f))
  | Cstr s -> A.emit b (T.Const (T.Str s))
  | Cbool v -> A.emit b (T.Const (T.Int (if v then 1 else 0)))
  | Cnull -> A.emit b (T.Const T.Null)
  | Local x ->
    emit_read sc (lookup_var sc pos x)
  | GlobalRef x -> emit_read sc (lookup_var sc pos x)
  | This -> (
    match sc.this_storage with
    | Some st -> emit_read sc st
    | None -> type_error pos "codegen: no this")
  | LetT (mut, x, init) ->
    emit_expr sc init;
    let boxed = mut && StringSet.mem x sc.boxed_names in
    let slot = A.local b in
    if boxed then begin
      (* stack: v — wrap it in a fresh box shared with capturing closures *)
      A.emit b (T.New sc.ctx.box_cls);
      A.emit b T.Dup;
      A.emit b (T.Store slot);
      A.emit b T.Swap;
      A.emit b (T.Putfield (box_field sc.ctx));
      sc.vars <- (x, BoxedSlot slot) :: sc.vars
    end
    else begin
      A.emit b (T.Store slot);
      sc.vars <- (x, Slot slot) :: sc.vars
    end;
    sc.block_lets <- slot :: sc.block_lets;
    A.emit b (T.Const T.Null)
  | AssignLocal (x, v) ->
    emit_expr sc v;
    emit_write sc pos (lookup_var sc pos x);
    A.emit b (T.Const T.Null)
  | AssignGlobal (x, v) ->
    emit_expr sc v;
    emit_write sc pos (lookup_var sc pos x);
    A.emit b (T.Const T.Null)
  | FieldGet (cls, o, name) ->
    emit_expr sc o;
    A.emit b (T.Getfield (vm_field sc.ctx cls name))
  | FieldSet (cls, o, name, v) ->
    emit_expr sc o;
    emit_expr sc v;
    A.emit b (T.Putfield (vm_field sc.ctx cls name));
    A.emit b (T.Const T.Null)
  | ArrayGet (a, i) ->
    emit_expr sc a;
    emit_expr sc i;
    A.emit b (if a.t = Tfarray then T.Faload else T.Aload)
  | ArraySet (a, i, v) ->
    emit_expr sc a;
    emit_expr sc i;
    emit_expr sc v;
    A.emit b (if a.t = Tfarray then T.Fastore else T.Astore);
    A.emit b (T.Const T.Null)
  | ArrayLen a ->
    emit_expr sc a;
    A.emit b T.Alen
  | Iarith (op, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    A.emit b (T.Iop (iop_of_binop pos op))
  | Farith (op, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    A.emit b (T.Fop (fop_of_binop pos op))
  | Icompare (op, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    let ltrue = A.new_label b and lend = A.new_label b in
    A.if_ b (cond_of_binop pos op) ltrue;
    A.emit b (T.Const (T.Int 0));
    A.goto b lend;
    A.place b ltrue;
    A.emit b (T.Const (T.Int 1));
    A.place b lend
  | Fcompare (op, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    let ltrue = A.new_label b and lend = A.new_label b in
    A.iff b (cond_of_binop pos op) ltrue;
    A.emit b (T.Const (T.Int 0));
    A.goto b lend;
    A.place b ltrue;
    A.emit b (T.Const (T.Int 1));
    A.place b lend
  | StrConcat (x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    A.emit b (T.Invoke (T.Static (Vm.Classfile.static_method sc.ctx.rt ~cls:"Str" ~name:"concat")))
  | StrEq (neg, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    A.emit b (T.Invoke (T.Static (Vm.Classfile.static_method sc.ctx.rt ~cls:"Str" ~name:"eq")));
    if neg then begin
      A.emit b (T.Const (T.Int 1));
      A.emit b (T.Iop T.Xor)
    end
  | RefEq (neg, x, y) ->
    emit_expr sc x;
    emit_expr sc y;
    A.emit b (T.Invoke (T.Static (Vm.Classfile.static_method sc.ctx.rt ~cls:"Sys" ~name:"veq")));
    if neg then begin
      A.emit b (T.Const (T.Int 1));
      A.emit b (T.Iop T.Xor)
    end
  | NullCheck (when_null, x) ->
    emit_expr sc x;
    let ltrue = A.new_label b and lend = A.new_label b in
    A.ifnull b when_null ltrue;
    A.emit b (T.Const (T.Int 0));
    A.goto b lend;
    A.place b ltrue;
    A.emit b (T.Const (T.Int 1));
    A.place b lend
  | AndT (x, y) ->
    emit_expr sc x;
    let lfalse = A.new_label b and lend = A.new_label b in
    A.ifz b T.Eq lfalse;
    emit_expr sc y;
    A.goto b lend;
    A.place b lfalse;
    A.emit b (T.Const (T.Int 0));
    A.place b lend
  | OrT (x, y) ->
    emit_expr sc x;
    let ltrue = A.new_label b and lend = A.new_label b in
    A.ifz b T.Ne ltrue;
    emit_expr sc y;
    A.goto b lend;
    A.place b ltrue;
    A.emit b (T.Const (T.Int 1));
    A.place b lend
  | NotT x ->
    emit_expr sc x;
    A.emit b (T.Const (T.Int 1));
    A.emit b (T.Iop T.Xor)
  | INegT x ->
    emit_expr sc x;
    A.emit b T.Ineg
  | FNegT x ->
    emit_expr sc x;
    A.emit b T.Fneg
  | I2FT x ->
    emit_expr sc x;
    A.emit b T.I2f
  | F2IT x ->
    emit_expr sc x;
    A.emit b T.F2i
  | IfT (c, t, None) ->
    emit_expr sc c;
    let lend = A.new_label b in
    A.ifz b T.Eq lend;
    emit_expr sc t;
    A.emit b T.Pop;
    A.place b lend;
    A.emit b (T.Const T.Null)
  | IfT (c, t, Some f) ->
    emit_expr sc c;
    let lelse = A.new_label b and lend = A.new_label b in
    A.ifz b T.Eq lelse;
    emit_expr sc t;
    A.goto b lend;
    A.place b lelse;
    emit_expr sc f;
    A.place b lend
  | WhileT (c, body) ->
    let lhead = A.new_label b and lexit = A.new_label b in
    A.place b lhead;
    emit_expr sc c;
    A.ifz b T.Eq lexit;
    emit_expr sc body;
    A.emit b T.Pop;
    A.goto b lhead;
    A.place b lexit;
    A.emit b (T.Const T.Null)
  | ForT (x, lo, hi, body) ->
    let saved = sc.vars in
    emit_expr sc lo;
    let islot = A.local b in
    A.emit b (T.Store islot);
    emit_expr sc hi;
    let lim = A.local b in
    A.emit b (T.Store lim);
    sc.vars <- (x, Slot islot) :: sc.vars;
    let lhead = A.new_label b and lexit = A.new_label b in
    A.place b lhead;
    A.emit b (T.Load islot);
    A.emit b (T.Load lim);
    A.if_ b T.Ge lexit;
    emit_expr sc body;
    A.emit b T.Pop;
    A.emit b (T.Load islot);
    A.emit b (T.Const (T.Int 1));
    A.emit b (T.Iop T.Add);
    A.emit b (T.Store islot);
    A.goto b lhead;
    A.place b lexit;
    sc.vars <- saved;
    A.emit b (T.Const T.Null);
    A.emit b (T.Store islot);
    A.emit b (T.Const T.Null)
  | BlockT [] -> A.emit b (T.Const T.Null)
  | BlockT es ->
    let saved = sc.vars in
    let saved_lets = sc.block_lets in
    sc.block_lets <- [];
    let rec go = function
      | [] -> assert false
      | [ last ] -> emit_expr sc last
      | e :: rest ->
        emit_expr sc e;
        A.emit b T.Pop;
        go rest
    in
    go es;
    (* clear dead slots so stale references do not outlive the block *)
    List.iter
      (fun slot ->
        A.emit b (T.Const T.Null);
        A.emit b (T.Store slot))
      sc.block_lets;
    sc.block_lets <- saved_lets;
    sc.vars <- saved
  | CallFun (f, args) ->
    List.iter (emit_expr sc) args;
    let m = Vm.Classfile.own_method sc.ctx.main_cls f in
    A.emit b (T.Invoke (T.Static m))
  | CallBuiltin (cls, name, args) ->
    List.iter (emit_expr sc) args;
    let m = Vm.Classfile.static_method sc.ctx.rt ~cls ~name in
    A.emit b (T.Invoke (T.Static m))
  | CallMethod (cls, recv, name, args) ->
    emit_expr sc recv;
    List.iter (emit_expr sc) args;
    (* static receiver type as a devirtualization hint *)
    let hint = Vm.Classfile.find_class_opt sc.ctx.rt cls in
    A.emit b (T.Invoke (T.Virtual (name, List.length args, hint)))
  | CallClosure (f, args) ->
    emit_expr sc f;
    List.iter (emit_expr sc) args;
    A.emit b (T.Invoke (T.Virtual ("apply", List.length args, None)))
  | NewT (cls, args) -> (
    let vcls = Vm.Classfile.find_class sc.ctx.rt cls in
    A.emit b (T.New vcls);
    (* init may be inherited: resolve through the dispatch table *)
    match Vm.Classfile.resolve_virtual_opt vcls "init" with
    | Some init ->
      A.emit b T.Dup;
      List.iter (emit_expr sc) args;
      A.emit b (T.Invoke (T.Special init));
      A.emit b T.Pop
    | None -> ())
  | NewArrT (ty, n) -> (
    emit_expr sc n;
    A.emit b (if ty = Tfarray then T.Newfarr else T.Newarr);
    (* int/bool arrays default to 0, not null *)
    match ty with
    | Tarray (Tint | Tbool) ->
      A.emit b T.Dup;
      A.emit b (T.Const (T.Int 0));
      A.emit b
        (T.Invoke
           (T.Static (Vm.Classfile.static_method sc.ctx.rt ~cls:"Arr" ~name:"fill")));
      A.emit b T.Pop
    | Tarray Tfloat ->
      A.emit b T.Dup;
      A.emit b (T.Const (T.Float 0.0));
      A.emit b
        (T.Invoke
           (T.Static (Vm.Classfile.static_method sc.ctx.rt ~cls:"Arr" ~name:"fill")));
      A.emit b T.Pop
    | _ -> ())
  | LambdaT (params, _, body) -> emit_lambda sc params body

(* Build the closure class and emit the allocation + captures at the
   creation site. *)
and emit_lambda sc params body =
  let ctx = sc.ctx in
  let b = sc.b in
  let fvs, uses_this = lambda_free_vars params body in
  (* captured storages in the enclosing scope *)
  let captures =
    List.map
      (fun x ->
        let st = lookup_var sc body.tpos x in
        match st with
        | GlobalSlot _ -> (x, st, `Global) (* no field needed *)
        | Slot _ | Capture (_, false) -> (x, st, `ByValue)
        | BoxedSlot _ | Capture (_, true) -> (x, st, `ByBox))
      fvs
  in
  let field_captures =
    List.filter (fun (_, _, k) -> k <> `Global) captures
  in
  let cls_name = Printf.sprintf "Fn$%d" ctx.rt.T.next_cid in
  let fields =
    List.map (fun (x, _, _) -> ("c$" ^ x, true)) field_captures
    @ if uses_this then [ ("c$this", true) ] else []
  in
  let fcls = Vm.Classfile.declare_class ctx.rt ~name:cls_name ~fields () in
  (* compile the apply method *)
  let boxed_names = captured_mutables_of body in
  ignore
    (A.define_method ~src:ctx.src ctx.rt fcls ~name:"apply"
       ~nargs:(List.length params) (fun ab ->
         let inner_vars =
           List.mapi (fun i (x, _) -> (x, Slot (i + 1))) params
           @ List.map
               (fun (x, st, kind) ->
                 match kind with
                 | `Global -> (x, st)
                 | `ByValue ->
                   (x, Capture (Vm.Classfile.field fcls ("c$" ^ x), false))
                 | `ByBox ->
                   (x, Capture (Vm.Classfile.field fcls ("c$" ^ x), true)))
               captures
         in
         let inner_sc =
           {
             ctx;
             b = ab;
             vars = inner_vars;
             this_storage =
               (if uses_this then
                  Some (Capture (Vm.Classfile.field fcls "c$this", false))
                else None);
             boxed_names;
             block_lets = [];
           }
         in
         emit_expr inner_sc body;
         A.emit ab T.Retv));
  (* allocation site: new Fn$k; set capture fields *)
  A.emit b (T.New fcls);
  List.iter
    (fun (x, st, kind) ->
      match kind with
      | `Global -> ()
      | `ByValue | `ByBox ->
        A.emit b T.Dup;
        (match st, kind with
        | BoxedSlot i, `ByBox -> A.emit b (T.Load i) (* capture the box itself *)
        | Capture (f, true), `ByBox ->
          A.emit b (T.Load 0);
          A.emit b (T.Getfield f)
        | _, _ -> emit_read sc st);
        A.emit b (T.Putfield (Vm.Classfile.field fcls ("c$" ^ x))))
    field_captures;
  if uses_this then begin
    A.emit b T.Dup;
    (match sc.this_storage with
    | Some st -> emit_read sc st
    | None -> type_error body.tpos "lambda uses 'this' outside a class");
    A.emit b (T.Putfield (Vm.Classfile.field fcls "c$this"))
  end

and captured_mutables_of body = captured_names body

(* ---------- program compilation ---------- *)

(* a handle for running a loaded program *)
type compiled_program = {
  cp_ctx : ctx;
  cp_tprog : tprogram;
}

let ensure_box_cls rt =
  match Vm.Classfile.find_class_opt rt "Box" with
  | Some c -> c
  | None -> Vm.Classfile.declare_class rt ~name:"Box" ~fields:[ ("v", false) ] ()

let topo_classes (classes : tclass list) : tclass list =
  (* supers before subclasses *)
  let by_name = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_name c.tc_name c) classes;
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit c =
    if not (Hashtbl.mem seen c.tc_name) then begin
      Hashtbl.replace seen c.tc_name ();
      (match c.tc_super with
      | Some s -> (
        match Hashtbl.find_opt by_name s with Some sc -> visit sc | None -> ())
      | None -> ());
      out := c :: !out
    end
  in
  List.iter visit classes;
  List.rev !out

(* The synthetic program class is numbered per *runtime*, not per process:
   the first program loaded into any fresh runtime is always "Main$1", so
   the name is a stable symbol — profile snapshots recorded in one process
   resolve in the next (and in a second runtime booted by the same
   process), which a global counter would break. *)
let compile_typed ?(file = "<mini>") rt (tp : tprogram) : compiled_program =
  let next =
    let n = ref 0 in
    Hashtbl.iter
      (fun name _ ->
        if String.length name > 5 && String.sub name 0 5 = "Main$" then incr n)
      rt.Vm.Types.classes;
    !n + 1
  in
  let main_cls =
    Vm.Classfile.declare_class rt
      ~name:(Printf.sprintf "Main$%d" next)
      ~fields:[] ()
  in
  let ctx =
    {
      rt;
      genv = tp.p_genv;
      main_cls;
      globals = Hashtbl.create 16;
      box_cls = ensure_box_cls rt;
      src = file;
    }
  in
  (* declare classes (fields only) in topological order *)
  let ordered = topo_classes tp.p_classes in
  List.iter
    (fun c ->
      ignore
        (Vm.Classfile.declare_class rt ~name:c.tc_name ?super:c.tc_super
           ~fields:(List.map (fun (n, _, fin) -> (n, fin)) c.tc_fields)
           ()))
    ordered;
  (* allocate global slots *)
  List.iter
    (fun (name, _, _) ->
      Hashtbl.replace ctx.globals name (Vm.Runtime.alloc_global rt))
    tp.p_globals;
  (* pre-declare every method (class + top-level) so that bodies may refer
     to methods defined later in the file *)
  List.iter
    (fun c ->
      let vcls = Vm.Classfile.find_class rt c.tc_name in
      List.iter
        (fun (mname, params, _, _) ->
          ignore
            (Vm.Classfile.add_method rt vcls ~name:mname
               ~nargs:(List.length params) (T.Bytecode [||])))
        c.tc_methods)
    ordered;
  List.iter
    (fun (fname, params, _, _) ->
      ignore
        (Vm.Classfile.add_method rt main_cls ~name:fname ~static:true
           ~nargs:(List.length params) (T.Bytecode [||])))
    tp.p_funs;
  (* fill class method bodies *)
  List.iter
    (fun c ->
      let vcls = Vm.Classfile.find_class rt c.tc_name in
      List.iter
        (fun (mname, params, _, body) ->
          let m = Vm.Classfile.own_method vcls mname in
          ignore
            (A.fill_method ~src:ctx.src rt m (fun b ->
                 let sc =
                   {
                     ctx;
                     b;
                     vars = List.mapi (fun i (x, _) -> (x, Slot (i + 1))) params;
                     this_storage = Some (Slot 0);
                     boxed_names = captured_names body;
                     block_lets = [];
                   }
                 in
                 emit_expr sc body;
                 A.emit b T.Retv)))
        c.tc_methods)
    ordered;
  (* fill top-level function bodies *)
  List.iter
    (fun (fname, params, _, body) ->
      let m = Vm.Classfile.own_method main_cls fname in
      ignore
        (A.fill_method ~src:ctx.src rt m (fun b ->
             let sc =
               {
                 ctx;
                 b;
                 vars = List.mapi (fun i (x, _) -> (x, Slot i)) params;
                 this_storage = None;
                 boxed_names = captured_names body;
                 block_lets = [];
               }
             in
             emit_expr sc body;
             A.emit b T.Retv)))
    tp.p_funs;
  (* synthesize and run the global initializer *)
  if tp.p_globals <> [] then begin
    let init =
      A.define_method ~src:ctx.src rt main_cls ~name:"$init" ~static:true
        ~nargs:0 (fun b ->
          let sc =
            {
              ctx;
              b;
              vars = [];
              this_storage = None;
              boxed_names = StringSet.empty;
              block_lets = [];
            }
          in
          List.iter
            (fun (name, _, tinit) ->
              emit_expr sc tinit;
              A.emit b (T.Putglobal (Hashtbl.find ctx.globals name)))
            tp.p_globals;
          A.emit b T.Ret)
    in
    ignore (Vm.Interp.call rt init [||])
  end;
  { cp_ctx = ctx; cp_tprog = tp }

let find_function cp name = Vm.Classfile.own_method cp.cp_ctx.main_cls name

let call_function cp name args =
  Vm.Interp.call cp.cp_ctx.rt (find_function cp name) args
