(* The shared vocabulary of JIT pipeline phases.

   Before this module every layer spelled phase names by hand: the compiler
   opened spans called "stage:..." and "opt:dce", the backends "backend:closure"
   and "backend:typed", the Mini front end "front:parse" — and nothing else
   could rely on those strings.  Irtrace snapshots, the `lancet ir --phase`
   filter and the Obs span labels now all derive from the one [t] below, so a
   phase renamed here renames everywhere at once.

   [t] names the points where an IR snapshot can be taken; the span helpers
   at the bottom cover the remaining (non-snapshot) span labels so no caller
   is left with a bare string literal. *)

type t =
  | Stage (* staged graph as built; builder CSE has already run *)
  | Dce (* after dead-code elimination *)
  | Guards of string (* after branch/guard fusion in the named backend *)
  | Schedule of string (* final per-backend schedule ("closure"/"typed") *)

let name = function
  | Stage -> "stage"
  | Dce -> "dce"
  | Guards b -> "guards:" ^ b
  | Schedule b -> "schedule:" ^ b

(* Pipeline order, used to render phase sequences consistently. *)
let index = function Stage -> 0 | Dce -> 1 | Guards _ -> 2 | Schedule _ -> 3

let all_names = [ "stage"; "dce"; "guards:<backend>"; "schedule:<backend>" ]

(* Loose match for CLI filters: "--phase dce" and "--phase typed" both work.
   Substring search is inlined here: obs sits below Vm so it cannot reuse
   [Vm.Strutil.contains_sub]. *)
let matches ~filter phase_name =
  let nf = String.length filter and np = String.length phase_name in
  let rec at i =
    if i + nf > np then false
    else if String.sub phase_name i nf = filter then true
    else at (i + 1)
  in
  nf = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Span labels (the Obs event-bus vocabulary)                          *)

let cat_jit = "jit"
let cat_front = "front"

(* "stage:tier:Cls.meth" — one span per staging run, named by the compile. *)
let span_stage compile_name = "stage:" ^ compile_name

(* Retains the historical "opt:" prefix: DCE is the one graph-level opt pass. *)
let span_dce = "opt:dce"
let span_backend b = "backend:" ^ b
let span_front p = "front:" ^ p
