(* Decision forensics: a bounded journal of every tiering/compiler decision
   with its *cause*, linked by method id so causal chains are walkable —
   "deopt at line 14 (speculate guard) -> invalidate -> recompile generic ->
   evicted under cache pressure" as data, not as an eyeballed Chrome trace.

   This is the "why" layer on top of the PR-2 event bus: events say what
   happened, a [decision] says what the engine chose to do about it and
   which trigger forced the choice.  Design constraints match the bus:

   1. Disabled cost is a single load+branch: every instrumentation site is
      `if !Forensics.on then Forensics.record ...` and the journal starts
      disabled.  The overhead gate lives in `bench/main.exe forensics`.
   2. Bounded memory: decisions land in a fixed ring (default 16k entries);
      a pathological run (deopt loop, compile churn) cannot grow the heap.
   3. Allocation-light: one record per decision, no strings built on the
      hot path beyond the labels the emit site already has.
   4. Domain-safe: background JIT workers record concurrently; a mutex
      guards the ring (taken only after the [on] check), and the worker id
      is captured from [Obs.worker_id] so installs/blacklists are
      attributed to the worker domain that performed them. *)

(* ------------------------------------------------------------------ *)
(* Causes and actions                                                  *)

(* Why a decision was taken.  [Unattributed] is the explicit "no recorded
   trigger" value so sites never invent a cause. *)
type cause =
  | Hotness of { calls : int; backedges : int }
      (* crossed the promotion threshold *)
  | Guard of { tag : string; pc : int; line : int }
      (* a compiled-in guard (speculate/stable/devirt) observed a miss *)
  | Hier_change of { epoch : int; name : string }
      (* late (re)definition of virtual [name] bumped the hierarchy epoch *)
  | Gen_mismatch of { expected : int; found : int }
      (* generation stamp moved while the compile was in flight *)
  | Epoch_mismatch of { expected : int; found : int }
      (* hierarchy epoch moved while a speculating compile was in flight *)
  | Queue_full of { capacity : int } (* background queue saturated *)
  | Eviction_pressure of { occupancy : int; capacity : int }
      (* code cache at capacity; FIFO victim chosen *)
  | Worker_failure of { err : string } (* compile raised on a worker *)
  | Devirt_miss of { target : string; fails : int }
      (* repeated devirt guard misses crossed the reprofile threshold *)
  | Ic_miss of { seen : string } (* receiver class not in the inline cache *)
  | Recompile_exit of { tag : string }
      (* a [stable] side exit requested recompilation *)
  | Profile_replay of { src : string }
      (* the decision was seeded from a persisted profile snapshot *)
  | Profile_stale of { expected : string; found : string }
      (* a warm compile disagreed with the snapshot: recorded vs rebuilt
         IR fingerprint, or a recorded symbol that no longer resolves *)
  | Deopt_storm of { tag : string; pc : int; strikes : int }
      (* the governor's circuit breaker counted [strikes] deopts of the
         same guard *)
  | Watchdog_timeout of { ms : float; budget_ms : float }
      (* an in-flight compile exceeded the governor's wall-time budget *)
  | Queue_pressure of { dropped : int }
      (* sustained queue drops observed over a governor tick *)
  | Eviction_spike of { evictions : int }
      (* code-cache eviction rate spiked over a governor tick *)
  | Shutdown_timeout of { ms : int }
      (* bounded shutdown expired before the queue drained *)
  | Chaos_fault of { site : string } (* injected by the chaos harness *)
  | Unattributed

(* What the engine did.  Every variant carries only what the emit site
   already has in hand. *)
type action =
  | Promote (* hot method entered the JIT pipeline *)
  | Enqueue of { gen : int; depth : int } (* background compile queued *)
  | Dequeue of { depth : int } (* worker picked the request up *)
  | Drop (* request rejected, mutator keeps interpreting *)
  | Compile_done of { backend : string; ms : float }
  | Install of { gen : int } (* compiled entry published *)
  | Discard (* in-flight result thrown away, not installed *)
  | Deopt of { tag : string; pc : int; line : int; recompile : bool }
  | Invalidate of { gen : int } (* installed code dropped, gen bumped *)
  | Blacklist of { err : string } (* method retired to interpreter-only *)
  | Evict (* FIFO eviction from the code cache *)
  | Guard_plant of { tag : string; pc : int; line : int }
      (* compiler emitted a side-exit guard at this site *)
  | Devirt_install of { deps : string list }
      (* installed code speculates on dispatch of these names *)
  | Devirt_kill of { name : string }
      (* speculation on [name] invalidated by a hierarchy change *)
  | Ic_state of { pc : int; line : int; callee : string; state : string }
      (* inline-cache site moved to [state] ("mono"/"poly"/"mega"/...) *)
  | Ir_fingerprint of { phase : string; fp : string }
      (* structural fingerprint of the optimized graph ([Lms.Snapshot]);
         renderers compare per-method to flag byte-identical recompiles *)
  | Demote of { strikes : int; backoff : int }
      (* governor sent the method back to the interpreter; it re-promotes
         only once hotness reaches [backoff] *)
  | Repromote of { level : int }
      (* a demoted method served its backoff and re-entered the pipeline *)
  | Watchdog_kill of { ms : float; retry : bool }
      (* governor abandoned a stalled compile via a generation bump *)
  | Throttle of { knob : string; was : int; now : int }
      (* governor moved a tiering knob (backpressure / hysteresis) *)
  | Abandon of { pending : int }
      (* bounded shutdown walked away from queued compile requests *)

type decision = {
  d_ts : float; (* monotonic seconds, same clock as the bus *)
  d_mid : int; (* method id; -1 when the decision has no method *)
  d_meth : string; (* "Cls.name" label *)
  d_worker : int; (* 0 = mutator, 1..N = background JIT workers *)
  d_action : action;
  d_cause : cause;
}

(* ------------------------------------------------------------------ *)
(* The journal                                                         *)

type journal = {
  cap : int;
  data : decision array;
  mutable n : int; (* total decisions ever recorded *)
  lock : Mutex.t;
}

let dummy =
  {
    d_ts = 0.0;
    d_mid = -1;
    d_meth = "";
    d_worker = 0;
    d_action = Drop;
    d_cause = Unattributed;
  }

(* THE fast-path flag, mirroring [Obs.enabled]: instrumentation sites read
   it before building any payload. *)
let on = ref false

let journal : journal option ref = ref None

let enable ?(capacity = 16384) () =
  let cap = max 16 capacity in
  journal := Some { cap; data = Array.make cap dummy; n = 0; lock = Mutex.create () };
  on := true

let disable () =
  on := false;
  journal := None

let clear () =
  match !journal with
  | None -> ()
  | Some j ->
    Mutex.lock j.lock;
    j.n <- 0;
    Mutex.unlock j.lock

let capacity () = match !journal with Some j -> j.cap | None -> 0

(* Total decisions ever recorded (>= what survives in the ring). *)
let seen () = match !journal with Some j -> j.n | None -> 0

let record ?(cause = Unattributed) ?(mid = -1) ?(meth = "") action =
  match !journal with
  | None -> ()
  | Some j ->
    let d =
      {
        d_ts = Obs.now ();
        d_mid = mid;
        d_meth = meth;
        d_worker = Obs.worker_id ();
        d_action = action;
        d_cause = cause;
      }
    in
    Mutex.lock j.lock;
    j.data.(j.n mod j.cap) <- d;
    j.n <- j.n + 1;
    Mutex.unlock j.lock

(* Oldest-first; at most [cap] survive wraparound. *)
let decisions () =
  match !journal with
  | None -> []
  | Some j ->
    Mutex.lock j.lock;
    let k = min j.n j.cap in
    let l = List.init k (fun i -> j.data.((j.n - k + i) mod j.cap)) in
    Mutex.unlock j.lock;
    l

let for_mid mid = List.filter (fun d -> d.d_mid = mid) (decisions ())

(* Per-method timelines in first-decision order:
   [(mid, label, decisions oldest-first)]. *)
let timeline () =
  let tbl : (int, decision list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      if d.d_mid >= 0 then
        match Hashtbl.find_opt tbl d.d_mid with
        | Some l -> l := d :: !l
        | None ->
          Hashtbl.replace tbl d.d_mid (ref [ d ]);
          order := d.d_mid :: !order)
    (decisions ());
  List.rev_map
    (fun mid ->
      let ds = List.rev !(Hashtbl.find tbl mid) in
      let label =
        match List.find_opt (fun d -> d.d_meth <> "") ds with
        | Some d -> d.d_meth
        | None -> Printf.sprintf "mid %d" mid
      in
      (mid, label, ds))
    !order

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let action_name = function
  | Promote -> "promote"
  | Enqueue _ -> "enqueue"
  | Dequeue _ -> "dequeue"
  | Drop -> "drop"
  | Compile_done _ -> "compile"
  | Install _ -> "install"
  | Discard -> "discard"
  | Deopt _ -> "deopt"
  | Invalidate _ -> "invalidate"
  | Blacklist _ -> "blacklist"
  | Evict -> "evict"
  | Guard_plant _ -> "guard"
  | Devirt_install _ -> "devirt"
  | Devirt_kill _ -> "devirt-kill"
  | Ic_state _ -> "ic"
  | Ir_fingerprint _ -> "fingerprint"
  | Demote _ -> "demote"
  | Repromote _ -> "repromote"
  | Watchdog_kill _ -> "watchdog-kill"
  | Throttle _ -> "throttle"
  | Abandon _ -> "abandon"

let at_line pc line =
  if line > 0 then Printf.sprintf "@pc %d (line %d)" pc line
  else Printf.sprintf "@pc %d" pc

let action_to_string = function
  | Promote -> "promoted to tier 1"
  | Enqueue e -> Printf.sprintf "compile enqueued (gen=%d depth=%d)" e.gen e.depth
  | Dequeue e -> Printf.sprintf "compile dequeued (depth=%d)" e.depth
  | Drop -> "compile request dropped"
  | Compile_done e -> Printf.sprintf "compiled (%s backend, %.2fms)" e.backend e.ms
  | Install e -> Printf.sprintf "code installed (gen=%d)" e.gen
  | Discard -> "compile result discarded"
  | Deopt e ->
    Printf.sprintf "deopt %s '%s'%s" (at_line e.pc e.line) e.tag
      (if e.recompile then " -> recompile" else " -> interpreter")
  | Invalidate e -> Printf.sprintf "code invalidated (gen=%d)" e.gen
  | Blacklist e -> Printf.sprintf "blacklisted: %s" e.err
  | Evict -> "evicted from code cache"
  | Guard_plant e -> Printf.sprintf "guard '%s' planted %s" e.tag (at_line e.pc e.line)
  | Devirt_install e ->
    Printf.sprintf "devirtualized on {%s}" (String.concat ", " e.deps)
  | Devirt_kill e -> Printf.sprintf "devirtualization of '%s' killed" e.name
  | Ic_state e ->
    Printf.sprintf "inline cache %s -> %s on '%s'" (at_line e.pc e.line)
      e.state e.callee
  | Ir_fingerprint e ->
    let short =
      if String.length e.fp > 12 then String.sub e.fp 0 12 else e.fp
    in
    Printf.sprintf "IR fingerprint %s (%s)" short e.phase
  | Demote e ->
    Printf.sprintf "demoted to interpreter (strikes=%d, re-promote at %d)"
      e.strikes e.backoff
  | Repromote e -> Printf.sprintf "re-promoted after backoff (level %d)" e.level
  | Watchdog_kill e ->
    Printf.sprintf "stalled compile abandoned after %.0fms%s" e.ms
      (if e.retry then " -> retry once" else " -> no more retries")
  | Throttle e -> Printf.sprintf "%s throttled %d -> %d" e.knob e.was e.now
  | Abandon e ->
    Printf.sprintf "%d queued compile(s) abandoned at shutdown" e.pending

let cause_to_string = function
  | Hotness c -> Printf.sprintf "hot: calls=%d backedges=%d" c.calls c.backedges
  | Guard c -> Printf.sprintf "guard '%s' missed %s" c.tag (at_line c.pc c.line)
  | Hier_change c ->
    Printf.sprintf "hierarchy change of '%s' (epoch %d)" c.name c.epoch
  | Gen_mismatch c ->
    Printf.sprintf "generation moved %d -> %d during compile" c.expected c.found
  | Epoch_mismatch c ->
    Printf.sprintf "hierarchy epoch moved %d -> %d during compile" c.expected
      c.found
  | Queue_full c -> Printf.sprintf "compile queue full (capacity %d)" c.capacity
  | Eviction_pressure c ->
    Printf.sprintf "cache pressure (%d/%d resident)" c.occupancy c.capacity
  | Worker_failure c -> Printf.sprintf "worker failure: %s" c.err
  | Devirt_miss c ->
    Printf.sprintf "devirt guard on '%s' missed x%d" c.target c.fails
  | Ic_miss c -> Printf.sprintf "receiver %s not cached" c.seen
  | Recompile_exit c -> Printf.sprintf "recompile exit '%s'" c.tag
  | Profile_replay c -> Printf.sprintf "replayed from profile %s" c.src
  | Profile_stale c ->
    let short s = if String.length s > 12 then String.sub s 0 12 else s in
    Printf.sprintf "profile stale: recorded %s, got %s" (short c.expected)
      (short c.found)
  | Deopt_storm c ->
    Printf.sprintf "deopt storm: guard '%s' @pc %d missed x%d" c.tag c.pc
      c.strikes
  | Watchdog_timeout c ->
    Printf.sprintf "compile ran %.0fms against a %.0fms budget" c.ms c.budget_ms
  | Queue_pressure c -> Printf.sprintf "%d compile drops this tick" c.dropped
  | Eviction_spike c -> Printf.sprintf "%d evictions this tick" c.evictions
  | Shutdown_timeout c -> Printf.sprintf "shutdown timed out after %dms" c.ms
  | Chaos_fault c -> Printf.sprintf "chaos fault '%s'" c.site
  | Unattributed -> ""

(* "+  12.431ms [w1] code installed (gen=0)  <- hot: calls=40 backedges=0" *)
let decision_to_string ?(t0 = 0.0) d =
  let cause = cause_to_string d.d_cause in
  Printf.sprintf "+%9.3fms %s%s%s"
    ((d.d_ts -. t0) *. 1000.)
    (if d.d_worker > 0 then Printf.sprintf "[w%d] " d.d_worker else "")
    (action_to_string d.d_action)
    (if cause = "" then "" else "  <- " ^ cause)

(* ------------------------------------------------------------------ *)
(* Pathology detection                                                 *)

(* A detected anti-pattern with its journal evidence and the knob most
   likely to fix it.  [p_line] is 0 when only the defining line is known —
   renderers resolve that through the runtime's line tables. *)
type pathology = {
  p_kind : string;
  p_mid : int;
  p_meth : string;
  p_line : int;
  p_what : string; (* one-line diagnosis *)
  p_evidence : decision list; (* supporting journal entries, oldest-first *)
  p_knob : string; (* suggested remediation *)
}

let count p l = List.length (List.filter p l)

let evidence ?(limit = 6) p ds =
  let all = List.filter p ds in
  let n = List.length all in
  if n <= limit then all
  else
    (* keep the first and the most recent [limit-1]: the chain's start plus
       its current state *)
    List.filteri (fun i _ -> i = 0 || i > n - limit) all

let detect () =
  let paths = ref [] in
  let add p = paths := p :: !paths in
  List.iter
    (fun (mid, label, ds) ->
      let is_install d = match d.d_action with Install _ -> true | _ -> false in
      let is_evict d = match d.d_action with Evict -> true | _ -> false in
      let hier_cause d =
        match d.d_cause with
        | Hier_change { epoch; name } -> Some (epoch, name)
        | _ -> None
      in
      (* deopt loop: >= 3 deopts at one (pc); the code keeps tiering up and
         falling off the same guard *)
      let deopt_pcs = Hashtbl.create 4 in
      List.iter
        (fun d ->
          match d.d_action with
          | Deopt e ->
            let k = (e.pc, e.line, e.tag) in
            Hashtbl.replace deopt_pcs k
              (1 + Option.value ~default:0 (Hashtbl.find_opt deopt_pcs k))
          | _ -> ())
        ds;
      Hashtbl.iter
        (fun (pc, line, tag) n ->
          if n >= 3 then begin
            let hier = List.find_map hier_cause ds in
            add
              {
                p_kind = "deopt-loop";
                p_mid = mid;
                p_meth = label;
                p_line = line;
                p_what =
                  Printf.sprintf
                    "%d deopts at the same site (pc %d, guard '%s')%s" n pc tag
                    (match hier with
                    | Some (epoch, name) ->
                      Printf.sprintf ", driven by %s"
                        (cause_to_string (Hier_change { epoch; name }))
                    | None -> "");
                p_evidence =
                  evidence
                    (fun d ->
                      match d.d_action with
                      | Deopt e -> e.pc = pc
                      | Invalidate _ | Install _ -> true
                      | _ -> false)
                    ds;
                p_knob =
                  (if String.length tag >= 7 && String.sub tag 0 7 = "devirt:"
                   then
                     "the call site is not monomorphic in practice; let it \
                      reprofile (2 misses auto-invalidate) or restructure the \
                      receiver mix"
                   else
                     Printf.sprintf
                       "weaken or move the '%s' speculation%s — every miss \
                        pays a full OSR exit" tag
                       (if line > 0 then Printf.sprintf " at line %d" line
                        else ""));
              }
          end)
        deopt_pcs;
      (* hierarchy-invalidation churn: compiled code repeatedly killed by
         late method (re)definitions *)
      let hier_invalidates =
        List.filter
          (fun d ->
            match (d.d_action, d.d_cause) with
            | (Invalidate _ | Devirt_kill _), Hier_change _ -> true
            | _ -> false)
          ds
      in
      if List.length hier_invalidates >= 2 then begin
        let name, epoch =
          match List.rev hier_invalidates with
          | d :: _ -> (
            match d.d_cause with
            | Hier_change h -> (h.name, h.epoch)
            | _ -> ("?", 0))
          | [] -> ("?", 0)
        in
        add
          {
            p_kind = "hierarchy-churn";
            p_mid = mid;
            p_meth = label;
            p_line = 0;
            p_what =
              Printf.sprintf
                "compiled code invalidated x%d by late (re)definition of \
                 '%s' (hierarchy epoch now %d)"
                (List.length hier_invalidates)
                name epoch;
            p_evidence =
              evidence
                (fun d ->
                  match (d.d_action, d.d_cause) with
                  | (Invalidate _ | Devirt_kill _), _ -> true
                  | Install _, _ -> true
                  | _ -> false)
                ds;
            p_knob =
              Printf.sprintf
                "define '%s' overrides before warm-up (or raise \
                 --tier-threshold so compilation starts after the hierarchy \
                 settles)" name;
          }
      end;
      (* compile churn: the method keeps being recompiled *)
      let installs = count is_install ds in
      if installs >= 4 then
        add
          {
            p_kind = "compile-churn";
            p_mid = mid;
            p_meth = label;
            p_line = 0;
            p_what = Printf.sprintf "compiled and installed x%d" installs;
            p_evidence =
              evidence
                (fun d ->
                  match d.d_action with
                  | Install _ | Invalidate _ | Deopt _ -> true
                  | _ -> false)
                ds;
            p_knob =
              "recompilation is not converging; check for alternating \
               'stable' values or raise --tier-threshold";
          };
      (* cache thrash: evicted more than once — the cache is too small for
         the working set *)
      let evicts = count is_evict ds in
      if evicts >= 2 then
        add
          {
            p_kind = "cache-thrash";
            p_mid = mid;
            p_meth = label;
            p_line = 0;
            p_what =
              Printf.sprintf "evicted from the code cache x%d (and recompiled)"
                evicts;
            p_evidence =
              evidence
                (fun d ->
                  match d.d_action with
                  | Evict | Install _ -> true
                  | _ -> false)
                ds;
            p_knob = "raise --tier-cache above the hot-method working set";
          };
      (* megamorphic hot site: an IC inside a promoted method went mega —
         the JIT can only emit generic dispatch there *)
      let promoted =
        List.exists
          (fun d ->
            match d.d_action with Promote | Install _ -> true | _ -> false)
          ds
      in
      if promoted then
        List.iter
          (fun d ->
            match d.d_action with
            | Ic_state e when e.state = "mega" ->
              add
                {
                  p_kind = "megamorphic-site";
                  p_mid = mid;
                  p_meth = label;
                  p_line = e.line;
                  p_what =
                    Printf.sprintf
                      "call site for '%s' %s went megamorphic in a hot method"
                      e.callee (at_line e.pc e.line);
                  p_evidence =
                    evidence
                      (fun d ->
                        match d.d_action with
                        | Ic_state i -> i.pc = e.pc
                        | _ -> false)
                      ds;
                  p_knob =
                    "split the call site per receiver type; the compiled \
                     code falls back to generic dispatch here";
                }
            | _ -> ())
          ds;
      (* blacklisted: compile failures retired the method *)
      List.iter
        (fun d ->
          match d.d_action with
          | Blacklist e ->
            add
              {
                p_kind = "blacklisted";
                p_mid = mid;
                p_meth = label;
                p_line = 0;
                p_what =
                  Printf.sprintf "retired to the interpreter: %s" e.err;
                p_evidence = [ d ];
                p_knob =
                  "fix the compile failure; the method will never tier up \
                   again this run";
              }
          | _ -> ())
        ds)
    (timeline ());
  List.rev !paths
