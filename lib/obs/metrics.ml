(* An always-on metrics registry: counters, gauges and log-scale histograms
   with lock-free-ish per-domain accumulation.

   Writers touch only their own shard (indexed by [Obs.worker_id () land 7])
   with plain int loads/stores — no mutex, no atomics — so a mutator
   increment costs an array store.  Shards are folded at read/flush time;
   the occasional lost update under a same-shard race is acceptable for
   monitoring data (this is the standard statsd/prometheus-client trade).
   Registration is mutex-guarded (it's rare); reads fold all shards.

   Exported as JSON (for `lancet run --metrics out.json`) and as Prometheus
   text exposition format (for out.prom), so a run's numbers drop straight
   into existing dashboards. *)

let shards = 8

let shard () = Obs.worker_id () land (shards - 1)

type counter = { c_name : string; c_help : string; c_cells : int array }

type gauge = { g_name : string; g_help : string; mutable g_value : float }

(* Log-scale histogram: bucket [i] holds observations with
   value <= lo * base^i; the last bucket is the overflow (+Inf) bucket.
   Per-shard bucket rows, sums and counts, folded at read time. *)
type histogram = {
  h_name : string;
  h_help : string;
  h_lo : float;
  h_base : float;
  h_nb : int;
  h_counts : int array array; (* shard x bucket *)
  h_sums : float array; (* shard *)
  h_ns : int array; (* shard *)
}

type t = {
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histos : histogram list;
  reg_lock : Mutex.t;
}

let create () =
  { counters = []; gauges = []; histos = []; reg_lock = Mutex.create () }

let registered t f =
  Mutex.lock t.reg_lock;
  match f () with
  | v ->
    Mutex.unlock t.reg_lock;
    v
  | exception e ->
    Mutex.unlock t.reg_lock;
    raise e

let counter t ?(help = "") name =
  registered t (fun () ->
      match List.find_opt (fun c -> c.c_name = name) t.counters with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_help = help; c_cells = Array.make shards 0 } in
        t.counters <- t.counters @ [ c ];
        c)

let add c n =
  let s = shard () in
  c.c_cells.(s) <- c.c_cells.(s) + n

let inc c = add c 1

let value c = Array.fold_left ( + ) 0 c.c_cells

let gauge t ?(help = "") name =
  registered t (fun () ->
      match List.find_opt (fun g -> g.g_name = name) t.gauges with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_help = help; g_value = 0.0 } in
        t.gauges <- t.gauges @ [ g ];
        g)

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let histogram t ?(help = "") ?(lo = 0.001) ?(base = 2.0) ?(buckets = 28) name =
  registered t (fun () ->
      match List.find_opt (fun h -> h.h_name = name) t.histos with
      | Some h -> h
      | None ->
        let nb = max 2 buckets in
        let h =
          {
            h_name = name;
            h_help = help;
            h_lo = lo;
            h_base = Float.max 1.01 base;
            h_nb = nb;
            h_counts = Array.init shards (fun _ -> Array.make nb 0);
            h_sums = Array.make shards 0.0;
            h_ns = Array.make shards 0;
          }
        in
        t.histos <- t.histos @ [ h ];
        h)

(* Upper bound of bucket [i]; the last bucket reads as +Inf in exports. *)
let bucket_le h i = h.h_lo *. (h.h_base ** float_of_int i)

let bucket_index h v =
  if v <= h.h_lo then 0
  else
    let i =
      int_of_float (Float.ceil (Float.log (v /. h.h_lo) /. Float.log h.h_base))
    in
    if i < 0 then 0 else if i > h.h_nb - 1 then h.h_nb - 1 else i

let observe h v =
  let s = shard () in
  let b = bucket_index h v in
  h.h_counts.(s).(b) <- h.h_counts.(s).(b) + 1;
  h.h_sums.(s) <- h.h_sums.(s) +. v;
  h.h_ns.(s) <- h.h_ns.(s) + 1

(* Fold the shards: (per-bucket counts, sum, count). *)
let histo_fold h =
  let buckets = Array.make h.h_nb 0 in
  for s = 0 to shards - 1 do
    for i = 0 to h.h_nb - 1 do
      buckets.(i) <- buckets.(i) + h.h_counts.(s).(i)
    done
  done;
  let sum = Array.fold_left ( +. ) 0.0 h.h_sums in
  let n = Array.fold_left ( + ) 0 h.h_ns in
  (buckets, sum, n)

let histo_count h =
  let _, _, n = histo_fold h in
  n

(* q in [0,1]; reports the upper bound of the first bucket whose cumulative
   count reaches q * total (0.0 when empty) — the usual bucketed-quantile
   upper estimate. *)
let percentile h q =
  let buckets, _, n = histo_fold h in
  if n = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.ceil (q *. float_of_int n)) in
    let cum = ref 0 in
    let res = ref (bucket_le h (h.h_nb - 1)) in
    (try
       for i = 0 to h.h_nb - 1 do
         cum := !cum + buckets.(i);
         if float_of_int !cum >= target then begin
           res := bucket_le h i;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %d"
           (if i > 0 then "," else "")
           (json_escape c.c_name) (value c)))
    t.counters;
  Buffer.add_string b "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i g ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %g"
           (if i > 0 then "," else "")
           (json_escape g.g_name) g.g_value))
    t.gauges;
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i h ->
      let buckets, sum, n = histo_fold h in
      Buffer.add_string b
        (Printf.sprintf
           "%s\n    \"%s\": {\"count\": %d, \"sum\": %g, \"p50\": %g, \
            \"p90\": %g, \"p99\": %g, \"buckets\": ["
           (if i > 0 then "," else "")
           (json_escape h.h_name) n sum (percentile h 0.50) (percentile h 0.90)
           (percentile h 0.99));
      let first = ref true in
      Array.iteri
        (fun j c ->
          if c > 0 then begin
            if not !first then Buffer.add_string b ", ";
            first := false;
            Buffer.add_string b
              (if j = h.h_nb - 1 then
                 Printf.sprintf "{\"le\": \"+Inf\", \"n\": %d}" c
               else Printf.sprintf "{\"le\": %g, \"n\": %d}" (bucket_le h j) c)
          end)
        buckets;
      Buffer.add_string b "]}")
    t.histos;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let prom_name s =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') s

(* Prometheus text exposition format, §"text format details": HELP/TYPE
   comments, cumulative _bucket{le=...} series, _sum and _count. *)
let to_prometheus t =
  let b = Buffer.create 1024 in
  let header name help typ =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun c ->
      let name = "lancet_" ^ prom_name c.c_name ^ "_total" in
      header name c.c_help "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" name (value c)))
    t.counters;
  List.iter
    (fun g ->
      let name = "lancet_" ^ prom_name g.g_name in
      header name g.g_help "gauge";
      Buffer.add_string b (Printf.sprintf "%s %g\n" name g.g_value))
    t.gauges;
  List.iter
    (fun h ->
      let name = "lancet_" ^ prom_name h.h_name in
      header name h.h_help "histogram";
      let buckets, sum, n = histo_fold h in
      let cum = ref 0 in
      Array.iteri
        (fun j c ->
          cum := !cum + c;
          if c > 0 || j = h.h_nb - 1 then
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                 (if j = h.h_nb - 1 then "+Inf"
                  else Printf.sprintf "%g" (bucket_le h j))
                 !cum))
        buckets;
      Buffer.add_string b (Printf.sprintf "%s_sum %g\n" name sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" name n))
    t.histos;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The stock JIT metric bundle, fed from the event bus                 *)

type jit = {
  j_reg : t;
  j_promotions : counter;
  j_compiles : counter;
  j_deopts : counter;
  j_installs : counter;
  j_evictions : counter;
  j_invalidations : counter;
  j_blacklists : counter;
  j_enqueues : counter;
  j_ic_transitions : counter;
  j_devirt_fails : counter;
  j_queue_depth : gauge;
  j_cache_occupancy : gauge;
  j_ic_hit_ratio : gauge;
  j_time_to_peak_ms : gauge;
  j_profile_replayed : gauge;
  j_profile_warm_ok : gauge;
  j_profile_warm_stale : gauge;
  j_compile_ms : histogram;
  j_mutator_pause_ms : histogram;
  j_queue_wait_ms : histogram;
  j_pending : (int, float) Hashtbl.t; (* mid -> enqueue ts, for queue wait *)
}

let jit ?reg () =
  let reg = match reg with Some r -> r | None -> create () in
  {
    j_reg = reg;
    j_promotions = counter reg ~help:"methods promoted to tier 1" "promotions";
    j_compiles = counter reg ~help:"JIT graph builds completed" "compiles";
    j_deopts = counter reg ~help:"side exits taken from compiled code" "deopts";
    j_installs = counter reg ~help:"code-cache installs" "cache_installs";
    j_evictions = counter reg ~help:"code-cache FIFO evictions" "cache_evictions";
    j_invalidations =
      counter reg ~help:"code-cache invalidations" "cache_invalidations";
    j_blacklists = counter reg ~help:"methods blacklisted" "blacklists";
    j_enqueues = counter reg ~help:"background compile requests queued" "compile_enqueues";
    j_ic_transitions =
      counter reg ~help:"inline-cache state transitions" "ic_transitions";
    j_devirt_fails =
      counter reg ~help:"devirtualization guard failures" "devirt_guard_fails";
    j_queue_depth = gauge reg ~help:"background compile queue depth" "jit_queue_depth";
    j_cache_occupancy =
      gauge reg ~help:"resident compiled methods" "code_cache_occupancy";
    j_ic_hit_ratio = gauge reg ~help:"inline-cache hit ratio" "ic_hit_ratio";
    j_time_to_peak_ms =
      gauge reg
        ~help:"first JIT event to latest code-cache install (ms)"
        "time_to_peak_ms";
    j_profile_replayed =
      gauge reg ~help:"method records replayed from a profile snapshot"
        "profile_replayed_methods";
    j_profile_warm_ok =
      gauge reg
        ~help:"warm compiles whose IR fingerprint matched the snapshot"
        "profile_warm_matches";
    j_profile_warm_stale =
      gauge reg
        ~help:"warm compiles whose IR fingerprint differed from the snapshot"
        "profile_warm_stale";
    j_compile_ms =
      histogram reg ~help:"compile latency (ms)" "compile_ms";
    j_mutator_pause_ms =
      histogram reg ~help:"mutator pauses for synchronous compiles (ms)"
        "mutator_pause_ms";
    j_queue_wait_ms =
      histogram reg ~help:"enqueue-to-dequeue wait (ms)" "queue_wait_ms";
    j_pending = Hashtbl.create 16;
  }

(* Bus sink translating JIT events into the bundle.  Runs under the bus
   lock like every sink, so the pending table needs no extra guard. *)
let jit_sink j =
  (* time-to-peak: wall time from the first JIT event this sink sees to
     the most recent code-cache install — once installs stop arriving the
     gauge freezes at the warmup cost *)
  let t_first = ref nan in
  {
    Obs.sink_name = "metrics";
    sink_emit =
      (fun ~ts ev ->
        if Float.is_nan !t_first then t_first := ts;
        match ev with
        | Obs.Tier_promote _ -> inc j.j_promotions
        | Obs.Compile_end c ->
          inc j.j_compiles;
          observe j.j_compile_ms c.Obs.ci_ms;
          (* a compile on the mutator domain stalls the program for its
             full duration: that IS the pause *)
          if c.Obs.ci_worker = 0 then observe j.j_mutator_pause_ms c.Obs.ci_ms
        | Obs.Compile_enqueue e ->
          inc j.j_enqueues;
          set j.j_queue_depth (float_of_int e.depth);
          Hashtbl.replace j.j_pending e.mid ts
        | Obs.Compile_dequeue e ->
          set j.j_queue_depth (float_of_int e.depth);
          (match Hashtbl.find_opt j.j_pending e.mid with
          | Some t0 ->
            Hashtbl.remove j.j_pending e.mid;
            observe j.j_queue_wait_ms ((ts -. t0) *. 1000.)
          | None -> ())
        | Obs.Compile_blacklist _ -> inc j.j_blacklists
        | Obs.Deopt _ -> inc j.j_deopts
        | Obs.Cache_install e ->
          inc j.j_installs;
          set j.j_cache_occupancy (float_of_int e.occ);
          set j.j_time_to_peak_ms ((ts -. !t_first) *. 1000.)
        | Obs.Cache_evict e ->
          inc j.j_evictions;
          set j.j_cache_occupancy (float_of_int e.occ)
        | Obs.Cache_invalidate e ->
          inc j.j_invalidations;
          set j.j_cache_occupancy (float_of_int e.occ)
        | Obs.Ic_transition _ -> inc j.j_ic_transitions
        | Obs.Devirt_guard_fail _ -> inc j.j_devirt_fails
        | _ -> ());
    sink_flush = ignore;
  }
