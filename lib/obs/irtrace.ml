(* Pipeline introspection: per-phase IR snapshots and missed-optimization
   records.

   Forensics (PR 7) journals what the engine *decided*; this module journals
   what the optimization pipeline *did* to a method's IR — and, just as
   importantly, what it declined to do.  Every compile, when enabled, leaves
   one [snapshot] per pipeline phase (see [Phases]) and the passes themselves
   emit typed [missed] records ("CSE blocked by an effect barrier at line 12")
   that `lancet coach` joins against profile residency.

   Like Obs and Forensics, this layer sits below the VM and the IR: it never
   sees a graph.  Capture — walking nodes, counting op kinds, hashing the
   canonical form — lives in [Lms.Snapshot]; what arrives here is plain
   counts, strings and hashes.  Design constraints match the bus:

   1. Disabled cost is a single load+branch: every site is
      `if !Irtrace.on then ...` and tracing starts disabled.  The overhead
      gate lives in `bench/main.exe irtrace`.
   2. Bounded memory: snapshots land in a fixed ring and missed-optimization
      records dedupe by site into a capped table with counts.
   3. Domain-safe: background JIT workers compile concurrently; the current
      compile's identity is domain-local ([Domain.DLS]) and a mutex guards
      the store (taken only after the [on] check). *)

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

(* One phase of one compile.  [sn_cid] groups the phases of a single build;
   [sn_fp] is a digest of the graph's canonical form — stable across
   recompiles of the same (mid, spec) whatever domain built it. *)
type snapshot = {
  sn_cid : int; (* compile sequence number *)
  sn_mid : int;
  sn_meth : string; (* "Cls.name" label *)
  sn_spec : string; (* argument specialization, e.g. "ds" = dyn,static *)
  sn_phase : string; (* Phases.name *)
  sn_blocks : int;
  sn_nodes : int;
  sn_ops : (string * int) list; (* op kind -> live node count, sorted *)
  sn_lines : (int * int) list; (* source line -> node count, sorted *)
  sn_fp : string; (* structural fingerprint (hex digest) *)
  sn_text : string option; (* annotated pretty-print, when [keep_text] *)
  sn_meta : (string * string) list; (* phase-specific detail, e.g. cse hits *)
}

(* Why an optimization did not fire.  Each constructor is one pass's decline
   with the machine-readable detail the emit site had in hand. *)
type miss_reason =
  | Cse_effect_barrier of { op : string }
      (* a repeated load the builder could not hash-cons: the op is
         effect-tagged (mutable field, global, array cell) even though no
         intervening write was seen in the block *)
  | Dce_kept_effectful of { op : string }
      (* the node's value is never used, but its effect pins it *)
  | Devirt_declined of { callee : string; ic_state : string }
      (* speculative devirtualization declined; [ic_state] is the inline
         cache state that forced the decision ("mega", "poly:{A,B}", ...) *)
  | Guard_fusion_declined of { cond : string; why : string }
      (* a branch compare could not fuse into the branch: "multi-use",
         "cross-block", or "materialized-bool" (the compare was lowered to
         a 0/1 join in a predecessor block) *)

type missed = {
  ms_mid : int;
  ms_meth : string;
  ms_phase : string; (* pipeline phase that declined *)
  ms_pc : int; (* bytecode pc from prov; -1 when unknown *)
  ms_line : int; (* source line from prov; 0 when unknown *)
  ms_reason : miss_reason;
  mutable ms_count : int; (* occurrences (recompiles re-report the site) *)
}

(* ------------------------------------------------------------------ *)
(* The store                                                           *)

type store = {
  cap : int; (* snapshot ring capacity *)
  snaps : snapshot array;
  mutable n : int; (* total snapshots ever recorded *)
  misses : (int * int * string, missed) Hashtbl.t; (* (mid, pc, key) *)
  mutable miss_order : (int * int * string) list; (* newest-first keys *)
  miss_cap : int;
  keep_text : bool;
  fps : (int * string * string, string) Hashtbl.t;
      (* (mid, spec, phase) -> last fingerprint seen *)
  mutable refits : int; (* snapshots that matched the previous fingerprint *)
  lock : Mutex.t;
}

let dummy_snapshot =
  {
    sn_cid = -1;
    sn_mid = -1;
    sn_meth = "";
    sn_spec = "";
    sn_phase = "";
    sn_blocks = 0;
    sn_nodes = 0;
    sn_ops = [];
    sn_lines = [];
    sn_fp = "";
    sn_text = None;
    sn_meta = [];
  }

(* THE fast-path flag, mirroring [Obs.enabled] and [Forensics.on]. *)
let on = ref false

let store : store option ref = ref None

let enable ?(capacity = 1024) ?(keep_text = false) () =
  let cap = max 16 capacity in
  store :=
    Some
      {
        cap;
        snaps = Array.make cap dummy_snapshot;
        n = 0;
        misses = Hashtbl.create 64;
        miss_order = [];
        miss_cap = 4096;
        keep_text;
        fps = Hashtbl.create 64;
        refits = 0;
        lock = Mutex.create ();
      };
  on := true

let disable () =
  on := false;
  store := None

(* Should capture sites build the pretty-printed text?  Read without the
   lock: it is fixed for the lifetime of one [enable]. *)
let keep_text () = match !store with Some s -> s.keep_text | None -> false

let seen () = match !store with Some s -> s.n | None -> 0

(* ------------------------------------------------------------------ *)
(* Current compile (domain-local)                                      *)

(* A compile runs start-to-finish on one domain (the mutator or a background
   JIT worker), so the compile's identity travels in domain-local storage
   instead of being threaded through every backend signature. *)
type compile_ctx = { cc_cid : int; cc_mid : int; cc_meth : string; cc_spec : string }

let ctx_key : compile_ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let next_cid = Atomic.make 0

let begin_compile ~mid ~meth ~spec =
  Domain.DLS.set ctx_key
    (Some
       {
         cc_cid = Atomic.fetch_and_add next_cid 1;
         cc_mid = mid;
         cc_meth = meth;
         cc_spec = spec;
       })

let current () = Domain.DLS.get ctx_key

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

(* Called by [Lms.Snapshot.take] with the summarized graph.  Returns whether
   this fingerprint reproduced the previous one for the same
   (mid, spec, phase) — the "byte-identical recompile" signal. *)
let record_snapshot ~phase ~blocks ~nodes ~ops ~lines ~fp ?text ?(meta = []) () =
  match !store with
  | None -> false
  | Some s ->
    let cid, mid, meth, spec =
      match current () with
      | Some c -> (c.cc_cid, c.cc_mid, c.cc_meth, c.cc_spec)
      | None -> (-1, -1, "", "")
    in
    let sn =
      {
        sn_cid = cid;
        sn_mid = mid;
        sn_meth = meth;
        sn_spec = spec;
        sn_phase = phase;
        sn_blocks = blocks;
        sn_nodes = nodes;
        sn_ops = ops;
        sn_lines = lines;
        sn_fp = fp;
        sn_text = text;
        sn_meta = meta;
      }
    in
    Mutex.lock s.lock;
    s.snaps.(s.n mod s.cap) <- sn;
    s.n <- s.n + 1;
    let key = (mid, spec, phase) in
    let same = Hashtbl.find_opt s.fps key = Some fp in
    if same then s.refits <- s.refits + 1 else Hashtbl.replace s.fps key fp;
    Mutex.unlock s.lock;
    same

let reason_key = function
  | Cse_effect_barrier m -> "cse-effect-barrier:" ^ m.op
  | Dce_kept_effectful m -> "dce-kept-effectful:" ^ m.op
  | Devirt_declined m -> "devirt-declined:" ^ m.callee ^ ":" ^ m.ic_state
  | Guard_fusion_declined m -> "guard-fusion-declined:" ^ m.why

(* The stable machine-readable kind, without per-site detail. *)
let reason_kind = function
  | Cse_effect_barrier _ -> "cse-effect-barrier"
  | Dce_kept_effectful _ -> "dce-kept-effectful"
  | Devirt_declined _ -> "devirt-declined"
  | Guard_fusion_declined _ -> "guard-fusion-declined"

let reason_to_string = function
  | Cse_effect_barrier m ->
    Printf.sprintf "CSE blocked by effect barrier: '%s' reloaded (the JIT \
                    cannot prove no intervening write)" m.op
  | Dce_kept_effectful m ->
    Printf.sprintf "DCE kept '%s': result unused but the op has effects" m.op
  | Devirt_declined m ->
    Printf.sprintf "devirt of '%s' declined (inline cache: %s)" m.callee
      m.ic_state
  | Guard_fusion_declined m ->
    Printf.sprintf "guard fusion declined for '%s' (%s compare)" m.cond m.why

let record_miss ~phase ?(mid = -1) ?(meth = "") ~pc ~line reason =
  match !store with
  | None -> ()
  | Some s ->
    let key = (mid, pc, reason_key reason) in
    Mutex.lock s.lock;
    (match Hashtbl.find_opt s.misses key with
    | Some m -> m.ms_count <- m.ms_count + 1
    | None ->
      if Hashtbl.length s.misses < s.miss_cap then begin
        Hashtbl.replace s.misses key
          {
            ms_mid = mid;
            ms_meth = meth;
            ms_phase = phase;
            ms_pc = pc;
            ms_line = line;
            ms_reason = reason;
            ms_count = 1;
          };
        s.miss_order <- key :: s.miss_order
      end);
    Mutex.unlock s.lock

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(* Oldest-first; at most [cap] survive wraparound. *)
let snapshots () =
  match !store with
  | None -> []
  | Some s ->
    Mutex.lock s.lock;
    let k = min s.n s.cap in
    let l = List.init k (fun i -> s.snaps.((s.n - k + i) mod s.cap)) in
    Mutex.unlock s.lock;
    l

(* First-recorded-first, with deduped counts. *)
let misses () =
  match !store with
  | None -> []
  | Some s ->
    Mutex.lock s.lock;
    let l = List.rev_map (fun k -> Hashtbl.find s.misses k) s.miss_order in
    Mutex.unlock s.lock;
    l

(* Snapshots that reproduced the previous fingerprint of their
   (mid, spec, phase) — recompiles that changed nothing. *)
let identical_recompiles () = match !store with Some s -> s.refits | None -> 0

let last_fp ~mid ~spec ~phase =
  match !store with
  | None -> None
  | Some s ->
    Mutex.lock s.lock;
    let r = Hashtbl.find_opt s.fps (mid, spec, phase) in
    Mutex.unlock s.lock;
    r

(* ------------------------------------------------------------------ *)
(* Structural diffing                                                  *)

(* Delta between two snapshots of the same compile: what the later phase
   created and eliminated, per op kind and per source line. *)
type diff = {
  df_from : string; (* phase names *)
  df_to : string;
  df_nodes : int * int;
  df_created : (string * int) list; (* op kind -> nodes gained *)
  df_eliminated : (string * int) list; (* op kind -> nodes lost *)
  df_lines : (int * int) list; (* line -> node delta (negative = removed) *)
}

(* Merge two sorted association lists into (key, before, after) triples. *)
let merge_counts a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (v, 0)) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some (x, _) -> Hashtbl.replace tbl k (x, v)
      | None -> Hashtbl.replace tbl k (0, v))
    b;
  let l = Hashtbl.fold (fun k (x, y) acc -> (k, x, y) :: acc) tbl [] in
  List.sort compare l

let diff a b =
  let ops = merge_counts a.sn_ops b.sn_ops in
  let created =
    List.filter_map (fun (k, x, y) -> if y > x then Some (k, y - x) else None) ops
  in
  let eliminated =
    List.filter_map (fun (k, x, y) -> if x > y then Some (k, x - y) else None) ops
  in
  let lines =
    List.filter_map
      (fun (l, x, y) -> if y <> x then Some (l, y - x) else None)
      (merge_counts a.sn_lines b.sn_lines)
  in
  {
    df_from = a.sn_phase;
    df_to = b.sn_phase;
    df_nodes = (a.sn_nodes, b.sn_nodes);
    df_created = created;
    df_eliminated = eliminated;
    df_lines = lines;
  }
