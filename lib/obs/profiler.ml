(* Sampling profiler over the event bus: aggregates the interpreter's
   [Stack_sample] events (timer-driven call-stack samples, innermost frame
   first) together with the exact [Exec_sample] / [Deopt] attribution coming
   from compiled code, into

   - a folded-stack table consumable by standard flamegraph tools
     (`flamegraph.pl`, speedscope, inferno): one "frame;frame;frame count"
     line per distinct stack, frames annotated with their source line;
   - per-source-line residency: tier-0 samples vs compiled-execution
     milliseconds, plus deopt counts, for the `lancet explain` view.

   The sampling *driver* lives in the interpreter (it owns the frame chain);
   the checkpoint flag and deadline live in [Obs] ([Obs.sampling],
   [Obs.sample_due]) so that with sampling off the interpreter pays a single
   load+branch per step and this module is never on the fast path. *)

type line_stat = {
  mutable ls_label : string; (* a method label owning the line, for display *)
  mutable ls_samples : int; (* tier-0 (interpreter) stack samples *)
  mutable ls_exec_ms : float; (* compiled execution time attributed here *)
  mutable ls_deopts : int;
}

type t = {
  interval_ms : float; (* sampling period the driver was started with *)
  folded : (string, int) Hashtbl.t; (* folded stack -> sample count *)
  lines : (int, line_stat) Hashtbl.t; (* source line -> residency *)
  mutable samples : int; (* total stack samples seen *)
  mutable attributed : int; (* samples whose leaf frame had a line *)
  mutable exec_ms : float; (* total compiled execution time *)
  mutable exec_ms_attributed : float; (* ... with a known defining line *)
}

let create ?(interval_ms = 1.0) () =
  {
    interval_ms;
    folded = Hashtbl.create 64;
    lines = Hashtbl.create 64;
    samples = 0;
    attributed = 0;
    exec_ms = 0.0;
    exec_ms_attributed = 0.0;
  }

let line_stat t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
    let ls = { ls_label = ""; ls_samples = 0; ls_exec_ms = 0.0; ls_deopts = 0 } in
    Hashtbl.replace t.lines line ls;
    ls

let frame_name (label, line) =
  if line > 0 then Printf.sprintf "%s:%d" label line else label

let bump_folded t key n =
  Hashtbl.replace t.folded key
    (n + Option.value ~default:0 (Hashtbl.find_opt t.folded key))

let on_event t (ev : Obs.event) =
  match ev with
  | Obs.Stack_sample { stack } ->
    t.samples <- t.samples + 1;
    (match stack with
    | ((label, line) :: _) when line > 0 ->
      t.attributed <- t.attributed + 1;
      let ls = line_stat t line in
      if ls.ls_label = "" then ls.ls_label <- label;
      ls.ls_samples <- ls.ls_samples + 1
    | _ -> ());
    (* folded stacks are rendered root-first *)
    bump_folded t (String.concat ";" (List.rev_map frame_name stack)) 1
  | Obs.Exec_sample { meth; ms; line; _ } ->
    t.exec_ms <- t.exec_ms +. ms;
    if line > 0 then begin
      t.exec_ms_attributed <- t.exec_ms_attributed +. ms;
      let ls = line_stat t line in
      if ls.ls_label = "" then ls.ls_label <- meth;
      ls.ls_exec_ms <- ls.ls_exec_ms +. ms
    end
  | Obs.Deopt { meth; line; _ } ->
    if line > 0 then begin
      let ls = line_stat t line in
      if ls.ls_label = "" then ls.ls_label <- meth;
      ls.ls_deopts <- ls.ls_deopts + 1
    end
  | _ -> ()

let sink t =
  {
    Obs.sink_name = "profiler";
    sink_emit = (fun ~ts:_ ev -> on_event t ev);
    sink_flush = ignore;
  }

(* Run [f] with the profiler attached and the interpreter's sampling
   checkpoint armed; sampling stops and the sink detaches on the way out,
   even on an exception. *)
let profiled t f =
  let s = sink t in
  Obs.attach s;
  Obs.start_sampling ~interval_ms:t.interval_ms ();
  Fun.protect
    ~finally:(fun () ->
      Obs.stop_sampling ();
      Obs.detach s)
    f

(* ---- outputs ---- *)

(* Folded-stack lines, alphabetical (stable for tests).  Compiled execution
   time has no stack samples — it is measured exactly instead — so it is
   folded in as synthetic `...;[compiled]` frames weighted by the sampling
   interval, keeping interpreter and compiled residency comparable in one
   flamegraph. *)
let folded t =
  let b = Buffer.create 1024 in
  let entries =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.folded []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (k, n) -> if k <> "" then Buffer.add_string b (Printf.sprintf "%s %d\n" k n))
    entries;
  let compiled =
    Hashtbl.fold
      (fun line ls acc ->
        if ls.ls_exec_ms > 0.0 then (line, ls) :: acc else acc)
      t.lines []
    |> List.sort compare
  in
  List.iter
    (fun (line, ls) ->
      let w =
        int_of_float (Float.round (ls.ls_exec_ms /. Float.max t.interval_ms 1e-6))
      in
      if w > 0 then
        Buffer.add_string b
          (Printf.sprintf "%s:%d;[compiled] %d\n" ls.ls_label line w))
    compiled;
  Buffer.contents b

let write_folded t path =
  let oc = open_out path in
  output_string oc (folded t);
  close_out oc

(* Per-line residency, sorted by source line. *)
let line_stats t =
  Hashtbl.fold (fun line ls acc -> (line, ls) :: acc) t.lines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Fraction of observed run time attributed to a source line: the minimum of
   sample attribution (tier 0) and compiled-time attribution, so a gap in
   either line table shows up.  1.0 when nothing was observed. *)
let coverage t =
  let s =
    if t.samples = 0 then 1.0
    else float_of_int t.attributed /. float_of_int t.samples
  in
  let x = if t.exec_ms <= 0.0 then 1.0 else t.exec_ms_attributed /. t.exec_ms in
  Float.min s x

let report t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%5s  %-32s %10s %12s %7s\n" "line" "method" "t0-samples"
       "compiled-ms" "deopts");
  List.iter
    (fun (line, ls) ->
      Buffer.add_string b
        (Printf.sprintf "%5d  %-32s %10d %12.2f %7d\n" line ls.ls_label
           ls.ls_samples ls.ls_exec_ms ls.ls_deopts))
    (line_stats t);
  Buffer.add_string b
    (Printf.sprintf
       "%d samples (%d line-attributed), %.2fms compiled (%.2fms attributed), \
        coverage %.0f%%\n"
       t.samples t.attributed t.exec_ms t.exec_ms_attributed
       (100.0 *. coverage t));
  Buffer.contents b
