(* Structured observability for the surgical JIT (the "what did the JIT
   actually do" layer): a zero-dependency event bus with typed events and
   pluggable sinks.

   Design constraints, in order:
   1. When no sink is attached, an emit site must cost a single load+branch
      (`if !Obs.enabled then Obs.emit (...)`) — the event payload is only
      allocated inside the branch.  This keeps instrumentation in the
      interpreter dispatch loop and the compiled-code entry points free.
   2. The bus is below every other library (it knows nothing about the VM),
      so events carry plain strings and ints: method ids, "Cls.name" labels,
      bytecode pcs.  The VM/JIT layers translate at the emit site.
   3. Sinks are synchronous and composable: a ring buffer for tests and
      post-mortem dumps, a text log in the spirit of HotSpot's
      -XX:+PrintCompilation, a Chrome trace_event JSON writer for
      chrome://tracing, and a per-method profile aggregator.
   4. The bus is domain-safe: with background JIT compilation, events
      arrive concurrently from worker domains, so sink dispatch is guarded
      by a mutex.  The no-sink fast path is unchanged — a single
      load+branch, no lock taken. *)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

type compile_info = {
  ci_meth : string; (* "Cls.name" *)
  ci_mid : int; (* method id, stable key across events *)
  ci_tier : int; (* 1 = tiered method JIT, 0 = explicit Lancet.compile *)
  ci_worker : int; (* JIT worker domain running the compile; 0 = mutator *)
  ci_backend : string; (* "typed" | "closure" | "failed" *)
  ci_fallback : string option; (* why the typed backend was rejected *)
  ci_nodes_in : int; (* IR nodes after staging, before optimization *)
  ci_nodes_out : int; (* after dead-code elimination *)
  ci_ms : float; (* wall time of stage + opt + backend *)
}

type deopt_kind = Interpret | Recompile

type event =
  | Compile_start of { meth : string; mid : int; tier : int; worker : int }
  | Compile_end of compile_info
  | Compile_enqueue of { meth : string; mid : int; gen : int; depth : int }
      (* a compile request entered the background queue; [depth] is the
         queue depth just after the enqueue *)
  | Compile_dequeue of { meth : string; mid : int; worker : int; depth : int }
      (* a JIT worker picked the request up; [depth] is what remains *)
  | Compile_blacklist of {
      meth : string;
      mid : int;
      worker : int;
      loc : string; (* "file:line" of the method definition, or "?" *)
      err : string; (* the exception / refusal that killed the compile *)
    }
  | Deopt of {
      meth : string;
      mid : int;
      kind : deopt_kind;
      tag : string;
      pc : int;
      line : int; (* source line of the side-exit site; 0 = unknown *)
    }
  | Tier_promote of { meth : string; mid : int; calls : int; backedges : int }
  | Cache_install of { meth : string; mid : int; gen : int; occ : int }
      (* [occ] on the cache events is the number of resident compiled
         methods just after the operation, for occupancy tracking *)
  | Cache_evict of { meth : string; mid : int; occ : int }
  | Cache_invalidate of { meth : string; mid : int; gen : int; occ : int }
  | Macro_expand of { name : string; in_meth : string }
  | Interp_call of { meth : string; mid : int; calls : int; backedges : int }
  | Exec_sample of { meth : string; mid : int; calls : int; ms : float; line : int }
      (* cumulative compiled-code execution since the previous sample;
         [line] is the method's defining source line (0 = unknown) *)
  | Stack_sample of { stack : (string * int) list }
      (* one interpreter call-stack sample, innermost frame first:
         (method label, source line at the sampled pc; 0 = unknown) *)
  | Span_begin of { name : string; cat : string }
  | Span_end of { name : string; cat : string; ms : float }
  | Ic_transition of {
      meth : string; (* enclosing method label *)
      mid : int;
      pc : int;
      callee : string; (* virtual method name the site dispatches *)
      from_state : string; (* "empty" | "mono" | "poly" | "mega" *)
      to_state : string;
    }
  | Devirt_guard_fail of {
      meth : string;
      mid : int;
      pc : int;
      target : string; (* "name@ExpectedCls" the compiled guard tested *)
    }

(* THE event-kind renderer.  Every sink that prints a kind goes through
   this one function (the per-sink match arms it replaces had drifted out
   of sync as events were added across releases). *)
let kind_to_string = function
  | Compile_start _ -> "compile-start"
  | Compile_end _ -> "compile-end"
  | Compile_enqueue _ -> "compile-enqueue"
  | Compile_dequeue _ -> "compile-dequeue"
  | Compile_blacklist _ -> "compile-blacklist"
  | Deopt _ -> "deopt"
  | Tier_promote _ -> "tier-promote"
  | Cache_install _ -> "cache-install"
  | Cache_evict _ -> "cache-evict"
  | Cache_invalidate _ -> "cache-invalidate"
  | Macro_expand _ -> "macro-expand"
  | Interp_call _ -> "interp-call"
  | Exec_sample _ -> "exec-sample"
  | Stack_sample _ -> "stack-sample"
  | Span_begin _ -> "span-begin"
  | Span_end _ -> "span-end"
  | Ic_transition _ -> "ic-transition"
  | Devirt_guard_fail _ -> "devirt-guard-fail"

let deopt_kind_name = function Interpret -> "interpret" | Recompile -> "recompile"

let to_string ev =
  match ev with
  | Compile_start e ->
    Printf.sprintf "%-16s tier%d %s%s" (kind_to_string ev) e.tier e.meth
      (if e.worker > 0 then Printf.sprintf " [worker %d]" e.worker else "")
  | Compile_end c ->
    Printf.sprintf "%-16s tier%d %-32s backend=%s%s nodes %d->%d %.2fms%s"
      (kind_to_string ev) c.ci_tier c.ci_meth c.ci_backend
      (match c.ci_fallback with
      | Some r -> Printf.sprintf " (fallback: %s)" r
      | None -> "")
      c.ci_nodes_in c.ci_nodes_out c.ci_ms
      (if c.ci_worker > 0 then Printf.sprintf " [worker %d]" c.ci_worker
       else "")
  | Compile_enqueue e ->
    Printf.sprintf "%-16s %s gen=%d depth=%d" (kind_to_string ev) e.meth e.gen
      e.depth
  | Compile_dequeue e ->
    Printf.sprintf "%-16s %s [worker %d] depth=%d" (kind_to_string ev) e.meth
      e.worker e.depth
  | Compile_blacklist e ->
    Printf.sprintf "%-16s %s [worker %d] at %s: %s" (kind_to_string ev) e.meth
      e.worker e.loc e.err
  | Deopt e ->
    Printf.sprintf "%-16s %s @pc %d%s (%s, %s)" (kind_to_string ev) e.meth e.pc
      (if e.line > 0 then Printf.sprintf " line %d" e.line else "")
      e.tag (deopt_kind_name e.kind)
  | Tier_promote e ->
    Printf.sprintf "%-16s %s (calls=%d backedges=%d)" (kind_to_string ev) e.meth
      e.calls e.backedges
  | Cache_install e ->
    Printf.sprintf "%-16s %s gen=%d occ=%d" (kind_to_string ev) e.meth e.gen
      e.occ
  | Cache_evict e ->
    Printf.sprintf "%-16s %s occ=%d" (kind_to_string ev) e.meth e.occ
  | Cache_invalidate e ->
    Printf.sprintf "%-16s %s gen=%d occ=%d" (kind_to_string ev) e.meth e.gen
      e.occ
  | Macro_expand e ->
    Printf.sprintf "%-16s %s in %s" (kind_to_string ev) e.name e.in_meth
  | Interp_call e ->
    Printf.sprintf "%-16s %s calls=%d backedges=%d" (kind_to_string ev) e.meth
      e.calls e.backedges
  | Exec_sample e ->
    Printf.sprintf "%-16s %s calls=%d %.3fms" (kind_to_string ev) e.meth e.calls e.ms
  | Stack_sample e ->
    Printf.sprintf "%-16s %s" (kind_to_string ev)
      (String.concat ";"
         (List.map
            (fun (m, l) -> if l > 0 then Printf.sprintf "%s:%d" m l else m)
            e.stack))
  | Span_begin e -> Printf.sprintf "%-16s %s [%s]" (kind_to_string ev) e.name e.cat
  | Span_end e ->
    Printf.sprintf "%-16s %s [%s] %.3fms" (kind_to_string ev) e.name e.cat e.ms
  | Ic_transition e ->
    Printf.sprintf "%-16s %s @pc %d %s %s->%s" (kind_to_string ev) e.meth e.pc
      e.callee e.from_state e.to_state
  | Devirt_guard_fail e ->
    Printf.sprintf "%-16s %s @pc %d %s" (kind_to_string ev) e.meth e.pc e.target

(* The compilation-lifecycle subset, for -print-compilation-style logs:
   everything a method's journey through the JIT produces, excluding the
   high-frequency sampling/span noise.  Shared by the CLI's
   --print-compilation filter so new event kinds show up there by default. *)
let compilation_event = function
  | Compile_start _ | Compile_end _ | Compile_enqueue _ | Compile_dequeue _
  | Compile_blacklist _ | Deopt _ | Tier_promote _ | Cache_install _
  | Cache_evict _ | Cache_invalidate _ | Ic_transition _ | Devirt_guard_fail _
    ->
    true
  | Macro_expand _ | Interp_call _ | Exec_sample _ | Stack_sample _
  | Span_begin _ | Span_end _ ->
    false

(* ------------------------------------------------------------------ *)
(* The bus                                                             *)

type sink = {
  sink_name : string;
  sink_emit : ts:float -> event -> unit; (* ts: seconds, monotonic *)
  sink_flush : unit -> unit;
}

(* THE fast-path flag: true iff at least one sink is attached.  Emit sites
   must read it before allocating their event payload. *)
let enabled = ref false

let sinks : sink list ref = ref []

(* Sink dispatch is serialized: events arrive concurrently from the mutator
   and background JIT worker domains, and the stock sinks mutate shared
   buffers/tables.  The lock is taken only after the [enabled] check, so
   the no-sink fast path stays a single load+branch. *)
let bus_lock = Mutex.create ()

let locked f =
  Mutex.lock bus_lock;
  match f () with
  | v ->
    Mutex.unlock bus_lock;
    v
  | exception e ->
    Mutex.unlock bus_lock;
    raise e

(* Which JIT worker domain is running, for worker-tagged events (and the
   per-worker tracks of the Chrome sink).  0 = the mutator; background
   workers set 1..N at startup. *)
let worker_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let set_worker i = Domain.DLS.set worker_key i

let worker_id () = Domain.DLS.get worker_key

(* Monotonic time in seconds (CLOCK_MONOTONIC via bechamel's C stub).  All
   durations, sink timestamps and the sampling deadline use this source, so
   a wall-clock step can never corrupt a span or compile timing.  [epoch]
   remains available for the rare consumer that needs absolute time; no
   current sink does (Chrome trace timestamps are relative to trace start). *)
let monotime () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let epoch = Unix.gettimeofday

let now = monotime

let attach s =
  locked (fun () ->
      sinks := !sinks @ [ s ];
      enabled := true)

let detach s =
  locked (fun () ->
      sinks := List.filter (fun x -> x != s) !sinks;
      enabled := !sinks <> [])

let emit ev =
  if !enabled then begin
    let ts = now () in
    locked (fun () -> List.iter (fun s -> s.sink_emit ~ts ev) !sinks)
  end

(* Pre-flush hooks: emitters that batch state between events (e.g. the
   compiled-code execution sampler in [Tiering], which accumulates wall time
   and flushes every 64th call) register a hook here so the remainder is
   emitted before sinks flush or a trace is written — otherwise short runs
   under-report.  Hooks must be idempotent; they run outside [bus_lock]
   because they emit. *)
let flushers : (unit -> unit) list ref = ref []

let add_flusher f = locked (fun () -> flushers := f :: !flushers)

let run_flushers () =
  let fs = locked (fun () -> !flushers) in
  List.iter (fun f -> f ()) fs

(* One [at_exit] for every exit-time writer: the Chrome-trace writer, the
   profile-snapshot writer and pending Exec_sample remainders all register
   plain flushers and this single hook runs the registry once at process
   exit.  Idempotent, so layered boots ([boot_bg] calls [boot]) and multiple
   writers never stack duplicate [at_exit] registrations. *)
let exit_flush_armed = ref false

let arm_exit_flush () =
  let arm =
    locked (fun () ->
        if !exit_flush_armed then false
        else begin
          exit_flush_armed := true;
          true
        end)
  in
  if arm then at_exit run_flushers

let flush () =
  run_flushers ();
  locked (fun () -> List.iter (fun s -> s.sink_flush ()) !sinks)

let with_sink s f =
  attach s;
  Fun.protect ~finally:(fun () -> detach s) f

(* ------------------------------------------------------------------ *)
(* Sampling checkpoint (driven by the interpreter, consumed by the
   profiler in [Profiler]).  The flag lives here, not in the profiler
   module, so the interpreter's fast path is a single load+branch with no
   cross-module cycle: [Profiler] depends on [Obs], never the reverse. *)

let sampling = ref false

let sample_interval = ref 0.001 (* seconds *)

let sample_next = ref infinity (* monotonic deadline for the next sample *)

let start_sampling ?(interval_ms = 1.0) () =
  sample_interval := Float.max 1e-5 (interval_ms /. 1000.);
  sample_next := monotime ();
  sampling := true

let stop_sampling () =
  sampling := false;
  sample_next := infinity

(* Called from a sampling checkpoint (guarded by [!sampling]): true when a
   sample is due now, advancing the deadline.  Skipped intervals (a long
   pause in compiled code or a blocking native) do not cause a burst of
   catch-up samples: the next deadline is always relative to [now]. *)
let sample_due () =
  !sampling
  &&
  let t = monotime () in
  if t >= !sample_next then begin
    sample_next := t +. !sample_interval;
    true
  end
  else false

(* Phase span: Span_begin/Span_end around [f], timing included.  With no
   sink attached this is a single branch plus a tail call. *)
let span ?(cat = "phase") name f =
  if not !enabled then f ()
  else begin
    emit (Span_begin { name; cat });
    let t0 = now () in
    let fin () = emit (Span_end { name; cat; ms = (now () -. t0) *. 1000. }) in
    match f () with
    | v ->
      fin ();
      v
    | exception e ->
      fin ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Text sink (PrintCompilation-style log lines)                        *)

let text_sink ?(out = prerr_string) () =
  {
    sink_name = "text";
    sink_emit = (fun ~ts:_ ev -> out ("[obs] " ^ to_string ev ^ "\n"));
    sink_flush = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Ring-buffer sink                                                    *)

module Ring = struct
  type t = {
    cap : int;
    data : (float * event) array;
    mutable n : int; (* total events ever pushed *)
  }

  let dummy = (0.0, Span_begin { name = ""; cat = "" })

  let create ?(capacity = 8192) () =
    { cap = max 1 capacity; data = Array.make (max 1 capacity) dummy; n = 0 }

  let push t ts ev =
    t.data.(t.n mod t.cap) <- (ts, ev);
    t.n <- t.n + 1

  let seen t = t.n

  (* oldest-first; at most [cap] entries survive wraparound *)
  let contents t =
    let k = min t.n t.cap in
    List.init k (fun i -> t.data.((t.n - k + i) mod t.cap))

  let events t = List.map snd (contents t)

  let clear t = t.n <- 0

  let sink t =
    {
      sink_name = "ring";
      sink_emit = (fun ~ts ev -> push t ts ev);
      sink_flush = ignore;
    }
end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON sink (load in chrome://tracing or Perfetto)  *)

module Chrome = struct
  type t = { buf : Buffer.t; mutable count : int; t0 : float }

  let create () = { buf = Buffer.create 4096; count = 0; t0 = now () }

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* one trace_event record; [args] are pre-rendered "key":value pairs.
     [tid] 1 is the mutator; background JIT workers use 1+worker so their
     compiles render as separate tracks in chrome://tracing. *)
  let record t ?(tid = 1) ~ph ~name ~cat ~ts_us (args : string list) =
    if t.count > 0 then Buffer.add_string t.buf ",\n";
    t.count <- t.count + 1;
    Buffer.add_string t.buf
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
         (escape name) (escape cat) ph tid ts_us);
    (match ph with
    | "i" -> Buffer.add_string t.buf ",\"s\":\"t\""
    | _ -> ());
    (match args with
    | [] -> ()
    | l ->
      Buffer.add_string t.buf ",\"args\":{";
      Buffer.add_string t.buf (String.concat "," l);
      Buffer.add_string t.buf "}");
    Buffer.add_string t.buf "}"

  let str k v = Printf.sprintf "\"%s\":\"%s\"" k (escape v)
  let int_ k v = Printf.sprintf "\"%s\":%d" k v
  let float_ k v = Printf.sprintf "\"%s\":%.3f" k v

  let on_event t ~ts ev =
    let ts_us = (ts -. t.t0) *. 1e6 in
    let ev_tag = str "ev" (kind_to_string ev) in
    match ev with
    | Compile_start e ->
      record t ~tid:(1 + e.worker) ~ph:"B" ~name:("compile " ^ e.meth)
        ~cat:"jit" ~ts_us
        [ ev_tag; int_ "tier" e.tier; int_ "mid" e.mid;
          int_ "worker" e.worker ]
    | Compile_end c ->
      record t ~tid:(1 + c.ci_worker) ~ph:"E"
        ~name:("compile " ^ c.ci_meth) ~cat:"jit" ~ts_us
        ([ ev_tag; int_ "tier" c.ci_tier; str "backend" c.ci_backend;
           int_ "nodes_in" c.ci_nodes_in; int_ "nodes_out" c.ci_nodes_out;
           float_ "ms" c.ci_ms ]
        @ match c.ci_fallback with Some r -> [ str "fallback" r ] | None -> [])
    | Compile_enqueue e ->
      record t ~ph:"i" ~name:("enqueue " ^ e.meth) ~cat:"jit" ~ts_us
        [ ev_tag; int_ "gen" e.gen; int_ "depth" e.depth ];
      record t ~ph:"C" ~name:"jit-queue-depth" ~cat:"jit" ~ts_us
        [ int_ "depth" e.depth ]
    | Compile_dequeue e ->
      record t ~tid:(1 + e.worker) ~ph:"i" ~name:("dequeue " ^ e.meth)
        ~cat:"jit" ~ts_us
        [ ev_tag; int_ "worker" e.worker; int_ "depth" e.depth ];
      record t ~ph:"C" ~name:"jit-queue-depth" ~cat:"jit" ~ts_us
        [ int_ "depth" e.depth ]
    | Compile_blacklist e ->
      record t ~tid:(1 + e.worker) ~ph:"i" ~name:("blacklist " ^ e.meth)
        ~cat:"jit" ~ts_us
        [ ev_tag; str "loc" e.loc; str "err" e.err ]
    | Deopt e ->
      record t ~ph:"i" ~name:("deopt " ^ e.tag) ~cat:"jit" ~ts_us
        [ ev_tag; str "meth" e.meth; int_ "pc" e.pc;
          str "kind" (deopt_kind_name e.kind) ]
    | Tier_promote e ->
      record t ~ph:"i" ~name:("promote " ^ e.meth) ~cat:"jit" ~ts_us
        [ ev_tag; int_ "calls" e.calls; int_ "backedges" e.backedges ]
    | Cache_install e ->
      record t ~ph:"i" ~name:("install " ^ e.meth) ~cat:"cache" ~ts_us
        [ ev_tag; int_ "gen" e.gen ];
      record t ~ph:"C" ~name:"code-cache-occupancy" ~cat:"cache" ~ts_us
        [ int_ "resident" e.occ ]
    | Cache_evict e ->
      record t ~ph:"i" ~name:("evict " ^ e.meth) ~cat:"cache" ~ts_us [ ev_tag ];
      record t ~ph:"C" ~name:"code-cache-occupancy" ~cat:"cache" ~ts_us
        [ int_ "resident" e.occ ]
    | Cache_invalidate e ->
      record t ~ph:"i" ~name:("invalidate " ^ e.meth) ~cat:"cache" ~ts_us
        [ ev_tag; int_ "gen" e.gen ];
      record t ~ph:"C" ~name:"code-cache-occupancy" ~cat:"cache" ~ts_us
        [ int_ "resident" e.occ ]
    | Macro_expand e ->
      record t ~ph:"i" ~name:("macro " ^ e.name) ~cat:"jit" ~ts_us
        [ ev_tag; str "in" e.in_meth ]
    | Interp_call e ->
      record t ~ph:"i" ~name:("interp " ^ e.meth) ~cat:"interp" ~ts_us
        [ ev_tag; int_ "calls" e.calls; int_ "backedges" e.backedges ]
    | Exec_sample e ->
      record t ~ph:"i" ~name:("exec " ^ e.meth) ~cat:"exec" ~ts_us
        [ ev_tag; int_ "calls" e.calls; float_ "ms" e.ms ]
    | Stack_sample e ->
      let leaf =
        match e.stack with
        | (m, l) :: _ -> if l > 0 then Printf.sprintf "%s:%d" m l else m
        | [] -> "?"
      in
      record t ~ph:"i" ~name:("sample " ^ leaf) ~cat:"profile" ~ts_us
        [ ev_tag; int_ "depth" (List.length e.stack) ]
    | Span_begin e -> record t ~ph:"B" ~name:e.name ~cat:e.cat ~ts_us [ ev_tag ]
    | Span_end e ->
      record t ~ph:"E" ~name:e.name ~cat:e.cat ~ts_us
        [ ev_tag; float_ "ms" e.ms ]
    | Ic_transition e ->
      record t ~ph:"i" ~name:("ic " ^ e.callee) ~cat:"interp" ~ts_us
        [ ev_tag; str "meth" e.meth; int_ "pc" e.pc;
          str "from" e.from_state; str "to" e.to_state ]
    | Devirt_guard_fail e ->
      record t ~ph:"i" ~name:("devirt-fail " ^ e.target) ~cat:"jit" ~ts_us
        [ ev_tag; str "meth" e.meth; int_ "pc" e.pc ]

  let event_count t = t.count

  let dump t =
    Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
      (Buffer.contents t.buf)

  let write t path =
    let oc = open_out path in
    output_string oc (dump t);
    close_out oc

  (* Arrange for the trace to be written even if the traced program traps
     mid-run and unwinds past the caller: the writer registers as a plain
     flusher in the consolidated registry and the single [arm_exit_flush]
     hook runs it at process exit.  Each write replaces the file and the
     dump is well-formed JSON at any point, so intermediate [Obs.flush]
     calls are harmless — the final flush wins.  Flushers run
     newest-first, so Exec_sample remainders (registered later, per
     compile) land in the trace before this writer dumps it.  Returns the
     normal-completion writer for an immediate write. *)
  let write_at_exit t path =
    let w () = write t path in
    add_flusher w;
    arm_exit_flush ();
    w

  let sink t =
    {
      sink_name = "chrome";
      sink_emit = (fun ~ts ev -> on_event t ~ts ev);
      sink_flush = ignore;
    }
end

(* ------------------------------------------------------------------ *)
(* Per-method profile aggregation                                      *)

module Profile = struct
  type entry = {
    pe_mid : int;
    mutable pe_meth : string;
    mutable pe_calls : int; (* latest sampled interpreter invocation count *)
    mutable pe_backedges : int;
    mutable pe_promotes : int;
    mutable pe_compiles : int;
    mutable pe_deopts : int;
    mutable pe_installs : int;
    mutable pe_evicts : int;
    mutable pe_invalidates : int;
    mutable pe_compile_ms : float;
    mutable pe_exec_calls : int; (* compiled entry-point invocations *)
    mutable pe_exec_ms : float; (* cumulative compiled execution time *)
  }

  type t = { tbl : (int, entry) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let entry t mid meth =
    match Hashtbl.find_opt t.tbl mid with
    | Some e ->
      if e.pe_meth = "" then e.pe_meth <- meth;
      e
    | None ->
      let e =
        {
          pe_mid = mid;
          pe_meth = meth;
          pe_calls = 0;
          pe_backedges = 0;
          pe_promotes = 0;
          pe_compiles = 0;
          pe_deopts = 0;
          pe_installs = 0;
          pe_evicts = 0;
          pe_invalidates = 0;
          pe_compile_ms = 0.0;
          pe_exec_calls = 0;
          pe_exec_ms = 0.0;
        }
      in
      Hashtbl.replace t.tbl mid e;
      e

  let on_event t ev =
    match ev with
    | Interp_call e ->
      let p = entry t e.mid e.meth in
      p.pe_calls <- max p.pe_calls e.calls;
      p.pe_backedges <- max p.pe_backedges e.backedges
    | Tier_promote e ->
      let p = entry t e.mid e.meth in
      p.pe_promotes <- p.pe_promotes + 1;
      p.pe_calls <- max p.pe_calls e.calls;
      p.pe_backedges <- max p.pe_backedges e.backedges
    | Compile_end c ->
      let p = entry t c.ci_mid c.ci_meth in
      p.pe_compiles <- p.pe_compiles + 1;
      p.pe_compile_ms <- p.pe_compile_ms +. c.ci_ms
    | Deopt e -> (entry t e.mid e.meth).pe_deopts <- (entry t e.mid e.meth).pe_deopts + 1
    | Cache_install e ->
      (entry t e.mid e.meth).pe_installs <- (entry t e.mid e.meth).pe_installs + 1
    | Cache_evict e ->
      (entry t e.mid e.meth).pe_evicts <- (entry t e.mid e.meth).pe_evicts + 1
    | Cache_invalidate e ->
      (entry t e.mid e.meth).pe_invalidates <-
        (entry t e.mid e.meth).pe_invalidates + 1
    | Exec_sample e ->
      let p = entry t e.mid e.meth in
      p.pe_exec_calls <- p.pe_exec_calls + e.calls;
      p.pe_exec_ms <- p.pe_exec_ms +. e.ms
    | Compile_start _ | Compile_enqueue _ | Compile_dequeue _
    | Compile_blacklist _ | Macro_expand _ | Stack_sample _ | Span_begin _
    | Span_end _ | Ic_transition _ | Devirt_guard_fail _ ->
      ()

  let find t mid = Hashtbl.find_opt t.tbl mid

  let entries t =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
    |> List.sort (fun a b ->
           match compare b.pe_exec_ms a.pe_exec_ms with
           | 0 -> (
             match compare b.pe_compiles a.pe_compiles with
             | 0 -> compare b.pe_calls a.pe_calls
             | c -> c)
           | c -> c)

  (* Sorted per-method table (hottest compiled-execution time first). *)
  let table t =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-32s %8s %9s %5s %5s %5s %5s %5s %9s %9s %9s\n" "method"
         "calls" "backedges" "promo" "comp" "deopt" "inst" "evict" "c-ms"
         "x-calls" "x-ms");
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "%-32s %8d %9d %5d %5d %5d %5d %5d %9.2f %9d %9.2f\n"
             e.pe_meth e.pe_calls e.pe_backedges e.pe_promotes e.pe_compiles
             e.pe_deopts e.pe_installs e.pe_evicts e.pe_compile_ms
             e.pe_exec_calls e.pe_exec_ms))
      (entries t);
    Buffer.contents b

  let sink t =
    {
      sink_name = "profile";
      sink_emit = (fun ~ts:_ ev -> on_event t ev);
      sink_flush = ignore;
    }
end

(* ------------------------------------------------------------------ *)
(* Minimal JSON well-formedness checker (for the trace smoke tests:    *)
(* no external JSON dependency is available in the container)          *)

module Json = struct
  exception Bad of string

  let validate (s : string) : (unit, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
      | None -> fail (Printf.sprintf "expected %c, got end of input" c)
    in
    let literal w =
      String.iter
        (fun c ->
          match peek () with
          | Some c' when c' = c -> advance ()
          | _ -> fail ("bad literal " ^ w))
        w
    in
    let parse_string () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            go ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape"
            done;
            go ()
          | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "control char in string"
        | Some _ ->
          advance ();
          go ()
      in
      go ()
    in
    let parse_number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      let digits () =
        let seen = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
          | _ -> ()
        in
        go ();
        if not !seen then fail "bad number"
      in
      digits ();
      (match peek () with
      | Some '.' ->
        advance ();
        digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some '}' -> advance ()
        | _ ->
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ())
      | Some '[' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some ']' -> advance ()
        | _ ->
          let rec items () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          items ())
      | Some '"' -> parse_string ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %c" c)
      | None -> fail "unexpected end of input"
    in
    match
      parse_value ();
      skip_ws ();
      if !pos <> n then fail "trailing data"
    with
    | () -> Ok ()
    | exception Bad msg -> Error msg
end
