(** Deterministic, seeded fault injection for the JIT control paths.

    Named injection sites are threaded through the hot control paths
    (bgjit workers, the compile queue, the code cache, the profile
    writer, the interpreter's invoke path).  A spec string like

    {[ compile_crash:p=0.1,compile_stall:ms=50,seed=42 ]}

    arms a subset of sites; each armed site draws from its own
    splitmix64 stream derived from the global seed, so a failure
    schedule is reproducible from the (spec, seed) pair alone.

    Disabled cost is one load+branch: guard every site as
    [if !Chaos.on && Chaos.fire Chaos.some_site then ...]. *)

type site

val on : bool ref
(** Global fast-path flag; [false] unless a spec is armed. *)

(** {1 Injection sites} *)

val compile_crash : site
(** Background compile raises on the worker (exercises the blacklist
    path). *)

val compile_stall : site
(** Background compile sleeps for [ms] milliseconds (exercises the
    watchdog and bounded shutdown). *)

val compile_garbage : site
(** Compile result is replaced with a garbage function; the
    generation-stamp check must discard it before install. *)

val queue_full : site
(** [Bgjit.enqueue] behaves as if the queue were saturated (exercises
    the drop path and governor backpressure). *)

val cache_evict : site
(** [Runtime] code cache evicts its oldest entry on install, regardless
    of occupancy (exercises eviction pressure / re-promotion). *)

val profile_truncate : site
(** The profile write is killed midway: half the bytes land in the
    temporary file and the write raises [Sys_error].  The previous
    profile must survive. *)

val profile_corrupt : site
(** Profile bytes are corrupted before the write; the loader must
    degrade to a cold start. *)

val hier_churn : site
(** Interpreter-visible class-hierarchy churn on the invoke path:
    semantically a no-op, but flushes inline caches, bumps the
    hierarchy epoch and invalidates devirtualized code. *)

(** {1 Configuration} *)

val configure : string -> (unit, string) result
(** Parse and arm a spec string: comma-separated entries, each either
    [seed=N] or [site\[:k=v\]*] with parameters [p] (fire probability,
    default 1), [ms] (stall duration) and [n] (fire every nth draw).
    On success sets [on := true].  Unknown sites or malformed
    parameters leave everything disabled and return [Error]. *)

val disable : unit -> unit
(** Disarm all sites, clear counters, set [on := false]. *)

(** {1 Drawing} *)

val fire : site -> bool
(** Should this site's fault trigger now?  Deterministic per site for a
    given seed.  Callers check [!on] first. *)

val ms : site -> int
(** The site's [ms] parameter (0 if unset). *)

val param_n : site -> int
(** The site's [n] parameter (0 if unset). *)

val site_name : site -> string

val sleep_ms : int -> unit
(** Sleep helper for stall faults. *)

(** {1 Reporting} *)

val seed : unit -> int
val spec : unit -> string

val describe : unit -> (string * string) list
(** [(name, doc)] of every registered site, sorted by name. *)

val stats : unit -> (string * int * int) list
(** [(site, draws, fires)] for every site that is armed or has drawn. *)

val stats_string : unit -> string
(** One-line ["site=fires/draws ..."] rendering of [stats]. *)
