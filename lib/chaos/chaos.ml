(* Deterministic, seeded fault injection for the JIT control paths.

   The engine's resilience story (governor, watchdog, generation-stamp
   discards, bounded queues) is only as credible as the failures it has
   been shown to survive, so this module turns "a worker crashed mid
   compile" / "the queue saturated" / "the profile write was killed" into
   reproducible schedules: a registry of *named injection sites* threaded
   through the hot control paths, armed from a spec string such as

       compile_crash:p=0.1,compile_stall:ms=50,seed=42

   Design constraints match the other always-compiled checkpoints
   ([Obs.enabled], [Forensics.on], [Irtrace.on]):

   1. Disabled cost is a single load+branch: every site is guarded as
      `if !Chaos.on && Chaos.fire Chaos.some_site then ...` and [on] starts
      false.  The overhead gate lives in `bench/main.exe chaos`.
   2. Determinism: each site draws from its own splitmix64 stream, seeded
      from the global seed mixed with the site name, so arming one site
      never perturbs another's schedule and a (seed, spec) pair replays
      the same per-site outcome sequence.  (With several worker domains
      the interleaving of *which method* meets which outcome still depends
      on scheduling; the per-site outcome sequence does not.)
   3. No dependencies upward: the module knows nothing about the VM — call
      sites decide what a fired fault means (raise, stall, drop, corrupt)
      and journal it themselves. *)

type site = {
  s_name : string;
  s_doc : string;
  mutable s_armed : bool;
  mutable s_p : float; (* fire probability per draw (when [s_n] = 0) *)
  mutable s_ms : int; (* duration parameter (stalls), milliseconds *)
  mutable s_n : int; (* when > 0: fire deterministically every nth draw *)
  mutable s_state : int64; (* splitmix64 stream, seeded per site *)
  mutable s_draws : int;
  mutable s_fires : int;
}

(* THE fast-path flag: sites read it before anything else. *)
let on = ref false

(* One leaf lock for all site state: draws happen on mutator and worker
   domains alike, and fires are rare enough that contention is noise. *)
let lock = Mutex.create ()

let registry : site list ref = ref []

let mk name doc =
  let s =
    {
      s_name = name;
      s_doc = doc;
      s_armed = false;
      s_p = 0.0;
      s_ms = 0;
      s_n = 0;
      s_state = 0L;
      s_draws = 0;
      s_fires = 0;
    }
  in
  registry := s :: !registry;
  s

(* The injection sites, in the order a compile travels. *)
let compile_crash =
  mk "compile_crash" "background compile raises on the worker"

let compile_stall =
  mk "compile_stall" "background compile stalls for ms=N milliseconds"

let compile_garbage =
  mk "compile_garbage"
    "compile result is garbage; the generation check must discard it"

let queue_full = mk "queue_full" "compile queue reports saturation"

let cache_evict =
  mk "cache_evict" "code cache evicts its oldest entry on install"

let profile_truncate =
  mk "profile_truncate" "profile write killed midway (truncated bytes)"

let profile_corrupt =
  mk "profile_corrupt" "profile bytes corrupted before the write"

let hier_churn =
  mk "hier_churn" "interpreter-visible class-hierarchy churn on invoke"

(* ------------------------------------------------------------------ *)
(* Seeded randomness: splitmix64, one independent stream per site       *)

let splitmix64 st =
  let z = Int64.add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0, 1) from the top 53 bits *)
let next_float st =
  let bits = Int64.shift_right_logical (splitmix64 st) 11 in
  Int64.to_float bits /. 9007199254740992.0

let site_seed ~seed name =
  let h = Hashtbl.hash name in
  let st = ref (Int64.logxor (Int64.of_int seed) (Int64.of_int (h * 0x9E3779B9))) in
  ignore (splitmix64 st);
  !st

let current_seed = ref 0
let current_spec = ref ""

(* ------------------------------------------------------------------ *)
(* Drawing                                                             *)

(* Should this armed site fire now?  Callers guard with [!on] first, so
   the disabled cost never reaches here. *)
let fire (s : site) =
  if not s.s_armed then false
  else begin
    Mutex.lock lock;
    s.s_draws <- s.s_draws + 1;
    let hit =
      if s.s_n > 0 then s.s_draws mod s.s_n = 0
      else
        let st = ref s.s_state in
        let u = next_float st in
        s.s_state <- !st;
        u < s.s_p
    in
    if hit then s.s_fires <- s.s_fires + 1;
    Mutex.unlock lock;
    hit
  end

let ms (s : site) = s.s_ms
let param_n (s : site) = s.s_n
let site_name (s : site) = s.s_name

let sleep_ms n = if n > 0 then Unix.sleepf (float_of_int n /. 1000.)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let reset_sites () =
  List.iter
    (fun s ->
      s.s_armed <- false;
      s.s_p <- 0.0;
      s.s_ms <- 0;
      s.s_n <- 0;
      s.s_state <- 0L;
      s.s_draws <- 0;
      s.s_fires <- 0)
    !registry

let disable () =
  on := false;
  Mutex.lock lock;
  reset_sites ();
  current_spec := "";
  Mutex.unlock lock

let find_site name = List.find_opt (fun s -> s.s_name = name) !registry

let known_sites () =
  List.sort compare (List.map (fun s -> s.s_name) !registry)

(* [(name, doc)] of every site, for `--chaos help`-style listings. *)
let describe () =
  List.sort compare (List.map (fun s -> (s.s_name, s.s_doc)) !registry)

(* Parse and arm a spec string: comma-separated entries, each either the
   global [seed=N] or [site[:k=v]*] with k in {p, ms, n}.  A site named
   with no parameters fires on every draw (p defaults to 1). *)
let configure spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let entries =
    List.filter
      (fun e -> String.trim e <> "")
      (String.split_on_char ',' spec)
  in
  if entries = [] then err "empty chaos spec"
  else begin
    Mutex.lock lock;
    reset_sites ();
    let seed = ref 42 in
    let armed = ref [] in
    let parse_entry e =
      match String.split_on_char ':' (String.trim e) with
      | [] -> err "empty chaos entry"
      | name :: params -> (
        match String.index_opt name '=' with
        | Some _ -> (
          (* a bare k=v entry: only the global seed lives here *)
          match String.split_on_char '=' name with
          | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some n when params = [] ->
              seed := n;
              Ok ()
            | _ -> err "chaos: bad seed %S" name)
          | _ -> err "chaos: unknown setting %S" name)
        | None -> (
          match find_site name with
          | None ->
            err "chaos: unknown site %S (known: %s)" name
              (String.concat ", " (known_sites ()))
          | Some s ->
            s.s_armed <- true;
            s.s_p <- 1.0;
            let rec go = function
              | [] ->
                armed := s :: !armed;
                Ok ()
              | p :: rest -> (
                match String.split_on_char '=' p with
                | [ "p"; v ] -> (
                  match float_of_string_opt v with
                  | Some f when f >= 0.0 && f <= 1.0 ->
                    s.s_p <- f;
                    go rest
                  | _ -> err "chaos: %s: bad probability %S" name v)
                | [ "ms"; v ] -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 ->
                    s.s_ms <- n;
                    go rest
                  | _ -> err "chaos: %s: bad ms %S" name v)
                | [ "n"; v ] -> (
                  match int_of_string_opt v with
                  | Some n when n > 0 ->
                    s.s_n <- n;
                    go rest
                  | _ -> err "chaos: %s: bad n %S" name v)
                | _ -> err "chaos: %s: unknown parameter %S" name p)
            in
            go params))
    in
    let rec all = function
      | [] -> Ok ()
      | e :: rest -> ( match parse_entry e with Ok () -> all rest | Error _ as r -> r)
    in
    match all entries with
    | Error _ as r ->
      reset_sites ();
      Mutex.unlock lock;
      r
    | Ok () ->
      current_seed := !seed;
      current_spec := spec;
      List.iter (fun s -> s.s_state <- site_seed ~seed:!seed s.s_name) !armed;
      Mutex.unlock lock;
      on := true;
      Ok ()
  end

let seed () = !current_seed
let spec () = !current_spec

(* [(name, draws, fires)] for every armed site, stable order. *)
let stats () =
  Mutex.lock lock;
  let l =
    List.filter_map
      (fun s ->
        if s.s_armed || s.s_draws > 0 then Some (s.s_name, s.s_draws, s.s_fires)
        else None)
      !registry
  in
  Mutex.unlock lock;
  List.sort compare l

let stats_string () =
  String.concat " "
    (List.map (fun (n, d, f) -> Printf.sprintf "%s=%d/%d" n f d) (stats ()))
