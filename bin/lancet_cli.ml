(* Command-line driver: run Mini programs on the interpreter, compile
   functions with Lancet and dump their optimized IR, disassemble generated
   bytecode, or cross-compile to JavaScript. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_arg (s : string) : Vm.Types.value =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> Str s)

let load path =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load ~file:path rt (read_file path) in
  (rt, p)

(* ---- observability sinks shared by run/trace ---- *)

(* HotSpot-PrintCompilation-style log: the shared [Obs.compilation_event]
   subset (interp-call samples and spans would swamp the terminal).  The
   filter lives on the bus, next to the event type, so new event kinds are
   logged here without this sink chasing them. *)
let compilation_sink () =
  {
    Obs.sink_name = "print-compilation";
    sink_emit =
      (fun ~ts:_ ev ->
        if Obs.compilation_event ev then
          prerr_string ("[jit] " ^ Obs.to_string ev ^ "\n"));
    sink_flush = ignore;
  }

(* Collect deopt sites so they can be rendered with a disassembly marker. *)
let deopt_collector acc =
  {
    Obs.sink_name = "deopt-sites";
    sink_emit =
      (fun ~ts:_ ev ->
        match ev with
        | Obs.Deopt { meth; mid; tag; pc; _ } -> acc := (meth, mid, tag, pc) :: !acc
        | _ -> ());
    sink_flush = ignore;
  }

let print_deopt_sites rt (deopts : (string * int * string * int) list) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (meth, mid, tag, pc) ->
      if not (Hashtbl.mem seen (mid, pc)) then begin
        Hashtbl.replace seen (mid, pc) ();
        match Vm.Runtime.find_method_by_id rt mid with
        | Some m ->
          Format.printf "@.deopt site: %s (%s)@." (Vm.Runtime.meth_loc m pc) tag;
          (* the decision journal knows *why*: guard identity for the deopt
             itself, plus what the engine did about it afterwards *)
          if !Forensics.on then begin
            (match Lancet.Explain.deopt_causes mid pc with
            | [] -> ()
            | cs -> Format.printf "  cause: %s@." (String.concat "; " cs));
            List.iter
              (fun c -> Format.printf "  then: %s@." c)
              (Lancet.Explain.deopt_consequences mid)
          end;
          Format.printf "%s@." (Vm.Disasm.method_to_string ~mark:pc m)
        | None -> Format.printf "@.deopt site: %s at pc %d (%s)@." meth pc tag
      end)
    (List.rev deopts)

(* ---- metrics export shared by run/health ---- *)

(* Fill the export-time gauges and write the registry; a .prom suffix
   selects Prometheus text exposition, anything else JSON. *)
let export_metrics rt (j : Metrics.jit) path =
  let hits, misses, _, _, _ = Vm.Runtime.ic_stats rt in
  if hits + misses > 0 then
    Metrics.set j.Metrics.j_ic_hit_ratio
      (float_of_int hits /. float_of_int (hits + misses));
  Metrics.set j.Metrics.j_profile_replayed
    (float_of_int (Persist.replayed_methods ()));
  Metrics.set j.Metrics.j_profile_warm_ok
    (float_of_int (Persist.warm_matches ()));
  Metrics.set j.Metrics.j_profile_warm_stale
    (float_of_int (Persist.warm_stale ()));
  let data =
    if Filename.check_suffix path ".prom" then
      Metrics.to_prometheus j.Metrics.j_reg
    else Metrics.to_json j.Metrics.j_reg
  in
  let oc = open_out path in
  output_string oc data;
  close_out oc;
  Format.eprintf "[metrics] -> %s@." path

(* ---- run ---- *)

let run_cmd tiered threshold jit_threads jit_queue trace print_compilation
    stats metrics health chaos governor watchdog_ms lprof_out lprof_in file fn
    args =
  match
    match chaos with None -> Ok () | Some spec -> Chaos.configure spec
  with
  | Error e ->
    Format.eprintf "%s@." e;
    2
  | Ok () ->
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:tiered ~tier_threshold:threshold ~jit_threads
      ~jit_queue ()
  in
  (* profile writer: start collecting compile fingerprints now and rewrite
     the snapshot on every [Obs.flush] and once more at exit, through the
     consolidated flusher registry *)
  (match lprof_out with
  | Some path ->
    Persist.collect ();
    Persist.register_writer rt path
  | None -> ());
  let jm =
    if metrics <> None || health then begin
      let j = Metrics.jit () in
      Obs.attach (Metrics.jit_sink j);
      Some j
    end
    else None
  in
  if health then Forensics.enable ();
  (* the governor rides on the pool and journal: attach after boot so it
     sees the final hooks, detach before the pool shuts down *)
  let gov =
    if governor then
      Some
        (Lancet.Governor.attach
           ~cfg:
             { Lancet.Governor.default_config with
               Lancet.Governor.g_watchdog_ms = watchdog_ms
             }
           ?reg:(Option.map (fun j -> j.Metrics.j_reg) jm)
           ?pool ~ticker:true rt)
    else None
  in
  let chrome =
    Option.map
      (fun path ->
        let c = Obs.Chrome.create () in
        Obs.attach (Obs.Chrome.sink c);
        (* at_exit registration keeps the JSON well-formed even when the
           program traps out of the run *)
        (c, path, Obs.Chrome.write_at_exit c path))
      trace
  in
  if print_compilation then Obs.attach (compilation_sink ());
  let profile =
    if stats then begin
      let p = Obs.Profile.create () in
      Obs.attach (Obs.Profile.sink p);
      Some p
    end
    else None
  in
  let p = Mini.Front.load ~file rt (read_file file) in
  (* profile replay: seed hotness/IC/blacklist state from a prior run and
     batch-enqueue formerly-hot methods before the mutator starts.  A file
     that fails to load already printed its cold-start diagnostic. *)
  (match lprof_in with
  | None -> ()
  | Some path -> (
    match Persist.replay_file ?pool rt path with
    | None -> ()
    | Some st ->
      Format.eprintf
        "[profile] warm start from %s: %d method(s) seeded, %d IC site(s) \
         pre-quickened, %d compile(s) enqueued, %d stale record(s) dropped@."
        path st.Persist.rs_methods st.Persist.rs_sites st.Persist.rs_enqueued
        st.Persist.rs_dropped));
  let v = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  (* let in-flight background compiles finish before reporting — bounded
     when chaos is armed, so an injected stall cannot hang the exit *)
  (match pool with
  | Some b ->
    if !Chaos.on then Bgjit.drain ~timeout_ms:2000 b else Bgjit.drain b
  | None -> ());
  Obs.flush ();
  Format.printf "%a@." Vm.Value.pp v;
  (match chrome with
  | Some (c, path, write_now) ->
    write_now ();
    Format.eprintf "[obs] %d events -> %s@." (Obs.Chrome.event_count c) path
  | None -> ());
  (match profile with
  | Some p -> Format.eprintf "@[<v>per-method profile:@,%s@]@." (Obs.Profile.table p)
  | None -> ());
  if stats && Hashtbl.length rt.Vm.Types.ic_sites > 0 then
    Format.eprintf "@[<v>ic sites:@,%s@]@." (Vm.Inlinecache.site_table rt);
  (match lprof_out with
  | Some path -> Format.eprintf "[profile] -> %s@." path
  | None -> ());
  (match (jm, metrics) with
  | Some j, Some path -> export_metrics rt j path
  | _ -> ());
  if health then print_string (Lancet.Explain.health_report rt);
  (match gov with
  | Some g ->
    Lancet.Governor.detach g;
    if tiered || stats then
      Format.eprintf "[governor] %s@." (Lancet.Governor.report g)
  | None -> ());
  (match pool with
  | Some b ->
    if !Chaos.on then Bgjit.shutdown ~timeout_ms:2000 b else Bgjit.shutdown b;
    if tiered || stats then Format.eprintf "[bgjit] %s@." (Bgjit.stats_string b)
  | None -> ());
  if !Chaos.on then begin
    Format.eprintf "[chaos] seed=%d %s@." (Chaos.seed ()) (Chaos.stats_string ());
    Chaos.disable ()
  end;
  if tiered || stats then
    Format.eprintf "[tier] %s@." (Vm.Runtime.tier_stats_string rt);
  0

(* ---- trace: run tiered, write a Chrome trace + profile table ---- *)

let trace_cmd threshold jit_threads jit_queue repeat out file fn args =
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:threshold ~jit_threads
      ~jit_queue ()
  in
  let chrome = Obs.Chrome.create () in
  let profile = Obs.Profile.create () in
  let deopts = ref [] in
  Obs.attach (Obs.Chrome.sink chrome);
  Obs.attach (Obs.Profile.sink profile);
  Obs.attach (deopt_collector deopts);
  let out =
    match out with
    | Some o -> o
    | None -> Filename.remove_extension (Filename.basename file) ^ ".trace.json"
  in
  (* register before running so a trapping program still leaves a
     well-formed trace behind *)
  let write_now = Obs.Chrome.write_at_exit chrome out in
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  for _ = 1 to max 1 repeat do
    v := Mini.Front.call p fn argv
  done;
  (match pool with Some b -> Bgjit.drain b | None -> ());
  Obs.flush ();
  write_now ();
  Format.printf "result: %a@." Vm.Value.pp !v;
  Format.printf "trace:  %s (%d events; open in chrome://tracing or ui.perfetto.dev)@."
    out (Obs.Chrome.event_count chrome);
  Format.printf "@.per-method profile:@.%s" (Obs.Profile.table profile);
  print_deopt_sites rt !deopts;
  (match pool with
  | Some b ->
    Bgjit.shutdown b;
    Format.printf "@.[bgjit] %s@." (Bgjit.stats_string b)
  | None -> ());
  Format.printf "@.[tier] %s@." (Vm.Runtime.tier_stats_string rt);
  0

(* ---- profile: sampling profiler + folded stacks for flamegraphs ---- *)

let profile_cmd threshold repeat interval out file fn args =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:threshold () in
  let prof = Profiler.create ~interval_ms:interval () in
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  Profiler.profiled prof (fun () ->
      for _ = 1 to max 1 repeat do
        v := Mini.Front.call p fn argv
      done);
  Obs.flush ();
  let out =
    match out with
    | Some o -> o
    | None -> Filename.remove_extension (Filename.basename file) ^ ".folded"
  in
  Profiler.write_folded prof out;
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Profiler.report prof);
  Format.printf
    "folded stacks: %s (feed to flamegraph.pl, inferno or speedscope)@." out;
  0

(* ---- explain: source annotated with tier/compile/deopt decisions ---- *)

let explain_cmd threshold repeat interval no_residency ir file fn args =
  (* the decision journal feeds deopt *causes* into the annotations and the
     per-site disasm *)
  Forensics.enable ();
  if ir then Irtrace.enable ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:threshold () in
  let x = Lancet.Explain.create () in
  Obs.attach (Lancet.Explain.sink x);
  let deopts = ref [] in
  Obs.attach (deopt_collector deopts);
  let src = read_file file in
  let p = Mini.Front.load ~file rt src in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  let run () =
    for _ = 1 to max 1 repeat do
      v := Mini.Front.call p fn argv
    done
  in
  let prof =
    if no_residency then None else Some (Profiler.create ~interval_ms:interval ())
  in
  (match prof with Some pr -> Profiler.profiled pr run | None -> run ());
  Obs.flush ();
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Lancet.Explain.render ~ir ?profiler:prof x rt ~src);
  print_deopt_sites rt !deopts;
  0

(* ---- ir: per-phase IR snapshots of every compile, with pass diffs ---- *)

let ir_cmd threshold jit_threads jit_queue repeat meth phase diff file fn args =
  (* keep the pretty-printed IR text around: this verb exists to show it *)
  Irtrace.enable ~keep_text:true ();
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:threshold ~jit_threads
      ~jit_queue ()
  in
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  for _ = 1 to max 1 repeat do
    v := Mini.Front.call p fn argv
  done;
  (match pool with Some b -> Bgjit.drain b | None -> ());
  Obs.flush ();
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Lancet.Explain.ir_report ?meth ?phase ~diff ());
  (match pool with Some b -> Bgjit.shutdown b | None -> ());
  0

(* ---- coach: ranked missed-optimization report with fix suggestions ---- *)

let coach_cmd threshold repeat interval file fn args =
  (* node counts and fingerprints only — no need to retain IR text *)
  Irtrace.enable ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:threshold () in
  let prof = Profiler.create ~interval_ms:interval () in
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  Profiler.profiled prof (fun () ->
      for _ = 1 to max 1 repeat do
        v := Mini.Front.call p fn argv
      done);
  Obs.flush ();
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Lancet.Explain.coach_report ~profiler:prof rt);
  0

(* ---- why: per-method causal timelines from the decision journal ---- *)

let why_cmd threshold jit_threads jit_queue repeat meth file fn args =
  Forensics.enable ();
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:threshold ~jit_threads
      ~jit_queue ()
  in
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  for _ = 1 to max 1 repeat do
    v := Mini.Front.call p fn argv
  done;
  (match pool with Some b -> Bgjit.drain b | None -> ());
  Obs.flush ();
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Lancet.Explain.why_report ?meth rt);
  (match pool with Some b -> Bgjit.shutdown b | None -> ());
  0

(* ---- health: whole-run pathology report ---- *)

let health_cmd threshold jit_threads jit_queue repeat metrics strict file fn
    args =
  Forensics.enable ();
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:threshold ~jit_threads
      ~jit_queue ()
  in
  let j = Metrics.jit () in
  Obs.attach (Metrics.jit_sink j);
  let p = Mini.Front.load ~file rt (read_file file) in
  let argv = Array.of_list (List.map parse_arg args) in
  let v = ref Vm.Types.Null in
  for _ = 1 to max 1 repeat do
    v := Mini.Front.call p fn argv
  done;
  (match pool with Some b -> Bgjit.drain b | None -> ());
  Obs.flush ();
  Format.printf "result: %a@.@." Vm.Value.pp !v;
  print_string (Lancet.Explain.health_report rt);
  (match metrics with Some path -> export_metrics rt j path | None -> ());
  (match pool with Some b -> Bgjit.shutdown b | None -> ());
  (* --strict: CI and scripts gate on VM health through the exit code *)
  if strict && Forensics.detect () <> [] then 1 else 0

(* ---- disasm ---- *)

let disasm_cmd file names =
  let rt, _ = load file in
  Hashtbl.iter
    (fun cname (cls : Vm.Types.cls) ->
      let wanted =
        names = [] || List.exists (fun n -> Vm.Strutil.contains cname n) names
      in
      if wanted && cls.Vm.Types.cmethods <> [] then
        Format.printf "%s@.@." (Vm.Disasm.class_to_string cls))
    rt.Vm.Types.classes;
  0

(* ---- verify ---- *)

let verify_cmd file =
  let rt, _ = load file in
  let n = Vm.Verifier.verify_all rt in
  Format.printf "ok: %d bytecode method(s) verified@." n;
  0

(* ---- compile: dump the optimized IR of a zero-argument maker ---- *)

let compile_cmd file fn args =
  let rt, p = load file in
  let clo = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  (match Lancet.Compiler.compile_value rt clo with
  | _ -> ()
  | exception Lancet.Errors.Compile_error msg ->
    Format.printf "compile error: %s@." msg);
  (match !Lancet.Compiler.last_graph with
  | Some g -> Format.printf "%s@." (Lms.Pretty.graph_to_string g)
  | None -> Format.printf "(no graph)@.");
  List.iter
    (fun (w : Lancet.Errors.warning) ->
      Format.printf "warning [%s]: %s@." w.w_tag w.w_msg)
    (Lancet.Errors.take_warnings ());
  0

(* ---- js: cross-compile a closure-producing function ---- *)

let js_cmd file fn args name =
  let rt, p = load file in
  Jsdom.install rt;
  let clo = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  print_string (Jsdom.cross_compile rt ~name clo ~nargs:0);
  0

(* ---- cmdliner plumbing ---- *)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let fn_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNCTION")
let rest = Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS")

let tiered_flag =
  Arg.(
    value & flag
    & info [ "tiered" ]
        ~doc:"Enable the tiered execution engine: hot methods are JIT-compiled")

let tier_threshold =
  Arg.(
    value & opt int 16
    & info [ "tier-threshold" ] ~docv:"N"
        ~doc:"Hotness threshold (calls + back-edges) for promotion")

let jit_threads =
  Arg.(
    value & opt int 0
    & info [ "jit-threads" ] ~docv:"N"
        ~doc:
          "Compile hot methods on $(docv) background worker domains; the \
           interpreter keeps running at tier 0 until the code is installed. \
           0 (the default) compiles synchronously on the mutator thread.")

let jit_queue =
  Arg.(
    value & opt int 32
    & info [ "jit-queue" ] ~docv:"M"
        ~doc:
          "Capacity of the background compile queue; requests beyond it are \
           dropped (the method retries later), never blocking the mutator")

let trace_opt =
  Arg.(
    value
    & opt ~vopt:(Some "trace.json") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of all JIT events to $(docv) \
           (default trace.json); open in chrome://tracing")

let print_compilation_flag =
  Arg.(
    value & flag
    & info [ "print-compilation" ]
        ~doc:"Log compile/deopt/cache events to stderr as they happen")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print a per-method profile table and tiering counters on exit")

let metrics_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export the metrics registry (counters, gauges, latency \
           histograms) to $(docv) on exit: Prometheus text exposition when \
           $(docv) ends in .prom, JSON otherwise")

let health_flag =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Enable the decision journal and print the whole-run pathology \
           report (deopt loops, compile churn, cache thrash, ...) on exit")

let chaos_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Arm the deterministic fault-injection harness from $(docv): \
           comma-separated injection sites with parameters, e.g. \
           \"compile_crash:p=0.1,compile_stall:ms=50,seed=42\".  Sites: \
           compile_crash, compile_stall, compile_garbage, queue_full, \
           cache_evict, profile_truncate, profile_corrupt, hier_churn.  \
           Parameters: p (fire probability, default 1), ms (stall \
           duration), n (fire every nth draw); seed=N makes the schedule \
           reproducible.")

let governor_flag =
  Arg.(
    value & flag
    & info [ "governor" ]
        ~doc:
          "Enable the self-healing governor: a deopt-loop circuit breaker \
           (demote to interpreter with exponential backoff, blacklist at \
           the cap), a compile watchdog bounding per-compile wall time, \
           queue backpressure and cache-thrash damping.  Decisions are \
           journaled for $(b,lancet why) and counted in the metrics \
           registry.")

let watchdog_ms_opt =
  Arg.(
    value & opt float 500.0
    & info [ "watchdog-ms" ] ~docv:"MS"
        ~doc:
          "Governor compile watchdog budget: an in-flight compile running \
           longer than $(docv) milliseconds is abandoned (its install is \
           discarded by the generation check), retried once, then \
           blacklisted")

let lprof_out_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Write a warmup profile snapshot (.lprof) to $(docv) on exit: \
           per-method hotness and tier state, inline-cache site states \
           (receivers recorded symbolically, so they survive restarts), \
           devirtualization decisions, the blacklist, and the expected IR \
           fingerprint per compiled method")

let lprof_in_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-in" ] ~docv:"FILE"
        ~doc:
          "Replay a warmup profile snapshot before the program starts: \
           resolve recorded symbols against the loaded program, pre-quicken \
           inline-cache sites, seed hotness counters and batch-enqueue \
           formerly-hot methods for compilation.  A corrupt, truncated or \
           version-mismatched file degrades to a cold start with a \
           diagnostic.")

let run_t =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Mini function on the bytecode interpreter")
    Term.(
      const run_cmd $ tiered_flag $ tier_threshold $ jit_threads $ jit_queue
      $ trace_opt $ print_compilation_flag $ stats_flag $ metrics_opt
      $ health_flag $ chaos_opt $ governor_flag $ watchdog_ms_opt
      $ lprof_out_opt $ lprof_in_opt $ file $ fn_pos $ rest)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Trace output path (default: <prog>.trace.json)")

let trace_repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N" ~doc:"Call FUNCTION $(docv) times")

let trace_fn = Arg.(value & pos 1 string "main" & info [] ~docv:"FUNCTION")

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a Mini function under the tiered JIT and write a Chrome \
          trace_event JSON plus a per-method profile table")
    Term.(
      const trace_cmd $ tier_threshold $ jit_threads $ jit_queue $ trace_repeat
      $ trace_out $ file $ trace_fn $ rest)

let sample_interval =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"MS"
        ~doc:"Sampling interval of the call-stack profiler, in milliseconds")

let profile_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Folded-stack output path (default: <prog>.folded)")

let profile_t =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a Mini function under the tiered JIT with the sampling \
          profiler: per-source-line residency table plus a folded-stack \
          file for flamegraph tools")
    Term.(
      const profile_cmd $ tier_threshold $ trace_repeat $ sample_interval
      $ profile_out $ file $ trace_fn $ rest)

let no_residency_flag =
  Arg.(
    value & flag
    & info [ "no-residency" ]
        ~doc:"Skip the sampling profiler (annotate JIT decisions only)")

let explain_ir_flag =
  Arg.(
    value & flag
    & info [ "ir" ]
        ~doc:
          "Also annotate each line with the number of IR nodes it \
           contributed to each compiler phase (stage / dce / backend)")

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a Mini function under the tiered JIT and print the source \
          annotated per line with tier promotions, compilations, deopt \
          sites and profile residency")
    Term.(
      const explain_cmd $ tier_threshold $ trace_repeat $ sample_interval
      $ no_residency_flag $ explain_ir_flag $ file $ trace_fn $ rest)

let ir_method =
  Arg.(
    value
    & opt (some string) None
    & info [ "method" ] ~docv:"NAME"
        ~doc:"Only show compiles whose method label contains $(docv)")

let ir_phase =
  Arg.(
    value
    & opt (some string) None
    & info [ "phase" ] ~docv:"PHASE"
        ~doc:
          "Only show snapshots whose phase name contains $(docv) (phases: \
           stage, dce, guards:<backend>, schedule:<backend>)")

let ir_diff_flag =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:
          "Show the structural delta between consecutive phases of each \
           compile: node-count change, op kinds created/eliminated, and \
           per-source-line node deltas")

let ir_t =
  Cmd.v
    (Cmd.info "ir"
       ~doc:
         "Run a Mini function under the tiered JIT, capturing an IR \
          snapshot of every compile after each pipeline phase (staging, \
          DCE, guard lowering, backend scheduling), and print the \
          snapshots with node counts, per-line attribution and structural \
          fingerprints")
    Term.(
      const ir_cmd $ tier_threshold $ jit_threads $ jit_queue $ trace_repeat
      $ ir_method $ ir_phase $ ir_diff_flag $ file $ trace_fn $ rest)

let coach_t =
  Cmd.v
    (Cmd.info "coach"
       ~doc:
         "Run a Mini function under the tiered JIT with the \
          missed-optimization recorder and the sampling profiler on, then \
          print a ranked report of optimizations the compiler declined \
          (effect-blocked CSE, megamorphic devirtualization, unfused \
          guards, ...) with source locations, hotness, and a suggested fix \
          for each")
    Term.(
      const coach_cmd $ tier_threshold $ trace_repeat $ sample_interval
      $ file $ trace_fn $ rest)

let why_method =
  Arg.(
    value
    & opt (some string) None
    & info [ "method" ] ~docv:"NAME"
        ~doc:
          "Only show methods whose label contains $(docv) (e.g. \"f\" \
           matches \"Main.f\")")

let why_t =
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Run a Mini function under the tiered JIT with the decision \
          journal on and print each method's causal timeline: every \
          promote/compile/install/deopt/invalidate decision with the \
          trigger that caused it, annotated with source lines")
    Term.(
      const why_cmd $ tier_threshold $ jit_threads $ jit_queue $ trace_repeat
      $ why_method $ file $ trace_fn $ rest)

let strict_flag =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero when any pathology is detected, so CI and scripts \
           can gate on VM health")

let health_t =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a Mini function under the tiered JIT and print a whole-run \
          health report: detected pathologies (deopt loops, compile churn, \
          cache thrash, megamorphic hot sites, blacklisted methods) with \
          journal evidence and a suggested knob for each")
    Term.(
      const health_cmd $ tier_threshold $ jit_threads $ jit_queue
      $ trace_repeat $ metrics_opt $ strict_flag $ file $ trace_fn $ rest)

let disasm_names =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"CLASS-SUBSTRING")

let disasm_t =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble the bytecode generated for FILE")
    Term.(const disasm_cmd $ file $ disasm_names)

let verify_t =
  Cmd.v
    (Cmd.info "verify" ~doc:"Run the bytecode verifier over FILE's output")
    Term.(const verify_cmd $ file)

let compile_t =
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Call FUNCTION (which must return a closure), Lancet-compile the \
          closure and print the optimized IR")
    Term.(const compile_cmd $ file $ fn_pos $ rest)

let js_name =
  Arg.(value & opt string "kernel" & info [ "name" ] ~docv:"NAME")

let js_t =
  Cmd.v
    (Cmd.info "js"
       ~doc:"Cross-compile the closure returned by FUNCTION to JavaScript")
    Term.(const js_cmd $ file $ fn_pos $ rest $ js_name)

let () =
  let doc = "Lancet: a surgical-precision JIT for Mini/VM bytecode" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "lancet" ~doc)
          [ run_t; trace_t; profile_t; explain_t; ir_t; coach_t; why_t;
            health_t; disasm_t; verify_t; compile_t; js_t ]))
