(* Command-line driver: run Mini programs on the interpreter, compile
   functions with Lancet and dump their optimized IR, disassemble generated
   bytecode, or cross-compile to JavaScript. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_arg (s : string) : Vm.Types.value =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> Str s)

let load path =
  let rt = Lancet.Api.boot () in
  let p = Mini.Front.load rt (read_file path) in
  (rt, p)

(* ---- run ---- *)

let run_cmd tiered threshold file fn args =
  let rt = Lancet.Api.boot ~tiering:tiered ~tier_threshold:threshold () in
  let p = Mini.Front.load rt (read_file file) in
  let v = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  Format.printf "%a@." Vm.Value.pp v;
  if tiered then Format.eprintf "[tier] %s@." (Vm.Runtime.tier_stats_string rt);
  0

(* ---- disasm ---- *)

let disasm_cmd file names =
  let rt, _ = load file in
  Hashtbl.iter
    (fun cname (cls : Vm.Types.cls) ->
      let wanted =
        names = [] || List.exists (fun n -> Vm.Strutil.contains cname n) names
      in
      if wanted && cls.Vm.Types.cmethods <> [] then
        Format.printf "%s@.@." (Vm.Disasm.class_to_string cls))
    rt.Vm.Types.classes;
  0

(* ---- verify ---- *)

let verify_cmd file =
  let rt, _ = load file in
  let n = Vm.Verifier.verify_all rt in
  Format.printf "ok: %d bytecode method(s) verified@." n;
  0

(* ---- compile: dump the optimized IR of a zero-argument maker ---- *)

let compile_cmd file fn args =
  let rt, p = load file in
  let clo = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  (match Lancet.Compiler.compile_value rt clo with
  | _ -> ()
  | exception Lancet.Errors.Compile_error msg ->
    Format.printf "compile error: %s@." msg);
  (match !Lancet.Compiler.last_graph with
  | Some g -> Format.printf "%s@." (Lms.Pretty.graph_to_string g)
  | None -> Format.printf "(no graph)@.");
  List.iter
    (fun (w : Lancet.Errors.warning) ->
      Format.printf "warning [%s]: %s@." w.w_tag w.w_msg)
    (Lancet.Errors.take_warnings ());
  0

(* ---- js: cross-compile a closure-producing function ---- *)

let js_cmd file fn args name =
  let rt, p = load file in
  Jsdom.install rt;
  let clo = Mini.Front.call p fn (Array.of_list (List.map parse_arg args)) in
  print_string (Jsdom.cross_compile rt ~name clo ~nargs:0);
  0

(* ---- cmdliner plumbing ---- *)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let fn_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNCTION")
let rest = Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS")

let tiered_flag =
  Arg.(
    value & flag
    & info [ "tiered" ]
        ~doc:"Enable the tiered execution engine: hot methods are JIT-compiled")

let tier_threshold =
  Arg.(
    value & opt int 16
    & info [ "tier-threshold" ] ~docv:"N"
        ~doc:"Hotness threshold (calls + back-edges) for promotion")

let run_t =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Mini function on the bytecode interpreter")
    Term.(const run_cmd $ tiered_flag $ tier_threshold $ file $ fn_pos $ rest)

let disasm_names =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"CLASS-SUBSTRING")

let disasm_t =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble the bytecode generated for FILE")
    Term.(const disasm_cmd $ file $ disasm_names)

let verify_t =
  Cmd.v
    (Cmd.info "verify" ~doc:"Run the bytecode verifier over FILE's output")
    Term.(const verify_cmd $ file)

let compile_t =
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Call FUNCTION (which must return a closure), Lancet-compile the \
          closure and print the optimized IR")
    Term.(const compile_cmd $ file $ fn_pos $ rest)

let js_name =
  Arg.(value & opt string "kernel" & info [ "name" ] ~docv:"NAME")

let js_t =
  Cmd.v
    (Cmd.info "js"
       ~doc:"Cross-compile the closure returned by FUNCTION to JavaScript")
    Term.(const js_cmd $ file $ fn_pos $ rest $ js_name)

let () =
  let doc = "Lancet: a surgical-precision JIT for Mini/VM bytecode" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "lancet" ~doc) [ run_t; disasm_t; verify_t; compile_t; js_t ]))
