(* Tests for the tiered execution engine: hotness-driven promotion of
   interpreted methods into Lancet-compiled code, the runtime code cache
   (installation, invalidation, eviction) and deoptimization back into the
   interpreter. *)

open Vm.Types

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot_tiered ?(threshold = 4) ?(cache = 512) () =
  Lancet.Api.boot ~tiering:true ~tier_threshold:threshold
    ~tier_cache_size:cache ()

(* ------------------------------------------------------------------ *)

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

(* A hot loop crosses the threshold and gets compiled exactly once; every
   later call is a cache hit and agrees with pure interpretation. *)
let test_promotion () =
  let rt = boot_tiered ~threshold:4 () in
  let p = Mini.Front.load rt hot_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  for k = 0 to 19 do
    let v = Mini.Front.call p "hot" [| Int 50; Int k |] in
    let w = Mini.Front.call pp "hot" [| Int 50; Int k |] in
    check_value "tiered = interpreted" w v
  done;
  check_int "compiled once" 1 rt.tiering.t_compiles;
  check_bool "cache hits recorded" true (rt.tiering.t_cache_hits >= 10);
  check_int "no deopts" 0 rt.tiering.t_deopts;
  let m = Mini.Front.find_function p "hot" in
  check_bool "method marked compiled" true
    (match m.mtier with Tier_compiled _ -> true | _ -> false)

(* Tiering disabled: same workload never compiles. *)
let test_disabled () =
  let rt = Lancet.Api.boot ~tiering:false () in
  let p = Mini.Front.load rt hot_src in
  for k = 0 to 9 do
    ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
  done;
  check_int "no compiles" 0 rt.tiering.t_compiles;
  check_int "no hits" 0 rt.tiering.t_cache_hits

(* ------------------------------------------------------------------ *)
(* Compiled code agrees with the interpreter across language features.  *)

let battery =
  [
    ( "recursion",
      "def fib(n: int): int = if (n < 2) n else fib(n - 1) + fib(n - 2)",
      "fib",
      [| Int 15 |] );
    ( "floats",
      "def fsum(n: int): float = {\n\
      \  var acc = 0.0;\n\
      \  for (i <- 0 until n) { acc = acc + 0.5 * acc + 1.25; acc = acc / 1.5 };\n\
      \  acc\n\
       }",
      "fsum",
      [| Int 40 |] );
    ( "strings",
      "def s(n: int): string = {\n\
      \  var acc = \"x\";\n\
      \  for (i <- 0 until n) { acc = Str.concat(acc, Str.of_int(i)) };\n\
      \  acc\n\
       }",
      "s",
      [| Int 12 |] );
    ( "virtual-dispatch",
      "class Ctr { var x: int\n\
      \  def init(x: int): unit = { this.x = x }\n\
      \  def bump(d: int): int = { this.x = this.x + d; this.x } }\n\
       def v(n: int): int = {\n\
      \  val c = new Ctr(7);\n\
      \  var acc = 0;\n\
      \  for (i <- 0 until n) { acc = acc + c.bump(i) };\n\
      \  acc\n\
       }",
      "v",
      [| Int 25 |] );
    ( "closures",
      "def c(n: int): int = {\n\
      \  val add = fun (a: int, b: int) => a + b * 3;\n\
      \  var acc = 0;\n\
      \  for (i <- 0 until n) { acc = add(acc, i) };\n\
      \  acc\n\
       }",
      "c",
      [| Int 30 |] );
  ]

let test_matches_interpreter () =
  List.iter
    (fun (label, src, fname, args) ->
      let rt = boot_tiered ~threshold:1 () in
      let p = Mini.Front.load rt src in
      let plain = Vm.Natives.boot () in
      let pp = Mini.Front.load plain src in
      let expect = Mini.Front.call pp fname args in
      for _ = 1 to 6 do
        check_value label expect (Mini.Front.call p fname args)
      done;
      check_bool (label ^ ": compiled something") true
        (rt.tiering.t_compiles > 0))
    battery

(* ------------------------------------------------------------------ *)
(* Deoptimization: a failing speculation side-exits into the interpreter
   with the right frame state, producing the interpreter's answer. *)

let spec_src =
  {|
def spec(x: int): int =
  if (Lancet.speculate(x < 100)) x * 2 + 1 else x * 1000
|}

let test_speculate_deopt () =
  let rt = boot_tiered ~threshold:1 () in
  let p = Mini.Front.load rt spec_src in
  check_value "fast path" (Int 11) (Mini.Front.call p "spec" [| Int 5 |]);
  check_value "fast path again" (Int 15) (Mini.Front.call p "spec" [| Int 7 |]);
  check_int "compiled" 1 rt.tiering.t_compiles;
  check_int "no deopt yet" 0 rt.tiering.t_deopts;
  (* speculation fails: resume in the interpreter, same answer as interp *)
  check_value "deopt result" (Int 500000)
    (Mini.Front.call p "spec" [| Int 500 |]);
  check_bool "deopt counted" true (rt.tiering.t_deopts >= 1);
  (* the compiled entry point survives a deopt *)
  check_value "fast path after deopt" (Int 11)
    (Mini.Front.call p "spec" [| Int 5 |])

(* stable: a changed stable value triggers a `Recompile side exit — the
   method is rebuilt against the new value and stays in the cache. *)
let stable_src =
  {|
var fast: bool = true
def set_fast(b: bool): unit = { fast = b }
def f(x: int): int = if (Lancet.stable(fun () => fast)) x * 10 else x + 1
|}

let test_stable_recompile () =
  let rt = boot_tiered ~threshold:1 () in
  let p = Mini.Front.load rt stable_src in
  check_value "initial" (Int 30) (Mini.Front.call p "f" [| Int 3 |]);
  check_value "cached" (Int 30) (Mini.Front.call p "f" [| Int 3 |]);
  let compiles0 = rt.tiering.t_compiles in
  let m = Mini.Front.find_function p "f" in
  let gen0 = Vm.Runtime.tier_gen rt m.mid in
  ignore (Mini.Front.call p "set_fast" [| Vm.Value.of_bool false |]);
  (* guard fails: recompile against the new stable value, resume correctly *)
  check_value "after change" (Int 4) (Mini.Front.call p "f" [| Int 3 |]);
  check_bool "deopt counted" true (rt.tiering.t_deopts >= 1);
  check_bool "recompiled" true (rt.tiering.t_compiles > compiles0);
  check_bool "generation bumped" true (Vm.Runtime.tier_gen rt m.mid > gen0);
  (* the reinstalled entry point serves later calls with the new value *)
  check_value "recompiled entry" (Int 6) (Mini.Front.call p "f" [| Int 5 |])

(* ------------------------------------------------------------------ *)
(* Cache management: explicit invalidation and FIFO eviction.           *)

let test_invalidation () =
  let rt = boot_tiered ~threshold:2 () in
  let p = Mini.Front.load rt hot_src in
  for k = 0 to 5 do
    ignore (Mini.Front.call p "hot" [| Int 10; Int k |])
  done;
  check_int "compiled once" 1 rt.tiering.t_compiles;
  let m = Mini.Front.find_function p "hot" in
  check_int "generation 0" 0 (Vm.Runtime.tier_gen rt m.mid);
  Vm.Runtime.tier_invalidate rt m;
  check_int "generation bumped" 1 (Vm.Runtime.tier_gen rt m.mid);
  check_bool "back to cold" true (m.mtier = Tier_cold);
  (* still hot by its counters: the next call recompiles and installs *)
  let v = Mini.Front.call p "hot" [| Int 10; Int 3 |] in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  check_value "recompiled result" (Mini.Front.call pp "hot" [| Int 10; Int 3 |]) v;
  check_int "recompiled" 2 rt.tiering.t_compiles

let two_hot_src =
  {|
def a(n: int): int = { var s = 0; for (i <- 0 until n) { s = s + i * 3 }; s }
def b(n: int): int = { var s = 1; for (i <- 0 until n) { s = s + i * 5 }; s }
|}

let test_eviction () =
  let rt = boot_tiered ~threshold:1 ~cache:1 () in
  let p = Mini.Front.load rt two_hot_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain two_hot_src in
  for _ = 1 to 4 do
    check_value "a" (Mini.Front.call pp "a" [| Int 20 |])
      (Mini.Front.call p "a" [| Int 20 |]);
    check_value "b" (Mini.Front.call pp "b" [| Int 20 |])
      (Mini.Front.call p "b" [| Int 20 |])
  done;
  check_bool "evictions happened" true (rt.tiering.t_evictions >= 1);
  check_bool "cache stays bounded" true
    (Hashtbl.length rt.tiering.t_cache <= 1)

(* A jit hook that declines to compile blacklists the method; execution
   stays on the interpreter and stays correct. *)
let test_blacklist () =
  let rt =
    Vm.Natives.boot ~tiering:true ~tier_threshold:2 ()
  in
  rt.jit_hook <- Some (fun _ _ -> Vm.Types.Jit_declined);
  let p = Mini.Front.load rt hot_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  for k = 0 to 5 do
    check_value "still correct" (Mini.Front.call pp "hot" [| Int 10; Int k |])
      (Mini.Front.call p "hot" [| Int 10; Int k |])
  done;
  let m = Mini.Front.find_function p "hot" in
  check_bool "blacklisted" true (m.mtier = Tier_blacklisted);
  check_int "nothing compiled" 0 rt.tiering.t_compiles

(* ------------------------------------------------------------------ *)

let test_counters_monotone () =
  let rt = boot_tiered ~threshold:3 () in
  let p = Mini.Front.load rt spec_src in
  let snap () =
    let t = rt.tiering in
    [ t.t_compiles; t.t_cache_hits; t.t_cache_misses; t.t_deopts;
      rt.interp_steps ]
  in
  let prev = ref (snap ()) in
  for k = 0 to 14 do
    (* mix fast-path and deopting calls *)
    ignore (Mini.Front.call p "spec" [| Int (if k mod 5 = 4 then 900 else k) |]);
    let now = snap () in
    List.iter2
      (fun a b -> check_bool "monotone" true (b >= a))
      !prev now;
    prev := now
  done;
  check_bool "saw compiles" true (rt.tiering.t_compiles >= 1);
  check_bool "saw deopts" true (rt.tiering.t_deopts >= 1)

let suite =
  [
    Alcotest.test_case "promotion" `Quick test_promotion;
    Alcotest.test_case "disabled" `Quick test_disabled;
    Alcotest.test_case "matches-interpreter" `Quick test_matches_interpreter;
    Alcotest.test_case "speculate-deopt" `Quick test_speculate_deopt;
    Alcotest.test_case "stable-recompile" `Quick test_stable_recompile;
    Alcotest.test_case "invalidation" `Quick test_invalidation;
    Alcotest.test_case "eviction" `Quick test_eviction;
    Alcotest.test_case "blacklist" `Quick test_blacklist;
    Alcotest.test_case "counters-monotone" `Quick test_counters_monotone;
  ]
