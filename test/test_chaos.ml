(* Tests for the deterministic fault-injection framework: spec parsing,
   per-site seeded determinism, the crash-safe profile writer under
   injected write failures, queue saturation faults, and the soak
   invariant — under a seeded fault schedule the tiered runtime computes
   the pure-interpreter checksum and exits cleanly. *)

open Vm.Types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let quiet = Some (fun (_ : string) -> ())

(* Every test leaves the global chaos switch off, whatever happens. *)
let protected f () = Fun.protect ~finally:Chaos.disable f

let configure_ok spec =
  match Chaos.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)

let test_spec_parsing () =
  configure_ok "compile_crash:p=0.5,compile_stall:ms=50,seed=7";
  check_bool "armed" true !Chaos.on;
  check_int "seed parsed" 7 (Chaos.seed ());
  check_int "ms parsed" 50 (Chaos.ms Chaos.compile_stall);
  Chaos.disable ();
  check_bool "disable clears the switch" false !Chaos.on;
  let is_err = function Error _ -> true | Ok () -> false in
  check_bool "empty spec rejected" true (is_err (Chaos.configure ""));
  check_bool "unknown site rejected" true (is_err (Chaos.configure "bogus"));
  (match Chaos.configure "bogus" with
  | Error e ->
    check_bool "error lists the known sites" true
      (Vm.Strutil.contains e "compile_crash")
  | Ok () -> Alcotest.fail "bogus site accepted");
  check_bool "bad probability rejected" true
    (is_err (Chaos.configure "compile_crash:p=2"));
  check_bool "bad seed rejected" true (is_err (Chaos.configure "seed=x"));
  check_bool "unknown parameter rejected" true
    (is_err (Chaos.configure "compile_crash:frobnicate=1"));
  check_bool "a failed configure leaves chaos off" false !Chaos.on;
  (* every registered site is documented *)
  List.iter
    (fun (name, doc) ->
      check_bool (name ^ " has a doc string") true (String.length doc > 0))
    (Chaos.describe ())

(* ------------------------------------------------------------------ *)
(* Determinism: same (spec, seed) -> same per-site outcome sequence     *)

let draw_seq spec n =
  configure_ok spec;
  let l = List.init n (fun _ -> Chaos.fire Chaos.compile_crash) in
  Chaos.disable ();
  l

let test_determinism () =
  let a = draw_seq "compile_crash:p=0.5,seed=7" 64 in
  let b = draw_seq "compile_crash:p=0.5,seed=7" 64 in
  check_bool "same seed replays the same schedule" true (a = b);
  let c = draw_seq "compile_crash:p=0.5,seed=8" 64 in
  check_bool "a different seed gives a different schedule" false (a = c);
  (* independence: arming another site must not perturb this one *)
  let d = draw_seq "compile_crash:p=0.5,cache_evict:p=0.5,seed=7" 64 in
  check_bool "sites draw from independent streams" true (a = d);
  check_bool "something fired" true (List.mem true a);
  check_bool "something did not fire" true (List.mem false a)

let test_fire_modes () =
  configure_ok "cache_evict,seed=1";
  for i = 1 to 10 do
    check_bool (Printf.sprintf "p defaults to 1: draw %d fires" i) true
      (Chaos.fire Chaos.cache_evict)
  done;
  Chaos.disable ();
  configure_ok "cache_evict:n=3,seed=1";
  let fired = List.init 9 (fun _ -> Chaos.fire Chaos.cache_evict) in
  check_bool "n=3 fires on every third draw" true
    (fired = [ false; false; true; false; false; true; false; false; true ]);
  Chaos.disable ();
  configure_ok "compile_crash:p=0,seed=1";
  for _ = 1 to 10 do
    check_bool "p=0 never fires" false (Chaos.fire Chaos.compile_crash)
  done;
  Chaos.disable ();
  (* a disarmed site never fires, even with chaos on *)
  configure_ok "cache_evict,seed=1";
  check_bool "disarmed site stays quiet" false (Chaos.fire Chaos.compile_crash)

(* ------------------------------------------------------------------ *)
(* Crash-safe profile writes: a write killed midway must leave the
   previous profile untouched (tmp + rename), and corrupted bytes must
   degrade to a cold start on load.                                     *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_profile_truncate_survives () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let path = Filename.temp_file "lancet_chaos" ".lprof" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists tmp then Sys.remove tmp;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Persist.save rt path;
      let before = read_file path in
      check_bool "baseline profile written" true (String.length before > 0);
      configure_ok "profile_truncate,seed=3";
      (match Persist.save rt path with
      | () -> Alcotest.fail "killed write should raise"
      | exception Sys_error e ->
        check_bool "error names the injected kill" true
          (Vm.Strutil.contains e "chaos"));
      Chaos.disable ();
      check_string "old profile survives the killed write" before
        (read_file path);
      check_bool "load still succeeds" true (Persist.load path <> None);
      (* corrupted bytes: the write completes but the loader must refuse *)
      configure_ok "profile_corrupt,seed=3";
      Persist.save rt path;
      Chaos.disable ();
      check_bool "corrupt profile degrades to a cold start" true
        (Persist.load path = None))

(* ------------------------------------------------------------------ *)
(* Queue saturation fault: enqueue drops exactly as if the queue were
   full — no blocking, method returned to the interpreter for retry.    *)

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let test_queue_full_drops () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let pool =
    Bgjit.create ~threads:1 ?log:quiet ~compile:Lancet.Tiering.compile rt
  in
  let p = Mini.Front.load rt hot_src in
  let m = Mini.Front.find_function p "hot" in
  configure_ok "queue_full,seed=5";
  m.mtier <- Tier_compiling;
  check_bool "forced saturation drops" true (Bgjit.enqueue pool m = `Dropped);
  check_bool "method back to cold for retry" true (m.mtier = Tier_cold);
  check_int "drop counted" 1 (Bgjit.stats pool).Bgjit.s_dropped;
  Chaos.disable ();
  check_bool "queues again once chaos is off" true
    (Bgjit.enqueue pool m = `Queued);
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  check_int "retry installed" 1 (Bgjit.stats pool).Bgjit.s_installed

(* ------------------------------------------------------------------ *)
(* Soak invariant: under a seeded schedule arming every fault site at
   once, the tiered runtime (2 JIT workers, tiny code cache, governor
   attached) computes the pure-interpreter checksum and exits through
   the bounded drain/shutdown path.                                     *)

let soak_src =
  {|
def s_calc(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
def s_spec(x: int): int =
  if (Lancet.speculate(x < 100000)) x * 3 + 1 else x - 7
|}

let soak_drive p ~calls =
  let acc = ref 0 in
  let put v = acc := (!acc + Vm.Value.to_int v) land 0xFFFFFF in
  for i = 1 to calls do
    put (Mini.Front.call p "s_calc" [| Int 40; Int i |]);
    let x = if i mod 20 = 0 then 1_000_000 + i else i in
    put (Mini.Front.call p "s_spec" [| Int x |])
  done;
  !acc

let test_soak_checksum () =
  let calls = 100 in
  let expect =
    let rt = Vm.Natives.boot () in
    soak_drive (Mini.Front.load rt soak_src) ~calls
  in
  List.iter
    (fun seed ->
      configure_ok
        (Printf.sprintf
           "compile_crash:p=0.3,compile_stall:p=0.3:ms=5,compile_garbage:p=0.3,queue_full:p=0.3,cache_evict:p=0.5,hier_churn:p=0.01,seed=%d"
           seed);
      let rt, pool =
        Lancet.Api.boot_bg ~tiering:true ~tier_threshold:4 ~tier_cache_size:2
          ~jit_threads:2 ()
      in
      let gov = Lancet.Governor.attach ?pool rt in
      let got = soak_drive (Mini.Front.load rt soak_src) ~calls in
      (match pool with Some b -> Bgjit.drain ~timeout_ms:2000 b | None -> ());
      Lancet.Governor.detach gov;
      (match pool with
      | Some b -> Bgjit.shutdown ~timeout_ms:2000 b
      | None -> ());
      Chaos.disable ();
      check_int (Printf.sprintf "seed %d matches the interpreter" seed) expect
        got)
    [ 5; 9; 23 ]

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "spec-parsing" `Quick (protected test_spec_parsing);
    Alcotest.test_case "determinism" `Quick (protected test_determinism);
    Alcotest.test_case "fire-modes" `Quick (protected test_fire_modes);
    Alcotest.test_case "profile-truncate-survives" `Quick
      (protected test_profile_truncate_survives);
    Alcotest.test_case "queue-full-drops" `Quick
      (protected test_queue_full_drops);
    Alcotest.test_case "soak-checksum" `Quick (protected test_soak_checksum);
  ]
