(* Tests for the observability layer: the event bus fast path, ring-buffer
   wraparound, deterministic event sequences for promoted / recompiled /
   evicted methods, Chrome trace JSON validity, per-method profiles and the
   disassembly marker used to render deopt sites. *)

open Vm.Types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let boot_tiered ?(threshold = 4) ?(cache = 512) () =
  Lancet.Api.boot ~tiering:true ~tier_threshold:threshold
    ~tier_cache_size:cache ()

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let stable_src =
  {|
var fast: bool = true
def set_fast(b: bool): unit = { fast = b }
def f(x: int): int = if (Lancet.stable(fun () => fast)) x * 10 else x + 1
|}

let two_hot_src =
  {|
def a(n: int): int = { var s = 0; for (i <- 0 until n) { s = s + i * 3 }; s }
def b(n: int): int = { var s = 1; for (i <- 0 until n) { s = s + i * 5 }; s }
|}

(* Record every event into a ring while [f] runs. *)
let record ?(capacity = 65536) f =
  let ring = Obs.Ring.create ~capacity () in
  Obs.with_sink (Obs.Ring.sink ring) f;
  Obs.Ring.events ring

(* [expected] must appear within [kinds] in order (other kinds may be
   interleaved). *)
let check_subsequence label (expected : string list) (kinds : string list) =
  let rec go exp ks =
    match (exp, ks) with
    | [], _ -> ()
    | e :: _, [] ->
      Alcotest.failf "%s: missing %s (saw: %s)" label e
        (String.concat " " kinds)
    | e :: erest, k :: krest ->
      if e = k then go erest krest else go exp krest
  in
  go expected kinds

(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  let ring = Obs.Ring.create ~capacity:4 () in
  let s = Obs.Ring.sink ring in
  Obs.attach s;
  Fun.protect ~finally:(fun () -> Obs.detach s) (fun () ->
      for i = 1 to 10 do
        Obs.emit (Obs.Span_end { name = string_of_int i; cat = "t"; ms = 0. })
      done);
  check_int "total seen" 10 (Obs.Ring.seen ring);
  let names =
    List.map
      (function Obs.Span_end { name; _ } -> name | _ -> "?")
      (Obs.Ring.events ring)
  in
  Alcotest.(check (list string)) "last 4, oldest first" [ "7"; "8"; "9"; "10" ]
    names

let test_no_sink_fast_path () =
  check_bool "disabled with no sink" false !Obs.enabled;
  let ring = Obs.Ring.create () in
  (* nothing attached: emit must deliver nothing, span must not record *)
  Obs.emit (Obs.Cache_evict { meth = "x"; mid = 0; occ = 0 });
  Obs.span "dead" (fun () -> ());
  check_int "nothing recorded" 0 (Obs.Ring.seen ring);
  let s = Obs.Ring.sink ring in
  Obs.attach s;
  check_bool "enabled after attach" true !Obs.enabled;
  Obs.detach s;
  check_bool "disabled after detach" false !Obs.enabled;
  (* a tiered workload with no sink attached emits nothing anywhere *)
  let rt = boot_tiered () in
  let p = Mini.Front.load rt hot_src in
  for k = 0 to 9 do
    ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
  done;
  check_int "still nothing recorded" 0 (Obs.Ring.seen ring);
  check_bool "workload compiled" true (rt.tiering.t_compiles >= 1)

(* A promoted method produces promote -> compile-start -> compile-end ->
   install, in that order, carrying its method id. *)
let test_promotion_sequence () =
  let rt = boot_tiered ~threshold:4 () in
  let p = Mini.Front.load rt hot_src in
  let events =
    record (fun () ->
        for k = 0 to 9 do
          ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
        done)
  in
  let m = Mini.Front.find_function p "hot" in
  let mine =
    List.filter
      (fun ev ->
        match ev with
        | Obs.Tier_promote { mid; _ }
        | Obs.Compile_start { mid; _ }
        | Obs.Cache_install { mid; _ } ->
          mid = m.mid
        | Obs.Compile_end c -> c.Obs.ci_mid = m.mid
        | _ -> false)
      events
  in
  check_subsequence "promotion"
    [ "tier-promote"; "compile-start"; "compile-end"; "cache-install" ]
    (List.map Obs.kind_to_string mine);
  List.iter
    (fun ev ->
      match ev with
      | Obs.Compile_end c ->
        check_bool "label" true (String.ends_with ~suffix:".hot" c.Obs.ci_meth);
        check_int "tier" 1 c.Obs.ci_tier;
        check_bool "backend named" true
          (c.Obs.ci_backend = "typed" || c.Obs.ci_backend = "closure");
        check_bool "nodes counted" true (c.Obs.ci_nodes_in > 0);
        check_bool "opt does not grow the graph" true
          (c.Obs.ci_nodes_out <= c.Obs.ci_nodes_in);
        check_bool "time non-negative" true (c.Obs.ci_ms >= 0.0)
      | _ -> ())
    mine

(* A failed stable guard produces deopt(recompile) -> invalidate ->
   compile-start/end -> install, and t_compiles counts both builds. *)
let test_deopt_recompile_sequence () =
  let rt = boot_tiered ~threshold:1 () in
  let p = Mini.Front.load rt stable_src in
  ignore (Mini.Front.call p "f" [| Int 3 |]);
  ignore (Mini.Front.call p "f" [| Int 3 |]);
  (* threshold 1 also promotes set_fast and the stable-guard closure, so
     compare against a snapshot rather than an absolute count *)
  let compiles0 = rt.tiering.t_compiles in
  check_bool "initial compile counted" true (compiles0 >= 1);
  ignore (Mini.Front.call p "set_fast" [| Vm.Value.of_bool false |]);
  let events =
    record (fun () ->
        Alcotest.check
          (Alcotest.testable Vm.Value.pp Vm.Value.equal)
          "recompiled result" (Int 4)
          (Mini.Front.call p "f" [| Int 3 |]))
  in
  let m = Mini.Front.find_function p "f" in
  let mine =
    List.filter
      (fun ev ->
        match ev with
        | Obs.Deopt { mid; _ }
        | Obs.Cache_invalidate { mid; _ }
        | Obs.Compile_start { mid; _ }
        | Obs.Cache_install { mid; _ } ->
          mid = m.mid
        | Obs.Compile_end c -> c.Obs.ci_mid = m.mid
        | _ -> false)
      events
  in
  check_subsequence "recompile"
    [ "deopt"; "cache-invalidate"; "compile-start"; "compile-end";
      "cache-install" ]
    (List.map Obs.kind_to_string mine);
  (match
     List.find_opt (function Obs.Deopt _ -> true | _ -> false) mine
   with
  | Some (Obs.Deopt { kind; tag; pc; _ }) ->
    check_bool "recompile exit" true (kind = Obs.Recompile);
    check_string "stable tag" "stable" tag;
    check_bool "pc recorded" true (pc >= 0)
  | _ -> Alcotest.fail "no deopt event");
  check_bool "recompile counted" true (rt.tiering.t_compiles > compiles0)

let test_eviction_events () =
  let rt = boot_tiered ~threshold:1 ~cache:1 () in
  let p = Mini.Front.load rt two_hot_src in
  let events =
    record (fun () ->
        for _ = 1 to 4 do
          ignore (Mini.Front.call p "a" [| Int 20 |]);
          ignore (Mini.Front.call p "b" [| Int 20 |])
        done)
  in
  let evicts =
    List.length
      (List.filter (function Obs.Cache_evict _ -> true | _ -> false) events)
  in
  check_bool "evictions observed" true (evicts >= 1);
  check_int "one event per eviction" rt.tiering.t_evictions evicts

(* ------------------------------------------------------------------ *)

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let c = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr c
  done;
  !c

let test_chrome_trace () =
  let chrome = Obs.Chrome.create () in
  Obs.with_sink (Obs.Chrome.sink chrome) (fun () ->
      let rt = boot_tiered ~threshold:4 () in
      let p = Mini.Front.load rt hot_src in
      for k = 0 to 9 do
        ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
      done);
  let json = Obs.Chrome.dump chrome in
  (match Obs.Json.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid trace JSON: %s" e);
  check_bool "has compile-end" true (Vm.Strutil.contains json "compile-end");
  check_bool "has trace viewer keys" true
    (Vm.Strutil.contains json "\"traceEvents\"");
  (* duration events must balance for chrome://tracing to nest them *)
  check_int "B/E balanced"
    (count_sub json "\"ph\":\"B\"")
    (count_sub json "\"ph\":\"E\"");
  (* escaping: a name with quotes and newlines survives validation *)
  let c2 = Obs.Chrome.create () in
  Obs.with_sink (Obs.Chrome.sink c2) (fun () ->
      Obs.emit (Obs.Span_begin { name = "we\"ird\n\tname"; cat = "t" });
      Obs.emit (Obs.Span_end { name = "we\"ird\n\tname"; cat = "t"; ms = 1. }));
  match Obs.Json.validate (Obs.Chrome.dump c2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "escaping broke JSON: %s" e

let test_profile () =
  let profile = Obs.Profile.create () in
  let rt = boot_tiered ~threshold:4 () in
  let p = Mini.Front.load rt hot_src in
  Obs.with_sink (Obs.Profile.sink profile) (fun () ->
      for k = 0 to 199 do
        ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
      done);
  let m = Mini.Front.find_function p "hot" in
  (match Obs.Profile.find profile m.mid with
  | None -> Alcotest.fail "hot method missing from profile"
  | Some e ->
    check_bool "label" true
      (String.ends_with ~suffix:".hot" e.Obs.Profile.pe_meth);
    check_int "one promotion" 1 e.Obs.Profile.pe_promotes;
    check_int "one compile" 1 e.Obs.Profile.pe_compiles;
    check_int "one install" 1 e.Obs.Profile.pe_installs;
    check_int "no deopts" 0 e.Obs.Profile.pe_deopts;
    check_bool "compile time accumulated" true (e.Obs.Profile.pe_compile_ms > 0.);
    check_bool "compiled calls sampled" true (e.Obs.Profile.pe_exec_calls > 0));
  let table = Obs.Profile.table profile in
  check_bool "table lists the method" true (Vm.Strutil.contains table ".hot")

let test_spans () =
  let events =
    record (fun () ->
        Obs.span ~cat:"test" "outer" (fun () ->
            Obs.span ~cat:"test" "inner" (fun () -> ());
            (try Obs.span ~cat:"test" "raises" (fun () -> failwith "boom")
             with Failure _ -> ())))
  in
  let kinds = List.map Obs.kind_to_string events in
  Alcotest.(check (list string)) "nesting"
    [ "span-begin"; "span-begin"; "span-end"; "span-begin"; "span-end";
      "span-end" ]
    kinds;
  (* the exception-path span still closed *)
  match List.nth events 4 with
  | Obs.Span_end { name; _ } -> check_string "raises closed" "raises" name
  | _ -> Alcotest.fail "expected span-end for raises"

let test_json_validator () =
  let ok s =
    match Obs.Json.validate s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "rejected valid %S: %s" s e
  in
  let bad s =
    match Obs.Json.validate s with
    | Ok () -> Alcotest.failf "accepted invalid %S" s
    | Error _ -> ()
  in
  ok {|{"a": [1, -2.5, 3e4], "b": "x\"yA", "c": null, "d": [true, false]}|};
  ok "[]";
  ok "  {  }  ";
  ok {|"just a string"|};
  bad "";
  bad "{";
  bad {|{"a": }|};
  bad {|{"a": 1,}|};
  bad "[1, 2";
  bad {|{"a": 1} trailing|};
  bad {|{'a': 1}|}

let test_disasm_mark () =
  let rt = Vm.Natives.boot () in
  let p = Mini.Front.load rt hot_src in
  let m = Mini.Front.find_function p "hot" in
  let plain = Vm.Disasm.method_to_string m in
  check_bool "no marker by default" false (Vm.Strutil.contains plain "=>");
  let marked = Vm.Disasm.method_to_string ~mark:2 m in
  check_bool "marker present" true (Vm.Strutil.contains marked "=>");
  check_bool "marker at pc 2" true (Vm.Strutil.contains marked "=>    2:")

let suite =
  [
    Alcotest.test_case "ring-wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "no-sink-fast-path" `Quick test_no_sink_fast_path;
    Alcotest.test_case "promotion-sequence" `Quick test_promotion_sequence;
    Alcotest.test_case "deopt-recompile-sequence" `Quick
      test_deopt_recompile_sequence;
    Alcotest.test_case "eviction-events" `Quick test_eviction_events;
    Alcotest.test_case "chrome-trace" `Quick test_chrome_trace;
    Alcotest.test_case "profile" `Quick test_profile;
    Alcotest.test_case "spans" `Quick test_spans;
    Alcotest.test_case "json-validator" `Quick test_json_validator;
    Alcotest.test_case "disasm-mark" `Quick test_disasm_mark;
  ]
