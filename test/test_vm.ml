(* Tests for the bytecode VM substrate: assembler, interpreter, classes,
   dispatch, arrays, natives, output capture. *)

open Vm
open Vm.Types

let fresh_rt () = Natives.boot ()

let check_int = Alcotest.(check int)
let check_value = Alcotest.check Util.value

(* helper: a static method on a scratch class *)
let counter = ref 0

let static_method rt ~nargs gen =
  incr counter;
  let cls =
    Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] ()
  in
  Assembler.define_method rt cls ~name:"m" ~static:true ~nargs gen

let test_arith () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:2 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Load 1);
        Assembler.emit b (Iop Add);
        Assembler.emit b (Const (Int 10));
        Assembler.emit b (Iop Mul);
        Assembler.emit b Retv)
  in
  check_value "(3+4)*10" (Int 70) (Interp.call rt m [| Int 3; Int 4 |])

let test_div_by_zero () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:2 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Load 1);
        Assembler.emit b (Iop Div);
        Assembler.emit b Retv)
  in
  check_value "7/2" (Int 3) (Interp.call rt m [| Int 7; Int 2 |]);
  Alcotest.check_raises "div by zero" (Vm_error "division by zero") (fun () ->
      ignore (Interp.call rt m [| Int 1; Int 0 |]))

let test_wrap32 () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:2 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Load 1);
        Assembler.emit b (Iop Mul);
        Assembler.emit b Retv)
  in
  (* 2^30 * 4 wraps around in 32-bit arithmetic *)
  check_value "wraparound" (Int 0)
    (Interp.call rt m [| Int 1073741824; Int 4 |])

let test_float_ops () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:2 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Load 1);
        Assembler.emit b (Fop FDiv);
        Assembler.emit b Retv)
  in
  check_value "7.0 /. 2.0" (Float 3.5) (Interp.call rt m [| Float 7.; Float 2. |])

let test_loop_sum () =
  let rt = fresh_rt () in
  (* sum of 0..n-1 *)
  let m =
    static_method rt ~nargs:1 (fun b ->
        let i = Assembler.local b and acc = Assembler.local b in
        Assembler.emit b (Const (Int 0));
        Assembler.emit b (Store i);
        Assembler.emit b (Const (Int 0));
        Assembler.emit b (Store acc);
        let head = Assembler.new_label b in
        let exit = Assembler.new_label b in
        Assembler.place b head;
        Assembler.emit b (Load i);
        Assembler.emit b (Load 0);
        Assembler.if_ b Ge exit;
        Assembler.emit b (Load acc);
        Assembler.emit b (Load i);
        Assembler.emit b (Iop Add);
        Assembler.emit b (Store acc);
        Assembler.emit b (Load i);
        Assembler.emit b (Const (Int 1));
        Assembler.emit b (Iop Add);
        Assembler.emit b (Store i);
        Assembler.goto b head;
        Assembler.place b exit;
        Assembler.emit b (Load acc);
        Assembler.emit b Retv)
  in
  check_value "sum 100" (Int 4950) (Interp.call rt m [| Int 100 |])

let test_fields_and_dispatch () =
  let rt = fresh_rt () in
  let animal =
    Classfile.declare_class rt ~name:"Animal" ~fields:[ ("name", false) ] ()
  in
  ignore
    (Assembler.define_method rt animal ~name:"sound" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Str "generic"));
         Assembler.emit b Retv));
  let dog =
    Classfile.declare_class rt ~name:"Dog" ~super:"Animal" ~fields:[] ()
  in
  ignore
    (Assembler.define_method rt dog ~name:"sound" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Str "woof"));
         Assembler.emit b Retv));
  (* new Dog; d.name = "rex"; return d.sound() ^ ":" ^ d.name *)
  let fname = Classfile.field dog "name" in
  let concat = Classfile.static_method rt ~cls:"Str" ~name:"concat" in
  let m =
    static_method rt ~nargs:0 (fun b ->
        let d = Assembler.local b in
        Assembler.emit b (New dog);
        Assembler.emit b (Store d);
        Assembler.emit b (Load d);
        Assembler.emit b (Const (Str "rex"));
        Assembler.emit b (Putfield fname);
        Assembler.emit b (Load d);
        Assembler.emit b (Invoke (Virtual ("sound", 0, None)));
        Assembler.emit b (Load d);
        Assembler.emit b (Getfield fname);
        Assembler.emit b (Invoke (Static concat));
        Assembler.emit b Retv)
  in
  check_value "virtual dispatch" (Str "woofrex") (Interp.call rt m [||]);
  (* the same call through the superclass vtable *)
  let m2 =
    static_method rt ~nargs:0 (fun b ->
        Assembler.emit b (New animal);
        Assembler.emit b (Invoke (Virtual ("sound", 0, None)));
        Assembler.emit b Retv)
  in
  check_value "base dispatch" (Str "generic") (Interp.call rt m2 [||])

let test_inherited_fields () =
  let rt = fresh_rt () in
  let a = Classfile.declare_class rt ~name:"A" ~fields:[ ("x", false) ] () in
  let b = Classfile.declare_class rt ~name:"B" ~super:"A" ~fields:[ ("y", false) ] () in
  let fx = Classfile.field b "x" and fy = Classfile.field b "y" in
  Alcotest.(check bool) "x slot before y slot" true (fx.fidx < fy.fidx);
  check_int "B has two fields" 2 (Array.length b.cfields);
  check_int "A has one field" 1 (Array.length a.cfields)

let test_arrays () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:1 (fun b ->
        let a = Assembler.local b in
        Assembler.emit b (Load 0);
        Assembler.emit b Newarr;
        Assembler.emit b (Store a);
        (* a[2] = 42; return a[2] + len(a) *)
        Assembler.emit b (Load a);
        Assembler.emit b (Const (Int 2));
        Assembler.emit b (Const (Int 42));
        Assembler.emit b Astore;
        Assembler.emit b (Load a);
        Assembler.emit b (Const (Int 2));
        Assembler.emit b Aload;
        Assembler.emit b (Load a);
        Assembler.emit b Alen;
        Assembler.emit b (Iop Add);
        Assembler.emit b Retv)
  in
  check_value "array ops" (Int 47) (Interp.call rt m [| Int 5 |])

let test_float_arrays () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:0 (fun b ->
        let a = Assembler.local b in
        Assembler.emit b (Const (Int 3));
        Assembler.emit b Newfarr;
        Assembler.emit b (Store a);
        Assembler.emit b (Load a);
        Assembler.emit b (Const (Int 1));
        Assembler.emit b (Const (Float 2.5));
        Assembler.emit b Fastore;
        Assembler.emit b (Load a);
        Assembler.emit b (Const (Int 1));
        Assembler.emit b Faload;
        Assembler.emit b Retv)
  in
  check_value "farray ops" (Float 2.5) (Interp.call rt m [||])

let test_globals () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:1 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Putglobal 3);
        Assembler.emit b (Getglobal 3);
        Assembler.emit b (Const (Int 1));
        Assembler.emit b (Iop Add);
        Assembler.emit b Retv)
  in
  check_value "global roundtrip" (Int 11) (Interp.call rt m [| Int 10 |]);
  check_value "global persists" (Int 10) (Runtime.get_global rt 3)

let test_natives_str () =
  let rt = fresh_rt () in
  let split = Classfile.static_method rt ~cls:"Str" ~name:"split" in
  let v = Interp.call rt split [| Str "a,bb,ccc"; Str "," |] in
  check_value "split" (Arr [| Str "a"; Str "bb"; Str "ccc" |]) v;
  let idx = Classfile.static_method rt ~cls:"Str" ~name:"index_of" in
  check_value "index_of" (Int 2) (Interp.call rt idx [| Str "abcd"; Str "cd" |]);
  check_value "index_of missing" (Int (-1))
    (Interp.call rt idx [| Str "abcd"; Str "xy" |])

let test_output_capture () =
  let rt = fresh_rt () in
  let println = Classfile.static_method rt ~cls:"Sys" ~name:"println" in
  let out, _ =
    Runtime.capture_output rt (fun () ->
        ignore (Interp.call rt println [| Str "hello" |]);
        ignore (Interp.call rt println [| Int 42 |]))
  in
  Alcotest.(check string) "captured" "hello\n42\n" out

let test_compiled_fn () =
  let rt = fresh_rt () in
  let f =
    Natives.make_compiled_fn rt (fun args ->
        Int (Value.to_int args.(0) * 2))
  in
  check_value "closure call" (Int 14) (Interp.call_closure rt f [| Int 7 |])

let test_lancet_fallbacks () =
  let rt = fresh_rt () in
  (* Lancet.freeze(thunk) in interpreter mode just forces the thunk *)
  let freeze = Classfile.static_method rt ~cls:"Lancet" ~name:"freeze" in
  let thunk = Natives.make_compiled_fn rt (fun _ -> Int 99) in
  check_value "freeze fallback" (Int 99) (Interp.call rt freeze [| thunk |]);
  let ntimes = Classfile.static_method rt ~cls:"Lancet" ~name:"ntimes" in
  let count = ref 0 in
  let body =
    Natives.make_compiled_fn rt (fun args ->
        count := !count + Value.to_int args.(0);
        Null)
  in
  ignore (Interp.call rt ntimes [| Int 4; body |]);
  check_int "ntimes fallback ran 0+1+2+3" 6 !count;
  let compile = Classfile.static_method rt ~cls:"Lancet" ~name:"compile" in
  check_value "compile fallback = identity" thunk
    (Interp.call rt compile [| thunk |])

let test_deep_recursion_frames () =
  let rt = fresh_rt () in
  (* recursive sum via static self-call: f(n) = n <= 0 ? 0 : n + f(n-1) *)
  incr counter;
  let cls =
    Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] ()
  in
  let m = Classfile.add_method rt cls ~name:"f" ~static:true ~nargs:1 (Bytecode [||]) in
  let b = Assembler.create rt ~nlocals:1 in
  let base = Assembler.new_label b in
  Assembler.emit b (Load 0);
  Assembler.ifz b Le base;
  Assembler.emit b (Load 0);
  Assembler.emit b (Load 0);
  Assembler.emit b (Const (Int 1));
  Assembler.emit b (Iop Sub);
  Assembler.emit b (Invoke (Static m));
  Assembler.emit b (Iop Add);
  Assembler.emit b Retv;
  Assembler.place b base;
  Assembler.emit b (Const (Int 0));
  Assembler.emit b Retv;
  let code, _lines, nlocals, maxstack = Assembler.finish b in
  m.mcode <- Bytecode code;
  m.mnlocals <- nlocals;
  m.mmaxstack <- maxstack;
  check_value "recursive sum" (Int 500500) (Interp.call rt m [| Int 1000 |])

let test_disasm () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:1 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Const (Int 1));
        Assembler.emit b (Iop Add);
        Assembler.emit b Retv)
  in
  let s = Disasm.method_to_string m in
  Alcotest.(check bool) "has iadd" true (Util.contains_sub s "iadd");
  Alcotest.(check bool) "has vreturn" true (Util.contains_sub s "vreturn")

let test_interp_steps () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:0 (fun b ->
        Assembler.emit b (Const (Int 1));
        Assembler.emit b Retv)
  in
  let before = rt.interp_steps in
  ignore (Interp.call rt m [||]);
  check_int "two instructions" 2 (rt.interp_steps - before)

(* property: the assembler's max-stack bound is safe for random arithmetic *)
let prop_maxstack =
  QCheck.Test.make ~name:"assembler maxstack is safe" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (QCheck.int_range 0 4))
    (fun shape ->
      let rt = fresh_rt () in
      let m =
        static_method rt ~nargs:0 (fun b ->
            Assembler.emit b (Const (Int 1));
            List.iter
              (fun k ->
                if k < 3 then begin
                  (* push then combine: grows stack *)
                  Assembler.emit b (Const (Int (k + 1)));
                  Assembler.emit b (Iop Add)
                end
                else Assembler.emit b Dup)
              shape;
            (* collapse whatever is left *)
            let dups = List.length (List.filter (fun k -> k >= 3) shape) in
            for _ = 1 to dups do
              Assembler.emit b (Iop Add)
            done;
            Assembler.emit b Retv)
      in
      match Interp.call rt m [||] with Int _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "div-by-zero" `Quick test_div_by_zero;
    Alcotest.test_case "wrap32" `Quick test_wrap32;
    Alcotest.test_case "float-ops" `Quick test_float_ops;
    Alcotest.test_case "loop-sum" `Quick test_loop_sum;
    Alcotest.test_case "fields-dispatch" `Quick test_fields_and_dispatch;
    Alcotest.test_case "inherited-fields" `Quick test_inherited_fields;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "float-arrays" `Quick test_float_arrays;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "natives-str" `Quick test_natives_str;
    Alcotest.test_case "output-capture" `Quick test_output_capture;
    Alcotest.test_case "compiled-fn" `Quick test_compiled_fn;
    Alcotest.test_case "lancet-fallbacks" `Quick test_lancet_fallbacks;
    Alcotest.test_case "deep-recursion" `Quick test_deep_recursion_frames;
    Alcotest.test_case "disasm" `Quick test_disasm;
    Alcotest.test_case "interp-steps" `Quick test_interp_steps;
    QCheck_alcotest.to_alcotest prop_maxstack;
  ]

(* ---- verifier ---- *)

let test_verifier_accepts_good_code () =
  let rt = fresh_rt () in
  let m =
    static_method rt ~nargs:1 (fun b ->
        let l = Assembler.new_label b in
        Assembler.emit b (Load 0);
        Assembler.ifz b Le l;
        Assembler.emit b (Load 0);
        Assembler.emit b (Const (Int 2));
        Assembler.emit b (Iop Mul);
        Assembler.emit b Retv;
        Assembler.place b l;
        Assembler.emit b (Const (Int 0));
        Assembler.emit b Retv)
  in
  Verifier.verify m;
  Alcotest.(check bool) "verify_all covers user methods" true
    (Verifier.verify_all rt >= 1)

let expect_verify_error m =
  match Verifier.verify m with
  | exception Verifier.Verify_error _ -> ()
  | () -> Alcotest.fail "expected a verifier error"

let test_verifier_rejects_underflow () =
  let rt = fresh_rt () in
  incr counter;
  let cls = Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] () in
  let m = Classfile.add_method rt cls ~name:"bad" ~static:true ~nargs:0 (Bytecode [| Iop Add; Retv |]) in
  m.mmaxstack <- 4;
  expect_verify_error m

let test_verifier_rejects_bad_local () =
  let rt = fresh_rt () in
  incr counter;
  let cls = Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] () in
  let m = Classfile.add_method rt cls ~name:"bad" ~static:true ~nargs:0 (Bytecode [| Load 5; Retv |]) in
  m.mmaxstack <- 4;
  expect_verify_error m

let test_verifier_rejects_bad_target () =
  let rt = fresh_rt () in
  incr counter;
  let cls = Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] () in
  let m = Classfile.add_method rt cls ~name:"bad" ~static:true ~nargs:0 (Bytecode [| Goto 99 |]) in
  m.mmaxstack <- 4;
  expect_verify_error m

let test_verifier_rejects_inconsistent_join () =
  let rt = fresh_rt () in
  incr counter;
  let cls = Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] () in
  (* path A pushes 2 values before the join, path B pushes 1 *)
  let code =
    [|
      Const (Int 1); (* 0: depth 1 *)
      Ifz (Eq, 4); (* 1: pops -> 0; branch *)
      Const (Int 1); (* 2 *)
      Const (Int 2); (* 3: depth 2; falls into 4 *)
      Const (Int 3); (* 4: join reached with depth 0 and 2 *)
      Retv;
    |]
  in
  let m = Classfile.add_method rt cls ~name:"bad" ~static:true ~nargs:0 (Bytecode code) in
  m.mmaxstack <- 8;
  expect_verify_error m

let test_verifier_rejects_fall_off_end () =
  let rt = fresh_rt () in
  incr counter;
  let cls = Classfile.declare_class rt ~name:(Printf.sprintf "T%d" !counter) ~fields:[] () in
  let m = Classfile.add_method rt cls ~name:"bad" ~static:true ~nargs:0 (Bytecode [| Const (Int 1) |]) in
  m.mmaxstack <- 4;
  expect_verify_error m

(* property: everything the Mini code generator emits verifies *)
let prop_codegen_verifies =
  QCheck.Test.make ~name:"Mini codegen output verifies" ~count:40
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "class P { var x: int\n\
           \  def init(x: int): unit = { this.x = x }\n\
           \  def get(): int = this.x }\n\
           def f(n: int): int = {\n\
           \  var acc = %d;\n\
           \  for (i <- 0 until n) {\n\
           \    val p = new P(i + %d);\n\
           \    val g = fun (y: int) => y + p.get();\n\
           \    if (acc < 100) { acc = acc + g(i) } else { acc = acc - 1 }\n\
           \  };\n\
           \  acc\n\
           }"
          a b
      in
      let rt = Natives.boot () in
      ignore (Mini.Front.load rt src);
      ignore (Verifier.verify_all rt);
      true)

(* ---- Strutil: the shared substring test ---- *)

let test_strutil_contains () =
  let check_c s sub want =
    Alcotest.(check bool)
      (Printf.sprintf "contains %S %S" s sub)
      want (Strutil.contains s sub)
  in
  check_c "" "" true;
  check_c "abc" "" true;
  check_c "" "a" false;
  check_c "abc" "abc" true;
  check_c "abc" "abcd" false;
  check_c "hello world" "lo w" true;
  check_c "hello world" "low" false;
  check_c "aaab" "aab" true;
  check_c "ababab" "abb" false;
  check_c "xxabc" "abc" true;
  check_c "abcxx" "abc" true

(* agrees with a naive String.sub reference on random inputs *)
let prop_strutil_contains =
  QCheck.Test.make ~count:500 ~name:"strutil-contains-matches-naive"
    QCheck.(pair (string_of_size Gen.(0 -- 30)) (string_of_size Gen.(0 -- 5)))
    (fun (s, sub) ->
      let naive =
        let ls = String.length s and lsub = String.length sub in
        let rec go i =
          i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1))
        in
        lsub = 0 || go 0
      in
      Strutil.contains s sub = naive)

let suite =
  suite
  @ [
      Alcotest.test_case "strutil-contains" `Quick test_strutil_contains;
      QCheck_alcotest.to_alcotest prop_strutil_contains;
      Alcotest.test_case "verifier-good" `Quick test_verifier_accepts_good_code;
      Alcotest.test_case "verifier-underflow" `Quick test_verifier_rejects_underflow;
      Alcotest.test_case "verifier-bad-local" `Quick test_verifier_rejects_bad_local;
      Alcotest.test_case "verifier-bad-target" `Quick test_verifier_rejects_bad_target;
      Alcotest.test_case "verifier-join" `Quick test_verifier_rejects_inconsistent_join;
      Alcotest.test_case "verifier-fall-off" `Quick test_verifier_rejects_fall_off_end;
      QCheck_alcotest.to_alcotest prop_codegen_verifies;
    ]
