(* Tests for the persistent-profile subsystem: snapshot round-trips,
   corrupt/truncated/version-mismatched files degrading to a cold start,
   renamed and re-signatured methods dropping on replay, IC site
   pre-quickening (including soundness under a late [add_method] epoch
   bump), warm replay equivalence under background JIT workers, and
   stale-fingerprint detection when the code changed under the profile. *)

open Vm
open Vm.Types

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

(* same name and signature, different body: a warm compile against this
   must produce a different IR fingerprint than the snapshot recorded *)
let hot_src_v2 =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 17 + i * i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let renamed_src =
  {|
def hot2(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

(* reference semantics of [hot_src] / [hot_src_v2], for result checks *)
let expected_hot n seed =
  let acc = ref seed in
  for i = 0 to n - 1 do
    acc := ((!acc * 31) + i) mod 1000003
  done;
  Int !acc

let expected_hot_v2 n seed =
  let acc = ref seed in
  for i = 0 to n - 1 do
    acc := ((!acc * 17) + (i * i)) mod 1000003
  done;
  Int !acc

let heat p =
  let v = ref Null in
  for k = 1 to 10 do
    v := Mini.Front.call p "hot" [| Int 40; Int k |]
  done;
  !v

(* Boot, load [hot_src], run it hot while collecting fingerprints. *)
let hot_runtime () =
  Persist.reset ();
  Persist.collect ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p = Mini.Front.load rt hot_src in
  let v = heat p in
  (rt, p, v)

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let rt, p, _ = hot_runtime () in
  (match (Mini.Front.find_function p "hot").mtier with
  | Tier_compiled _ -> ()
  | _ -> Alcotest.fail "hot did not tier up");
  let prof = Persist.capture rt in
  let s = Persist.to_string prof in
  check_bool "records the compiled tier" true (Strutil.contains s " compiled ");
  check_bool "records a fingerprint" false (Strutil.contains s "compiled -");
  (match Persist.of_string s with
  | Ok prof' ->
    check_string "round-trip is byte-identical" s (Persist.to_string prof')
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e));
  check_string "capture is deterministic" s
    (Persist.to_string (Persist.capture rt));
  Persist.reset ()

(* lines of a snapshot, for surgical corruption *)
let split_lines s = String.split_on_char '\n' s

let join_lines ls = String.concat "\n" ls

let test_robustness () =
  let rt, p, _ = hot_runtime () in
  let s = Persist.to_string (Persist.capture rt) in
  Persist.reset ();
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "garbage is an error" true
    (is_err (Persist.of_string "not a profile at all"));
  check_bool "empty is an error" true (is_err (Persist.of_string ""));
  let half = String.sub s 0 (String.length s / 2) in
  check_bool "truncation is an error" true (is_err (Persist.of_string half));
  let bumped =
    match split_lines s with
    | _ :: rest -> join_lines (Printf.sprintf "%%lprof %d" 99 :: rest)
    | [] -> assert false
  in
  check_bool "version bump is an error" true (is_err (Persist.of_string bumped));
  (* unknown record tags are skipped — a newer writer's extension must not
     break this reader (they still count toward the trailer) *)
  let evolved =
    join_lines
      (List.concat_map
         (fun line ->
           match String.split_on_char ' ' line with
           | [ "E"; n ] ->
             [ "Z future-record 42"; Printf.sprintf "E %d" (int_of_string n + 1) ]
           | _ -> [ line ])
         (split_lines s))
  in
  (match (Persist.of_string s, Persist.of_string evolved) with
  | Ok a, Ok b ->
    check_int "unknown record skipped" (Persist.method_count a)
      (Persist.method_count b)
  | _, Error e -> Alcotest.fail ("evolved snapshot rejected: " ^ e)
  | Error e, _ -> Alcotest.fail ("baseline snapshot rejected: " ^ e));
  (* a corrupt *file* degrades to a cold start and leaves the fresh
     runtime untouched *)
  let path = Filename.temp_file "lancet_prof" ".lprof" in
  let oc = open_out path in
  output_string oc half;
  close_out oc;
  let rt2 = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p2 = Mini.Front.load rt2 hot_src in
  check_bool "corrupt file -> no replay" true
    (Persist.replay_file rt2 path = None);
  check_int "cold counters untouched" 0 (Mini.Front.find_function p2 "hot").mcalls;
  check_value "cold run still computes the same result"
    (Mini.Front.call p "hot" [| Int 40; Int 3 |])
    (Mini.Front.call p2 "hot" [| Int 40; Int 3 |]);
  Sys.remove path;
  Persist.reset ()

let test_renamed () =
  let rt, _, _ = hot_runtime () in
  let prof = Persist.capture rt in
  Persist.reset ();
  (* renamed: the recorded symbol no longer resolves *)
  let rt2 = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p2 = Mini.Front.load rt2 renamed_src in
  let st = Persist.replay rt2 prof in
  check_bool "renamed method dropped" true (st.Persist.rs_dropped >= 1);
  check_int "nothing enqueued for it" 0 st.Persist.rs_enqueued;
  check_value "program still runs" (expected_hot 40 1)
    (Mini.Front.call p2 "hot2" [| Int 40; Int 1 |]);
  (* re-signatured: same name, different arity — must also drop *)
  let rt3 = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let _p3 =
    Mini.Front.load rt3
      {|
def hot(n: int): int = {
  var acc = 1;
  var i = 0;
  while (i < n) { acc = acc + i; i = i + 1 };
  acc
}
|}
  in
  let st3 = Persist.replay rt3 prof in
  check_bool "re-signatured method dropped" true (st3.Persist.rs_dropped >= 1);
  check_int "re-signatured method not seeded" 0 st3.Persist.rs_methods;
  Persist.reset ()

(* ------------------------------------------------------------------ *)
(* IC pre-quickening: capture a trained polymorphic site in one runtime,
   replay it into a second, and check state, instruction rewrite and
   dispatch; then a late [add_method] must flush the replayed site
   through the ordinary hierarchy-epoch path. *)

let build_hier rt =
  let base = Classfile.declare_class rt ~name:"PBase" ~fields:[] () in
  ignore
    (Assembler.define_method rt base ~name:"tag" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 0));
         Assembler.emit b Retv));
  let subs =
    List.init 3 (fun i ->
        let c =
          Classfile.declare_class rt
            ~name:(Printf.sprintf "PSub%d" i)
            ~super:"PBase" ~fields:[] ()
        in
        ignore
          (Assembler.define_method rt c ~name:"tag" ~nargs:0 (fun b ->
               Assembler.emit b (Const (Int (i + 1)));
               Assembler.emit b Retv));
        c)
  in
  let drv = Classfile.declare_class rt ~name:"PDrv" ~fields:[] () in
  let driver =
    Assembler.define_method rt drv ~name:"call" ~static:true ~nargs:1 (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Invoke (Virtual ("tag", 0, None)));
        Assembler.emit b Retv)
  in
  (subs, driver)

let test_prequicken () =
  Persist.reset ();
  let rt1 = Natives.boot () in
  let subs1, drv1 = build_hier rt1 in
  let call rt drv c = Interp.call rt drv [| Obj (Runtime.alloc rt c) |] in
  check_value "train sub0" (Int 1) (call rt1 drv1 (List.nth subs1 0));
  check_value "train sub1" (Int 2) (call rt1 drv1 (List.nth subs1 1));
  let prof = Persist.capture rt1 in
  check_int "one site captured" 1 (Persist.site_count prof);
  let rt2 = Natives.boot () in
  let subs2, drv2 = build_hier rt2 in
  let st = Persist.replay rt2 prof in
  check_int "site pre-quickened" 1 st.Persist.rs_sites;
  let site =
    match Inlinecache.site_of rt2 ~mid:drv2.mid ~pc:1 with
    | Some s -> s
    | None -> Alcotest.fail "replayed site not registered"
  in
  check_string "poly state replayed" "poly:{PSub0,PSub1}"
    (Inlinecache.state_string site);
  (match drv2.mcode with
  | Bytecode code ->
    check_bool "instruction quickened offline" true
      (match code.(1) with Invoke (Virtual_ic _) -> true | _ -> false)
  | Native _ -> Alcotest.fail "expected bytecode");
  (* the replayed cache dispatches without a miss *)
  let misses0 = site.cs_misses in
  check_value "dispatch through replayed cache" (Int 1)
    (call rt2 drv2 (List.nth subs2 0));
  check_int "hit, not miss" misses0 site.cs_misses;
  (* late add_method: the hierarchy-epoch bump must flush the replayed
     site like any other, and dispatch must see the new method *)
  let c1 = List.nth subs2 1 in
  ignore
    (Assembler.define_method rt2 c1 ~name:"tag" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 42));
         Assembler.emit b Retv));
  check_string "late override flushed the replayed site" "empty"
    (Inlinecache.state_name site.cs_state);
  check_value "dispatch after late override" (Int 42) (call rt2 drv2 c1);
  Persist.reset ()

(* ------------------------------------------------------------------ *)

let test_warm_jit2 () =
  let rt1, p1, v_cold = hot_runtime () in
  let path = Filename.temp_file "lancet_prof" ".lprof" in
  Persist.save rt1 path;
  ignore p1;
  Persist.reset ();
  let rt2, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:4 ~jit_threads:2 ()
  in
  let pool = Option.get pool in
  let p2 = Mini.Front.load rt2 hot_src in
  Forensics.enable ();
  let st =
    match Persist.replay_file ~pool rt2 path with
    | Some st -> st
    | None -> Alcotest.fail "profile did not load"
  in
  check_bool "warm compile enqueued" true (st.Persist.rs_enqueued >= 1);
  Bgjit.drain pool;
  let m2 = Mini.Front.find_function p2 "hot" in
  await ~what:"warm install" (fun () ->
      match m2.mtier with Tier_compiled _ -> true | _ -> false);
  check_value "warm result equals cold" v_cold (heat p2);
  check_bool "fingerprint validated" true (Persist.warm_matches () >= 1);
  check_int "no stale fingerprints" 0 (Persist.warm_stale ());
  (* the decision journal attributes the warm code to the profile *)
  check_bool "journal has a Profile_replay cause" true
    (List.exists
       (fun d ->
         match d.Forensics.d_cause with
         | Forensics.Profile_replay _ -> true
         | _ -> false)
       (Forensics.decisions ()));
  Forensics.disable ();
  Bgjit.shutdown pool;
  Sys.remove path;
  Persist.reset ()

let test_stale_fp () =
  let rt1, _, _ = hot_runtime () in
  let prof = Persist.capture rt1 in
  Persist.reset ();
  let rt2 = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p2 = Mini.Front.load rt2 hot_src_v2 in
  let st = Persist.replay rt2 prof in
  check_bool "warm compile ran" true (st.Persist.rs_enqueued >= 1);
  check_bool "changed body detected as stale" true (Persist.warm_stale () >= 1);
  check_int "no false matches" 0 (Persist.warm_matches ());
  let m2 = Mini.Front.find_function p2 "hot" in
  check_bool "new code installed anyway" true
    (match m2.mtier with Tier_compiled _ -> true | _ -> false);
  (* and it computes the *new* program's semantics *)
  check_value "v2 semantics, not v1" (expected_hot_v2 40 1)
    (Mini.Front.call p2 "hot" [| Int 40; Int 1 |]);
  Persist.reset ()

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick test_roundtrip;
    Alcotest.test_case "corrupt/truncated/version fall back cold" `Quick
      test_robustness;
    Alcotest.test_case "renamed and re-signatured methods drop" `Quick
      test_renamed;
    Alcotest.test_case "IC pre-quickening and late add_method" `Quick
      test_prequicken;
    Alcotest.test_case "warm replay under jit-threads 2" `Quick test_warm_jit2;
    Alcotest.test_case "stale fingerprint detection" `Quick test_stale_fp;
  ]
