(* Tests for pipeline introspection: per-phase IR snapshots must cover the
   whole pipeline with consistent node counts and per-line attribution, the
   structural diff must show what each pass created/eliminated, the missed-
   optimization recorder must produce distinct, correctly-located coach
   reasons, and the (mid, spec, phase) fingerprint must be bit-stable
   across synchronous recompiles and background-worker compiles.  Disabled
   mode must record nothing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let contains = Vm.Strutil.contains

(* Alcotest runs cases sequentially; always disable on the way out so one
   case's store cannot leak into the next. *)
let with_irtrace ?keep_text f =
  Irtrace.enable ?keep_text ();
  Fun.protect ~finally:Irtrace.disable f

let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

(* A hot loop with dead pure arithmetic (line 3): DCE eliminates it, so the
   stage -> dce diff must show a negative node delta attributed to line 3. *)
let loop_src =
  {|def work(n: int): int = {
  var s = 0;
  for (i <- 0 until n) { val waste = (i + n) * 3 - i * 2; s = s + i };
  s
}
def main(): int = { var t = 0; for (r <- 0 until 64) { t = t + work(50) }; t }
|}

let snapshots_for meth =
  List.filter
    (fun sn -> contains sn.Irtrace.sn_meth meth)
    (Irtrace.snapshots ())

let find_phase sns phase =
  match List.find_opt (fun sn -> sn.Irtrace.sn_phase = phase) sns with
  | Some sn -> sn
  | None -> Alcotest.failf "no %s snapshot" phase

let test_snapshots_and_diff () =
  with_irtrace (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
      let p = Mini.Front.load rt loop_src in
      ignore (Mini.Front.call p "main" [||]);
      let sns = snapshots_for "work" in
      check_bool "snapshots recorded" true (List.length sns >= 4);
      let stage = find_phase sns "stage" in
      let dce = find_phase sns "dce" in
      (* the pipeline phases arrive in registry order within one compile *)
      check_bool "phase order" true
        (Phases.index Phases.Stage < Phases.index Phases.Dce);
      check_int "one compile id across phases" stage.Irtrace.sn_cid
        dce.Irtrace.sn_cid;
      check_string "compile spec recorded" "d" stage.Irtrace.sn_spec;
      (* golden shape of the staged loop body: the dead arithmetic is four
         int ops on top of the live add/increment/compare *)
      check_bool "stage has the dead iops" true
        (match List.assoc_opt "iop" stage.Irtrace.sn_ops with
        | Some n -> n >= 6
        | None -> false);
      let d = Irtrace.diff stage dce in
      check_string "diff endpoints" "stage" d.Irtrace.df_from;
      check_string "diff endpoints" "dce" d.Irtrace.df_to;
      check_bool "dce eliminated nodes" true
        (snd d.Irtrace.df_nodes < fst d.Irtrace.df_nodes);
      check_int "exactly the dead pure arithmetic went away" 4
        (fst d.Irtrace.df_nodes - snd d.Irtrace.df_nodes);
      check_bool "eliminated ops are int arithmetic" true
        (List.assoc_opt "iop" d.Irtrace.df_eliminated = Some 4);
      check_bool "nothing created by dce" true (d.Irtrace.df_created = []);
      (* per-line attribution: the waste expression lives on line 3 *)
      check_bool "delta attributed to the dead line" true
        (List.exists
           (fun (line, delta) -> line = 3 && delta = -4)
           d.Irtrace.df_lines);
      (* fingerprints: stable hex, and DCE changed the structure *)
      check_int "fingerprint is md5 hex" 32 (String.length stage.Irtrace.sn_fp);
      check_bool "dce changed the fingerprint" true
        (stage.Irtrace.sn_fp <> dce.Irtrace.sn_fp))

(* ------------------------------------------------------------------ *)
(* Coach reasons: distinct kinds with correct source lines              *)

(* Line numbers matter below (ms_line assertions):
   line 9:  s.area()  megamorphic virtual call
   line 11: s.w * s.w effect-blocked CSE reload
   line 13: xs[i]     dead but effectful load, kept by DCE
   line 15: x < 900   compare materialized before the speculation guard,
                      fusion declined *)
let coach_src =
  {|class Shape { var w: int
  def init(w: int): unit = { this.w = w }
  def area(): int = this.w }
class Circle extends Shape { def area(): int = this.w * 3 }
class Square extends Shape { def area(): int = this.w * 5 }
class Tri    extends Shape { def area(): int = this.w / 2 }
class Hexa   extends Shape { def area(): int = this.w * 6 }
def area_of(s: Shape): int =
  s.area()
def widen(s: Shape): int =
  s.w * s.w
def checksum(xs: farray, i: int): float = {
  val dead = xs[i]; xs[0] }
def clamp(x: int): int =
  if (Lancet.speculate(x < 900)) x else 899
def main(): int = {
  val shapes = new array[Shape](5);
  shapes[0] = new Shape(3); shapes[1] = new Circle(4);
  shapes[2] = new Square(5); shapes[3] = new Tri(6);
  shapes[4] = new Hexa(7);
  val xs = new farray(4);
  xs[0] = 2.5; xs[3] = 1.5;
  var acc = 0;
  var f = 0.0;
  for (round <- 0 until 200) {
    for (i <- 0 until 5) { acc = acc + area_of(shapes[i]) };
    acc = acc + widen(shapes[2]) + clamp(round) - clamp(round);
    f = f + checksum(xs, 3)
  };
  acc + f2i(f)
}
|}

let miss_on line kind =
  List.find_opt
    (fun m ->
      m.Irtrace.ms_line = line && Irtrace.reason_kind m.Irtrace.ms_reason = kind)
    (Irtrace.misses ())

let test_coach_reasons () =
  with_irtrace (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:8 () in
      let p = Mini.Front.load rt coach_src in
      ignore (Mini.Front.call p "main" [||]);
      (* megamorphic devirt decline: five receiver classes at s.area() *)
      (match miss_on 9 "devirt-declined" with
      | Some m -> (
        check_bool "method attributed" true (contains m.Irtrace.ms_meth "area_of");
        check_string "phase" "stage" m.Irtrace.ms_phase;
        match m.Irtrace.ms_reason with
        | Irtrace.Devirt_declined { callee; ic_state } ->
          check_string "callee" "area" callee;
          check_string "inline-cache state" "mega" ic_state
        | _ -> Alcotest.fail "wrong reason payload")
      | None -> Alcotest.fail "no megamorphic devirt decline at line 9");
      (* effect-blocked CSE: s.w reloaded in one expression; the builder
         records by mid (the label is resolved at report time) *)
      (match miss_on 11 "cse-effect-barrier" with
      | Some m -> (
        check_int "method attributed" (Mini.Front.find_function p "widen").mid
          m.Irtrace.ms_mid;
        match m.Irtrace.ms_reason with
        | Irtrace.Cse_effect_barrier { op } ->
          check_bool "names the reloaded field" true (contains op "Shape.w")
        | _ -> Alcotest.fail "wrong reason payload")
      | None -> Alcotest.fail "no effect-blocked CSE at line 11");
      (* DCE kept an effectful node: the dead array load *)
      (match miss_on 13 "dce-kept-effectful" with
      | Some m -> (
        check_string "phase" "dce" m.Irtrace.ms_phase;
        match m.Irtrace.ms_reason with
        | Irtrace.Dce_kept_effectful { op } ->
          check_string "op" "faload" op
        | _ -> Alcotest.fail "wrong reason payload")
      | None -> Alcotest.fail "no kept-effectful DCE record at line 13");
      (* declined guard fusion: the speculation compare was materialized *)
      (match miss_on 15 "guard-fusion-declined" with
      | Some m -> (
        check_bool "phase is a backend guards phase" true
          (contains m.Irtrace.ms_phase "guards");
        match m.Irtrace.ms_reason with
        | Irtrace.Guard_fusion_declined { cond; why } ->
          check_bool "compare identified" true (contains cond "icmp");
          check_string "why" "materialized-bool" why
        | _ -> Alcotest.fail "wrong reason payload")
      | None -> Alcotest.fail "no declined guard fusion at line 15");
      (* the coach report renders all of them with file-less source lines *)
      let report = Lancet.Explain.coach_report rt in
      List.iter
        (fun needle -> check_bool needle true (contains report needle))
        [
          "devirt of 'area' declined";
          "inline cache: mega";
          "CSE blocked by effect barrier";
          "DCE kept 'faload'";
          "guard fusion declined";
          "fix:";
        ])

(* ------------------------------------------------------------------ *)
(* Fingerprint stability                                                *)

(* The same method compiled in two fresh runtimes (fresh sym allocation
   order) must fingerprint identically: the canonical form renumbers
   symbols densely, so allocation noise cannot leak in. *)
let test_fingerprint_stable_across_recompile () =
  with_irtrace (fun () ->
      let fp_of () =
        let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
        let p = Mini.Front.load rt loop_src in
        ignore (Mini.Front.call p "main" [||]);
        let m = Mini.Front.find_function p "work" in
        match Irtrace.last_fp ~mid:m.mid ~spec:"d" ~phase:"dce" with
        | Some fp -> fp
        | None -> Alcotest.fail "no dce fingerprint recorded"
      in
      let fp1 = fp_of () in
      let fp2 = fp_of () in
      check_string "recompile reproduces the fingerprint" fp1 fp2;
      (* the second compile registered as byte-identical *)
      check_bool "identical recompile counted" true
        (Irtrace.identical_recompiles () >= 1))

(* Background workers allocate syms on their own domain: the fingerprint
   must not depend on which domain compiled the method. *)
let test_fingerprint_stable_bg () =
  with_irtrace (fun () ->
      let sync_fp =
        let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
        let p = Mini.Front.load rt loop_src in
        ignore (Mini.Front.call p "main" [||]);
        let m = Mini.Front.find_function p "work" in
        Irtrace.last_fp ~mid:m.mid ~spec:"d" ~phase:"dce"
      in
      let rt, pool =
        Lancet.Api.boot_bg ~tiering:true ~tier_threshold:4 ~jit_threads:2 ()
      in
      let p = Mini.Front.load rt loop_src in
      let m = Mini.Front.find_function p "work" in
      ignore (Mini.Front.call p "main" [||]);
      (match pool with
      | Some b ->
        await ~what:"background compile of work" (fun () ->
            ignore (Mini.Front.call p "main" [||]);
            Irtrace.last_fp ~mid:m.mid ~spec:"d" ~phase:"dce" <> None);
        Bgjit.shutdown b
      | None -> Alcotest.fail "no background pool");
      let bg_fp = Irtrace.last_fp ~mid:m.mid ~spec:"d" ~phase:"dce" in
      check_bool "both runs fingerprinted" true
        (sync_fp <> None && bg_fp <> None);
      check_bool "worker domain does not change the fingerprint" true
        (sync_fp = bg_fp))

(* ------------------------------------------------------------------ *)
(* Journal integration: the installed method's fingerprint reaches
   `lancet why`, and a byte-identical recompile is flagged.             *)

let spec_src =
  {|def spec(x: int): int =
  if (Lancet.speculate(x < 100)) x * 2 + 1 else x * 1000
|}

let test_why_fingerprint () =
  Forensics.enable ();
  Fun.protect ~finally:Forensics.disable (fun () ->
      with_irtrace (fun () ->
          let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
          let p = Mini.Front.load rt spec_src in
          let warm () =
            for i = 0 to 15 do
              ignore (Mini.Front.call p "spec" [| Vm.Types.Int i |])
            done
          in
          warm ();
          (* drop the code and let the method re-promote: nothing changed,
             so the rebuilt graph must be byte-identical *)
          let m = Mini.Front.find_function p "spec" in
          Vm.Runtime.tier_invalidate rt m;
          warm ();
          let report = Lancet.Explain.why_report ~meth:"spec" rt in
          check_bool "why renders the fingerprint" true
            (contains report "IR fingerprint");
          check_bool "byte-identical recompile flagged" true
            (contains report "identical to previous compile")))

(* ------------------------------------------------------------------ *)
(* Disabled mode records nothing                                        *)

let test_disabled_records_nothing () =
  Irtrace.disable ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p = Mini.Front.load rt coach_src in
  ignore (Mini.Front.call p "main" [||]);
  check_int "no snapshots" 0 (Irtrace.seen ());
  check_int "no misses" 0 (List.length (Irtrace.misses ()));
  check_bool "no snapshot list" true (Irtrace.snapshots () = [])

let suite =
  [
    Alcotest.test_case "snapshots-and-diff" `Quick test_snapshots_and_diff;
    Alcotest.test_case "coach-reasons" `Quick test_coach_reasons;
    Alcotest.test_case "fingerprint-recompile" `Quick
      test_fingerprint_stable_across_recompile;
    Alcotest.test_case "fingerprint-bg" `Quick test_fingerprint_stable_bg;
    Alcotest.test_case "why-fingerprint" `Quick test_why_fingerprint;
    Alcotest.test_case "disabled-records-nothing" `Quick
      test_disabled_records_nothing;
  ]
