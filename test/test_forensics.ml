(* Tests for the decision-forensics journal and the metrics registry:
   the journal must stay bounded under churn, record walkable causal
   chains for deopt loops, and attribute decisions to the worker domain
   that made them; the pathology detector and the why/health reports must
   name the method, source line and cause for a forced late-override
   hierarchy change; histogram percentiles and both export formats are
   checked directly. *)

open Vm
open Vm.Types

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let contains = Vm.Strutil.contains

let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

(* Alcotest runs cases sequentially, so a journal enabled around one case
   cannot leak into the next as long as we always disable on the way out. *)
let with_journal ?capacity f =
  Forensics.enable ?capacity ();
  Fun.protect ~finally:Forensics.disable f

(* ------------------------------------------------------------------ *)
(* Bounded memory under churn: the ring keeps the newest window, the
   seen counter keeps the total.                                        *)

let test_bounded () =
  with_journal ~capacity:64 (fun () ->
      for i = 0 to 999 do
        Forensics.record ~mid:i ~meth:"churn" Forensics.Promote
      done;
      check_int "capacity" 64 (Forensics.capacity ());
      check_int "seen counts every record" 1000 (Forensics.seen ());
      let ds = Forensics.decisions () in
      check_int "journal stays bounded" 64 (List.length ds);
      check_int "oldest retained is the window start" 936
        (List.hd ds).Forensics.d_mid;
      check_int "newest retained is the last record" 999
        (List.nth ds 63).Forensics.d_mid)

(* ------------------------------------------------------------------ *)
(* Causal chain for a forced deopt loop: promote -> compile -> install
   -> repeated deopts, each deopt attributed to its guard and line.     *)

let spec_src =
  {|
def spec(x: int): int =
  if (Lancet.speculate(x < 100)) x * 2 + 1 else x * 1000
|}

let test_deopt_loop_chain () =
  with_journal (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:1 () in
      let p = Mini.Front.load rt spec_src in
      check_value "warm" (Int 11) (Mini.Front.call p "spec" [| Int 5 |]);
      check_value "warm" (Int 15) (Mini.Front.call p "spec" [| Int 7 |]);
      for _ = 1 to 5 do
        check_value "off-speculation" (Int 500000)
          (Mini.Front.call p "spec" [| Int 500 |])
      done;
      let m = Mini.Front.find_function p "spec" in
      let ds = Forensics.for_mid m.mid in
      let index p =
        let rec go i = function
          | [] -> -1
          | d :: tl -> if p d then i else go (i + 1) tl
        in
        go 0 ds
      in
      let promote =
        index (fun d ->
            match (d.Forensics.d_action, d.Forensics.d_cause) with
            | Forensics.Promote, Forensics.Hotness _ -> true
            | _ -> false)
      in
      let compile =
        index (fun d ->
            match d.Forensics.d_action with
            | Forensics.Compile_done _ -> true
            | _ -> false)
      in
      let install =
        index (fun d ->
            match d.Forensics.d_action with
            | Forensics.Install _ -> true
            | _ -> false)
      in
      check_bool "promotion journaled with hotness cause" true (promote >= 0);
      check_bool "compile follows promotion" true (compile > promote);
      check_bool "install follows compile" true (install > compile);
      let deopts =
        List.filter
          (fun d ->
            match d.Forensics.d_action with
            | Forensics.Deopt _ -> true
            | _ -> false)
          ds
      in
      check_bool "repeated deopts journaled" true (List.length deopts >= 3);
      List.iter
        (fun d ->
          match (d.Forensics.d_action, d.Forensics.d_cause) with
          | Forensics.Deopt e, Forensics.Guard g ->
            check_bool "deopt carries a source line" true (e.line > 0);
            check_int "cause names the same guard site" e.pc g.pc
          | _ -> Alcotest.fail "deopt without a guard cause")
        deopts;
      (* the explain integration resolves the same causes at the site *)
      (match
         List.find_map
           (fun d ->
             match d.Forensics.d_action with
             | Forensics.Deopt e -> Some e.pc
             | _ -> None)
           ds
       with
      | Some pc ->
        check_bool "explain surfaces the cause at the deopt site" true
          (List.exists
             (fun c -> contains c "speculate")
             (Lancet.Explain.deopt_causes m.mid pc))
      | None -> Alcotest.fail "no deopt journaled");
      let paths = Forensics.detect () in
      check_bool "deopt-loop detected" true
        (List.exists
           (fun (pa : Forensics.pathology) ->
             pa.p_kind = "deopt-loop" && pa.p_mid = m.mid && pa.p_line > 0)
           paths))

(* ------------------------------------------------------------------ *)
(* Acceptance scenario: a late-override loop — compiled code repeatedly
   killed by method redefinitions — must surface in `lancet health` with
   the pathology, method, source line, and the causing hierarchy change. *)

let redefine_src =
  {|
class Pt {
  var x: int
  def init(x: int): unit = { this.x = x }
  def m(): int = this.x + 1
}
def hdriver(p: Pt, n: int): int = {
  var acc = 0;
  var i = 0;
  while (i < n) { acc = acc + p.m(); i = i + 1 };
  acc
}
def mk(x: int): Pt = new Pt(x)
|}

let redefine_m rt add =
  let pt = Classfile.find_class rt "Pt" in
  let fx = Classfile.field pt "x" in
  ignore
    (Assembler.define_method rt pt ~name:"m" ~nargs:0 (fun b ->
         Assembler.emit b (Load 0);
         Assembler.emit b (Getfield fx);
         Assembler.emit b (Const (Int add));
         Assembler.emit b (Iop Add);
         Assembler.emit b Retv))

let test_health_late_override () =
  with_journal (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
      let p = Mini.Front.load rt redefine_src in
      let o = Mini.Front.call p "mk" [| Int 5 |] in
      let train expect =
        for _ = 1 to 6 do
          check_value "trained" (Int expect)
            (Mini.Front.call p "hdriver" [| o; Int 10 |])
        done
      in
      train 60;
      redefine_m rt 100;
      train 1050;
      redefine_m rt 200;
      train 2050;
      let driver = Mini.Front.find_function p "hdriver" in
      let churn =
        List.find_opt
          (fun (pa : Forensics.pathology) ->
            pa.p_kind = "hierarchy-churn" && pa.p_mid = driver.mid)
          (Forensics.detect ())
      in
      (match churn with
      | None -> Alcotest.fail "hierarchy churn not detected"
      | Some pa ->
        check_bool "diagnosis names the redefined method" true
          (contains pa.Forensics.p_what "'m'");
        check_bool "evidence retained" true (pa.Forensics.p_evidence <> []));
      let report = Lancet.Explain.health_report rt in
      check_bool "report names the pathology" true
        (contains report "PATHOLOGY hierarchy-churn");
      check_bool "report names the method" true (contains report "hdriver");
      check_bool "report carries the source line" true
        (contains report
           (Printf.sprintf ":%d)" (Vm.Runtime.meth_def_line driver)));
      check_bool "report names the causing hierarchy change" true
        (contains report "(re)definition of 'm'");
      check_bool "report suggests a knob" true (contains report "suggestion:"))

(* ------------------------------------------------------------------ *)
(* Metrics: log-scale histogram percentiles are upper-bound estimates.  *)

let test_histogram_percentiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat_ms" in
  check_int "empty count" 0 (Metrics.histo_count h);
  check_bool "empty percentile" true (Metrics.percentile h 0.5 = 0.0);
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  check_int "count" 100 (Metrics.histo_count h);
  let p50 = Metrics.percentile h 0.5 in
  let p90 = Metrics.percentile h 0.9 in
  let p99 = Metrics.percentile h 0.99 in
  check_bool "p50 upper-bounds the median" true (p50 >= 50.0 && p50 <= 66.0);
  check_bool "p99 upper-bounds the tail" true (p99 >= 99.0 && p99 <= 135.0);
  check_bool "quantiles are monotone" true (p50 <= p90 && p90 <= p99)

(* ------------------------------------------------------------------ *)
(* Metrics: sharded counters, find-or-create, and both export formats.  *)

let test_counters_and_export () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"test counter" "widgets" in
  for _ = 1 to 10 do
    Metrics.inc c
  done;
  Metrics.add c 5;
  check_int "counter folds its shards" 15 (Metrics.value c);
  Metrics.inc (Metrics.counter reg "widgets");
  check_int "find-or-create shares the cells" 16 (Metrics.value c);
  let g = Metrics.gauge reg "level" in
  Metrics.set g 3.5;
  check_bool "gauge holds the last set" true (Metrics.gauge_value g = 3.5);
  let h = Metrics.histogram reg "lat_ms" in
  Metrics.observe h 0.25;
  let json = Metrics.to_json reg in
  (match Obs.Json.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e);
  check_bool "json carries the counter" true (contains json "\"widgets\": 16");
  let prom = Metrics.to_prometheus reg in
  check_bool "prometheus counter" true (contains prom "lancet_widgets_total 16");
  check_bool "prometheus gauge" true (contains prom "lancet_level 3.5");
  check_bool "prometheus histogram buckets" true
    (contains prom "lancet_lat_ms_bucket{le=");
  check_bool "prometheus histogram count" true
    (contains prom "lancet_lat_ms_count 1")

(* ------------------------------------------------------------------ *)
(* The stock JIT bundle fed from the event bus by a real tiered run.    *)

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let test_jit_sink_metrics () =
  let j = Metrics.jit () in
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p = Mini.Front.load rt hot_src in
  Obs.with_sink (Metrics.jit_sink j) (fun () ->
      for k = 0 to 19 do
        ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
      done);
  check_bool "promotions counted" true
    (Metrics.value j.Metrics.j_promotions >= 1);
  check_bool "compiles counted" true (Metrics.value j.Metrics.j_compiles >= 1);
  check_bool "installs counted" true (Metrics.value j.Metrics.j_installs >= 1);
  check_bool "occupancy gauge tracks the cache" true
    (Metrics.gauge_value j.Metrics.j_cache_occupancy >= 1.0);
  check_bool "synchronous compile observed as a mutator pause" true
    (Metrics.histo_count j.Metrics.j_mutator_pause_ms >= 1);
  check_bool "compile latency observed" true
    (Metrics.histo_count j.Metrics.j_compile_ms >= 1);
  let prom = Metrics.to_prometheus j.Metrics.j_reg in
  check_bool "bundle exports under the lancet prefix" true
    (contains prom "lancet_compiles_total")

(* ------------------------------------------------------------------ *)
(* `lancet why`: the timeline report and its method filter.             *)

let test_why_report () =
  with_journal (fun () ->
      let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:1 () in
      let p = Mini.Front.load rt spec_src in
      check_value "warm" (Int 11) (Mini.Front.call p "spec" [| Int 5 |]);
      check_value "warm" (Int 15) (Mini.Front.call p "spec" [| Int 7 |]);
      check_value "off-speculation" (Int 500000)
        (Mini.Front.call p "spec" [| Int 500 |]);
      let r = Lancet.Explain.why_report rt in
      check_bool "why shows a method header" true (contains r "== ");
      check_bool "why shows the promotion" true
        (contains r "promoted to tier 1");
      check_bool "why shows the install" true (contains r "code installed");
      check_bool "why links the deopt to its guard" true
        (contains r "<- guard 'speculate' missed");
      check_bool "filter keeps the method" true
        (contains (Lancet.Explain.why_report ~meth:"spec" rt) "spec");
      check_bool "filter misses politely" true
        (contains
           (Lancet.Explain.why_report ~meth:"nosuchmethod" rt)
           "no journaled decisions"))

(* ------------------------------------------------------------------ *)
(* Worker attribution with background compile threads: the enqueue is
   the mutator's decision, dequeue/install belong to a worker domain.   *)

let test_worker_attribution () =
  with_journal (fun () ->
      let rt, pool =
        Lancet.Api.boot_bg ~tiering:true ~tier_threshold:4 ~jit_threads:2 ()
      in
      let p = Mini.Front.load rt hot_src in
      for k = 0 to 39 do
        ignore (Mini.Front.call p "hot" [| Int 50; Int k |])
      done;
      (match pool with Some b -> Bgjit.drain b | None -> ());
      let m = Mini.Front.find_function p "hot" in
      await ~what:"background install journaled" (fun () ->
          List.exists
            (fun d ->
              match d.Forensics.d_action with
              | Forensics.Install _ -> true
              | _ -> false)
            (Forensics.for_mid m.mid));
      let ds = Forensics.for_mid m.mid in
      let has p = List.exists p ds in
      check_bool "enqueue journaled on the mutator" true
        (has (fun d ->
             match d.Forensics.d_action with
             | Forensics.Enqueue _ -> d.Forensics.d_worker = 0
             | _ -> false));
      check_bool "dequeue attributed to a worker domain" true
        (has (fun d ->
             match d.Forensics.d_action with
             | Forensics.Dequeue _ -> d.Forensics.d_worker >= 1
             | _ -> false));
      check_bool "install attributed to a worker domain" true
        (has (fun d ->
             match d.Forensics.d_action with
             | Forensics.Install _ -> d.Forensics.d_worker >= 1
             | _ -> false));
      (match pool with Some b -> Bgjit.shutdown b | None -> ());
      (* a failing compile: the blacklist decision carries the worker
         that hit the failure, and the failure itself as the cause *)
      let rt2 = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
      let pool2 =
        Bgjit.create ~threads:1
          ~log:(fun _ -> ())
          ~compile:(fun _ _ -> failwith "injected compile failure")
          rt2
      in
      Bgjit.install pool2;
      let p2 = Mini.Front.load rt2 hot_src in
      for k = 0 to 29 do
        ignore (Mini.Front.call p2 "hot" [| Int 50; Int k |])
      done;
      Bgjit.drain pool2;
      Bgjit.shutdown pool2;
      let m2 = Mini.Front.find_function p2 "hot" in
      check_bool "blacklist attributed to a worker with its failure" true
        (List.exists
           (fun d ->
             match (d.Forensics.d_action, d.Forensics.d_cause) with
             | Forensics.Blacklist _, Forensics.Worker_failure f ->
               d.Forensics.d_worker >= 1 && contains f.err "injected"
             | _ -> false)
           (Forensics.for_mid m2.mid)))

let suite =
  [
    Alcotest.test_case "bounded-journal" `Quick test_bounded;
    Alcotest.test_case "deopt-loop-chain" `Quick test_deopt_loop_chain;
    Alcotest.test_case "health-late-override" `Quick test_health_late_override;
    Alcotest.test_case "histogram-percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "counters-and-export" `Quick test_counters_and_export;
    Alcotest.test_case "jit-sink-metrics" `Quick test_jit_sink_metrics;
    Alcotest.test_case "why-report" `Quick test_why_report;
    Alcotest.test_case "worker-attribution" `Quick test_worker_attribution;
  ]
