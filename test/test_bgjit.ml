(* Tests for the background compilation subsystem: promotion through the
   compile queue must be observably identical to synchronous promotion
   (modulo when the compiled code starts running), compile failures must
   degrade to interpretation instead of killing the VM, an invalidation
   racing an in-flight compile must never install stale code, and a
   saturated queue must coalesce/drop rather than block the mutator. *)

open Vm.Types

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let quiet = Some (fun (_ : string) -> ())

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

(* Spin until [p ()] holds; background compilation is asynchronous by
   design, so tests that need "the worker reached state X" poll for it.
   The cap only trips on a genuine deadlock. *)
let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

(* ------------------------------------------------------------------ *)
(* Async promote -> install -> execute is observably identical to sync. *)

let test_async_matches_sync () =
  let run jit_threads =
    let rt, pool =
      Lancet.Api.boot_bg ~tiering:true ~tier_threshold:4 ~jit_threads ()
    in
    let p = Mini.Front.load rt hot_src in
    let acc = ref [] in
    for k = 0 to 39 do
      acc := Mini.Front.call p "hot" [| Int 50; Int k |] :: !acc
    done;
    (match pool with Some b -> Bgjit.drain b | None -> ());
    (* the compiled entry is installed now: run through it too *)
    for k = 0 to 9 do
      acc := Mini.Front.call p "hot" [| Int 50; Int k |] :: !acc
    done;
    let m = Mini.Front.find_function p "hot" in
    let st = Option.map Bgjit.stats pool in
    (match pool with Some b -> Bgjit.shutdown b | None -> ());
    (!acc, m, st)
  in
  let sync_vals, sync_m, _ = run 0 in
  let async_vals, async_m, st = run 1 in
  List.iter2 (fun s a -> check_value "async = sync" s a) sync_vals async_vals;
  check_bool "sync compiled" true
    (match sync_m.mtier with Tier_compiled _ -> true | _ -> false);
  check_bool "async compiled" true
    (match async_m.mtier with Tier_compiled _ -> true | _ -> false);
  match st with
  | None -> Alcotest.fail "expected a pool"
  | Some s ->
    check_bool "installed through the queue" true (s.Bgjit.s_installed >= 1);
    check_int "no stale installs" 0 s.Bgjit.s_stale;
    check_int "no blacklists" 0 s.Bgjit.s_blacklisted

(* ------------------------------------------------------------------ *)
(* A worker compile failure blacklists the method (with a file:line
   diagnostic) and the program keeps running on the interpreter.         *)

let test_failure_blacklists () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let logs = ref [] in
  let pool =
    Bgjit.create ~threads:1
      ~log:(fun s -> logs := s :: !logs)
      ~compile:(fun _ _ -> failwith "injected compile failure")
      rt
  in
  Bgjit.install pool;
  let p = Mini.Front.load ~file:"bg.mini" rt hot_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  for k = 0 to 29 do
    check_value "still correct after failed compile"
      (Mini.Front.call pp "hot" [| Int 50; Int k |])
      (Mini.Front.call p "hot" [| Int 50; Int k |])
  done;
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  let m = Mini.Front.find_function p "hot" in
  check_bool "blacklisted" true (m.mtier = Tier_blacklisted);
  check_bool "failure counted" true ((Bgjit.stats pool).Bgjit.s_blacklisted >= 1);
  let diag = String.concat "\n" !logs in
  check_bool "diagnostic names the method" true
    (Vm.Strutil.contains diag "hot");
  check_bool "diagnostic carries file:line" true
    (Vm.Strutil.contains diag "bg.mini:");
  check_bool "diagnostic carries the error" true
    (Vm.Strutil.contains diag "injected compile failure");
  (* one more call after shutdown: still interpreting, still correct *)
  check_value "runs after shutdown"
    (Mini.Front.call pp "hot" [| Int 50; Int 7 |])
    (Mini.Front.call p "hot" [| Int 50; Int 7 |])

(* ------------------------------------------------------------------ *)
(* An invalidation racing an in-flight compile: the generation check
   must discard the stale code and leave the method re-promotable.       *)

let test_stale_never_installs () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool =
    Bgjit.create ~threads:1 ?log:quiet
      ~compile:(fun _ _ ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Some ((fun _ -> Vm.Types.Str "stale code ran"), [], 0))
      rt
  in
  let p = Mini.Front.load rt hot_src in
  let m = Mini.Front.find_function p "hot" in
  check_bool "queued" true (Bgjit.enqueue pool m = `Queued);
  (* wait until the worker holds the compile in flight, then invalidate:
     the generation stamp it read at dequeue is now stale *)
  await ~what:"compile to start" (fun () -> Atomic.get started);
  Vm.Runtime.tier_invalidate rt m;
  Atomic.set release true;
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  let s = Bgjit.stats pool in
  check_int "stale result discarded" 1 s.Bgjit.s_stale;
  check_int "nothing installed" 0 s.Bgjit.s_installed;
  check_bool "stale code not in the cache" false
    (Hashtbl.mem rt.tiering.t_cache m.mid);
  check_bool "method re-promotable (cold), not stuck compiling" true
    (m.mtier = Tier_cold);
  (* and the method still computes the right thing on the interpreter *)
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  check_value "correct after discard"
    (Mini.Front.call pp "hot" [| Int 50; Int 3 |])
    (Mini.Front.call p "hot" [| Int 50; Int 3 |])

(* ------------------------------------------------------------------ *)
(* Queue saturation: a duplicate request coalesces, an overflowing one
   is dropped (and the method retries later); the mutator never blocks.  *)

let three_src =
  {|
def a(n: int): int = n * 2 + 1
def b(n: int): int = n * 3 + 1
def c(n: int): int = n * 5 + 1
|}

let test_saturation_coalesces () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool =
    Bgjit.create ~threads:1 ~queue:1 ?log:quiet
      ~compile:(fun _ m ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Lancet.Tiering.compile rt m)
      rt
  in
  let p = Mini.Front.load rt three_src in
  let ma = Mini.Front.find_function p "a" in
  let mb = Mini.Front.find_function p "b" in
  let mc = Mini.Front.find_function p "c" in
  (* a: dequeued and held in flight by the blocked compile stub *)
  check_bool "a queued" true (Bgjit.enqueue pool ma = `Queued);
  await ~what:"worker to pick up a" (fun () -> Atomic.get started);
  (* b: fills the (capacity 1) queue *)
  check_bool "b queued" true (Bgjit.enqueue pool mb = `Queued);
  (* b again: coalesces into the pending request, does not double-queue *)
  check_bool "b coalesced" true (Bgjit.enqueue pool mb = `Coalesced);
  (* c: queue full -> dropped immediately, no blocking, retries later *)
  mc.mtier <- Tier_compiling;
  check_bool "c dropped" true (Bgjit.enqueue pool mc = `Dropped);
  check_bool "c back to cold for retry" true (mc.mtier = Tier_cold);
  Atomic.set release true;
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  let s = Bgjit.stats pool in
  check_int "two requests entered the queue" 2 s.Bgjit.s_enqueued;
  check_int "one coalesced" 1 s.Bgjit.s_coalesced;
  check_int "one dropped" 1 s.Bgjit.s_dropped;
  check_int "both compiles installed" 2 s.Bgjit.s_installed;
  check_int "nothing pending after drain" 0 (Bgjit.pending pool);
  check_bool "a compiled" true
    (match ma.mtier with Tier_compiled _ -> true | _ -> false);
  check_bool "b compiled" true
    (match mb.mtier with Tier_compiled _ -> true | _ -> false);
  check_value "a runs compiled" (Int 21) (Mini.Front.call p "a" [| Int 10 |]);
  check_value "b runs compiled" (Int 31) (Mini.Front.call p "b" [| Int 10 |])

(* ------------------------------------------------------------------ *)
(* A `Recompile deopt (changed stable value) routes the rebuild through
   the queue: the mutator resumes interpreting immediately and a worker
   installs the new code at the bumped generation.                       *)

let stable_src =
  {|
var fast: bool = true
def set_fast(b: bool): unit = { fast = b }
def f(x: int): int = if (Lancet.stable(fun () => fast)) x * 10 else x + 1
|}

let test_async_recompile () =
  let rt, pool =
    Lancet.Api.boot_bg ~tiering:true ~tier_threshold:1 ~jit_threads:1 ()
  in
  let pool = Option.get pool in
  let p = Mini.Front.load rt stable_src in
  check_value "initial (interpreted)" (Int 30) (Mini.Front.call p "f" [| Int 3 |]);
  Bgjit.drain pool;
  check_value "compiled" (Int 30) (Mini.Front.call p "f" [| Int 3 |]);
  let m = Mini.Front.find_function p "f" in
  let gen0 = Vm.Runtime.tier_gen rt m.mid in
  ignore (Mini.Front.call p "set_fast" [| Vm.Value.of_bool false |]);
  (* guard fails: the deopt resumes in the interpreter with the correct
     answer while the rebuild sits in the compile queue *)
  check_value "after change (deopt resume)" (Int 4)
    (Mini.Front.call p "f" [| Int 3 |]);
  check_bool "deopt counted" true (rt.tiering.t_deopts >= 1);
  Bgjit.drain pool;
  check_bool "generation bumped" true (Vm.Runtime.tier_gen rt m.mid > gen0);
  check_bool "rebuilt and reinstalled" true
    (match m.mtier with Tier_compiled _ -> true | _ -> false);
  check_value "recompiled entry" (Int 6) (Mini.Front.call p "f" [| Int 5 |]);
  Bgjit.shutdown pool;
  check_bool "no blacklist on the recompile path" true
    ((Bgjit.stats pool).Bgjit.s_blacklisted = 0)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "async-matches-sync" `Quick test_async_matches_sync;
    Alcotest.test_case "failure-blacklists" `Quick test_failure_blacklists;
    Alcotest.test_case "stale-never-installs" `Quick test_stale_never_installs;
    Alcotest.test_case "saturation-coalesces" `Quick test_saturation_coalesces;
    Alcotest.test_case "async-recompile" `Quick test_async_recompile;
  ]
