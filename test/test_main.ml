let () =
  Alcotest.run "lancet-repro"
    [
      ("vm", Test_vm.suite);
      ("lms", Test_lms.suite);
      ("mini", Test_mini.suite);
      ("lancet", Test_lancet.suite);
      ("tiering", Test_tiering.suite);
      ("bgjit", Test_bgjit.suite);
      ("ic", Test_ic.suite);
      ("obs", Test_obs.suite);
      ("forensics", Test_forensics.suite);
      ("irtrace", Test_irtrace.suite);
      ("provenance", Test_provenance.suite);
      ("csv", Test_csv.suite);
      ("optiml", Test_optiml.suite);
      ("safeint", Test_safeint.suite);
      ("extras", Test_extras.suite);
      ("persist", Test_persist.suite);
      ("chaos", Test_chaos.suite);
      ("governor", Test_governor.suite);
    ]
